package repro

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/matrix"
)

// TestPaperEndToEnd walks the paper's whole argument on its own running
// example (n=6, m=9, w=3) and the Fig. 4 matmul shape: the fixed arrays
// compute the dense problems exactly, in exactly the predicted step counts,
// with exactly the predicted feedback behaviour, beating the
// no-transformation alternatives.
func TestPaperEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))

	// §2 example: y = A·x + b, A 6×9 on a 3-PE array.
	a := matrix.RandomDense(rng, 6, 9, 4)
	x := matrix.RandomVector(rng, 9, 4)
	b := matrix.RandomVector(rng, 6, 4)
	mv, err := core.NewMatVecSolver(3).Solve(a, x, b, core.MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Y.Equal(a.MulVec(x, b), 0) {
		t.Error("matvec result not exact")
	}
	if mv.Stats.T != 39 {
		t.Errorf("T=%d, want the paper's 39", mv.Stats.T)
	}
	for _, d := range mv.Stats.FeedbackDelays {
		if d != 3 {
			t.Errorf("feedback delay %d, want w=3", d)
		}
	}

	// The overlapped version (dotted line of Fig. 2b): 22 steps.
	over, err := core.NewMatVecSolver(3).Solve(a, x, b, core.MatVecOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if over.Stats.T != 22 {
		t.Errorf("overlapped T=%d, want the paper's 22", over.Stats.T)
	}
	if !over.Y.Equal(mv.Y, 0) {
		t.Error("overlap changed the result")
	}

	// Fig. 3: the data flow trace has the published structure.
	st, err := figures.Fig3Data(6, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.T != 39 {
		t.Errorf("Fig.3 T=%d", st.T)
	}

	// §3 example: C = A·B + E with n̄=2, p̄=2, m̄=3 on a 3×3 hexagonal
	// array: 115 steps, regular feedback w and 2w.
	am := matrix.RandomDense(rng, 6, 6, 3)
	bm := matrix.RandomDense(rng, 6, 9, 3)
	em := matrix.RandomDense(rng, 6, 9, 3)
	mm, err := core.NewMatMulSolver(3).Solve(am, bm, core.MatMulOptions{E: em})
	if err != nil {
		t.Fatal(err)
	}
	if !mm.C.Equal(am.Mul(bm).AddM(em), 0) {
		t.Error("matmul result not exact")
	}
	if want := analysis.MatMulSteps(3, 2, 2, 3); mm.Stats.T != want || want != 115 {
		t.Errorf("matmul T=%d, want 115", mm.Stats.T)
	}
	for _, bin := range mm.Stats.RegularDelays {
		if bin.Delay != 3 && bin.Delay != 6 {
			t.Errorf("regular delay %d, want w or 2w", bin.Delay)
		}
	}

	// §1 motivation: without DBT the same matvec needs a problem-sized
	// array (14 PEs for 6×9) at collapsed utilization.
	direct := baseline.DirectBand(a, x, b)
	if direct.ArraySize != 14 {
		t.Errorf("direct band needs %d PEs, want n+m−1 = 14", direct.ArraySize)
	}
	if direct.Utilization >= mv.Stats.Utilization {
		t.Error("direct band should not beat DBT utilization")
	}
}

// TestSizeIndependence is the titular claim: one fixed array, many problem
// sizes, all exact, all at the formula's step count.
func TestSizeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	const w = 4
	mv := core.NewMatVecSolver(w)
	mm := core.NewMatMulSolver(w)
	for _, n := range []int{1, 3, 7, 12, 25} {
		for _, m := range []int{2, 9, 17} {
			a := matrix.RandomDense(rng, n, m, 3)
			x := matrix.RandomVector(rng, m, 3)
			res, err := mv.Solve(a, x, nil, core.MatVecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Y.Equal(a.MulVec(x, nil), 0) || res.Stats.T != res.Stats.PredictedT {
				t.Errorf("matvec %d×%d on fixed %d-PE array failed", n, m, w)
			}
		}
	}
	for _, shape := range [][3]int{{1, 5, 9}, {10, 3, 6}, {13, 13, 13}} {
		n, p, m := shape[0], shape[1], shape[2]
		a := matrix.RandomDense(rng, n, p, 2)
		b := matrix.RandomDense(rng, p, m, 2)
		res, err := mm.Solve(a, b, core.MatMulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.C.Equal(a.Mul(b), 0) || res.Stats.T != res.Stats.PredictedT {
			t.Errorf("matmul %v on fixed %d×%d array failed", shape, w, w)
		}
	}
}
