package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/figures"
	"repro/internal/matrix"
	"repro/internal/schedule"
	"repro/internal/solve"
	"repro/internal/sparse"
	"repro/internal/trisolve"
)

// Every benchmark regenerates one experiment of DESIGN.md §3 and reports
// the paper-comparable metrics (systolic steps, PE utilization) alongside
// wall-clock simulator cost. Data uses small integers so results are exact.

// BenchmarkE1MatVec regenerates the matvec step-count series
// T = 2wn̄m̄+2w−3 (E1) and the η → ½ utilization series (E3).
func BenchmarkE1MatVec(b *testing.B) {
	b.ReportAllocs()
	for _, w := range []int{2, 4, 8} {
		for _, nm := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("w=%d/nm=%d", w, nm), func(b *testing.B) {
				b.ReportAllocs()
				rng := rand.New(rand.NewSource(1))
				a := matrix.RandomDense(rng, nm*w, w, 3)
				x := matrix.RandomVector(rng, w, 3)
				s := core.NewMatVecSolver(w)
				var last *core.MatVecResult
				for i := 0; i < b.N; i++ {
					res, err := s.Solve(a, x, nil, core.MatVecOptions{})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				if last.Stats.T != analysis.MatVecSteps(w, nm, 1) {
					b.Fatalf("T=%d deviates from paper %d", last.Stats.T, analysis.MatVecSteps(w, nm, 1))
				}
				b.ReportMetric(float64(last.Stats.T), "steps")
				b.ReportMetric(last.Stats.Utilization, "utilization")
			})
		}
	}
}

// BenchmarkE2MatVecOverlap regenerates the overlapped series
// T = wn̄m̄+2w−2 (E2) and η → 1 (E4).
func BenchmarkE2MatVecOverlap(b *testing.B) {
	b.ReportAllocs()
	for _, w := range []int{3, 5} {
		for _, nm := range []int{4, 16} {
			b.Run(fmt.Sprintf("w=%d/nm=%d", w, nm), func(b *testing.B) {
				b.ReportAllocs()
				rng := rand.New(rand.NewSource(2))
				a := matrix.RandomDense(rng, nm*w, w, 3)
				x := matrix.RandomVector(rng, w, 3)
				s := core.NewMatVecSolver(w)
				var last *core.MatVecResult
				for i := 0; i < b.N; i++ {
					res, err := s.Solve(a, x, nil, core.MatVecOptions{Overlap: true})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				if last.Stats.T != analysis.MatVecStepsOverlap(w, nm, 1) {
					b.Fatalf("T=%d deviates from paper %d", last.Stats.T, analysis.MatVecStepsOverlap(w, nm, 1))
				}
				b.ReportMetric(float64(last.Stats.T), "steps")
				b.ReportMetric(last.Stats.Utilization, "utilization")
			})
		}
	}
}

// BenchmarkE5MatMul regenerates the matmul step-count series
// T = 3wp̄n̄m̄+4w−5 (E5) and η → ⅓ (E6) on the hexagonal array.
func BenchmarkE5MatMul(b *testing.B) {
	b.ReportAllocs()
	for _, w := range []int{2, 3, 4} {
		for _, pnm := range [][3]int{{1, 1, 1}, {2, 2, 2}} {
			nb, pb, mb := pnm[0], pnm[1], pnm[2]
			b.Run(fmt.Sprintf("w=%d/pnm=%d", w, nb*pb*mb), func(b *testing.B) {
				b.ReportAllocs()
				rng := rand.New(rand.NewSource(3))
				am := matrix.RandomDense(rng, nb*w, pb*w, 2)
				bm := matrix.RandomDense(rng, pb*w, mb*w, 2)
				s := core.NewMatMulSolver(w)
				var last *core.MatMulResult
				for i := 0; i < b.N; i++ {
					res, err := s.Solve(am, bm, core.MatMulOptions{})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				if last.Stats.T != analysis.MatMulSteps(w, pb, nb, mb) {
					b.Fatalf("T=%d deviates from paper %d", last.Stats.T, analysis.MatMulSteps(w, pb, nb, mb))
				}
				b.ReportMetric(float64(last.Stats.T), "steps")
				b.ReportMetric(last.Stats.Utilization, "utilization")
			})
		}
	}
}

// BenchmarkE7FeedbackDelays measures the feedback edges of a matmul run
// (regular w and 2w; irregular region-crossing) — experiment E7/E8.
func BenchmarkE7FeedbackDelays(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(4))
	w := 3
	am := matrix.RandomDense(rng, 2*w, 2*w, 2)
	bm := matrix.RandomDense(rng, 2*w, 3*w, 2)
	s := core.NewMatMulSolver(w)
	var last *core.MatMulResult
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(am, bm, core.MatMulOptions{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	maxReg := 0
	for _, bin := range last.Stats.RegularDelays {
		if bin.Delay > maxReg {
			maxReg = bin.Delay
		}
	}
	b.ReportMetric(float64(maxReg), "max-regular-delay")
	maxIrr := 0
	for _, bin := range last.Stats.IrregularDelays {
		if bin.Delay > maxIrr {
			maxIrr = bin.Delay
		}
	}
	b.ReportMetric(float64(maxIrr), "max-irregular-delay")
}

// BenchmarkE9Baselines runs the three comparison schemes on the same
// problem — experiment E9.
func BenchmarkE9Baselines(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	w, n, m := 4, 16, 16
	a := matrix.RandomDense(rng, n, m, 3)
	x := matrix.RandomVector(rng, m, 3)
	b.Run("dbt", func(b *testing.B) {
		b.ReportAllocs()
		s := core.NewMatVecSolver(w)
		var last *core.MatVecResult
		for i := 0; i < b.N; i++ {
			res, err := s.Solve(a, x, nil, core.MatVecOptions{})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Stats.T), "steps")
		b.ReportMetric(last.Stats.Utilization, "utilization")
	})
	b.Run("blockflush", func(b *testing.B) {
		b.ReportAllocs()
		var last *baseline.Result
		for i := 0; i < b.N; i++ {
			last = baseline.BlockFlush(a, x, nil, w)
		}
		b.ReportMetric(float64(last.T), "steps")
		b.ReportMetric(last.Utilization, "utilization")
		b.ReportMetric(float64(last.ExternalOps), "external-ops")
	})
	b.Run("directband", func(b *testing.B) {
		b.ReportAllocs()
		var last *baseline.Result
		for i := 0; i < b.N; i++ {
			last = baseline.DirectBand(a, x, nil)
		}
		b.ReportMetric(float64(last.T), "steps")
		b.ReportMetric(last.Utilization, "utilization")
		b.ReportMetric(float64(last.ArraySize), "PEs")
	})
}

// BenchmarkE10Sparse regenerates the sparsity ablation at three densities.
func BenchmarkE10Sparse(b *testing.B) {
	b.ReportAllocs()
	for _, density := range []float64{0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("density=%.2f", density), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(6))
			w, nb, mb := 4, 6, 6
			a := matrix.NewDense(nb*w, mb*w)
			for br := 0; br < nb; br++ {
				for bs := 0; bs < mb; bs++ {
					if rng.Float64() < density {
						for i := 0; i < w; i++ {
							for j := 0; j < w; j++ {
								a.Set(br*w+i, bs*w+j, float64(rng.Intn(9)-4))
							}
						}
					}
				}
			}
			x := matrix.RandomVector(rng, mb*w, 3)
			tr := sparse.NewMatVec(a, w)
			var last *sparse.Result
			for i := 0; i < b.N; i++ {
				res, err := tr.Solve(x, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.T), "steps")
			b.ReportMetric(tr.Density(), "density")
		})
	}
}

// BenchmarkF3Trace regenerates the Fig. 3 data-flow example (39 steps).
func BenchmarkF3Trace(b *testing.B) {
	b.ReportAllocs()
	var last *figures.Fig3Streams
	for i := 0; i < b.N; i++ {
		st, err := figures.Fig3Data(6, 9, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = st
	}
	if last.T != 39 {
		b.Fatalf("Fig.3 T=%d, want 39", last.T)
	}
	b.ReportMetric(float64(last.T), "steps")
}

// BenchmarkTransform isolates the cost of the DBT transformations
// themselves (no simulation) — the paper's "low generation difficulties"
// requirement (§1a).
func BenchmarkTransform(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(7))
	b.Run("matvec-band/n=64/w=8", func(b *testing.B) {
		b.ReportAllocs()
		a := matrix.RandomDense(rng, 64, 64, 3)
		for i := 0; i < b.N; i++ {
			t := dbt.NewMatVec(a, 8)
			if t.Band() == nil {
				b.Fatal("nil band")
			}
		}
	})
	b.Run("matmul-bands/n=16/w=4", func(b *testing.B) {
		b.ReportAllocs()
		am := matrix.RandomDense(rng, 16, 16, 3)
		bm := matrix.RandomDense(rng, 16, 16, 3)
		for i := 0; i < b.N; i++ {
			t := dbt.NewMatMul(am, bm, 4)
			if t.AHatBand() == nil || t.BHatBand() == nil {
				b.Fatal("nil band")
			}
		}
	})
}

// BenchmarkSolvers exercises the §4 extension solvers end to end.
func BenchmarkSolvers(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	n := 12
	a := matrix.RandomDense(rng, n, n, 2)
	for i := 0; i < n; i++ {
		a.Set(i, i, 30)
	}
	d := matrix.RandomVector(rng, n, 5)
	b.Run("jacobi", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := solve.Jacobi(a, d, 4, 200, 1e-8, solve.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gauss-seidel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := solve.GaussSeidel(a, d, 4, 200, 1e-8, solve.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Variants regenerates the §4 variant comparison: by-columns
// feedback delay (2n̄−1)w vs by-rows w, at identical T.
func BenchmarkE11Variants(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(10))
	w, nb, mb := 3, 4, 3
	a := matrix.RandomDense(rng, nb*w, mb*w, 3)
	x := matrix.RandomVector(rng, mb*w, 3)
	s := core.NewMatVecSolver(w)
	for _, mode := range []struct {
		name string
		opts core.MatVecOptions
	}{
		{"byrows", core.MatVecOptions{}},
		{"bycolumns", core.MatVecOptions{ByColumns: true}},
		{"lowerband", core.MatVecOptions{LowerBand: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var last *core.MatVecResult
			for i := 0; i < b.N; i++ {
				res, err := s.Solve(a, x, nil, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Stats.T), "steps")
			if len(last.Stats.FeedbackDelays) > 0 {
				b.ReportMetric(float64(last.Stats.FeedbackDelays[0]), "feedback-delay")
			}
		})
	}
}

// BenchmarkMatMulOverlap3 measures the 3-way hexagonal overlap (extension):
// three problems in barely more time than one.
func BenchmarkMatMulOverlap3(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(11))
	w := 3
	s := core.NewMatMulSolver(w)
	var as, bs []*matrix.Dense
	for i := 0; i < 3; i++ {
		as = append(as, matrix.RandomDense(rng, 2*w, 2*w, 2))
		bs = append(bs, matrix.RandomDense(rng, 2*w, 2*w, 2))
	}
	var stats *core.MatMulStats
	for i := 0; i < b.N; i++ {
		_, st, err := s.SolveMany(as, bs)
		if err != nil {
			b.Fatal(err)
		}
		stats = st
	}
	b.ReportMetric(float64(stats.T), "steps")
	b.ReportMetric(stats.Utilization, "utilization")
}

// BenchmarkTriSolve measures the dedicated triangular-solver array (band
// pass, 2n+w−2 steps) and the blocked dense solver built on it.
func BenchmarkTriSolve(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(12))
	w, n := 4, 32
	l := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, float64(rng.Intn(5)-2))
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	d := l.MulVec(matrix.RandomVector(rng, n, 3), nil)
	s := trisolve.NewSolver(w)
	var last *trisolve.DenseResult
	for i := 0; i < b.N; i++ {
		res, err := s.SolveLower(l, d)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.TriSteps), "tri-steps")
	b.ReportMetric(float64(last.MatVecSteps), "matvec-steps")
}

// BenchmarkBlockLU measures the LU factorization with array trailing
// updates (§4 extension).
func BenchmarkBlockLU(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	w, n := 4, 24
	a := matrix.RandomDense(rng, n, n, 2)
	for i := 0; i < n; i++ {
		a.Set(i, i, 25)
	}
	var stats *solve.LUStats
	for i := 0; i < b.N; i++ {
		_, _, st, err := solve.BlockLU(a, w, solve.Options{})
		if err != nil {
			b.Fatal(err)
		}
		stats = st
	}
	b.ReportMetric(float64(stats.ArraySteps), "array-steps")
	b.ReportMetric(float64(stats.HostOps), "host-ops")
}

// BenchmarkHexScale measures simulator cost growth with problem size (the
// simulation substrate itself, not a paper claim).
func BenchmarkHexScale(b *testing.B) {
	b.ReportAllocs()
	for _, pnm := range []int{1, 8, 27} {
		b.Run(fmt.Sprintf("pnm=%d", pnm), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(9))
			w := 3
			side := 1
			for side*side*side < pnm {
				side++
			}
			am := matrix.RandomDense(rng, side*w, side*w, 2)
			bm := matrix.RandomDense(rng, side*w, side*w, 2)
			s := core.NewMatMulSolver(w)
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(am, bm, core.MatMulOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngines compares the two execution engines on the headline
// shapes: the cycle-accurate structural oracle vs the compiled-schedule
// fast path (O(MACs), shape-cached).
func BenchmarkEngines(b *testing.B) {
	b.ReportAllocs()
	rngv := rand.New(rand.NewSource(20))
	w, nm := 8, 16
	av := matrix.RandomDense(rngv, nm*w, w, 3)
	xv := matrix.RandomVector(rngv, w, 3)
	hw := 3
	am := matrix.RandomDense(rngv, 3*hw, 3*hw, 2)
	bm := matrix.RandomDense(rngv, 3*hw, 3*hw, 2)
	for _, eng := range []struct {
		name string
		e    core.Engine
	}{{"oracle", core.EngineOracle}, {"compiled", core.EngineCompiled}} {
		b.Run("matvec/w=8/nm=16/"+eng.name, func(b *testing.B) {
			b.ReportAllocs()
			s := core.NewMatVecSolver(w)
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(av, xv, nil, core.MatVecOptions{Engine: eng.e}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("matmul/w=3/pnm=27/"+eng.name, func(b *testing.B) {
			b.ReportAllocs()
			s := core.NewMatMulSolver(hw)
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(am, bm, core.MatMulOptions{Engine: eng.e}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverEngines compares the two execution engines on the solver
// workloads the compiled plans cover since the plan/replay generalization:
// band and dense triangular solve, block LU, and the full direct solve.
// Every row runs steady-state on a reused workspace; the compiled rows
// must report 0 allocs/op (the compiled-path allocation diet).
func BenchmarkSolverEngines(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(30))
	w, n := 4, 96
	l := matrix.NewBand(n, n, -(w - 1), 0)
	for i := 0; i < n; i++ {
		for d := 1; d < w; d++ {
			if j := i - d; j >= 0 {
				l.Set(i, j, float64(rng.Intn(5)-2))
			}
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	bb := matrix.RandomVector(rng, n, 3)
	nd := 32
	ld := matrix.NewDense(nd, nd)
	for i := 0; i < nd; i++ {
		for j := 0; j < i; j++ {
			ld.Set(i, j, float64(rng.Intn(5)-2))
		}
		ld.Set(i, i, float64(1+rng.Intn(3)))
	}
	dd := ld.MulVec(matrix.RandomVector(rng, nd, 3), nil)
	a := matrix.RandomDense(rng, nd, nd, 2)
	for i := 0; i < nd; i++ {
		a.Set(i, i, 25)
	}
	da := a.MulVec(matrix.RandomVector(rng, nd, 3), nil)
	for _, eng := range []struct {
		name string
		e    core.Engine
	}{{"oracle", core.EngineOracle}, {"compiled", core.EngineCompiled}} {
		b.Run(fmt.Sprintf("trisolve-band/w=%d/n=%d/%s", w, n, eng.name), func(b *testing.B) {
			b.ReportAllocs()
			tw := trisolve.NewWorkspace(w)
			x := make(matrix.Vector, n)
			if _, err := tw.SolveBandInto(x, l, bb, eng.e); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tw.SolveBandInto(x, l, bb, eng.e); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("trisolve-dense/w=%d/n=%d/%s", w, nd, eng.name), func(b *testing.B) {
			b.ReportAllocs()
			tw := trisolve.NewWorkspace(w)
			x := make(matrix.Vector, nd)
			if _, err := tw.SolveLowerInto(x, ld, dd, eng.e); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tw.SolveLowerInto(x, ld, dd, eng.e); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blocklu/w=%d/n=%d/%s", w, nd, eng.name), func(b *testing.B) {
			b.ReportAllocs()
			ws := solve.NewWorkspace(w)
			opts := solve.Options{Engine: eng.e}
			if _, _, _, err := ws.BlockLU(a, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := ws.BlockLU(a, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("solve/w=%d/n=%d/%s", w, nd, eng.name), func(b *testing.B) {
			b.ReportAllocs()
			ws := solve.NewWorkspace(w)
			opts := solve.Options{Engine: eng.e}
			if _, _, err := ws.Solve(a, da, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ws.Solve(a, da, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntraSolveParallel measures the pass executor: BlockLU and the
// full Solve with the independent passes of each elimination step fanned
// across a pool of simulated arrays, vs the same decomposition run inline
// (results and stats are bit-identical either way — enforced by
// internal/solve/parallel_test.go). On multi-core hosts the worker rows
// scale; single-core CI shows executor overhead at parity.
func BenchmarkIntraSolveParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	w, n := 8, 128
	a := matrix.RandomDense(rng, n, n, 2)
	for i := 0; i < n; i++ {
		a.Set(i, i, 40)
	}
	d := a.MulVec(matrix.RandomVector(rng, n, 3), nil)
	opts := solve.Options{Engine: core.EngineCompiled}
	run := func(name string, ex *core.Executor) {
		ws := solve.NewWorkspaceExecutor(w, ex)
		b.Run("blocklu/"+name, func(b *testing.B) {
			b.ReportAllocs()
			if _, _, _, err := ws.BlockLU(a, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := ws.BlockLU(a, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("solve/"+name, func(b *testing.B) {
			b.ReportAllocs()
			if _, _, err := ws.Solve(a, d, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ws.Solve(a, d, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("serial", nil)
	for _, workers := range core.PassWorkerLadder(runtime.GOMAXPROCS(0)) {
		ex := core.NewExecutor(workers)
		run(fmt.Sprintf("workers=%d", workers), ex)
		ex.Close()
	}
}

// BenchmarkCompiledExec measures the steady-state compiled-schedule
// execution alone — schedule cached, bands packed, buffers reused — which
// must run at 0 allocs/op.
func BenchmarkCompiledExec(b *testing.B) {
	b.Run("matvec/w=8/nm=16", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(21))
		w, nm := 8, 16
		a := matrix.RandomDense(rng, nm*w, w, 3)
		x := matrix.RandomVector(rng, w, 3)
		t := dbt.NewMatVec(a, w)
		sch, err := schedule.MatVecFor(t, false)
		if err != nil {
			b.Fatal(err)
		}
		band := make([]float64, sch.Rows*w)
		t.PackBand(band)
		xbar := t.TransformX(x)
		bp := matrix.NewVector(sch.BLen)
		y := make([]float64, sch.Rows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sch.Exec(band, xbar, bp, y)
		}
		b.ReportMetric(float64(sch.MACs), "MACs")
	})
	b.Run("matmul/w=3/pnm=27", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(22))
		w := 3
		am := matrix.RandomDense(rng, 3*w, 3*w, 2)
		bm := matrix.RandomDense(rng, 3*w, 3*w, 2)
		t := dbt.NewMatMul(am, bm, w)
		sch := schedule.MatMulFor(t)
		aPack := make([]float64, sch.Dim*w)
		bPack := make([]float64, sch.Dim*w)
		t.PackAHat(aPack)
		t.PackBHat(bPack)
		ext := make([]float64, len(sch.ExtInits))
		o := make([]float64, sch.OLen())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sch.Exec(aPack, bPack, ext, o)
		}
		b.ReportMetric(float64(sch.MACs), "MACs")
	})
}

// BenchmarkSolveBatch measures multi-problem throughput across worker
// counts: near-linear scaling up to GOMAXPROCS is the acceptance bar for
// the batch API.
func BenchmarkSolveBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	w, nm := 8, 16
	var problems []core.MatVecProblem
	for i := 0; i < 256; i++ {
		problems = append(problems, core.MatVecProblem{
			A: matrix.RandomDense(rng, nm*w, w, 3),
			X: matrix.RandomVector(rng, w, 3),
		})
	}
	s := core.NewMatVecSolver(w)
	for _, workers := range core.WorkerLadder(runtime.GOMAXPROCS(0)) {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SolveBatchWorkers(problems, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(problems)*b.N)/b.Elapsed().Seconds(), "problems/s")
		})
	}
}
