// Command benchdiff compares two BENCH_*.json snapshots (written by
// cmd/benchjson) row by row and makes the perf trajectory enforceable: it
// prints per-row ns/op and allocs/op deltas and exits non-zero when any
// row regresses beyond the thresholds. CI diffs every push's bench-smoke
// snapshot against the committed baseline, so a catastrophic slowdown or
// an allocation regression on the compiled paths fails the build instead
// of landing silently.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.5 -alloc-slack 0 old.json new.json
//	benchdiff -allow-missing 'solve-batch/*' old.json new.json
//
// The ns/op threshold is relative: a row regresses when
// new > old·(1+threshold). Wall-clock is machine- and noise-dependent, so
// CI uses a deliberately loose threshold — the gate catches order-of-
// magnitude regressions, not percent-level jitter. Allocations are nearly
// deterministic, so the allocs gate is tight: a row regresses when
// new allocs > old allocs + alloc-slack. A baseline row absent from the
// new snapshot fails the diff (deletions and renames must update the
// committed baseline) unless its name matches one of -allow-missing's
// comma-separated path.Match globs — for rows whose names encode the host
// (solve-batch/workers=GOMAXPROCS).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path"
	"sort"
	"strings"
)

// Entry mirrors cmd/benchjson's per-benchmark snapshot row.
type Entry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot mirrors cmd/benchjson's file schema.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchmarks []Entry `json:"benchmarks"`
}

func load(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.30, "allowed relative ns/op regression (0.30 = +30%)")
	allocSlack := flag.Int64("alloc-slack", 0, "allowed absolute allocs/op regression")
	allowMissing := flag.String("allow-missing", "", "comma-separated path.Match globs of row names allowed to be absent from the new snapshot (machine-dependent names only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		os.Exit(2)
	}
	oldSnap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSnap, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newByName := make(map[string]Entry, len(newSnap.Benchmarks))
	for _, e := range newSnap.Benchmarks {
		newByName[e.Name] = e
	}

	fmt.Printf("benchdiff: %s (%s) → %s (%s), ns/op threshold +%.0f%%, alloc slack %d\n",
		flag.Arg(0), oldSnap.Date, flag.Arg(1), newSnap.Date, *threshold*100, *allocSlack)
	fmt.Printf("  %-44s %12s %12s %8s   %s\n", "benchmark", "old ns/op", "new ns/op", "Δ", "allocs old→new")
	regressions := 0
	missingOK := func(name string) bool {
		for _, pat := range strings.Split(*allowMissing, ",") {
			if pat == "" {
				continue
			}
			if ok, err := path.Match(pat, name); err == nil && ok {
				return true
			}
		}
		return false
	}
	ratios := make(map[string][]float64) // workload family → old/new speedups
	for _, old := range oldSnap.Benchmarks {
		cur, ok := newByName[old.Name]
		if !ok {
			if missingOK(old.Name) {
				fmt.Printf("  %-44s missing from new snapshot (allowed by pattern)\n", old.Name)
				continue
			}
			fmt.Printf("  %-44s MISSING from new snapshot\n", old.Name)
			regressions++
			continue
		}
		delete(newByName, old.Name)
		rel := 0.0
		if old.NsPerOp > 0 {
			rel = cur.NsPerOp/old.NsPerOp - 1
		}
		marks := ""
		if rel > *threshold {
			marks += " TIME-REGRESSION"
			regressions++
		}
		if cur.AllocsPerOp > old.AllocsPerOp+*allocSlack {
			marks += " ALLOC-REGRESSION"
			regressions++
		}
		fmt.Printf("  %-44s %12.0f %12.0f %+7.1f%%   %d→%d%s\n",
			old.Name, old.NsPerOp, cur.NsPerOp, rel*100, old.AllocsPerOp, cur.AllocsPerOp, marks)
		if old.NsPerOp > 0 && cur.NsPerOp > 0 {
			family := old.Name
			if i := strings.IndexByte(family, '/'); i >= 0 {
				family = family[:i]
			}
			ratios[family] = append(ratios[family], old.NsPerOp/cur.NsPerOp)
		}
	}
	for name := range newByName {
		fmt.Printf("  %-44s new row (no baseline)\n", name)
	}
	// Per-family geomean old/new speedup (>1 = new is faster), family =
	// first path segment of the row name. Geometric mean because the rows
	// are ratios: it weighs a 2× win and a 2× loss to exactly 1.
	families := make([]string, 0, len(ratios))
	for f := range ratios {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		logSum := 0.0
		for _, r := range ratios[f] {
			logSum += math.Log(r)
		}
		fmt.Printf("  geomean %-28s %6.2fx old/new (%d rows)\n",
			f+":", math.Exp(logSum/float64(len(ratios[f]))), len(ratios[f]))
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regressions beyond threshold\n", regressions)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions beyond threshold")
}
