// Command dbt solves a random dense problem of the requested shape on a
// fixed-size simulated systolic array and reports the transformation and
// run statistics — a quick way to see the size-independence claim on any
// (n, m, p, w).
//
// Usage:
//
//	dbt -op matvec -n 10 -m 14 -w 4 [-overlap]
//	dbt -op matmul -n 6 -p 8 -m 10 -w 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/matrix"
)

func main() {
	op := flag.String("op", "matvec", "operation: matvec or matmul")
	n := flag.Int("n", 10, "rows of A")
	m := flag.Int("m", 12, "cols of A (matvec) / cols of B (matmul)")
	p := flag.Int("p", 8, "cols of A = rows of B (matmul only)")
	w := flag.Int("w", 4, "systolic array size (PEs)")
	overlap := flag.Bool("overlap", false, "overlap two sub-problems (matvec)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	switch *op {
	case "matvec":
		a := matrix.RandomDense(r, *n, *m, 5)
		x := matrix.RandomVector(r, *m, 5)
		b := matrix.RandomVector(r, *n, 5)
		res, err := core.NewMatVecSolver(*w).Solve(a, x, b, core.MatVecOptions{Overlap: *overlap})
		fail(err)
		want := a.MulVec(x, b)
		fmt.Printf("y = A·x + b   A: %d×%d on a %d-PE linear array (n̄=%d, m̄=%d)\n",
			*n, *m, *w, res.Stats.NBar, res.Stats.MBar)
		fmt.Printf("  correct: %v (max |Δ| = %g)\n", res.Y.Equal(want, 0), res.Y.MaxAbsDiff(want))
		fmt.Printf("  steps: %d (paper formula %d)\n", res.Stats.T, res.Stats.PredictedT)
		fmt.Printf("  PE utilization: %.4f (paper formula %.4f)\n", res.Stats.Utilization, res.Stats.PredictedUtilization)
		fmt.Printf("  feedback edges: %d, all with delay w=%d: %v\n",
			len(res.Stats.FeedbackDelays), *w, allEqual(res.Stats.FeedbackDelays, *w))
	case "matmul":
		a := matrix.RandomDense(r, *n, *p, 4)
		b := matrix.RandomDense(r, *p, *m, 4)
		e := matrix.RandomDense(r, *n, *m, 4)
		res, err := core.NewMatMulSolver(*w).Solve(a, b, core.MatMulOptions{E: e})
		fail(err)
		want := a.Mul(b).AddM(e)
		fmt.Printf("C = A·B + E   A: %d×%d, B: %d×%d on a %d×%d hexagonal array (n̄=%d, p̄=%d, m̄=%d)\n",
			*n, *p, *p, *m, *w, *w, res.Stats.NBar, res.Stats.PBar, res.Stats.MBar)
		fmt.Printf("  correct: %v (max |Δ| = %g)\n", res.C.Equal(want, 0), res.C.MaxAbsDiff(want))
		fmt.Printf("  steps: %d (paper formula %d)\n", res.Stats.T, res.Stats.PredictedT)
		fmt.Printf("  PE utilization: %.4f (paper formula %.4f)\n", res.Stats.Utilization, res.Stats.PredictedUtilization)
		fmt.Printf("  regular feedback delays: %v, irregular: %v\n", res.Stats.RegularDelays, res.Stats.IrregularDelays)
	default:
		fmt.Fprintf(os.Stderr, "dbt: unknown op %q (want matvec or matmul)\n", *op)
		os.Exit(2)
	}
}

func allEqual(xs []int, v int) bool {
	for _, x := range xs {
		if x != v {
			return false
		}
	}
	return true
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbt:", err)
		os.Exit(1)
	}
}
