// Command sweep regenerates the paper's quantitative results (experiments
// E1–E16 and E20 of DESIGN.md): step-count formulas, utilization
// asymptotes, feedback delays, register demands, baseline comparisons, the
// sparsity ablation, the §4 variants, the execution-engine comparisons for
// the matrix-product and solver workloads, the intra-solve parallel
// executor scaling, the stream scheduler, the pattern-keyed sparse plan
// ladder, and the batched-replay depth ladder with the overlapped
// two-program schedule form — each as a table of paper-predicted vs
// simulator-measured values.
//
// Usage:
//
//	sweep            # run every experiment
//	sweep -exp E5    # run one experiment
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/schedule"
	"repro/internal/solve"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/trisolve"
)

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E16, E20); empty = all")
	flag.Parse()
	exps := []struct {
		id  string
		fn  func()
		doc string
	}{
		{"E1", e1, "matvec steps T = 2wn̄m̄+2w−3"},
		{"E2", e2, "matvec overlapped steps T = wn̄m̄+2w−2"},
		{"E3", e3, "matvec utilization → 1/2"},
		{"E4", e4, "matvec overlapped utilization → 1"},
		{"E5", e5, "matmul steps T = 3wp̄n̄m̄+4w−5"},
		{"E6", e6, "matmul utilization → 1/3"},
		{"E7", e7, "feedback delays (regular & irregular)"},
		{"E8", e8, "feedback register demand"},
		{"E9", e9, "baseline comparison"},
		{"E10", e10, "sparsity ablation"},
		{"E11", e11, "transformation variants (§4): by-columns, grouping, lower band, triangular array"},
		{"E12", e12, "execution engines: compiled-schedule speedup and batch throughput scaling"},
		{"E13", e13, "solver workloads on both engines: trisolve, LU, full and block-partitioned solve"},
		{"E14", e14, "intra-solve parallelism: pass executor scaling on BlockLU and the full solve"},
		{"E15", e15, "stream scheduler: sustained mixed-shape stream throughput across shard counts"},
		{"E16", e16, "pattern-keyed sparse plans: compiled engine across retained-block densities"},
		{"E20", e20, "batched replay depth ladder and the overlapped two-program schedule form"},
	}
	ran := false
	for _, e := range exps {
		if *exp == "" || *exp == e.id {
			fmt.Printf("== %s: %s ==\n", e.id, e.doc)
			e.fn()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func rng() *rand.Rand { return rand.New(rand.NewSource(1986)) }

func e1() {
	r := rng()
	fmt.Println("   w  n̄  m̄   T(paper)  T(measured)  match")
	for _, w := range []int{2, 3, 5, 8} {
		for _, nm := range [][2]int{{1, 1}, {2, 3}, {4, 4}, {6, 6}} {
			a := matrix.RandomDense(r, nm[0]*w, nm[1]*w, 3)
			x := matrix.RandomVector(r, nm[1]*w, 3)
			res, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
			check(err)
			fmt.Printf("  %2d %2d %2d   %8d  %11d  %v\n", w, nm[0], nm[1],
				res.Stats.PredictedT, res.Stats.T, res.Stats.T == res.Stats.PredictedT)
		}
	}
}

func e2() {
	r := rng()
	fmt.Println("   w  n̄  m̄   T(paper)  T(measured)  match")
	for _, w := range []int{2, 3, 5} {
		for _, nm := range [][2]int{{2, 2}, {4, 3}, {6, 2}} {
			a := matrix.RandomDense(r, nm[0]*w, nm[1]*w, 3)
			x := matrix.RandomVector(r, nm[1]*w, 3)
			res, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{Overlap: true})
			check(err)
			fmt.Printf("  %2d %2d %2d   %8d  %11d  %v\n", w, nm[0], nm[1],
				res.Stats.PredictedT, res.Stats.T, res.Stats.T == res.Stats.PredictedT)
		}
	}
}

func e3() {
	r := rng()
	w := 4
	fmt.Println("  n̄m̄    η(paper)  η(measured)   (→ 1/2)")
	for _, nm := range []int{1, 2, 4, 8, 16, 32} {
		a := matrix.RandomDense(r, nm*w, w, 3)
		x := matrix.RandomVector(r, w, 3)
		res, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
		check(err)
		fmt.Printf("  %4d   %.5f   %.5f\n", nm, res.Stats.PredictedUtilization, res.Stats.Utilization)
	}
}

func e4() {
	r := rng()
	w := 4
	fmt.Println("  n̄m̄    η(paper)  η(measured)   (→ 1)")
	for _, nm := range []int{2, 4, 8, 16, 32} {
		a := matrix.RandomDense(r, nm*w, w, 3)
		x := matrix.RandomVector(r, w, 3)
		res, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{Overlap: true})
		check(err)
		fmt.Printf("  %4d   %.5f   %.5f\n", nm, res.Stats.PredictedUtilization, res.Stats.Utilization)
	}
}

func e5() {
	r := rng()
	fmt.Println("   w  n̄  p̄  m̄   T(paper)  T(measured)  match")
	for _, w := range []int{2, 3, 4} {
		for _, s := range [][3]int{{1, 1, 1}, {2, 2, 3}, {2, 3, 2}, {3, 2, 3}} {
			a := matrix.RandomDense(r, s[0]*w, s[1]*w, 2)
			b := matrix.RandomDense(r, s[1]*w, s[2]*w, 2)
			res, err := core.NewMatMulSolver(w).Solve(a, b, core.MatMulOptions{})
			check(err)
			fmt.Printf("  %2d %2d %2d %2d   %8d  %11d  %v\n", w, s[0], s[1], s[2],
				res.Stats.PredictedT, res.Stats.T, res.Stats.T == res.Stats.PredictedT)
		}
	}
}

func e6() {
	r := rng()
	w := 3
	fmt.Println("  p̄n̄m̄   η(paper)  η(measured)   (→ 1/3)")
	for _, pnm := range []int{1, 2, 4, 8, 18} {
		a := matrix.RandomDense(r, pnm*w, w, 2)
		b := matrix.RandomDense(r, w, w, 2)
		res, err := core.NewMatMulSolver(w).Solve(a, b, core.MatMulOptions{})
		check(err)
		fmt.Printf("  %5d   %.5f   %.5f\n", pnm, res.Stats.PredictedUtilization, res.Stats.Utilization)
	}
}

func e7() {
	r := rng()
	fmt.Println("  matvec: every feedback edge must have delay w")
	for _, w := range []int{2, 4, 6} {
		a := matrix.RandomDense(r, 2*w, 3*w, 2)
		x := matrix.RandomVector(r, 3*w, 2)
		res, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
		check(err)
		uniform := true
		for _, d := range res.Stats.FeedbackDelays {
			if d != w {
				uniform = false
			}
		}
		fmt.Printf("    w=%d: %d edges, all delay %d: %v\n", w, len(res.Stats.FeedbackDelays), w, uniform)
	}
	fmt.Println("  matmul: regular delays w (sub-diagonals) and 2w (main diagonal);")
	fmt.Println("  irregular delays 3w(p̄(n̄−1)+1)−2w and 3w·n̄p̄(m̄−1)+w")
	fmt.Println("  [paper quotes 6(w−1)(n̄−1)p̄+w and 6(n̄p̄)(m̄−1)(w−1)+w — same affine")
	fmt.Println("   shape and same +w constant; slope differs by the I/O latching convention]")
	for _, s := range [][4]int{{2, 2, 3, 3}, {3, 2, 2, 4}} {
		nb, pb, mb, w := s[0], s[1], s[2], s[3]
		a := matrix.RandomDense(r, nb*w, pb*w, 2)
		b := matrix.RandomDense(r, pb*w, mb*w, 2)
		res, err := core.NewMatMulSolver(w).Solve(a, b, core.MatMulOptions{})
		check(err)
		fmt.Printf("    w=%d n̄=%d p̄=%d m̄=%d: regular %v, irregular %v (paper U: %d, L: %d)\n",
			w, nb, pb, mb, schedule.BinDelays(res.Stats.RegularDelays), schedule.BinDelays(res.Stats.IrregularDelays),
			analysis.MatMulIrregularDelayU(w, nb, pb), analysis.MatMulIrregularDelayL(w, nb, pb, mb))
	}
}

func e8() {
	r := rng()
	fmt.Println("   w   main diag(paper 2w)  sub-diag(paper w)  measured max regular")
	for _, w := range []int{2, 3, 4, 5} {
		a := matrix.RandomDense(r, 2*w, 2*w, 2)
		b := matrix.RandomDense(r, 2*w, 2*w, 2)
		res, err := core.NewMatMulSolver(w).Solve(a, b, core.MatMulOptions{})
		check(err)
		md, sub, _ := analysis.MatMulRegisterDemand(w)
		max := 0
		for _, bin := range res.Stats.RegularDelays {
			if bin.Delay > max {
				max = bin.Delay
			}
		}
		fmt.Printf("  %2d   %19d  %17d  %20d\n", w, md, sub, max)
	}
}

func e9() {
	r := rng()
	w := 4
	n, m := 16, 16
	a := matrix.RandomDense(r, n, m, 3)
	x := matrix.RandomVector(r, m, 3)
	dbtRes, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
	check(err)
	over, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{Overlap: true})
	check(err)
	flush := baseline.BlockFlush(a, x, nil, w)
	direct := baseline.DirectBand(a, x, nil)
	fmt.Printf("  scheme           PEs     T     η       external ops\n")
	fmt.Printf("  DBT              %3d  %5d   %.4f   0\n", w, dbtRes.Stats.T, dbtRes.Stats.Utilization)
	fmt.Printf("  DBT overlapped   %3d  %5d   %.4f   0\n", w, over.Stats.T, over.Stats.Utilization)
	fmt.Printf("  block flush      %3d  %5d   %.4f   %d\n", flush.ArraySize, flush.T, flush.Utilization, flush.ExternalOps)
	fmt.Printf("  direct band      %3d  %5d   %.4f   0   (array size grows with problem)\n",
		direct.ArraySize, direct.T, direct.Utilization)
}

func e10() {
	r := rng()
	w := 4
	nb, mb := 8, 8
	fmt.Println("  density   Q    T(sparse)  T(dense DBT)  speedup")
	for _, density := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		a := matrix.NewDense(nb*w, mb*w)
		for br := 0; br < nb; br++ {
			for bs := 0; bs < mb; bs++ {
				if r.Float64() < density {
					for i := 0; i < w; i++ {
						for j := 0; j < w; j++ {
							a.Set(br*w+i, bs*w+j, float64(r.Intn(9)-4))
						}
					}
				}
			}
		}
		x := matrix.RandomVector(r, mb*w, 3)
		tr := sparse.NewMatVec(a, w)
		res, err := tr.Solve(x, nil)
		check(err)
		dense := analysis.MatVecSteps(w, nb, mb)
		sp := 0.0
		if res.T > 0 {
			sp = float64(dense) / float64(res.T)
		}
		fmt.Printf("   %.2f   %3d   %8d  %12d   %.2fx\n", density, res.Q, res.T, dense, sp)
	}
}

func e11() {
	r := rng()
	w := 3
	fmt.Println("  by-rows vs by-columns (same T, different feedback registers):")
	fmt.Println("   n̄  m̄    T     delay(by-rows)  delay(by-columns)  (2n̄−1)w")
	for _, nm := range [][2]int{{2, 3}, {4, 2}, {6, 4}} {
		nb, mb := nm[0], nm[1]
		a := matrix.RandomDense(r, nb*w, mb*w, 3)
		x := matrix.RandomVector(r, mb*w, 3)
		rows, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
		check(err)
		cols, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{ByColumns: true})
		check(err)
		dr, dc := 0, 0
		if len(rows.Stats.FeedbackDelays) > 0 {
			dr = rows.Stats.FeedbackDelays[0]
		}
		if len(cols.Stats.FeedbackDelays) > 0 {
			dc = cols.Stats.FeedbackDelays[0]
		}
		fmt.Printf("   %2d %2d  %5d   %13d  %17d  %7d\n",
			nb, mb, rows.Stats.T, dr, dc, analysis.ByColumnsFeedbackDelay(w, nb))
	}
	fmt.Println("  PE grouping (§2, 2 PEs → 1): grouped η vs plain η (conflict-free):")
	a := matrix.RandomDense(r, 16*4, 4, 3)
	x := matrix.RandomVector(r, 4, 3)
	res, err := core.NewMatVecSolver(4).Solve(a, x, nil, core.MatVecOptions{})
	check(err)
	fmt.Printf("   w=4 n̄m̄=16: η=%.4f grouped=%.4f conflicts=%d\n",
		res.Stats.Utilization, res.Stats.GroupedUtilization, res.Stats.GroupableConflicts)
	low, err := core.NewMatVecSolver(4).Solve(a, x, nil, core.MatVecOptions{LowerBand: true})
	check(err)
	fmt.Printf("  lower-band variant: same T (%d = %d) and result (Δ=%g)\n",
		low.Stats.T, res.Stats.T, low.Y.MaxAbsDiff(res.Y))
	fmt.Println("  triangular solver array (2n+w−2 steps):")
	for _, n := range []int{6, 12, 24} {
		l := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, float64(r.Intn(5)-2))
			}
			l.Set(i, i, float64(1+r.Intn(3)))
		}
		want := matrix.RandomVector(r, n, 3)
		sres, err := trisolve.NewSolver(4).SolveLower(l, l.MulVec(want, nil))
		check(err)
		fmt.Printf("   n=%2d: tri %d steps (%d passes) + matvec %d steps (%d passes), error %.1e\n",
			n, sres.TriSteps, sres.TriPasses, sres.MatVecSteps, sres.MatVecPasses, sres.X.MaxAbsDiff(want))
	}
}

// e12 is not a paper experiment but a simulator-substrate one: it measures
// the compiled-schedule engine against the cycle-accurate oracle on
// identical problems (results are checked bit-for-bit as a side effect)
// and the batch API's throughput scaling across worker counts.
func e12() {
	r := rng()
	fmt.Println("  engine comparison (identical results, wall-clock per solve):")
	fmt.Println("   problem            oracle      compiled   speedup")
	av := matrix.RandomDense(r, 16*8, 8, 3)
	xv := matrix.RandomVector(r, 8, 3)
	am := matrix.RandomDense(r, 9, 9, 2)
	bm := matrix.RandomDense(r, 9, 9, 2)
	for _, c := range []struct {
		name string
		run  func(eng core.Engine) error
	}{
		{"matvec w=8 n̄m̄=16", func(eng core.Engine) error {
			_, err := core.NewMatVecSolver(8).Solve(av, xv, nil, core.MatVecOptions{Engine: eng})
			return err
		}},
		{"matmul w=3 p̄n̄m̄=27", func(eng core.Engine) error {
			_, err := core.NewMatMulSolver(3).Solve(am, bm, core.MatMulOptions{Engine: eng})
			return err
		}},
	} {
		timeOf := func(eng core.Engine) time.Duration {
			const reps = 200
			check(c.run(eng)) // warm up schedule cache and allocator
			start := time.Now()
			for i := 0; i < reps; i++ {
				check(c.run(eng))
			}
			return time.Since(start) / reps
		}
		to := timeOf(core.EngineOracle)
		tc := timeOf(core.EngineCompiled)
		fmt.Printf("   %-18s %9s  %9s   %5.1fx\n", c.name, to, tc, float64(to)/float64(tc))
	}

	fmt.Printf("  batch throughput (%d problems, matvec w=8 n̄m̄=16, GOMAXPROCS=%d):\n",
		128, runtime.GOMAXPROCS(0))
	problems := make([]core.MatVecProblem, 128)
	for i := range problems {
		problems[i] = core.MatVecProblem{
			A: matrix.RandomDense(r, 16*8, 8, 3),
			X: matrix.RandomVector(r, 8, 3),
		}
	}
	s := core.NewMatVecSolver(8)
	var base time.Duration
	for _, workers := range core.WorkerLadder(runtime.GOMAXPROCS(0)) {
		start := time.Now()
		_, err := s.SolveBatchWorkers(problems, workers)
		check(err)
		el := time.Since(start)
		if workers == 1 {
			base = el
		}
		fmt.Printf("   workers=%2d: %10s   %8.0f problems/s   speedup %.2fx\n",
			workers, el, float64(len(problems))/el.Seconds(), float64(base)/float64(el))
	}
}

// e13 measures the solver workloads across engines: every case runs on the
// cycle-accurate oracle and the compiled-schedule fast path, results are
// cross-checked bit-for-bit, and wall-clock per solve is reported.
func e13() {
	r := rng()
	w := 4

	// Band triangular solve on the dedicated array.
	n := 96
	l := matrix.NewBand(n, n, -(w - 1), 0)
	for i := 0; i < n; i++ {
		for d := 1; d < w; d++ {
			if j := i - d; j >= 0 {
				l.Set(i, j, float64(r.Intn(5)-2))
			}
		}
		l.Set(i, i, float64(1+r.Intn(3)))
	}
	bb := matrix.RandomVector(r, n, 3)

	// Dense solver inputs (lower triangular and general).
	nd := 32
	ld := matrix.NewDense(nd, nd)
	for i := 0; i < nd; i++ {
		for j := 0; j < i; j++ {
			ld.Set(i, j, float64(r.Intn(5)-2))
		}
		ld.Set(i, i, float64(1+r.Intn(3)))
	}
	dd := ld.MulVec(matrix.RandomVector(r, nd, 3), nil)
	a := matrix.RandomDense(r, nd, nd, 2)
	for i := 0; i < nd; i++ {
		a.Set(i, i, 25)
	}
	da := a.MulVec(matrix.RandomVector(r, nd, 3), nil)

	fmt.Println("  every case solved on both engines, results bit-identical:")
	fmt.Println("   workload                  oracle      compiled   speedup")
	for _, c := range []struct {
		name string
		run  func(eng core.Engine) (matrix.Vector, error)
	}{
		{fmt.Sprintf("trisolve band n=%d", n), func(eng core.Engine) (matrix.Vector, error) {
			res, err := trisolve.New(w).SolveBandEngine(l, bb, eng)
			if err != nil {
				return nil, err
			}
			return res.X, nil
		}},
		{fmt.Sprintf("trisolve dense n=%d", nd), func(eng core.Engine) (matrix.Vector, error) {
			res, err := trisolve.NewSolverEngine(w, eng).SolveLower(ld, dd)
			if err != nil {
				return nil, err
			}
			return res.X, nil
		}},
		{fmt.Sprintf("block LU n=%d", nd), func(eng core.Engine) (matrix.Vector, error) {
			lf, uf, _, err := solve.BlockLU(a, w, solve.Options{Engine: eng})
			if err != nil {
				return nil, err
			}
			return append(matrix.Vector(nil), append(lf.RawRow(nd-1), uf.RawRow(0)...)...), nil
		}},
		{fmt.Sprintf("full solve n=%d", nd), func(eng core.Engine) (matrix.Vector, error) {
			x, _, err := solve.Solve(a, da, w, solve.Options{Engine: eng})
			return x, err
		}},
		{fmt.Sprintf("blockpart solve n=%d", nd-3), func(eng core.Engine) (matrix.Vector, error) {
			x, _, err := solve.BlockPartitionedSolve(a.Slice(0, nd-3, 0, nd-3), da[:nd-3], w, solve.Options{Engine: eng})
			return x, err
		}},
	} {
		var res [2]matrix.Vector
		var times [2]time.Duration
		for ei, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
			const reps = 20
			x, err := c.run(eng) // warm up plan cache and allocator
			check(err)
			start := time.Now()
			for i := 0; i < reps; i++ {
				x, err = c.run(eng)
				check(err)
			}
			times[ei] = time.Since(start) / reps
			res[ei] = x
		}
		match := "bit-identical"
		if !res[0].Equal(res[1], 0) {
			match = "MISMATCH"
		}
		fmt.Printf("   %-24s %9s  %9s   %5.1fx   %s\n",
			c.name, times[0], times[1], float64(times[0])/float64(times[1]), match)
		if match == "MISMATCH" {
			// Never expected: the equivalence suites and soak enforce this
			// continuously. Abort after printing the offending row.
			fmt.Fprintf(os.Stderr, "sweep: cross-engine mismatch on %s\n", c.name)
			os.Exit(1)
		}
	}
}

// e14 measures intra-solve parallelism: BlockLU and the full direct solve
// with every elimination step's independent passes fanned across the pass
// executor, against the identical serial decomposition. Results and stats
// are checked bit-identical on every row (the decomposition never depends
// on the worker count); wall-clock scaling needs real cores — single-core
// containers show executor overhead at parity.
func e14() {
	r := rng()
	w, n := 8, 96
	a := matrix.RandomDense(r, n, n, 2)
	for i := 0; i < n; i++ {
		a.Set(i, i, 40)
	}
	d := a.MulVec(matrix.RandomVector(r, n, 3), nil)
	opts := solve.Options{Engine: core.EngineCompiled}

	serialWS := solve.NewWorkspace(w)
	lRef, uRef, stRef, err := serialWS.BlockLU(a, opts)
	check(err)
	lRef, uRef = lRef.Clone(), uRef.Clone()
	stRefCopy := *stRef
	xRef, sstRef, err := serialWS.Solve(a, d, opts)
	check(err)
	xRef = xRef.Clone()
	sstRefCopy := *sstRef

	fmt.Printf("  blocklu/solve w=%d n=%d, compiled engine, GOMAXPROCS=%d:\n", w, n, runtime.GOMAXPROCS(0))
	fmt.Println("   arrays      blocklu      solve   vs serial (blocklu)   identical")
	timeOf := func(ws *solve.Workspace, fn func(*solve.Workspace) error) time.Duration {
		const reps = 10
		check(fn(ws)) // warm
		start := time.Now()
		for i := 0; i < reps; i++ {
			check(fn(ws))
		}
		return time.Since(start) / reps
	}
	var serialLU time.Duration
	row := func(name string, ex *core.Executor) {
		ws := solve.NewWorkspaceExecutor(w, ex)
		lu := timeOf(ws, func(ws *solve.Workspace) error {
			l, u, st, err := ws.BlockLU(a, opts)
			if err != nil {
				return err
			}
			if !l.Equal(lRef, 0) || !u.Equal(uRef, 0) || !reflect.DeepEqual(*st, stRefCopy) {
				fmt.Fprintln(os.Stderr, "sweep: parallel BlockLU diverged from serial")
				os.Exit(1)
			}
			return nil
		})
		sv := timeOf(ws, func(ws *solve.Workspace) error {
			x, st, err := ws.Solve(a, d, opts)
			if err != nil {
				return err
			}
			if !x.Equal(xRef, 0) || !reflect.DeepEqual(*st, sstRefCopy) {
				fmt.Fprintln(os.Stderr, "sweep: parallel Solve diverged from serial")
				os.Exit(1)
			}
			return nil
		})
		if name == "serial" {
			serialLU = lu
		}
		fmt.Printf("   %-10s %9s  %9s   %17.2fx   bit-identical\n", name, lu, sv, float64(serialLU)/float64(lu))
	}
	row("serial", nil)
	for _, workers := range core.PassWorkerLadder(runtime.GOMAXPROCS(0)) {
		ex := core.NewExecutor(workers)
		row(fmt.Sprintf("workers=%d", workers), ex)
		ex.Close()
	}
}

// e15 measures the stream scheduler: a sustained mixed-shape stream of
// compiled matvec jobs (two shapes recycled, so the shape-affinity routing
// keeps hitting warm plan memos) driven through schedulers at shard counts
// {1, 2, NumCPU}. Every result is checked bit-for-bit against a serial
// solve; throughput is wall-clock jobs/s. Single-core hosts show scheduler
// overhead at parity — the scaling rows need real cores.
func e15() {
	r := rng()
	const jobs = 512
	shapes := []struct{ n, m int }{{16 * 8, 8}, {8 * 8, 8}}
	type problem struct {
		a    *matrix.Dense
		x    matrix.Vector
		want matrix.Vector
	}
	problems := make([]problem, len(shapes))
	for i, sh := range shapes {
		a := matrix.RandomDense(r, sh.n, sh.m, 3)
		x := matrix.RandomVector(r, sh.m, 3)
		problems[i] = problem{a: a, x: x, want: a.MulVec(x, nil)}
	}
	fmt.Printf("  mixed-shape compiled stream, %d jobs/run, GOMAXPROCS=%d:\n", jobs, runtime.GOMAXPROCS(0))
	fmt.Println("   shards      wall        jobs/s   vs 1 shard   identical")
	var base time.Duration
	for _, shards := range core.PassWorkerLadder(runtime.GOMAXPROCS(0)) {
		s := stream.New(stream.Config{Shards: shards, QueueBound: 64})
		dsts := make([]matrix.Vector, jobs)
		tickets := make([]stream.PassTicket, jobs)
		for k := range dsts {
			dsts[k] = make(matrix.Vector, problems[k%len(problems)].a.Rows())
		}
		runOnce := func() {
			for k := 0; k < jobs; k++ {
				p := problems[k%len(problems)]
				tk, err := s.SubmitMatVecInto(dsts[k], p.a, p.x, nil, 8, core.EngineCompiled)
				check(err)
				tickets[k] = tk
			}
			for k := 0; k < jobs; k++ {
				_, err := tickets[k].Wait()
				check(err)
			}
		}
		runOnce() // warm every shard's plan memo
		start := time.Now()
		runOnce()
		el := time.Since(start)
		identical := true
		for k := range dsts {
			if !dsts[k].Equal(problems[k%len(problems)].want, 0) {
				identical = false
			}
		}
		if !identical {
			fmt.Fprintln(os.Stderr, "sweep: stream result diverged from serial reference")
			os.Exit(1)
		}
		if shards == 1 {
			base = el
		}
		fmt.Printf("   %-8d %9s  %10.0f   %8.2fx   bit-identical\n",
			shards, el, float64(jobs)/el.Seconds(), float64(base)/float64(el))
		st := s.Stats()
		if st.Submitted != 2*jobs || st.Completed != 2*jobs {
			fmt.Fprintf(os.Stderr, "sweep: stream stats %+v, want %d submitted and completed\n", st, 2*jobs)
			os.Exit(1)
		}
		s.Close()
	}
}

// e16 measures the pattern-keyed sparse plans: a density ladder of random
// retained-block patterns solved on both engines, results and statistics
// required DeepEqual on every rung (the compiled plan is keyed by the
// pattern digest and verified against the full pattern on cache hits), with
// per-solve wall-clock, the measured schedule length against the paper's
// dense DBT cost, and the closed-form T check.
func e16() {
	r := rng()
	w, nb, mb := 4, 8, 8
	x := matrix.RandomVector(r, mb*w, 3)
	b := matrix.RandomVector(r, nb*w, 3)
	fmt.Println("  every pattern solved on both engines, results and stats DeepEqual:")
	fmt.Println("  density   Q      T  T(formula)    oracle   compiled   speedup   vs dense DBT")
	for _, density := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		a := matrix.NewDense(nb*w, mb*w)
		for br := 0; br < nb; br++ {
			for bs := 0; bs < mb; bs++ {
				if r.Float64() < density {
					for i := 0; i < w; i++ {
						for j := 0; j < w; j++ {
							a.Set(br*w+i, bs*w+j, float64(r.Intn(9)-4))
						}
					}
				}
			}
		}
		tr := sparse.NewMatVec(a, w)
		timeOf := func(eng core.Engine) (*sparse.Result, time.Duration) {
			const reps = 50
			res, err := tr.SolveEngine(x, b, eng) // warm plan cache and allocator
			check(err)
			start := time.Now()
			for i := 0; i < reps; i++ {
				res, err = tr.SolveEngine(x, b, eng)
				check(err)
			}
			return res, time.Since(start) / reps
		}
		ores, to := timeOf(core.EngineOracle)
		cres, tc := timeOf(core.EngineCompiled)
		if !reflect.DeepEqual(cres, ores) {
			fmt.Fprintf(os.Stderr, "sweep: sparse engines disagree at density %.2f\n", density)
			os.Exit(1)
		}
		if cres.T != tr.PredictedSteps() {
			fmt.Fprintf(os.Stderr, "sweep: sparse T=%d vs formula %d at density %.2f\n", cres.T, tr.PredictedSteps(), density)
			os.Exit(1)
		}
		dense := analysis.MatVecSteps(w, nb, mb)
		sp := 0.0
		if cres.T > 0 {
			sp = float64(dense) / float64(cres.T)
		}
		speedup := float64(to) / float64(tc)
		fmt.Printf("   %.2f   %3d  %5d  %10d  %8s  %9s   %5.1fx   %.2fx\n",
			density, cres.Q, cres.T, tr.PredictedSteps(), to, tc, speedup, sp)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// e20 measures the batched replay and the overlapped two-program schedule
// form at the E16-style block-tridiagonal stencil. The depth ladder streams
// k right-hand sides through one pattern-keyed plan — every batched Result
// required DeepEqual to its per-vector solve — and prices the batch against
// k independent compiled solves. The overlap summary then pairs consecutive
// band programs on opposite injection parities: same Y and per-PE MAC
// counts as the back-to-back schedule (compiled and structural forms
// DeepEqual), fewer cycles, utilization lifted toward the dense bound.
func e20() {
	r := rng()
	w, nb := 4, 16
	a := matrix.NewDense(nb*w, nb*w)
	for br := 0; br < nb; br++ {
		for _, bc := range []int{br - 1, br, br + 1} {
			if bc < 0 || bc >= nb {
				continue
			}
			for i := 0; i < w; i++ {
				for j := 0; j < w; j++ {
					a.Set(br*w+i, bc*w+j, float64(r.Intn(9)-4))
				}
			}
		}
	}
	tr := sparse.NewMatVec(a, w)
	ar := core.NewArena()
	fmt.Printf("  block-tridiagonal stencil w=%d n̄=%d, compiled engine; every batched\n", w, nb)
	fmt.Println("  Result DeepEqual its per-vector solve; looped = k SolveEngine calls,")
	fmt.Println("  batched = one arena PassManyInto (the 0-alloc streaming path):")
	fmt.Println("      k     looped    batched   speedup")
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		xs := make([]matrix.Vector, k)
		bs := make([]matrix.Vector, k)
		for v := range xs {
			xs[v] = matrix.RandomVector(r, nb*w, 3)
			bs[v] = matrix.RandomVector(r, nb*w, 3)
		}
		serial := make([]*sparse.Result, k)
		for v := range xs { // warm the plan cache, build the reference
			res, err := tr.SolveEngine(xs[v], bs[v], core.EngineCompiled)
			check(err)
			serial[v] = res
		}
		batched, err := tr.SolveMany(xs, bs, core.EngineCompiled)
		check(err)
		if !reflect.DeepEqual(batched, serial) {
			fmt.Fprintf(os.Stderr, "sweep: batched results diverge from per-vector solves at k=%d\n", k)
			os.Exit(1)
		}
		dsts := make([]matrix.Vector, k)
		for v := range dsts {
			dsts[v] = make(matrix.Vector, tr.N)
		}
		ar.Reset()
		if _, err := tr.PassManyInto(ar, dsts, xs, bs, core.EngineCompiled); err != nil {
			check(err)
		}
		for v := range dsts {
			if !dsts[v].Equal(serial[v].Y, 0) {
				fmt.Fprintf(os.Stderr, "sweep: batched pass vector %d diverges at k=%d\n", v, k)
				os.Exit(1)
			}
		}
		const reps = 400
		start := time.Now()
		for i := 0; i < reps; i++ {
			for v := range xs {
				_, err := tr.SolveEngine(xs[v], bs[v], core.EngineCompiled)
				check(err)
			}
		}
		loop := time.Since(start) / reps
		start = time.Now()
		for i := 0; i < reps; i++ {
			ar.Reset()
			_, err := tr.PassManyInto(ar, dsts, xs, bs, core.EngineCompiled)
			check(err)
		}
		batch := time.Since(start) / reps
		fmt.Printf("   %4d  %9s  %9s   %6.2fx\n", k, loop, batch, float64(loop)/float64(batch))
	}

	xv := matrix.RandomVector(r, nb*w, 3)
	bv := matrix.RandomVector(r, nb*w, 3)
	base, err := tr.SolveEngine(xv, bv, core.EngineCompiled)
	check(err)
	ovC, err := tr.SolveOverlappedEngine(xv, bv, core.EngineCompiled)
	check(err)
	ovO, err := tr.SolveOverlappedEngine(xv, bv, core.EngineOracle)
	check(err)
	if !reflect.DeepEqual(ovC, ovO) {
		fmt.Fprintln(os.Stderr, "sweep: overlapped engines disagree")
		os.Exit(1)
	}
	if !ovC.Y.Equal(base.Y, 0) || !reflect.DeepEqual(ovC.MACs, base.MACs) {
		fmt.Fprintln(os.Stderr, "sweep: overlapped schedule changed the results")
		os.Exit(1)
	}
	fmt.Printf("  overlap (structural and compiled forms DeepEqual, Y and per-PE MACs\n")
	fmt.Printf("  unchanged): T %d → %d steps, utilization %.3f → %.3f (%.2fx)\n",
		base.T, ovC.T, base.Utilization, ovC.Utilization, ovC.Utilization/base.Utilization)
}
