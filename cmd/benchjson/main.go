// Command benchjson records a machine-readable perf snapshot of the
// headline benchmarks: ns/op, allocs/op, B/op and the paper-comparable
// metrics (steps, MACs, problems/s) for the two execution engines across
// every compiled workload (matvec, matmul, trisolve, LU, full solve, and
// the pattern-keyed sparse matvec at a repeated-stencil pattern, E16), the
// solver workspaces (steady-state, 0 allocs/op on the compiled rows), the
// intra-solve parallel executor at worker counts {1, 2, NumCPU} (E14), the
// stream scheduler at shard counts {1, 2, NumCPU} (E15: single-job round
// trip at 0 allocs/op after warmup, plus deep-pipeline jobs/s, plus the
// pattern-routed sparse-stream rows, plus the solve-as-a-service rows of
// E17 — a warm streamed full direct solve at 0 allocs/op and a 128-deep
// solve-qps pipeline reporting solves/s), the batched-replay rows of E20 —
// k right-hand sides through one pattern-keyed plan, priced against k
// independent solves (the speedup-vs-loop metric), plus the overlapped
// two-program schedule row and the one-ticket batch stream rows — the
// robustness rows of E18 — the
// partially pivoted solve and the pivoted+refined solve on a row-scrambled
// system, pricing what "no input returns garbage" costs over the unpivoted
// fast path — the steady-state compiled
// execution, and the batch throughput API. It emits
// BENCH_<date>.json by default, extending the perf trajectory that future
// changes are judged against; cmd/benchdiff compares two snapshots and
// gates regressions in CI.
//
// Usage:
//
//	benchjson                 # writes BENCH_<yyyy-mm-dd>.json
//	benchjson -o snapshot.json
//	benchjson -o -            # stdout only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/matrix"
	"repro/internal/schedule"
	"repro/internal/solve"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/trisolve"
)

// Entry is one benchmark's snapshot.
type Entry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchmarks []Entry `json:"benchmarks"`
}

func bench(name string, metrics map[string]float64, fn func(b *testing.B)) Entry {
	res := testing.Benchmark(fn)
	e := Entry{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Metrics:     map[string]float64{},
	}
	for k, v := range res.Extra {
		e.Metrics[k] = v
	}
	for k, v := range metrics {
		e.Metrics[k] = v
	}
	if len(e.Metrics) == 0 {
		e.Metrics = nil
	}
	return e
}

func main() {
	out := flag.String("o", "", "output path; empty = BENCH_<date>.json, \"-\" = stdout only")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	// Headline shapes: matvec w=8 n̄m̄=16, matmul w=3 p̄n̄m̄=27.
	av := matrix.RandomDense(rng, 16*8, 8, 3)
	xv := matrix.RandomVector(rng, 8, 3)
	am := matrix.RandomDense(rng, 9, 9, 2)
	bm := matrix.RandomDense(rng, 9, 9, 2)
	vs := core.NewMatVecSolver(8)
	ms := core.NewMatMulSolver(3)

	var entries []Entry
	for _, eng := range []struct {
		name string
		e    core.Engine
	}{{"oracle", core.EngineOracle}, {"compiled", core.EngineCompiled}} {
		eng := eng
		entries = append(entries,
			bench("matvec/w=8/nm=16/"+eng.name, nil, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := vs.Solve(av, xv, nil, core.MatVecOptions{Engine: eng.e})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(res.Stats.T), "steps")
					}
				}
			}),
			bench("matmul/w=3/pnm=27/"+eng.name, nil, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := ms.Solve(am, bm, core.MatMulOptions{Engine: eng.e})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(res.Stats.T), "steps")
					}
				}
			}),
		)
	}

	// Solver workloads (trisolve band/dense, block LU, full solve) on both
	// engines. Shapes match BenchmarkSolverEngines and sweep E13.
	tw, tn := 4, 96
	lb := matrix.NewBand(tn, tn, -(tw - 1), 0)
	for i := 0; i < tn; i++ {
		for d := 1; d < tw; d++ {
			if j := i - d; j >= 0 {
				lb.Set(i, j, float64(rng.Intn(5)-2))
			}
		}
		lb.Set(i, i, float64(1+rng.Intn(3)))
	}
	tb := matrix.RandomVector(rng, tn, 3)
	nd := 32
	ld := matrix.NewDense(nd, nd)
	for i := 0; i < nd; i++ {
		for j := 0; j < i; j++ {
			ld.Set(i, j, float64(rng.Intn(5)-2))
		}
		ld.Set(i, i, float64(1+rng.Intn(3)))
	}
	dd := ld.MulVec(matrix.RandomVector(rng, nd, 3), nil)
	ag := matrix.RandomDense(rng, nd, nd, 2)
	for i := 0; i < nd; i++ {
		ag.Set(i, i, 25)
	}
	dg := ag.MulVec(matrix.RandomVector(rng, nd, 3), nil)
	// The same system with its rows scrambled: well-conditioned, but the
	// pivoted rows must recover the row order — a nontrivial permutation on
	// every factorization.
	agp := matrix.NewDense(nd, nd)
	dgp := make(matrix.Vector, nd)
	for i, pi := range rng.Perm(nd) {
		for j := 0; j < nd; j++ {
			agp.Set(i, j, ag.At(pi, j))
		}
		dgp[i] = dg[pi]
	}
	for _, eng := range []struct {
		name string
		e    core.Engine
	}{{"oracle", core.EngineOracle}, {"compiled", core.EngineCompiled}} {
		eng := eng
		entries = append(entries,
			bench(fmt.Sprintf("trisolve-band/w=%d/n=%d/%s", tw, tn, eng.name), nil, func(b *testing.B) {
				b.ReportAllocs()
				tws := trisolve.NewWorkspace(tw)
				x := make(matrix.Vector, tn)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					steps, err := tws.SolveBandInto(x, lb, tb, eng.e)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(steps), "steps")
					}
				}
			}),
			bench(fmt.Sprintf("trisolve-dense/w=%d/n=%d/%s", tw, nd, eng.name), nil, func(b *testing.B) {
				b.ReportAllocs()
				tws := trisolve.NewWorkspace(tw)
				x := make(matrix.Vector, nd)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := tws.SolveLowerInto(x, ld, dd, eng.e)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(st.TriSteps+st.MatVecSteps), "steps")
					}
				}
			}),
			bench(fmt.Sprintf("blocklu/w=%d/n=%d/%s", tw, nd, eng.name), nil, func(b *testing.B) {
				b.ReportAllocs()
				ws := solve.NewWorkspace(tw)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, _, st, err := ws.BlockLU(ag, solve.Options{Engine: eng.e})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(st.ArraySteps), "array-steps")
					}
				}
			}),
			bench(fmt.Sprintf("solve/w=%d/n=%d/%s", tw, nd, eng.name), nil, func(b *testing.B) {
				b.ReportAllocs()
				ws := solve.NewWorkspace(tw)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st, err := ws.Solve(ag, dg, solve.Options{Engine: eng.e})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(st.LU.ArraySteps+st.TriSteps+st.MatVecSteps), "array-steps")
					}
				}
			}),
			bench(fmt.Sprintf("solve-pivot/w=%d/n=%d/%s", tw, nd, eng.name), nil, func(b *testing.B) {
				b.ReportAllocs()
				ws := solve.NewWorkspace(tw)
				opts := solve.Options{Engine: eng.e, Pivot: solve.PivotPartial}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st, err := ws.Solve(agp, dgp, opts)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(st.LU.RowSwaps), "row-swaps")
					}
				}
			}),
			bench(fmt.Sprintf("solve-refine/w=%d/n=%d/%s", tw, nd, eng.name), nil, func(b *testing.B) {
				b.ReportAllocs()
				ws := solve.NewWorkspace(tw)
				opts := solve.Options{
					Engine: eng.e,
					Pivot:  solve.PivotPartial,
					Refine: solve.RefineOptions{MaxIters: 4},
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st, err := ws.Solve(agp, dgp, opts)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(st.Refine.Iters), "refine-iters")
					}
				}
			}),
		)
	}

	// Intra-solve parallelism (E14): BlockLU and full Solve on the pass
	// executor at worker counts {1, 2, NumCPU}, against the identical
	// serial decomposition. Results and stats are bit-identical across
	// rows; only wall-clock moves. Single-core hosts show executor
	// overhead at parity — the scaling rows need real cores.
	pw, pn := 8, 128
	ap := matrix.RandomDense(rng, pn, pn, 2)
	for i := 0; i < pn; i++ {
		ap.Set(i, i, 40)
	}
	dp := ap.MulVec(matrix.RandomVector(rng, pn, 3), nil)
	parRow := func(name string, metrics map[string]float64, ex *core.Executor) {
		ws := solve.NewWorkspaceExecutor(pw, ex)
		opts := solve.Options{Engine: core.EngineCompiled}
		entries = append(entries,
			bench(fmt.Sprintf("blocklu-par/w=%d/n=%d/%s", pw, pn, name), metrics, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := ws.BlockLU(ap, opts); err != nil {
						b.Fatal(err)
					}
				}
			}),
			bench(fmt.Sprintf("solve-par/w=%d/n=%d/%s", pw, pn, name), metrics, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := ws.Solve(ap, dp, opts); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}
	parRow("serial", nil, nil)
	for _, workers := range core.PassWorkerLadder(runtime.GOMAXPROCS(0)) {
		ex := core.NewExecutor(workers)
		// The 1- and 2-worker rungs keep numeric names; the NumCPU rung is
		// named "workers=max" so the row name never encodes the host's core
		// count (cmd/benchdiff matches rows by name across machines) — the
		// actual count travels in the metrics instead.
		name := fmt.Sprintf("workers=%d", workers)
		var metrics map[string]float64
		if workers > 2 {
			name = "workers=max"
			metrics = map[string]float64{"workers": float64(workers)}
		}
		parRow(name, metrics, ex)
		ex.Close()
	}

	// Sparse matvec (§4) on both engines at a repeated-stencil pattern
	// (block tridiagonal): the pattern-keyed compiled plan against the
	// structural simulator, results and stats bit-identical (E16).
	sw, snb := 4, 16
	sa := matrix.NewDense(snb*sw, snb*sw)
	for r := 0; r < snb; r++ {
		for _, s := range []int{r - 1, r, r + 1} {
			if s < 0 || s >= snb {
				continue
			}
			for i := 0; i < sw; i++ {
				for j := 0; j < sw; j++ {
					sa.Set(r*sw+i, s*sw+j, float64(rng.Intn(9)-4))
				}
			}
		}
	}
	str := sparse.NewMatVec(sa, sw)
	sx := matrix.RandomVector(rng, snb*sw, 3)
	sb := matrix.RandomVector(rng, snb*sw, 3)
	spPlan, err := schedule.SparseMatVecFor(str.W, str.NBar, str.MBar, str.Retained)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, eng := range []struct {
		name string
		e    core.Engine
	}{{"oracle", core.EngineOracle}, {"compiled", core.EngineCompiled}} {
		eng := eng
		entries = append(entries, bench(fmt.Sprintf("sparse/matvec/w=%d/nb=%d/tridiag/%s", sw, snb, eng.name),
			map[string]float64{"Q": float64(str.TotalBlocks()), "density": str.Density(), "plan-bytes": float64(spPlan.Bytes())},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := str.SolveEngine(sx, sb, eng.e)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(res.T), "steps")
					}
				}
			}))
	}

	// Batched replay at the same E16 stencil (E20): k right-hand sides
	// through one pattern-keyed plan. The loop row prices k independent
	// SolveEngine calls; the batch row streams the same k vectors through
	// PassManyInto on a reused arena (0 allocs/op warm) and carries the
	// speedup-vs-loop metric — the ≥1.5× batch acceptance criterion.
	for _, bk := range []int{4, 16} {
		bxs := make([]matrix.Vector, bk)
		bbs := make([]matrix.Vector, bk)
		bdsts := make([]matrix.Vector, bk)
		for v := range bxs {
			bxs[v] = matrix.RandomVector(rng, snb*sw, 3)
			bbs[v] = matrix.RandomVector(rng, snb*sw, 3)
			bdsts[v] = make(matrix.Vector, str.N)
		}
		loopRow := bench(fmt.Sprintf("sparse-batch-loop/w=%d/nb=%d/k=%d", sw, snb, bk),
			map[string]float64{"k": float64(bk)}, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for v := range bxs {
						if _, err := str.SolveEngine(bxs[v], bbs[v], core.EngineCompiled); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		bar := core.NewArena()
		batchRow := bench(fmt.Sprintf("sparse-batch/w=%d/nb=%d/k=%d", sw, snb, bk),
			map[string]float64{"k": float64(bk)}, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bar.Reset()
					if _, err := str.PassManyInto(bar, bdsts, bxs, bbs, core.EngineCompiled); err != nil {
						b.Fatal(err)
					}
				}
			})
		batchRow.Metrics["speedup-vs-loop"] = loopRow.NsPerOp / batchRow.NsPerOp
		entries = append(entries, loopRow, batchRow)
	}

	// Two-program overlapped schedule form at the E16 stencil: consecutive
	// band programs share the array on opposite injection parities, so the
	// compiled solve reports TOverlap steps and the lifted utilization —
	// same Y and per-PE stats, fewer cycles.
	entries = append(entries, bench(fmt.Sprintf("sparse-overlap/w=%d/nb=%d/tridiag/compiled", sw, snb),
		map[string]float64{
			"steps-overlap":   float64(spPlan.TOverlap),
			"steps-serial":    float64(spPlan.T),
			"utilization":     spPlan.OverlapUtilization(),
			"utilization-ser": spPlan.Utilization(),
		}, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := str.SolveOverlappedEngine(sx, sb, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.T), "steps")
				}
			}
		}))

	// Steady-state compiled execution (schedule cached, buffers reused):
	// the 0 allocs/op core of the engine.
	tv := dbt.NewMatVec(av, 8)
	schv, err := schedule.MatVecFor(tv, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	band := make([]float64, schv.Rows*8)
	tv.PackBand(band)
	xbar := tv.TransformX(xv)
	bp := matrix.NewVector(schv.BLen)
	ybuf := make([]float64, schv.Rows)
	entries = append(entries, bench("compiled-exec/matvec/w=8/nm=16",
		map[string]float64{"MACs": float64(schv.MACs), "plan-bytes": float64(schv.Bytes())}, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				schv.Exec(band, xbar, bp, ybuf)
			}
		}))
	// The grid-direct replay of the same plan: run descriptors over the
	// padded matrix and padded x, no pack and no x̄ expansion at all — what
	// the facade's compiled matvec path executes since the kernel rewrite.
	xpad := make([]float64, tv.MBar*8)
	copy(xpad, xv)
	entries = append(entries, bench("compiled-exec/matvec-grid/w=8/nm=16",
		map[string]float64{"MACs": float64(schv.MACs)}, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				schv.ExecGrid(tv.Grid.Padded().Raw(), xpad, bp, ybuf)
			}
		}))
	tm := dbt.NewMatMul(am, bm, 3)
	schm := schedule.MatMulFor(tm)
	aPack := make([]float64, schm.Dim*3)
	bPack := make([]float64, schm.Dim*3)
	tm.PackAHat(aPack)
	tm.PackBHat(bPack)
	ext := make([]float64, len(schm.ExtInits))
	oband := make([]float64, schm.OLen())
	entries = append(entries, bench("compiled-exec/matmul/w=3/pnm=27",
		map[string]float64{"MACs": float64(schm.MACs), "plan-bytes": float64(schm.Bytes())}, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				schm.Exec(aPack, bPack, ext, oband)
			}
		}))

	// Stream scheduler (E15): sustained compiled stream execution at shard
	// counts {1, 2, NumCPU}. The single-job rows measure the submit →
	// execute → redeem round trip on a warm affinity shard and pin the
	// acceptance criterion: 0 allocs/op per job after warmup. The qps rows
	// keep a deep mixed-shape pipeline in flight and report jobs/s.
	avB := matrix.RandomDense(rng, 8*8, 8, 3)
	xvB := matrix.RandomVector(rng, 8, 3)
	streamRows := func(name string, shards int, metrics map[string]float64) {
		s := stream.New(stream.Config{Shards: shards, QueueBound: 256})
		defer s.Close()
		dst := make(matrix.Vector, av.Rows())
		entries = append(entries, bench(fmt.Sprintf("stream/matvec/w=8/nm=16/%s", name), metrics, func(b *testing.B) {
			b.ReportAllocs()
			// Warm every shard on the shape (stealing can land early jobs
			// anywhere) before the measured steady state.
			for i := 0; i < 64; i++ {
				tk, err := s.SubmitMatVecInto(dst, av, xv, nil, 8, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, err := s.SubmitMatVecInto(dst, av, xv, nil, 8, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		}))
		const depth = 128
		dsts := make([]matrix.Vector, depth)
		tickets := make([]stream.PassTicket, depth)
		for k := range dsts {
			if k%2 == 0 {
				dsts[k] = make(matrix.Vector, av.Rows())
			} else {
				dsts[k] = make(matrix.Vector, avB.Rows())
			}
		}
		entries = append(entries, bench(fmt.Sprintf("stream-qps/matvec/w=8/mixed/%s", name), metrics, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k := 0; k < depth; k++ {
					var err error
					if k%2 == 0 {
						tickets[k], err = s.SubmitMatVecInto(dsts[k], av, xv, nil, 8, core.EngineCompiled)
					} else {
						tickets[k], err = s.SubmitMatVecInto(dsts[k], avB, xvB, nil, 8, core.EngineCompiled)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				for k := 0; k < depth; k++ {
					if _, err := tickets[k].Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(depth*b.N)/b.Elapsed().Seconds(), "jobs/s")
		}))
		// Pattern-routed sparse Into jobs on the warm affinity shard: the
		// sparse stream acceptance criterion, 0 allocs/op per job.
		sdst := make(matrix.Vector, str.N)
		entries = append(entries, bench(fmt.Sprintf("sparse-stream/matvec/w=%d/nb=%d/%s", sw, snb, name), metrics, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < 64; i++ {
				tk, err := s.SubmitSparseMatVecInto(sdst, str, sx, sb, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, err := s.SubmitSparseMatVecInto(sdst, str, sx, sb, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		}))
		// One batch ticket carrying k vectors through the pattern-routed
		// shard: the batched counterpart of the row above — amortized
		// per-vector cost, still 0 allocs/op warm.
		const batchK = 4
		bsdsts := make([]matrix.Vector, batchK)
		bsxs := make([]matrix.Vector, batchK)
		bsbs := make([]matrix.Vector, batchK)
		for k := range bsdsts {
			bsdsts[k] = make(matrix.Vector, str.N)
			bsxs[k] = matrix.RandomVector(rng, str.M, 3)
			bsbs[k] = matrix.RandomVector(rng, str.N, 3)
		}
		entries = append(entries, bench(fmt.Sprintf("sparse-batch-stream/w=%d/nb=%d/k=%d/%s", sw, snb, batchK, name), metrics, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < 64; i++ {
				tk, err := s.SubmitSparseBatchInto(bsdsts, str, bsxs, bsbs, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, err := s.SubmitSparseBatchInto(bsdsts, str, bsxs, bsbs, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batchK*b.N)/b.Elapsed().Seconds(), "vectors/s")
		}))
		// Solve-as-a-service (E17): the full direct solve (BlockLU + both
		// triangular phases) streamed as an Into ticket on the warm
		// affinity shard — the solve-stream acceptance criterion, 0
		// allocs/op per solve after warmup.
		gdst := make(matrix.Vector, nd)
		entries = append(entries, bench(fmt.Sprintf("solve-stream/w=%d/n=%d/%s", tw, nd, name), metrics, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < 64; i++ {
				tk, err := s.SubmitSolveInto(gdst, ag, dg, tw, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, err := s.SubmitSolveInto(gdst, ag, dg, tw, core.EngineCompiled)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		}))
		// Solve QPS: a 128-deep pipeline of in-flight solve tickets — the
		// solves/sec row the BENCH trajectory was missing.
		gdsts := make([]matrix.Vector, depth)
		gtickets := make([]stream.SolvePassTicket, depth)
		for k := range gdsts {
			gdsts[k] = make(matrix.Vector, nd)
		}
		entries = append(entries, bench(fmt.Sprintf("solve-qps/w=%d/n=%d/%s", tw, nd, name), metrics, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k := 0; k < depth; k++ {
					var err error
					if gtickets[k], err = s.SubmitSolveInto(gdsts[k], ag, dg, tw, core.EngineCompiled); err != nil {
						b.Fatal(err)
					}
				}
				for k := 0; k < depth; k++ {
					if _, err := gtickets[k].Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(depth*b.N)/b.Elapsed().Seconds(), "solves/s")
		}))
		// Scheduler counter snapshot after the rows above: the stream
		// robustness telemetry (admission/failure counters) recorded
		// alongside the perf numbers. Informational — benchdiff's ns/op
		// and allocs gates skip zero-ns rows.
		st := s.Stats()
		statMetrics := map[string]float64{
			"submitted": float64(st.Submitted),
			"completed": float64(st.Completed),
			"shed":      float64(st.Shed),
			"expired":   float64(st.Expired),
			"panics":    float64(st.Panics),
		}
		for k, v := range metrics {
			statMetrics[k] = v
		}
		entries = append(entries, Entry{
			Name:    fmt.Sprintf("stream-stats/%s", name),
			Metrics: statMetrics,
		})
	}
	for _, shards := range core.PassWorkerLadder(runtime.GOMAXPROCS(0)) {
		name := fmt.Sprintf("shards=%d", shards)
		var metrics map[string]float64
		if shards > 2 {
			name = "shards=max"
			metrics = map[string]float64{"shards": float64(shards)}
		}
		streamRows(name, shards, metrics)
	}

	// Batch throughput at full GOMAXPROCS.
	problems := make([]core.MatVecProblem, 128)
	for i := range problems {
		problems[i] = core.MatVecProblem{
			A: matrix.RandomDense(rng, 16*8, 8, 3),
			X: matrix.RandomVector(rng, 8, 3),
		}
	}
	entries = append(entries, bench(fmt.Sprintf("solve-batch/workers=%d", runtime.GOMAXPROCS(0)),
		nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vs.SolveBatch(problems); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(problems)*b.N)/b.Elapsed().Seconds(), "problems/s")
		}))

	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: entries,
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	if path == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(entries))
	for _, e := range entries {
		fmt.Printf("  %-36s %12.0f ns/op %6d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}
}
