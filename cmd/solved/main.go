// Command solved serves solve-as-a-service over HTTP: a thin facade
// (internal/solved) on the sharded stream scheduler that turns POSTed
// linear systems into streamed solve tickets and the runtime's typed
// failures into status codes — 429 + Retry-After when every queue is
// full, 504 on missed deadlines, 422 with the pivot index on singular
// systems. GET /stats exposes per-shard queue depths and the stream
// counters for dashboards.
//
// Usage:
//
//	solved -addr :8080 -shards 4 -queue 64 -policy shed -w 4
//
// Try it:
//
//	curl -s localhost:8080/solve -d '{"a":[[4,1],[1,3]],"d":[1,2],"w":2}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/solved"
	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "stream shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue bound (0 = default)")
	policy := flag.String("policy", "shed", "admission when saturated: block or shed")
	w := flag.Int("w", 4, "default simulated array size for requests that omit w")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	flag.Parse()

	var pol stream.Policy
	switch *policy {
	case "block":
		pol = stream.Block
	case "shed":
		pol = stream.Shed
	default:
		fmt.Fprintf(os.Stderr, "solved: unknown -policy %q (want block or shed)\n", *policy)
		os.Exit(2)
	}

	s := stream.New(stream.Config{Shards: *shards, QueueBound: *queue, Policy: pol})
	defer s.Close()
	srv := solved.New(solved.Config{Stream: s, W: *w, RetryAfter: *retryAfter})
	log.Printf("solved: serving on %s (%d shards, %s admission)", *addr, s.Shards(), pol)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
