// Command figures regenerates the paper's Figs. 1–6 and the appendix
// tables as text renderings, plus a supplementary Fig. 7: the boundary
// data flow of the Kung–Leiserson band triangular solver array the §4
// solver claims build on.
//
// Usage:
//
//	figures              # print all seven figures
//	figures -fig 3       # print one figure
//	figures -appendix    # print the appendix I/O index tables (Fig. 4 shape)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-7 (0 = all; 7 is the supplementary trisolve data flow)")
	appendix := flag.Bool("appendix", false, "print the appendix I-composition and C-extraction tables")
	flag.Parse()
	if *appendix {
		fmt.Println(figures.Appendix())
		return
	}
	render := map[int]func() string{
		1: figures.Fig1,
		2: figures.Fig2,
		3: figures.Fig3,
		4: figures.Fig4,
		5: figures.Fig5,
		6: figures.Fig6,
		7: figures.Fig7,
	}
	if *fig != 0 {
		f, ok := render[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (want 1-7)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for i := 1; i <= 7; i++ {
		fmt.Println(render[i]())
		fmt.Println()
	}
}
