// Command soak is a randomized differential tester: it drives every
// public code path (matvec by-rows / by-columns / lower-band / overlapped /
// sparse / multi-problem, matmul with and without E / 3-way overlapped,
// iterative and direct solvers, batched solves) on random shapes and
// compares each result bit-for-bit against host reference arithmetic,
// while also checking every measured step count against the paper's
// formulas. Every matvec/matmul case — and, in the solvers category, every
// triangular solve and block LU — runs through BOTH execution engines: the
// cycle-accurate structural oracle and the compiled-schedule fast path,
// with results and stats compared bit-for-bit. The sparse category is the
// pattern-keyed differential: random retained-block patterns solved on the
// structural simulator, the compiled pattern-keyed plan and an arena pass,
// all DeepEqual and matched against host arithmetic and the closed-form
// step count. The sparse-batch category extends that differential to the
// batched replay — random batch depths through SolveMany and the arena
// PassManyInto, every vector DeepEqual its per-vector solve — and to the
// overlapped two-program schedule form, which must keep Y and the per-PE
// stats while never taking more steps. The solvers category also
// exercises the full direct solve and the block-partitioned embedding, and
// replays block LU, the full solve and the triangular inverse on the
// intra-solve pass executor (independent passes fanned across simulated
// arrays), requiring results and stats bit-identical to the serial runs;
// the batch category additionally fans problems across the worker fleet
// and checks it against serial solves; the stream category drives a
// sustained mixed-shape problem stream through the sharded stream
// scheduler at random shard counts — the cross-runtime differential:
// every ticket (matvec, matmul and pattern-routed sparse, full and Into
// variants) must redeem to exactly what a serial solve of the same problem
// returns, stats included; and the chaos category re-runs the stream
// differential under a seeded fault injector (forced sheds, delays, job
// panics) with mixed priorities and deadlines — every fault must surface
// as its typed error (ErrSaturated, stream.ErrDeadlineExceeded,
// core.ErrPanicked with a stack), every non-faulted ticket must still
// redeem to the serial result, and the scheduler's counters must add up.
// The solve-stream category is the solve-as-a-service differential:
// random systems streamed as full and Into solve tickets with mixed
// engines, priorities and deadlines, each required DeepEqual — solution
// and stats — to the serial one-shot solve.Solve, plus a singular system
// whose typed failure must leave its shard serving.
// The conditioning category is the no-garbage invariant: adversarially
// conditioned systems — well-conditioned rows scrambled so factorization
// needs pivoting, exactly singular (a zero column), symmetric indefinite,
// and geometric diagonal ladders spanning mild to near-singular — solved
// with partial pivoting and iterative refinement. Every scenario must end
// in one of exactly two states: a finite solution with a converged
// condition report, bit-identical across both engines and the stream
// runtime, or a typed error (*solve.SingularError or
// *solve.IllConditionedError) — never NaN, Inf or a silently wrong
// vector.
// Exits non-zero on the first mismatch.
//
// Usage:
//
//	soak -n 200 -seed 7 -maxw 5 [-only chaos]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/trisolve"
)

var failures int

// exec is the shared pass executor the solvers category fans passes over.
var exec *core.Executor

func main() {
	n := flag.Int("n", 100, "random cases per category")
	seed := flag.Int64("seed", 1, "random seed")
	maxw := flag.Int("maxw", 5, "largest array size to draw")
	flag.StringVar(&only, "only", "", "run a single category (empty = all)")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	// One pass executor for the whole run: the solvers category replays
	// every direct solve on it and requires bit-identical results.
	exec = core.NewExecutor(4)
	defer exec.Close()

	run("matvec", *n, func() { matvecCase(rng, *maxw) })
	run("matmul", *n, func() { matmulCase(rng, *maxw) })
	run("sparse", *n/2, func() { sparseCase(rng, *maxw) })
	run("sparse-batch", *n/2, func() { sparseBatchCase(rng, *maxw) })
	run("solvers", *n/5, func() { solverCase(rng, *maxw) })
	run("batch", *n/10, func() { batchCase(rng, *maxw) })
	run("stream", *n/10, func() { streamCase(rng, *maxw) })
	run("solve-stream", *n/10, func() { solveStreamCase(rng, *maxw) })
	run("conditioning", *n/5, func() { conditioningCase(rng, *maxw) })
	run("chaos", *n/10, func() { chaosCase(rng, *maxw) })

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "soak: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("soak: all categories clean")
}

// only, when set by the -only flag, restricts the run to one category.
var only string

func run(name string, n int, f func()) {
	if only != "" && only != name {
		return
	}
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		f()
	}
	fmt.Printf("  %-12s %4d cases ok\n", name, n)
}

func fail(format string, args ...interface{}) {
	failures++
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
}

func matvecCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	n := 1 + rng.Intn(4*w)
	m := 1 + rng.Intn(4*w)
	a := matrix.RandomDense(rng, n, m, 5)
	x := matrix.RandomVector(rng, m, 5)
	b := matrix.RandomVector(rng, n, 5)
	want := a.MulVec(x, b)
	s := core.NewMatVecSolver(w)

	opts := core.MatVecOptions{
		LowerBand: rng.Intn(2) == 0,
		ByColumns: rng.Intn(3) == 0,
	}
	nbar := (n + w - 1) / w
	if !opts.ByColumns && nbar >= 2 && rng.Intn(3) == 0 {
		opts.Overlap = true
	}
	res, err := s.Solve(a, x, b, opts)
	if err != nil {
		fail("matvec solve (w=%d n=%d m=%d %+v): %v", w, n, m, opts, err)
		return
	}
	if !res.Y.Equal(want, 0) {
		fail("matvec wrong (w=%d n=%d m=%d %+v): off %g", w, n, m, opts, res.Y.MaxAbsDiff(want))
	}
	// Cross-engine: the structural oracle must agree bit-for-bit, result
	// and stats alike.
	oracleOpts := opts
	oracleOpts.Engine = core.EngineOracle
	ores, err := s.Solve(a, x, b, oracleOpts)
	if err != nil {
		fail("matvec oracle solve (w=%d n=%d m=%d %+v): %v", w, n, m, opts, err)
		return
	}
	if !res.Y.Equal(ores.Y, 0) {
		fail("matvec engines disagree on Y (w=%d n=%d m=%d %+v)", w, n, m, opts)
	}
	if !reflect.DeepEqual(res.Stats, ores.Stats) {
		fail("matvec engines disagree on stats (w=%d n=%d m=%d %+v):\ncompiled %+v\noracle   %+v",
			w, n, m, opts, res.Stats, ores.Stats)
	}
	if !opts.Overlap && res.Stats.T != res.Stats.PredictedT {
		fail("matvec T=%d vs paper %d (w=%d n=%d m=%d %+v)", res.Stats.T, res.Stats.PredictedT, w, n, m, opts)
	}
	for _, d := range res.Stats.FeedbackDelays {
		wantD := analysis.MatVecFeedbackDelay(w)
		if opts.ByColumns {
			wantD = (2*nbar - 1) * w
		}
		if d != wantD {
			fail("matvec feedback delay %d, want %d (%+v)", d, wantD, opts)
		}
	}
}

func matmulCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	n := 1 + rng.Intn(3*w)
	p := 1 + rng.Intn(3*w)
	m := 1 + rng.Intn(3*w)
	a := matrix.RandomDense(rng, n, p, 4)
	b := matrix.RandomDense(rng, p, m, 4)
	s := core.NewMatMulSolver(w)
	if rng.Intn(4) == 0 {
		// 3-way overlap path.
		as := []*matrix.Dense{a, matrix.RandomDense(rng, m, p, 4), matrix.RandomDense(rng, p, n, 4)}
		bs := []*matrix.Dense{b, matrix.RandomDense(rng, p, n, 4), matrix.RandomDense(rng, n, m, 4)}
		cs, _, err := s.SolveMany(as, bs)
		if err != nil {
			fail("matmul SolveMany: %v", err)
			return
		}
		for i := range cs {
			if !cs[i].Equal(as[i].Mul(bs[i]), 0) {
				fail("matmul SolveMany problem %d wrong (w=%d)", i, w)
			}
		}
		return
	}
	var e *matrix.Dense
	if rng.Intn(2) == 0 {
		e = matrix.RandomDense(rng, n, m, 4)
	}
	res, err := s.Solve(a, b, core.MatMulOptions{E: e})
	if err != nil {
		fail("matmul solve (w=%d %d×%d·%d×%d): %v", w, n, p, p, m, err)
		return
	}
	want := a.Mul(b)
	if e != nil {
		want = want.AddM(e)
	}
	if !res.C.Equal(want, 0) {
		fail("matmul wrong (w=%d n=%d p=%d m=%d): off %g", w, n, p, m, res.C.MaxAbsDiff(want))
	}
	if res.Stats.T != res.Stats.PredictedT {
		fail("matmul T=%d vs paper %d (w=%d)", res.Stats.T, res.Stats.PredictedT, w)
	}
	ores, err := s.Solve(a, b, core.MatMulOptions{E: e, Engine: core.EngineOracle})
	if err != nil {
		fail("matmul oracle solve (w=%d): %v", w, err)
		return
	}
	if !res.C.Equal(ores.C, 0) {
		fail("matmul engines disagree on C (w=%d n=%d p=%d m=%d)", w, n, p, m)
	}
	if !reflect.DeepEqual(res.Stats, ores.Stats) {
		fail("matmul engines disagree on stats (w=%d n=%d p=%d m=%d):\ncompiled %+v\noracle   %+v",
			w, n, p, m, res.Stats, ores.Stats)
	}
}

// batchCase fans a pile of random problems across the worker pool and
// checks every result against a serial solve of the same problem.
func batchCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	s := core.NewMatVecSolver(w)
	count := 4 + rng.Intn(12)
	problems := make([]core.MatVecProblem, count)
	for i := range problems {
		n := 1 + rng.Intn(4*w)
		m := 1 + rng.Intn(4*w)
		problems[i] = core.MatVecProblem{
			A: matrix.RandomDense(rng, n, m, 5),
			X: matrix.RandomVector(rng, m, 5),
			B: matrix.RandomVector(rng, n, 5),
		}
	}
	results, err := s.SolveBatch(problems)
	if err != nil {
		fail("batch solve (w=%d count=%d): %v", w, count, err)
		return
	}
	for i, p := range problems {
		serial, err := s.Solve(p.A, p.X, p.B, p.Opts)
		if err != nil {
			fail("batch serial check %d: %v", i, err)
			return
		}
		if !results[i].Y.Equal(serial.Y, 0) {
			fail("batch problem %d differs from serial (w=%d)", i, w)
		}
	}
	ms := core.NewMatMulSolver(w)
	mcount := 2 + rng.Intn(4)
	mm := make([]core.MatMulProblem, mcount)
	for i := range mm {
		n, p, m := 1+rng.Intn(2*w), 1+rng.Intn(2*w), 1+rng.Intn(2*w)
		mm[i] = core.MatMulProblem{
			A: matrix.RandomDense(rng, n, p, 4),
			B: matrix.RandomDense(rng, p, m, 4),
		}
	}
	mres, err := ms.SolveBatch(mm)
	if err != nil {
		fail("matmul batch solve (w=%d): %v", w, err)
		return
	}
	for i, p := range mm {
		if !mres[i].C.Equal(p.A.Mul(p.B), 0) {
			fail("matmul batch problem %d wrong (w=%d)", i, w)
		}
	}
}

// sparseCase is the pattern-keyed differential: every random pattern runs
// on the structural simulator (the oracle) and the compiled pattern-keyed
// plan — whole results DeepEqual, stats included — against host reference
// arithmetic and the closed-form step count, with the compiled pass
// variant replayed on the shared executor's style of arena.
func sparseCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	nb := 1 + rng.Intn(5)
	mb := 1 + rng.Intn(5)
	a := matrix.NewDense(nb*w, mb*w)
	for r := 0; r < nb; r++ {
		for s := 0; s < mb; s++ {
			if rng.Float64() < 0.5 {
				for i := 0; i < w; i++ {
					for j := 0; j < w; j++ {
						a.Set(r*w+i, s*w+j, float64(rng.Intn(9)-4))
					}
				}
			}
		}
	}
	x := matrix.RandomVector(rng, mb*w, 5)
	var b matrix.Vector
	if rng.Intn(3) > 0 {
		b = matrix.RandomVector(rng, nb*w, 5)
	}
	tr := sparse.NewMatVec(a, w)
	res, err := tr.SolveEngine(x, b, core.EngineOracle)
	if err != nil {
		fail("sparse solve: %v", err)
		return
	}
	if !res.Y.Equal(a.MulVec(x, b), 0) {
		fail("sparse wrong (w=%d n̄=%d m̄=%d density %.2f)", w, nb, mb, tr.Density())
	}
	if res.T != tr.PredictedSteps() {
		fail("sparse T=%d vs predicted %d", res.T, tr.PredictedSteps())
	}
	cres, err := tr.SolveEngine(x, b, core.EngineCompiled)
	if err != nil {
		fail("sparse compiled solve: %v", err)
		return
	}
	if !reflect.DeepEqual(cres, res) {
		fail("sparse engines disagree (w=%d n̄=%d m̄=%d density %.2f):\ncompiled %+v\noracle   %+v",
			w, nb, mb, tr.Density(), cres, res)
	}
	dst := make(matrix.Vector, tr.N)
	sparseArena.Reset()
	steps, err := tr.PassInto(sparseArena, dst, x, b, core.EngineCompiled)
	if err != nil {
		fail("sparse pass: %v", err)
		return
	}
	if steps != res.T || !dst.Equal(res.Y, 0) {
		fail("sparse pass differs from structural (w=%d n̄=%d m̄=%d)", w, nb, mb)
	}
}

// sparseArena is the arena the sparse category replays compiled passes on
// — one owner goroutine, pattern-keyed plan memo warmed across cases.
var sparseArena = core.NewArena()

// sparseBatchCase is the batched-replay differential: a random batch of
// right-hand sides through SolveMany on a random engine must match the
// per-vector solves element for element (whole Results DeepEqual), the
// arena PassManyInto must reproduce the same outputs, and the overlapped
// two-program schedule form must return the same Y and per-PE stats as the
// back-to-back solve — on both its structural and compiled forms — in no
// more steps.
func sparseBatchCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	nb := 1 + rng.Intn(5)
	mb := 1 + rng.Intn(5)
	a := matrix.NewDense(nb*w, mb*w)
	for r := 0; r < nb; r++ {
		for s := 0; s < mb; s++ {
			if rng.Float64() < 0.5 {
				for i := 0; i < w; i++ {
					for j := 0; j < w; j++ {
						a.Set(r*w+i, s*w+j, float64(rng.Intn(9)-4))
					}
				}
			}
		}
	}
	tr := sparse.NewMatVec(a, w)
	k := 1 + rng.Intn(6)
	xs := make([]matrix.Vector, k)
	bs := make([]matrix.Vector, k)
	for v := range xs {
		xs[v] = matrix.RandomVector(rng, mb*w, 5)
		if rng.Intn(3) > 0 {
			bs[v] = matrix.RandomVector(rng, nb*w, 5)
		}
	}
	eng := []core.Engine{core.EngineOracle, core.EngineCompiled, core.EngineAuto}[rng.Intn(3)]
	serial := make([]*sparse.Result, k)
	for v := range xs {
		res, err := tr.SolveEngine(xs[v], bs[v], eng)
		if err != nil {
			fail("sparse-batch serial solve: %v", err)
			return
		}
		serial[v] = res
	}
	batched, err := tr.SolveMany(xs, bs, eng)
	if err != nil {
		fail("sparse-batch SolveMany: %v", err)
		return
	}
	if !reflect.DeepEqual(batched, serial) {
		fail("sparse-batch diverges from per-vector solves (w=%d n̄=%d m̄=%d k=%d eng=%v)", w, nb, mb, k, eng)
	}
	dsts := make([]matrix.Vector, k)
	for v := range dsts {
		dsts[v] = make(matrix.Vector, tr.N)
	}
	sparseArena.Reset()
	steps, err := tr.PassManyInto(sparseArena, dsts, xs, bs, core.EngineCompiled)
	if err != nil {
		fail("sparse-batch pass: %v", err)
		return
	}
	for v := range dsts {
		if steps != serial[v].T || !dsts[v].Equal(serial[v].Y, 0) {
			fail("sparse-batch pass vector %d differs from serial (w=%d n̄=%d m̄=%d k=%d)", v, w, nb, mb, k)
		}
	}
	ov, err := tr.SolveOverlappedEngine(xs[0], bs[0], core.EngineCompiled)
	if err != nil {
		fail("sparse-batch overlapped solve: %v", err)
		return
	}
	ovS, err := tr.SolveOverlappedEngine(xs[0], bs[0], core.EngineOracle)
	if err != nil {
		fail("sparse-batch overlapped structural solve: %v", err)
		return
	}
	if !reflect.DeepEqual(ov, ovS) {
		fail("sparse-batch overlapped forms disagree (w=%d n̄=%d m̄=%d)", w, nb, mb)
	}
	if !ov.Y.Equal(serial[0].Y, 0) || !reflect.DeepEqual(ov.MACs, serial[0].MACs) || ov.T > serial[0].T {
		fail("sparse-batch overlap changed results (w=%d n̄=%d m̄=%d T=%d vs %d)", w, nb, mb, ov.T, serial[0].T)
	}
}

func solverCase(rng *rand.Rand, maxw int) {
	if maxw < 2 {
		maxw = 2 // the solver arrays need w ≥ 2
	}
	w := 2 + rng.Intn(maxw-1)
	n := 1 + rng.Intn(12)
	// Triangular solve on the dedicated array, on BOTH engines: correct
	// against reference arithmetic and bit-identical to each other, results
	// and stats alike.
	l := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, float64(rng.Intn(5)-2))
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	want := matrix.RandomVector(rng, n, 3)
	d := l.MulVec(want, nil)
	res, err := trisolve.NewSolverEngine(w, core.EngineCompiled).SolveLower(l, d)
	if err != nil {
		fail("trisolve: %v", err)
		return
	}
	if !res.X.Equal(want, 1e-8) {
		fail("trisolve wrong (w=%d n=%d): off %g", w, n, res.X.MaxAbsDiff(want))
	}
	ores, err := trisolve.NewSolverEngine(w, core.EngineOracle).SolveLower(l, d)
	if err != nil {
		fail("trisolve oracle: %v", err)
		return
	}
	if !reflect.DeepEqual(res, ores) {
		fail("trisolve engines disagree (w=%d n=%d):\ncompiled %+v\noracle   %+v", w, n, res, ores)
	}
	// LU with array trailing updates: factors bit-identical across engines.
	a := matrix.RandomDense(rng, n, n, 2)
	for i := 0; i < n; i++ {
		a.Set(i, i, 20)
	}
	lf, uf, lst, err := solve.BlockLU(a, w, solve.Options{Engine: core.EngineCompiled})
	if err != nil {
		fail("lu: %v", err)
		return
	}
	if !lf.Mul(uf).Equal(a, 1e-8) {
		fail("lu wrong (w=%d n=%d)", w, n)
	}
	olf, ouf, olst, err := solve.BlockLU(a, w, solve.Options{Engine: core.EngineOracle})
	if err != nil {
		fail("lu oracle: %v", err)
		return
	}
	if !lf.Equal(olf, 0) || !uf.Equal(ouf, 0) || !reflect.DeepEqual(lst, olst) {
		fail("lu engines disagree (w=%d n=%d)", w, n)
	}
	// Intra-solve parallelism: the same factorization fanned across the
	// pass executor must be bit-identical, stats included.
	plf, puf, plst, err := solve.BlockLU(a, w, solve.Options{Engine: core.EngineCompiled, Executor: exec})
	if err != nil {
		fail("lu parallel: %v", err)
		return
	}
	if !lf.Equal(plf, 0) || !uf.Equal(puf, 0) || !reflect.DeepEqual(lst, plst) {
		fail("lu parallel differs from serial (w=%d n=%d)", w, n)
	}
	// Full direct solve and the block-partitioned embedding.
	xb := matrix.RandomVector(rng, n, 3)
	db := a.MulVec(xb, nil)
	xs, sst, err := solve.Solve(a, db, w, solve.Options{})
	if err != nil {
		fail("solve: %v", err)
		return
	}
	if !xs.Equal(xb, 1e-6) {
		fail("solve wrong (w=%d n=%d): off %g", w, n, xs.MaxAbsDiff(xb))
	}
	pxs, psst, err := solve.Solve(a, db, w, solve.Options{Executor: exec})
	if err != nil {
		fail("solve parallel: %v", err)
		return
	}
	if !xs.Equal(pxs, 0) || !reflect.DeepEqual(sst, psst) {
		fail("solve parallel differs from serial (w=%d n=%d)", w, n)
	}
	xp, _, err := solve.BlockPartitionedSolve(a, db, w, solve.Options{})
	if err != nil {
		fail("blockpart solve: %v", err)
		return
	}
	if !xp.Equal(xb, 1e-6) {
		fail("blockpart solve wrong (w=%d n=%d): off %g", w, n, xp.MaxAbsDiff(xb))
	}
	// Triangular inverse: per-target block-column passes fanned across the
	// executor must be bit-identical to the serial order.
	inv, ist, err := solve.LowerTriangularInverse(l, w, solve.Options{})
	if err != nil {
		fail("inverse: %v", err)
		return
	}
	pinv, pist, err := solve.LowerTriangularInverse(l, w, solve.Options{Executor: exec})
	if err != nil {
		fail("inverse parallel: %v", err)
		return
	}
	if !inv.Equal(pinv, 0) || !reflect.DeepEqual(ist, pist) {
		fail("inverse parallel differs from serial (w=%d n=%d)", w, n)
	}
}

// streamCase drives a mixed-shape slice of problems through a stream
// scheduler at a random shard count and checks every redeemed ticket —
// results and stats — bit-for-bit against serial solves, plus the batch
// adapter against the core batch API.
func streamCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	shards := 1 + rng.Intn(4)
	s := stream.New(stream.Config{Shards: shards, QueueBound: 4 + rng.Intn(12)})
	defer s.Close()

	count := 6 + rng.Intn(10)
	mvp := make([]core.MatVecProblem, 0, count)
	mvTickets := make([]stream.MatVecTicket, 0, count)
	mmp := make([]core.MatMulProblem, 0, count)
	mmTickets := make([]stream.MatMulTicket, 0, count)
	// A couple of shapes recycled across the stream — the affinity path.
	shapes := [][2]int{{1 + rng.Intn(3*w), 1 + rng.Intn(3*w)}, {1 + rng.Intn(3*w), 1 + rng.Intn(3*w)}}
	for i := 0; i < count; i++ {
		var eng core.Engine
		if rng.Intn(3) == 0 {
			eng = core.EngineOracle
		}
		if rng.Intn(2) == 0 {
			sh := shapes[i%len(shapes)]
			p := core.MatVecProblem{
				A:    matrix.RandomDense(rng, sh[0], sh[1], 5),
				X:    matrix.RandomVector(rng, sh[1], 5),
				B:    matrix.RandomVector(rng, sh[0], 5),
				Opts: core.MatVecOptions{Engine: eng},
			}
			tk, err := s.SubmitMatVec(w, p)
			if err != nil {
				fail("stream submit matvec: %v", err)
				return
			}
			mvp, mvTickets = append(mvp, p), append(mvTickets, tk)
		} else {
			n, pd, m := 1+rng.Intn(2*w), 1+rng.Intn(2*w), 1+rng.Intn(2*w)
			p := core.MatMulProblem{
				A:    matrix.RandomDense(rng, n, pd, 4),
				B:    matrix.RandomDense(rng, pd, m, 4),
				Opts: core.MatMulOptions{Engine: eng},
			}
			tk, err := s.SubmitMatMul(w, p)
			if err != nil {
				fail("stream submit matmul: %v", err)
				return
			}
			mmp, mmTickets = append(mmp, p), append(mmTickets, tk)
		}
	}
	// Sparse tickets: one recycled random pattern (the affinity path) plus
	// its zero-alloc Into variant, checked below against serial solves.
	spw := 1 + rng.Intn(maxw)
	spnb, spmb := 1+rng.Intn(3), 1+rng.Intn(3)
	spa := matrix.NewDense(spnb*spw, spmb*spw)
	for r := 0; r < spnb; r++ {
		for c := 0; c < spmb; c++ {
			if rng.Intn(2) == 0 {
				for i := 0; i < spw; i++ {
					for j := 0; j < spw; j++ {
						spa.Set(r*spw+i, c*spw+j, float64(rng.Intn(9)-4))
					}
				}
			}
		}
	}
	spTr := sparse.NewMatVec(spa, spw)
	spx := matrix.RandomVector(rng, spmb*spw, 5)
	spTk, err := s.SubmitSparseMatVec(spTr, spx, nil, core.EngineCompiled)
	if err != nil {
		fail("stream submit sparse: %v", err)
		return
	}
	spDst := make(matrix.Vector, spTr.N)
	spPass, err := s.SubmitSparseMatVecInto(spDst, spTr, spx, nil, core.EngineCompiled)
	if err != nil {
		fail("stream submit sparse into: %v", err)
		return
	}
	s.Flush()
	spGot, err := spTk.Wait()
	if err != nil {
		fail("stream sparse wait: %v", err)
		return
	}
	spWant, err := spTr.SolveEngine(spx, nil, core.EngineCompiled)
	if err != nil {
		fail("stream sparse serial check: %v", err)
		return
	}
	if !reflect.DeepEqual(spGot, spWant) {
		fail("stream sparse differs from serial (w=%d shards=%d)", spw, shards)
	}
	if steps, err := spPass.Wait(); err != nil || steps != spWant.T || !spDst.Equal(spWant.Y, 0) {
		fail("stream sparse pass differs from serial (w=%d shards=%d): %v", spw, shards, err)
	}
	for i, tk := range mvTickets {
		got, err := tk.Wait()
		if err != nil {
			fail("stream matvec wait: %v", err)
			return
		}
		want, err := core.NewMatVecSolver(w).Solve(mvp[i].A, mvp[i].X, mvp[i].B, mvp[i].Opts)
		if err != nil {
			fail("stream matvec serial check: %v", err)
			return
		}
		if !reflect.DeepEqual(got, want) {
			fail("stream matvec %d differs from serial (w=%d shards=%d)", i, w, shards)
		}
	}
	for i, tk := range mmTickets {
		got, err := tk.Wait()
		if err != nil {
			fail("stream matmul wait: %v", err)
			return
		}
		want, err := core.NewMatMulSolver(w).Solve(mmp[i].A, mmp[i].B, mmp[i].Opts)
		if err != nil {
			fail("stream matmul serial check: %v", err)
			return
		}
		if !reflect.DeepEqual(got, want) {
			fail("stream matmul %d differs from serial (w=%d shards=%d)", i, w, shards)
		}
	}
	// Batch adapter differential: the scheduler's batch helper must equal
	// the core batch API (itself checked against serial in batchCase).
	if len(mvp) > 0 {
		sb, err := s.MatVecBatch(w, mvp)
		if err != nil {
			fail("stream batch: %v", err)
			return
		}
		cb, err := core.NewMatVecSolver(w).SolveBatch(mvp)
		if err != nil {
			fail("core batch: %v", err)
			return
		}
		if !reflect.DeepEqual(sb, cb) {
			fail("stream batch differs from core batch (w=%d shards=%d)", w, shards)
		}
	}
}

// solveStreamCase is the solve-as-a-service differential: random
// diagonally loaded systems streamed through the scheduler as full and
// Into solve tickets with mixed engines, priorities and generous
// deadlines, every redemption required DeepEqual — solution AND stats —
// to the serial one-shot solve.Solve of the same system. Sizes recycle so
// the shard-arena workspace pool serves warm hits, and one deliberately
// singular system per case checks the typed failure path leaves the shard
// serving.
func solveStreamCase(rng *rand.Rand, maxw int) {
	if maxw < 2 {
		maxw = 2
	}
	w := 2 + rng.Intn(maxw-1)
	shards := 1 + rng.Intn(4)
	s := stream.New(stream.Config{Shards: shards, QueueBound: 32})
	defer s.Close()

	count := 6 + rng.Intn(8)
	sizes := []int{2 + rng.Intn(2*w), 2 + rng.Intn(2*w)} // recycled → warm workspaces
	type ref struct {
		x     matrix.Vector
		stats *solve.SolveStats
	}
	as := make([]*matrix.Dense, count)
	ds := make([]matrix.Vector, count)
	refs := make([]ref, count)
	full := make([]stream.SolveTicket, count)
	into := make([]stream.SolvePassTicket, count)
	dsts := make([]matrix.Vector, count)
	for i := 0; i < count; i++ {
		n := sizes[i%len(sizes)]
		a := matrix.RandomDense(rng, n, n, 2)
		for k := 0; k < n; k++ {
			a.Set(k, k, 20)
		}
		d := matrix.RandomVector(rng, n, 5)
		var eng core.Engine
		if rng.Intn(3) == 0 {
			eng = core.EngineOracle
		}
		x, stats, err := solve.Solve(a, d, w, solve.Options{Engine: eng})
		if err != nil {
			fail("solve-stream serial reference: %v", err)
			return
		}
		as[i], ds[i], refs[i] = a, d, ref{x, stats}
		q := stream.QoS{}
		if rng.Intn(2) == 0 {
			q.Deadline = time.Now().Add(time.Minute)
		}
		if rng.Intn(4) == 0 {
			q.Priority = stream.Low
		}
		if full[i], err = s.SubmitSolveQoS(a, d, w, eng, q); err != nil {
			fail("solve-stream submit: %v", err)
			return
		}
		dsts[i] = make(matrix.Vector, n)
		if into[i], err = s.SubmitSolveInto(dsts[i], a, d, w, eng); err != nil {
			fail("solve-stream submit Into: %v", err)
			return
		}
	}
	for i := 0; i < count; i++ {
		x, stats, err := full[i].Wait()
		if err != nil {
			fail("solve-stream ticket %d: %v", i, err)
			continue
		}
		if !reflect.DeepEqual(x, refs[i].x) || !reflect.DeepEqual(stats, refs[i].stats) {
			fail("solve-stream ticket %d diverged from serial (n=%d w=%d shards=%d)", i, as[i].Rows(), w, shards)
		}
		istats, err := into[i].Wait()
		if err != nil {
			fail("solve-stream Into ticket %d: %v", i, err)
			continue
		}
		if !reflect.DeepEqual(dsts[i], refs[i].x) || !reflect.DeepEqual(istats, *refs[i].stats) {
			fail("solve-stream Into ticket %d diverged from serial (n=%d w=%d shards=%d)", i, as[i].Rows(), w, shards)
		}
	}
	// One singular system: typed error with the pivot index, then the same
	// shape again must still solve — no workspace poisoning.
	sing := matrix.NewDense(2, 2)
	sing.Set(0, 1, 1)
	sing.Set(1, 0, 1)
	sing.Set(1, 1, 1)
	stk, err := s.SubmitSolve(sing, matrix.Vector{1, 2}, w, core.EngineCompiled)
	if err != nil {
		fail("solve-stream singular submit: %v", err)
		return
	}
	var serr *solve.SingularError
	if _, _, err := stk.Wait(); !errors.As(err, &serr) || serr.Index != 0 {
		fail("solve-stream singular system returned %v, want *solve.SingularError at pivot 0", err)
	}
	good := matrix.FromRows([][]float64{{4, 1}, {1, 3}})
	wantX, wantStats, err := solve.Solve(good, matrix.Vector{1, 2}, w, solve.Options{})
	if err != nil {
		fail("solve-stream post-singular reference: %v", err)
		return
	}
	gtk, err := s.SubmitSolve(good, matrix.Vector{1, 2}, w, core.EngineAuto)
	if err != nil {
		fail("solve-stream post-singular submit: %v", err)
		return
	}
	if gx, gstats, err := gtk.Wait(); err != nil || !reflect.DeepEqual(gx, wantX) || !reflect.DeepEqual(gstats, wantStats) {
		fail("solve-stream post-singular solve diverged (err=%v)", err)
	}
}

// conditioningCase draws one adversarially conditioned system — rows
// scrambled so factorization needs pivoting, exactly singular, symmetric
// indefinite, or a geometric diagonal ladder — and requires the pivoted,
// refined solve to end in exactly one of two states: a finite solution
// with a converged condition report, bit-identical across engines and the
// stream runtime, or a typed *solve.SingularError /
// *solve.IllConditionedError. Anything else — an untyped failure, NaN or
// Inf in the solution, an unconverged report on the success path, or an
// engine disagreement — is a garbage escape.
func conditioningCase(rng *rand.Rand, maxw int) {
	if maxw < 2 {
		maxw = 2
	}
	w := 2 + rng.Intn(maxw-1)
	n := 3 + rng.Intn(10)
	kind := rng.Intn(4)
	kinds := [4]string{"needs-pivoting", "singular", "indefinite", "geometric-ladder"}
	a := matrix.NewDense(n, n)
	switch kind {
	case 0: // well-conditioned rows scrambled: unpivoted LU hits tiny or zero pivots
		dd := matrix.RandomDense(rng, n, n, 3)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					rowSum += math.Abs(dd.At(i, j))
				}
			}
			dd.Set(i, i, rowSum+1+float64(rng.Intn(3)))
		}
		for i, pi := range rng.Perm(n) {
			for j := 0; j < n; j++ {
				a.Set(i, j, dd.At(pi, j))
			}
		}
	case 1: // exactly singular: one column identically zero (exact in fp)
		zc := rng.Intn(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j != zc {
					a.Set(i, j, float64(rng.Intn(9)-4))
				}
			}
		}
	case 2: // symmetric indefinite: mixed-sign diagonal, no dominance
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				v := float64(rng.Intn(7) - 3)
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			sign := float64(1 - 2*(rng.Intn(2)))
			a.Set(i, i, sign*float64(1+rng.Intn(4)))
		}
	case 3: // geometric diagonal ladder: condition grows as ratio^(n-1)
		ratio := []float64{2, 4, 10}[rng.Intn(3)]
		scale := 1.0
		for i := 0; i < n; i++ {
			a.Set(i, i, scale)
			scale /= ratio
			for j := 0; j < i; j++ {
				a.Set(i, j, float64(rng.Intn(3)-1)*scale)
			}
		}
	}
	d := matrix.RandomVector(rng, n, 5)
	opts := solve.Options{
		Engine: core.EngineCompiled,
		Pivot:  solve.PivotPartial,
		Refine: solve.RefineOptions{MaxIters: 4},
	}
	x, stats, err := solve.Solve(a, d, w, opts)

	oracleOpts := opts
	oracleOpts.Engine = core.EngineOracle
	ox, ostats, oerr := solve.Solve(a, d, w, oracleOpts)

	if err != nil {
		var serr *solve.SingularError
		var cerr *solve.IllConditionedError
		if !errors.As(err, &serr) && !errors.As(err, &cerr) {
			fail("conditioning %s (n=%d w=%d): untyped failure %v", kinds[kind], n, w, err)
			return
		}
		if kind == 1 && !errors.As(err, &serr) {
			fail("conditioning singular (n=%d w=%d): zero column surfaced as %v, want *solve.SingularError", n, w, err)
		}
		// The failure must be engine-invariant: same outcome, same type.
		if oerr == nil {
			fail("conditioning %s (n=%d w=%d): compiled failed (%v) but oracle solved", kinds[kind], n, w, err)
		} else if errors.As(err, &serr) != errors.As(oerr, &serr) {
			fail("conditioning %s (n=%d w=%d): engines disagree on failure type: %v vs %v", kinds[kind], n, w, err, oerr)
		}
		return
	}
	if kind == 1 {
		fail("conditioning singular (n=%d w=%d): exactly singular system produced a solution", n, w)
		return
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			fail("conditioning %s (n=%d w=%d): garbage x[%d]=%g escaped", kinds[kind], n, w, i, v)
			return
		}
	}
	if !stats.Refine.Converged {
		fail("conditioning %s (n=%d w=%d): success path carries an unconverged report %+v", kinds[kind], n, w, stats.Refine)
	}
	if oerr != nil {
		fail("conditioning %s (n=%d w=%d): compiled solved but oracle failed: %v", kinds[kind], n, w, oerr)
		return
	}
	if !reflect.DeepEqual(x, ox) || !reflect.DeepEqual(stats, ostats) {
		fail("conditioning %s (n=%d w=%d): engines disagree on the refined solve", kinds[kind], n, w)
	}
	// The stream runtime must redeem the same system to the same bits.
	s := stream.New(stream.Config{Shards: 1 + rng.Intn(3)})
	defer s.Close()
	tk, serr2 := s.SubmitSolveOpts(a, d, w, opts, stream.QoS{})
	if serr2 != nil {
		fail("conditioning %s stream submit: %v", kinds[kind], serr2)
		return
	}
	sx, sstats, werr := tk.Wait()
	if werr != nil {
		fail("conditioning %s (n=%d w=%d): stream failed where serial solved: %v", kinds[kind], n, w, werr)
		return
	}
	if !reflect.DeepEqual(sx, x) || !reflect.DeepEqual(sstats, stats) {
		fail("conditioning %s (n=%d w=%d): stream diverged from serial", kinds[kind], n, w)
	}
}

// chaosCase is the fault-injection differential: a mixed matvec stream
// with deterministic injected sheds, delays and panics, plus mixed
// priorities and (generous) deadlines. Every submission either succeeds or
// fails with a typed error; every redeemed ticket either carries a typed
// fault or a result bit-identical to the serial solve; and the scheduler's
// counters must account for every job.
func chaosCase(rng *rand.Rand, maxw int) {
	w := 1 + rng.Intn(maxw)
	shards := 1 + rng.Intn(4)
	inj := &stream.Injector{
		Seed:       rng.Int63(),
		ShedEvery:  5 + rng.Intn(5),
		PanicEvery: 5 + rng.Intn(5),
		DelayEvery: 6,
		Delay:      50 * time.Microsecond,
	}
	s := stream.New(stream.Config{Shards: shards, Injector: inj})
	defer s.Close()

	count := 12 + rng.Intn(12)
	problems := make([]core.MatVecProblem, 0, count)
	tickets := make([]stream.MatVecTicket, 0, count)
	var sheds, accepted int
	for i := 0; i < count; i++ {
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		p := core.MatVecProblem{
			A: matrix.RandomDense(rng, n, m, 5),
			X: matrix.RandomVector(rng, m, 5),
			B: matrix.RandomVector(rng, n, 5),
		}
		q := stream.QoS{}
		if i%3 == 0 {
			q.Priority = stream.Low
		}
		if i%2 == 0 {
			q.Deadline = time.Now().Add(time.Hour) // live, never binding
		}
		tk, err := s.SubmitMatVecQoS(w, p, q)
		if err != nil {
			if !errors.Is(err, stream.ErrSaturated) && !errors.Is(err, stream.ErrDeadlineExceeded) {
				fail("chaos submit %d failed with untyped error: %v", i, err)
				return
			}
			sheds++
			continue
		}
		accepted++
		problems, tickets = append(problems, p), append(tickets, tk)
	}

	var panics int
	for i, tk := range tickets {
		got, err := tk.Wait()
		if err != nil {
			var perr *core.PanicError
			switch {
			case errors.As(err, &perr):
				if !errors.Is(err, core.ErrPanicked) || len(perr.Stack) == 0 {
					fail("chaos job %d panic error lacks sentinel or stack: %v", i, err)
					return
				}
				panics++
			case errors.Is(err, stream.ErrDeadlineExceeded):
				// Possible only under extreme scheduler starvation; the
				// typed error is the contract either way.
			default:
				fail("chaos job %d failed with untyped error: %v", i, err)
				return
			}
			continue
		}
		want, err := core.NewMatVecSolver(w).Solve(problems[i].A, problems[i].X, problems[i].B, problems[i].Opts)
		if err != nil {
			fail("chaos serial check %d: %v", i, err)
			return
		}
		if !reflect.DeepEqual(got, want) {
			fail("chaos job %d differs from serial (w=%d shards=%d seed=%d)", i, w, shards, inj.Seed)
			return
		}
	}

	st := s.Stats()
	if st.Submitted != uint64(accepted) || st.Completed != st.Submitted {
		fail("chaos stats %+v: %d accepted jobs must all complete", st, accepted)
	}
	if st.Shed != uint64(sheds) {
		fail("chaos stats %+v: observed %d admission sheds", st, sheds)
	}
	if st.Panics != uint64(panics) {
		fail("chaos stats %+v: observed %d panicked tickets", st, panics)
	}
	if st.ShedHigh+st.ShedLow != st.Shed {
		fail("chaos stats %+v: per-priority sheds do not sum", st)
	}
}
