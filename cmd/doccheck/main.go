// Command doccheck is the documentation gate CI runs on every push: it
// fails when an internal package lacks a package doc comment, when an
// exported identifier of the engine- and runtime-facing packages
// (internal/core, internal/schedule, internal/stream, internal/sparse,
// the direct solvers, and the internal/solved HTTP facade) lacks a doc
// comment, or when a relative markdown link in the top-level docs points
// at a file that does not exist.
//
// Usage:
//
//	doccheck            # check the repository rooted at the working directory
//	doccheck -root dir  # check another checkout
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// strictPackages are the packages whose every exported identifier must
// carry a doc comment (the public surface of the two-engine architecture,
// the stream-scheduler runtime, the pattern-keyed sparse path, and the
// direct solvers with their typed failure surface).
var strictPackages = map[string]bool{
	"core":     true,
	"schedule": true,
	"stream":   true,
	"sparse":   true,
	"solve":    true,
	"trisolve": true,
	"solved":   true,
}

// markdownFiles are the top-level documents whose relative links must
// resolve.
var markdownFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "PAPER.md"}

var problems int

func complain(format string, args ...interface{}) {
	problems++
	fmt.Fprintf(os.Stderr, "doccheck: "+format+"\n", args...)
}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	dirs, err := filepath.Glob(filepath.Join(*root, "internal", "*"))
	if err != nil {
		complain("%v", err)
	}
	for _, dir := range dirs {
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			continue
		}
		checkPackage(dir)
	}
	checkMarkdown(*root)

	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problems\n", problems)
		os.Exit(1)
	}
	fmt.Println("doccheck: all package docs, exported docs and markdown links clean")
}

// checkPackage parses one package directory and enforces the doc rules.
func checkPackage(dir string) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		complain("%s: %v", dir, err)
		return
	}
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if !hasDoc {
			complain("package %s (%s) has no package doc comment", name, dir)
		}
		if strictPackages[name] {
			for path, f := range pkg.Files {
				checkExportedDocs(fset, path, f)
			}
		}
	}
}

// checkExportedDocs requires a doc comment on every exported top-level
// declaration (a group doc on a const/var/type block covers its members).
func checkExportedDocs(fset *token.FileSet, path string, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				pos := fset.Position(d.Pos())
				complain("%s:%d: exported %s %s has no doc comment", path, pos.Line, kindOf(d), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						pos := fset.Position(s.Pos())
						complain("%s:%d: exported type %s has no doc comment", path, pos.Line, s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							pos := fset.Position(s.Pos())
							complain("%s:%d: exported %s %s has no doc comment", path, pos.Line, d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
}

// kindOf names a func decl for the report: function or method.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// mdLink matches [text](target) markdown links; images and autolinks are
// out of scope.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdown verifies that every relative link in the top-level docs
// resolves to an existing file or directory.
func checkMarkdown(root string) {
	for _, name := range markdownFiles {
		path := filepath.Join(root, name)
		blob, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				complain("required document %s is missing", name)
			} else {
				complain("%s: %v", name, err)
			}
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(target))); err != nil {
				complain("%s: broken link %q", name, m[1])
			}
		}
	}
}
