package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBand(rng *rand.Rand, rows, cols, lo, hi int) *Band {
	b := NewBand(rows, cols, lo, hi)
	for i := 0; i < rows; i++ {
		for d := lo; d <= hi; d++ {
			if j := i + d; j >= 0 && j < cols {
				b.Set(i, j, float64(rng.Intn(9)-4))
			}
		}
	}
	return b
}

func TestBandAccessors(t *testing.T) {
	b := NewBand(4, 4, -1, 1)
	b.Set(1, 2, 7)
	b.Add(1, 2, 1)
	if b.At(1, 2) != 8 {
		t.Error("Set/Add broken")
	}
	if b.At(0, 3) != 0 {
		t.Error("out-of-band must read zero")
	}
	if b.Width() != 3 || b.Lo() != -1 || b.Hi() != 1 {
		t.Error("band shape accessors broken")
	}
	if b.InBand(0, 3) || !b.InBand(2, 1) {
		t.Error("InBand broken")
	}
	mustPanic(t, func() { b.Set(0, 3, 1) })
	mustPanic(t, func() { b.At(-1, 0) })
	mustPanic(t, func() { NewBand(2, 2, 1, 0) })
}

// TestBandDenseRoundTrip: a band's dense expansion agrees element-wise.
func TestBandDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		lo := -rng.Intn(3)
		hi := rng.Intn(3)
		b := randomBand(rng, rows, cols, lo, hi)
		d := b.Dense()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if d.At(i, j) != b.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBandMulVecMatchesDense: band MulVec equals dense MulVec (property).
func TestBandMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		b := randomBand(rng, rows, cols, -rng.Intn(3), rng.Intn(3))
		x := RandomVector(rng, cols, 4)
		c := RandomVector(rng, rows, 4)
		return b.MulVec(x, c).Equal(b.Dense().MulVec(x, c), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBandMulMatchesDense: band product equals dense product (property).
func TestBandMulMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomBand(rng, n, n, 0, rng.Intn(3))
		b := randomBand(rng, n, n, -rng.Intn(3), 0)
		return a.Mul(b).Dense().Equal(a.Dense().Mul(b.Dense()), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandCounts(t *testing.T) {
	b := NewBand(3, 3, 0, 1)
	if b.StoredCount() != 5 { // 3 diagonal + 2 superdiagonal
		t.Errorf("StoredCount=%d, want 5", b.StoredCount())
	}
	b.Set(0, 0, 1)
	b.Set(1, 2, 2)
	if b.NonzeroCount() != 2 {
		t.Errorf("NonzeroCount=%d, want 2", b.NonzeroCount())
	}
}

func TestBandMulDimMismatch(t *testing.T) {
	a := NewBand(2, 3, 0, 1)
	b := NewBand(2, 2, -1, 0)
	mustPanic(t, func() { a.Mul(b) })
	mustPanic(t, func() { a.MulVec(make(Vector, 2), nil) })
}
