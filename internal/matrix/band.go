package matrix

import "fmt"

// Band is a band matrix storing only the diagonals d = j−i with
// Lo ≤ d ≤ Hi. The DBT-by-rows transform produces upper bands
// (Lo = 0, Hi = w−1), DBT-transposed-by-rows produces lower bands
// (Lo = −(w−1), Hi = 0), and their product on the hexagonal array has
// Lo = −(w−1), Hi = w−1 (bandwidth 2w−1).
//
// Storage is row-compact: row i keeps Width() slots for diagonals Lo..Hi.
type Band struct {
	rows, cols int
	lo, hi     int
	data       []float64
}

// NewBand returns a zeroed rows×cols band matrix holding diagonals lo..hi.
func NewBand(rows, cols, lo, hi int) *Band {
	if rows < 0 || cols < 0 || lo > hi {
		panic(fmt.Sprintf("matrix: invalid band %d×%d diag [%d,%d]", rows, cols, lo, hi))
	}
	return &Band{rows: rows, cols: cols, lo: lo, hi: hi, data: make([]float64, rows*(hi-lo+1))}
}

// Rows returns the number of rows.
func (b *Band) Rows() int { return b.rows }

// Cols returns the number of columns.
func (b *Band) Cols() int { return b.cols }

// Lo returns the lowest stored diagonal (j−i).
func (b *Band) Lo() int { return b.lo }

// Hi returns the highest stored diagonal (j−i).
func (b *Band) Hi() int { return b.hi }

// Width returns the number of stored diagonals (the bandwidth).
func (b *Band) Width() int { return b.hi - b.lo + 1 }

// RawRow returns row i's stored diagonal slots (Lo..Hi, in that order) as a
// direct view of the backing storage. Slots whose column falls outside the
// matrix are always zero: the storage starts zeroed and Set/Add refuse
// out-of-matrix positions — which is what lets packers copy whole rows
// without per-element bounds dispatch.
func (b *Band) RawRow(i int) []float64 {
	if i < 0 || i >= b.rows {
		panic(fmt.Sprintf("matrix: band row %d out of range %d", i, b.rows))
	}
	w := b.Width()
	return b.data[i*w : (i+1)*w]
}

// InBand reports whether (i, j) lies inside the matrix and the band.
func (b *Band) InBand(i, j int) bool {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		return false
	}
	d := j - i
	return d >= b.lo && d <= b.hi
}

// At returns element (i, j); positions outside the band read as zero,
// positions outside the matrix panic.
func (b *Band) At(i, j int) float64 {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("matrix: band index (%d,%d) out of range %d×%d", i, j, b.rows, b.cols))
	}
	d := j - i
	if d < b.lo || d > b.hi {
		return 0
	}
	return b.data[i*b.Width()+(d-b.lo)]
}

// Set assigns element (i, j); it panics if (i, j) is outside the band.
func (b *Band) Set(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("matrix: band set (%d,%d) outside band [%d,%d] of %d×%d", i, j, b.lo, b.hi, b.rows, b.cols))
	}
	b.data[i*b.Width()+(j-i-b.lo)] = v
}

// Add adds v to element (i, j); it panics if (i, j) is outside the band.
func (b *Band) Add(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("matrix: band add (%d,%d) outside band", i, j))
	}
	b.data[i*b.Width()+(j-i-b.lo)] += v
}

// Dense expands the band to a dense matrix.
func (b *Band) Dense() *Dense {
	m := NewDense(b.rows, b.cols)
	for i := 0; i < b.rows; i++ {
		for d := b.lo; d <= b.hi; d++ {
			j := i + d
			if j >= 0 && j < b.cols {
				m.Set(i, j, b.data[i*b.Width()+(d-b.lo)])
			}
		}
	}
	return m
}

// MulVec computes b·x + c by reference band arithmetic. c may be nil.
func (b *Band) MulVec(x, c Vector) Vector {
	if len(x) != b.cols {
		panic(fmt.Sprintf("matrix: band MulVec dim mismatch: %d cols vs len(x)=%d", b.cols, len(x)))
	}
	y := make(Vector, b.rows)
	for i := 0; i < b.rows; i++ {
		s := 0.0
		for d := b.lo; d <= b.hi; d++ {
			if j := i + d; j >= 0 && j < b.cols {
				s += b.data[i*b.Width()+(d-b.lo)] * x[j]
			}
		}
		if c != nil {
			s += c[i]
		}
		y[i] = s
	}
	return y
}

// Mul computes the band product b·other as a new band matrix with diagonal
// range [b.lo+other.lo, b.hi+other.hi] (reference implementation used to
// validate the hexagonal array).
func (b *Band) Mul(other *Band) *Band {
	if b.cols != other.rows {
		panic(fmt.Sprintf("matrix: band Mul dim mismatch: %d×%d · %d×%d", b.rows, b.cols, other.rows, other.cols))
	}
	c := NewBand(b.rows, other.cols, b.lo+other.lo, b.hi+other.hi)
	for i := 0; i < b.rows; i++ {
		for d := b.lo; d <= b.hi; d++ {
			k := i + d
			if k < 0 || k >= b.cols {
				continue
			}
			a := b.data[i*b.Width()+(d-b.lo)]
			if a == 0 {
				continue
			}
			for e := other.lo; e <= other.hi; e++ {
				if j := k + e; j >= 0 && j < other.cols {
					c.Add(i, j, a*other.At(k, j))
				}
			}
		}
	}
	return c
}

// NonzeroCount returns the number of stored positions that are nonzero.
func (b *Band) NonzeroCount() int {
	n := 0
	for _, v := range b.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// StoredCount returns the number of in-matrix band positions.
func (b *Band) StoredCount() int {
	n := 0
	for i := 0; i < b.rows; i++ {
		for d := b.lo; d <= b.hi; d++ {
			if j := i + d; j >= 0 && j < b.cols {
				n++
			}
		}
	}
	return n
}
