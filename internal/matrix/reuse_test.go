package matrix

import (
	"math/rand"
	"testing"
)

// TestReuse: the storage-reusing constructors must reuse capacity when they
// can, allocate when they must, and always match their allocating twins.
func TestReuse(t *testing.T) {
	m := Reuse(nil, 3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("Reuse(nil) shape %d×%d", m.Rows(), m.Cols())
	}
	m.Set(2, 3, 7)
	back := Reuse(m, 2, 2)
	if back != m {
		t.Error("Reuse with sufficient capacity should return the same header")
	}
	if back.Rows() != 2 || back.Cols() != 2 {
		t.Fatalf("Reuse shape %d×%d", back.Rows(), back.Cols())
	}
	grown := Reuse(back, 5, 5)
	if grown == back {
		t.Error("Reuse beyond capacity must allocate")
	}
	z := ReuseZero(grown, 4, 4)
	if !z.IsZero() {
		t.Error("ReuseZero left stale values")
	}
}

// TestReuseCopiesMatchAllocating: CloneInto/PadInto/SliceInto produce the
// same values as Clone/Pad/Slice, both into nil and into a reused target.
func TestReuseCopiesMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var cDst, pDst, sDst *Dense
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(7), 1+rng.Intn(7)
		a := RandomDense(rng, rows, cols, 5)
		cDst = CloneInto(cDst, a)
		if !cDst.Equal(a.Clone(), 0) {
			t.Fatal("CloneInto mismatch")
		}
		pr, pc := rows+rng.Intn(4), cols+rng.Intn(4)
		pDst = PadInto(pDst, a, pr, pc)
		if !pDst.Equal(a.Pad(pr, pc), 0) {
			t.Fatal("PadInto mismatch (stale values in the padding?)")
		}
		r0, c0 := rng.Intn(rows), rng.Intn(cols)
		r1, c1 := r0+rng.Intn(rows-r0)+1, c0+rng.Intn(cols-c0)+1
		sDst = SliceInto(sDst, a, r0, r1, c0, c1)
		if !sDst.Equal(a.Slice(r0, r1, c0, c1), 0) {
			t.Fatal("SliceInto mismatch")
		}
	}
}

// TestSetRect: writing a sub-rectangle back must be the inverse of Slice.
func TestSetRect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomDense(rng, 6, 7, 5)
	sub := RandomDense(rng, 2, 3, 5)
	b := a.Clone()
	b.SetRect(3, 2, sub)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			want := a.At(i, j)
			if i >= 3 && i < 5 && j >= 2 && j < 5 {
				want = sub.At(i-3, j-2)
			}
			if b.At(i, j) != want {
				t.Fatalf("SetRect wrong at (%d,%d)", i, j)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SetRect outside the target must panic")
		}
	}()
	b.SetRect(5, 5, sub)
}
