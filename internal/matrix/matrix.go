// Package matrix provides the dense, band and vector linear-algebra
// substrate used by the DBT transformations and the systolic array
// simulators. Everything is float64 and row-major; the package favors
// explicit index arithmetic over cleverness because the DBT layer needs
// exact control of element placement.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from a slice of equally long rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to element (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// RawRow returns row i as a slice sharing the matrix's backing storage —
// no copy, no per-element bounds checks. It exists for the packed-band
// exporters on the compiled-engine fast path; callers must not modify or
// retain the slice.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Raw returns the matrix's backing storage (row-major, len Rows·Cols) — no
// copy, no bounds checks. It exists for the compiled engine's gather paths
// (the sparse plan indexes the padded matrix flat); callers must not
// modify, resize or retain the slice.
func (m *Dense) Raw() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Reuse returns a rows×cols matrix backed by dst's storage when dst is
// non-nil and has the capacity, and a fresh matrix otherwise. The contents
// are arbitrary (not zeroed) — it exists for scratch arenas and workspaces
// that fully overwrite the matrix before reading it. Callers must treat the
// previous view of dst as invalid after a Reuse.
func Reuse(dst *Dense, rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	if dst == nil || cap(dst.data) < rows*cols {
		return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
	}
	dst.rows, dst.cols = rows, cols
	dst.data = dst.data[:rows*cols]
	return dst
}

// ReuseZero is Reuse with the returned matrix zeroed.
func ReuseZero(dst *Dense, rows, cols int) *Dense {
	dst = Reuse(dst, rows, cols)
	clear(dst.data)
	return dst
}

// CloneInto copies src into dst (reusing dst's storage when possible,
// see Reuse) and returns the destination.
func CloneInto(dst, src *Dense) *Dense {
	dst = Reuse(dst, src.rows, src.cols)
	copy(dst.data, src.data)
	return dst
}

// PadInto writes a rows×cols zero-padded copy of src into dst (reusing
// dst's storage when possible, see Reuse) and returns the destination. It
// panics if the target is smaller than src in either dimension.
func PadInto(dst, src *Dense, rows, cols int) *Dense {
	if rows < src.rows || cols < src.cols {
		panic(fmt.Sprintf("matrix: cannot pad %d×%d down to %d×%d", src.rows, src.cols, rows, cols))
	}
	dst = Reuse(dst, rows, cols)
	for i := 0; i < src.rows; i++ {
		row := dst.data[i*cols : i*cols+cols]
		copy(row, src.data[i*src.cols:(i+1)*src.cols])
		clear(row[src.cols:])
	}
	clear(dst.data[src.rows*cols:])
	return dst
}

// SliceInto copies the sub-matrix of src with rows [r0,r1) and cols [c0,c1)
// into dst (reusing dst's storage when possible, see Reuse) and returns the
// destination.
func SliceInto(dst, src *Dense, r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > src.rows || c0 < 0 || c1 > src.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: bad slice [%d:%d, %d:%d] of %d×%d", r0, r1, c0, c1, src.rows, src.cols))
	}
	dst = Reuse(dst, r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(dst.data[(i-r0)*dst.cols:(i-r0+1)*dst.cols], src.data[i*src.cols+c0:i*src.cols+c1])
	}
	return dst
}

// SetRect writes src into dst starting at (r0, c0). It panics when src does
// not fit.
func (m *Dense) SetRect(r0, c0 int, src *Dense) {
	if r0 < 0 || c0 < 0 || r0+src.rows > m.rows || c0+src.cols > m.cols {
		panic(fmt.Sprintf("matrix: SetRect %d×%d at (%d,%d) outside %d×%d", src.rows, src.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < src.rows; i++ {
		copy(m.data[(r0+i)*m.cols+c0:(r0+i)*m.cols+c0+src.cols], src.data[i*src.cols:(i+1)*src.cols])
	}
}

// Pad returns a rows×cols copy of m extended with zeros. It panics if the
// target is smaller than m in either dimension.
func (m *Dense) Pad(rows, cols int) *Dense {
	if rows < m.rows || cols < m.cols {
		panic(fmt.Sprintf("matrix: cannot pad %d×%d down to %d×%d", m.rows, m.cols, rows, cols))
	}
	p := NewDense(rows, cols)
	for i := 0; i < m.rows; i++ {
		copy(p.data[i*cols:i*cols+m.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return p
}

// Slice returns a copy of the sub-matrix with rows [r0,r1) and cols [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: bad slice [%d:%d, %d:%d] of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	s := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.data[(i-r0)*s.cols:(i-r0+1)*s.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return s
}

// Transpose returns a new transposed matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// MulVec computes m·x + b (reference implementation). b may be nil.
func (m *Dense) MulVec(x, b Vector) Vector {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec dim mismatch: %d cols vs len(x)=%d", m.cols, len(x)))
	}
	if b != nil && len(b) != m.rows {
		panic(fmt.Sprintf("matrix: MulVec dim mismatch: %d rows vs len(b)=%d", m.rows, len(b)))
	}
	y := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * x[j]
		}
		if b != nil {
			s += b[i]
		}
		y[i] = s
	}
	return y
}

// Mul computes m·other (reference implementation).
func (m *Dense) Mul(other *Dense) *Dense {
	if m.cols != other.rows {
		panic(fmt.Sprintf("matrix: Mul dim mismatch: %d×%d · %d×%d", m.rows, m.cols, other.rows, other.cols))
	}
	c := NewDense(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				c.data[i*c.cols+j] += a * other.data[k*other.cols+j]
			}
		}
	}
	return c
}

// AddM returns m + other element-wise.
func (m *Dense) AddM(other *Dense) *Dense {
	if m.rows != other.rows || m.cols != other.cols {
		panic("matrix: AddM dim mismatch")
	}
	c := m.Clone()
	for i := range c.data {
		c.data[i] += other.data[i]
	}
	return c
}

// Equal reports whether m and other have identical shape and elements within
// tolerance tol.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsZero reports whether every element is exactly zero.
func (m *Dense) IsZero() bool {
	for _, v := range m.data {
		if v != 0 {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		return math.Inf(1)
	}
	d := 0.0
	for i := range m.data {
		if a := math.Abs(m.data[i] - other.data[i]); a > d {
			d = a
		}
	}
	return d
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&sb, "%8.3g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
