package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, -4)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != -3 || m.At(0, 1) != 0 {
		t.Error("Set/Add/At broken")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Error("dims broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases storage")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Error("FromRows broken")
	}
	if got := FromRows(nil); got.Rows() != 0 {
		t.Error("empty FromRows")
	}
	mustPanic(t, func() { FromRows([][]float64{{1}, {1, 2}}) })
}

func TestPadSlice(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	p := m.Pad(3, 4)
	if p.At(1, 1) != 4 || p.At(2, 3) != 0 {
		t.Error("Pad broken")
	}
	s := p.Slice(0, 2, 0, 2)
	if !s.Equal(m, 0) {
		t.Error("Slice broken")
	}
	mustPanic(t, func() { m.Pad(1, 5) })
	mustPanic(t, func() { m.Slice(0, 3, 0, 1) })
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomDense(rng, 1+rng.Intn(8), 1+rng.Intn(8), 5)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMulVecLinearity: A(x+y) = Ax + Ay (property).
func TestMulVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandomDense(rng, n, m, 4)
		x := RandomVector(rng, m, 4)
		y := RandomVector(rng, m, 4)
		sum := make(Vector, m)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		lhs := a.MulVec(sum, nil)
		rx, ry := a.MulVec(x, nil), a.MulVec(y, nil)
		for i := range lhs {
			if lhs[i] != rx[i]+ry[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMulAssociativeWithVec: (A·B)·x = A·(B·x) with integer data (exact).
func TestMulAssociativeWithVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p, m := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandomDense(rng, n, p, 3)
		b := RandomDense(rng, p, m, 3)
		x := RandomVector(rng, m, 3)
		lhs := a.Mul(b).MulVec(x, nil)
		rhs := a.MulVec(b.MulVec(x, nil), nil)
		return lhs.Equal(rhs, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTransposeProduct: (A·B)ᵀ = Bᵀ·Aᵀ (property).
func TestTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p, m := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandomDense(rng, n, p, 3)
		b := RandomDense(rng, p, m, 3)
		return a.Mul(b).Transpose().Equal(b.Transpose().Mul(a.Transpose()), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	if v.Dot(Vector{4, 5, 6}) != 32 {
		t.Error("Dot broken")
	}
	if !v.Pad(5).Equal(Vector{1, 2, 3, 0, 0}, 0) {
		t.Error("Pad broken")
	}
	if !v.Block(1, 2).Equal(Vector{3}, 0) {
		t.Error("short tail Block broken")
	}
	if v.MaxAbsDiff(Vector{1, 2, 5}) != 2 {
		t.Error("MaxAbsDiff broken")
	}
	mustPanic(t, func() { v.Dot(Vector{1}) })
	mustPanic(t, func() { v.Pad(1) })
}

func TestEqualAndDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.4}})
	if a.Equal(b, 0.3) || !a.Equal(b, 0.5) {
		t.Error("tolerance comparison broken")
	}
	if d := a.MaxAbsDiff(b); d < 0.39 || d > 0.41 {
		t.Errorf("MaxAbsDiff=%g", d)
	}
	if !a.Equal(a, 0) {
		t.Error("self equality")
	}
	if a.Equal(NewDense(2, 2), 100) {
		t.Error("shape mismatch must not be equal")
	}
}

func TestAddMIsZero(t *testing.T) {
	a := FromRows([][]float64{{1, -1}})
	b := FromRows([][]float64{{-1, 1}})
	if !a.AddM(b).IsZero() {
		t.Error("AddM/IsZero broken")
	}
	mustPanic(t, func() { a.AddM(NewDense(2, 2)) })
}

func TestString(t *testing.T) {
	if s := FromRows([][]float64{{1}}).String(); s == "" {
		t.Error("String empty")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
