package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Pad returns a copy of v extended with zeros to length n.
func (v Vector) Pad(n int) Vector {
	if n < len(v) {
		panic(fmt.Sprintf("matrix: cannot pad vector of len %d down to %d", len(v), n))
	}
	c := make(Vector, n)
	copy(c, v)
	return c
}

// Equal reports element-wise equality within tol (and equal lengths).
func (v Vector) Equal(other Vector, tol float64) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-other[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func (v Vector) MaxAbsDiff(other Vector) float64 {
	if len(v) != len(other) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range v {
		if a := math.Abs(v[i] - other[i]); a > d {
			d = a
		}
	}
	return d
}

// Dot returns the inner product of v and other.
func (v Vector) Dot(other Vector) float64 {
	if len(v) != len(other) {
		panic("matrix: Dot length mismatch")
	}
	s := 0.0
	for i := range v {
		s += v[i] * other[i]
	}
	return s
}

// Block returns the k-th length-w sub-vector (a copy); the final block may be
// shorter if len(v) is not a multiple of w.
func (v Vector) Block(k, w int) Vector {
	lo := k * w
	hi := lo + w
	if hi > len(v) {
		hi = len(v)
	}
	if lo < 0 || lo > len(v) {
		panic(fmt.Sprintf("matrix: block %d (w=%d) out of range for len %d", k, w, len(v)))
	}
	return v[lo:hi].Clone()
}

// ReuseVec returns a length-n vector backed by v's storage when its
// capacity allows, and a fresh vector otherwise. The contents are
// arbitrary (not zeroed) — the vector counterpart of Reuse, for
// workspaces that fully overwrite before reading.
func ReuseVec(v Vector, n int) Vector {
	if cap(v) < n {
		return make(Vector, n)
	}
	return v[:n]
}

// ReuseSlice returns a zero-valued length-n slice backed by s's storage
// when its capacity allows, and a fresh slice otherwise. Unlike ReuseVec
// the result is cleared — it exists for the per-pass stat and error slots
// the solver workspaces reduce after each barrier.
func ReuseSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// RandomDense fills a rows×cols matrix with small integers in [-bound,bound],
// drawn from rng. Small integers keep float64 arithmetic exact, so simulator
// output can be compared bit-for-bit with the reference computation.
func RandomDense(rng *rand.Rand, rows, cols, bound int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, float64(rng.Intn(2*bound+1)-bound))
		}
	}
	return m
}

// RandomVector fills a length-n vector with small integers in [-bound,bound].
func RandomVector(rng *rand.Rand, n, bound int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = float64(rng.Intn(2*bound+1) - bound)
	}
	return v
}
