package hex

import (
	"math/rand"
	"testing"

	"repro/internal/systolic"
)

// TestTraceEvents: with tracing enabled, every band position produces one
// c-in and one c-out event, at the model's entry and exit cycles.
func TestTraceEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	w, dim := 3, 7
	a, b := randBands(rng, dim, w)
	ar := New(w)
	ar.RecordTrace = true
	res := ar.Run(plainProgram(a, b, nil))

	positions := 0
	for i := 0; i < dim; i++ {
		for f := -(w - 1); f <= w-1; f++ {
			if j := i + f; j >= 0 && j < dim {
				positions++
			}
		}
	}
	ins := res.Trace.ByPort(systolic.PortCIn)
	outs := res.Trace.ByPort(systolic.PortCOut)
	if len(ins) != positions || len(outs) != positions {
		t.Fatalf("%d in / %d out events, want %d each", len(ins), len(outs), positions)
	}
	for _, e := range ins {
		rho, gamma := e.Index/dim, e.Index%dim
		kMin := rho
		if gamma > kMin {
			kMin = gamma
		}
		if e.Cycle != rho+gamma+kMin {
			t.Errorf("c-in (%d,%d) at cycle %d, want %d", rho, gamma, e.Cycle, rho+gamma+kMin)
		}
	}
	for _, e := range outs {
		rho, gamma := e.Index/dim, e.Index%dim
		if e.Cycle != res.EmitCycle(rho, gamma) {
			t.Errorf("c-out (%d,%d) at cycle %d, want %d", rho, gamma, e.Cycle, res.EmitCycle(rho, gamma))
		}
	}
}

// TestW1Degenerate: a 1×1 "hexagonal" array is a single MAC cell; the
// band is just the diagonal and everything still works.
func TestW1Degenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	dim := 9
	a, b := randBands(rng, dim, 1)
	res := New(1).Run(plainProgram(a, b, nil))
	for i := 0; i < dim; i++ {
		if got, want := res.At(i, i), a.At(i, i)*b.At(i, i); got != want {
			t.Errorf("O[%d][%d]=%g, want %g", i, i, got, want)
		}
	}
	if got, want := res.T, 3*(dim-1)+2; got != want {
		t.Errorf("T=%d, want %d", got, want)
	}
}

// TestLargerArray: w=6 with a long band — exercises the engine at a scale
// where every PE class (corner, edge, interior) is present.
func TestLargerArray(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	w, dim := 6, 40
	a, b := randBands(rng, dim, w)
	res := New(w).Run(plainProgram(a, b, nil))
	want := a.Mul(b)
	for i := 0; i < dim; i++ {
		for f := -(w - 1); f <= w-1; f++ {
			j := i + f
			if j < 0 || j >= dim {
				continue
			}
			if res.At(i, j) != want.At(i, j) {
				t.Fatalf("O[%d][%d] wrong", i, j)
			}
		}
	}
	// Interior wavefronts keep every third cycle busy: total MACs must be
	// dim·w² minus the boundary deficits.
	if res.Activity.Total() > dim*w*w {
		t.Errorf("MACs %d exceed dim·w² = %d", res.Activity.Total(), dim*w*w)
	}
}
