package hex

import (
	"math/rand"
	"testing"
)

// TestThreeWayOverlap: three independent band products with offsets 0, 1, 2
// interleave on one array with no structural conflicts (the engine panics
// on any collision), all three compute exactly, and the total span is just
// two cycles beyond a single run.
func TestThreeWayOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	w, dim := 3, 10
	var progs []*Program
	for o := 0; o < 3; o++ {
		a, b := randBands(rng, dim, w)
		p := plainProgram(a, b, nil)
		p.Offset = o
		progs = append(progs, p)
	}
	res := New(w).Run(progs...)
	if got, want := res.T, 3*(dim-1)+w+1+2; got != want {
		t.Errorf("3-way overlapped T=%d, want %d", got, want)
	}
	// Verify outputs per program against the reference products.
	for o, p := range progs {
		for i := 0; i < dim; i++ {
			for f := -(w - 1); f <= w-1; f++ {
				j := i + f
				if j < 0 || j >= dim {
					continue
				}
				want := 0.0
				for k := 0; k < dim; k++ {
					want += p.AAt(i, k) * p.BAt(k, j)
				}
				if got := res.Progs[o].At(i, j); got != want {
					t.Fatalf("prog %d O[%d][%d]=%g, want %g", o, i, j, got, want)
				}
			}
		}
	}
	// Utilization approaches 3× a single run's.
	single := New(w).Run(progs[0])
	if res.Activity.Total() != 3*single.Activity.Total() {
		t.Errorf("3-way MACs %d, want %d", res.Activity.Total(), 3*single.Activity.Total())
	}
	if u := res.Activity.Utilization(); u < 2.8*single.Activity.Utilization() {
		t.Errorf("3-way utilization %.3f did not triple single %.3f", u, single.Activity.Utilization())
	}
}

// TestOverlapCollisionDetected: two programs with offsets equal modulo 3
// must collide structurally.
func TestOverlapCollisionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	w, dim := 3, 6
	a, b := randBands(rng, dim, w)
	p1 := plainProgram(a, b, nil)
	p2 := plainProgram(a, b, nil)
	p2.Offset = 3 // ≡ 0 (mod 3): same wavefront slots
	defer func() {
		if recover() == nil {
			t.Error("expected collision panic")
		}
	}()
	New(w).Run(p1, p2)
}

// TestOverlapWithFeedback: overlapped programs keep their feedback chains
// separate (per-program output records).
func TestOverlapWithFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	w, dim := 2, 8
	mk := func(offset int) *Program {
		a, b := randBands(rng, dim, w)
		p := plainProgram(a, b, nil)
		p.Offset = offset
		p.CInitFor = func(rho, gamma int) CInit {
			if rho == gamma && rho >= w {
				return CInit{Feedback: true, SrcRow: rho - w, SrcCol: gamma - w}
			}
			return CInit{}
		}
		return p
	}
	progs := []*Program{mk(0), mk(1), mk(2)}
	res := New(w).Run(progs...)
	for o := range progs {
		if got, want := len(res.Progs[o].Feedback), dim-w; got != want {
			t.Errorf("prog %d: %d feedback edges, want %d", o, got, want)
		}
		for _, f := range res.Progs[o].Feedback {
			if f.Delay() != 2*w {
				t.Errorf("prog %d: delay %d, want %d", o, f.Delay(), 2*w)
			}
		}
	}
}
