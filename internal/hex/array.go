// Package hex implements a cycle-accurate structural simulator of the w×w
// hexagonal systolic array for band matrix–matrix multiplication
// (Kung/Leiserson), extended with the paper's spiral feedback (§3, Fig. 5)
// so that C = A·B + E is computed entirely inside the array system.
//
// Geometry and timing (one clock tick = one paper step):
//
//   - PEs are indexed (d, e) ∈ [0,w)², d being the Ā diagonal (κ−ρ) and e
//     the B̄ diagonal (κ−γ). The three streams move one PE per cycle in
//     directions 120° apart: a-items (Ā elements) along (0,−1), b-items
//     (B̄ elements) along (−1,0) and c-items (result band positions) along
//     (+1,+1).
//   - The product term Ā[ρ][κ]·B̄[κ][γ] executes at PE (κ−ρ, κ−γ) at cycle
//     ρ+γ+κ. Successive items of every stream are spaced three cycles
//     apart, which is why the hexagonal array's peak PE duty is ⅓.
//   - A c-item carries result position (ρ, γ): it enters at the south
//     boundary (d = 0 or e = 0) at cycle ρ+γ+max(ρ,γ) with its
//     initialization value (an E element, or a fed-back earlier output) and
//     leaves the north boundary at cycle ρ+γ+min(ρ,γ)+w−1, its value then
//     being O[ρ][γ].
//
// The measured total step count — first injection to availability of the
// last output — is 3w·p̄n̄m̄ + 4w − 5, exactly the paper's T.
//
// Because items are spaced three cycles apart, up to three independent
// problems with offsets distinct modulo 3 interleave on the same array
// with zero structural conflicts, pushing utilization toward 1 — the
// hexagonal analog of the paper's "overlapping the execution of several
// problems". Run accepts multiple programs and verifies conflict-freedom
// structurally (any collision panics).
package hex

import (
	"fmt"

	"repro/internal/systolic"
)

// CInit is the initialization of one c-item (result band position).
type CInit struct {
	// Feedback: the value is the array's own output at (SrcRow, SrcCol)
	// of the same program.
	Feedback bool
	// Value is the external initialization when !Feedback (E element or 0).
	Value float64
	// SrcRow, SrcCol locate the fed-back output position.
	SrcRow, SrcCol int
	// Irregular marks region-crossing feedback edges (paper §3).
	Irregular bool
}

// Program is one band matrix–matrix problem on the array: two full bands of
// width w (Ā upper, B̄ lower), both Dim×Dim, the c-stream initialization
// rule, and an injection offset (distinct modulo 3 across programs sharing
// a run).
type Program struct {
	Dim int
	// AAt reads Ā[i][j] (upper band), BAt reads B̄[i][j] (lower band).
	AAt, BAt func(i, j int) float64
	// CInitFor resolves the initialization of result position (ρ, γ).
	CInitFor func(rho, gamma int) CInit
	// Offset delays every injection of this program.
	Offset int
}

// ProgResult holds one program's output band and feedback observations.
type ProgResult struct {
	o    [][]float64
	emit [][]int
	w    int
	// Feedback lists every realized feedback edge with measured delay.
	Feedback []systolic.FeedbackObservation
}

// At returns the output band value O[ρ][γ].
func (r *ProgResult) At(rho, gamma int) float64 {
	f := gamma - rho
	if f <= -r.w || f >= r.w {
		return 0
	}
	return r.o[rho][f+r.w-1]
}

// EmitCycle returns the availability cycle of O[ρ][γ], −1 if never emitted.
func (r *ProgResult) EmitCycle(rho, gamma int) int {
	f := gamma - rho
	if f <= -r.w || f >= r.w {
		return -1
	}
	return r.emit[rho][f+r.w-1]
}

// Result is the outcome of a run.
type Result struct {
	// Progs holds per-program outputs, in Run argument order.
	Progs []*ProgResult
	// T is the measured step count (last output availability cycle + 1).
	T int
	// Activity is per-PE MAC accounting with PEs flattened as d·w+e.
	Activity *systolic.Activity
	// Trace records c-stream boundary events when enabled.
	Trace *systolic.Trace
}

// At delegates to the first program (single-program convenience).
func (r *Result) At(rho, gamma int) float64 { return r.Progs[0].At(rho, gamma) }

// EmitCycle delegates to the first program.
func (r *Result) EmitCycle(rho, gamma int) int { return r.Progs[0].EmitCycle(rho, gamma) }

// Feedback delegates to the first program.
func (r *Result) Feedback() []systolic.FeedbackObservation { return r.Progs[0].Feedback }

// Array is the simulator for a fixed w×w hexagonal array.
type Array struct {
	W int
	// RecordTrace enables c-stream boundary event recording.
	RecordTrace bool
}

// New returns a w×w hexagonal array simulator.
func New(w int) *Array {
	if w < 1 {
		panic(fmt.Sprintf("hex: invalid array size %d", w))
	}
	return &Array{W: w}
}

type aItem struct {
	live bool
	prog int
	i, k int
	val  float64
}

type bItem struct {
	live bool
	prog int
	k, j int
	val  float64
}

type cItem struct {
	live       bool
	prog       int
	rho, gamma int
	val        float64
}

// injection is one scheduled boundary entry. It stores the item inline
// (kind-tagged) rather than behind a pointer: the schedule holds one
// injection per band element, and three heap allocations each was the
// dominant cost of building it.
type injection struct {
	t    int
	d, e int
	kind uint8 // 'a', 'b' or 'c'
	prog int
	// p1, p2 are (i, k) for a-items, (k, j) for b-items, (ρ, γ) for c-items.
	p1, p2 int
	val    float64 // coefficient for a/b-items; c values resolve at injection
}

// Run executes one or more programs on the array simultaneously and returns
// the merged result. Programs must not collide on any register at any
// cycle; the engine panics on structural conflicts, which makes the 3-way
// overlap a checked property rather than an assumption.
func (ar *Array) Run(progs ...*Program) *Result {
	if len(progs) == 0 {
		panic("hex: no programs")
	}
	w := ar.W
	res := &Result{Activity: systolic.NewActivity(w * w)}
	if ar.RecordTrace {
		res.Trace = &systolic.Trace{}
	}
	maxT := 0
	for pi, p := range progs {
		if p.Dim < 1 {
			panic(fmt.Sprintf("hex: program %d is empty", pi))
		}
		if p.Offset < 0 {
			panic(fmt.Sprintf("hex: program %d has negative offset", pi))
		}
		pr := &ProgResult{w: w, o: make([][]float64, p.Dim), emit: make([][]int, p.Dim)}
		for i := range pr.o {
			pr.o[i] = make([]float64, 2*w-1)
			pr.emit[i] = make([]int, 2*w-1)
			for j := range pr.emit[i] {
				pr.emit[i][j] = -1
			}
		}
		res.Progs = append(res.Progs, pr)
		if t := p.Offset + 3*(p.Dim-1) + w - 1; t > maxT {
			maxT = t
		}
	}

	injections := make([][]injection, maxT+1)
	add := func(inj injection) {
		if inj.t < 0 || inj.t > maxT {
			panic(fmt.Sprintf("hex: injection at cycle %d outside [0,%d]", inj.t, maxT))
		}
		injections[inj.t] = append(injections[inj.t], inj)
	}

	for pi, p := range progs {
		dim := p.Dim
		// a-items: Ā[i][k] first fires at e_hi = min(w−1, k), cycle i+2k−e_hi.
		for i := 0; i < dim; i++ {
			for d := 0; d < w; d++ {
				k := i + d
				if k >= dim {
					break
				}
				eHi := w - 1
				if k < eHi {
					eHi = k
				}
				add(injection{t: p.Offset + i + 2*k - eHi, d: d, e: eHi,
					kind: 'a', prog: pi, p1: i, p2: k, val: p.AAt(i, k)})
			}
		}
		// b-items: B̄[k][j] first fires at d_hi = min(w−1, k), cycle j+2k−d_hi.
		for j := 0; j < dim; j++ {
			for e := 0; e < w; e++ {
				k := j + e
				if k >= dim {
					break
				}
				dHi := w - 1
				if k < dHi {
					dHi = k
				}
				add(injection{t: p.Offset + j + 2*k - dHi, d: dHi, e: e,
					kind: 'b', prog: pi, p1: k, p2: j, val: p.BAt(k, j)})
			}
		}
		// c-items: result position (ρ, γ) enters the south boundary at cycle
		// ρ+γ+max(ρ,γ); its value is resolved at injection time.
		for rho := 0; rho < dim; rho++ {
			for f := -(w - 1); f <= w-1; f++ {
				gamma := rho + f
				if gamma < 0 || gamma >= dim {
					continue
				}
				kMin := rho
				if gamma > kMin {
					kMin = gamma
				}
				add(injection{t: p.Offset + rho + gamma + kMin, d: kMin - rho, e: kMin - gamma,
					kind: 'c', prog: pi, p1: rho, p2: gamma})
			}
		}
	}

	aPlane := make([]aItem, w*w)
	bPlane := make([]bItem, w*w)
	cPlane := make([]cItem, w*w)
	at := func(d, e int) int { return d*w + e }

	for t := 0; t <= maxT; t++ {
		// Phase 1: inject.
		for _, inj := range injections[t] {
			idx := at(inj.d, inj.e)
			switch inj.kind {
			case 'a':
				if aPlane[idx].live {
					panic(fmt.Sprintf("hex: a collision at PE(%d,%d) cycle %d", inj.d, inj.e, t))
				}
				aPlane[idx] = aItem{live: true, prog: inj.prog, i: inj.p1, k: inj.p2, val: inj.val}
			case 'b':
				if bPlane[idx].live {
					panic(fmt.Sprintf("hex: b collision at PE(%d,%d) cycle %d", inj.d, inj.e, t))
				}
				bPlane[idx] = bItem{live: true, prog: inj.prog, k: inj.p1, j: inj.p2, val: inj.val}
			case 'c':
				if cPlane[idx].live {
					panic(fmt.Sprintf("hex: c collision at PE(%d,%d) cycle %d", inj.d, inj.e, t))
				}
				c := cItem{live: true, prog: inj.prog, rho: inj.p1, gamma: inj.p2}
				pr := res.Progs[c.prog]
				init := progs[c.prog].CInitFor(c.rho, c.gamma)
				if init.Feedback {
					ec := pr.EmitCycle(init.SrcRow, init.SrcCol)
					if ec < 0 {
						panic(fmt.Sprintf("hex: acausal feedback: (%d,%d) needs O[%d][%d] at cycle %d before it was emitted",
							c.rho, c.gamma, init.SrcRow, init.SrcCol, t))
					}
					c.val = pr.At(init.SrcRow, init.SrcCol)
					pr.Feedback = append(pr.Feedback, systolic.FeedbackObservation{
						SrcIndex:  init.SrcRow*progs[c.prog].Dim + init.SrcCol,
						DstIndex:  c.rho*progs[c.prog].Dim + c.gamma,
						EmitCycle: ec, InjectCycle: t,
						Irregular: init.Irregular,
					})
				} else {
					c.val = init.Value
				}
				cPlane[idx] = c
				res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortCIn, Prog: c.prog,
					Index: c.rho*progs[c.prog].Dim + c.gamma, Value: c.val})
			}
		}

		// Phase 2: compute. A PE fires when its a, b and c registers are all
		// occupied; tags must agree on program and wavefront.
		for d := 0; d < w; d++ {
			for e := 0; e < w; e++ {
				idx := at(d, e)
				a, b, c := &aPlane[idx], &bPlane[idx], &cPlane[idx]
				occupied := 0
				if a.live {
					occupied++
				}
				if b.live {
					occupied++
				}
				if c.live {
					occupied++
				}
				if occupied < 3 {
					// A lone c-item rides through regions where Ā/B̄ have
					// no elements (the clamped tail); a and b without c is a
					// scheduling bug.
					if a.live && b.live {
						panic(fmt.Sprintf("hex: a,b without c at PE(%d,%d) cycle %d", d, e, t))
					}
					continue
				}
				if a.prog != b.prog || a.prog != c.prog {
					panic(fmt.Sprintf("hex: program mix at PE(%d,%d) cycle %d", d, e, t))
				}
				if a.k != b.k || a.i != c.rho || b.j != c.gamma {
					panic(fmt.Sprintf("hex: misaligned wavefront at PE(%d,%d) cycle %d: a(%d,%d) b(%d,%d) c(%d,%d)",
						d, e, t, a.i, a.k, b.k, b.j, c.rho, c.gamma))
				}
				c.val += a.val * b.val
				res.Activity.MACs[idx]++
			}
		}

		// Phase 3: shift; retire items crossing the boundaries.
		// c moves (+1,+1): the north edges leave the array.
		for d := w - 1; d >= 0; d-- {
			for e := w - 1; e >= 0; e-- {
				idx := at(d, e)
				if !cPlane[idx].live {
					continue
				}
				if d == w-1 || e == w-1 {
					c := cPlane[idx]
					pr := res.Progs[c.prog]
					f := c.gamma - c.rho
					pr.o[c.rho][f+w-1] = c.val
					pr.emit[c.rho][f+w-1] = t + 1
					res.Trace.Record(systolic.Event{Cycle: t + 1, Port: systolic.PortCOut, Prog: c.prog,
						Index: c.rho*progs[c.prog].Dim + c.gamma, Value: c.val})
				} else {
					cPlane[at(d+1, e+1)] = cPlane[idx]
				}
				cPlane[idx] = cItem{}
			}
		}
		// a moves (0,−1).
		for d := 0; d < w; d++ {
			for e := 0; e < w; e++ {
				idx := at(d, e)
				if !aPlane[idx].live {
					continue
				}
				if e > 0 {
					aPlane[at(d, e-1)] = aPlane[idx]
				}
				aPlane[idx] = aItem{}
			}
		}
		// b moves (−1,0).
		for e := 0; e < w; e++ {
			for d := 0; d < w; d++ {
				idx := at(d, e)
				if !bPlane[idx].live {
					continue
				}
				if d > 0 {
					bPlane[at(d-1, e)] = bPlane[idx]
				}
				bPlane[idx] = bItem{}
			}
		}
	}

	res.T = maxT + 2 // availability of the final output (emitted at maxT+1)
	res.Activity.Cycles = res.T
	return res
}
