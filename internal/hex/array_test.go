package hex

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// randBands builds a full upper band Ā and lower band B̄ of dimension dim.
func randBands(rng *rand.Rand, dim, w int) (*matrix.Band, *matrix.Band) {
	a := matrix.NewBand(dim, dim, 0, w-1)
	b := matrix.NewBand(dim, dim, -(w - 1), 0)
	for i := 0; i < dim; i++ {
		for d := 0; d < w; d++ {
			if j := i + d; j < dim {
				a.Set(i, j, float64(rng.Intn(9)-4))
			}
			if j := i - d; j >= 0 {
				b.Set(i, j, float64(rng.Intn(9)-4))
			}
		}
	}
	return a, b
}

func plainProgram(a, b *matrix.Band, e func(rho, gamma int) float64) *Program {
	return &Program{
		Dim: a.Rows(),
		AAt: a.At,
		BAt: b.At,
		CInitFor: func(rho, gamma int) CInit {
			if e == nil {
				return CInit{}
			}
			return CInit{Value: e(rho, gamma)}
		},
	}
}

// TestBandProductExact: the hexagonal array computes exactly the reference
// band product for a range of sizes.
func TestBandProductExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, w := range []int{1, 2, 3, 4} {
		for _, dim := range []int{1, 2, w, 2 * w, 3*w + 1} {
			a, b := randBands(rng, dim, w)
			res := New(w).Run(plainProgram(a, b, nil))
			want := a.Mul(b)
			for i := 0; i < dim; i++ {
				for f := -(w - 1); f <= w-1; f++ {
					j := i + f
					if j < 0 || j >= dim {
						continue
					}
					if got := res.At(i, j); got != want.At(i, j) {
						t.Fatalf("w=%d dim=%d: O[%d][%d]=%g, want %g", w, dim, i, j, got, want.At(i, j))
					}
				}
			}
		}
	}
}

// TestBandProductWithE: c-stream initialization adds element-wise.
func TestBandProductWithE(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	w, dim := 3, 10
	a, b := randBands(rng, dim, w)
	e := matrix.RandomDense(rng, dim, dim, 4)
	res := New(w).Run(plainProgram(a, b, e.At))
	want := a.Mul(b)
	for i := 0; i < dim; i++ {
		for f := -(w - 1); f <= w-1; f++ {
			j := i + f
			if j < 0 || j >= dim {
				continue
			}
			if got := res.At(i, j); got != want.At(i, j)+e.At(i, j) {
				t.Fatalf("O[%d][%d]=%g, want %g", i, j, got, want.At(i, j)+e.At(i, j))
			}
		}
	}
}

// TestStepCount: the measured span is 3(dim−1)+w+1 steps.
func TestStepCount(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, w := range []int{1, 2, 3, 5} {
		for _, dim := range []int{1, w + 1, 3 * w} {
			a, b := randBands(rng, dim, w)
			res := New(w).Run(plainProgram(a, b, nil))
			if got, want := res.T, 3*(dim-1)+w+1; got != want {
				t.Errorf("w=%d dim=%d: T=%d, want %d", w, dim, got, want)
			}
		}
	}
}

// TestEmitCycleModel: O[ρ][γ] becomes available at ρ+γ+min(ρ,γ)+w.
func TestEmitCycleModel(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	w, dim := 3, 9
	a, b := randBands(rng, dim, w)
	res := New(w).Run(plainProgram(a, b, nil))
	for i := 0; i < dim; i++ {
		for f := -(w - 1); f <= w-1; f++ {
			j := i + f
			if j < 0 || j >= dim {
				continue
			}
			min := i
			if j < min {
				min = j
			}
			if got, want := res.EmitCycle(i, j), i+j+min+w; got != want {
				t.Errorf("emit(%d,%d)=%d, want %d", i, j, got, want)
			}
		}
	}
}

// TestPEDuty: a PE fires at most once every three cycles (the hexagonal
// array's inherent ⅓ duty), and total MACs equal the band product's
// multiply count.
func TestPEDuty(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	w, dim := 3, 12
	a, b := randBands(rng, dim, w)
	res := New(w).Run(plainProgram(a, b, nil))
	// MAC count: Σ_κ (#band rows meeting col κ)·(#band cols meeting row κ).
	want := 0
	for k := 0; k < dim; k++ {
		ra := 0
		for i := k - w + 1; i <= k; i++ {
			if i >= 0 {
				ra++
			}
		}
		cb := 0
		for j := k - w + 1; j <= k; j++ {
			if j >= 0 {
				cb++
			}
		}
		want += ra * cb
	}
	if got := res.Activity.Total(); got != want {
		t.Errorf("MACs=%d, want %d", got, want)
	}
	for pe, m := range res.Activity.MACs {
		if 3*m > res.T+2 {
			t.Errorf("PE %d fired %d times in %d cycles (duty > 1/3)", pe, m, res.T)
		}
	}
}

// TestSelfFeedbackDiagonal: feeding O[ρ−w][γ−w] into (ρ, γ) on the main
// diagonal is causal and has measured delay exactly 2w (the paper's 2w
// memory elements for the auto-fed main diagonal).
func TestSelfFeedbackDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for _, w := range []int{2, 3, 4} {
		dim := 4 * w
		a, b := randBands(rng, dim, w)
		p := plainProgram(a, b, nil)
		p.CInitFor = func(rho, gamma int) CInit {
			if rho == gamma && rho >= w {
				return CInit{Feedback: true, SrcRow: rho - w, SrcCol: gamma - w}
			}
			return CInit{}
		}
		res := New(w).Run(p)
		if len(res.Feedback()) != dim-w {
			t.Fatalf("w=%d: %d feedback edges, want %d", w, len(res.Feedback()), dim-w)
		}
		for _, f := range res.Feedback() {
			if f.Delay() != 2*w {
				t.Errorf("w=%d: main-diagonal feedback delay %d, want %d", w, f.Delay(), 2*w)
			}
		}
		// Value check: the diagonal accumulates prefix sums of diagonal products.
		prod := a.Mul(b)
		wantDiag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			wantDiag[i] = prod.At(i, i)
			if i >= w {
				wantDiag[i] += wantDiag[i-w]
			}
			if got := res.At(i, i); got != wantDiag[i] {
				t.Errorf("w=%d: O[%d][%d]=%g, want %g", w, i, i, got, wantDiag[i])
			}
		}
	}
}

// TestAcausalFeedbackDetected: requesting feedback from a position that has
// not been emitted yet must panic.
func TestAcausalFeedbackDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	w, dim := 3, 9
	a, b := randBands(rng, dim, w)
	p := plainProgram(a, b, nil)
	p.CInitFor = func(rho, gamma int) CInit {
		if rho == 0 && gamma == 0 {
			return CInit{Feedback: true, SrcRow: dim - 1, SrcCol: dim - 1}
		}
		return CInit{}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected acausality panic")
		}
	}()
	New(w).Run(p)
}

func TestRunValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { New(2).Run(&Program{Dim: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
