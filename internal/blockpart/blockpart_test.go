package blockpart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestCeil(t *testing.T) {
	cases := [][3]int{{1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {9, 3, 3}, {10, 3, 4}, {5, 1, 5}}
	for _, c := range cases {
		if got := Ceil(c[0], c[1]); got != c[2] {
			t.Errorf("Ceil(%d,%d)=%d, want %d", c[0], c[1], got, c[2])
		}
	}
	mustPanic(t, func() { Ceil(0, 3) })
	mustPanic(t, func() { Ceil(3, 0) })
}

func TestPartitionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := matrix.RandomDense(rng, 7, 10, 4)
	g := Partition(a, 3)
	if g.BlockRows != 3 || g.BlockCols != 4 {
		t.Errorf("grid %d×%d, want 3×4", g.BlockRows, g.BlockCols)
	}
	if g.Padded().Rows() != 9 || g.Padded().Cols() != 12 {
		t.Error("padding wrong")
	}
	// Padding area must be zero.
	if g.Padded().At(8, 11) != 0 || g.Padded().At(7, 0) != 0 {
		t.Error("padding not zero")
	}
	// Original region preserved.
	if g.Padded().At(6, 9) != a.At(6, 9) {
		t.Error("original data lost")
	}
	mustPanic(t, func() { Partition(a, 0) })
	mustPanic(t, func() { g.Block(3, 0) })
}

// TestSplitIsExact: U_rs + L_rs = A_rs for every block (property), with U
// holding the main diagonal.
func TestSplitIsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(5)
		a := matrix.RandomDense(rng, 1+rng.Intn(3*w), 1+rng.Intn(3*w), 4)
		g := Partition(a, w)
		for r := 0; r < g.BlockRows; r++ {
			for s := 0; s < g.BlockCols; s++ {
				blk := g.Block(r, s)
				u, l := g.Upper(r, s), g.Lower(r, s)
				if !u.AddM(l).Equal(blk, 0) {
					return false
				}
				// U strictly above-or-on diagonal, L strictly below.
				for i := 0; i < w; i++ {
					for j := 0; j < w; j++ {
						if j < i && u.At(i, j) != 0 {
							return false
						}
						if j >= i && l.At(i, j) != 0 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTriangleAccessors(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	g := Partition(a, 2)
	if g.UpperAt(0, 0, 0, 1) != 2 || g.UpperAt(0, 0, 1, 0) != 0 {
		t.Error("UpperAt broken")
	}
	if g.LowerAt(0, 0, 1, 0) != 3 || g.LowerAt(0, 0, 0, 1) != 0 {
		t.Error("LowerAt broken")
	}
	if g.UpperAt(0, 0, 1, 1) != 4 { // diagonal belongs to U
		t.Error("diagonal must belong to U")
	}
	if g.At(0, 0, 0, 0) != 1 {
		t.Error("At broken")
	}
}

func TestBlockIsZero(t *testing.T) {
	a := matrix.NewDense(4, 4)
	a.Set(3, 3, 5)
	g := Partition(a, 2)
	if !g.BlockIsZero(0, 0) || g.BlockIsZero(1, 1) {
		t.Error("BlockIsZero broken")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestPaddedIdentity: identity padding covers exactly the rows past the
// original shape and leaves the original entries untouched.
func TestPaddedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, c := range [][3]int{{5, 5, 3}, {6, 6, 3}, {4, 7, 3}, {1, 1, 4}} {
		n, m, w := c[0], c[1], c[2]
		a := matrix.RandomDense(rng, n, m, 5)
		g := Partition(a, w)
		p := g.PaddedIdentity()
		for i := 0; i < p.Rows(); i++ {
			for j := 0; j < p.Cols(); j++ {
				want := 0.0
				switch {
				case i < n && j < m:
					want = a.At(i, j)
				case i == j:
					want = 1
				}
				if p.At(i, j) != want {
					t.Fatalf("n=%d m=%d w=%d: padded[%d][%d] = %g, want %g", n, m, w, i, j, p.At(i, j), want)
				}
			}
		}
		// The grid's own padded view must stay zero-padded.
		if n%w != 0 && g.Padded().At(p.Rows()-1, p.Cols()-1) != 0 {
			t.Fatal("PaddedIdentity mutated the grid's padded matrix")
		}
	}
}
