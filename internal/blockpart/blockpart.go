// Package blockpart implements the triangular block partitioning that
// underlies every DBT transformation (paper §2, Fig. 1a): a dense matrix A
// is zero-padded to an n̄w × m̄w grid of w×w blocks A_ij, and each block is
// split into an upper-triangular part U_ij (including the main diagonal) and
// a strictly-lower-triangular part L_ij, so A_ij = U_ij + L_ij.
package blockpart

import (
	"fmt"

	"repro/internal/matrix"
)

// Grid is a dense matrix partitioned into w×w triangular block pairs.
type Grid struct {
	// W is the block (and systolic array) size.
	W int
	// BlockRows (n̄) and BlockCols (m̄) are the block-grid dimensions.
	BlockRows, BlockCols int
	// OrigRows, OrigCols are the dimensions before zero padding.
	OrigRows, OrigCols int

	padded *matrix.Dense
}

// Ceil returns ⌈n/w⌉, the paper's overbar operator.
func Ceil(n, w int) int {
	if n <= 0 || w <= 0 {
		panic(fmt.Sprintf("blockpart: Ceil(%d, %d) with non-positive argument", n, w))
	}
	return (n + w - 1) / w
}

// Partition pads a to a multiple of w in both dimensions and returns its
// block grid view.
func Partition(a *matrix.Dense, w int) *Grid {
	if w < 1 {
		panic(fmt.Sprintf("blockpart: invalid block size %d", w))
	}
	if a.Rows() == 0 || a.Cols() == 0 {
		panic("blockpart: empty matrix")
	}
	nb := Ceil(a.Rows(), w)
	mb := Ceil(a.Cols(), w)
	return &Grid{
		W:         w,
		BlockRows: nb,
		BlockCols: mb,
		OrigRows:  a.Rows(),
		OrigCols:  a.Cols(),
		padded:    a.Pad(nb*w, mb*w),
	}
}

// Repartition rebuilds g in place as the block grid of a with block size w,
// reusing the padded matrix's storage when its capacity allows. It is the
// allocation-free counterpart of Partition for transform pools and scratch
// arenas that build one grid per array pass.
func (g *Grid) Repartition(a *matrix.Dense, w int) {
	if w < 1 {
		panic(fmt.Sprintf("blockpart: invalid block size %d", w))
	}
	if a.Rows() == 0 || a.Cols() == 0 {
		panic("blockpart: empty matrix")
	}
	nb := Ceil(a.Rows(), w)
	mb := Ceil(a.Cols(), w)
	g.W = w
	g.BlockRows, g.BlockCols = nb, mb
	g.OrigRows, g.OrigCols = a.Rows(), a.Cols()
	g.padded = matrix.PadInto(g.padded, a, nb*w, mb*w)
}

// Padded returns the zero-padded matrix (n̄w × m̄w).
func (g *Grid) Padded() *matrix.Dense { return g.padded }

// PaddedIdentity returns a copy of the padded matrix with ones on the main
// diagonal of the padding range [min(OrigRows, OrigCols), n̄w). Zero
// padding makes a square matrix singular; identity padding keeps a
// nonsingular system nonsingular and leaves the first OrigRows solution
// components unchanged — the embedding the block-partitioned solvers use
// to run ragged problems on exact block multiples.
func (g *Grid) PaddedIdentity() *matrix.Dense {
	out := g.padded.Clone()
	lo := g.OrigRows
	if g.OrigCols < lo {
		lo = g.OrigCols
	}
	hi := out.Rows()
	if out.Cols() < hi {
		hi = out.Cols()
	}
	for i := lo; i < hi; i++ {
		out.Set(i, i, 1)
	}
	return out
}

// Block returns a copy of block A_rs (w×w).
func (g *Grid) Block(r, s int) *matrix.Dense {
	g.check(r, s)
	return g.padded.Slice(r*g.W, (r+1)*g.W, s*g.W, (s+1)*g.W)
}

// At reads element (a, b) of block A_rs without copying.
func (g *Grid) At(r, s, a, b int) float64 {
	g.check(r, s)
	return g.padded.At(r*g.W+a, s*g.W+b)
}

// UpperAt reads element (a, b) of U_rs: the upper triangle of A_rs including
// the main diagonal (paper: "The main diagonal of Aij may belong to any of
// them. Let us suppose ... that it belongs to Uij"). Out-of-triangle reads
// return 0.
func (g *Grid) UpperAt(r, s, a, b int) float64 {
	if b < a {
		return 0
	}
	return g.At(r, s, a, b)
}

// LowerAt reads element (a, b) of L_rs: the strictly lower triangle of A_rs.
// Out-of-triangle reads return 0.
func (g *Grid) LowerAt(r, s, a, b int) float64 {
	if b >= a {
		return 0
	}
	return g.At(r, s, a, b)
}

// Upper returns U_rs as a w×w dense matrix.
func (g *Grid) Upper(r, s int) *matrix.Dense {
	u := matrix.NewDense(g.W, g.W)
	for a := 0; a < g.W; a++ {
		for b := a; b < g.W; b++ {
			u.Set(a, b, g.At(r, s, a, b))
		}
	}
	return u
}

// Lower returns L_rs as a w×w dense matrix.
func (g *Grid) Lower(r, s int) *matrix.Dense {
	l := matrix.NewDense(g.W, g.W)
	for a := 1; a < g.W; a++ {
		for b := 0; b < a; b++ {
			l.Set(a, b, g.At(r, s, a, b))
		}
	}
	return l
}

// BlockIsZero reports whether block A_rs is entirely zero. Used by the
// sparse-aware DBT extension (paper §4).
func (g *Grid) BlockIsZero(r, s int) bool {
	for a := 0; a < g.W; a++ {
		for b := 0; b < g.W; b++ {
			if g.At(r, s, a, b) != 0 {
				return false
			}
		}
	}
	return true
}

func (g *Grid) check(r, s int) {
	if r < 0 || r >= g.BlockRows || s < 0 || s >= g.BlockCols {
		panic(fmt.Sprintf("blockpart: block (%d,%d) out of grid %d×%d", r, s, g.BlockRows, g.BlockCols))
	}
}
