package blockpart

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestRepartition: rebuilding a grid in place across changing shapes must
// always match a freshly partitioned grid, padding included.
func TestRepartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Partition(matrix.RandomDense(rng, 3, 3, 4), 2)
	for trial := 0; trial < 30; trial++ {
		w := 1 + rng.Intn(4)
		a := matrix.RandomDense(rng, 1+rng.Intn(9), 1+rng.Intn(9), 4)
		g.Repartition(a, w)
		fresh := Partition(a, w)
		if g.W != fresh.W || g.BlockRows != fresh.BlockRows || g.BlockCols != fresh.BlockCols ||
			g.OrigRows != fresh.OrigRows || g.OrigCols != fresh.OrigCols {
			t.Fatalf("Repartition header mismatch: %+v vs %+v", g, fresh)
		}
		if !g.Padded().Equal(fresh.Padded(), 0) {
			t.Fatal("Repartition padded matrix mismatch (stale padding?)")
		}
	}
}
