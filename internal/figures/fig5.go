package figures

import (
	"fmt"
	"strings"
)

// SpiralLoop describes one feedback loop of the hexagonal array (Fig. 5):
// the c-stream diagonals it connects and the number of PEs in the loop.
type SpiralLoop struct {
	// OutDiag is the output band diagonal (γ−ρ) being fed back; InDiag the
	// input band diagonal it re-enters at. OutDiag == InDiag == 0 is the
	// auto-fed main diagonal.
	OutDiag, InDiag int
	// PEs is the number of processing elements on the loop's array path.
	PEs int
	// Registers is the external register chain length (the measured
	// feedback delay): 2w for the main diagonal, w for each pair.
	Registers int
}

// SpiralTopology enumerates the regular feedback loops of a w×w array.
// The main diagonal is auto-feedbacked; sub-diagonals are fed back in
// pairs (+f with +f−w) such that each loop covers exactly w PEs — the
// paper's defining property of the "spiral systolic array".
func SpiralTopology(w int) []SpiralLoop {
	loops := []SpiralLoop{{OutDiag: 0, InDiag: 0, PEs: w, Registers: 2 * w}}
	for f := 1; f <= w-1; f++ {
		// c-diagonal f occupies the PEs with d−e = f: w−f of them; its
		// partner diagonal f−w occupies f PEs; together exactly w.
		loops = append(loops, SpiralLoop{OutDiag: f, InDiag: f - w, PEs: (w - f) + f, Registers: w})
		loops = append(loops, SpiralLoop{OutDiag: f - w, InDiag: f, PEs: w, Registers: w})
	}
	return loops
}

// Fig5 renders the spiral feedback topology of the hexagonal array.
func Fig5() string {
	w := 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.5 — spiral feedback topology of the w×w hexagonal array (w = %d):\n\n", w)
	sb.WriteString("  c-stream diagonals of the 2w−1-wide product band and their feedback wiring:\n\n")
	for _, l := range SpiralTopology(w) {
		kind := "sub-diagonal pair"
		if l.OutDiag == 0 {
			kind = "main diagonal (auto-feedback)"
		}
		fmt.Fprintf(&sb, "    out diag %+d → in diag %+d   %2d PEs in loop, %d feedback registers  (%s)\n",
			l.OutDiag, l.InDiag, l.PEs, l.Registers, kind)
	}
	sb.WriteString("\n  Every loop covers exactly w PEs; the main diagonal needs 2w memory\n")
	sb.WriteString("  elements and each sub-diagonal pair w (paper §3). The U_{0,j} and\n")
	sb.WriteString("  L_{n̄−1,j} chains additionally use the irregular (region-crossing)\n")
	sb.WriteString("  feedback paths measured in experiment E7.\n")
	return sb.String()
}
