package figures

import (
	"strings"
	"testing"
)

func TestAppendixIComposition(t *testing.T) {
	s := AppendixICompositionTable(2, 2, 3, 3)
	// Row 0: D and L chains start from E blocks of C_{0,0}; U mid starts
	// from E (region start); no left square.
	for _, want := range []string{
		"E^D_{0,0}", "E^L0_{0,0}", "E^U1_{0,0}",
		// Regular chains: D_k ← D_{k−1}, U_{k,1} ← U_{k,0}, L_{k,1} ← L_{k,0}.
		"fb O^D_0", "fb O^U0_", "fb O^L0_",
		// Irregular region-crossing marks.
		"fb* O^U1_", "fb* O^L1_",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("I composition missing %q", want)
		}
	}
}

func TestAppendixCExtraction(t *testing.T) {
	s := AppendixCExtractionTable(2, 2, 3, 3)
	for _, want := range []string{
		// Group of C_{0,0} ends at row 1; its U chain ends at the next
		// region's left triangle (row 4).
		"C_{0,0}    O^D_1        O^U0_4        O^L1_1",
		// L of C_{n̄−1,0} reads the right triangle of the last regular row (11).
		"C_{1,0}    O^D_3        O^U1_3        O^L1_11",
		// L of C_{n̄−1,j>0} reads the mid of the last row of region j (7).
		"C_{1,1}    O^D_7        O^U1_7        O^L0_7",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("C extraction missing %q in:\n%s", want, s)
		}
	}
}

func TestAppendixRenders(t *testing.T) {
	if s := Appendix(); !strings.Contains(s, "I composition") || !strings.Contains(s, "C extraction") {
		t.Error("Appendix missing sections")
	}
}
