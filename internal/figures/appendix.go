package figures

import (
	"fmt"
	"strings"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// AppendixICompositionTable renders, for the given block shape, the full
// I-matrix composition the paper's appendix specifies symbolically: for
// every band row block k and piece, where its initialization comes from
// (an E piece, an earlier O piece — the spiral feedback — or nothing).
func AppendixICompositionTable(nbar, pbar, mbar, w int) string {
	t := dbt.NewMatMul(matrix.NewDense(nbar*w, pbar*w), matrix.NewDense(pbar*w, mbar*w), w)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Appendix — I composition for n̄=%d, p̄=%d, m̄=%d, w=%d (row blocks 0..%d, tail %d):\n\n",
		nbar, pbar, mbar, w, t.RegularBlocks()-1, t.RegularBlocks())
	fmt.Fprintf(&sb, "  %4s  %-18s %-18s %-18s %-18s %-18s\n", "k", "U_{k,0}", "L_{k,0}", "D_k", "U_{k,1}", "L_{k,1}")
	for k := 0; k <= t.RegularBlocks(); k++ {
		fmt.Fprintf(&sb, "  %4d", k)
		for _, p := range []dbt.Piece{dbt.PieceULeft, dbt.PieceLMid, dbt.PieceD, dbt.PieceUMid, dbt.PieceLRight} {
			fmt.Fprintf(&sb, "  %-17s", initLabel(t, k, p))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\n  (fb* marks the irregular region-crossing feedbacks of §3)\n")
	return sb.String()
}

func initLabel(t *dbt.MatMul, k int, p dbt.Piece) string {
	if len(t.PiecePositions(k, p)) == 0 {
		return "-"
	}
	init := t.InitFor(k, p)
	switch init.Kind {
	case dbt.InitZero:
		return "0"
	case dbt.InitE:
		return fmt.Sprintf("E^%v_{%d,%d}", dbt.EPieceForInit(p), init.R, init.S)
	default:
		mark := ""
		if init.Irregular {
			mark = "*"
		}
		return fmt.Sprintf("fb%s O^%v_%d", mark, init.Piece, init.Row)
	}
}

// AppendixCExtractionTable renders where each C block's three pieces are
// read from the output band O.
func AppendixCExtractionTable(nbar, pbar, mbar, w int) string {
	t := dbt.NewMatMul(matrix.NewDense(nbar*w, pbar*w), matrix.NewDense(pbar*w, mbar*w), w)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Appendix — C extraction for n̄=%d, p̄=%d, m̄=%d, w=%d:\n\n", nbar, pbar, mbar, w)
	sb.WriteString("  C block    D from        U from        L from\n")
	for r := 0; r < nbar; r++ {
		for iB := 0; iB < mbar; iB++ {
			dRow, dp := t.CSource(r, iB, dbt.PieceD)
			uRow, up := t.CSource(r, iB, dbt.PieceUMid)
			lRow, lp := t.CSource(r, iB, dbt.PieceLMid)
			fmt.Fprintf(&sb, "  C_{%d,%d}    O^%v_%-4d     O^%v_%-4d     O^%v_%-4d\n",
				r, iB, dp, dRow, up, uRow, lp, lRow)
		}
	}
	return sb.String()
}

// Appendix renders both tables for the paper's Fig. 4 shape.
func Appendix() string {
	return AppendixICompositionTable(2, 2, 3, 3) + "\n" + AppendixCExtractionTable(2, 2, 3, 3)
}
