package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/matrix"
	"repro/internal/systolic"
)

// Fig3Streams runs the Fig. 3 problem (n=6, m=9, w=3) with tracing and
// returns the three labelled boundary streams: for each cycle with
// activity, the x element entering, the ȳ initialization entering and the
// ȳ value leaving. Labels follow the paper: x/b indices are original
// element indices, partial results are y<i>^<p> (p-th partial of element
// i), finals are y<i>.
type Fig3Streams struct {
	// T is the total step count (39 in the paper).
	T int
	// X, YIn, YOut map cycle → label.
	X, YIn, YOut map[int]string
}

// Fig3Data produces the traced streams for arbitrary (n, m, w).
func Fig3Data(n, m, w int) (*Fig3Streams, error) {
	a := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, float64(i*m+j+1))
		}
	}
	x := matrix.NewVector(m)
	b := matrix.NewVector(n)
	s := core.NewMatVecSolver(w)
	res, err := s.Solve(a, x, b, core.MatVecOptions{Trace: true})
	if err != nil {
		return nil, err
	}
	t := dbt.NewMatVec(a, w)
	out := &Fig3Streams{
		T: res.Stats.T,
		X: map[int]string{}, YIn: map[int]string{}, YOut: map[int]string{},
	}
	for _, e := range res.Stats.Trace.Events {
		switch e.Port {
		case systolic.PortX:
			out.X[e.Cycle] = xLabel(t, e.Index)
		case systolic.PortYIn:
			out.YIn[e.Cycle] = yInLabel(t, e.Index)
		case systolic.PortYOut:
			out.YOut[e.Cycle] = yOutLabel(t, e.Index)
		}
	}
	return out, nil
}

// xLabel maps a band column index to its original x element label.
func xLabel(t *dbt.MatVec, j int) string {
	w := t.W
	k := j / w
	if k >= t.Blocks() { // tail: first w−1 elements of the wrap block
		_, s := t.LowerIndex(t.Blocks() - 1)
		return fmt.Sprintf("x%d", s*w+(j-t.Blocks()*w))
	}
	return fmt.Sprintf("x%d", (k%t.MBar)*w+j%w)
}

// yInLabel maps a band row index to its initialization label.
func yInLabel(t *dbt.MatVec, i int) string {
	w := t.W
	k := i / w
	if src := t.BSource(k); src.Kind == dbt.FromB {
		return fmt.Sprintf("b%d", src.Index*w+i%w)
	}
	return yOutLabel(t, i-w) // the fed-back partial
}

// yOutLabel maps a band row index to its output label: the p-th partial or
// the final value of y element r·w + a.
func yOutLabel(t *dbt.MatVec, i int) string {
	w := t.W
	k := i / w
	r := k / t.MBar
	p := k%t.MBar + 1
	elem := r*w + i%w
	if dst := t.YDest(k); dst.Final {
		return fmt.Sprintf("y%d", elem)
	}
	return fmt.Sprintf("y%d^%d", elem, p)
}

// Fig3 renders the full data-flow table for the paper's case n=6, m=9, w=3
// (39 steps).
func Fig3() string {
	st, err := Fig3Data(6, 9, 3)
	if err != nil {
		return err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.3 — I/O data flow for ȳ = Ā·x̄ + b̄ with n=6, m=9, w=3 (T = %d steps):\n\n", st.T)
	cycles := map[int]bool{}
	for c := range st.X {
		cycles[c] = true
	}
	for c := range st.YIn {
		cycles[c] = true
	}
	for c := range st.YOut {
		cycles[c] = true
	}
	var order []int
	for c := range cycles {
		order = append(order, c)
	}
	sort.Ints(order)
	sb.WriteString("  clock  x-in   y-in    y-out\n")
	for _, c := range order {
		fmt.Fprintf(&sb, "  %5d  %-6s %-7s %s\n", c, st.X[c], st.YIn[c], st.YOut[c])
	}
	sb.WriteString("\n  (x elements enter PE0 every 2 cycles; partials y_i^p re-enter PE w−1 after\n")
	sb.WriteString("   exactly w = 3 cycles in the feedback registers; finals appear in order.)\n")
	return sb.String()
}
