package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/systolic"
	"repro/internal/trisolve"
)

// FigTriStreams holds the labelled boundary streams of a traced band
// triangular solve on the Kung–Leiserson array: for each cycle with
// activity, the zero partial sum entering at PE w−1, the solution leaving
// the divider, and its re-entry into the x stream.
type FigTriStreams struct {
	// T is the total step count (2n + w − 2).
	T int
	// YIn, XOut and XBack map cycle → label: y<i> injections, x<i>
	// divider outputs, x<i> re-entries.
	YIn, XOut, XBack map[int]string
}

// FigTriData produces the traced streams for an arbitrary band solve
// (dimension n, bandwidth/array size w) on a fixed example system.
func FigTriData(n, w int) (*FigTriStreams, error) {
	l := matrix.NewBand(n, n, -(w - 1), 0)
	for i := 0; i < n; i++ {
		for d := 1; d < w; d++ {
			if j := i - d; j >= 0 {
				l.Set(i, j, float64(i+d))
			}
		}
		l.Set(i, i, float64(i+1))
	}
	b := matrix.NewVector(n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	arr := trisolve.New(w)
	arr.RecordTrace = true
	res, err := arr.SolveBandEngine(l, b, core.EngineAuto)
	if err != nil {
		return nil, err
	}
	out := &FigTriStreams{
		T:   res.T,
		YIn: map[int]string{}, XOut: map[int]string{}, XBack: map[int]string{},
	}
	for _, e := range res.Trace.Events {
		switch e.Port {
		case systolic.PortYIn:
			out.YIn[e.Cycle] = fmt.Sprintf("y%d", e.Index)
		case systolic.PortYOut:
			out.XOut[e.Cycle] = fmt.Sprintf("x%d", e.Index)
		case systolic.PortX:
			out.XBack[e.Cycle] = fmt.Sprintf("x%d", e.Index)
		}
	}
	return out, nil
}

// Fig7 renders the boundary data flow of the Kung–Leiserson band
// triangular solver (not a figure of the paper — the paper builds on this
// array for its §4 solver claims) for n=6, w=3: partial sums y_i enter at
// PE w−1 every 2 cycles, x_i leaves the divider at cycle 2i+w−1 and
// immediately re-enters the x stream.
func Fig7() string {
	n, w := 6, 3
	st, err := FigTriData(n, w)
	if err != nil {
		return err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.7 — Kung–Leiserson band triangular solver data flow, n=%d, w=%d (T = %d = 2n+w−2 steps):\n\n", n, w, st.T)
	cycles := map[int]bool{}
	for c := range st.YIn {
		cycles[c] = true
	}
	for c := range st.XOut {
		cycles[c] = true
	}
	for c := range st.XBack {
		cycles[c] = true
	}
	var order []int
	for c := range cycles {
		order = append(order, c)
	}
	sort.Ints(order)
	sb.WriteString("  clock  y-in(PE w−1)  x-out(PE 0)  x-reenter(PE 1)\n")
	for _, c := range order {
		fmt.Fprintf(&sb, "  %5d  %-13s %-12s %s\n", c, st.YIn[c], st.XOut[c], st.XBack[c])
	}
	sb.WriteString("\n  (y_i enters at cycle 2i and collects L[i][i−d]·x_{i−d} at PE d while moving\n")
	sb.WriteString("   left; the divider emits x_i = (b_i − y_i)/L[i][i] at cycle 2i+w−1, and x_i\n")
	sb.WriteString("   joins the right-moving x stream one cycle later — the self-feeding recurrence.)\n")
	return sb.String()
}
