package figures

import (
	"fmt"
	"strings"
	"testing"
)

func TestFig1(t *testing.T) {
	s := Fig1()
	// The band block order of DBT-by-rows for n̄=2, m̄=3.
	for _, want := range []string{
		"[U00 | L01]", "[U01 | L02]", "[U02 | L00]",
		"[U10 | L11]", "[U11 | L12]", "[U12 | L10]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestFig2(t *testing.T) {
	s := Fig2()
	if !strings.Contains(s, "T = 2w·n̄m̄+2w−3 = 39") {
		t.Error("Fig2 missing the 39-step count")
	}
	if !strings.Contains(s, "T = w·n̄m̄+2w−2 = 22") {
		t.Error("Fig2 missing the overlapped 22-step count")
	}
	if !strings.Contains(s, "optimal partition") {
		t.Error("Fig2 missing the dotted partition line")
	}
}

// TestFig3DataFlow pins the paper's central data-flow example: 39 steps,
// the x stream cycling x0..x8 twice plus the x0,x1 tail, b-blocks entering
// at row-band starts, partials re-entering, finals in order.
func TestFig3DataFlow(t *testing.T) {
	st, err := Fig3Data(6, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.T != 39 {
		t.Fatalf("T=%d, want 39", st.T)
	}
	// x stream: x̄_j at cycle 2j, labels x0..x8, x0..x8, x0, x1.
	var xs []string
	for c := 0; c <= 38; c += 2 {
		xs = append(xs, st.X[c])
	}
	wantX := []string{
		"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8",
		"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8",
		"x0", "x1",
	}
	if len(xs) != len(wantX) {
		t.Fatalf("x stream has %d entries, want %d", len(xs), len(wantX))
	}
	for i := range wantX {
		if xs[i] != wantX[i] {
			t.Errorf("x stream[%d] = %q, want %q", i, xs[i], wantX[i])
		}
	}
	// y-in: rows enter at 2i+2: b0,b1,b2, partials of band 0, b3,b4,b5, …
	wantYIn := []string{
		"b0", "b1", "b2",
		"y0^1", "y1^1", "y2^1",
		"y0^2", "y1^2", "y2^2",
		"b3", "b4", "b5",
		"y3^1", "y4^1", "y5^1",
		"y3^2", "y4^2", "y5^2",
	}
	for i, want := range wantYIn {
		if got := st.YIn[2*i+2]; got != want {
			t.Errorf("y-in at cycle %d = %q, want %q", 2*i+2, got, want)
		}
	}
	// y-out: row i available at 2i+5; finals y0..y2 at rows 6..8, y3..y5 at 15..17.
	wantYOut := []string{
		"y0^1", "y1^1", "y2^1",
		"y0^2", "y1^2", "y2^2",
		"y0", "y1", "y2",
		"y3^1", "y4^1", "y5^1",
		"y3^2", "y4^2", "y5^2",
		"y3", "y4", "y5",
	}
	for i, want := range wantYOut {
		if got := st.YOut[2*i+5]; got != want {
			t.Errorf("y-out at cycle %d = %q, want %q", 2*i+5, got, want)
		}
	}
	// Feedback latency visible in the streams: each partial leaves at
	// 2i+5 and re-enters at 2(i+3)+2 = 2i+8, i.e. w = 3 cycles later.
	for i := 0; i < 3; i++ {
		if st.YOut[2*i+5] != st.YIn[2*i+8] {
			t.Errorf("partial of row %d not fed back after w cycles", i)
		}
	}
}

// TestFig3DataOtherShapes: the traced stream structure generalizes to any
// (n, m, w) — T matches the formula, the x stream cycles m̄ blocks n̄ times
// plus the w−1 tail, and every y row appears exactly once on each port.
func TestFig3DataOtherShapes(t *testing.T) {
	for _, c := range []struct{ n, m, w int }{
		{4, 4, 2}, {8, 4, 4}, {5, 7, 3}, {2, 10, 2},
	} {
		st, err := Fig3Data(c.n, c.m, c.w)
		if err != nil {
			t.Fatal(err)
		}
		nb := (c.n + c.w - 1) / c.w
		mb := (c.m + c.w - 1) / c.w
		if want := 2*c.w*nb*mb + 2*c.w - 3; st.T != want {
			t.Errorf("%+v: T=%d, want %d", c, st.T, want)
		}
		if got, want := len(st.X), nb*mb*c.w+c.w-1; got != want {
			t.Errorf("%+v: %d x events, want %d", c, got, want)
		}
		if got, want := len(st.YIn), nb*mb*c.w; got != want {
			t.Errorf("%+v: %d y-in events, want %d", c, got, want)
		}
		if got, want := len(st.YOut), nb*mb*c.w; got != want {
			t.Errorf("%+v: %d y-out events, want %d", c, got, want)
		}
		// Finals: exactly n̄·w "y<i>" labels without a caret.
		finals := 0
		for _, l := range st.YOut {
			if !strings.ContainsRune(l, '^') {
				finals++
			}
		}
		if want := nb * c.w; finals != want {
			t.Errorf("%+v: %d final labels, want %d", c, finals, want)
		}
	}
}

func TestFig3Rendering(t *testing.T) {
	s := Fig3()
	for _, want := range []string{"T = 39 steps", "y0^1", "b3", "y5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig3 missing %q", want)
		}
	}
}

func TestFig4(t *testing.T) {
	s := Fig4()
	for _, want := range []string{
		"[U00 L01]", "[U01 L00]", "[U10 L11]", "[U11 L10]", // Ā pattern
		"[L⁺0,0 U⁻1,0]", "L′", "U′",
		"p̄n̄m̄w + w−1 = 38",
		"T = 3w·p̄n̄m̄+4w−5 = 115",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig4 missing %q", want)
		}
	}
}

// TestSpiralTopology pins Fig. 5's defining property: every feedback loop
// covers exactly w PEs, the main diagonal uses 2w registers, pairs use w.
func TestSpiralTopology(t *testing.T) {
	for _, w := range []int{2, 3, 5, 8} {
		loops := SpiralTopology(w)
		if len(loops) != 2*(w-1)+1 {
			t.Fatalf("w=%d: %d loops, want %d", w, len(loops), 2*(w-1)+1)
		}
		for _, l := range loops {
			if l.PEs != w {
				t.Errorf("w=%d: loop %+d→%+d covers %d PEs, want %d", w, l.OutDiag, l.InDiag, l.PEs, w)
			}
			wantReg := w
			if l.OutDiag == 0 {
				wantReg = 2 * w
			}
			if l.Registers != wantReg {
				t.Errorf("w=%d: loop %+d→%+d has %d registers, want %d", w, l.OutDiag, l.InDiag, l.Registers, wantReg)
			}
		}
	}
}

func TestFig5Fig6Render(t *testing.T) {
	if s := Fig5(); !strings.Contains(s, "main diagonal (auto-feedback)") {
		t.Error("Fig5 missing auto-feedback")
	}
	if s := Fig6(); !strings.Contains(s, "L_{i,0}  D_i  U_{i,1}") {
		t.Error("Fig6 missing the piece layout")
	}
}

// TestFig7Streams pins the supplementary trisolve data-flow figure: y
// injections every 2 cycles, x outputs at 2i+w−1, re-entry one cycle
// later (n=6, w=3 — T = 2n+w−2 = 13).
func TestFig7Streams(t *testing.T) {
	st, err := FigTriData(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.T != 13 {
		t.Fatalf("T=%d, want 2n+w−2 = 13", st.T)
	}
	for i := 0; i < 6; i++ {
		if got := st.YIn[2*i]; got != fmt.Sprintf("y%d", i) {
			t.Errorf("cycle %d y-in %q, want y%d", 2*i, got, i)
		}
		if got := st.XOut[2*i+2]; got != fmt.Sprintf("x%d", i) {
			t.Errorf("cycle %d x-out %q, want x%d", 2*i+2, got, i)
		}
		if got := st.XBack[2*i+3]; got != fmt.Sprintf("x%d", i) {
			t.Errorf("cycle %d x-reenter %q, want x%d", 2*i+3, got, i)
		}
	}
	if s := Fig7(); !strings.Contains(s, "self-feeding recurrence") {
		t.Error("Fig7 missing the recurrence note")
	}
}
