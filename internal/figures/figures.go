// Package figures regenerates the paper's six figures as text renderings —
// plus a supplementary Fig. 7, the boundary data flow of the
// Kung–Leiserson band triangular solver array — driven by the same
// transformation and simulator code the experiments use. Each FigN
// function returns a self-contained string; cmd/figures prints them and
// the package tests pin the load-bearing content (block orders, Fig. 3's
// and Fig. 7's exact stream sequences, Fig. 5's loop sizes).
package figures

import (
	"fmt"
	"strings"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// Fig1 renders the block structure of the matrix–vector transformation
// (paper Fig. 1): the triangular decomposition of A and the band layout of
// Ā with the b̄/ȳ chaining, for generic symbolic n̄ = 2, m̄ = 3.
func Fig1() string {
	t := dbt.NewMatVec(matrix.NewDense(6, 9), 3) // n̄=2, m̄=3 at w=3
	var sb strings.Builder
	sb.WriteString("Fig.1a — original problem A·x + b = y, blocks A_ij split as U_ij + L_ij (n̄=2, m̄=3):\n\n")
	for r := 0; r < t.NBar; r++ {
		for s := 0; s < t.MBar; s++ {
			fmt.Fprintf(&sb, "  [U%d%d\\L%d%d]", r, s, r, s)
		}
		if r == 0 {
			sb.WriteString("    x = [x0 x1 x2]ᵀ   b,y = [b0 b1 | y0 y1]ᵀ")
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\nFig.1b — transformed problem Ā·x̄ + b̄ = ȳ (upper band, bandwidth w):\n\n")
	sb.WriteString("  k   band row block      x̄_k   b̄_k      ȳ_k\n")
	for k := 0; k < t.Blocks(); k++ {
		ru, su := t.UpperIndex(k)
		rl, sl := t.LowerIndex(k)
		src := t.BSource(k)
		dst := t.YDest(k)
		b := fmt.Sprintf("b%d", src.Index)
		if src.Kind == dbt.FromFeedback {
			b = fmt.Sprintf("ȳ%d (fb)", src.Index)
		}
		y := fmt.Sprintf("→ b̄%d", dst.Index)
		if dst.Final {
			y = fmt.Sprintf("= y%d", dst.Index)
		}
		fmt.Fprintf(&sb, "  %d   [U%d%d | L%d%d]        x%d    %-8s %s\n", k, ru, su, rl, sl, su, b, y)
	}
	sb.WriteString("  tail x̄_6 = first w−1 elements of x0\n")
	return sb.String()
}

// Fig2 renders the Fig. 2 example (n=6, m=9, w=3): the original block
// structure and the DBT-by-rows band with the optimal two-sub-problem
// partition (the dotted line).
func Fig2() string {
	t := dbt.NewMatVec(matrix.NewDense(6, 9), 3)
	var sb strings.Builder
	sb.WriteString("Fig.2 — matrix–vector multiplication for n=6, m=9, w=3 (n̄=2, m̄=3):\n\n")
	sb.WriteString("a) original blocks:   A = [A00 A01 A02; A10 A11 A12], each A_rs = U_rs + L_rs (3×3)\n\n")
	sb.WriteString("b) transformed band Ā (each row block = [Ū_k | L̄_k]):\n\n")
	for k := 0; k < t.Blocks(); k++ {
		ru, su := t.UpperIndex(k)
		rl, sl := t.LowerIndex(k)
		pad := strings.Repeat("      ", k)
		fmt.Fprintf(&sb, "  %s[U%d%d L%d%d]\n", pad, ru, su, rl, sl)
		if k == t.Blocks()/2-1 {
			fmt.Fprintf(&sb, "  %s- - - - - - - optimal partition (two overlapped sub-problems)\n", strings.Repeat("      ", k+1))
		}
	}
	sb.WriteString("\n  b̄ = [b0 | ȳ0 | ȳ1 | b1 | ȳ3 | ȳ4],  y0 = ȳ2, y1 = ȳ5\n")
	fmt.Fprintf(&sb, "  steps: T = 2w·n̄m̄+2w−3 = %d (no overlap), T = w·n̄m̄+2w−2 = %d (overlapped)\n",
		2*3*6+2*3-3, 3*6+2*3-2)
	return sb.String()
}

// Fig4 renders the matrix–matrix block structure (paper Fig. 4) for
// n̄=2, p̄=2, m̄=3, w=3: the bands of Ā and B̄ at block level.
func Fig4() string {
	w := 3
	t := dbt.NewMatMul(matrix.NewDense(2*w, 2*w), matrix.NewDense(2*w, 3*w), w)
	var sb strings.Builder
	sb.WriteString("Fig.4 — block structure of C = A·B for n̄=2, p̄=2, m̄=3, w=3:\n\n")
	sb.WriteString("a) A = [A00 A01; A10 A11] (U+L split), B = [B00 B01 B02; B10 B11 B12] (L⁺/U⁻ split)\n\n")
	sb.WriteString("b) band of Ā (the DBT-by-rows band of A repeated m̄ times + tail U′):\n\n   ")
	region := t.NBar * t.PBar
	for k := 0; k < t.RegularBlocks(); k++ {
		pat := k % region
		ru, su := 0, 0
		ru, su = pat/t.PBar, pat%t.PBar
		rl, sl := pat/t.PBar, (pat%t.PBar+1)%t.PBar
		fmt.Fprintf(&sb, "[U%d%d L%d%d] ", ru, su, rl, sl)
		if (k+1)%region == 0 {
			sb.WriteString("| ")
		}
	}
	sb.WriteString("U′\n\n   band of B̄ (per column block B_i, DBT-transposed-by-rows repeated n̄ times + tail L′):\n\n   ")
	for c := 0; c < t.RegularBlocks(); c++ {
		q := c % t.PBar
		iB := c / region
		fmt.Fprintf(&sb, "[L⁺%d,%d U⁻%d,%d] ", q, iB, (q+1)%t.PBar, iB)
		if (c+1)%region == 0 {
			sb.WriteString("| ")
		}
	}
	sb.WriteString("L′\n")
	fmt.Fprintf(&sb, "\n   square dimension p̄n̄m̄w + w−1 = %d, steps T = 3w·p̄n̄m̄+4w−5 = %d\n",
		t.Dim(), 3*w*t.PBar*t.NBar*t.MBar+4*w-5)
	return sb.String()
}

// Fig6 renders the I/O band row-block notation of the appendix (paper
// Fig. 6): the five pieces of a 2w−1-wide band row block in column order.
func Fig6() string {
	var sb strings.Builder
	sb.WriteString("Fig.6 — row block i of the product band matrices I (input) and O (output):\n\n")
	sb.WriteString("  columns:   (i−1)·w ........ i·w ............. (i+1)·w\n")
	sb.WriteString("             [ U_{i,0} ]  [ L_{i,0}  D_i  U_{i,1} ]  [ L_{i,1} ]\n")
	sb.WriteString("              left strict   strict   diag  strict     right strict\n")
	sb.WriteString("              upper  Δ      lower Δ         upper Δ   lower Δ\n\n")
	sb.WriteString("  accumulation chains (spiral feedback, re-derived appendix maps):\n")
	sb.WriteString("    D:  E at group start       → D_k ← D_{k−1}                  → read at last row of group\n")
	sb.WriteString("    U:  E at group/region start → U_{k,1} ← U_{k,0} ← U_{k−1,1}  → read at U_{k,1} (r>0) or next region's U_{k,0} (r=0)\n")
	sb.WriteString("    L:  E at group start/region end → L_{k,0} → L_{k,1} → L_{k+1,0} → read at L_{k,1} (r<n̄−1), L_{k,0} (r=n̄−1, j>0), last L_{k,1} (r=n̄−1, j=0)\n")
	return sb.String()
}
