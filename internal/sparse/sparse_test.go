package sparse

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// blockSparse builds a matrix whose w×w blocks are nonzero with probability
// density (at least guaranteeing reproducibility via rng).
func blockSparse(rng *rand.Rand, nb, mb, w int, density float64) *matrix.Dense {
	a := matrix.NewDense(nb*w, mb*w)
	for r := 0; r < nb; r++ {
		for s := 0; s < mb; s++ {
			if rng.Float64() >= density {
				continue
			}
			for i := 0; i < w; i++ {
				for j := 0; j < w; j++ {
					a.Set(r*w+i, s*w+j, float64(rng.Intn(9)-4))
				}
			}
		}
	}
	return a
}

func TestSparseCorrectAcrossDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, w := range []int{2, 3} {
		for _, density := range []float64{0, 0.2, 0.5, 0.8, 1} {
			a := blockSparse(rng, 4, 5, w, density)
			x := matrix.RandomVector(rng, 5*w, 4)
			b := matrix.RandomVector(rng, 4*w, 4)
			tr := NewMatVec(a, w)
			res, err := tr.Solve(x, b)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Y.Equal(a.MulVec(x, b), 0) {
				t.Errorf("w=%d density=%.1f: wrong result", w, density)
			}
		}
	}
}

func TestSparseStepsFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, density := range []float64{0.3, 0.6, 1} {
		w := 3
		a := blockSparse(rng, 5, 4, w, density)
		x := matrix.RandomVector(rng, 4*w, 3)
		tr := NewMatVec(a, w)
		res, err := tr.Solve(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.T != tr.PredictedSteps() {
			t.Errorf("density=%.1f: T=%d, predicted %d", density, res.T, tr.PredictedSteps())
		}
	}
}

// TestSparseBeatsDenseDBT (E10): on block-sparse inputs the sparse schedule
// is shorter than full DBT, approaching the density ratio.
func TestSparseBeatsDenseDBT(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	w := 4
	a := blockSparse(rng, 6, 6, w, 0.3)
	x := matrix.RandomVector(rng, 6*w, 3)
	tr := NewMatVec(a, w)
	if tr.Density() >= 0.8 {
		t.Skip("rng produced a dense instance")
	}
	res, err := tr.Solve(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.T >= dense.Stats.T {
		t.Errorf("sparse T=%d not below dense DBT T=%d (density %.2f)", res.T, dense.Stats.T, tr.Density())
	}
}

func TestSparseEmptyMatrix(t *testing.T) {
	w := 3
	a := matrix.NewDense(2*w, 2*w)
	b := matrix.RandomVector(rand.New(rand.NewSource(64)), 2*w, 4)
	tr := NewMatVec(a, w)
	res, err := tr.Solve(matrix.NewVector(2*w), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.Q != 0 {
		t.Errorf("empty matrix: T=%d Q=%d, want 0, 0", res.T, res.Q)
	}
	if !res.Y.Equal(b, 0) {
		t.Error("empty matrix: y must equal b")
	}
}

func TestSparseDensityAccounting(t *testing.T) {
	w := 2
	a := matrix.NewDense(2*w, 3*w)
	// Exactly two nonzero blocks.
	a.Set(0, 0, 1)
	a.Set(w, 2*w, 5)
	tr := NewMatVec(a, w)
	if tr.TotalBlocks() != 2 {
		t.Errorf("Q=%d, want 2", tr.TotalBlocks())
	}
	if got, want := tr.Density(), 2.0/6; got != want {
		t.Errorf("density=%g, want %g", got, want)
	}
}

func TestSparseValidation(t *testing.T) {
	tr := NewMatVec(matrix.NewDense(4, 4), 2)
	if _, err := tr.Solve(make(matrix.Vector, 3), nil); err == nil {
		t.Error("expected x length error")
	}
	if _, err := tr.Solve(make(matrix.Vector, 4), make(matrix.Vector, 1)); err == nil {
		t.Error("expected b length error")
	}
}

// TestSparseEngineUnsupported: the sparse schedule depends on the
// block-sparsity pattern (data, not shape), so forcing the compiled engine
// must return the engine layer's clear unsupported-workload error — never
// silently fall back — while Auto and Oracle run structurally.
func TestSparseEngineUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := 3
	a := blockSparse(rng, 3, 3, w, 0.5)
	x := matrix.RandomVector(rng, 3*w, 5)
	tr := NewMatVec(a, w)
	_, err := tr.SolveEngine(x, nil, core.EngineCompiled)
	if err == nil {
		t.Fatal("EngineCompiled on the sparse workload should error, not fall back")
	}
	if !errors.Is(err, schedule.ErrUnsupported) {
		t.Fatalf("error %v does not wrap schedule.ErrUnsupported", err)
	}
	want, err := tr.Solve(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []core.Engine{core.EngineAuto, core.EngineOracle} {
		got, err := tr.SolveEngine(x, nil, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if !got.Y.Equal(want.Y, 0) || got.T != want.T {
			t.Fatalf("%v diverges from the structural solve", eng)
		}
	}
}
