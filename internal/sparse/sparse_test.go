package sparse

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// blockSparse builds a matrix whose w×w blocks are nonzero with probability
// density (at least guaranteeing reproducibility via rng).
func blockSparse(rng *rand.Rand, nb, mb, w int, density float64) *matrix.Dense {
	a := matrix.NewDense(nb*w, mb*w)
	for r := 0; r < nb; r++ {
		for s := 0; s < mb; s++ {
			if rng.Float64() >= density {
				continue
			}
			for i := 0; i < w; i++ {
				for j := 0; j < w; j++ {
					a.Set(r*w+i, s*w+j, float64(rng.Intn(9)-4))
				}
			}
		}
	}
	return a
}

func TestSparseCorrectAcrossDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, w := range []int{2, 3} {
		for _, density := range []float64{0, 0.2, 0.5, 0.8, 1} {
			a := blockSparse(rng, 4, 5, w, density)
			x := matrix.RandomVector(rng, 5*w, 4)
			b := matrix.RandomVector(rng, 4*w, 4)
			tr := NewMatVec(a, w)
			res, err := tr.Solve(x, b)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Y.Equal(a.MulVec(x, b), 0) {
				t.Errorf("w=%d density=%.1f: wrong result", w, density)
			}
		}
	}
}

func TestSparseStepsFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, density := range []float64{0.3, 0.6, 1} {
		w := 3
		a := blockSparse(rng, 5, 4, w, density)
		x := matrix.RandomVector(rng, 4*w, 3)
		tr := NewMatVec(a, w)
		res, err := tr.Solve(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.T != tr.PredictedSteps() {
			t.Errorf("density=%.1f: T=%d, predicted %d", density, res.T, tr.PredictedSteps())
		}
	}
}

// TestSparseBeatsDenseDBT (E10): on block-sparse inputs the sparse schedule
// is shorter than full DBT, approaching the density ratio.
func TestSparseBeatsDenseDBT(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	w := 4
	a := blockSparse(rng, 6, 6, w, 0.3)
	x := matrix.RandomVector(rng, 6*w, 3)
	tr := NewMatVec(a, w)
	if tr.Density() >= 0.8 {
		t.Skip("rng produced a dense instance")
	}
	res, err := tr.Solve(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.T >= dense.Stats.T {
		t.Errorf("sparse T=%d not below dense DBT T=%d (density %.2f)", res.T, dense.Stats.T, tr.Density())
	}
}

func TestSparseEmptyMatrix(t *testing.T) {
	w := 3
	a := matrix.NewDense(2*w, 2*w)
	b := matrix.RandomVector(rand.New(rand.NewSource(64)), 2*w, 4)
	tr := NewMatVec(a, w)
	res, err := tr.Solve(matrix.NewVector(2*w), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.Q != 0 {
		t.Errorf("empty matrix: T=%d Q=%d, want 0, 0", res.T, res.Q)
	}
	if !res.Y.Equal(b, 0) {
		t.Error("empty matrix: y must equal b")
	}
}

func TestSparseDensityAccounting(t *testing.T) {
	w := 2
	a := matrix.NewDense(2*w, 3*w)
	// Exactly two nonzero blocks.
	a.Set(0, 0, 1)
	a.Set(w, 2*w, 5)
	tr := NewMatVec(a, w)
	if tr.TotalBlocks() != 2 {
		t.Errorf("Q=%d, want 2", tr.TotalBlocks())
	}
	if got, want := tr.Density(), 2.0/6; got != want {
		t.Errorf("density=%g, want %g", got, want)
	}
}

func TestSparseValidation(t *testing.T) {
	tr := NewMatVec(matrix.NewDense(4, 4), 2)
	if _, err := tr.Solve(make(matrix.Vector, 3), nil); err == nil {
		t.Error("expected x length error")
	}
	if _, err := tr.Solve(make(matrix.Vector, 4), make(matrix.Vector, 1)); err == nil {
		t.Error("expected b length error")
	}
}

// TestSparseEngineEquiv: the compiled engine replays a pattern-keyed plan
// that must be bit-identical to the structural simulator — results AND
// statistics (T, utilization, per-PE MAC counts) — across random patterns,
// with and without b, including empty bands and fully dense grids. Auto
// resolves to the compiled path.
func TestSparseEngineEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	equivArena := core.NewArena()
	for _, w := range []int{1, 2, 3, 4} {
		for _, density := range []float64{0, 0.2, 0.5, 0.8, 1} {
			nb, mb := 1+rng.Intn(5), 1+rng.Intn(5)
			a := blockSparse(rng, nb, mb, w, density)
			x := matrix.RandomVector(rng, mb*w, 5)
			var b matrix.Vector
			if rng.Intn(2) == 0 {
				b = matrix.RandomVector(rng, nb*w, 5)
			}
			tr := NewMatVec(a, w)
			want, err := tr.SolveEngine(x, b, core.EngineOracle)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []core.Engine{core.EngineCompiled, core.EngineAuto} {
				got, err := tr.SolveEngine(x, b, eng)
				if err != nil {
					t.Fatalf("%v (w=%d density=%.1f): %v", eng, w, density, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v diverges from the structural solve (w=%d n̄=%d m̄=%d density=%.1f):\ncompiled %+v\noracle   %+v",
						eng, w, nb, mb, density, got, want)
				}
				// The memo-resolved variant (the stream's full-job path)
				// must return the identical result.
				onArena, err := tr.SolveEngineOn(equivArena, x, b, eng)
				if err != nil {
					t.Fatalf("SolveEngineOn %v: %v", eng, err)
				}
				if !reflect.DeepEqual(onArena, want) {
					t.Fatalf("SolveEngineOn %v diverges from the structural solve (w=%d density=%.1f)", eng, w, density)
				}
			}
			if !want.Y.Equal(a.MulVec(x, b), 0) {
				t.Fatalf("w=%d density=%.1f: wrong result", w, density)
			}
		}
	}
}

// TestSparseEngineValidation: both engines report the same operand-length
// failures, and an invalid engine value errors on the sparse path too.
func TestSparseEngineValidation(t *testing.T) {
	tr := NewMatVec(matrix.NewDense(4, 4), 2)
	for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
		if _, err := tr.SolveEngine(make(matrix.Vector, 3), nil, eng); err == nil {
			t.Errorf("%v: expected x length error", eng)
		}
		if _, err := tr.SolveEngine(make(matrix.Vector, 4), make(matrix.Vector, 1), eng); err == nil {
			t.Errorf("%v: expected b length error", eng)
		}
	}
	if _, err := tr.SolveEngine(make(matrix.Vector, 4), nil, core.Engine(99)); err == nil {
		t.Error("expected unknown-engine error")
	}
}

// TestSparseEmptyBandAccounting pins the step-count accounting the package
// doc claims: row bands with no retained blocks cost nothing (adding one
// leaves T unchanged), an all-zero matrix runs zero cycles on both engines,
// and TotalBlocks/T agree with the executed schedule exactly.
func TestSparseEmptyBandAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := 3
	// Base: 3 active bands; extended: same blocks plus one all-zero band.
	base := blockSparse(rng, 3, 4, w, 1)
	ext := matrix.NewDense(4*w, 4*w)
	ext.SetRect(0, 0, base)
	trBase, trExt := NewMatVec(base, w), NewMatVec(ext, w)
	if trBase.TotalBlocks() != trExt.TotalBlocks() {
		t.Fatalf("Q changed when adding an empty band: %d vs %d", trBase.TotalBlocks(), trExt.TotalBlocks())
	}
	x := matrix.RandomVector(rng, 4*w, 4)
	b := matrix.RandomVector(rng, 4*w, 4)
	for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
		rb, err := trBase.SolveEngine(x, b[:3*w], eng)
		if err != nil {
			t.Fatal(err)
		}
		re, err := trExt.SolveEngine(x, b, eng)
		if err != nil {
			t.Fatal(err)
		}
		if rb.T != re.T || rb.T != trBase.PredictedSteps() {
			t.Errorf("%v: empty band not free: base T=%d ext T=%d predicted %d", eng, rb.T, re.T, trBase.PredictedSteps())
		}
		if !reflect.DeepEqual(rb.MACs, re.MACs) {
			t.Errorf("%v: empty band changed per-PE work: %v vs %v", eng, rb.MACs, re.MACs)
		}
		// The executed schedule agrees with the block accounting exactly:
		// total MACs = Q·w², spread uniformly (one MAC per band row per PE).
		wantPE := rb.Q * w
		for k, m := range rb.MACs {
			if m != wantPE {
				t.Errorf("%v: PE %d executed %d MACs, want Q·w=%d", eng, k, m, wantPE)
			}
		}
		// All-zero matrix: zero blocks, zero cycles, no PE activity — the
		// "costs nothing" claim held exactly.
		zero, err := NewMatVec(matrix.NewDense(2*w, 2*w), w).SolveEngine(matrix.NewVector(2*w), b[:2*w], eng)
		if err != nil {
			t.Fatal(err)
		}
		if zero.T != 0 || zero.Q != 0 || zero.Utilization != 0 || zero.MACs != nil {
			t.Errorf("%v: all-zero matrix ran cycles: %+v", eng, zero)
		}
		if !zero.Y.Equal(b[:2*w], 0) {
			t.Errorf("%v: all-zero matrix must return b", eng)
		}
	}
}

// TestSparsePassInto: the arena pass writes exactly what SolveEngine
// returns on both engines, and the warm compiled path allocates nothing.
func TestSparsePassInto(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := 3
	a := blockSparse(rng, 4, 4, w, 0.5)
	x := matrix.RandomVector(rng, 4*w, 5)
	b := matrix.RandomVector(rng, 4*w, 5)
	tr := NewMatVec(a, w)
	ar := core.NewArena()
	dst := make(matrix.Vector, tr.N)
	for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
		want, err := tr.SolveEngine(x, b, eng)
		if err != nil {
			t.Fatal(err)
		}
		ar.Reset()
		steps, err := tr.PassInto(ar, dst, x, b, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if steps != want.T || !dst.Equal(want.Y, 0) {
			t.Fatalf("%v: PassInto diverges: steps=%d want %d", eng, steps, want.T)
		}
	}
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	allocs := testing.AllocsPerRun(50, func() {
		ar.Reset()
		if _, err := tr.PassInto(ar, dst, x, b, core.EngineCompiled); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm compiled PassInto allocates %v objects/op, want 0", allocs)
	}
}

// TestSparsePassIntoDstError is the regression for the dst-length panic:
// a mismatched dst must come back as a returned error on both engines —
// exactly like every other operand-length failure — so a malformed Into
// job arriving through the stream surfaces as a validation error, not a
// *core.PanicError. PassManyInto follows the same contract.
func TestSparsePassIntoDstError(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	w := 2
	a := blockSparse(rng, 3, 3, w, 0.6)
	x := matrix.RandomVector(rng, 3*w, 4)
	tr := NewMatVec(a, w)
	ar := core.NewArena()
	for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
		bad := make(matrix.Vector, tr.N-1)
		if _, err := tr.PassInto(ar, bad, x, nil, eng); err == nil {
			t.Errorf("%v: PassInto accepted a short dst", eng)
		}
		if _, err := tr.PassManyInto(ar, []matrix.Vector{bad}, []matrix.Vector{x}, nil, eng); err == nil {
			t.Errorf("%v: PassManyInto accepted a short dst", eng)
		}
		if _, err := tr.PassManyInto(ar, []matrix.Vector{make(matrix.Vector, tr.N)}, []matrix.Vector{x, x}, nil, eng); err == nil {
			t.Errorf("%v: PassManyInto accepted mismatched batch lengths", eng)
		}
	}
	if _, err := tr.SolveMany(nil, nil, core.EngineCompiled); err == nil {
		t.Error("SolveMany accepted an empty batch")
	}
	if _, err := tr.SolveMany([]matrix.Vector{x, x}, []matrix.Vector{nil}, core.EngineCompiled); err == nil {
		t.Error("SolveMany accepted mismatched x/b batch lengths")
	}
	if _, err := tr.SolveMany([]matrix.Vector{x[:1]}, nil, core.EngineOracle); err == nil {
		t.Error("SolveMany accepted a short x")
	}
}

// TestSparseSolveMany: every Result of a batched solve is DeepEqual to the
// independent SolveEngine call for that vector, on both engines and through
// the arena-memo variant, including nil and per-entry-nil b batches.
func TestSparseSolveMany(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ar := core.NewArena()
	for _, w := range []int{1, 3, 4} {
		for _, density := range []float64{0, 0.4, 1} {
			nb, mb := 1+rng.Intn(4), 1+rng.Intn(4)
			a := blockSparse(rng, nb, mb, w, density)
			tr := NewMatVec(a, w)
			k := 1 + rng.Intn(5)
			xs := make([]matrix.Vector, k)
			bs := make([]matrix.Vector, k)
			for v := range xs {
				xs[v] = matrix.RandomVector(rng, mb*w, 5)
				if v%2 == 0 {
					bs[v] = matrix.RandomVector(rng, nb*w, 5)
				}
			}
			if rng.Intn(3) == 0 {
				bs = nil
			}
			for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled, core.EngineAuto} {
				many, err := tr.SolveMany(xs, bs, eng)
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				onArena, err := tr.SolveManyOn(ar, xs, bs, eng)
				if err != nil {
					t.Fatalf("SolveManyOn %v: %v", eng, err)
				}
				for v := range xs {
					var bv matrix.Vector
					if bs != nil {
						bv = bs[v]
					}
					want, err := tr.SolveEngine(xs[v], bv, eng)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(many[v], want) {
						t.Fatalf("%v w=%d k=%d: batched vector %d diverges:\nbatched %+v\nlooped  %+v", eng, w, k, v, many[v], want)
					}
					if !reflect.DeepEqual(onArena[v], want) {
						t.Fatalf("SolveManyOn %v w=%d: vector %d diverges", eng, w, v)
					}
				}
			}
		}
	}
}

// TestSparsePassManyInto: the batched arena pass writes per vector exactly
// what SolveEngine returns, and the warm compiled path allocates nothing.
func TestSparsePassManyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := 3
	const k = 4
	a := blockSparse(rng, 4, 4, w, 0.5)
	tr := NewMatVec(a, w)
	ar := core.NewArena()
	xs := make([]matrix.Vector, k)
	bs := make([]matrix.Vector, k)
	dsts := make([]matrix.Vector, k)
	for v := range xs {
		xs[v] = matrix.RandomVector(rng, 4*w, 5)
		bs[v] = matrix.RandomVector(rng, 4*w, 5)
		dsts[v] = make(matrix.Vector, tr.N)
	}
	for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
		ar.Reset()
		steps, err := tr.PassManyInto(ar, dsts, xs, bs, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		for v := range xs {
			want, err := tr.SolveEngine(xs[v], bs[v], eng)
			if err != nil {
				t.Fatal(err)
			}
			if steps != want.T || !dsts[v].Equal(want.Y, 0) {
				t.Fatalf("%v: PassManyInto vector %d diverges: steps=%d want %d", eng, v, steps, want.T)
			}
		}
	}
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	allocs := testing.AllocsPerRun(50, func() {
		ar.Reset()
		if _, err := tr.PassManyInto(ar, dsts, xs, bs, core.EngineCompiled); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm compiled PassManyInto allocates %v objects/op, want 0", allocs)
	}
}

// TestSparseOverlapped: the overlapped run computes the same values and
// per-PE MAC counts as the back-to-back schedule in no more steps (strictly
// fewer once two programs actually pair), both engines DeepEqual, and the
// measured utilization matches MACs/(w·T) of the overlapped span.
func TestSparseOverlapped(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, w := range []int{1, 2, 3, 4} {
		for _, density := range []float64{0, 0.3, 0.7, 1} {
			nb, mb := 1+rng.Intn(5), 1+rng.Intn(5)
			a := blockSparse(rng, nb, mb, w, density)
			x := matrix.RandomVector(rng, mb*w, 5)
			b := matrix.RandomVector(rng, nb*w, 5)
			tr := NewMatVec(a, w)
			base, err := tr.SolveEngine(x, b, core.EngineOracle)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tr.SolveOverlapped(x, b)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []core.Engine{core.EngineCompiled, core.EngineAuto} {
				got, err := tr.SolveOverlappedEngine(x, b, eng)
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v overlap diverges from structural (w=%d n̄=%d m̄=%d):\ncompiled %+v\noracle   %+v",
						eng, w, nb, mb, got, want)
				}
			}
			if !want.Y.Equal(base.Y, 0) || !reflect.DeepEqual(want.MACs, base.MACs) || want.Q != base.Q {
				t.Fatalf("w=%d: overlap changed the computation", w)
			}
			if want.T > base.T {
				t.Fatalf("w=%d: overlapped T=%d exceeds back-to-back T=%d", w, want.T, base.T)
			}
			active := 0
			for _, cols := range tr.Retained {
				if len(cols) > 0 {
					active++
				}
			}
			if active >= 2 && w >= 2 && want.T >= base.T {
				t.Fatalf("w=%d active=%d: overlap saved no cycles: T=%d vs %d", w, active, want.T, base.T)
			}
			if active >= 2 && want.Utilization <= base.Utilization {
				t.Fatalf("w=%d: overlap did not lift utilization: %.4f vs %.4f", w, want.Utilization, base.Utilization)
			}
		}
	}
}

// TestSparseKeyAllocFree pins Key()'s documented "allocation-free" claim:
// the digest is a pure loop over the retained pattern and the key is a
// value type, so recomputing it per submission costs no allocations.
func TestSparseKeyAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	rng := rand.New(rand.NewSource(53))
	tr := NewMatVec(blockSparse(rng, 6, 6, 3, 0.5), 3)
	var sink PatternKey
	allocs := testing.AllocsPerRun(100, func() {
		sink = tr.Key()
	})
	if allocs != 0 {
		t.Errorf("Key allocates %v objects/op, documented allocation-free", allocs)
	}
	_ = sink
}
