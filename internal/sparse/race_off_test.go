//go:build !race

package sparse

// raceEnabled reports whether the race detector instruments this build
// (it changes allocation behavior, so the zero-alloc assertions skip).
const raceEnabled = false
