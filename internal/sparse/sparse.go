// Package sparse implements the paper's §4 extension: "In the case of
// computing with matrices of a known degree of sparsity, transformation
// algorithms can be devised ... to exclude the need of zero-valued elements
// sub-matrices. A reduction of computational time would be the consequence."
//
// The scheme keeps, per row band r, only the column blocks s whose A_{r,s}
// is not entirely zero, and builds one DBT chain per row band over the
// retained blocks (the cyclic U/L pairing telescopes over any block subset).
// Because the retained column sets differ between row bands, the x̄ stream
// continuity that lets full DBT fuse all row bands into one band matrix no
// longer holds; each row band therefore runs as its own program, scheduled
// back to back on the same array. Total steps, with n̄₊ the number of row
// bands that retain at least one block:
//
//	T = 2w·Q + (n̄₊−1)(2w−2) + 2w − 3   (exactly 0 when Q = 0)
//
// where Q is the total number of retained blocks (Q = n̄m̄ and n̄₊ = n̄
// recover a cost within (n̄−1)(2w−2) of the dense DBT schedule; row bands
// with no retained blocks contribute no programs and no cycles — they cost
// nothing). Correctness is exact: omitted blocks contribute exactly zero.
//
// Both execution engines serve the workload. The structural path runs the
// per-band programs on the cycle-accurate linear array; the compiled path
// replays a schedule.SparseMatVec plan keyed by (shape, pattern digest) —
// the pattern is data, so the plan cache verifies the full retained-block
// pattern on every hit and recompiles on a digest collision. Results and
// statistics (T, utilization, per-PE MAC counts) are bit-identical between
// the engines; the fuzz and soak differentials enforce it.
//
// Two schedule refinements ride on the same plans (DESIGN.md §13). Batched
// replay (SolveMany/PassManyInto) streams k right-hand sides through one
// compiled pattern, touching each retained coefficient block once per
// batch; every vector's result is bit-identical to its independent solve.
// Overlap (SolveOverlapped[Engine]) interleaves consecutive band programs
// pairwise at offsets (o, o+1) so each occupies the other's idle injection
// parity — the paper's §2 two-program trick — shrinking T toward half
// while leaving every computed value and per-PE MAC count untouched.
package sparse

import (
	"fmt"
	"sync/atomic"

	"repro/internal/blockpart"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// MatVec is a sparsity-aware DBT-by-rows transformation.
type MatVec struct {
	W          int
	NBar, MBar int
	N, M       int
	Grid       *blockpart.Grid
	// Retained[r] lists, in increasing order, the column blocks kept for
	// row band r (empty when the whole band is zero).
	Retained [][]int

	// plan caches the compiled schedule for this transform's pattern after
	// the first compiled solve. Retained is immutable after NewMatVec, so
	// the cached plan can never go stale; repeat solves on the same
	// transform skip the pattern-keyed cache lookup (digest + full pattern
	// verification) entirely. Plans are immutable and shared, so publishing
	// the pointer is safe from any goroutine.
	plan atomic.Pointer[schedule.SparseMatVec]
}

// PatternKey canonically identifies a sparse matvec schedule: the shape
// (w, n̄, m̄) plus the collision-checked digest of the retained-block
// pattern. It is the routing key of the stream scheduler's pattern-affinity
// path and the cache key of the compiled plan; the digest alone is never
// trusted for plan identity (hits verify the full pattern).
type PatternKey struct {
	W, NBar, MBar int
	Digest        uint64
}

// NewMatVec analyzes A's block sparsity for array size w.
func NewMatVec(a *matrix.Dense, w int) *MatVec {
	g := blockpart.Partition(a, w)
	t := &MatVec{
		W: w, NBar: g.BlockRows, MBar: g.BlockCols,
		N: a.Rows(), M: a.Cols(), Grid: g,
		Retained: make([][]int, g.BlockRows),
	}
	for r := 0; r < g.BlockRows; r++ {
		for s := 0; s < g.BlockCols; s++ {
			if !g.BlockIsZero(r, s) {
				t.Retained[r] = append(t.Retained[r], s)
			}
		}
	}
	return t
}

// Key returns the canonical pattern key of this transformation. It is
// recomputed on every call (O(Q), allocation-free), so callers holding a
// MatVec across submissions need not cache it.
func (t *MatVec) Key() PatternKey {
	return PatternKey{W: t.W, NBar: t.NBar, MBar: t.MBar, Digest: schedule.PatternDigest(t.Retained)}
}

// TotalBlocks returns Q, the number of retained blocks.
func (t *MatVec) TotalBlocks() int {
	q := 0
	for _, row := range t.Retained {
		q += len(row)
	}
	return q
}

// Density returns Q/(n̄·m̄).
func (t *MatVec) Density() float64 {
	return float64(t.TotalBlocks()) / float64(t.NBar*t.MBar)
}

// PredictedSteps returns the closed-form schedule length (see package doc):
// Σ 2w·q_r over the non-empty row bands plus the inter-band gaps and the
// pipeline tail. Row bands with no retained blocks are skipped entirely,
// and an all-zero matrix (Q = 0) costs exactly zero steps.
func (t *MatVec) PredictedSteps() int {
	w := t.W
	total := 0
	active := 0
	for _, row := range t.Retained {
		if len(row) == 0 {
			continue
		}
		active++
		total += 2 * w * len(row)
	}
	if active == 0 {
		return 0
	}
	return total + (active-1)*(2*w-2) + 2*w - 3
}

// Result reports a sparse run.
type Result struct {
	Y matrix.Vector
	// T is the measured step count, Q the retained block count.
	T, Q int
	// Utilization is retained ops / (w·T), 0 for an empty schedule.
	Utilization float64
	// MACs[pe] counts the multiply–accumulates each PE executed — uniform
	// (every band row meets every PE once) and nil when Q = 0, on both
	// engines.
	MACs []int
}

// SolveEngine is Solve with explicit engine selection. The sparse schedule
// depends on the retained-block pattern — data, not shape — so the compiled
// engine replays a pattern-keyed plan (schedule.SparseMatVec): compiled once
// per (shape, pattern), verified against the full pattern on every cache
// hit, bit-identical to the structural simulator in results and statistics.
// core.EngineAuto resolves to the compiled path, core.EngineOracle to the
// structural one.
func (t *MatVec) SolveEngine(x, b matrix.Vector, eng core.Engine) (*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.Solve(x, b)
	}
	return t.solveCompiled(nil, x, b, false)
}

// SolveOverlappedEngine is SolveEngine in the paper's §2 overlap mode: the
// active row-band programs run pairwise interleaved, the second program of
// each pair offset one cycle from the first so it occupies the first's idle
// injection parity. Values, Q and per-PE MAC counts are identical to the
// back-to-back schedule (the overlap moves MACs in time, never reorders a
// row's accumulation); T shrinks toward half and Utilization rises toward
// the paper's η → 1 bound. The structural engine actually runs the paired
// programs on the collision-checked array — the parity claim is simulated,
// not assumed — and the compiled engine reports the plan's precomputed
// TOverlap, bit-identical to the measured value.
func (t *MatVec) SolveOverlappedEngine(x, b matrix.Vector, eng core.Engine) (*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.SolveOverlapped(x, b)
	}
	return t.solveCompiled(nil, x, b, true)
}

// SolveEngineOn is SolveEngine with compiled plans resolved through ar's
// pattern-keyed plan memo instead of the global cache. The stream
// scheduler's full-result sparse jobs run it on their pattern-affinity
// shard's arena, so a repeating sparsity pattern replays the shard's
// memoized plan without contending on the process-wide cache. The result
// is identical to SolveEngine's (plans are immutable and shared).
func (t *MatVec) SolveEngineOn(ar *core.Arena, x, b matrix.Vector, eng core.Engine) (*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.Solve(x, b)
	}
	return t.solveCompiled(ar.Plans(), x, b, false)
}

// checkLens validates the operand lengths shared by every solve path.
func (t *MatVec) checkLens(x, b matrix.Vector) error {
	if len(x) != t.M {
		return fmt.Errorf("sparse: len(x)=%d, want %d", len(x), t.M)
	}
	if b != nil && len(b) != t.N {
		return fmt.Errorf("sparse: len(b)=%d, want %d", len(b), t.N)
	}
	return nil
}

// planFor resolves the compiled plan for t's pattern: the transform's own
// cached pointer when already published, else through memo (when non-nil)
// or the global pattern-keyed cache, publishing the result for later calls.
func (t *MatVec) planFor(memo *schedule.PlanMemo) (*schedule.SparseMatVec, error) {
	if p := t.plan.Load(); p != nil {
		return p, nil
	}
	var plan *schedule.SparseMatVec
	var err error
	if memo != nil {
		plan, err = memo.SparseMatVecFor(t.W, t.NBar, t.MBar, t.Retained)
	} else {
		plan, err = schedule.SparseMatVecFor(t.W, t.NBar, t.MBar, t.Retained)
	}
	if err != nil {
		return nil, err
	}
	t.plan.Store(plan)
	return plan, nil
}

// solveCompiled resolves the pattern-keyed plan — through memo when
// non-nil, the global cache otherwise — and replays it over pooled
// scratch. With overlapped set it reports the overlapped schedule's step
// count and utilization; the replayed values are identical either way (the
// overlap changes when MACs happen, never what they compute).
func (t *MatVec) solveCompiled(memo *schedule.PlanMemo, x, b matrix.Vector, overlapped bool) (*Result, error) {
	if err := t.checkLens(x, b); err != nil {
		return nil, err
	}
	plan, err := t.planFor(memo)
	if err != nil {
		return nil, err
	}
	w := t.W
	xp := schedule.GetFloatsUninit(t.MBar * w)
	copy(*xp, x)
	clear((*xp)[len(x):])
	bp := schedule.GetFloatsUninit(t.NBar * w)
	copy(*bp, b)
	clear((*bp)[len(b):])
	ybar := schedule.GetFloatsUninit(plan.MaxBandRows)
	y := matrix.NewVector(t.NBar * w)
	plan.Exec(t.Grid.Padded().Raw(), *xp, *bp, y, *ybar)
	schedule.PutFloats(xp)
	schedule.PutFloats(bp)
	schedule.PutFloats(ybar)
	res := &Result{Y: y[:t.N], T: plan.T, Q: plan.Q, Utilization: plan.Utilization()}
	if overlapped {
		res.T, res.Utilization = plan.TOverlap, plan.OverlapUtilization()
	}
	if plan.Q > 0 {
		res.MACs = plan.PEMACs(make([]int, w))
	}
	return res, nil
}

// batchB returns the v-th right-hand side of a batch, where a nil bs means
// every vector solves with b = 0.
func batchB(bs []matrix.Vector, v int) matrix.Vector {
	if bs == nil {
		return nil
	}
	return bs[v]
}

// checkBatch validates a batch of operands: at least one vector, matching
// batch lengths, and per-vector operand lengths.
func (t *MatVec) checkBatch(xs, bs []matrix.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("sparse: empty batch")
	}
	if bs != nil && len(bs) != len(xs) {
		return fmt.Errorf("sparse: batch has %d x vectors but %d b vectors", len(xs), len(bs))
	}
	for v := range xs {
		if err := t.checkLens(xs[v], batchB(bs, v)); err != nil {
			return fmt.Errorf("sparse: batch vector %d: %w", v, err)
		}
	}
	return nil
}

// SolveMany computes y_v = A·x_v + b_v for every right-hand side of a batch
// in one pass over the pattern: the compiled engine packs all k vectors
// into strided buffers and replays the plan once via ExecMany, touching
// each retained coefficient block once per batch instead of once per
// vector. bs may be nil (every b is zero) or per-entry nil; otherwise
// len(bs) must equal len(xs). Each Result is exactly what SolveEngine
// would have returned for that vector — values, T, utilization and per-PE
// MAC counts are bit-identical to k independent solves on either engine.
func (t *MatVec) SolveMany(xs, bs []matrix.Vector, eng core.Engine) ([]*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.solveManySerial(xs, bs)
	}
	return t.solveManyCompiled(nil, xs, bs)
}

// SolveManyOn is SolveMany with compiled plans resolved through ar's
// pattern-keyed plan memo, the batched counterpart of SolveEngineOn. The
// stream scheduler's SubmitSparseBatch tickets run it on their
// pattern-affinity shard's arena.
func (t *MatVec) SolveManyOn(ar *core.Arena, xs, bs []matrix.Vector, eng core.Engine) ([]*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.solveManySerial(xs, bs)
	}
	return t.solveManyCompiled(ar.Plans(), xs, bs)
}

// solveManySerial is the oracle batch path: k independent structural
// solves, the DeepEqual baseline of the batched differentials.
func (t *MatVec) solveManySerial(xs, bs []matrix.Vector) ([]*Result, error) {
	if err := t.checkBatch(xs, bs); err != nil {
		return nil, err
	}
	out := make([]*Result, len(xs))
	for v := range xs {
		res, err := t.Solve(xs[v], batchB(bs, v))
		if err != nil {
			return nil, err
		}
		out[v] = res
	}
	return out, nil
}

// solveManyCompiled packs the batch into strided pooled buffers and replays
// the plan once over all k vectors.
func (t *MatVec) solveManyCompiled(memo *schedule.PlanMemo, xs, bs []matrix.Vector) ([]*Result, error) {
	if err := t.checkBatch(xs, bs); err != nil {
		return nil, err
	}
	plan, err := t.planFor(memo)
	if err != nil {
		return nil, err
	}
	w, k := t.W, len(xs)
	xw, yw := t.MBar*w, t.NBar*w
	xp := schedule.GetFloatsUninit(k * xw)
	bp := schedule.GetFloatsUninit(k * yw)
	for v := range xs {
		copy((*xp)[v*xw:], xs[v])
		clear((*xp)[v*xw+len(xs[v]) : (v+1)*xw])
		bv := batchB(bs, v)
		copy((*bp)[v*yw:], bv)
		clear((*bp)[v*yw+len(bv) : (v+1)*yw])
	}
	y := schedule.GetFloatsUninit(k * yw)
	ybar := schedule.GetFloatsUninit(k * plan.MaxBandRows)
	plan.ExecMany(t.Grid.Padded().Raw(), *xp, *bp, *y, *ybar, k)
	out := make([]*Result, k)
	for v := range out {
		yv := matrix.NewVector(yw)
		copy(yv, (*y)[v*yw:(v+1)*yw])
		res := &Result{Y: yv[:t.N], T: plan.T, Q: plan.Q, Utilization: plan.Utilization()}
		if plan.Q > 0 {
			res.MACs = plan.PEMACs(make([]int, w))
		}
		out[v] = res
	}
	schedule.PutFloats(xp)
	schedule.PutFloats(bp)
	schedule.PutFloats(y)
	schedule.PutFloats(ybar)
	return out, nil
}

// PassInto computes dst = A·x + b (b may be nil) as one sparse pass on the
// selected engine, drawing every buffer and the pattern-keyed plan memo
// from ar, and returns the pass's measured step count T. dst must have
// length A.Rows() and must not alias x or b; like every other operand
// validation failure it reports a mismatched dst as a returned error, so a
// malformed Into job arriving through the stream surfaces as a validation
// error rather than a panic. On the compiled engine the warm steady state —
// plan memoized on the arena, buffers reused — allocates nothing; the
// oracle engine runs the structural simulator (allocating freely) and
// copies the result, so both engines write bit-identical values. It is the
// sparse counterpart of core.Arena's MatVecPass, and what the stream
// scheduler's sparse Into jobs run on their shard's arena.
func (t *MatVec) PassInto(ar *core.Arena, dst, x, b matrix.Vector, eng core.Engine) (int, error) {
	if len(dst) != t.N {
		return 0, fmt.Errorf("sparse: dst len %d, want %d", len(dst), t.N)
	}
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	if !useCompiled {
		res, err := t.Solve(x, b)
		if err != nil {
			return 0, err
		}
		copy(dst, res.Y)
		return res.T, nil
	}
	if err := t.checkLens(x, b); err != nil {
		return 0, err
	}
	plan, err := t.planFor(ar.Plans())
	if err != nil {
		return 0, err
	}
	w := t.W
	xp := ar.Floats(t.MBar * w)
	copy(xp, x)
	clear(xp[len(x):])
	bp := ar.Floats(t.NBar * w)
	copy(bp, b)
	clear(bp[len(b):])
	y := ar.Floats(t.NBar * w)
	ybar := ar.Floats(plan.MaxBandRows)
	plan.Exec(t.Grid.Padded().Raw(), xp, bp, y, ybar)
	copy(dst, y[:t.N])
	return plan.T, nil
}

// PassManyInto is the batched PassInto: dsts[v] = A·xs[v] + bs[v] for every
// vector of the batch in one ExecMany replay, drawing every buffer and the
// plan memo from ar, and returns the per-pass step count T (every vector
// replays the same schedule). Operand rules follow SolveMany (bs may be nil
// or hold nil entries); every dst must have length A.Rows() and must not
// alias any x or b — mismatches come back as errors, never panics. On the
// compiled engine the warm steady state allocates nothing; the oracle
// engine loops the structural simulator, bit-identical per vector.
func (t *MatVec) PassManyInto(ar *core.Arena, dsts, xs, bs []matrix.Vector, eng core.Engine) (int, error) {
	if len(dsts) != len(xs) {
		return 0, fmt.Errorf("sparse: batch has %d dst vectors but %d x vectors", len(dsts), len(xs))
	}
	for v := range dsts {
		if len(dsts[v]) != t.N {
			return 0, fmt.Errorf("sparse: batch dst %d len %d, want %d", v, len(dsts[v]), t.N)
		}
	}
	if err := t.checkBatch(xs, bs); err != nil {
		return 0, err
	}
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	if !useCompiled {
		steps := 0
		for v := range xs {
			res, err := t.Solve(xs[v], batchB(bs, v))
			if err != nil {
				return 0, err
			}
			copy(dsts[v], res.Y)
			steps = res.T
		}
		return steps, nil
	}
	plan, err := t.planFor(ar.Plans())
	if err != nil {
		return 0, err
	}
	w, k := t.W, len(xs)
	xw, yw := t.MBar*w, t.NBar*w
	xp := ar.Floats(k * xw)
	bp := ar.Floats(k * yw)
	for v := range xs {
		copy(xp[v*xw:], xs[v])
		clear(xp[v*xw+len(xs[v]) : (v+1)*xw])
		bv := batchB(bs, v)
		copy(bp[v*yw:], bv)
		clear(bp[v*yw+len(bv) : (v+1)*yw])
	}
	y := ar.Floats(k * yw)
	ybar := ar.Floats(k * plan.MaxBandRows)
	plan.ExecMany(t.Grid.Padded().Raw(), xp, bp, y, ybar, k)
	for v := range dsts {
		copy(dsts[v], y[v*yw:v*yw+t.N])
	}
	return plan.T, nil
}

// Solve computes y = A·x + b on a w-PE linear array, skipping zero blocks,
// on the cycle-accurate structural simulator (the verification oracle of
// the compiled path — see SolveEngine).
func (t *MatVec) Solve(x, b matrix.Vector) (*Result, error) {
	return t.solveStructural(x, b, false)
}

// SolveOverlapped is the structural overlap run: consecutive active
// row-band programs are scheduled in pairs at offsets (o, o+1) — opposite
// injection parities, so the pair shares the array collision-free (the
// simulator panics on any structural conflict, making this a checked
// claim) — and each pair advances the offset by the larger of its two
// spans. See SolveOverlappedEngine for the contract with the compiled
// counterpart.
func (t *MatVec) SolveOverlapped(x, b matrix.Vector) (*Result, error) {
	return t.solveStructural(x, b, true)
}

func (t *MatVec) solveStructural(x, b matrix.Vector, overlapped bool) (*Result, error) {
	if err := t.checkLens(x, b); err != nil {
		return nil, err
	}
	w := t.W
	xp := x.Pad(t.MBar * w)
	var bp matrix.Vector
	if b == nil {
		bp = matrix.NewVector(t.NBar * w)
	} else {
		bp = b.Pad(t.NBar * w)
	}

	arr := linear.New(w)
	var progs []*linear.Program
	var progRow []int
	// Back-to-back: each program advances the offset by its own span.
	// Overlapped: the first program of a pair sits at offset o, the second
	// at o+1 (spans are even, so pair starts stay even and the two programs
	// keep opposite injection parities); the pair advances by max(spans).
	offset, pairSpan := 0, 0
	second := false
	for r := 0; r < t.NBar; r++ {
		cols := t.Retained[r]
		if len(cols) == 0 {
			continue
		}
		span := 2*w*len(cols) + 2*w - 2
		switch {
		case !overlapped:
			progs = append(progs, t.rowBandProgram(r, cols, xp, bp, offset))
			offset += span
		case !second:
			progs = append(progs, t.rowBandProgram(r, cols, xp, bp, offset))
			pairSpan = span
			second = true
		default:
			progs = append(progs, t.rowBandProgram(r, cols, xp, bp, offset+1))
			if span > pairSpan {
				pairSpan = span
			}
			offset += pairSpan
			second = false
		}
		progRow = append(progRow, r)
	}

	y := matrix.NewVector(t.NBar * w)
	res := &Result{Q: t.TotalBlocks()}
	if len(progs) > 0 {
		run := arr.Run(progs...)
		res.T = run.T
		res.Utilization = run.Activity.Utilization()
		res.MACs = run.Activity.MACs
		for pi, r := range progRow {
			rows := progs[pi].Rows
			copy(y[r*w:(r+1)*w], run.Y[pi][rows-w:]) // last block holds y_r
		}
	}
	// Row bands with no retained blocks: y_r = b_r, no array work.
	for r := 0; r < t.NBar; r++ {
		if len(t.Retained[r]) == 0 {
			copy(y[r*w:(r+1)*w], bp[r*w:(r+1)*w])
		}
	}
	res.Y = y[:t.N]
	return res, nil
}

// rowBandProgram builds the DBT chain of one row band over its retained
// column blocks: Ū_q = U_{r,cols[q]}, L̄_q = L_{r,cols[(q+1) mod len]}, with
// the x̄ stream concatenating the corresponding x blocks (plus the w−1
// element tail of the wrap block).
func (t *MatVec) rowBandProgram(r int, cols []int, xp, bp matrix.Vector, offset int) *linear.Program {
	w := t.W
	q := len(cols)
	xbar := make(matrix.Vector, 0, q*w+w-1)
	for _, s := range cols {
		xbar = append(xbar, xp.Block(s, w)...)
	}
	xbar = append(xbar, xp.Block(cols[0], w)[:w-1]...)
	return &linear.Program{
		Rows:   q * w,
		X:      xbar,
		Offset: offset,
		BandAt: func(i, j int) float64 {
			k := i / w
			a := i % w
			bb := j - k*w
			if bb < w {
				return t.Grid.UpperAt(r, cols[k], a, bb)
			}
			return t.Grid.LowerAt(r, cols[(k+1)%q], a, bb-w)
		},
		YInit: func(i int) linear.YInit {
			if i < w {
				return linear.YInit{Value: bp[r*w+i]}
			}
			return linear.YInit{Feedback: true, SrcRow: i - w}
		},
	}
}
