// Package sparse implements the paper's §4 extension: "In the case of
// computing with matrices of a known degree of sparsity, transformation
// algorithms can be devised ... to exclude the need of zero-valued elements
// sub-matrices. A reduction of computational time would be the consequence."
//
// The scheme keeps, per row band r, only the column blocks s whose A_{r,s}
// is not entirely zero, and builds one DBT chain per row band over the
// retained blocks (the cyclic U/L pairing telescopes over any block subset).
// Because the retained column sets differ between row bands, the x̄ stream
// continuity that lets full DBT fuse all row bands into one band matrix no
// longer holds; each row band therefore runs as its own program, scheduled
// back to back on the same array. Total steps, with n̄₊ the number of row
// bands that retain at least one block:
//
//	T = 2w·Q + (n̄₊−1)(2w−2) + 2w − 3   (exactly 0 when Q = 0)
//
// where Q is the total number of retained blocks (Q = n̄m̄ and n̄₊ = n̄
// recover a cost within (n̄−1)(2w−2) of the dense DBT schedule; row bands
// with no retained blocks contribute no programs and no cycles — they cost
// nothing). Correctness is exact: omitted blocks contribute exactly zero.
//
// Both execution engines serve the workload. The structural path runs the
// per-band programs on the cycle-accurate linear array; the compiled path
// replays a schedule.SparseMatVec plan keyed by (shape, pattern digest) —
// the pattern is data, so the plan cache verifies the full retained-block
// pattern on every hit and recompiles on a digest collision. Results and
// statistics (T, utilization, per-PE MAC counts) are bit-identical between
// the engines; the fuzz and soak differentials enforce it.
package sparse

import (
	"fmt"
	"sync/atomic"

	"repro/internal/blockpart"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// MatVec is a sparsity-aware DBT-by-rows transformation.
type MatVec struct {
	W          int
	NBar, MBar int
	N, M       int
	Grid       *blockpart.Grid
	// Retained[r] lists, in increasing order, the column blocks kept for
	// row band r (empty when the whole band is zero).
	Retained [][]int

	// plan caches the compiled schedule for this transform's pattern after
	// the first compiled solve. Retained is immutable after NewMatVec, so
	// the cached plan can never go stale; repeat solves on the same
	// transform skip the pattern-keyed cache lookup (digest + full pattern
	// verification) entirely. Plans are immutable and shared, so publishing
	// the pointer is safe from any goroutine.
	plan atomic.Pointer[schedule.SparseMatVec]
}

// PatternKey canonically identifies a sparse matvec schedule: the shape
// (w, n̄, m̄) plus the collision-checked digest of the retained-block
// pattern. It is the routing key of the stream scheduler's pattern-affinity
// path and the cache key of the compiled plan; the digest alone is never
// trusted for plan identity (hits verify the full pattern).
type PatternKey struct {
	W, NBar, MBar int
	Digest        uint64
}

// NewMatVec analyzes A's block sparsity for array size w.
func NewMatVec(a *matrix.Dense, w int) *MatVec {
	g := blockpart.Partition(a, w)
	t := &MatVec{
		W: w, NBar: g.BlockRows, MBar: g.BlockCols,
		N: a.Rows(), M: a.Cols(), Grid: g,
		Retained: make([][]int, g.BlockRows),
	}
	for r := 0; r < g.BlockRows; r++ {
		for s := 0; s < g.BlockCols; s++ {
			if !g.BlockIsZero(r, s) {
				t.Retained[r] = append(t.Retained[r], s)
			}
		}
	}
	return t
}

// Key returns the canonical pattern key of this transformation. It is
// recomputed on every call (O(Q), allocation-free), so callers holding a
// MatVec across submissions need not cache it.
func (t *MatVec) Key() PatternKey {
	return PatternKey{W: t.W, NBar: t.NBar, MBar: t.MBar, Digest: schedule.PatternDigest(t.Retained)}
}

// TotalBlocks returns Q, the number of retained blocks.
func (t *MatVec) TotalBlocks() int {
	q := 0
	for _, row := range t.Retained {
		q += len(row)
	}
	return q
}

// Density returns Q/(n̄·m̄).
func (t *MatVec) Density() float64 {
	return float64(t.TotalBlocks()) / float64(t.NBar*t.MBar)
}

// PredictedSteps returns the closed-form schedule length (see package doc):
// Σ 2w·q_r over the non-empty row bands plus the inter-band gaps and the
// pipeline tail. Row bands with no retained blocks are skipped entirely,
// and an all-zero matrix (Q = 0) costs exactly zero steps.
func (t *MatVec) PredictedSteps() int {
	w := t.W
	total := 0
	active := 0
	for _, row := range t.Retained {
		if len(row) == 0 {
			continue
		}
		active++
		total += 2 * w * len(row)
	}
	if active == 0 {
		return 0
	}
	return total + (active-1)*(2*w-2) + 2*w - 3
}

// Result reports a sparse run.
type Result struct {
	Y matrix.Vector
	// T is the measured step count, Q the retained block count.
	T, Q int
	// Utilization is retained ops / (w·T), 0 for an empty schedule.
	Utilization float64
	// MACs[pe] counts the multiply–accumulates each PE executed — uniform
	// (every band row meets every PE once) and nil when Q = 0, on both
	// engines.
	MACs []int
}

// SolveEngine is Solve with explicit engine selection. The sparse schedule
// depends on the retained-block pattern — data, not shape — so the compiled
// engine replays a pattern-keyed plan (schedule.SparseMatVec): compiled once
// per (shape, pattern), verified against the full pattern on every cache
// hit, bit-identical to the structural simulator in results and statistics.
// core.EngineAuto resolves to the compiled path, core.EngineOracle to the
// structural one.
func (t *MatVec) SolveEngine(x, b matrix.Vector, eng core.Engine) (*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.Solve(x, b)
	}
	return t.solveCompiled(nil, x, b)
}

// SolveEngineOn is SolveEngine with compiled plans resolved through ar's
// pattern-keyed plan memo instead of the global cache. The stream
// scheduler's full-result sparse jobs run it on their pattern-affinity
// shard's arena, so a repeating sparsity pattern replays the shard's
// memoized plan without contending on the process-wide cache. The result
// is identical to SolveEngine's (plans are immutable and shared).
func (t *MatVec) SolveEngineOn(ar *core.Arena, x, b matrix.Vector, eng core.Engine) (*Result, error) {
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return t.Solve(x, b)
	}
	return t.solveCompiled(ar.Plans(), x, b)
}

// checkLens validates the operand lengths shared by every solve path.
func (t *MatVec) checkLens(x, b matrix.Vector) error {
	if len(x) != t.M {
		return fmt.Errorf("sparse: len(x)=%d, want %d", len(x), t.M)
	}
	if b != nil && len(b) != t.N {
		return fmt.Errorf("sparse: len(b)=%d, want %d", len(b), t.N)
	}
	return nil
}

// planFor resolves the compiled plan for t's pattern: the transform's own
// cached pointer when already published, else through memo (when non-nil)
// or the global pattern-keyed cache, publishing the result for later calls.
func (t *MatVec) planFor(memo *schedule.PlanMemo) (*schedule.SparseMatVec, error) {
	if p := t.plan.Load(); p != nil {
		return p, nil
	}
	var plan *schedule.SparseMatVec
	var err error
	if memo != nil {
		plan, err = memo.SparseMatVecFor(t.W, t.NBar, t.MBar, t.Retained)
	} else {
		plan, err = schedule.SparseMatVecFor(t.W, t.NBar, t.MBar, t.Retained)
	}
	if err != nil {
		return nil, err
	}
	t.plan.Store(plan)
	return plan, nil
}

// solveCompiled resolves the pattern-keyed plan — through memo when
// non-nil, the global cache otherwise — and replays it over pooled
// scratch.
func (t *MatVec) solveCompiled(memo *schedule.PlanMemo, x, b matrix.Vector) (*Result, error) {
	if err := t.checkLens(x, b); err != nil {
		return nil, err
	}
	plan, err := t.planFor(memo)
	if err != nil {
		return nil, err
	}
	w := t.W
	xp := schedule.GetFloatsUninit(t.MBar * w)
	copy(*xp, x)
	clear((*xp)[len(x):])
	bp := schedule.GetFloatsUninit(t.NBar * w)
	copy(*bp, b)
	clear((*bp)[len(b):])
	ybar := schedule.GetFloatsUninit(plan.MaxBandRows)
	y := matrix.NewVector(t.NBar * w)
	plan.Exec(t.Grid.Padded().Raw(), *xp, *bp, y, *ybar)
	schedule.PutFloats(xp)
	schedule.PutFloats(bp)
	schedule.PutFloats(ybar)
	res := &Result{Y: y[:t.N], T: plan.T, Q: plan.Q, Utilization: plan.Utilization()}
	if plan.Q > 0 {
		res.MACs = plan.PEMACs(make([]int, w))
	}
	return res, nil
}

// PassInto computes dst = A·x + b (b may be nil) as one sparse pass on the
// selected engine, drawing every buffer and the pattern-keyed plan memo
// from ar, and returns the pass's measured step count T. dst must have
// length A.Rows() and must not alias x or b. On the compiled engine the
// warm steady state — plan memoized on the arena, buffers reused —
// allocates nothing; the oracle engine runs the structural simulator
// (allocating freely) and copies the result, so both engines write
// bit-identical values. It is the sparse counterpart of core.Arena's
// MatVecPass, and what the stream scheduler's sparse Into jobs run on
// their shard's arena.
func (t *MatVec) PassInto(ar *core.Arena, dst, x, b matrix.Vector, eng core.Engine) (int, error) {
	if len(dst) != t.N {
		panic(fmt.Sprintf("sparse: PassInto dst len %d, want %d", len(dst), t.N))
	}
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	if !useCompiled {
		res, err := t.Solve(x, b)
		if err != nil {
			return 0, err
		}
		copy(dst, res.Y)
		return res.T, nil
	}
	if err := t.checkLens(x, b); err != nil {
		return 0, err
	}
	plan, err := t.planFor(ar.Plans())
	if err != nil {
		return 0, err
	}
	w := t.W
	xp := ar.Floats(t.MBar * w)
	copy(xp, x)
	clear(xp[len(x):])
	bp := ar.Floats(t.NBar * w)
	copy(bp, b)
	clear(bp[len(b):])
	y := ar.Floats(t.NBar * w)
	ybar := ar.Floats(plan.MaxBandRows)
	plan.Exec(t.Grid.Padded().Raw(), xp, bp, y, ybar)
	copy(dst, y[:t.N])
	return plan.T, nil
}

// Solve computes y = A·x + b on a w-PE linear array, skipping zero blocks,
// on the cycle-accurate structural simulator (the verification oracle of
// the compiled path — see SolveEngine).
func (t *MatVec) Solve(x, b matrix.Vector) (*Result, error) {
	if err := t.checkLens(x, b); err != nil {
		return nil, err
	}
	w := t.W
	xp := x.Pad(t.MBar * w)
	var bp matrix.Vector
	if b == nil {
		bp = matrix.NewVector(t.NBar * w)
	} else {
		bp = b.Pad(t.NBar * w)
	}

	arr := linear.New(w)
	var progs []*linear.Program
	var progRow []int
	offset := 0
	for r := 0; r < t.NBar; r++ {
		cols := t.Retained[r]
		if len(cols) == 0 {
			continue
		}
		progs = append(progs, t.rowBandProgram(r, cols, xp, bp, offset))
		progRow = append(progRow, r)
		offset += 2*w*len(cols) + 2*w - 2
	}

	y := matrix.NewVector(t.NBar * w)
	res := &Result{Q: t.TotalBlocks()}
	if len(progs) > 0 {
		run := arr.Run(progs...)
		res.T = run.T
		res.Utilization = run.Activity.Utilization()
		res.MACs = run.Activity.MACs
		for pi, r := range progRow {
			rows := progs[pi].Rows
			copy(y[r*w:(r+1)*w], run.Y[pi][rows-w:]) // last block holds y_r
		}
	}
	// Row bands with no retained blocks: y_r = b_r, no array work.
	for r := 0; r < t.NBar; r++ {
		if len(t.Retained[r]) == 0 {
			copy(y[r*w:(r+1)*w], bp[r*w:(r+1)*w])
		}
	}
	res.Y = y[:t.N]
	return res, nil
}

// rowBandProgram builds the DBT chain of one row band over its retained
// column blocks: Ū_q = U_{r,cols[q]}, L̄_q = L_{r,cols[(q+1) mod len]}, with
// the x̄ stream concatenating the corresponding x blocks (plus the w−1
// element tail of the wrap block).
func (t *MatVec) rowBandProgram(r int, cols []int, xp, bp matrix.Vector, offset int) *linear.Program {
	w := t.W
	q := len(cols)
	xbar := make(matrix.Vector, 0, q*w+w-1)
	for _, s := range cols {
		xbar = append(xbar, xp.Block(s, w)...)
	}
	xbar = append(xbar, xp.Block(cols[0], w)[:w-1]...)
	return &linear.Program{
		Rows:   q * w,
		X:      xbar,
		Offset: offset,
		BandAt: func(i, j int) float64 {
			k := i / w
			a := i % w
			bb := j - k*w
			if bb < w {
				return t.Grid.UpperAt(r, cols[k], a, bb)
			}
			return t.Grid.LowerAt(r, cols[(k+1)%q], a, bb-w)
		},
		YInit: func(i int) linear.YInit {
			if i < w {
				return linear.YInit{Value: bp[r*w+i]}
			}
			return linear.YInit{Feedback: true, SrcRow: i - w}
		},
	}
}
