// Package sparse implements the paper's §4 extension: "In the case of
// computing with matrices of a known degree of sparsity, transformation
// algorithms can be devised ... to exclude the need of zero-valued elements
// sub-matrices. A reduction of computational time would be the consequence."
//
// The scheme keeps, per row band r, only the column blocks s whose A_{r,s}
// is not entirely zero, and builds one DBT chain per row band over the
// retained blocks (the cyclic U/L pairing telescopes over any block subset).
// Because the retained column sets differ between row bands, the x̄ stream
// continuity that lets full DBT fuse all row bands into one band matrix no
// longer holds; each row band therefore runs as its own program, scheduled
// back to back on the same array. Total steps:
//
//	T = 2w·Q + (n̄−1)(2w−2) + 2w − 3
//
// where Q is the total number of retained blocks (Q = n̄m̄ recovers a cost
// within (n̄−1)(2w−2) of the dense DBT schedule; empty row bands cost
// nothing). Correctness is exact: omitted blocks contribute exactly zero.
package sparse

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// MatVec is a sparsity-aware DBT-by-rows transformation.
type MatVec struct {
	W          int
	NBar, MBar int
	N, M       int
	Grid       *blockpart.Grid
	// Retained[r] lists, in increasing order, the column blocks kept for
	// row band r (empty when the whole band is zero).
	Retained [][]int
}

// NewMatVec analyzes A's block sparsity for array size w.
func NewMatVec(a *matrix.Dense, w int) *MatVec {
	g := blockpart.Partition(a, w)
	t := &MatVec{
		W: w, NBar: g.BlockRows, MBar: g.BlockCols,
		N: a.Rows(), M: a.Cols(), Grid: g,
		Retained: make([][]int, g.BlockRows),
	}
	for r := 0; r < g.BlockRows; r++ {
		for s := 0; s < g.BlockCols; s++ {
			if !g.BlockIsZero(r, s) {
				t.Retained[r] = append(t.Retained[r], s)
			}
		}
	}
	return t
}

// TotalBlocks returns Q, the number of retained blocks.
func (t *MatVec) TotalBlocks() int {
	q := 0
	for _, row := range t.Retained {
		q += len(row)
	}
	return q
}

// Density returns Q/(n̄·m̄).
func (t *MatVec) Density() float64 {
	return float64(t.TotalBlocks()) / float64(t.NBar*t.MBar)
}

// PredictedSteps returns the closed-form schedule length (see package doc);
// row bands with no retained blocks are skipped entirely.
func (t *MatVec) PredictedSteps() int {
	w := t.W
	total := 0
	active := 0
	for _, row := range t.Retained {
		if len(row) == 0 {
			continue
		}
		active++
		total += 2 * w * len(row)
	}
	if active == 0 {
		return 0
	}
	return total + (active-1)*(2*w-2) + 2*w - 3
}

// Result reports a sparse run.
type Result struct {
	Y matrix.Vector
	// T is the measured step count, Q the retained block count.
	T, Q int
	// Utilization is retained ops / (w·T).
	Utilization float64
}

// SolveEngine is Solve with explicit engine selection. The sparse schedule
// depends on the retained-block pattern — data, not shape — so no
// shape-keyed compiled plan can exist: core.EngineCompiled returns the
// engine layer's unsupported-workload error (match schedule.ErrUnsupported
// with errors.Is) instead of silently falling back; core.EngineAuto and
// core.EngineOracle run the structural simulator.
func (t *MatVec) SolveEngine(x, b matrix.Vector, eng core.Engine) (*Result, error) {
	if _, err := eng.Resolve(false); err != nil {
		return nil, err
	}
	if eng == core.EngineCompiled {
		return nil, schedule.Unsupported(schedule.WorkloadSparseMatVec,
			"the schedule depends on the block-sparsity pattern (data, not shape), so no shape-keyed plan exists")
	}
	return t.Solve(x, b)
}

// Solve computes y = A·x + b on a w-PE linear array, skipping zero blocks.
func (t *MatVec) Solve(x, b matrix.Vector) (*Result, error) {
	if len(x) != t.M {
		return nil, fmt.Errorf("sparse: len(x)=%d, want %d", len(x), t.M)
	}
	if b != nil && len(b) != t.N {
		return nil, fmt.Errorf("sparse: len(b)=%d, want %d", len(b), t.N)
	}
	w := t.W
	xp := x.Pad(t.MBar * w)
	var bp matrix.Vector
	if b == nil {
		bp = matrix.NewVector(t.NBar * w)
	} else {
		bp = b.Pad(t.NBar * w)
	}

	arr := linear.New(w)
	var progs []*linear.Program
	var progRow []int
	offset := 0
	for r := 0; r < t.NBar; r++ {
		cols := t.Retained[r]
		if len(cols) == 0 {
			continue
		}
		progs = append(progs, t.rowBandProgram(r, cols, xp, bp, offset))
		progRow = append(progRow, r)
		offset += 2*w*len(cols) + 2*w - 2
	}

	y := matrix.NewVector(t.NBar * w)
	res := &Result{Q: t.TotalBlocks()}
	if len(progs) > 0 {
		run := arr.Run(progs...)
		res.T = run.T
		res.Utilization = run.Activity.Utilization()
		for pi, r := range progRow {
			rows := progs[pi].Rows
			copy(y[r*w:(r+1)*w], run.Y[pi][rows-w:]) // last block holds y_r
		}
	}
	// Row bands with no retained blocks: y_r = b_r, no array work.
	for r := 0; r < t.NBar; r++ {
		if len(t.Retained[r]) == 0 {
			copy(y[r*w:(r+1)*w], bp[r*w:(r+1)*w])
		}
	}
	res.Y = y[:t.N]
	return res, nil
}

// rowBandProgram builds the DBT chain of one row band over its retained
// column blocks: Ū_q = U_{r,cols[q]}, L̄_q = L_{r,cols[(q+1) mod len]}, with
// the x̄ stream concatenating the corresponding x blocks (plus the w−1
// element tail of the wrap block).
func (t *MatVec) rowBandProgram(r int, cols []int, xp, bp matrix.Vector, offset int) *linear.Program {
	w := t.W
	q := len(cols)
	xbar := make(matrix.Vector, 0, q*w+w-1)
	for _, s := range cols {
		xbar = append(xbar, xp.Block(s, w)...)
	}
	xbar = append(xbar, xp.Block(cols[0], w)[:w-1]...)
	return &linear.Program{
		Rows:   q * w,
		X:      xbar,
		Offset: offset,
		BandAt: func(i, j int) float64 {
			k := i / w
			a := i % w
			bb := j - k*w
			if bb < w {
				return t.Grid.UpperAt(r, cols[k], a, bb)
			}
			return t.Grid.LowerAt(r, cols[(k+1)%q], a, bb-w)
		},
		YInit: func(i int) linear.YInit {
			if i < w {
				return linear.YInit{Value: bp[r*w+i]}
			}
			return linear.YInit{Feedback: true, SrcRow: i - w}
		},
	}
}
