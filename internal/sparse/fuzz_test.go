package sparse

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// FuzzSparseMatVec is the fuzz armor of the pattern-keyed compiled sparse
// path: random shapes and retained-block patterns — including empty row
// bands and the fully dense Q = n̄m̄ grid — must replay bit-identically to
// the structural oracle, results AND statistics, match the host reference
// arithmetic exactly (integer-valued data, so every accumulation order is
// exact), and hit the closed-form step count. The committed corpus under
// testdata/fuzz seeds the shapes the unit tests care about; CI runs a short
// -fuzz smoke on top of the seed replay.
func FuzzSparseMatVec(f *testing.F) {
	f.Add(3, 4, 3, []byte{0xa5, 0x0f}, int64(1))       // mixed pattern
	f.Add(1, 1, 1, []byte{0x00}, int64(2))             // all-zero, Q=0
	f.Add(4, 2, 2, []byte{0xff}, int64(3))             // fully dense, Q=n̄m̄
	f.Add(2, 5, 3, []byte{0x1c, 0xe0}, int64(4))       // empty bands between active ones
	f.Add(1, 4, 4, []byte{0x81, 0x42, 0x24}, int64(5)) // w=1 degenerate array
	f.Fuzz(func(t *testing.T, w, nb, mb int, pattern []byte, seed int64) {
		w = 1 + abs(w)%4
		nb = 1 + abs(nb)%5
		mb = 1 + abs(mb)%5
		rng := rand.New(rand.NewSource(seed))
		bit := func(i int) bool {
			if len(pattern) == 0 {
				return false
			}
			return pattern[(i/8)%len(pattern)]>>(i%8)&1 == 1
		}
		a := matrix.NewDense(nb*w, mb*w)
		for r := 0; r < nb; r++ {
			for s := 0; s < mb; s++ {
				if !bit(r*mb + s) {
					continue
				}
				for i := 0; i < w; i++ {
					for j := 0; j < w; j++ {
						a.Set(r*w+i, s*w+j, float64(rng.Intn(9)-4))
					}
				}
			}
		}
		x := matrix.RandomVector(rng, mb*w, 4)
		var b matrix.Vector
		if seed%2 == 0 {
			b = matrix.RandomVector(rng, nb*w, 4)
		}
		tr := NewMatVec(a, w)
		want, err := tr.SolveEngine(x, b, core.EngineOracle)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got, err := tr.SolveEngine(x, b, core.EngineCompiled)
		if err != nil {
			t.Fatalf("compiled: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("compiled diverges from structural (w=%d n̄=%d m̄=%d Q=%d pattern=%v):\ncompiled %+v\noracle   %+v",
				w, nb, mb, tr.TotalBlocks(), tr.Retained, got, want)
		}
		if !got.Y.Equal(a.MulVec(x, b), 0) {
			t.Fatalf("wrong result (w=%d n̄=%d m̄=%d pattern=%v)", w, nb, mb, tr.Retained)
		}
		if got.T != tr.PredictedSteps() {
			t.Fatalf("T=%d, formula predicts %d (w=%d pattern=%v)", got.T, tr.PredictedSteps(), w, tr.Retained)
		}
		// The arena pass must agree too — it is the stream's execution path.
		ar := core.NewArena()
		dst := make(matrix.Vector, tr.N)
		steps, err := tr.PassInto(ar, dst, x, b, core.EngineCompiled)
		if err != nil {
			t.Fatalf("PassInto: %v", err)
		}
		if steps != want.T || !dst.Equal(want.Y, 0) {
			t.Fatalf("PassInto diverges from structural (w=%d pattern=%v)", w, tr.Retained)
		}
		// Batched replay: k fresh right-hand sides through one plan must be
		// bit-identical, Result by Result, to k independent solves.
		k := 1 + int(uint64(seed)%4)
		xs := make([]matrix.Vector, k)
		bs := make([]matrix.Vector, k)
		for v := range xs {
			xs[v] = matrix.RandomVector(rng, mb*w, 4)
			if (int(uint64(seed))+v)%2 == 0 {
				bs[v] = matrix.RandomVector(rng, nb*w, 4)
			}
		}
		many, err := tr.SolveMany(xs, bs, core.EngineCompiled)
		if err != nil {
			t.Fatalf("SolveMany: %v", err)
		}
		for v := range many {
			one, err := tr.SolveEngine(xs[v], bs[v], core.EngineOracle)
			if err != nil {
				t.Fatalf("oracle vector %d: %v", v, err)
			}
			if !reflect.DeepEqual(many[v], one) {
				t.Fatalf("batched vector %d diverges from its independent solve (w=%d k=%d pattern=%v):\nbatched %+v\nlooped  %+v",
					v, w, k, tr.Retained, many[v], one)
			}
		}
		// Overlap: pairwise-interleaved programs on the collision-checked
		// array produce the same values and per-PE MACs in no more steps,
		// and the compiled TOverlap matches the measured run exactly.
		ov, err := tr.SolveOverlapped(x, b)
		if err != nil {
			t.Fatalf("SolveOverlapped: %v", err)
		}
		ovc, err := tr.SolveOverlappedEngine(x, b, core.EngineCompiled)
		if err != nil {
			t.Fatalf("SolveOverlappedEngine: %v", err)
		}
		if !reflect.DeepEqual(ovc, ov) {
			t.Fatalf("compiled overlap diverges from structural (w=%d pattern=%v):\ncompiled %+v\noracle   %+v",
				w, tr.Retained, ovc, ov)
		}
		if !ov.Y.Equal(want.Y, 0) || !reflect.DeepEqual(ov.MACs, want.MACs) || ov.T > want.T {
			t.Fatalf("overlap changed the computation (w=%d pattern=%v): T=%d vs %d", w, tr.Retained, ov.T, want.T)
		}
	})
}

// abs keeps fuzzed shape parameters in range without biasing the modulo.
func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
