package trisolve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/matrix"
)

// Workspace is the steady-state entry point of the dense triangular
// solver: a reusable scratch set (rhs, packed diagonal bands, mirrors, a
// plan memo) plus an optional pass executor. Its solves write into
// caller-provided buffers and allocate nothing once warmed on the compiled
// engine.
//
// Unlike Solver.SolveLower (left-looking: one accumulated off-diagonal
// pass per block row), a Workspace solve is *right-looking*: after block
// row rb's diagonal solve on the triangular array, every later block row
// jb > rb subtracts its panel product L[jb, rb]·x[rb] — independent
// matrix–vector passes over disjoint rhs blocks, which fan out across the
// executor's arrays with a barrier per elimination step. The pass set is
// the same at every worker count (and on both engines), so results and
// statistics are bit-identical serial or parallel.
//
// A Workspace belongs to one goroutine; results written into caller
// buffers are the caller's, everything else is reused by the next call.
type Workspace struct {
	w    int
	exec *core.Executor
	ar   *core.Arena
	tri  *Array

	rhs       matrix.Vector
	lpack     []float64
	mirror    *matrix.Dense
	revb      matrix.Vector
	xrev      matrix.Vector
	passSteps []int
	passErrs  []error
}

// PassStats counts the array work of one workspace solve, split by array
// (the triangular solver array vs the matvec array running the panels).
type PassStats struct {
	// TriSteps and TriPasses account the diagonal-block band solves.
	TriSteps, TriPasses int
	// MatVecSteps and MatVecPasses account the off-diagonal panel updates.
	MatVecSteps, MatVecPasses int
}

// NewWorkspace returns a serial workspace for array size w: every pass
// runs inline on the caller's goroutine.
func NewWorkspace(w int) *Workspace { return NewWorkspaceExecutor(w, nil) }

// NewWorkspaceExecutor returns a workspace whose independent panel passes
// fan out across exec's simulated arrays (nil exec = serial). The executor
// is shared, not owned: Close it separately.
func NewWorkspaceExecutor(w int, exec *core.Executor) *Workspace {
	if w < 1 {
		panic(fmt.Sprintf("trisolve: invalid array size %d", w))
	}
	return &Workspace{
		w: w, exec: exec,
		ar:  core.NewArena(),
		tri: New(w),
	}
}

// NewWorkspaceArena returns a serial workspace replaying its compiled
// plans and drawing its pass scratch through the caller's arena instead of
// a private one, so the workspace shares the arena's PlanMemo (a stream
// shard keeps its solve workspaces warm on the same memo its pass jobs
// use). The arena is shared, not owned; the workspace inherits its
// goroutine-ownership contract and may Reset it freely between passes, so
// nothing else drawn from the arena may be live across a workspace call.
func NewWorkspaceArena(w int, ar *core.Arena) *Workspace {
	if w < 1 {
		panic(fmt.Sprintf("trisolve: invalid array size %d", w))
	}
	return &Workspace{w: w, ar: ar, tri: New(w)}
}

// SolveBandInto solves the band system L·x = b into dst (len = n) on the
// selected engine and returns the measured step count. It is the
// zero-steady-state-allocation counterpart of Array.SolveBandEngine (which
// see for the validation panics).
func (tw *Workspace) SolveBandInto(dst matrix.Vector, l *matrix.Band, b matrix.Vector, eng core.Engine) (int, error) {
	validateBand(l, b, tw.w)
	n := l.Rows()
	if len(dst) != n {
		panic(fmt.Sprintf("trisolve: SolveBandInto dst len %d, want %d", len(dst), n))
	}
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	if !useCompiled {
		res := tw.tri.SolveBand(l, b)
		copy(dst, res.X)
		return res.T, nil
	}
	sch := tw.ar.Plans().TriSolveFor(n, tw.w)
	if n > 0 {
		tw.lpack = matrix.ReuseVec(tw.lpack, n*tw.w)
		dbt.PackTriBand(l, tw.w, tw.lpack)
		sch.Exec(tw.lpack, b, dst)
	}
	return sch.T, nil
}

// SolveLowerInto solves L·x = b for a dense lower triangular L into dst
// (len = n) with every arithmetic operation inside a fixed-size array,
// right-looking with per-step panel fan-out. Stats are returned by value;
// dst must not alias b.
func (tw *Workspace) SolveLowerInto(dst matrix.Vector, l *matrix.Dense, b matrix.Vector, eng core.Engine) (PassStats, error) {
	var stats PassStats
	n := l.Rows()
	if l.Cols() != n {
		return stats, fmt.Errorf("trisolve: matrix is %d×%d, want square", n, l.Cols())
	}
	if len(b) != n {
		return stats, fmt.Errorf("trisolve: len(b)=%d, want %d", len(b), n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("trisolve: SolveLowerInto dst len %d, want %d", len(dst), n))
	}
	for i := 0; i < n; i++ {
		if l.At(i, i) == 0 {
			return stats, &SingularError{Op: "trisolve.SolveLowerInto", Index: i}
		}
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				return stats, fmt.Errorf("trisolve: L[%d][%d] ≠ 0: not lower triangular", i, j)
			}
		}
	}
	w := tw.w
	tw.rhs = matrix.ReuseVec(tw.rhs, n)
	copy(tw.rhs, b)
	nb := (n + w - 1) / w
	for rb := 0; rb < nb; rb++ {
		lo, hi := rb*w, (rb+1)*w
		if hi > n {
			hi = n
		}
		// Diagonal block on the triangular array.
		steps, err := tw.solveDiagonal(dst, l, lo, hi, eng)
		if err != nil {
			return stats, err
		}
		stats.TriSteps += steps
		stats.TriPasses++
		// Fan the trailing panel updates of this step out: block row jb
		// subtracts L[jb, rb]·x[rb] from its rhs block — disjoint writes,
		// shared read-only x — then the barrier closes the step.
		count := nb - rb - 1
		if count == 0 {
			continue
		}
		tw.passSteps = matrix.ReuseSlice[int](tw.passSteps, count)
		tw.passErrs = matrix.ReuseSlice[error](tw.passErrs, count)
		for jb := rb + 1; jb < nb; jb++ {
			jlo, jhi := jb*w, (jb+1)*w
			if jhi > n {
				jhi = n
			}
			slot := jb - rb - 1
			if tw.exec == nil {
				tw.ar.Reset()
				tw.updatePanel(tw.ar, l, dst, lo, hi, jlo, jhi, slot, eng)
			} else {
				tw.submitPanel(l, dst, lo, hi, jlo, jhi, slot, eng)
			}
		}
		if tw.exec != nil {
			tw.exec.Barrier()
		}
		for _, err := range tw.passErrs[:count] {
			if err != nil {
				return stats, err
			}
		}
		for _, s := range tw.passSteps[:count] {
			stats.MatVecSteps += s
		}
		stats.MatVecPasses += count
	}
	return stats, nil
}

// solveDiagonal runs the diagonal block [lo,hi) on the triangular array,
// reading rhs and writing dst[lo:hi].
func (tw *Workspace) solveDiagonal(dst matrix.Vector, l *matrix.Dense, lo, hi int, eng core.Engine) (int, error) {
	w := tw.w
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	d := hi - lo
	if !useCompiled {
		// A dense w×w lower triangle is exactly a lower band of bandwidth w
		// in local indices (oracle path; allocation here is fine).
		blk := matrix.NewBand(d, d, -(w - 1), 0)
		for i := lo; i < hi; i++ {
			for j := lo; j <= i; j++ {
				if v := l.At(i, j); v != 0 || i == j {
					blk.Set(i-lo, j-lo, v)
				}
			}
		}
		res := tw.tri.SolveBand(blk, tw.rhs[lo:hi])
		copy(dst[lo:hi], res.X)
		return res.T, nil
	}
	// Compiled: pack the triangular band straight from the dense block
	// (dbt.PackTriBand layout) and replay the plan into dst.
	tw.lpack = matrix.ReuseVec(tw.lpack, d*w)
	for r := 0; r < d; r++ {
		row := tw.lpack[r*w : (r+1)*w]
		for k := range row {
			if r-k >= 0 {
				row[k] = l.At(lo+r, lo+r-k)
			} else {
				row[k] = 0
			}
		}
	}
	sch := tw.ar.Plans().TriSolveFor(d, w)
	sch.Exec(tw.lpack, tw.rhs[lo:hi], dst[lo:hi])
	return sch.T, nil
}

// submitPanel enqueues one panel update on the executor. It lives outside
// the elimination loop so the task closure's captures never force the
// loop's locals onto the heap on the serial path.
func (tw *Workspace) submitPanel(l *matrix.Dense, x matrix.Vector, lo, hi, jlo, jhi, slot int, eng core.Engine) {
	tw.exec.Submit(func(_ int, ar *core.Arena) {
		tw.updatePanel(ar, l, x, lo, hi, jlo, jhi, slot, eng)
	})
}

// updatePanel is one fan-out task: rhs[jlo:jhi] −= L[jlo:jhi, lo:hi]·x[lo:hi].
func (tw *Workspace) updatePanel(ar *core.Arena, l *matrix.Dense, x matrix.Vector, lo, hi, jlo, jhi, slot int, eng core.Engine) {
	panel := matrix.SliceInto(ar.Dense(jhi-jlo, hi-lo), l, jlo, jhi, lo, hi)
	mv := matrix.Vector(ar.Floats(jhi - jlo))
	steps, err := ar.MatVecPass(mv, panel, x[lo:hi], nil, tw.w, eng)
	if err != nil {
		tw.passErrs[slot] = err
		return
	}
	tw.passSteps[slot] = steps
	rhs := tw.rhs[jlo:jhi]
	for i, v := range mv {
		rhs[i] -= v
	}
}

// SolveUpperInto solves U·x = b for a dense upper triangular U into dst by
// mirroring it onto the lower solver (see Solver.SolveUpper). dst must not
// alias b.
func (tw *Workspace) SolveUpperInto(dst matrix.Vector, u *matrix.Dense, b matrix.Vector, eng core.Engine) (PassStats, error) {
	n := u.Rows()
	if u.Cols() != n {
		return PassStats{}, fmt.Errorf("trisolve: matrix is %d×%d, want square", n, u.Cols())
	}
	if len(b) != n {
		return PassStats{}, fmt.Errorf("trisolve: len(b)=%d, want %d", len(b), n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("trisolve: SolveUpperInto dst len %d, want %d", len(dst), n))
	}
	tw.mirror = matrix.Reuse(tw.mirror, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tw.mirror.Set(i, j, u.At(n-1-i, n-1-j))
		}
	}
	tw.revb = matrix.ReuseVec(tw.revb, n)
	for i := range tw.revb {
		tw.revb[i] = b[n-1-i]
	}
	tw.xrev = matrix.ReuseVec(tw.xrev, n)
	stats, err := tw.SolveLowerInto(tw.xrev, tw.mirror, tw.revb, eng)
	if err != nil {
		return stats, err
	}
	for i := range dst {
		dst[i] = tw.xrev[n-1-i]
	}
	return stats, nil
}
