package trisolve

import (
	"errors"
	"fmt"
)

// ErrSingular is the sentinel matched by errors.Is for every
// singular-pivot failure across the direct-solver layers: trisolve's
// diagonal checks here, and solve's BlockLU pivots and triangular
// inverses (package solve re-exports this sentinel and SingularError, so
// errors.Is(err, solve.ErrSingular) covers both layers no matter which
// one detected the pivot).
var ErrSingular = errors.New("singular matrix")

// SingularError reports the exact pivot a direct solver found to be
// zero. It is returned unchanged through every runtime layer — the
// intra-solve executor fan-out, the batch API's joined per-index errors
// and the stream scheduler's tickets — so errors.As extracts the pivot
// index anywhere in a wrapped chain, and errors.Is matches ErrSingular.
type SingularError struct {
	// Op names the operation that hit the pivot, e.g. "solve.BlockLU"
	// or "trisolve.SolveLower".
	Op string
	// Index is the global row/column index of the zero pivot.
	Index int
}

// Error formats the failure with its operation and pivot index.
func (e *SingularError) Error() string {
	return fmt.Sprintf("%s: singular pivot at %d", e.Op, e.Index)
}

// Unwrap lets errors.Is(err, ErrSingular) match.
func (e *SingularError) Unwrap() error { return ErrSingular }

// ConditionReport is the structured outcome of an iterative-refinement
// run: how many residual-correction cycles ran, the final ‖A·x − d‖∞, and
// whether the requested tolerance was reached. It travels in two places —
// inside the solver stats on success, and inside IllConditionedError on
// failure — so a caller always learns how far refinement got, never just
// that it stopped. It lives beside SingularError so the whole
// direct-solver failure taxonomy (singular pivot, ill-conditioned system)
// is defined once, below every layer that reports it; package solve
// re-exports all of it.
type ConditionReport struct {
	// Iters is the number of correction cycles executed (0 when the
	// direct solution already met the tolerance).
	Iters int `json:"iters"`
	// ResidualNorm is the final ‖A·x − d‖∞.
	ResidualNorm float64 `json:"residual_norm"`
	// Converged reports whether ResidualNorm reached the tolerance within
	// the iteration budget.
	Converged bool `json:"converged"`
}

// ErrIllConditioned is the sentinel matched by errors.Is when iterative
// refinement exhausts its budget without reaching the requested
// tolerance — the system is too ill-conditioned for the factorization to
// support the asked-for accuracy. The concrete error is an
// *IllConditionedError carrying the ConditionReport, so callers get the
// diagnosis instead of a silently wrong solution.
var ErrIllConditioned = errors.New("ill-conditioned system: iterative refinement did not converge")

// IllConditionedError is the typed refinement failure: errors.As extracts
// it from any wrapped chain (executor fan-out, batch joins, stream
// tickets, the HTTP facade), errors.Is matches ErrIllConditioned. No
// solution is returned alongside it — an answer that failed refinement is
// withheld, not handed back as garbage.
type IllConditionedError struct {
	// Op names the operation that gave up, e.g. "solve.Solve".
	Op string
	// Report is the refinement trajectory at the point of giving up.
	Report ConditionReport
}

// Error formats the failure with its operation and final residual.
func (e *IllConditionedError) Error() string {
	return fmt.Sprintf("%s: refinement stalled at ‖r‖∞=%g after %d iterations", e.Op, e.Report.ResidualNorm, e.Report.Iters)
}

// Unwrap lets errors.Is(err, ErrIllConditioned) match.
func (e *IllConditionedError) Unwrap() error { return ErrIllConditioned }
