package trisolve

import (
	"errors"
	"fmt"
)

// ErrSingular is the sentinel matched by errors.Is for every
// singular-pivot failure across the direct-solver layers: trisolve's
// diagonal checks here, and solve's BlockLU pivots and triangular
// inverses (package solve re-exports this sentinel and SingularError, so
// errors.Is(err, solve.ErrSingular) covers both layers no matter which
// one detected the pivot).
var ErrSingular = errors.New("singular matrix")

// SingularError reports the exact pivot a direct solver found to be
// zero. It is returned unchanged through every runtime layer — the
// intra-solve executor fan-out, the batch API's joined per-index errors
// and the stream scheduler's tickets — so errors.As extracts the pivot
// index anywhere in a wrapped chain, and errors.Is matches ErrSingular.
type SingularError struct {
	// Op names the operation that hit the pivot, e.g. "solve.BlockLU"
	// or "trisolve.SolveLower".
	Op string
	// Index is the global row/column index of the zero pivot.
	Index int
}

// Error formats the failure with its operation and pivot index.
func (e *SingularError) Error() string {
	return fmt.Sprintf("%s: singular pivot at %d", e.Op, e.Index)
}

// Unwrap lets errors.Is(err, ErrSingular) match.
func (e *SingularError) Unwrap() error { return ErrSingular }
