package trisolve

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// The compiled trisolve plan must be indistinguishable from the
// cycle-accurate array: identical X bit for bit AND identical measured
// statistics (T, per-PE activity, division count). These tests sweep
// random and adversarial shapes through both engines and compare the full
// Result structs.

// checkBandEquiv runs one band solve on both engines and DeepEquals the
// Results.
func checkBandEquiv(t *testing.T, w int, l *matrix.Band, b matrix.Vector) {
	t.Helper()
	ar := New(w)
	want, err := ar.SolveBandEngine(l, b, core.EngineOracle)
	if err != nil {
		t.Fatalf("oracle band solve (w=%d n=%d): %v", w, l.Rows(), err)
	}
	got, err := ar.SolveBandEngine(l, b, core.EngineCompiled)
	if err != nil {
		t.Fatalf("compiled band solve (w=%d n=%d): %v", w, l.Rows(), err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("w=%d n=%d: engines disagree\ncompiled %+v\noracle   %+v", w, l.Rows(), got, want)
	}
	auto, err := ar.SolveBandEngine(l, b, core.EngineAuto)
	if err != nil {
		t.Fatalf("auto band solve: %v", err)
	}
	if !reflect.DeepEqual(auto, want) {
		t.Fatalf("w=%d n=%d: auto engine diverges from oracle", w, l.Rows())
	}
}

// TestBandEngineEquivSweep sweeps random band systems through both engines.
func TestBandEngineEquivSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, w := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 12; trial++ {
			n := 1 + rng.Intn(4*w)
			checkBandEquiv(t, w, randLowerBand(rng, n, w), matrix.RandomVector(rng, n, 5))
		}
	}
}

// TestBandEngineEquivEdgeCases pins the adversarial shapes: 1×1 systems,
// unit diagonals, bandwidth ≥ dimension (w > n, idle tail PEs), and bands
// narrower than the array (diagonal-only L on a wide array).
func TestBandEngineEquivEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(202))

	// 1×1 system on arrays of every width.
	for _, w := range []int{1, 2, 5} {
		l := matrix.NewBand(1, 1, 0, 0)
		l.Set(0, 0, 2)
		checkBandEquiv(t, w, l, matrix.Vector{6})
	}

	// Unit diagonal: divisions by exactly 1 must stay exact on both sides.
	for _, w := range []int{2, 4} {
		n := 3 * w
		l := matrix.NewBand(n, n, -(w - 1), 0)
		for i := 0; i < n; i++ {
			for d := 1; d < w; d++ {
				if j := i - d; j >= 0 {
					l.Set(i, j, float64(rng.Intn(7)-3))
				}
			}
			l.Set(i, i, 1)
		}
		checkBandEquiv(t, w, l, matrix.RandomVector(rng, n, 5))
	}

	// Bandwidth ≥ dimension: w > n leaves PEs ≥ n permanently idle.
	for _, nw := range [][2]int{{1, 4}, {2, 5}, {3, 8}} {
		n, w := nw[0], nw[1]
		checkBandEquiv(t, w, randLowerBand(rng, n, w), matrix.RandomVector(rng, n, 5))
	}

	// Diagonal-only band on a wide array: every MAC multiplies a
	// structural zero, which both engines must realize identically.
	w, n := 4, 9
	l := matrix.NewBand(n, n, 0, 0)
	for i := 0; i < n; i++ {
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	checkBandEquiv(t, w, l, matrix.RandomVector(rng, n, 5))
}

// TestDenseSolverEngineEquiv runs the blocked dense solver on both engines
// and DeepEquals the DenseResults (X, steps, pass counts).
func TestDenseSolverEngineEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for _, w := range []int{2, 3, 5} {
		for _, n := range []int{1, w - 1, w, 2*w + 1, 4 * w} {
			if n < 1 {
				continue
			}
			l := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					l.Set(i, j, float64(rng.Intn(5)-2))
				}
				l.Set(i, i, float64(1+rng.Intn(3)))
			}
			b := matrix.RandomVector(rng, n, 5)
			want, err := NewSolverEngine(w, core.EngineOracle).SolveLower(l, b)
			if err != nil {
				t.Fatalf("oracle dense solve (w=%d n=%d): %v", w, n, err)
			}
			got, err := NewSolverEngine(w, core.EngineCompiled).SolveLower(l, b)
			if err != nil {
				t.Fatalf("compiled dense solve (w=%d n=%d): %v", w, n, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("w=%d n=%d: engines disagree\ncompiled %+v\noracle   %+v", w, n, got, want)
			}
		}
	}
}

// TestSolveBandEngineUnknown: an out-of-range engine value errors instead
// of picking a side silently.
func TestSolveBandEngineUnknown(t *testing.T) {
	l := matrix.NewBand(1, 1, 0, 0)
	l.Set(0, 0, 1)
	if _, err := New(2).SolveBandEngine(l, matrix.Vector{1}, core.Engine(99)); err == nil {
		t.Fatal("unknown engine should error")
	}
}
