// Package trisolve implements the band triangular-system systolic array
// (Kung & Leiserson's linear solver array, the third array of the family
// the paper builds on) and, on top of it, the size-independent dense
// triangular solver the paper's conclusions claim (§4: "Triangular systems
// of linear and matrix equations"; details were in the authors' report /8/,
// not publicly available — DESIGN.md §4 records this substitution).
//
// The array solves L·x = b for a lower triangular band matrix of bandwidth
// w on w PEs. PE 0 divides; PEs 1..w−1 multiply–accumulate. Partial sums
// y_i enter at PE w−1 at cycle 2i and move left one PE per cycle,
// collecting L[i][i−d]·x_{i−d} at PE d; when y_i reaches PE 0 at cycle
// 2i+w−1 the divider emits x_i = (b_i − y_i)/L[i][i], which immediately
// joins the x stream moving right — the self-feeding recurrence of the
// systolic solver. Total steps: T = 2n + w − 2; PE duty approaches ½.
//
// The blocked dense solver partitions an arbitrary dense lower triangular
// system into w-wide block rows: each diagonal block is itself a lower
// triangular band of bandwidth w and runs directly on this array, while
// the off-diagonal (dense rectangular) work runs as DBT matrix–vector
// passes on the multiplication array — so every arithmetic operation
// happens inside a fixed-size systolic array.
//
// Like the matrix-product workloads, every solve runs on either of two
// engines that agree bit for bit: SolveBand is the cycle-accurate
// structural oracle, and SolveBandEngine/NewSolverEngine select the
// compiled-schedule fast path (schedule.TriSolve: shape-cached plan,
// packed band, O(n·w) replay) through the core.Engine mechanism.
package trisolve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/matrix"
	"repro/internal/schedule"
	"repro/internal/systolic"
)

// Array is the w-PE band triangular solver.
type Array struct {
	W int
	// RecordTrace enables boundary event recording on SolveBand (parity
	// with the linear and hexagonal arrays): PortYIn marks the zero partial
	// sum injected at PE w−1 at cycle 2i, PortA a band coefficient
	// L[i][i−d] consumed at PE d (Index = i·w + d), PortYOut the solution
	// x_i emitted by the divider at cycle 2i+w−1, and PortX its re-entry
	// into the x stream one cycle later (the self-feeding recurrence).
	// Traces are only observable structurally, so RecordTrace restricts
	// SolveBandEngine to the oracle.
	RecordTrace bool
}

// New returns a triangular solver array with w PEs.
func New(w int) *Array {
	if w < 1 {
		panic(fmt.Sprintf("trisolve: invalid array size %d", w))
	}
	return &Array{W: w}
}

// Result reports one band solve.
type Result struct {
	X matrix.Vector
	// T is the measured step count (availability of the last x).
	T int
	// Activity counts MACs on PEs 1..w−1 and divisions on PE 0.
	Activity *systolic.Activity
	// Divisions is the division count of PE 0 (= n).
	Divisions int
	// Trace is the boundary trace when Array.RecordTrace is set, else nil.
	Trace *systolic.Trace
}

type triItem struct {
	live bool
	idx  int
	val  float64
}

// validateBand panics unless L is a square lower band of width ≤ w with a
// right-sized b — the structural preconditions shared by both engines.
func validateBand(l *matrix.Band, b matrix.Vector, w int) {
	n := l.Rows()
	if l.Cols() != n {
		panic(fmt.Sprintf("trisolve: matrix is %d×%d, want square", n, l.Cols()))
	}
	if l.Hi() > 0 || l.Lo() < -(w-1) {
		panic(fmt.Sprintf("trisolve: band [%d,%d] does not fit a lower band of width %d", l.Lo(), l.Hi(), w))
	}
	if len(b) != n {
		panic(fmt.Sprintf("trisolve: len(b)=%d, want %d", len(b), n))
	}
}

// SolveBandEngine solves L·x = b on the selected execution engine: the
// cycle-accurate structural oracle (SolveBand) or the compiled-schedule
// fast path (shape-cached plan, packed band, O(n·w) replay). Both engines
// return bit-identical results and statistics; the cross-engine tests
// enforce this. The only error is an unsatisfiable engine request.
func (ar *Array) SolveBandEngine(l *matrix.Band, b matrix.Vector, eng core.Engine) (*Result, error) {
	useCompiled, err := eng.Resolve(ar.RecordTrace)
	if err != nil {
		return nil, err
	}
	if !useCompiled {
		return ar.SolveBand(l, b), nil
	}
	return ar.solveBandCompiled(l, b), nil
}

// solveBandCompiled runs the band solve on the compiled-schedule engine.
func (ar *Array) solveBandCompiled(l *matrix.Band, b matrix.Vector) *Result {
	w := ar.W
	validateBand(l, b, w)
	n := l.Rows()
	res := &Result{X: make(matrix.Vector, n)}
	sch := schedule.TriSolveFor(n, w)
	res.Activity = sch.Activity()
	res.T = sch.T
	res.Divisions = sch.Divisions
	if n == 0 {
		return res
	}
	lband := schedule.GetFloatsUninit(n * w)
	defer schedule.PutFloats(lband)
	dbt.PackTriBand(l, w, *lband)
	sch.Exec(*lband, b, res.X)
	return res
}

// SolveBand solves L·x = b for a lower triangular band matrix (diagonals
// −(w−1)..0, nonzero diagonal) cycle-accurately on the structural oracle.
// It panics if L is not square, not of bandwidth ≤ w, or has a zero
// diagonal entry. Use SolveBandEngine to select the compiled engine.
func (ar *Array) SolveBand(l *matrix.Band, b matrix.Vector) *Result {
	w := ar.W
	validateBand(l, b, w)
	n := l.Rows()
	res := &Result{
		X:        make(matrix.Vector, n),
		Activity: systolic.NewActivity(w),
	}
	if ar.RecordTrace {
		res.Trace = &systolic.Trace{}
	}
	if n == 0 {
		return res
	}

	xregs := make([]triItem, w) // x moves right: PE k → k+1
	yregs := make([]triItem, w) // y moves left: PE k → k−1
	maxT := 2*(n-1) + w - 1
	for t := 0; t <= maxT; t++ {
		// Inject y_i (initial 0) at PE w−1 at cycle 2i. With w = 1 the
		// injection and division happen at the same PE in the same cycle.
		if t%2 == 0 {
			if i := t / 2; i < n {
				if yregs[w-1].live {
					panic(fmt.Sprintf("trisolve: y collision at cycle %d", t))
				}
				yregs[w-1] = triItem{live: true, idx: i}
				res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortYIn, Index: i})
			}
		}

		// PEs w−1..1: MAC with the coefficient of diagonal d = PE index.
		for k := 1; k < w; k++ {
			if !yregs[k].live || !xregs[k].live {
				continue
			}
			i := yregs[k].idx
			j := xregs[k].idx
			if i-j != k {
				panic(fmt.Sprintf("trisolve: misaligned meeting at PE %d cycle %d: y%d x%d", k, t, i, j))
			}
			v := l.At(i, j)
			yregs[k].val += v * xregs[k].val
			res.Activity.MACs[k]++
			res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortA, Index: i*w + k, Value: v})
		}
		// PE 0: division. x_i = (b_i − y_i)/L[i][i], emitted into the x
		// stream and recorded as output.
		var emitted triItem
		if yregs[0].live {
			i := yregs[0].idx
			d := l.At(i, i)
			if d == 0 {
				panic(fmt.Sprintf("trisolve: zero diagonal at row %d", i))
			}
			x := (b[i] - yregs[0].val) / d
			res.X[i] = x
			res.Divisions++
			res.Activity.MACs[0]++ // count the division as PE 0 work
			res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortA, Index: i * w, Value: d})
			res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortYOut, Index: i, Value: x})
			emitted = triItem{live: true, idx: i, val: x}
		}

		// Shift: y left, x right; the divider output enters the x stream.
		for k := 0; k+1 < w; k++ {
			yregs[k] = yregs[k+1]
		}
		yregs[w-1] = triItem{}
		for k := w - 1; k >= 1; k-- {
			xregs[k] = xregs[k-1]
		}
		xregs[0] = triItem{}
		if emitted.live {
			if w == 1 {
				// Degenerate array: pure sequential division, no x stream.
				continue
			}
			xregs[1] = emitted
			res.Trace.Record(systolic.Event{Cycle: t + 1, Port: systolic.PortX, Index: emitted.idx, Value: emitted.val})
		}
	}
	res.T = maxT + 1
	res.Activity.Cycles = res.T
	return res
}

// StepsBand returns the closed-form step count 2n + w − 2 of a band solve.
func StepsBand(n, w int) int { return 2*n + w - 2 }

// Solver is the size-independent dense triangular solver: diagonal blocks
// on the triangular array, off-diagonal work as DBT matrix–vector passes.
type Solver struct {
	w   int
	tri *Array
	mv  *core.MatVecSolver
	eng core.Engine
}

// NewSolver returns a dense solver for array size w using the default
// engine (EngineAuto: the compiled fast path for every array pass).
func NewSolver(w int) *Solver {
	return NewSolverEngine(w, core.EngineAuto)
}

// NewSolverEngine returns a dense solver whose every array pass — diagonal
// blocks on the triangular array, off-diagonal panels on the matvec array —
// runs on the selected execution engine.
func NewSolverEngine(w int, eng core.Engine) *Solver {
	return &Solver{w: w, tri: New(w), mv: core.NewMatVecSolver(w), eng: eng}
}

// DenseResult reports a blocked dense solve.
type DenseResult struct {
	X matrix.Vector
	// TriSteps and MatVecSteps split the measured array steps by array.
	TriSteps, MatVecSteps int
	// TriPasses and MatVecPasses count array invocations.
	TriPasses, MatVecPasses int
}

// SolveLower solves L·x = b for a dense lower triangular matrix of any
// size with every arithmetic operation inside a fixed-size array.
func (s *Solver) SolveLower(l *matrix.Dense, b matrix.Vector) (*DenseResult, error) {
	n := l.Rows()
	if l.Cols() != n {
		return nil, fmt.Errorf("trisolve: matrix is %d×%d, want square", n, l.Cols())
	}
	if len(b) != n {
		return nil, fmt.Errorf("trisolve: len(b)=%d, want %d", len(b), n)
	}
	for i := 0; i < n; i++ {
		if l.At(i, i) == 0 {
			return nil, &SingularError{Op: "trisolve.SolveLower", Index: i}
		}
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				return nil, fmt.Errorf("trisolve: L[%d][%d] ≠ 0: not lower triangular", i, j)
			}
		}
	}
	w := s.w
	res := &DenseResult{X: make(matrix.Vector, n)}
	nb := (n + w - 1) / w
	for rb := 0; rb < nb; rb++ {
		lo, hi := rb*w, (rb+1)*w
		if hi > n {
			hi = n
		}
		rhs := make(matrix.Vector, hi-lo)
		copy(rhs, b[lo:hi])
		if lo > 0 {
			// Off-diagonal contributions on the multiplication array.
			mv, err := s.mv.Solve(l.Slice(lo, hi, 0, lo), res.X[:lo], nil, core.MatVecOptions{Engine: s.eng})
			if err != nil {
				return nil, err
			}
			res.MatVecSteps += mv.Stats.T
			res.MatVecPasses++
			for i := range rhs {
				rhs[i] -= mv.Y[i]
			}
		}
		// Diagonal block on the triangular array. A dense w×w lower
		// triangle is exactly a lower band of bandwidth w in local indices.
		blk := matrix.NewBand(hi-lo, hi-lo, -(w - 1), 0)
		for i := lo; i < hi; i++ {
			for j := lo; j <= i; j++ {
				if v := l.At(i, j); v != 0 || i == j {
					blk.Set(i-lo, j-lo, v)
				}
			}
		}
		tr, err := s.tri.SolveBandEngine(blk, rhs, s.eng)
		if err != nil {
			return nil, err
		}
		res.TriSteps += tr.T
		res.TriPasses++
		copy(res.X[lo:hi], tr.X)
	}
	return res, nil
}

// SolveUpper solves U·x = b for a dense upper triangular matrix by
// mirroring it onto the lower solver.
func (s *Solver) SolveUpper(u *matrix.Dense, b matrix.Vector) (*DenseResult, error) {
	n := u.Rows()
	if u.Cols() != n {
		return nil, fmt.Errorf("trisolve: matrix is %d×%d, want square", n, u.Cols())
	}
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, u.At(n-1-i, n-1-j))
		}
	}
	rb := make(matrix.Vector, n)
	for i := range rb {
		rb[i] = b[n-1-i]
	}
	res, err := s.SolveLower(m, rb)
	if err != nil {
		return nil, err
	}
	out := make(matrix.Vector, n)
	for i := range out {
		out[i] = res.X[n-1-i]
	}
	res.X = out
	return res, nil
}

// SolveMatrixLower solves L·X = B for a dense lower triangular L and a
// dense right-hand-side matrix B (the "triangular systems of matrix
// equations" of §4), one column per solve.
func (s *Solver) SolveMatrixLower(l *matrix.Dense, b *matrix.Dense) (*matrix.Dense, *DenseResult, error) {
	if l.Rows() != b.Rows() {
		return nil, nil, fmt.Errorf("trisolve: L is %d×%d but B has %d rows", l.Rows(), l.Cols(), b.Rows())
	}
	x := matrix.NewDense(b.Rows(), b.Cols())
	total := &DenseResult{}
	for c := 0; c < b.Cols(); c++ {
		col := make(matrix.Vector, b.Rows())
		for i := range col {
			col[i] = b.At(i, c)
		}
		res, err := s.SolveLower(l, col)
		if err != nil {
			return nil, nil, err
		}
		total.TriSteps += res.TriSteps
		total.MatVecSteps += res.MatVecSteps
		total.TriPasses += res.TriPasses
		total.MatVecPasses += res.MatVecPasses
		for i, v := range res.X {
			x.Set(i, c, v)
		}
	}
	return x, total, nil
}
