package trisolve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/systolic"
)

// randomBand draws a nonsingular lower band of bandwidth w.
func randomBand(rng *rand.Rand, n, w int) *matrix.Band {
	l := matrix.NewBand(n, n, -(w - 1), 0)
	for i := 0; i < n; i++ {
		for d := 1; d < w; d++ {
			if j := i - d; j >= 0 {
				l.Set(i, j, float64(rng.Intn(5)-2))
			}
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	return l
}

// TestBandTrace pins the Kung–Leiserson boundary timing: y_i enters PE w−1
// at cycle 2i, x_i leaves the divider at cycle 2i+w−1 with the solved
// value, and re-enters the x stream one cycle later.
func TestBandTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, w := range []int{1, 2, 3, 5} {
		n := 2 + rng.Intn(8)
		l := randomBand(rng, n, w)
		b := matrix.RandomVector(rng, n, 3)
		arr := New(w)
		arr.RecordTrace = true
		res := arr.SolveBand(l, b)
		if res.Trace == nil {
			t.Fatalf("w=%d: no trace recorded", w)
		}
		yins := res.Trace.ByPort(systolic.PortYIn)
		if len(yins) != n {
			t.Fatalf("w=%d: %d y injections, want %d", w, len(yins), n)
		}
		for i, e := range yins {
			if e.Index != i || e.Cycle != 2*i {
				t.Errorf("w=%d: y%d injected at cycle %d (index %d), want cycle %d", w, i, e.Cycle, e.Index, 2*i)
			}
		}
		outs := res.Trace.ByPort(systolic.PortYOut)
		if len(outs) != n {
			t.Fatalf("w=%d: %d x outputs, want %d", w, len(outs), n)
		}
		for i, e := range outs {
			if e.Index != i || e.Cycle != 2*i+w-1 {
				t.Errorf("w=%d: x%d emitted at cycle %d, want 2i+w−1 = %d", w, i, e.Cycle, 2*i+w-1)
			}
			if e.Value != res.X[i] {
				t.Errorf("w=%d: x%d trace value %g ≠ solution %g", w, i, e.Value, res.X[i])
			}
		}
		reenter := res.Trace.ByPort(systolic.PortX)
		if w == 1 {
			if len(reenter) != 0 {
				t.Errorf("w=1: %d re-entries, want none (no x stream)", len(reenter))
			}
		} else {
			if len(reenter) != n {
				t.Fatalf("w=%d: %d re-entries, want %d", w, len(reenter), n)
			}
			for i, e := range reenter {
				if e.Index != i || e.Cycle != 2*i+w {
					t.Errorf("w=%d: x%d re-enters at cycle %d, want %d", w, i, e.Cycle, 2*i+w)
				}
			}
		}
		// Coefficient consumptions: one per MAC plus one per division.
		as := res.Trace.ByPort(systolic.PortA)
		if want := res.Activity.Total(); len(as) != want {
			t.Errorf("w=%d: %d coefficient events, want %d", w, len(as), want)
		}
	}
}

// TestTraceEngineRules: traces are structural-only, exactly like the
// matrix-product arrays — EngineCompiled with a trace is an error,
// EngineAuto falls back to the oracle, and an untraced run stays on the
// compiled path with a nil trace.
func TestTraceEngineRules(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	w, n := 3, 6
	l := randomBand(rng, n, w)
	b := matrix.RandomVector(rng, n, 3)
	arr := New(w)
	arr.RecordTrace = true
	if _, err := arr.SolveBandEngine(l, b, core.EngineCompiled); err == nil {
		t.Error("compiled engine with trace should error")
	}
	res, err := arr.SolveBandEngine(l, b, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Error("auto engine with trace should record structurally")
	}
	arr.RecordTrace = false
	plain, err := arr.SolveBandEngine(l, b, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced run should have a nil trace")
	}
	if !plain.X.Equal(res.X, 0) {
		t.Error("traced and untraced solutions differ")
	}
}
