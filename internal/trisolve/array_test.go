package trisolve

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// randLowerBand builds a nonsingular lower triangular band matrix.
func randLowerBand(rng *rand.Rand, n, w int) *matrix.Band {
	l := matrix.NewBand(n, n, -(w - 1), 0)
	for i := 0; i < n; i++ {
		for d := 1; d < w; d++ {
			if j := i - d; j >= 0 {
				l.Set(i, j, float64(rng.Intn(5)-2))
			}
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	return l
}

func TestSolveBandExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, w := range []int{1, 2, 3, 5} {
		for _, n := range []int{1, 2, w, 3 * w, 17} {
			l := randLowerBand(rng, n, w)
			want := matrix.RandomVector(rng, n, 3)
			b := l.MulVec(want, nil)
			res := New(w).SolveBand(l, b)
			if !res.X.Equal(want, 1e-9) {
				t.Errorf("w=%d n=%d: wrong solution (off %g)", w, n, res.X.MaxAbsDiff(want))
			}
		}
	}
}

func TestSolveBandStepCount(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, w := range []int{1, 2, 4} {
		for _, n := range []int{1, 7, 3 * w} {
			l := randLowerBand(rng, n, w)
			res := New(w).SolveBand(l, matrix.NewVector(n))
			if got, want := res.T, StepsBand(n, w); got != want {
				t.Errorf("w=%d n=%d: T=%d, want %d", w, n, got, want)
			}
		}
	}
}

func TestSolveBandDivisions(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	w, n := 3, 12
	l := randLowerBand(rng, n, w)
	res := New(w).SolveBand(l, matrix.NewVector(n))
	if res.Divisions != n {
		t.Errorf("divisions=%d, want %d", res.Divisions, n)
	}
	// MAC PEs: PE d executes one MAC per row i ≥ d.
	for d := 1; d < w; d++ {
		if got, want := res.Activity.MACs[d], n-d; got != want {
			t.Errorf("PE %d: %d MACs, want %d", d, got, want)
		}
	}
}

func TestSolveBandValidation(t *testing.T) {
	ar := New(2)
	for _, f := range []func(){
		func() { New(0) },
		func() { ar.SolveBand(matrix.NewBand(2, 3, -1, 0), make(matrix.Vector, 2)) },
		func() { ar.SolveBand(matrix.NewBand(2, 2, -1, 1), make(matrix.Vector, 2)) },
		func() { ar.SolveBand(matrix.NewBand(2, 2, -1, 0), make(matrix.Vector, 1)) },
		func() { // zero diagonal
			l := matrix.NewBand(2, 2, -1, 0)
			l.Set(1, 0, 1)
			ar.SolveBand(l, make(matrix.Vector, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestSolveLowerDense: the blocked size-independent solver is exact for
// arbitrary sizes on a fixed array.
func TestSolveLowerDense(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, w := range []int{2, 3, 4} {
		s := NewSolver(w)
		for _, n := range []int{1, w, 2*w + 1, 4 * w} {
			l := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					l.Set(i, j, float64(rng.Intn(5)-2))
				}
				l.Set(i, i, float64(1+rng.Intn(3)))
			}
			want := matrix.RandomVector(rng, n, 3)
			b := l.MulVec(want, nil)
			res, err := s.SolveLower(l, b)
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", w, n, err)
			}
			if !res.X.Equal(want, 1e-9) {
				t.Errorf("w=%d n=%d: wrong solution (off %g)", w, n, res.X.MaxAbsDiff(want))
			}
			if res.TriPasses != (n+w-1)/w {
				t.Errorf("w=%d n=%d: %d triangular passes", w, n, res.TriPasses)
			}
			if n > w && res.MatVecPasses == 0 {
				t.Errorf("w=%d n=%d: off-diagonal work skipped the matvec array", w, n)
			}
		}
	}
}

func TestSolveUpperDense(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	w, n := 3, 10
	u := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u.Set(i, j, float64(rng.Intn(5)-2))
		}
		u.Set(i, i, float64(1+rng.Intn(3)))
	}
	want := matrix.RandomVector(rng, n, 3)
	b := u.MulVec(want, nil)
	res, err := NewSolver(w).SolveUpper(u, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(want, 1e-9) {
		t.Errorf("wrong solution (off %g)", res.X.MaxAbsDiff(want))
	}
}

// TestSolveMatrixLower: L·X = B with a matrix right-hand side (§4's
// "triangular systems of matrix equations").
func TestSolveMatrixLower(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	w, n, m := 3, 8, 5
	l := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, float64(rng.Intn(5)-2))
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	want := matrix.RandomDense(rng, n, m, 3)
	b := l.Mul(want)
	x, stats, err := NewSolver(w).SolveMatrixLower(l, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(want, 1e-9) {
		t.Errorf("wrong solution (off %g)", x.MaxAbsDiff(want))
	}
	if stats.TriPasses != m*((n+w-1)/w) {
		t.Errorf("tri passes %d", stats.TriPasses)
	}
}

func TestSolverValidation(t *testing.T) {
	s := NewSolver(2)
	if _, err := s.SolveLower(matrix.NewDense(2, 3), make(matrix.Vector, 2)); err == nil {
		t.Error("expected non-square error")
	}
	if _, err := s.SolveLower(matrix.NewDense(2, 2), make(matrix.Vector, 2)); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	} else {
		var serr *SingularError
		if !errors.As(err, &serr) || serr.Index != 0 {
			t.Errorf("err = %#v, want a *SingularError at pivot 0", err)
		}
	}
	notL := matrix.FromRows([][]float64{{1, 1}, {0, 1}})
	if _, err := s.SolveLower(notL, make(matrix.Vector, 2)); err == nil {
		t.Error("expected not-lower error")
	}
	if _, err := s.SolveLower(identity(2), make(matrix.Vector, 3)); err == nil {
		t.Error("expected rhs length error")
	}
	if _, err := s.SolveUpper(matrix.NewDense(2, 3), make(matrix.Vector, 2)); err == nil {
		t.Error("expected non-square error")
	}
	if _, _, err := s.SolveMatrixLower(identity(2), matrix.NewDense(3, 2)); err == nil {
		t.Error("expected shape error")
	}
}

func identity(n int) *matrix.Dense {
	id := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	return id
}
