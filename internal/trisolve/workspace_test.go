package trisolve

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// randomLower builds a unit-free nonsingular dense lower triangular matrix.
func randomLower(rng *rand.Rand, n int) *matrix.Dense {
	l := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, float64(rng.Intn(5)-2))
		}
		l.Set(i, i, float64(1+rng.Intn(3)))
	}
	return l
}

// TestWorkspaceBandMatchesEngine: SolveBandInto must be bit-identical to
// Array.SolveBandEngine on both engines, across shapes and reuse.
func TestWorkspaceBandMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{1, 2, 3, 5} {
		tw := NewWorkspace(w)
		ar := New(w)
		for _, n := range []int{1, 2, w, 2*w + 1, 17} {
			l := matrix.NewBand(n, n, -(w - 1), 0)
			for i := 0; i < n; i++ {
				for d := 1; d < w; d++ {
					if j := i - d; j >= 0 {
						l.Set(i, j, float64(rng.Intn(5)-2))
					}
				}
				l.Set(i, i, float64(1+rng.Intn(3)))
			}
			b := matrix.RandomVector(rng, n, 4)
			for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled} {
				ref, err := ar.SolveBandEngine(l, b, eng)
				if err != nil {
					t.Fatal(err)
				}
				x := make(matrix.Vector, n)
				steps, err := tw.SolveBandInto(x, l, b, eng)
				if err != nil {
					t.Fatal(err)
				}
				if !x.Equal(ref.X, 0) || steps != ref.T {
					t.Fatalf("%v w=%d n=%d: SolveBandInto differs (T %d vs %d)", eng, w, n, steps, ref.T)
				}
			}
		}
	}
}

// TestWorkspaceLowerUpper: the right-looking workspace solver must solve
// exactly (against reference arithmetic), bit-identically across engines
// (stats included), and bit-identically at every worker count.
func TestWorkspaceLowerUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, w := range []int{1, 2, 3, 4} {
		serial := NewWorkspace(w)
		for _, n := range []int{1, w, 2*w + 1, 3 * w, 14} {
			l := randomLower(rng, n)
			want := matrix.RandomVector(rng, n, 3)
			b := l.MulVec(want, nil)

			x := make(matrix.Vector, n)
			st, err := serial.SolveLowerInto(x, l, b, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			if !x.Equal(want, 1e-8) {
				t.Fatalf("w=%d n=%d: wrong solution (off %g)", w, n, x.MaxAbsDiff(want))
			}
			xo := make(matrix.Vector, n)
			sto, err := serial.SolveLowerInto(xo, l, b, core.EngineOracle)
			if err != nil {
				t.Fatal(err)
			}
			if !x.Equal(xo, 0) || !reflect.DeepEqual(st, sto) {
				t.Fatalf("w=%d n=%d: engines disagree\ncompiled %+v\noracle   %+v", w, n, st, sto)
			}
			for _, workers := range []int{1, 3} {
				ex := core.NewExecutor(workers)
				par := NewWorkspaceExecutor(w, ex)
				xp := make(matrix.Vector, n)
				stp, err := par.SolveLowerInto(xp, l, b, core.EngineCompiled)
				if err != nil {
					t.Fatal(err)
				}
				if !xp.Equal(x, 0) || !reflect.DeepEqual(stp, st) {
					t.Fatalf("w=%d n=%d workers=%d: parallel differs from serial", w, n, workers)
				}
				ex.Close()
			}

			// Upper solve through the mirror.
			u := l.Transpose()
			bu := u.MulVec(want, nil)
			xu := make(matrix.Vector, n)
			stu, err := serial.SolveUpperInto(xu, u, bu, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			if !xu.Equal(want, 1e-8) {
				t.Fatalf("w=%d n=%d: wrong upper solution (off %g)", w, n, xu.MaxAbsDiff(want))
			}
			xuo := make(matrix.Vector, n)
			stuo, err := serial.SolveUpperInto(xuo, u, bu, core.EngineOracle)
			if err != nil {
				t.Fatal(err)
			}
			if !xu.Equal(xuo, 0) || !reflect.DeepEqual(stu, stuo) {
				t.Fatalf("w=%d n=%d: upper engines disagree", w, n)
			}
		}
	}
}

// TestWorkspaceMatchesLegacySolver: the workspace's values must equal the
// left-looking Solver's (same arithmetic grouped differently would drift —
// on exact small-integer data both must land on the same floats).
func TestWorkspaceMatchesLegacySolver(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w, n := 3, 13
	l := randomLower(rng, n)
	b := l.MulVec(matrix.RandomVector(rng, n, 3), nil)
	legacy, err := NewSolver(w).SolveLower(l, b)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewWorkspace(w)
	x := make(matrix.Vector, n)
	if _, err := tw.SolveLowerInto(x, l, b, core.EngineAuto); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(legacy.X, 0) {
		t.Fatalf("workspace differs from legacy solver by %g", x.MaxAbsDiff(legacy.X))
	}
}

// TestWorkspaceErrors: the workspace rejects the same inputs as the legacy
// solver.
func TestWorkspaceErrors(t *testing.T) {
	tw := NewWorkspace(2)
	x := make(matrix.Vector, 2)
	if _, err := tw.SolveLowerInto(x, matrix.NewDense(2, 3), make(matrix.Vector, 2), core.EngineAuto); err == nil {
		t.Error("expected non-square error")
	}
	if _, err := tw.SolveLowerInto(x, matrix.NewDense(2, 2), make(matrix.Vector, 3), core.EngineAuto); err == nil {
		t.Error("expected length error")
	}
	if _, err := tw.SolveLowerInto(x, matrix.NewDense(2, 2), make(matrix.Vector, 2), core.EngineAuto); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	} else {
		var serr *SingularError
		if !errors.As(err, &serr) || serr.Index != 0 {
			t.Errorf("err = %#v, want a *SingularError at pivot 0", err)
		}
	}
	notLower := matrix.FromRows([][]float64{{1, 5}, {0, 1}})
	if _, err := tw.SolveLowerInto(x, notLower, make(matrix.Vector, 2), core.EngineAuto); err == nil {
		t.Error("expected not-lower-triangular error")
	}
}
