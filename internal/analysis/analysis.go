// Package analysis holds the paper's closed-form performance model: step
// counts T, PE utilizations η = N/(A·T) and feedback register demands, as
// functions of the array size w and the block-grid coefficients
// n̄ = ⌈n/w⌉, m̄ = ⌈m/w⌉, p̄ = ⌈p/w⌉. The simulators measure the same
// quantities; the E1–E8 experiments compare the two.
package analysis

// MatVecSteps returns T = 2w·n̄·m̄ + 2w − 3, the matrix–vector step count
// without overlapping (paper §2).
func MatVecSteps(w, nbar, mbar int) int { return 2*w*nbar*mbar + 2*w - 3 }

// MatVecStepsOverlap returns T = w·n̄·m̄ + 2w − 2, the step count when the
// transformed problem is split into two interleaved sub-problems (paper §2).
func MatVecStepsOverlap(w, nbar, mbar int) int { return w*nbar*mbar + 2*w - 2 }

// MatVecUtilization returns η = 1/(2 + 2/(n̄m̄) − 3/(w·n̄m̄)), the PE
// utilization of the linear array without overlapping; it approaches ½ as
// n̄m̄ grows (paper §2).
func MatVecUtilization(w, nbar, mbar int) float64 {
	nm := float64(nbar * mbar)
	return 1 / (2 + 2/nm - 3/(float64(w)*nm))
}

// MatVecUtilizationOverlap returns η = 1/(1 + 2/(n̄m̄) − 2/(w·n̄m̄)), which
// approaches 1 (paper §2).
func MatVecUtilizationOverlap(w, nbar, mbar int) float64 {
	nm := float64(nbar * mbar)
	return 1 / (1 + 2/nm - 2/(float64(w)*nm))
}

// MatVecFeedbackDelay returns the constant feedback delay of DBT-by-rows:
// the array size w, realizable with w registers (paper §2).
func MatVecFeedbackDelay(w int) int { return w }

// MatMulSteps returns T = 3w·p̄·n̄·m̄ + 4w − 5, the matrix–matrix step count
// on the w×w hexagonal array (paper §3). The array's compute span is
// 3w·p̄n̄m̄ + 3w − 5 cycles (first to last MAC inclusive); the final result
// block then drains through the w-stage feedback registers, giving the
// paper's total. MatMulComputeSpan reports the former.
func MatMulSteps(w, pbar, nbar, mbar int) int { return 3*w*pbar*nbar*mbar + 4*w - 5 }

// MatMulComputeSpan returns the first-to-last-MAC span of the hexagonal
// array, 3w·p̄n̄m̄ + 3w − 5 (see MatMulSteps).
func MatMulComputeSpan(w, pbar, nbar, mbar int) int { return 3*w*pbar*nbar*mbar + 3*w - 5 }

// MatMulUtilization returns η = 1/(3 + 4/(p̄n̄m̄) − 5/(w·p̄n̄m̄)), which
// approaches ⅓, the hexagonal array's inherent maximum (paper §3).
func MatMulUtilization(w, pbar, nbar, mbar int) float64 {
	pnm := float64(pbar * nbar * mbar)
	return 1 / (3 + 4/pnm - 5/(float64(w)*pnm))
}

// MatMulIrregularDelayU returns 6(w−1)(n̄−1)p̄ + w, the feedback delay of
// the last partial result when the U_{0,j} chains cross a region boundary
// (paper §3).
func MatMulIrregularDelayU(w, nbar, pbar int) int { return 6*(w-1)*(nbar-1)*pbar + w }

// MatMulIrregularDelayL returns 6(n̄p̄)(m̄−1)(w−1) + w, the feedback delay
// of the last partial result of the L_{n̄−1,0} chain (paper §3).
func MatMulIrregularDelayL(w, nbar, pbar, mbar int) int {
	return 6*nbar*pbar*(mbar-1)*(w-1) + w
}

// MatMulRegisterDemand returns the paper's feedback storage accounting for
// the hexagonal array: 2w memory elements for the main diagonal, w for each
// of the w−1 sub-diagonal pairs, and 3w(w−1)/2 for the irregular feedbacks
// (paper §3).
func MatMulRegisterDemand(w int) (mainDiag, perSubDiagPair, irregular int) {
	return 2 * w, w, w * (w - 1) * 3 / 2
}

// MatVecOps returns the padded operation count N = n̄·m̄·w² that the
// utilization formulas assume (every band position holds one MAC).
func MatVecOps(w, nbar, mbar int) int { return nbar * mbar * w * w }

// MatMulOps returns the padded operation count N = p̄·n̄·m̄·w³.
func MatMulOps(w, pbar, nbar, mbar int) int { return pbar * nbar * mbar * w * w * w }

// ByColumnsFeedbackDelay returns (2n̄−1)·w, the feedback register chain of
// the column-major DBT variant — the §4 trade-off against the by-rows
// constant w (experiment E11).
func ByColumnsFeedbackDelay(w, nbar int) int { return (2*nbar - 1) * w }

// TriSolveSteps returns 2n + w − 2, the step count of the band triangular
// solver array for an n-row system.
func TriSolveSteps(n, w int) int { return 2*n + w - 2 }

// FlushSpeedup returns the asymptotic step-count advantage of DBT over the
// block-flush baseline, n̄m̄(4w−3) / (2w·n̄m̄+2w−3) → (4w−3)/(2w) ≈ 2.
func FlushSpeedup(w, nbar, mbar int) float64 {
	return float64(nbar*mbar*(4*w-3)) / float64(MatVecSteps(w, nbar, mbar))
}

// DirectBandPEs returns n+m−1: the array size the no-transformation
// baseline needs for a dense n×m matrix (the size dependence DBT removes).
func DirectBandPEs(n, m int) int { return n + m - 1 }
