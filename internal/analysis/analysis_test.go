package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperHeadlineNumbers(t *testing.T) {
	// The Fig. 2/3 example: w=3, n̄=2, m̄=3.
	if got := MatVecSteps(3, 2, 3); got != 39 {
		t.Errorf("MatVecSteps = %d, want 39", got)
	}
	if got := MatVecStepsOverlap(3, 2, 3); got != 22 {
		t.Errorf("MatVecStepsOverlap = %d, want 22", got)
	}
	// The Fig. 4 example: w=3, n̄=2, p̄=2, m̄=3.
	if got := MatMulSteps(3, 2, 2, 3); got != 115 {
		t.Errorf("MatMulSteps = %d, want 115", got)
	}
	if got := MatMulComputeSpan(3, 2, 2, 3); got != 115-3 {
		t.Errorf("MatMulComputeSpan = %d, want 112", got)
	}
}

// TestUtilizationIdentity: η as printed in the paper equals N/(A·T) with
// N the padded op count — for every parameter combination.
func TestUtilizationIdentity(t *testing.T) {
	f := func(w8, n8, m8, p8 uint8) bool {
		w := int(w8%6) + 1
		nb := int(n8%5) + 1
		mb := int(m8%5) + 1
		pb := int(p8%5) + 1
		mv := MatVecUtilization(w, nb, mb)
		mvRef := float64(MatVecOps(w, nb, mb)) / (float64(w) * float64(MatVecSteps(w, nb, mb)))
		mm := MatMulUtilization(w, pb, nb, mb)
		mmRef := float64(MatMulOps(w, pb, nb, mb)) / (float64(w*w) * float64(MatMulSteps(w, pb, nb, mb)))
		return math.Abs(mv-mvRef) < 1e-12 && math.Abs(mm-mmRef) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOverlapIdentity: the overlapped utilization formula equals
// N/(A·T_overlap).
func TestOverlapIdentity(t *testing.T) {
	f := func(w8, n8, m8 uint8) bool {
		w := int(w8%6) + 1
		nb := int(n8%5) + 1
		mb := int(m8%5) + 1
		u := MatVecUtilizationOverlap(w, nb, mb)
		ref := float64(MatVecOps(w, nb, mb)) / (float64(w) * float64(MatVecStepsOverlap(w, nb, mb)))
		return math.Abs(u-ref) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAsymptotes: η → ½ (matvec), → 1 (overlap), → ⅓ (matmul) as the block
// product grows (paper §2, §3).
func TestAsymptotes(t *testing.T) {
	w := 5
	if u := MatVecUtilization(w, 100, 100); math.Abs(u-0.5) > 1e-3 {
		t.Errorf("matvec asymptote %g, want ≈ 0.5", u)
	}
	if u := MatVecUtilizationOverlap(w, 100, 100); math.Abs(u-1) > 1e-3 {
		t.Errorf("overlap asymptote %g, want ≈ 1", u)
	}
	if u := MatMulUtilization(w, 20, 20, 20); math.Abs(u-1.0/3) > 1e-3 {
		t.Errorf("matmul asymptote %g, want ≈ 1/3", u)
	}
	// Monotone in the block product.
	if MatVecUtilization(w, 2, 2) >= MatVecUtilization(w, 4, 4) {
		t.Error("matvec utilization not increasing")
	}
}

func TestDelaysAndDemand(t *testing.T) {
	if MatVecFeedbackDelay(7) != 7 {
		t.Error("matvec feedback delay must equal w")
	}
	if got := MatMulIrregularDelayU(3, 2, 2); got != 6*2*1*2+3 {
		t.Errorf("irregular U delay %d", got)
	}
	if got := MatMulIrregularDelayL(3, 2, 2, 3); got != 6*4*2*2+3 {
		t.Errorf("irregular L delay %d", got)
	}
	md, sub, irr := MatMulRegisterDemand(4)
	if md != 8 || sub != 4 || irr != 18 {
		t.Errorf("register demand = %d,%d,%d", md, sub, irr)
	}
}

func TestExtensionFormulas(t *testing.T) {
	if got := ByColumnsFeedbackDelay(3, 4); got != 21 {
		t.Errorf("ByColumnsFeedbackDelay = %d, want 21", got)
	}
	if got := TriSolveSteps(10, 3); got != 21 {
		t.Errorf("TriSolveSteps = %d, want 21", got)
	}
	if got := DirectBandPEs(6, 9); got != 14 {
		t.Errorf("DirectBandPEs = %d, want 14", got)
	}
	// Flush speedup approaches (4w−3)/(2w) from below as n̄m̄ grows.
	w := 4
	asym := float64(4*w-3) / float64(2*w)
	if s := FlushSpeedup(w, 20, 20); math.Abs(s-asym) > 0.01 {
		t.Errorf("FlushSpeedup(%d, large) = %.4f, want ≈ %.4f", w, s, asym)
	}
	if FlushSpeedup(w, 1, 1) >= FlushSpeedup(w, 8, 8) {
		t.Error("FlushSpeedup not increasing")
	}
}
