package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/matrix"
)

func TestDirectBandCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {7, 4}, {6, 6}} {
		n, m := shape[0], shape[1]
		a := matrix.RandomDense(rng, n, m, 4)
		x := matrix.RandomVector(rng, m, 4)
		b := matrix.RandomVector(rng, n, 4)
		res := DirectBand(a, x, b)
		if !res.Y.Equal(a.MulVec(x, b), 0) {
			t.Errorf("%v: wrong result", shape)
		}
		if res.ArraySize != n+m-1 {
			t.Errorf("%v: array size %d, want %d", shape, res.ArraySize, n+m-1)
		}
		if res.T != DirectBandSteps(n, m) {
			t.Errorf("%v: T=%d, want %d", shape, res.T, DirectBandSteps(n, m))
		}
	}
}

func TestDirectBandUtilizationCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := matrix.RandomDense(rng, 20, 20, 3)
	x := matrix.RandomVector(rng, 20, 3)
	res := DirectBand(a, x, nil)
	if res.Utilization > 0.13 {
		t.Errorf("direct band η=%.4f, expected ≈ ⅛ for square dense", res.Utilization)
	}
}

func TestBlockFlushCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, w := range []int{2, 3, 4} {
		for _, shape := range [][2]int{{1, 1}, {2 * w, 3 * w}, {w + 1, 2*w - 1}} {
			n, m := shape[0], shape[1]
			a := matrix.RandomDense(rng, n, m, 4)
			x := matrix.RandomVector(rng, m, 4)
			b := matrix.RandomVector(rng, n, 4)
			res := BlockFlush(a, x, b, w)
			if !res.Y.Equal(a.MulVec(x, b), 0) {
				t.Errorf("w=%d %v: wrong result", w, shape)
			}
		}
	}
}

func TestBlockFlushStepsFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	w, nb, mb := 3, 2, 4
	a := matrix.RandomDense(rng, nb*w, mb*w, 3)
	x := matrix.RandomVector(rng, mb*w, 3)
	res := BlockFlush(a, x, nil, w)
	if want := BlockFlushSteps(w, nb, mb); res.T != want {
		t.Errorf("T=%d, want %d", res.T, want)
	}
	// Host additions: w per block beyond the first in each block row.
	if want := nb * (mb - 1) * w; res.ExternalOps != want {
		t.Errorf("external ops %d, want %d", res.ExternalOps, want)
	}
}

func TestPRTMatchesDBTSpecialCase(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, w := range []int{2, 3, 5} {
		a := matrix.RandomDense(rng, w, w, 4)
		x := matrix.RandomVector(rng, w, 4)
		b := matrix.RandomVector(rng, w, 4)
		res, err := PRT(a, x, b, w)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Y.Equal(a.MulVec(x, b), 0) {
			t.Errorf("w=%d: wrong result", w)
		}
		if want := 4*w - 3; res.T != want {
			t.Errorf("w=%d: T=%d, want %d (= 2w·1·1+2w−3)", w, res.T, want)
		}
	}
	if _, err := PRT(matrix.NewDense(2, 3), make(matrix.Vector, 3), nil, 2); err == nil {
		t.Error("expected shape error")
	}
}

// TestPRTHalvesArraySize reproduces ref /6/'s headline: a w×w dense block
// is a band matrix of bandwidth 2w−1, so the direct band approach needs a
// 2w−1 array; PRT runs it on w PEs — the "50% size reduction" — and is not
// slower (T = 4w−3 vs the direct 6w−5).
func TestPRTHalvesArraySize(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for _, w := range []int{3, 5, 8} {
		a := matrix.RandomDense(rng, w, w, 4)
		x := matrix.RandomVector(rng, w, 4)
		prt, err := PRT(a, x, nil, w)
		if err != nil {
			t.Fatal(err)
		}
		direct := DirectBand(a, x, nil)
		if direct.ArraySize != 2*w-1 {
			t.Errorf("w=%d: direct needs %d PEs, want %d", w, direct.ArraySize, 2*w-1)
		}
		if prt.ArraySize != w {
			t.Errorf("w=%d: PRT uses %d PEs, want %d", w, prt.ArraySize, w)
		}
		if direct.T != 6*w-5 {
			t.Errorf("w=%d: direct T=%d, want %d", w, direct.T, 6*w-5)
		}
		if prt.T > direct.T {
			t.Errorf("w=%d: PRT T=%d slower than direct %d", w, prt.T, direct.T)
		}
		if !prt.Y.Equal(direct.Y, 0) {
			t.Errorf("w=%d: results differ", w)
		}
	}
}

// TestDBTBeatsBaselines (E9): on the same fixed array, DBT's measured
// utilization exceeds block-flush, which in turn beats what direct band
// would achieve; and DBT needs zero external operations.
func TestDBTBeatsBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	w, nb, mb := 4, 4, 4
	a := matrix.RandomDense(rng, nb*w, mb*w, 3)
	x := matrix.RandomVector(rng, mb*w, 3)

	dbtRes, err := core.NewMatVecSolver(w).Solve(a, x, nil, core.MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flush := BlockFlush(a, x, nil, w)
	direct := DirectBand(a, x, nil)

	if dbtRes.Stats.Utilization <= flush.Utilization {
		t.Errorf("DBT η=%.4f not above flush η=%.4f", dbtRes.Stats.Utilization, flush.Utilization)
	}
	if flush.Utilization <= direct.Utilization {
		t.Errorf("flush η=%.4f not above direct η=%.4f", flush.Utilization, direct.Utilization)
	}
	if flush.ExternalOps == 0 {
		t.Error("flush baseline should need external ops")
	}
	// Levels: ≈½ vs w/(4w−3) (→¼) vs ≈⅛ (here 0.481 / 0.308 / 0.091).
	if dbtRes.Stats.Utilization < 0.45 || flush.Utilization > 0.32 || direct.Utilization > 0.13 {
		t.Errorf("levels: DBT %.3f (≈.5), flush %.3f (≈.25), direct %.3f (≈.125)",
			dbtRes.Stats.Utilization, flush.Utilization, direct.Utilization)
	}
	// And DBT on the fixed array is faster end-to-end than block flushing.
	if dbtRes.Stats.T >= flush.T {
		t.Errorf("DBT T=%d not below flush T=%d", dbtRes.Stats.T, flush.T)
	}
	_ = analysis.MatVecSteps // keep the analysis linkage explicit
}
