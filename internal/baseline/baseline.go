// Package baseline implements the comparison points the paper positions DBT
// against (§1 and ref /6/):
//
//   - DirectBand: use Kung's band array on the dense matrix as-is. A dense
//     n×m matrix is a band matrix of bandwidth n+m−1, so the array size must
//     grow with the problem ("a particular design is made to suit the size
//     of a given data structure") and utilization collapses toward
//     nm/((n+m−1)·T) ≈ ⅛ for square matrices.
//   - BlockFlush: partition A into w×w blocks and run each block as an
//     independent problem on the fixed array, flushing between blocks and
//     accumulating partial results on the host (the partitioned-matrix
//     approach of Hwang & Cheng, ref /2/, without the paper's feedback).
//     Fixed array, but T = n̄m̄(4w−3) and ~n(m̄−1) external additions.
//   - PRT (Priester et al., ref /6/): a single w×w dense block on a w-sized
//     array; the paper notes it is exactly DBT-by-rows with n̄ = m̄ = 1.
//
// All three run on the same cycle-accurate linear array simulator as DBT,
// so their step counts and utilizations are measured, not assumed.
package baseline

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/matrix"
)

// Result reports a baseline run.
type Result struct {
	Y matrix.Vector
	// ArraySize is the number of PEs the scheme required.
	ArraySize int
	// T is the total measured step count.
	T int
	// Utilization is useful ops / (ArraySize · T).
	Utilization float64
	// ExternalOps counts host-side arithmetic the scheme needs (DBT's
	// selling point is that this is zero).
	ExternalOps int
}

// DirectBand computes y = A·x + b by treating the dense matrix as a band
// matrix of bandwidth n+m−1 on an array sized to match. It demonstrates the
// size dependence DBT removes: the PE count grows with the problem.
func DirectBand(a *matrix.Dense, x, b matrix.Vector) *Result {
	n, m := a.Rows(), a.Cols()
	if len(x) != m {
		panic(fmt.Sprintf("baseline: len(x)=%d, want %d", len(x), m))
	}
	w := n + m - 1
	// Row i of the band holds A[i][0..m) at diagonals (n−1−i)..(n−1−i+m−1);
	// shifting columns by n−1 makes it an upper band: col j' = j + n − 1.
	xbar := make(matrix.Vector, n+w-1) // = 2n+m−2
	copy(xbar[n-1:], x)
	prog := &linear.Program{
		Rows: n,
		X:    xbar,
		BandAt: func(i, jp int) float64 {
			j := jp - (n - 1)
			if j < 0 || j >= m {
				return 0
			}
			return a.At(i, j)
		},
		YInit: func(i int) linear.YInit {
			if b == nil {
				return linear.YInit{}
			}
			return linear.YInit{Value: b[i]}
		},
	}
	res := linear.New(w).Run(prog)
	return &Result{
		Y:           matrix.Vector(res.Y[0]).Clone(),
		ArraySize:   w,
		T:           res.T,
		Utilization: float64(n*m) / (float64(w) * float64(res.T)),
	}
}

// BlockFlush computes y = A·x + b on a fixed w-PE array by running every
// w×w block as an isolated PRT-style problem and summing the partial
// results outside the array. The array is flushed between blocks: block
// (r, s) starts only after block (r, s−1) has fully drained.
func BlockFlush(a *matrix.Dense, x, b matrix.Vector, w int) *Result {
	if len(x) != a.Cols() {
		panic(fmt.Sprintf("baseline: len(x)=%d, want %d", len(x), a.Cols()))
	}
	g := blockpart.Partition(a, w)
	xp := x.Pad(g.BlockCols * w)
	arr := linear.New(w)
	y := matrix.NewVector(g.BlockRows * w)
	totalT := 0
	external := 0
	for r := 0; r < g.BlockRows; r++ {
		for s := 0; s < g.BlockCols; s++ {
			blk := g.Block(r, s)
			xs := xp.Block(s, w)
			// One-block DBT (the PRT transformation): Ū_0 = U, L̄_0 = L,
			// x̄ = xs ++ xs[:w−1].
			xbar := append(xs.Clone(), xs[:w-1]...)
			prog := &linear.Program{
				Rows: w,
				X:    xbar,
				BandAt: func(i, j int) float64 {
					if j < w {
						return blk.At(i, j) // upper triangle position (j ≥ i)
					}
					return blk.At(i, j-w) // strictly lower, next square
				},
				YInit: func(int) linear.YInit { return linear.YInit{} },
			}
			res := arr.Run(prog)
			totalT += res.T // flush: next block starts after full drain
			for i := 0; i < w; i++ {
				y[r*w+i] += res.Y[0][i]
				if s > 0 {
					external++ // host-side accumulation
				}
			}
		}
	}
	if b != nil {
		for i := range b {
			y[i] += b[i]
			external++
		}
	}
	n := g.BlockRows * g.BlockCols * w * w
	return &Result{
		Y:           y[:a.Rows()],
		ArraySize:   w,
		T:           totalT,
		Utilization: float64(n) / (float64(w) * float64(totalT)),
		ExternalOps: external,
	}
}

// PRT computes y = A·x + b for a single w×w dense block on a w-PE array
// (Priester et al.; DBT-by-rows with n̄ = m̄ = 1). A must be w×w.
func PRT(a *matrix.Dense, x, b matrix.Vector, w int) (*Result, error) {
	if a.Rows() != w || a.Cols() != w {
		return nil, fmt.Errorf("baseline: PRT needs a %d×%d matrix, got %d×%d", w, w, a.Rows(), a.Cols())
	}
	s := core.NewMatVecSolver(w)
	res, err := s.Solve(a, x, b, core.MatVecOptions{})
	if err != nil {
		return nil, err
	}
	return &Result{
		Y:           res.Y,
		ArraySize:   w,
		T:           res.Stats.T,
		Utilization: res.Stats.Utilization,
	}, nil
}

// BlockFlushSteps returns the closed-form step count n̄·m̄·(4w−3) of the
// flush baseline, for the analysis tables.
func BlockFlushSteps(w, nbar, mbar int) int { return nbar * mbar * (4*w - 3) }

// DirectBandSteps returns the closed-form step count 2n + 2(n+m−1) − 3 of
// the direct band baseline.
func DirectBandSteps(n, m int) int { return 2*n + 2*(n+m-1) - 3 }
