package systolic

import (
	"testing"
)

func TestTraceRecordAndQuery(t *testing.T) {
	var tr Trace
	tr.Record(Event{Cycle: 2, Port: PortX, Index: 1})
	tr.Record(Event{Cycle: 0, Port: PortX, Index: 0})
	tr.Record(Event{Cycle: 2, Port: PortYIn, Index: 9})
	if got := len(tr.AtCycle(2)); got != 2 {
		t.Errorf("AtCycle(2) has %d events, want 2", got)
	}
	xs := tr.ByPort(PortX)
	if len(xs) != 2 || xs[0].Cycle != 0 || xs[1].Cycle != 2 {
		t.Error("ByPort not sorted by cycle")
	}
	// Nil trace is a no-op sink.
	var nilTrace *Trace
	nilTrace.Record(Event{})
}

func TestPortStrings(t *testing.T) {
	names := map[Port]string{
		PortX: "x", PortYIn: "y-in", PortYOut: "y-out", PortA: "a",
		PortB: "b", PortCIn: "c-in", PortCOut: "c-out", Port(99): "Port(99)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d: %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestActivityUtilization(t *testing.T) {
	a := NewActivity(4)
	a.MACs[0] = 10
	a.MACs[3] = 10
	a.Cycles = 10
	if a.Total() != 20 {
		t.Error("Total broken")
	}
	if got := a.Utilization(); got != 0.5 {
		t.Errorf("Utilization=%g, want 0.5", got)
	}
	if (&Activity{}).Utilization() != 0 {
		t.Error("empty activity must be 0")
	}
}

func TestFeedbackObservations(t *testing.T) {
	obs := []FeedbackObservation{
		{EmitCycle: 5, InjectCycle: 8},
		{EmitCycle: 7, InjectCycle: 10},
		{EmitCycle: 0, InjectCycle: 20, Irregular: true},
	}
	if obs[0].Delay() != 3 {
		t.Error("Delay broken")
	}
	reg, irr := DelayHistogram(obs)
	if reg[3] != 2 || len(irr) != 1 || irr[20] != 1 {
		t.Errorf("histogram broken: %v %v", reg, irr)
	}
	if MaxDelay(obs) != 20 {
		t.Error("MaxDelay broken")
	}
	if MaxDelay(nil) != 0 {
		t.Error("MaxDelay(nil) must be 0")
	}
}

func TestRegisterDemand(t *testing.T) {
	obs := []FeedbackObservation{
		{EmitCycle: 0, InjectCycle: 4},
		{EmitCycle: 0, InjectCycle: 6},
		{EmitCycle: 0, InjectCycle: 3, Irregular: true},
	}
	demand := RegisterDemand(obs, func(o FeedbackObservation) string {
		if o.Irregular {
			return "irregular"
		}
		return "regular"
	})
	if demand["regular"] != 6 || demand["irregular"] != 3 {
		t.Errorf("RegisterDemand broken: %v", demand)
	}
}
