// Package systolic provides the shared infrastructure for the cycle-accurate
// structural simulators of Kung's contraflow arrays: boundary-port trace
// events, per-PE activity accounting and feedback delay measurement.
//
// One simulator clock tick equals one paper "step": every register in an
// array shifts once per tick and every PE may perform at most one
// multiply–accumulate per tick.
package systolic

import (
	"fmt"
	"sort"
)

// Port identifies a boundary port class of an array.
type Port int

const (
	// PortX is the x stream input of the linear array (enters PE 0).
	PortX Port = iota
	// PortYIn is the ȳ initialization input of the linear array (enters PE w−1).
	PortYIn
	// PortYOut is the ȳ output of the linear array (leaves PE 0).
	PortYOut
	// PortA is a coefficient input (top of the linear array / NW edge of the hex array).
	PortA
	// PortB is the hexagonal array's B-operand input (NE edge).
	PortB
	// PortCIn is the hexagonal array's c-stream initialization input (S edges).
	PortCIn
	// PortCOut is the hexagonal array's c-stream output (N edges).
	PortCOut
)

func (p Port) String() string {
	switch p {
	case PortX:
		return "x"
	case PortYIn:
		return "y-in"
	case PortYOut:
		return "y-out"
	case PortA:
		return "a"
	case PortB:
		return "b"
	case PortCIn:
		return "c-in"
	case PortCOut:
		return "c-out"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// Event is one boundary observation: a value crossing a port at a cycle.
type Event struct {
	Cycle int
	Port  Port
	// Prog distinguishes overlapped problems sharing the array.
	Prog int
	// Index is the stream element index (band row or column, or an encoded
	// band position for the hexagonal array).
	Index int
	Value float64
}

// Trace records boundary events of a run in cycle order.
type Trace struct {
	Events []Event
}

// Record appends an event.
func (tr *Trace) Record(e Event) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, e)
}

// AtCycle returns the events of one cycle, in recording order.
func (tr *Trace) AtCycle(t int) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Cycle == t {
			out = append(out, e)
		}
	}
	return out
}

// ByPort returns the events of one port sorted by cycle.
func (tr *Trace) ByPort(p Port) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Port == p {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// Activity accumulates per-PE multiply–accumulate counts.
type Activity struct {
	// MACs[pe] counts useful operations executed by that PE.
	MACs []int
	// Cycles is the total step count T of the run.
	Cycles int
}

// NewActivity returns accounting for n PEs.
func NewActivity(n int) *Activity { return &Activity{MACs: make([]int, n)} }

// Total returns the total MAC count across PEs.
func (a *Activity) Total() int {
	s := 0
	for _, m := range a.MACs {
		s += m
	}
	return s
}

// Utilization returns total MACs / (PEs × cycles) — the paper's η = N/(A·T).
func (a *Activity) Utilization() float64 {
	if a.Cycles == 0 || len(a.MACs) == 0 {
		return 0
	}
	return float64(a.Total()) / (float64(len(a.MACs)) * float64(a.Cycles))
}

// FeedbackObservation measures one realized feedback edge: a value that left
// the array at EmitCycle and re-entered at InjectCycle. Delay is the number
// of cycles the value spends in external registers (InjectCycle − EmitCycle),
// which is also the register chain length needed to realize the edge.
type FeedbackObservation struct {
	// SrcIndex and DstIndex identify producing and consuming stream elements.
	SrcIndex, DstIndex int
	EmitCycle          int
	InjectCycle        int
	// Irregular marks the matmul region-crossing feedbacks (paper §3).
	Irregular bool
}

// Delay returns InjectCycle − EmitCycle.
func (f FeedbackObservation) Delay() int { return f.InjectCycle - f.EmitCycle }

// DelayHistogram groups observations by delay, split by regularity.
func DelayHistogram(obs []FeedbackObservation) (regular, irregular map[int]int) {
	regular = make(map[int]int)
	irregular = make(map[int]int)
	for _, o := range obs {
		if o.Irregular {
			irregular[o.Delay()]++
		} else {
			regular[o.Delay()]++
		}
	}
	return regular, irregular
}

// MaxDelay returns the largest observed delay, 0 when empty.
func MaxDelay(obs []FeedbackObservation) int {
	max := 0
	for _, o := range obs {
		if d := o.Delay(); d > max {
			max = d
		}
	}
	return max
}

// RegisterDemand computes the total number of external memory elements
// needed to realize a set of feedback edges when each edge class is served
// by a register chain of its maximum delay. Edges are grouped by the given
// classifier.
func RegisterDemand(obs []FeedbackObservation, class func(FeedbackObservation) string) map[string]int {
	out := make(map[string]int)
	for _, o := range obs {
		c := class(o)
		if d := o.Delay(); d > out[c] {
			out[c] = d
		}
	}
	return out
}
