// Package stream is the sharded stream-scheduler runtime: a persistent
// fleet of simulated systolic arrays serving a continuous stream of matrix
// problems, the way the paper's fixed arrays serve one logical problem
// after another. It unifies the repository's two older parallel runtimes —
// the one-shot core.Batch worker pool and the intra-solve core.Executor
// pass pool — over a single core.Fleet, so one worker budget carries
// inter-problem jobs and intra-solve passes at once without
// oversubscription.
//
// A Scheduler owns the fleet. Jobs are submitted asynchronously and routed
// by shape affinity: problems of the same shape hash to the same shard,
// whose private schedule.PlanMemo (inside its core.Arena) already holds the
// compiled plan, so the steady state of a repeating-shape stream replays
// plans without touching the global caches — and, on the Into job variants,
// without allocating at all. Sparse jobs extend the same idea to data: they
// route by pattern affinity (shape plus the retained-block pattern digest,
// sparse.PatternKey), so a repeating sparsity pattern replays its shard's
// memoized pattern-keyed plan. Solve jobs extend it to the paper's
// headline workload: a SubmitSolve ticket runs the full direct solve
// (BlockLU plus both triangular phases) on a warm solve.Workspace the
// shard's arena pools per array size, so solve-as-a-service streams at the
// same warm steady state as the pass jobs. Idle shards steal from sibling
// queues, so affinity is a locality heuristic, never a load-balance
// hazard.
//
// Admission is controlled per scheduler: every shard queue is bounded, and
// a full queue either blocks the submitter (Block, the default) or fails
// fast with ErrSaturated so a load-shedding caller can drop or retry
// (Shed). Results come back through typed one-shot tickets; Flush drains
// everything in flight and Close retires the fleet.
//
// Determinism: a job's result and statistics never depend on the shard that
// runs it, on stealing, or on the shard count — every job is solved by the
// same engine code paths as a serial core call, so a stream run is
// DeepEqual to solving the same problems one by one (the cross-runtime
// equivalence suite and cmd/soak's stream category enforce this).
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/solve"
)

// Policy selects what Submit does when the routed shard queue is full.
type Policy int

const (
	// Block makes Submit wait for queue space — backpressure for callers
	// that must not lose work. Stealing keeps the wait bounded by queue
	// service time.
	Block Policy = iota
	// Shed makes Submit try every shard without blocking and return
	// ErrSaturated when all queues are full — load shedding for callers
	// with their own drop or retry policy.
	Shed
)

// String names the policy for logs and error messages.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ErrSaturated is returned by Submit under the Shed policy when every shard
// queue is full. The job was not enqueued; the caller owns the retry/drop
// decision.
var ErrSaturated = errors.New("stream: every shard queue is full")

// ErrClosed is returned by submissions after Close.
var ErrClosed = core.ErrClosed

// Config sizes a Scheduler. The zero value is ready to use: GOMAXPROCS
// shards, the default queue bound, blocking admission, no fault
// injection.
type Config struct {
	// Shards is the number of simulated arrays (values < 1 mean GOMAXPROCS).
	Shards int
	// QueueBound caps each shard's work queue (values < 1 mean
	// core.DefaultQueueBound).
	QueueBound int
	// Policy selects the admission behavior when a queue is full.
	Policy Policy
	// Injector, when non-nil, induces deterministic faults (forced sheds,
	// delays, panics, shard stalls) for chaos testing; nil — the default —
	// costs one pointer check per job. See Injector.
	Injector *Injector
}

// Scheduler is the persistent stream runtime; see the package comment for
// the model. Create one with New, submit with the Submit* methods, drain
// with Flush, retire with Close.
type Scheduler struct {
	fleet  *core.Fleet
	policy Policy
	inject *Injector
	jobs   sync.Pool
	closed atomic.Bool
	seq    atomic.Uint64  // job sequence numbers, for the injector
	ewma   []atomic.Int64 // per-shard service-time EWMA, nanoseconds

	submitted atomic.Uint64
	completed atomic.Uint64
	shed      [2]atomic.Uint64 // per-Priority rejections
	expired   atomic.Uint64
	panics    atomic.Uint64
}

// Stats is a point-in-time snapshot of a scheduler's admission and
// failure counters. The json tags fix the wire names operational
// surfaces (cmd/solved's /stats) serve.
type Stats struct {
	// Shards is the fleet size.
	Shards int `json:"shards"`
	// Submitted counts accepted jobs, Completed finished ones (normally,
	// by expiry, or by a recovered panic — every accepted job completes
	// exactly once); the difference is the in-flight depth.
	Submitted uint64 `json:"submitted"`
	// Completed counts finished jobs; see Submitted.
	Completed uint64 `json:"completed"`
	// Shed counts submissions rejected without being enqueued — queue
	// saturation (ErrSaturated, injected or real) and predicted-wait
	// deadline sheds (DeadlineError) — across both priorities.
	Shed uint64 `json:"shed"`
	// ShedHigh breaks Shed down to the High admission class.
	ShedHigh uint64 `json:"shed_high"`
	// ShedLow breaks Shed down to the Low admission class.
	ShedLow uint64 `json:"shed_low"`
	// Expired counts jobs whose deadline passed before they ran — at
	// admission or while queued — each resolved with the typed expiry
	// error, never a garbage result.
	Expired uint64 `json:"expired"`
	// Panics counts job panics recovered into per-job errors; every one
	// left its shard serving.
	Panics uint64 `json:"panics"`
}

// New starts a scheduler per cfg. Close it when done.
func New(cfg Config) *Scheduler {
	s := &Scheduler{
		fleet:  core.NewFleet(cfg.Shards, cfg.QueueBound),
		policy: cfg.Policy,
		inject: cfg.Injector,
	}
	s.ewma = make([]atomic.Int64, s.fleet.Shards())
	s.jobs.New = func() interface{} { return &job{s: s, done: make(chan struct{}, 1)} }
	return s
}

// Shards returns the number of simulated arrays.
func (s *Scheduler) Shards() int { return s.fleet.Shards() }

// QueueDepth returns the number of jobs currently queued on shard (not
// counting the one being served) — the load signal behind admission's
// predicted waits, exposed for operational surfaces like cmd/solved's
// /stats endpoint. Shards outside [0, Shards()) panic.
func (s *Scheduler) QueueDepth(shard int) int { return s.fleet.QueueLen(shard) }

// ServiceEWMA returns shard's service-time EWMA — the per-shard latency
// signal admission multiplies by queue depth to predict waits (zero until
// the shard serves its first job), exposed for operational surfaces like
// cmd/solved's /stats endpoint. Shards outside [0, Shards()) panic.
func (s *Scheduler) ServiceEWMA(shard int) time.Duration {
	return time.Duration(s.ewma[shard].Load())
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	high, low := s.shed[High].Load(), s.shed[Low].Load()
	return Stats{
		Shards:    s.fleet.Shards(),
		Submitted: s.submitted.Load(),
		Completed: s.completed.Load(),
		Shed:      high + low,
		ShedHigh:  high,
		ShedLow:   low,
		Expired:   s.expired.Load(),
		Panics:    s.panics.Load(),
	}
}

// Flush blocks until every accepted job has finished. Tickets stay
// redeemable afterwards (their Waits return immediately). Flush must not
// race with Submit calls from other goroutines.
func (s *Scheduler) Flush() { s.fleet.Flush() }

// Close flushes the stream and stops the fleet. Submissions after Close
// return ErrClosed; unredeemed tickets from before Close stay redeemable.
// Close is idempotent. Executors created by NewExecutor must be done
// before Close.
func (s *Scheduler) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.fleet.Close()
}

// NewExecutor returns a pass executor running on this scheduler's fleet,
// for wiring into solve.Options.Executor: one worker budget then serves
// the problem stream and the intra-solve pass fan-out together. Use it
// from host goroutines only — a stream job must not block on an executor
// backed by its own scheduler (its barrier could wait on passes queued
// behind the very shard it occupies). The executor shares the fleet, so
// close the executor before the scheduler.
func (s *Scheduler) NewExecutor() *core.Executor {
	return core.NewExecutorFleet(s.fleet)
}

// MatVecBatch solves a one-shot slice of problems on the scheduler's fleet
// with blocking admission — the batch-API compatibility path
// (core.MatVecSolver.SolveBatch routes through the same substrate, just on
// a transient fleet). Results align with problems; on error the failing
// entries are nil and a joined error covering every failing index is
// returned alongside the successful results.
func (s *Scheduler) MatVecBatch(w int, problems []core.MatVecProblem) ([]*core.MatVecResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	solver := core.NewMatVecSolver(w)
	return core.BatchOn(s.fleet, problems, func(p core.MatVecProblem) (*core.MatVecResult, error) {
		return solver.Solve(p.A, p.X, p.B, p.Opts)
	})
}

// MatMulBatch is MatVecBatch for matrix–matrix problems.
func (s *Scheduler) MatMulBatch(w int, problems []core.MatMulProblem) ([]*core.MatMulResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	solver := core.NewMatMulSolver(w)
	return core.BatchOn(s.fleet, problems, func(p core.MatMulProblem) (*core.MatMulResult, error) {
		return solver.Solve(p.A, p.B, p.Opts)
	})
}

// get draws a recycled job, stamps its sequence number and attaches its
// QoS.
func (s *Scheduler) get(q QoS) *job {
	j := s.jobs.Get().(*job)
	j.seq = s.seq.Add(1)
	j.deadline, j.prio = q.Deadline, q.Priority
	return j
}

// release scrubs a redeemed job and recycles it. Only Wait releases jobs —
// a never-redeemed ticket's job is dropped to the garbage collector rather
// than recycled with a stale completion signal.
func (s *Scheduler) release(j *job) {
	j.dst, j.a, j.x, j.b = nil, nil, nil, nil
	j.mdst, j.ma, j.mb, j.me = nil, nil, nil, nil
	j.sp = nil
	j.xs, j.bs, j.dsts = nil, nil, nil
	j.mvp, j.mmp = core.MatVecProblem{}, core.MatMulProblem{}
	j.mvres, j.mmres, j.spres, j.spmany = nil, nil, nil, nil
	j.svx, j.svstats = nil, solve.SolveStats{}
	j.pivot, j.refine = solve.PivotNone, solve.RefineOptions{}
	j.steps, j.err = 0, nil
	j.deadline, j.prio, j.seq = time.Time{}, High, 0
	s.jobs.Put(j)
}

// enqueue routes one job to its affinity shard under the scheduler's
// admission policy and the job's QoS, reclaiming the job on every
// failure path. Admission order: injected faults, deadline feasibility
// (predicted wait vs. remaining slack, with deadline-aware rerouting to
// the fastest shard when the affinity shard cannot make it), then the
// policy/priority queue-space rules.
func (s *Scheduler) enqueue(j *job, shard int) error {
	if s.closed.Load() {
		s.release(j)
		return ErrClosed
	}
	if s.inject != nil {
		if err := s.inject.admission(j.seq); err != nil {
			s.shed[j.prio].Add(1)
			s.release(j)
			return err
		}
	}
	if !j.deadline.IsZero() {
		slack := time.Until(j.deadline)
		if slack <= 0 {
			s.expired.Add(1)
			s.release(j)
			return &DeadlineError{Expired: true}
		}
		if wait := s.predictedWait(shard); wait > slack {
			// The affinity shard cannot make the deadline; take the
			// fastest sibling if one can, otherwise shed now with the
			// best prediction — failing in nanoseconds, not after the
			// deadline has already passed.
			best, bestShard := wait, shard
			for d := 1; d < s.fleet.Shards(); d++ {
				c := (shard + d) % s.fleet.Shards()
				if wc := s.predictedWait(c); wc < best {
					best, bestShard = wc, c
				}
			}
			if best > slack {
				s.shed[j.prio].Add(1)
				s.release(j)
				return &DeadlineError{PredictedWait: best}
			}
			shard = bestShard
		}
	}
	if s.policy == Block && j.prio == High {
		if err := s.fleet.SubmitTo(shard, j); err != nil {
			s.release(j)
			return err
		}
		s.submitted.Add(1)
		return nil
	}
	// Shed policy, or a Low job under either policy: never block. High
	// scans every sibling; Low sheds at the first full queue.
	span := s.fleet.Shards()
	if j.prio == Low {
		span = 1
	}
	for d := 0; d < span; d++ {
		ok, err := s.fleet.TrySubmitTo((shard+d)%s.fleet.Shards(), j)
		if err != nil {
			s.release(j)
			return err
		}
		if ok {
			s.submitted.Add(1)
			return nil
		}
	}
	s.shed[j.prio].Add(1)
	s.release(j)
	return ErrSaturated
}

// shardOf hashes a job's shape key onto a shard: same shape, same shard,
// so the shard's plan memo already holds the compiled plan.
func shardOf(shards int, kind jobKind, d0, d1, d2, d3 int) int {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range [5]int{int(kind), d0, d1, d2, d3} {
		h ^= uint64(v) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	}
	return int(h % uint64(shards))
}
