package stream

import (
	"fmt"
	"time"
)

// Injector induces deterministic faults in a scheduler for chaos testing:
// forced admission sheds, execution delays, forced job panics and a
// stalled shard. Every decision is a pure function of (Seed, the job's
// sequence number, a per-fault salt), so a run with the same seed and the
// same submission order fails the same jobs — the soak harness's chaos
// category replays faults bit-identically and asserts that every
// non-faulted job still matches its serial solve.
//
// An Injector is attached through Config.Injector, is read-only once the
// scheduler is running, and may be shared across schedulers. The zero
// value injects nothing.
type Injector struct {
	// Seed keys the fault pattern; different seeds fail different jobs.
	Seed int64
	// ShedEvery, when > 0, rejects roughly one admission in ShedEvery with
	// ErrSaturated before the job is enqueued (counted as shed).
	ShedEvery int
	// PanicEvery, when > 0, panics roughly one job in PanicEvery at the
	// start of its execution; the fleet recovers it into the job's
	// *core.PanicError and the shard keeps serving.
	PanicEvery int
	// DelayEvery, when > 0, sleeps Delay at the start of roughly one job
	// execution in DelayEvery — latency noise for deadline tests.
	DelayEvery int
	// Delay is the sleep injected by DelayEvery.
	Delay time.Duration
	// StallShard, with StallDelay > 0, names one shard whose every job is
	// slowed by StallDelay — a degraded array for testing predicted-wait
	// shedding and work stealing.
	StallShard int
	// StallDelay is the per-job slowdown of StallShard (0 disables the
	// stall).
	StallDelay time.Duration
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// to turn (seed, sequence, salt) into an independent fault draw.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hits reports whether the fault salted with salt fires for job seq at
// rate 1/every.
func (in *Injector) hits(seq uint64, salt uint64, every int) bool {
	if every <= 0 {
		return false
	}
	return splitmix64(uint64(in.Seed)^seq^salt)%uint64(every) == 0
}

// admission runs the admission-time faults for job seq: a forced shed
// returns ErrSaturated (the same error real saturation produces, so caller
// retry logic is exercised), nil admits the job.
func (in *Injector) admission(seq uint64) error {
	if in.hits(seq, 0xADD1551, in.ShedEvery) {
		return ErrSaturated
	}
	return nil
}

// perturb runs the execution-time faults for job seq on the running
// shard: the stalled-shard slowdown, the random delay, then — last, so
// the delays still land — the forced panic. The panic value names the
// seed and job so a recovered *core.PanicError is traceable to the
// injection that caused it.
func (in *Injector) perturb(shard int, seq uint64) {
	if in.StallDelay > 0 && shard == in.StallShard {
		time.Sleep(in.StallDelay)
	}
	if in.hits(seq, 0xDE1A7, in.DelayEvery) && in.Delay > 0 {
		time.Sleep(in.Delay)
	}
	if in.hits(seq, 0xBADC0DE, in.PanicEvery) {
		panic(fmt.Sprintf("stream: injected panic (seed %d, job %d)", in.Seed, seq))
	}
}
