package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPanicHammer is the panic-isolation acceptance test: a stream with an
// injector forcing panics keeps all of its shards serving — every ticket
// redeems, panicked jobs carry structured *core.PanicError values with
// stacks, non-panicked jobs return results DeepEqual to the serial path,
// and every accepted job completes exactly once. Runs at shard counts
// {1, 2, NumCPU}.
func TestPanicHammer(t *testing.T) {
	const n = 80
	for _, shards := range shardLadder() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(600 + shards)))
			cases := randomCases(t, rng, n)
			s := New(Config{Shards: shards, Injector: &Injector{Seed: 42, PanicEvery: 5}})
			defer s.Close()

			mvT := make([]MatVecTicket, n)
			mmT := make([]MatMulTicket, n)
			for i, c := range cases {
				var err error
				if c.mv != nil {
					mvT[i], err = s.SubmitMatVec(c.w, *c.mv)
				} else {
					mmT[i], err = s.SubmitMatMul(c.w, *c.mm)
				}
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}

			panics := 0
			for i, c := range cases {
				var err error
				if c.mv != nil {
					var res *core.MatVecResult
					res, err = mvT[i].Wait()
					if err == nil && !reflect.DeepEqual(res, c.wantMV) {
						t.Errorf("job %d result diverged from serial", i)
					}
				} else {
					var res *core.MatMulResult
					res, err = mmT[i].Wait()
					if err == nil && !reflect.DeepEqual(res, c.wantMM) {
						t.Errorf("job %d result diverged from serial", i)
					}
				}
				if err != nil {
					if !errors.Is(err, core.ErrPanicked) {
						t.Fatalf("job %d failed with %v, want a recovered panic", i, err)
					}
					var perr *core.PanicError
					if !errors.As(err, &perr) || len(perr.Stack) == 0 {
						t.Fatalf("job %d panic error %#v lacks a stack", i, err)
					}
					panics++
				}
			}
			if panics == 0 {
				t.Fatal("injector fired no panics — the hammer tested nothing")
			}
			st := s.Stats()
			if st.Submitted != n || st.Completed != n {
				t.Errorf("stats %+v, want %d submitted and completed", st, n)
			}
			if st.Panics != uint64(panics) {
				t.Errorf("Stats.Panics = %d, observed %d panic errors", st.Panics, panics)
			}
		})
	}
}

// TestForcedShedInjection: injected admission sheds surface as ErrSaturated
// even on an empty scheduler, are deterministic, are counted in Stats, and
// never touch the jobs that were admitted.
func TestForcedShedInjection(t *testing.T) {
	const n = 60
	p, want := qosProblem(t)
	s := New(Config{Shards: 2, Injector: &Injector{Seed: 7, ShedEvery: 4}})
	defer s.Close()

	shedCount := 0
	for i := 0; i < n; i++ {
		tk, err := s.SubmitMatVec(2, p)
		if err != nil {
			if !errors.Is(err, ErrSaturated) {
				t.Fatalf("submit %d: %v, want ErrSaturated", i, err)
			}
			shedCount++
			continue
		}
		if res, err := tk.Wait(); err != nil || !res.Y.Equal(want, 0) {
			t.Fatalf("admitted job %d: %v %v", i, res, err)
		}
	}
	if shedCount == 0 {
		t.Fatal("injector shed nothing")
	}
	st := s.Stats()
	if st.Shed != uint64(shedCount) {
		t.Errorf("Stats.Shed = %d, observed %d forced sheds", st.Shed, shedCount)
	}
	if st.Submitted != uint64(n-shedCount) || st.Completed != st.Submitted {
		t.Errorf("stats %+v, want %d submitted and completed", st, n-shedCount)
	}
}

// TestInjectorDeterminism: the same seed and submission order fail the
// same jobs — the property the chaos soak's replays rely on.
func TestInjectorDeterminism(t *testing.T) {
	p, _ := qosProblem(t)
	failures := func(seed int64) []int {
		s := New(Config{Shards: 2, Injector: &Injector{Seed: seed, ShedEvery: 3, PanicEvery: 4}})
		defer s.Close()
		var failed []int
		tks := make([]MatVecTicket, 0, 40)
		idx := make([]int, 0, 40)
		for i := 0; i < 40; i++ {
			tk, err := s.SubmitMatVec(2, p)
			if err != nil {
				failed = append(failed, i) // admission shed
				continue
			}
			tks = append(tks, tk)
			idx = append(idx, i)
		}
		for k, tk := range tks {
			if _, err := tk.Wait(); err != nil {
				failed = append(failed, idx[k]) // recovered panic
			}
		}
		return failed
	}
	a, b := failures(99), failures(99)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed failed different jobs: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("seed 99 injected nothing — determinism untested")
	}
}

// TestStalledShardDelay: the stalled-shard fault slows its victim without
// corrupting results, and the slowdown lands in the shard's EWMA so
// deadline admission can see it.
func TestStalledShardDelay(t *testing.T) {
	p, want := qosProblem(t)
	s := New(Config{Shards: 1, Injector: &Injector{StallShard: 0, StallDelay: 5 * time.Millisecond}})
	defer s.Close()
	tk, err := s.SubmitMatVec(2, p)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk.Wait(); err != nil || !res.Y.Equal(want, 0) {
		t.Fatalf("stalled job: %v %v", res, err)
	}
	if got := time.Duration(s.ewma[0].Load()); got < 5*time.Millisecond {
		t.Errorf("shard EWMA %v did not absorb the %v stall", got, 5*time.Millisecond)
	}
}
