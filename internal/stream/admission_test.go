package stream

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
)

// qosProblem returns a small matvec problem with its serial reference.
func qosProblem(t *testing.T) (core.MatVecProblem, matrix.Vector) {
	t.Helper()
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	p := core.MatVecProblem{A: a, X: matrix.Vector{1, 1}}
	return p, matrix.Vector{3, 7}
}

// TestExpiryWhileQueued: a job admitted in time whose deadline passes while
// it sits behind a stalled shard is skipped — its ticket resolves to the
// typed expiry error, Stats.Expired counts it, and the workload never runs.
func TestExpiryWhileQueued(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	p, _ := qosProblem(t)

	// Occupy the only shard so the job queues behind the gate.
	gate := make(chan struct{})
	running := make(chan struct{})
	ex := s.NewExecutor()
	ex.Submit(func(int, *core.Arena) {
		close(running)
		<-gate
	})
	<-running

	deadline := time.Now().Add(10 * time.Millisecond)
	tk, err := s.SubmitMatVecQoS(2, p, QoS{Deadline: deadline})
	if err != nil {
		t.Fatalf("submit with live deadline should queue: %v", err)
	}
	// Hold the gate until the deadline is unambiguously in the past.
	for !time.Now().After(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	ex.Barrier()

	res, err := tk.Wait()
	if res != nil {
		t.Error("expired job still produced a result")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ticket error = %v, want ErrDeadlineExceeded", err)
	}
	var derr *DeadlineError
	if !errors.As(err, &derr) || !derr.Expired {
		t.Fatalf("expired ticket error = %#v, want &DeadlineError{Expired: true}", err)
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Errorf("Stats.Expired = %d, want 1", st.Expired)
	}
	if st.Submitted != 1 || st.Completed != 1 {
		t.Errorf("stats %+v: expired job must still complete exactly once", st)
	}
}

// TestPredictedWaitShedding: when every shard's predicted wait (queue depth
// × service-time EWMA) exceeds the deadline slack, admission sheds the job
// synchronously with the prediction attached — failing in nanoseconds
// instead of after the deadline has already passed.
func TestPredictedWaitShedding(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	p, want := qosProblem(t)

	// Teach admission that the only shard is slow (as the injector's
	// stalled-shard fault would, without the wall-clock cost).
	s.observe(0, 500*time.Millisecond)

	start := time.Now()
	_, err := s.SubmitMatVecQoS(2, p, QoS{Deadline: time.Now().Add(50 * time.Millisecond)})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("submit = %v, want ErrDeadlineExceeded", err)
	}
	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Fatalf("submit error %#v is not a *DeadlineError", err)
	}
	if derr.Expired {
		t.Error("predicted-wait shed mislabeled as expiry")
	}
	if derr.PredictedWait < 100*time.Millisecond {
		t.Errorf("PredictedWait = %v, want the ~500ms EWMA prediction", derr.PredictedWait)
	}
	if elapsed > derr.PredictedWait {
		t.Errorf("shed took %v — longer than the %v wait it predicted", elapsed, derr.PredictedWait)
	}
	st := s.Stats()
	if st.Shed != 1 || st.ShedHigh != 1 {
		t.Errorf("stats %+v, want exactly one High shed", st)
	}

	// A job with enough slack — or none at all — is still admitted.
	tk, err := s.SubmitMatVec(2, p)
	if err != nil {
		t.Fatalf("deadline-free submit after a shed: %v", err)
	}
	if res, err := tk.Wait(); err != nil || !res.Y.Equal(want, 0) {
		t.Fatalf("post-shed job: %v %v", res, err)
	}
}

// TestDeadlineReroute: when the affinity shard cannot make the deadline
// but a sibling can, admission reroutes instead of shedding.
func TestDeadlineReroute(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	p, want := qosProblem(t)

	affinity := shardOf(2, matvecFull, 2, p.A.Rows(), p.A.Cols(), int(p.Opts.Engine))
	s.observe(affinity, time.Second) // the affinity shard is hopeless
	// The sibling has no history → optimistic zero prediction.

	tk, err := s.SubmitMatVecQoS(2, p, QoS{Deadline: time.Now().Add(5 * time.Second)})
	if err != nil {
		t.Fatalf("submit should reroute to the fast sibling, got %v", err)
	}
	if res, err := tk.Wait(); err != nil || !res.Y.Equal(want, 0) {
		t.Fatalf("rerouted job: %v %v", res, err)
	}
	if st := s.Stats(); st.Shed != 0 || st.Expired != 0 {
		t.Errorf("stats %+v, want no sheds or expiries after a reroute", st)
	}
}

// TestPriorityClasses: under Block, a Low job never blocks — it sheds at
// its first full queue and is counted in ShedLow — while a High job blocks
// until space frees and then completes.
func TestPriorityClasses(t *testing.T) {
	s := New(Config{Shards: 1, QueueBound: 1, Policy: Block})
	defer s.Close()
	p, want := qosProblem(t)

	gate := make(chan struct{})
	running := make(chan struct{})
	ex := s.NewExecutor()
	ex.Submit(func(int, *core.Arena) {
		close(running)
		<-gate
	})
	<-running
	// Fill the single queue slot.
	tk0, err := s.SubmitMatVec(2, p)
	if err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}

	// Low sheds immediately even under the Block policy.
	if _, err := s.SubmitMatVecQoS(2, p, QoS{Priority: Low}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Low submit into a full queue = %v, want ErrSaturated", err)
	}

	// High blocks; it must still be waiting until the gate opens.
	var highDone atomic.Bool
	highTk := make(chan MatVecTicket, 1)
	go func() {
		tk, err := s.SubmitMatVec(2, p)
		highDone.Store(true)
		if err != nil {
			t.Errorf("blocked High submit failed: %v", err)
		}
		highTk <- tk
	}()
	time.Sleep(20 * time.Millisecond)
	if highDone.Load() {
		t.Fatal("High submit returned while the queue was still full")
	}
	close(gate)
	ex.Barrier()

	if res, err := tk0.Wait(); err != nil || !res.Y.Equal(want, 0) {
		t.Fatalf("queued job: %v %v", res, err)
	}
	if res, err := (<-highTk).Wait(); err != nil || !res.Y.Equal(want, 0) {
		t.Fatalf("unblocked High job: %v %v", res, err)
	}
	st := s.Stats()
	if st.ShedLow != 1 || st.ShedHigh != 0 {
		t.Errorf("stats %+v, want exactly one Low shed and no High sheds", st)
	}
	if st.Submitted != 2 || st.Completed != 2 {
		t.Errorf("stats %+v, want 2 submitted and completed", st)
	}
}

// TestStreamQoSZeroAllocSteadyState: deadline admission must not tax the
// steady state — a warm compiled Into job submitted with a live deadline
// still allocates nothing (the QoS rides in the pooled job; DeadlineError
// is only built on the failure paths).
func TestStreamQoSZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	s := New(Config{Shards: 2})
	defer s.Close()
	a := matrix.FromRows([][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16}})
	x := matrix.Vector{1, 2, 3, 4}
	dst := make(matrix.Vector, 4)
	roundTrip := func() {
		tk, err := s.SubmitMatVecIntoQoS(dst, a, x, nil, 2, core.EngineCompiled, QoS{Deadline: time.Now().Add(time.Hour)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the shard's plan memo and the job pool
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs != 0 {
		t.Errorf("steady-state QoS stream job allocates %v objects/op, want 0", allocs)
	}
}

// TestQoSFromContext: a context deadline becomes the QoS deadline; a
// deadline-free context yields the zero QoS.
func TestQoSFromContext(t *testing.T) {
	if q := QoSFromContext(context.Background()); q != (QoS{}) {
		t.Errorf("QoSFromContext(Background) = %+v, want zero", q)
	}
	d := time.Now().Add(time.Minute)
	ctx, cancel := context.WithDeadline(context.Background(), d)
	defer cancel()
	q := QoSFromContext(ctx)
	if !q.Deadline.Equal(d) {
		t.Errorf("QoSFromContext deadline = %v, want %v", q.Deadline, d)
	}
	if q.Priority != High {
		t.Errorf("QoSFromContext priority = %v, want High", q.Priority)
	}
}

// TestSubmitWithRetry covers the retry helper: saturation is retried with
// backoff until success, attempt caps and deadlines bound the loop, and
// non-retryable errors return immediately.
func TestSubmitWithRetry(t *testing.T) {
	t.Run("succeeds after transient saturation", func(t *testing.T) {
		calls := 0
		err := SubmitWithRetry(Retry{Base: time.Microsecond, Cap: 10 * time.Microsecond}, time.Time{}, func() error {
			if calls++; calls < 4 {
				return ErrSaturated
			}
			return nil
		})
		if err != nil || calls != 4 {
			t.Fatalf("err=%v calls=%d, want nil after 4 attempts", err, calls)
		}
	})
	t.Run("attempt cap returns the last saturation", func(t *testing.T) {
		calls := 0
		err := SubmitWithRetry(Retry{Base: time.Microsecond, Attempts: 3}, time.Time{}, func() error {
			calls++
			return ErrSaturated
		})
		if !errors.Is(err, ErrSaturated) || calls != 3 {
			t.Fatalf("err=%v calls=%d, want ErrSaturated after exactly 3 attempts", err, calls)
		}
	})
	t.Run("deadline bounds the loop", func(t *testing.T) {
		err := SubmitWithRetry(Retry{Base: 10 * time.Millisecond}, time.Now().Add(time.Millisecond), func() error {
			return ErrSaturated
		})
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("err=%v, want ErrDeadlineExceeded", err)
		}
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("err=%v must still match the underlying ErrSaturated", err)
		}
	})
	t.Run("already-expired deadline never submits", func(t *testing.T) {
		// Regression: the deadline used to be checked only before sleeping,
		// so a loop entered with a dead deadline still burned an attempt.
		calls := 0
		err := SubmitWithRetry(Retry{}, time.Now().Add(-time.Millisecond), func() error {
			calls++
			return nil
		})
		if !errors.Is(err, ErrDeadlineExceeded) || calls != 0 {
			t.Fatalf("err=%v calls=%d, want ErrDeadlineExceeded before any attempt", err, calls)
		}
		var de *DeadlineError
		if !errors.As(err, &de) || !de.Expired {
			t.Fatalf("err=%v, want a *DeadlineError with Expired set", err)
		}
	})
	t.Run("already-expired deadline never submits with context", func(t *testing.T) {
		calls := 0
		err := SubmitWithRetryContext(context.Background(), Retry{}, time.Now().Add(-time.Millisecond), func() error {
			calls++
			return nil
		})
		if !errors.Is(err, ErrDeadlineExceeded) || calls != 0 {
			t.Fatalf("err=%v calls=%d, want ErrDeadlineExceeded before any attempt", err, calls)
		}
		var de *DeadlineError
		if !errors.As(err, &de) || !de.Expired {
			t.Fatalf("err=%v, want a *DeadlineError with Expired set", err)
		}
	})
	t.Run("non-retryable errors return immediately", func(t *testing.T) {
		calls := 0
		err := SubmitWithRetry(Retry{Base: time.Microsecond}, time.Time{}, func() error {
			calls++
			return ErrClosed
		})
		if !errors.Is(err, ErrClosed) || calls != 1 {
			t.Fatalf("err=%v calls=%d, want ErrClosed after 1 attempt", err, calls)
		}
	})
	t.Run("context cancellation interrupts the backoff sleep", func(t *testing.T) {
		// Base of a minute: if cancellation did not interrupt the sleep
		// (the old behavior), this test would hang for ~30–60s.
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		start := time.Now()
		err := SubmitWithRetryContext(ctx, Retry{Base: time.Minute, Cap: time.Minute}, time.Time{}, func() error {
			calls++
			cancel()
			return ErrSaturated
		})
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancelled retry still slept %v", elapsed)
		}
		if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrSaturated) || calls != 1 {
			t.Fatalf("err=%v calls=%d, want context.Canceled wrapping ErrSaturated after 1 attempt", err, calls)
		}
	})
	t.Run("already-cancelled context never submits", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		calls := 0
		err := SubmitWithRetryContext(ctx, Retry{}, time.Time{}, func() error {
			calls++
			return nil
		})
		if !errors.Is(err, context.Canceled) || calls != 0 {
			t.Fatalf("err=%v calls=%d, want context.Canceled before any attempt", err, calls)
		}
	})
	t.Run("context deadline surfaces as context.DeadlineExceeded", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		err := SubmitWithRetryContext(ctx, Retry{Base: 50 * time.Millisecond, Cap: 50 * time.Millisecond}, time.Time{}, func() error {
			return ErrSaturated
		})
		if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrSaturated) {
			t.Fatalf("err=%v, want context.DeadlineExceeded wrapping ErrSaturated", err)
		}
	})
	t.Run("integrates with a saturated scheduler", func(t *testing.T) {
		s := New(Config{Shards: 1, QueueBound: 1, Policy: Shed})
		defer s.Close()
		p, want := qosProblem(t)
		gate := make(chan struct{})
		running := make(chan struct{})
		ex := s.NewExecutor()
		ex.Submit(func(int, *core.Arena) {
			close(running)
			<-gate
		})
		<-running
		if _, err := s.SubmitMatVec(2, p); err != nil {
			t.Fatalf("queue-filling submit: %v", err)
		}
		opened := false
		var tk MatVecTicket
		err := SubmitWithRetry(Retry{Base: time.Millisecond, Cap: 2 * time.Millisecond}, time.Time{}, func() error {
			var err error
			tk, err = s.SubmitMatVec(2, p)
			if !opened {
				// Open the gate after the first saturation so a retry lands.
				opened = true
				close(gate)
			}
			return err
		})
		if err != nil {
			t.Fatalf("SubmitWithRetry: %v", err)
		}
		ex.Barrier()
		if res, err := tk.Wait(); err != nil || !res.Y.Equal(want, 0) {
			t.Fatalf("retried job: %v %v", res, err)
		}
		s.Flush()
	})
}
