package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Retry shapes SubmitWithRetry's backoff. The zero value gets the
// defaults: 100µs base, 10ms cap, unlimited attempts (bounded by the
// deadline).
type Retry struct {
	// Base is the first backoff sleep (default 100µs); each retry doubles
	// it up to Cap.
	Base time.Duration
	// Cap bounds the backoff growth (default 10ms).
	Cap time.Duration
	// Attempts, when > 0, caps the number of submission attempts; 0 means
	// retry until the deadline (or forever, if there is none).
	Attempts int
}

// SubmitWithRetry runs submit until it succeeds, retrying saturation with
// capped exponential backoff and jitter. Only ErrSaturated is retried —
// any other error (ErrClosed, a deadline shed, a dimension mismatch) is
// the caller's problem and returns immediately. A non-zero deadline bounds
// the whole loop: a deadline that has already passed fails fast with a
// *DeadlineError (matched by errors.Is against ErrDeadlineExceeded)
// before any submission attempt runs, and when the next backoff sleep
// would overrun the deadline, the last ErrSaturated is returned wrapped
// with ErrDeadlineExceeded so callers can match either sentinel. The
// submit closure should capture a Submit* call and return its error:
//
//	tk, err := stream.SubmitWithRetry(stream.Retry{}, deadline, func() error {
//		var err error
//		tk, err = s.SubmitMatVecQoS(w, p, q)
//		return err
//	})
func SubmitWithRetry(r Retry, deadline time.Time, submit func() error) error {
	return submitWithRetry(context.Background(), r, deadline, submit)
}

// SubmitWithRetryContext is SubmitWithRetry bounded by a context as well:
// cancellation interrupts a backoff sleep immediately — a cancelled caller
// never sleeps out the rest of a jittered backoff — and is checked before
// each attempt. A cancelled loop returns the context's error (matched by
// errors.Is against context.Canceled or context.DeadlineExceeded) wrapped
// with the last submission error when there was one.
func SubmitWithRetryContext(ctx context.Context, r Retry, deadline time.Time, submit func() error) error {
	return submitWithRetry(ctx, r, deadline, submit)
}

// submitWithRetry is the shared retry loop; the background context makes
// it exactly the historical SubmitWithRetry behavior.
func submitWithRetry(ctx context.Context, r Retry, deadline time.Time, submit func() error) error {
	if r.Base <= 0 {
		r.Base = 100 * time.Microsecond
	}
	if r.Cap <= 0 {
		r.Cap = 10 * time.Millisecond
	}
	// A deadline that passed before the loop even starts: fail fast with
	// the typed expiry instead of burning a submission attempt the caller's
	// deadline already disallows.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return fmt.Errorf("stream: retry deadline already passed: %w", &DeadlineError{Expired: true})
	}
	backoff := r.Base
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stream: retry cancelled before attempt %d: %w", attempt, err)
		}
		err := submit()
		if err == nil || !errors.Is(err, ErrSaturated) {
			return err
		}
		if r.Attempts > 0 && attempt >= r.Attempts {
			return err
		}
		// Full jitter over [backoff/2, backoff] decorrelates competing
		// submitters without giving up the exponential envelope.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if !deadline.IsZero() && time.Now().Add(sleep).After(deadline) {
			return fmt.Errorf("stream: retry gave up after %d attempts: %w: %w", attempt, ErrDeadlineExceeded, err)
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("stream: retry cancelled after %d attempts: %w: %w", attempt, ctx.Err(), err)
		case <-timer.C:
		}
		if backoff *= 2; backoff > r.Cap {
			backoff = r.Cap
		}
	}
}
