package stream

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// shardLadder returns the shard counts the equivalence suite runs at:
// {1, 2, NumCPU}, deduplicated.
func shardLadder() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// streamCase is one mixed-shape problem with its serial reference.
type streamCase struct {
	mv     *core.MatVecProblem
	mm     *core.MatMulProblem
	w      int
	wantMV *core.MatVecResult
	wantMM *core.MatMulResult
}

// randomCases draws a mixed-shape case set with deliberate shape repeats
// (the affinity path) and both engines, solving each serially for the
// reference.
func randomCases(t *testing.T, rng *rand.Rand, n int) []streamCase {
	t.Helper()
	shapes := [][2]int{{4, 8}, {8, 4}, {6, 6}} // recycled → affinity hits
	var cases []streamCase
	for i := 0; i < n; i++ {
		w := 2 + rng.Intn(3)
		eng := core.EngineCompiled
		if i%3 == 0 {
			eng = core.EngineOracle
		}
		c := streamCase{w: w}
		if i%2 == 0 {
			sh := shapes[i%len(shapes)]
			p := &core.MatVecProblem{
				A:    matrix.RandomDense(rng, sh[0], sh[1], 5),
				X:    matrix.RandomVector(rng, sh[1], 5),
				B:    matrix.RandomVector(rng, sh[0], 5),
				Opts: core.MatVecOptions{Engine: eng},
			}
			want, err := core.NewMatVecSolver(w).Solve(p.A, p.X, p.B, p.Opts)
			if err != nil {
				t.Fatal(err)
			}
			c.mv, c.wantMV = p, want
		} else {
			d := 2 + rng.Intn(2)*w
			p := &core.MatMulProblem{
				A:    matrix.RandomDense(rng, d, d, 4),
				B:    matrix.RandomDense(rng, d, d, 4),
				Opts: core.MatMulOptions{Engine: eng},
			}
			want, err := core.NewMatMulSolver(w).Solve(p.A, p.B, p.Opts)
			if err != nil {
				t.Fatal(err)
			}
			c.mm, c.wantMM = p, want
		}
		cases = append(cases, c)
	}
	return cases
}

// TestStreamMatchesSerial is the cross-runtime equivalence suite: a mixed-
// shape stream of matvec and matmul jobs on both engines must return
// results and per-run stats DeepEqual to the serial path at every shard
// count, under both admission policies.
func TestStreamMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	cases := randomCases(t, rng, 48)
	for _, shards := range shardLadder() {
		for _, policy := range []Policy{Block, Shed} {
			s := New(Config{Shards: shards, QueueBound: len(cases), Policy: policy})
			mvTickets := make(map[int]MatVecTicket)
			mmTickets := make(map[int]MatMulTicket)
			for i, c := range cases {
				var err error
				if c.mv != nil {
					mvTickets[i], err = s.SubmitMatVec(c.w, *c.mv)
				} else {
					mmTickets[i], err = s.SubmitMatMul(c.w, *c.mm)
				}
				if err != nil {
					t.Fatalf("shards=%d policy=%v case %d: %v", shards, policy, i, err)
				}
			}
			s.Flush()
			for i, c := range cases {
				if c.mv != nil {
					got, err := mvTickets[i].Wait()
					if err != nil {
						t.Fatalf("shards=%d case %d: %v", shards, i, err)
					}
					if !reflect.DeepEqual(got, c.wantMV) {
						t.Errorf("shards=%d policy=%v case %d: stream matvec differs from serial", shards, policy, i)
					}
				} else {
					got, err := mmTickets[i].Wait()
					if err != nil {
						t.Fatalf("shards=%d case %d: %v", shards, i, err)
					}
					if !reflect.DeepEqual(got, c.wantMM) {
						t.Errorf("shards=%d policy=%v case %d: stream matmul differs from serial", shards, policy, i)
					}
				}
			}
			st := s.Stats()
			if st.Submitted != uint64(len(cases)) || st.Completed != uint64(len(cases)) || st.Shed != 0 {
				t.Errorf("shards=%d policy=%v: stats %+v, want %d submitted+completed, 0 shed",
					shards, policy, st, len(cases))
			}
			s.Close()
		}
	}
}

// TestStreamIntoMatchesSerial: the zero-alloc Into variants write exactly
// what the arena pass APIs (and hence the serial engines) produce, at
// every shard count.
func TestStreamIntoMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	w := 3
	type intoCase struct {
		a      *matrix.Dense
		x, b   matrix.Vector
		ma, mb *matrix.Dense
	}
	var cases []intoCase
	for i := 0; i < 24; i++ {
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		d := 1 + rng.Intn(2*w)
		cases = append(cases, intoCase{
			a:  matrix.RandomDense(rng, n, m, 5),
			x:  matrix.RandomVector(rng, m, 5),
			b:  matrix.RandomVector(rng, n, 5),
			ma: matrix.RandomDense(rng, d, d, 4),
			mb: matrix.RandomDense(rng, d, d, 4),
		})
	}
	for _, shards := range shardLadder() {
		s := New(Config{Shards: shards})
		for i, c := range cases {
			dst := make(matrix.Vector, c.a.Rows())
			mdst := matrix.NewDense(c.ma.Rows(), c.mb.Cols())
			tv, err := s.SubmitMatVecInto(dst, c.a, c.x, c.b, w, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			tm, err := s.SubmitMatMulInto(mdst, c.ma, c.mb, nil, w, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := tv.Wait()
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.NewMatVecSolver(w).Solve(c.a, c.x, c.b, core.MatVecOptions{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dst, want.Y) || steps != want.Stats.T {
				t.Errorf("shards=%d case %d: matvec Into differs from serial", shards, i)
			}
			msteps, err := tm.Wait()
			if err != nil {
				t.Fatal(err)
			}
			mwant, err := core.NewMatMulSolver(w).Solve(c.ma, c.mb, core.MatMulOptions{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatal(err)
			}
			if !mdst.Equal(mwant.C, 0) || msteps != mwant.Stats.T {
				t.Errorf("shards=%d case %d: matmul Into differs from serial", shards, i)
			}
		}
		s.Close()
	}
}

// TestBatchAdapters: the scheduler's batch helpers return exactly what the
// core SolveBatch adapters (and the serial path) return.
func TestBatchAdapters(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	w := 4
	var problems []core.MatVecProblem
	for i := 0; i < 16; i++ {
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		problems = append(problems, core.MatVecProblem{
			A: matrix.RandomDense(rng, n, m, 5),
			X: matrix.RandomVector(rng, m, 5),
		})
	}
	s := New(Config{Shards: 3})
	defer s.Close()
	got, err := s.MatVecBatch(w, problems)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewMatVecSolver(w).SolveBatch(problems)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("MatVecBatch differs from SolveBatch")
	}

	var mm []core.MatMulProblem
	for i := 0; i < 8; i++ {
		n, p, m := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		mm = append(mm, core.MatMulProblem{
			A: matrix.RandomDense(rng, n, p, 4),
			B: matrix.RandomDense(rng, p, m, 4),
		})
	}
	mgot, err := s.MatMulBatch(3, mm)
	if err != nil {
		t.Fatal(err)
	}
	mwant, err := core.NewMatMulSolver(3).SolveBatch(mm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mgot, mwant) {
		t.Error("MatMulBatch differs from SolveBatch")
	}
}

// TestSharedExecutor: a scheduler-backed executor fans intra-solve passes
// over the same fleet that serves stream jobs, and the solver results stay
// bit-identical to serial — the shared-worker-budget contract.
func TestSharedExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	s := New(Config{Shards: 3})
	defer s.Close()
	ex := s.NewExecutor()
	defer ex.Close()
	if ex.Workers() != 3 {
		t.Fatalf("executor workers = %d, want the scheduler's 3 shards", ex.Workers())
	}
	// Keep stream traffic flowing while the executor runs passes.
	bg := core.MatVecProblem{
		A: matrix.RandomDense(rng, 8, 8, 4),
		X: matrix.RandomVector(rng, 8, 4),
	}
	var tickets []MatVecTicket
	for i := 0; i < 8; i++ {
		tk, err := s.SubmitMatVec(3, bg)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// The executor discipline from the workspaces: slot-addressed results.
	n := 12
	a := matrix.RandomDense(rng, n, n, 3)
	x := matrix.RandomVector(rng, n, 3)
	rows := make(matrix.Vector, n)
	for i := 0; i < n; i++ {
		i := i
		ex.Submit(func(_ int, ar *core.Arena) {
			dst := matrix.Vector(ar.Floats(1))
			if _, err := ar.MatVecPass(dst, a.Slice(i, i+1, 0, n), x, nil, 3, core.EngineCompiled); err == nil {
				rows[i] = dst[0]
			}
		})
	}
	ex.Barrier()
	want := a.MulVec(x, nil)
	if !rows.Equal(want, 0) {
		t.Error("executor passes over the shared fleet computed the wrong product")
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}
