package stream

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// TestShardClamping: zero and negative shard counts and queue bounds fall
// back to the documented defaults instead of panicking or deadlocking.
func TestShardClamping(t *testing.T) {
	for _, shards := range []int{0, -3} {
		s := New(Config{Shards: shards, QueueBound: -1})
		if got, want := s.Shards(), runtime.GOMAXPROCS(0); got != want {
			t.Errorf("Shards(%d) clamps to %d, want GOMAXPROCS=%d", shards, got, want)
		}
		a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
		tk, err := s.SubmitMatVec(2, core.MatVecProblem{A: a, X: matrix.Vector{1, 1}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Y.Equal(matrix.Vector{3, 7}, 0) {
			t.Errorf("clamped scheduler solved wrong: %v", res.Y)
		}
		s.Close()
	}
}

// TestSubmitAfterClose: every submission path reports ErrClosed after
// Close, and Close is idempotent.
func TestSubmitAfterClose(t *testing.T) {
	s := New(Config{Shards: 2})
	s.Close()
	s.Close() // idempotent
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := s.SubmitMatVec(2, core.MatVecProblem{A: a, X: matrix.Vector{1, 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitMatVec after Close: %v, want ErrClosed", err)
	}
	if _, err := s.SubmitMatMul(2, core.MatMulProblem{A: a, B: a}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitMatMul after Close: %v, want ErrClosed", err)
	}
	dst := make(matrix.Vector, 2)
	if _, err := s.SubmitMatVecInto(dst, a, matrix.Vector{1, 1}, nil, 2, core.EngineAuto); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitMatVecInto after Close: %v, want ErrClosed", err)
	}
	mdst := matrix.NewDense(2, 2)
	if _, err := s.SubmitMatMulInto(mdst, a, a, nil, 2, core.EngineAuto); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitMatMulInto after Close: %v, want ErrClosed", err)
	}
	tr := sparse.NewMatVec(a, 2)
	if _, err := s.SubmitSparseMatVec(tr, matrix.Vector{1, 1}, nil, core.EngineAuto); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitSparseMatVec after Close: %v, want ErrClosed", err)
	}
	if _, err := s.SubmitSparseMatVecInto(dst, tr, matrix.Vector{1, 1}, nil, core.EngineAuto); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitSparseMatVecInto after Close: %v, want ErrClosed", err)
	}
	if _, err := s.MatVecBatch(2, []core.MatVecProblem{{A: a, X: matrix.Vector{1, 1}}}); !errors.Is(err, ErrClosed) {
		t.Errorf("MatVecBatch after Close: %v, want ErrClosed", err)
	}
}

// TestSaturation: under the Shed policy a scheduler whose single shard is
// occupied and whose queue is full fails fast with ErrSaturated, resumes
// accepting once drained, and counts the shed submissions.
func TestSaturation(t *testing.T) {
	s := New(Config{Shards: 1, QueueBound: 1, Policy: Shed})
	defer s.Close()
	// Occupy the only shard through a scheduler-backed executor pass.
	gate := make(chan struct{})
	running := make(chan struct{})
	ex := s.NewExecutor()
	ex.Submit(func(int, *core.Arena) {
		close(running)
		<-gate
	})
	<-running
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	p := core.MatVecProblem{A: a, X: matrix.Vector{1, 1}}
	// One job fits the queue; the next must shed.
	tk1, err := s.SubmitMatVec(2, p)
	if err != nil {
		t.Fatalf("first submit should queue: %v", err)
	}
	if _, err := s.SubmitMatVec(2, p); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second submit: %v, want ErrSaturated", err)
	}
	dst := make(matrix.Vector, 2)
	if _, err := s.SubmitMatVecInto(dst, a, matrix.Vector{1, 1}, nil, 2, core.EngineAuto); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Into submit while saturated: %v, want ErrSaturated", err)
	}
	tr := sparse.NewMatVec(a, 2)
	if _, err := s.SubmitSparseMatVec(tr, matrix.Vector{1, 1}, nil, core.EngineAuto); !errors.Is(err, ErrSaturated) {
		t.Fatalf("sparse submit while saturated: %v, want ErrSaturated", err)
	}
	if _, err := s.SubmitSparseMatVecInto(dst, tr, matrix.Vector{1, 1}, nil, core.EngineAuto); !errors.Is(err, ErrSaturated) {
		t.Fatalf("sparse Into submit while saturated: %v, want ErrSaturated", err)
	}
	close(gate)
	ex.Barrier()
	if res, err := tk1.Wait(); err != nil || !res.Y.Equal(matrix.Vector{3, 7}, 0) {
		t.Fatalf("queued job after drain: %v %v", res, err)
	}
	// Admission works again once the queue has space.
	tk2, err := s.SubmitMatVec(2, p)
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if _, err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Shed != 4 || st.Submitted != 2 {
		t.Errorf("stats %+v, want 4 shed and 2 submitted", st)
	}
}

// TestAffinityHammer pounds one shape from many goroutines at once — the
// contended steady-state path (shared shard queue, plan memo hits, pooled
// jobs) that the -race job checks for data races — and verifies every
// result.
func TestAffinityHammer(t *testing.T) {
	s := New(Config{Shards: 2, QueueBound: 8})
	defer s.Close()
	const goroutines, perG = 8, 40
	w := 3
	a := matrix.FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	})
	x := matrix.Vector{1, -1, 2, -2}
	want := a.MulVec(x, nil)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make(matrix.Vector, a.Rows())
			for i := 0; i < perG; i++ {
				tk, err := s.SubmitMatVecInto(dst, a, x, nil, w, core.EngineCompiled)
				if err != nil {
					errs[g] = err
					return
				}
				if _, err := tk.Wait(); err != nil {
					errs[g] = err
					return
				}
				if !dst.Equal(want, 0) {
					errs[g] = errors.New("wrong result under contention")
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if st := s.Stats(); st.Completed != goroutines*perG {
		t.Errorf("completed %d jobs, want %d", st.Completed, goroutines*perG)
	}
}

// TestInvalidDst: the Into submissions validate destination shapes at the
// submission boundary (a panic inside a shard would take the fleet down).
func TestInvalidDst(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := s.SubmitMatVecInto(make(matrix.Vector, 3), a, matrix.Vector{1, 1}, nil, 2, core.EngineAuto); err == nil {
		t.Error("matvec dst length mismatch should fail at submit")
	}
	if _, err := s.SubmitMatMulInto(matrix.NewDense(3, 3), a, a, nil, 2, core.EngineAuto); err == nil {
		t.Error("matmul dst shape mismatch should fail at submit")
	}
	if _, err := s.SubmitSparseMatVecInto(make(matrix.Vector, 3), sparse.NewMatVec(a, 2), matrix.Vector{1, 1}, nil, core.EngineAuto); err == nil {
		t.Error("sparse dst length mismatch should fail at submit")
	}
}

// sparseStencil builds a block-tridiagonal test matrix — the repeated
// stencil whose pattern the affinity routing should keep on one shard.
func sparseStencil(nb, w int) *matrix.Dense {
	a := matrix.NewDense(nb*w, nb*w)
	for r := 0; r < nb; r++ {
		for _, s := range []int{r - 1, r, r + 1} {
			if s < 0 || s >= nb {
				continue
			}
			for i := 0; i < w; i++ {
				for j := 0; j < w; j++ {
					a.Set(r*w+i, s*w+j, float64((r+2*s+i*j)%7-3))
				}
			}
		}
	}
	return a
}

// TestSparseAffinityHammer pounds one retained-block pattern from many
// goroutines through schedulers at shard counts {1, 2, NumCPU} under both
// admission policies — the contended pattern-affinity steady state (shared
// shard queue, pattern-keyed memo hits, pooled jobs) the -race job checks —
// verifying every result against the serial references.
func TestSparseAffinityHammer(t *testing.T) {
	w := 3
	a := sparseStencil(4, w)
	tr := sparse.NewMatVec(a, w)
	x := make(matrix.Vector, a.Cols())
	for i := range x {
		x[i] = float64(i%5 - 2)
	}
	want := a.MulVec(x, nil)
	serial, err := tr.SolveEngine(x, nil, core.EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, pol := range []Policy{Block, Shed} {
			s := New(Config{Shards: shards, QueueBound: 8, Policy: pol})
			const goroutines, perG = 6, 30
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					dst := make(matrix.Vector, tr.N)
					for i := 0; i < perG; i++ {
						// Alternate the Into fast path and the full-result
						// ticket; under Shed, retry sheds (load is bursty).
						if i%2 == 0 {
							tk, err := s.SubmitSparseMatVecInto(dst, tr, x, nil, core.EngineCompiled)
							for errors.Is(err, ErrSaturated) {
								tk, err = s.SubmitSparseMatVecInto(dst, tr, x, nil, core.EngineCompiled)
							}
							if err != nil {
								errs[g] = err
								return
							}
							if _, err := tk.Wait(); err != nil {
								errs[g] = err
								return
							}
							if !dst.Equal(want, 0) {
								errs[g] = errors.New("wrong Into result under contention")
								return
							}
						} else {
							tk, err := s.SubmitSparseMatVec(tr, x, nil, core.EngineCompiled)
							for errors.Is(err, ErrSaturated) {
								tk, err = s.SubmitSparseMatVec(tr, x, nil, core.EngineCompiled)
							}
							if err != nil {
								errs[g] = err
								return
							}
							res, err := tk.Wait()
							if err != nil {
								errs[g] = err
								return
							}
							if !reflect.DeepEqual(res, serial) {
								errs[g] = errors.New("full ticket differs from serial solve")
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("shards=%d policy=%v goroutine %d: %v", shards, pol, g, err)
				}
			}
			s.Close()
		}
	}
}

// TestSparseStreamZeroAlloc pins the sparse stream acceptance criterion:
// once the pattern-affinity shard is warm, a compiled sparse Into job —
// submit, execute, redeem — allocates nothing.
func TestSparseStreamZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	s := New(Config{Shards: 2})
	defer s.Close()
	w := 4
	a := sparseStencil(6, w)
	tr := sparse.NewMatVec(a, w)
	x := make(matrix.Vector, a.Cols())
	for i := range x {
		x[i] = float64(i)
	}
	dst := make(matrix.Vector, tr.N)
	roundTrip := func() {
		tk, err := s.SubmitSparseMatVecInto(dst, tr, x, nil, core.EngineCompiled)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every shard on the pattern (stealing can land early jobs
	// anywhere) before the measured steady state.
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs != 0 {
		t.Errorf("steady-state sparse stream job allocates %v objects/op, want 0", allocs)
	}
	if !dst.Equal(a.MulVec(x, nil), 0) {
		t.Error("warm sparse stream produced a wrong result")
	}
}

// TestStreamZeroAllocSteadyState pins the stream acceptance criterion:
// once the affinity shard is warm on a shape, a compiled Into job —
// submit, execute, redeem — allocates nothing.
func TestStreamZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	s := New(Config{Shards: 2})
	defer s.Close()
	w := 4
	a := matrix.NewDense(16, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			a.Set(i, j, float64(i+j+1))
		}
	}
	x := make(matrix.Vector, 16)
	for i := range x {
		x[i] = float64(i)
	}
	dst := make(matrix.Vector, 16)
	roundTrip := func() {
		tk, err := s.SubmitMatVecInto(dst, a, x, nil, w, core.EngineCompiled)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the shard's plan memo and the job pool
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs != 0 {
		t.Errorf("steady-state stream job allocates %v objects/op, want 0", allocs)
	}
}
