package stream

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
	"repro/internal/sparse"
)

// jobKind discriminates the workloads a shard can run.
type jobKind uint8

const (
	matvecFull jobKind = iota
	matmulFull
	matvecPass
	matmulPass
	sparseFull
	sparsePass
	solveFull
	solvePass
	sparseBatch
	sparseBatchPass
)

// job is one unit of stream work: inputs, the completion signal and the
// result slots, pooled so the steady state of a warmed stream submits
// without allocating. A job implements core.Pass and runs on the shard's
// goroutine with the shard's arena.
type job struct {
	s      *Scheduler
	kind   jobKind
	w      int
	eng    core.Engine
	pivot  solve.PivotPolicy
	refine solve.RefineOptions

	// Admission state: sequence number (injector determinism), QoS.
	seq      uint64
	deadline time.Time
	prio     Priority

	// Pass-style inputs (Into jobs; results land in caller-owned dst).
	dst              matrix.Vector
	a                *matrix.Dense
	x, b             matrix.Vector
	mdst, ma, mb, me *matrix.Dense

	// Sparse inputs (both variants; Into jobs reuse dst/x/b above).
	sp *sparse.MatVec

	// Sparse batch inputs (one job carries the whole batch, so the ticket,
	// admission decision and queue slot are per batch, not per vector).
	xs, bs, dsts []matrix.Vector

	// Full-result inputs.
	mvp core.MatVecProblem
	mmp core.MatMulProblem

	// Outputs.
	steps   int
	mvres   *core.MatVecResult
	mmres   *core.MatMulResult
	spres   *sparse.Result
	spmany  []*sparse.Result
	svx     matrix.Vector
	svstats solve.SolveStats
	err     error

	// done carries exactly one completion signal per submission; the
	// ticket's Wait consumes it, keeping the channel clean for reuse.
	done chan struct{}
}

// RunPass executes the job on the running shard's arena and signals the
// ticket. A job whose deadline already passed while it sat queued is
// skipped — its ticket resolves to the typed expiry error, its caller
// buffer stays untouched. Live jobs are timed and fold their service time
// into the executing shard's EWMA, which admission multiplies by queue
// depth to predict waits. Full matvec/matmul jobs go through the same
// core solvers a serial caller would use (global plan cache, fresh
// result); sparse full jobs resolve their pattern-keyed plan through the
// shard arena's memo (fresh result, plans identical to the serial ones);
// solve jobs run the full BlockLU pipeline on the running shard's warm
// arena-pooled workspace (serial pass decomposition — a stream job must
// not block on an executor backed by its own scheduler — so results and
// stats are bit-identical to one-shot solve.Solve); pass jobs replay
// through the arena's memo and write into the caller's buffer, allocating
// nothing once the shard is warm on that shape or pattern.
func (j *job) RunPass(worker int, ar *core.Arena) {
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		j.err = &DeadlineError{Expired: true}
		j.s.expired.Add(1)
		j.s.completed.Add(1)
		j.done <- struct{}{}
		return
	}
	start := time.Now()
	if in := j.s.inject; in != nil {
		in.perturb(worker, j.seq)
	}
	switch j.kind {
	case matvecFull:
		j.mvres, j.err = core.NewMatVecSolver(j.w).Solve(j.mvp.A, j.mvp.X, j.mvp.B, j.mvp.Opts)
	case matmulFull:
		j.mmres, j.err = core.NewMatMulSolver(j.w).Solve(j.mmp.A, j.mmp.B, j.mmp.Opts)
	case matvecPass:
		j.steps, j.err = ar.MatVecPass(j.dst, j.a, j.x, j.b, j.w, j.eng)
	case matmulPass:
		j.steps, j.err = ar.MatMulPass(j.mdst, j.ma, j.mb, j.me, j.w, j.eng)
	case sparseFull:
		j.spres, j.err = j.sp.SolveEngineOn(ar, j.x, j.b, j.eng)
	case sparsePass:
		j.steps, j.err = j.sp.PassInto(ar, j.dst, j.x, j.b, j.eng)
	case sparseBatch:
		j.spmany, j.err = j.sp.SolveManyOn(ar, j.xs, j.bs, j.eng)
	case sparseBatchPass:
		j.steps, j.err = j.sp.PassManyInto(ar, j.dsts, j.xs, j.bs, j.eng)
	case solveFull:
		ws := arenaSolveWorkspace(ar, j.w)
		x, stats, err := ws.Solve(j.a, j.b, solve.Options{Engine: j.eng, Pivot: j.pivot, Refine: j.refine})
		if err != nil {
			j.err = err
		} else {
			// x and stats are workspace-owned; the full-result ticket hands
			// the caller fresh copies, like the other full-result kinds —
			// the pivot permutation included (it aliases the workspace the
			// next solve on this shard will scribble on).
			j.svx = append(matrix.Vector(nil), x...)
			j.svstats = *stats
			j.svstats.LU.Perm = append([]int(nil), stats.LU.Perm...)
		}
	case solvePass:
		ws := arenaSolveWorkspace(ar, j.w)
		x, stats, err := ws.Solve(j.a, j.b, solve.Options{Engine: j.eng, Pivot: j.pivot, Refine: j.refine})
		if err != nil {
			j.err = err
		} else {
			copy(j.dst, x)
			j.svstats = *stats
			// The zero-alloc pass path cannot hand out a copy of the
			// workspace-owned permutation and must not alias it (the pooled
			// workspace outlives the ticket); RowSwaps still reports the
			// pivoting work — use SubmitSolve for the full permutation.
			j.svstats.LU.Perm = nil
		}
	}
	j.s.observe(worker, time.Since(start))
	j.s.completed.Add(1)
	j.done <- struct{}{}
}

// JobPanicked implements core.PanicCarrier: a panic the fleet recovered
// from this job resolves the ticket with the structured *core.PanicError
// (value + stack) and counts toward Stats.Panics. The shard that ran the
// job keeps serving — one poisoned job can never take it down.
func (j *job) JobPanicked(err *core.PanicError) {
	j.err = err
	j.s.panics.Add(1)
	j.s.completed.Add(1)
	j.done <- struct{}{}
}

// MatVecTicket is the one-shot future of a SubmitMatVec job.
type MatVecTicket struct{ j *job }

// Wait blocks until the job finishes and returns its result — exactly what
// the serial core.MatVecSolver.Solve would return, statistics included.
// Each ticket must be redeemed at most once; the zero ticket (returned
// alongside a Submit error) must not be waited on.
func (t MatVecTicket) Wait() (*core.MatVecResult, error) {
	j := t.j
	<-j.done
	res, err := j.mvres, j.err
	j.s.release(j)
	return res, err
}

// MatMulTicket is the one-shot future of a SubmitMatMul job.
type MatMulTicket struct{ j *job }

// Wait blocks until the job finishes and returns its result; see
// MatVecTicket.Wait for the redemption rules.
func (t MatMulTicket) Wait() (*core.MatMulResult, error) {
	j := t.j
	<-j.done
	res, err := j.mmres, j.err
	j.s.release(j)
	return res, err
}

// SparseTicket is the one-shot future of a SubmitSparseMatVec job.
type SparseTicket struct{ j *job }

// Wait blocks until the job finishes and returns its result — exactly what
// the serial sparse.MatVec.SolveEngine would return, statistics included.
// See MatVecTicket.Wait for the redemption rules.
func (t SparseTicket) Wait() (*sparse.Result, error) {
	j := t.j
	<-j.done
	res, err := j.spres, j.err
	j.s.release(j)
	return res, err
}

// SparseBatchTicket is the one-shot future of a SubmitSparseBatch job: one
// ticket covers the whole batch.
type SparseBatchTicket struct{ j *job }

// Wait blocks until the batch finishes and returns its per-vector results —
// each exactly what the serial sparse.MatVec.SolveEngine would return for
// that vector, statistics included. See MatVecTicket.Wait for the
// redemption rules.
func (t SparseBatchTicket) Wait() ([]*sparse.Result, error) {
	j := t.j
	<-j.done
	res, err := j.spmany, j.err
	j.s.release(j)
	return res, err
}

// PassTicket is the one-shot future of an Into job: the result lands in
// the buffer the caller handed to Submit, Wait returns the measured step
// count.
type PassTicket struct{ j *job }

// Wait blocks until the job finishes and returns the pass's measured step
// count T; the caller's dst holds the result. See MatVecTicket.Wait for
// the redemption rules.
func (t PassTicket) Wait() (int, error) {
	j := t.j
	<-j.done
	steps, err := j.steps, j.err
	j.s.release(j)
	return steps, err
}

// SubmitMatVec enqueues one y = A·x + b problem for a w-PE linear array
// and returns its ticket. The problem's inputs must stay untouched until
// the ticket is redeemed.
func (s *Scheduler) SubmitMatVec(w int, p core.MatVecProblem) (MatVecTicket, error) {
	return s.SubmitMatVecQoS(w, p, QoS{})
}

// SubmitMatVecQoS is SubmitMatVec with a deadline and priority class
// attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitMatVecQoS(w int, p core.MatVecProblem, q QoS) (MatVecTicket, error) {
	j := s.get(q)
	j.kind, j.w, j.mvp = matvecFull, w, p
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), matvecFull, w, p.A.Rows(), p.A.Cols(), int(p.Opts.Engine))); err != nil {
		return MatVecTicket{}, err
	}
	return MatVecTicket{j}, nil
}

// SubmitMatMul enqueues one C = A·B [+ E] problem for a w×w hexagonal
// array and returns its ticket. The problem's inputs must stay untouched
// until the ticket is redeemed.
func (s *Scheduler) SubmitMatMul(w int, p core.MatMulProblem) (MatMulTicket, error) {
	return s.SubmitMatMulQoS(w, p, QoS{})
}

// SubmitMatMulQoS is SubmitMatMul with a deadline and priority class
// attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitMatMulQoS(w int, p core.MatMulProblem, q QoS) (MatMulTicket, error) {
	j := s.get(q)
	j.kind, j.w, j.mmp = matmulFull, w, p
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), matmulFull, w, p.A.Rows(), p.B.Cols(), p.A.Cols())); err != nil {
		return MatMulTicket{}, err
	}
	return MatMulTicket{j}, nil
}

// SubmitSparseMatVec enqueues one sparse y = A·x + b problem (paper §4,
// b may be nil) on the selected engine and returns its ticket. Jobs are
// routed by pattern affinity — same retained-block pattern, same shard —
// so a repeating sparsity pattern (a stencil, say) replays the shard's
// memoized plan. The transformation and inputs must stay untouched until
// the ticket is redeemed.
func (s *Scheduler) SubmitSparseMatVec(t *sparse.MatVec, x, b matrix.Vector, eng core.Engine) (SparseTicket, error) {
	return s.SubmitSparseMatVecQoS(t, x, b, eng, QoS{})
}

// SubmitSparseMatVecQoS is SubmitSparseMatVec with a deadline and priority
// class attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitSparseMatVecQoS(t *sparse.MatVec, x, b matrix.Vector, eng core.Engine, q QoS) (SparseTicket, error) {
	j := s.get(q)
	j.kind, j.eng, j.sp = sparseFull, eng, t
	j.x, j.b = x, b
	k := t.Key()
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), sparseFull, int(k.Digest), k.W, k.NBar, k.MBar)); err != nil {
		return SparseTicket{}, err
	}
	return SparseTicket{j}, nil
}

// SubmitSparseMatVecInto enqueues one sparse y = A·x + b pass (b may be
// nil) writing into dst (len = A.Rows(), which must not alias x or b) on
// the selected engine — the zero-allocation sparse stream path: once the
// pattern-affinity shard is warm on the pattern, submit and execution
// allocate nothing. The transformation, inputs and dst must stay untouched
// until the ticket is redeemed.
func (s *Scheduler) SubmitSparseMatVecInto(dst matrix.Vector, t *sparse.MatVec, x, b matrix.Vector, eng core.Engine) (PassTicket, error) {
	return s.SubmitSparseMatVecIntoQoS(dst, t, x, b, eng, QoS{})
}

// SubmitSparseMatVecIntoQoS is SubmitSparseMatVecInto with a deadline and
// priority class attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitSparseMatVecIntoQoS(dst matrix.Vector, t *sparse.MatVec, x, b matrix.Vector, eng core.Engine, q QoS) (PassTicket, error) {
	if len(dst) != t.N {
		return PassTicket{}, fmt.Errorf("stream: dst len %d, want %d", len(dst), t.N)
	}
	j := s.get(q)
	j.kind, j.eng, j.sp = sparsePass, eng, t
	j.dst, j.x, j.b = dst, x, b
	k := t.Key()
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), sparsePass, int(k.Digest), k.W, k.NBar, k.MBar)); err != nil {
		return PassTicket{}, err
	}
	return PassTicket{j}, nil
}

// SubmitSparseBatch enqueues k sparse solves y_v = A·x_v + b_v sharing one
// transformation as a single batched job — one ticket, one queue slot, one
// admission decision for the whole batch — and returns its ticket. The
// shard replays the pattern-keyed plan once over all k vectors
// (sparse.MatVec.SolveManyOn), amortizing padding and plan resolution
// across the batch; each returned Result is bit-identical to an
// independent SubmitSparseMatVec of that vector. bs may be nil (every b is
// zero) or hold nil entries; otherwise len(bs) must equal len(xs).
// Routing follows the same pattern affinity as the single-vector sparse
// jobs. The transformation and every vector must stay untouched until the
// ticket is redeemed.
func (s *Scheduler) SubmitSparseBatch(t *sparse.MatVec, xs, bs []matrix.Vector, eng core.Engine) (SparseBatchTicket, error) {
	return s.SubmitSparseBatchQoS(t, xs, bs, eng, QoS{})
}

// SubmitSparseBatchQoS is SubmitSparseBatch with a deadline and priority
// class attached; see QoS for the admission semantics. The deadline covers
// the whole batch — a batch that expires queued resolves its one ticket
// with the typed expiry error and computes nothing.
func (s *Scheduler) SubmitSparseBatchQoS(t *sparse.MatVec, xs, bs []matrix.Vector, eng core.Engine, q QoS) (SparseBatchTicket, error) {
	if len(xs) == 0 {
		return SparseBatchTicket{}, fmt.Errorf("stream: empty sparse batch")
	}
	if bs != nil && len(bs) != len(xs) {
		return SparseBatchTicket{}, fmt.Errorf("stream: batch has %d x vectors but %d b vectors", len(xs), len(bs))
	}
	j := s.get(q)
	j.kind, j.eng, j.sp = sparseBatch, eng, t
	j.xs, j.bs = xs, bs
	k := t.Key()
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), sparseBatch, int(k.Digest), k.W, k.NBar, k.MBar)); err != nil {
		return SparseBatchTicket{}, err
	}
	return SparseBatchTicket{j}, nil
}

// SubmitSparseBatchInto is the Into form of SubmitSparseBatch: the shard
// writes dsts[v] = A·xs[v] + bs[v] for every vector in one batched pass
// (sparse.MatVec.PassManyInto) and the ticket returns the per-pass step
// count — the zero-allocation batch path once the pattern-affinity shard
// is warm. Every dst must have length A.Rows() and must not alias any x or
// b; the transformation, inputs and dsts must stay untouched until the
// ticket is redeemed.
func (s *Scheduler) SubmitSparseBatchInto(dsts []matrix.Vector, t *sparse.MatVec, xs, bs []matrix.Vector, eng core.Engine) (PassTicket, error) {
	return s.SubmitSparseBatchIntoQoS(dsts, t, xs, bs, eng, QoS{})
}

// SubmitSparseBatchIntoQoS is SubmitSparseBatchInto with a deadline and
// priority class attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitSparseBatchIntoQoS(dsts []matrix.Vector, t *sparse.MatVec, xs, bs []matrix.Vector, eng core.Engine, q QoS) (PassTicket, error) {
	if len(xs) == 0 {
		return PassTicket{}, fmt.Errorf("stream: empty sparse batch")
	}
	if len(dsts) != len(xs) {
		return PassTicket{}, fmt.Errorf("stream: batch has %d dst vectors but %d x vectors", len(dsts), len(xs))
	}
	if bs != nil && len(bs) != len(xs) {
		return PassTicket{}, fmt.Errorf("stream: batch has %d x vectors but %d b vectors", len(xs), len(bs))
	}
	for v := range dsts {
		if len(dsts[v]) != t.N {
			return PassTicket{}, fmt.Errorf("stream: batch dst %d len %d, want %d", v, len(dsts[v]), t.N)
		}
	}
	j := s.get(q)
	j.kind, j.eng, j.sp = sparseBatchPass, eng, t
	j.dsts, j.xs, j.bs = dsts, xs, bs
	k := t.Key()
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), sparseBatchPass, int(k.Digest), k.W, k.NBar, k.MBar)); err != nil {
		return PassTicket{}, err
	}
	return PassTicket{j}, nil
}

// SubmitMatVecInto enqueues one y = A·x + b pass (b may be nil) writing
// into dst (len = A.Rows(), which must not alias x or b) on the selected
// engine — the zero-allocation stream path: once the affinity shard is
// warm on the shape, submit and execution allocate nothing. Inputs and dst
// must stay untouched until the ticket is redeemed.
func (s *Scheduler) SubmitMatVecInto(dst matrix.Vector, a *matrix.Dense, x, b matrix.Vector, w int, eng core.Engine) (PassTicket, error) {
	return s.SubmitMatVecIntoQoS(dst, a, x, b, w, eng, QoS{})
}

// SubmitMatVecIntoQoS is SubmitMatVecInto with a deadline and priority
// class attached; see QoS for the admission semantics. The warm-shard
// zero-allocation guarantee holds for QoS submissions too: deadlines ride
// in the pooled job, so admission adds no allocations to the steady state.
func (s *Scheduler) SubmitMatVecIntoQoS(dst matrix.Vector, a *matrix.Dense, x, b matrix.Vector, w int, eng core.Engine, q QoS) (PassTicket, error) {
	if len(dst) != a.Rows() {
		return PassTicket{}, fmt.Errorf("stream: dst len %d, want %d", len(dst), a.Rows())
	}
	j := s.get(q)
	j.kind, j.w, j.eng = matvecPass, w, eng
	j.dst, j.a, j.x, j.b = dst, a, x, b
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), matvecPass, w, a.Rows(), a.Cols(), int(eng))); err != nil {
		return PassTicket{}, err
	}
	return PassTicket{j}, nil
}

// SubmitMatMulInto enqueues one C = A·B + E pass (e may be nil) writing
// into dst (A.Rows()×B.Cols(), which must not alias a, b or e) on the
// selected engine; allocation behavior matches SubmitMatVecInto. Inputs
// and dst must stay untouched until the ticket is redeemed.
func (s *Scheduler) SubmitMatMulInto(dst, a, b, e *matrix.Dense, w int, eng core.Engine) (PassTicket, error) {
	return s.SubmitMatMulIntoQoS(dst, a, b, e, w, eng, QoS{})
}

// SubmitMatMulIntoQoS is SubmitMatMulInto with a deadline and priority
// class attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitMatMulIntoQoS(dst, a, b, e *matrix.Dense, w int, eng core.Engine, q QoS) (PassTicket, error) {
	if dst.Rows() != a.Rows() || dst.Cols() != b.Cols() {
		return PassTicket{}, fmt.Errorf("stream: dst %d×%d, want %d×%d", dst.Rows(), dst.Cols(), a.Rows(), b.Cols())
	}
	j := s.get(q)
	j.kind, j.w, j.eng = matmulPass, w, eng
	j.mdst, j.ma, j.mb, j.me = dst, a, b, e
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), matmulPass, w, a.Rows(), b.Cols(), a.Cols())); err != nil {
		return PassTicket{}, err
	}
	return PassTicket{j}, nil
}
