package stream

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Priority is a job's admission class. The zero value is High, so the
// plain Submit* methods keep their original blocking semantics.
type Priority uint8

const (
	// High jobs may block for queue space under the Block policy and scan
	// every sibling shard before shedding under Shed — the class for work
	// that must not be lost.
	High Priority = iota
	// Low jobs shed first: they never block, and admission tries only
	// their affinity shard before failing fast with ErrSaturated — the
	// class for best-effort work a loaded scheduler drops before it
	// touches High traffic.
	Low
)

// String names the priority for logs and error messages.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Low:
		return "low"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// QoS attaches latency requirements to a submission. The zero value means
// no deadline and High priority — exactly the plain Submit* behavior.
type QoS struct {
	// Deadline is the job's absolute completion deadline; the zero Time
	// means none. Admission sheds the job up front — a *DeadlineError
	// carrying the predicted wait, matched by errors.Is against
	// ErrDeadlineExceeded — when every shard's predicted queueing delay
	// (queue depth × service-time EWMA) already exceeds the remaining
	// slack; and a job whose deadline passes while it sits queued is
	// skipped by the shard, its ticket resolved with the expiry error.
	// Either way the caller gets a fast typed failure, never a stale or
	// garbage result.
	Deadline time.Time
	// Priority selects the admission class (default High).
	Priority Priority
}

// QoSFromContext derives a QoS from ctx's deadline, if it has one, at
// High priority — the bridge for context-scoped callers.
func QoSFromContext(ctx context.Context) QoS {
	q := QoS{}
	if d, ok := ctx.Deadline(); ok {
		q.Deadline = d
	}
	return q
}

// ErrDeadlineExceeded is the sentinel matched by errors.Is for every
// deadline failure: jobs shed at admission because the predicted wait
// exceeded their slack, jobs that expired while queued, and retries that
// ran out of deadline. The concrete error is a *DeadlineError (or wraps
// one).
var ErrDeadlineExceeded = errors.New("stream: job deadline exceeded")

// DeadlineError is the typed deadline failure; errors.As extracts it,
// errors.Is matches ErrDeadlineExceeded. The job's workload never ran and
// no caller buffer was touched.
type DeadlineError struct {
	// PredictedWait, when nonzero, is the smallest queueing delay
	// admission predicted across the shards — the job was shed up front
	// because even that exceeded the deadline slack.
	PredictedWait time.Duration
	// Expired reports that the deadline itself passed: either before
	// admission or while the job sat queued (the shard skips expired jobs
	// instead of computing a result nobody can use).
	Expired bool
}

// Error formats the failure.
func (e *DeadlineError) Error() string {
	if e.Expired {
		return "stream: job expired past its deadline before running"
	}
	return fmt.Sprintf("stream: predicted wait %v exceeds the job's deadline slack", e.PredictedWait)
}

// Unwrap lets errors.Is(err, ErrDeadlineExceeded) match.
func (e *DeadlineError) Unwrap() error { return ErrDeadlineExceeded }

// observe folds one measured service time into the executing shard's
// EWMA (α = 1/8). Stolen jobs charge the shard that ran them, so a
// stalled shard's average rises even while siblings drain its queue.
func (s *Scheduler) observe(shard int, d time.Duration) {
	if d <= 0 {
		d = 1
	}
	e := &s.ewma[shard]
	for {
		old := e.Load()
		nw := int64(d)
		if old > 0 {
			nw = old + (int64(d)-old)/8
			if nw <= 0 {
				nw = 1
			}
		}
		if e.CompareAndSwap(old, nw) {
			return
		}
	}
}

// predictedWait estimates how long a job routed to shard would take to
// come back: the passes already queued there plus the job itself, each at
// the shard's service-time EWMA. Optimistically zero until the shard has
// served its first job; deliberately ignores stealing, so it is an upper
// bound on a loaded fleet.
func (s *Scheduler) predictedWait(shard int) time.Duration {
	return time.Duration(int64(s.fleet.QueueLen(shard)+1) * s.ewma[shard].Load())
}
