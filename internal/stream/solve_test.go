package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
)

// ddSystem builds a strictly diagonally dominant n×n system, so every
// leading minor is nonsingular and BlockLU proceeds without pivoting.
func ddSystem(rng *rand.Rand, n int) (*matrix.Dense, matrix.Vector) {
	a := matrix.RandomDense(rng, n, n, 3)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(a.At(i, j))
			}
		}
		a.Set(i, i, rowSum+1+float64(rng.Intn(3)))
	}
	return a, matrix.RandomVector(rng, n, 5)
}

// permuteRows scrambles a system's rows in place-equivalent copies, so a
// well-conditioned matrix needs pivoting to factor.
func permuteRows(rng *rand.Rand, a *matrix.Dense, d matrix.Vector) (*matrix.Dense, matrix.Vector) {
	n := a.Rows()
	p := rng.Perm(n)
	pa := matrix.NewDense(n, n)
	pd := make(matrix.Vector, n)
	for i, pi := range p {
		for j := 0; j < n; j++ {
			pa.Set(i, j, a.At(pi, j))
		}
		pd[i] = d[pi]
	}
	return pa, pd
}

// solveCase is one streamed direct solve with its serial reference.
type solveCase struct {
	a    *matrix.Dense
	d    matrix.Vector
	w    int
	opts solve.Options
	x    matrix.Vector
	want *solve.SolveStats
}

// solveCases draws a case set with deliberate size repeats (the affinity
// and warm-workspace path) across both engines and both pivot policies
// (row-scrambled systems for the pivoted cases, so the permutation is
// nontrivial), with refinement sprinkled in, solving each with the serial
// one-shot solve.Solve for the reference.
func solveCases(t *testing.T, rng *rand.Rand, count int) []solveCase {
	t.Helper()
	sizes := []int{4, 6, 9, 4, 6} // recycled → same shard, warm workspace
	var cases []solveCase
	for i := 0; i < count; i++ {
		c := solveCase{w: 2 + i%2, opts: solve.Options{Engine: core.EngineCompiled}}
		if i%3 == 0 {
			c.opts.Engine = core.EngineOracle
		}
		c.a, c.d = ddSystem(rng, sizes[i%len(sizes)])
		if i%2 == 1 {
			c.opts.Pivot = solve.PivotPartial
			c.a, c.d = permuteRows(rng, c.a, c.d)
		}
		if i%4 == 3 {
			c.opts.Refine = solve.RefineOptions{MaxIters: 3}
		}
		x, stats, err := solve.Solve(c.a, c.d, c.w, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		c.x, c.want = x, stats
		cases = append(cases, c)
	}
	return cases
}

// TestSolveStreamMatrix is the solve-ticket equivalence matrix of ISSUE 7,
// extended by ISSUE 8 with pivoting and refinement: streamed full direct
// solves over engines {oracle, compiled} × pivot policies {None, Partial}
// × shards {1, 2, NumCPU} × admission policies {Block, Shed} return
// solutions AND stats (LU, pivot permutation, triangular and matvec pass
// accounting, refinement report, residual) DeepEqual to the serial
// one-shot solve.Solve, on both the full-result and the Into ticket
// variants (the Into stats carry a nil Perm by contract).
func TestSolveStreamMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(786))
	cases := solveCases(t, rng, 30)
	for _, shards := range shardLadder() {
		for _, policy := range []Policy{Block, Shed} {
			t.Run(fmt.Sprintf("shards=%d/policy=%v", shards, policy), func(t *testing.T) {
				s := New(Config{Shards: shards, QueueBound: 2 * len(cases), Policy: policy})
				defer s.Close()
				full := make([]SolveTicket, len(cases))
				into := make([]SolvePassTicket, len(cases))
				dsts := make([]matrix.Vector, len(cases))
				for i, c := range cases {
					var err error
					full[i], err = s.SubmitSolveOpts(c.a, c.d, c.w, c.opts, QoS{})
					if err != nil {
						t.Fatalf("SubmitSolveOpts %d: %v", i, err)
					}
					dsts[i] = make(matrix.Vector, len(c.d))
					into[i], err = s.SubmitSolveIntoOpts(dsts[i], c.a, c.d, c.w, c.opts, QoS{})
					if err != nil {
						t.Fatalf("SubmitSolveIntoOpts %d: %v", i, err)
					}
				}
				s.Flush()
				for i, c := range cases {
					x, stats, err := full[i].Wait()
					if err != nil {
						t.Fatalf("case %d: %v", i, err)
					}
					if !reflect.DeepEqual(x, c.x) || !reflect.DeepEqual(stats, c.want) {
						t.Errorf("case %d (n=%d w=%d %+v): stream solve diverged from serial", i, c.a.Rows(), c.w, c.opts)
					}
					istats, err := into[i].Wait()
					if err != nil {
						t.Fatalf("case %d Into: %v", i, err)
					}
					wantInto := *c.want
					wantInto.LU.Perm = nil
					if !reflect.DeepEqual(dsts[i], c.x) || !reflect.DeepEqual(istats, wantInto) {
						t.Errorf("case %d (n=%d w=%d %+v): Into solve diverged from serial", i, c.a.Rows(), c.w, c.opts)
					}
				}
				st := s.Stats()
				want := uint64(2 * len(cases))
				if st.Submitted != want || st.Completed != want || st.Shed != 0 || st.Panics != 0 {
					t.Errorf("stats %+v, want %d submitted+completed, 0 shed/panics", st, want)
				}
			})
		}
	}
}

// TestSolveChaos extends the chaos suite to solve tickets: under injected
// panics, delays, a stalled shard and live deadlines, every accepted solve
// ticket redeems exactly once with either a typed error (*core.PanicError
// or *DeadlineError, errors.Is-matchable) or a result DeepEqual to serial
// — never a stale or garbage solution — and every shard keeps serving.
func TestSolveChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(787))
	cases := solveCases(t, rng, 60)
	for _, shards := range shardLadder() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := New(Config{
				Shards:     shards,
				QueueBound: len(cases),
				Injector: &Injector{
					Seed: 786, PanicEvery: 4,
					DelayEvery: 6, Delay: 500 * time.Microsecond,
					StallShard: 0, StallDelay: 200 * time.Microsecond,
				},
			})
			defer s.Close()
			tickets := make([]SolveTicket, len(cases))
			accepted := 0
			for i, c := range cases {
				q := QoS{}
				if i%5 == 0 {
					// A live but generous deadline: admission must not
					// corrupt the result, only ever fail it typed.
					q.Deadline = time.Now().Add(time.Minute)
				}
				tk, err := s.SubmitSolveOpts(c.a, c.d, c.w, c.opts, q)
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				tickets[i] = tk
				accepted++
			}
			panics := 0
			for i, c := range cases {
				x, stats, err := tickets[i].Wait()
				if err == nil {
					if !reflect.DeepEqual(x, c.x) || !reflect.DeepEqual(stats, c.want) {
						t.Errorf("case %d: chaos survivor diverged from serial", i)
					}
					continue
				}
				var perr *core.PanicError
				switch {
				case errors.As(err, &perr):
					if !errors.Is(err, core.ErrPanicked) || len(perr.Stack) == 0 {
						t.Fatalf("case %d: panic error %#v lacks sentinel or stack", i, err)
					}
					panics++
				case errors.Is(err, ErrDeadlineExceeded):
					// Typed expiry; the solution slots stay empty.
				default:
					t.Fatalf("case %d: unexpected error %v", i, err)
				}
				if x != nil || stats != nil {
					t.Errorf("case %d: failed ticket leaked a result", i)
				}
			}
			if panics == 0 {
				t.Fatal("injector fired no solve panics — the chaos suite tested nothing")
			}
			st := s.Stats()
			if st.Submitted != uint64(accepted) || st.Completed != uint64(accepted) {
				t.Errorf("stats %+v, want %d submitted and completed exactly once", st, accepted)
			}
			if st.Panics != uint64(panics) {
				t.Errorf("Stats.Panics = %d, observed %d panic errors", st.Panics, panics)
			}

			// The fleet survived: a clean follow-up solve still serves.
			c := cases[0]
			tk, err := s.SubmitSolveOpts(c.a, c.d, c.w, c.opts, QoS{})
			if err != nil {
				t.Fatal(err)
			}
			// The follow-up may itself draw an injected panic; retry until a
			// clean draw proves the shards kept serving.
			for {
				x, stats, err := tk.Wait()
				if err == nil {
					if !reflect.DeepEqual(x, c.x) || !reflect.DeepEqual(stats, c.want) {
						t.Error("post-chaos solve diverged from serial")
					}
					break
				}
				if !errors.Is(err, core.ErrPanicked) {
					t.Fatalf("post-chaos solve: %v", err)
				}
				if tk, err = s.SubmitSolveOpts(c.a, c.d, c.w, c.opts, QoS{}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSolveStreamExpiry: a solve ticket whose deadline passes while it
// waits resolves to the typed expiry error and the caller's dst is never
// touched — the deadline machinery covers the new job kinds end to end.
func TestSolveStreamExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(788))
	a, d := ddSystem(rng, 6)
	s := New(Config{Shards: 1, Injector: &Injector{StallShard: 0, StallDelay: 20 * time.Millisecond}})
	defer s.Close()
	// Occupy the shard so the doomed ticket expires while queued.
	blocker, err := s.SubmitSolve(a, d, 2, core.EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	dst := matrix.Vector{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	tk, err := s.SubmitSolveIntoQoS(dst, a, d, 2, core.EngineCompiled, QoS{Deadline: time.Now().Add(time.Millisecond)})
	if err != nil {
		// Predictive admission may shed it up front once the EWMA is warm;
		// that is the same typed failure, still with dst untouched.
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("submit: %v", err)
		}
	} else {
		stats, werr := tk.Wait()
		if !errors.Is(werr, ErrDeadlineExceeded) {
			t.Fatalf("expired ticket returned %v, want ErrDeadlineExceeded", werr)
		}
		var derr *DeadlineError
		if !errors.As(werr, &derr) || !derr.Expired {
			t.Fatalf("expired ticket error %#v, want *DeadlineError{Expired: true}", werr)
		}
		if !reflect.DeepEqual(stats, solve.SolveStats{}) {
			t.Errorf("expired ticket leaked stats %+v", stats)
		}
	}
	for i, v := range dst {
		if !math.IsNaN(v) {
			t.Fatalf("dst[%d] = %v: expired solve touched the caller's buffer", i, v)
		}
	}
	if _, _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSolveStreamSingular is the no-workspace-poisoning regression test: a
// singular system streamed through the scheduler resolves its ticket to an
// errors.As-matchable *solve.SingularError with the pivot index intact,
// the Into variant leaves dst untouched, and a follow-up solve routed to
// the very same shard (same shape key) succeeds with serial-equal results
// — one bad system can never take a shard's warm workspace down.
func TestSolveStreamSingular(t *testing.T) {
	singular := matrix.FromRows([][]float64{{0, 1}, {1, 1}})
	d := matrix.Vector{1, 2}
	for _, shards := range shardLadder() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := New(Config{Shards: shards})
			defer s.Close()

			tk, err := s.SubmitSolve(singular, d, 2, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			x, stats, werr := tk.Wait()
			var serr *solve.SingularError
			if !errors.As(werr, &serr) {
				t.Fatalf("singular solve returned %v, want *solve.SingularError", werr)
			}
			if serr.Index != 0 || serr.Op != "solve.BlockLU" {
				t.Errorf("singular error %+v, want pivot index 0 from solve.BlockLU", serr)
			}
			if !errors.Is(werr, solve.ErrSingular) {
				t.Error("singular error does not match the solve.ErrSingular sentinel")
			}
			if x != nil || stats != nil {
				t.Error("singular ticket leaked a result")
			}

			dst := matrix.Vector{math.NaN(), math.NaN()}
			itk, err := s.SubmitSolveInto(dst, singular, d, 2, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			if _, werr := itk.Wait(); !errors.As(werr, &serr) {
				t.Fatalf("singular Into solve returned %v, want *solve.SingularError", werr)
			}
			if !math.IsNaN(dst[0]) || !math.IsNaN(dst[1]) {
				t.Errorf("singular Into solve touched dst: %v", dst)
			}

			// Same shape, same engine → same shard, same (just-poisoned?)
			// workspace. It must serve a clean system bit-identically.
			good := matrix.FromRows([][]float64{{4, 1}, {1, 3}})
			wantX, wantStats, err := solve.Solve(good, d, 2, solve.Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatal(err)
			}
			gtk, err := s.SubmitSolve(good, d, 2, core.EngineCompiled)
			if err != nil {
				t.Fatal(err)
			}
			gx, gstats, err := gtk.Wait()
			if err != nil {
				t.Fatalf("follow-up solve on the singular shard: %v", err)
			}
			if !reflect.DeepEqual(gx, wantX) || !reflect.DeepEqual(gstats, wantStats) {
				t.Error("follow-up solve diverged from serial after a singular ticket")
			}
		})
	}
}

// TestSolveStreamIllConditioned: a refinement budget too tight for the
// requested tolerance resolves the ticket with the typed
// *solve.IllConditionedError and its ConditionReport — never an
// unconverged solution — and the shard keeps serving afterwards.
func TestSolveStreamIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(815))
	a, d := ddSystem(rng, 6)
	// An unreachable absolute tolerance forces the refinement loop to
	// exhaust its budget deterministically (the seed gives a nonzero
	// floating-point residual at every iteration).
	opts := solve.Options{
		Engine: core.EngineCompiled,
		Pivot:  solve.PivotPartial,
		Refine: solve.RefineOptions{MaxIters: 2, Tol: 1e-300},
	}
	s := New(Config{Shards: 2})
	defer s.Close()

	tk, err := s.SubmitSolveOpts(a, d, 2, opts, QoS{})
	if err != nil {
		t.Fatal(err)
	}
	x, stats, werr := tk.Wait()
	var cerr *solve.IllConditionedError
	if !errors.As(werr, &cerr) {
		t.Fatalf("unconverged refinement returned %v, want *solve.IllConditionedError", werr)
	}
	if !errors.Is(werr, solve.ErrIllConditioned) {
		t.Error("ill-conditioned error does not match the solve.ErrIllConditioned sentinel")
	}
	if cerr.Report.Converged || cerr.Report.Iters != 2 || cerr.Report.ResidualNorm <= 0 {
		t.Errorf("condition report %+v, want 2 unconverged iterations with a positive residual", cerr.Report)
	}
	if x != nil || stats != nil {
		t.Error("ill-conditioned ticket leaked a result")
	}

	dst := matrix.Vector{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	itk, err := s.SubmitSolveIntoOpts(dst, a, d, 2, opts, QoS{})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := itk.Wait(); !errors.As(werr, &cerr) {
		t.Fatalf("unconverged Into refinement returned %v, want *solve.IllConditionedError", werr)
	}
	if !math.IsNaN(dst[0]) || !math.IsNaN(dst[5]) {
		t.Errorf("ill-conditioned Into solve touched dst: %v", dst)
	}

	// The shard and its pooled workspace must stay healthy: the same
	// system with a sane budget converges and matches serial exactly.
	opts.Refine = solve.RefineOptions{MaxIters: 4}
	wantX, wantStats, err := solve.Solve(a, d, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	gtk, err := s.SubmitSolveOpts(a, d, 2, opts, QoS{})
	if err != nil {
		t.Fatal(err)
	}
	gx, gstats, err := gtk.Wait()
	if err != nil {
		t.Fatalf("follow-up solve after ill-conditioned tickets: %v", err)
	}
	if !reflect.DeepEqual(gx, wantX) || !reflect.DeepEqual(gstats, wantStats) {
		t.Error("follow-up refined solve diverged from serial after ill-conditioned tickets")
	}
}

// TestSolveStreamValidation: malformed solve submissions fail at Submit
// with a synchronous error, before any job is drawn or enqueued.
func TestSolveStreamValidation(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	sq := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	rect := matrix.FromRows([][]float64{{1, 0, 0}, {0, 1, 0}})
	d := matrix.Vector{1, 2}
	if _, err := s.SubmitSolve(rect, d, 2, core.EngineCompiled); err == nil {
		t.Error("rectangular A was accepted")
	}
	if _, err := s.SubmitSolve(sq, matrix.Vector{1}, 2, core.EngineCompiled); err == nil {
		t.Error("short d was accepted")
	}
	if _, err := s.SubmitSolve(sq, d, 0, core.EngineCompiled); err == nil {
		t.Error("w=0 was accepted")
	}
	if _, err := s.SubmitSolveInto(matrix.Vector{1}, sq, d, 2, core.EngineCompiled); err == nil {
		t.Error("short dst was accepted")
	}
	ex := core.NewExecutor(1)
	if _, err := s.SubmitSolveOpts(sq, d, 2, solve.Options{Executor: ex}, QoS{}); err == nil {
		t.Error("an executor-carrying solve was accepted")
	}
	ex.Close()
	if _, err := s.SubmitSolveOpts(sq, d, 2, solve.Options{Pivot: solve.PivotPolicy(9)}, QoS{}); err == nil {
		t.Error("an unknown pivot policy was accepted")
	}
	if _, err := s.SubmitSolveOpts(sq, d, 2, solve.Options{Refine: solve.RefineOptions{MaxIters: -1}}, QoS{}); err == nil {
		t.Error("a negative refinement budget was accepted")
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Errorf("validation failures consumed admissions: %+v", st)
	}
}

// TestSolveStreamZeroAllocSteadyState: the warm solve-as-a-service steady
// state allocates nothing — a compiled SubmitSolveInto round trip on a
// warm shard reports 0 allocs/op, with and without a live deadline,
// matching the matvec/matmul/sparse Into guarantees.
func TestSolveStreamZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	rng := rand.New(rand.NewSource(789))
	a, d := ddSystem(rng, 8)
	s := New(Config{Shards: 2})
	defer s.Close()
	dst := make(matrix.Vector, 8)
	roundTrip := func(q QoS) {
		tk, err := s.SubmitSolveIntoQoS(dst, a, d, 2, core.EngineCompiled, q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip(QoS{}) // warm the shard's workspace, plans and job pool
	if allocs := testing.AllocsPerRun(50, func() { roundTrip(QoS{}) }); allocs != 0 {
		t.Errorf("steady-state solve stream job allocates %v objects/op, want 0", allocs)
	}
	deadline := QoS{Deadline: time.Now().Add(time.Hour)}
	roundTrip(deadline)
	if allocs := testing.AllocsPerRun(50, func() { roundTrip(deadline) }); allocs != 0 {
		t.Errorf("steady-state QoS solve stream job allocates %v objects/op, want 0", allocs)
	}

	// Pivoting and refinement ride the same pooled job and the shard
	// workspace's reused buffers, so the warm guarantee survives both.
	pa, pd := permuteRows(rng, a, d)
	opts := solve.Options{
		Engine: core.EngineCompiled,
		Pivot:  solve.PivotPartial,
		Refine: solve.RefineOptions{MaxIters: 3},
	}
	pivoted := func() {
		tk, err := s.SubmitSolveIntoOpts(dst, pa, pd, 2, opts, QoS{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	pivoted()
	if allocs := testing.AllocsPerRun(50, pivoted); allocs != 0 {
		t.Errorf("steady-state pivoted+refined solve stream job allocates %v objects/op, want 0", allocs)
	}
}
