package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
)

// Solve-as-a-service: the paper's headline workload — the full direct
// solve, BlockLU plus both triangular phases — streamed through the same
// sharded runtime as the matvec/matmul/sparse tickets. Each shard's arena
// keeps one warm solve.Workspace per array size (built on first use via
// solve.NewWorkspaceArena, cached with core.Arena.Keep), so a repeating
// stream of solves reuses the shard's compiled plans and, on the Into
// variant, allocates nothing once warm. Solve jobs participate in EWMA
// admission, priority classes, expiry-while-queued and panic isolation
// exactly like the other six submit paths.

// solveKeepBase partitions core.Arena's Keep key space for the stream's
// solve workspaces: workspace for array size w lives under key
// w<<8 | solveKeepBase. Nothing else in the repository keys that space.
const solveKeepBase uint64 = 0x50

// arenaSolveWorkspace returns the running shard's warm solve workspace for
// array size w, building one on the shard's arena the first time the shard
// sees that size. The workspace shares the arena's PlanMemo with the
// shard's pass jobs and survives arena Resets, so every later solve of the
// same size on this shard is plan-warm. The hit path is one map lookup and
// one type assertion — no allocation.
func arenaSolveWorkspace(ar *core.Arena, w int) *solve.Workspace {
	key := uint64(w)<<8 | solveKeepBase
	if ws, ok := ar.Kept(key).(*solve.Workspace); ok {
		return ws
	}
	ws := solve.NewWorkspaceArena(w, ar)
	ar.Keep(key, ws)
	return ws
}

// validateSolve checks a solve submission's shapes synchronously, so a
// malformed request fails at Submit instead of poisoning a ticket.
func validateSolve(a *matrix.Dense, d matrix.Vector, w int) error {
	if w < 1 {
		return fmt.Errorf("stream: invalid array size %d", w)
	}
	n := a.Rows()
	if a.Cols() != n {
		return fmt.Errorf("stream: solve needs a square matrix, got %d×%d", n, a.Cols())
	}
	if len(d) != n {
		return fmt.Errorf("stream: len(d)=%d, want %d", len(d), n)
	}
	return nil
}

// SolveTicket is the one-shot future of a SubmitSolve job.
type SolveTicket struct{ j *job }

// Wait blocks until the solve finishes and returns the solution and stats —
// exactly what the serial one-shot solve.Solve would return, residual
// included. The returned vector and stats are fresh copies owned by the
// caller. See MatVecTicket.Wait for the redemption rules.
func (t SolveTicket) Wait() (matrix.Vector, *solve.SolveStats, error) {
	j := t.j
	<-j.done
	x, stats, err := j.svx, j.svstats, j.err
	j.s.release(j)
	if err != nil {
		return nil, nil, err
	}
	return x, &stats, nil
}

// SolvePassTicket is the one-shot future of a SubmitSolveInto job: the
// solution lands in the buffer the caller handed to Submit, Wait returns
// the stats by value — nothing on this path allocates once the shard is
// warm on the shape.
type SolvePassTicket struct{ j *job }

// Wait blocks until the solve finishes and returns its stats; the caller's
// dst holds the solution. On error dst is untouched. See MatVecTicket.Wait
// for the redemption rules.
func (t SolvePassTicket) Wait() (solve.SolveStats, error) {
	j := t.j
	<-j.done
	stats, err := j.svstats, j.err
	j.s.release(j)
	return stats, err
}

// SubmitSolve enqueues one full direct solve A·x = d (BlockLU plus both
// triangular phases, paper §4's complete pipeline) for array size w on the
// selected engine and returns its ticket. Solves route by shape affinity —
// same (n, w, engine), same shard — so a repeating stream of solves replays
// the shard workspace's compiled plans. A must be square with nonsingular
// leading minors; a zero pivot resolves the ticket with an errors.As-
// matchable *solve.SingularError carrying the pivot index, and the shard
// keeps serving. Inputs must stay untouched until the ticket is redeemed.
func (s *Scheduler) SubmitSolve(a *matrix.Dense, d matrix.Vector, w int, eng core.Engine) (SolveTicket, error) {
	return s.SubmitSolveQoS(a, d, w, eng, QoS{})
}

// SubmitSolveQoS is SubmitSolve with a deadline and priority class
// attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitSolveQoS(a *matrix.Dense, d matrix.Vector, w int, eng core.Engine, q QoS) (SolveTicket, error) {
	if err := validateSolve(a, d, w); err != nil {
		return SolveTicket{}, err
	}
	j := s.get(q)
	j.kind, j.w, j.eng = solveFull, w, eng
	j.a, j.b = a, d
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), solveFull, w, a.Rows(), a.Cols(), int(eng))); err != nil {
		return SolveTicket{}, err
	}
	return SolveTicket{j}, nil
}

// SubmitSolveInto enqueues one full direct solve A·x = d writing the
// solution into dst (len = n, which must not alias d) — the
// zero-allocation solve stream path: once the affinity shard is warm on
// the shape, submit, execution and redemption allocate nothing. Inputs and
// dst must stay untouched until the ticket is redeemed; on error dst is
// untouched.
func (s *Scheduler) SubmitSolveInto(dst matrix.Vector, a *matrix.Dense, d matrix.Vector, w int, eng core.Engine) (SolvePassTicket, error) {
	return s.SubmitSolveIntoQoS(dst, a, d, w, eng, QoS{})
}

// SubmitSolveIntoQoS is SubmitSolveInto with a deadline and priority class
// attached; see QoS for the admission semantics. The warm-shard
// zero-allocation guarantee holds under QoS too: deadlines ride in the
// pooled job.
func (s *Scheduler) SubmitSolveIntoQoS(dst matrix.Vector, a *matrix.Dense, d matrix.Vector, w int, eng core.Engine, q QoS) (SolvePassTicket, error) {
	if err := validateSolve(a, d, w); err != nil {
		return SolvePassTicket{}, err
	}
	if len(dst) != a.Rows() {
		return SolvePassTicket{}, fmt.Errorf("stream: dst len %d, want %d", len(dst), a.Rows())
	}
	j := s.get(q)
	j.kind, j.w, j.eng = solvePass, w, eng
	j.dst, j.a, j.b = dst, a, d
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), solvePass, w, a.Rows(), a.Cols(), int(eng))); err != nil {
		return SolvePassTicket{}, err
	}
	return SolvePassTicket{j}, nil
}
