package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
)

// Solve-as-a-service: the paper's headline workload — the full direct
// solve, BlockLU plus both triangular phases — streamed through the same
// sharded runtime as the matvec/matmul/sparse tickets. Each shard's arena
// keeps one warm solve.Workspace per array size (built on first use via
// solve.NewWorkspaceArena, cached with core.Arena.Keep), so a repeating
// stream of solves reuses the shard's compiled plans and, on the Into
// variant, allocates nothing once warm. Solve jobs participate in EWMA
// admission, priority classes, expiry-while-queued and panic isolation
// exactly like the other six submit paths.

// solveKeepBase partitions core.Arena's Keep key space for the stream's
// solve workspaces: workspace for array size w lives under key
// w<<8 | solveKeepBase. Nothing else in the repository keys that space.
const solveKeepBase uint64 = 0x50

// arenaSolveWorkspace returns the running shard's warm solve workspace for
// array size w, building one on the shard's arena the first time the shard
// sees that size. The workspace shares the arena's PlanMemo with the
// shard's pass jobs and survives arena Resets, so every later solve of the
// same size on this shard is plan-warm. The hit path is one map lookup and
// one type assertion — no allocation.
func arenaSolveWorkspace(ar *core.Arena, w int) *solve.Workspace {
	key := uint64(w)<<8 | solveKeepBase
	if ws, ok := ar.Kept(key).(*solve.Workspace); ok {
		return ws
	}
	ws := solve.NewWorkspaceArena(w, ar)
	ar.Keep(key, ws)
	return ws
}

// validateSolve checks a solve submission's shapes synchronously, so a
// malformed request fails at Submit instead of poisoning a ticket.
func validateSolve(a *matrix.Dense, d matrix.Vector, w int) error {
	if w < 1 {
		return fmt.Errorf("stream: invalid array size %d", w)
	}
	n := a.Rows()
	if a.Cols() != n {
		return fmt.Errorf("stream: solve needs a square matrix, got %d×%d", n, a.Cols())
	}
	if len(d) != n {
		return fmt.Errorf("stream: len(d)=%d, want %d", len(d), n)
	}
	return nil
}

// validateSolveOpts extends validateSolve with the option combinations the
// stream cannot honor, so they fail at Submit instead of poisoning a
// ticket.
func validateSolveOpts(a *matrix.Dense, d matrix.Vector, w int, opts solve.Options) error {
	if err := validateSolve(a, d, w); err != nil {
		return err
	}
	if opts.Executor != nil {
		return fmt.Errorf("stream: solve options must not carry an executor (a stream job cannot block on one backed by its own scheduler)")
	}
	if opts.Pivot != solve.PivotNone && opts.Pivot != solve.PivotPartial {
		return fmt.Errorf("stream: unknown pivot policy %d", int(opts.Pivot))
	}
	if opts.Refine.MaxIters < 0 {
		return fmt.Errorf("stream: negative refinement budget %d", opts.Refine.MaxIters)
	}
	return nil
}

// SolveTicket is the one-shot future of a SubmitSolve job.
type SolveTicket struct{ j *job }

// Wait blocks until the solve finishes and returns the solution and stats —
// exactly what the serial one-shot solve.Solve would return, residual
// included. The returned vector and stats are fresh copies owned by the
// caller. See MatVecTicket.Wait for the redemption rules.
func (t SolveTicket) Wait() (matrix.Vector, *solve.SolveStats, error) {
	j := t.j
	<-j.done
	x, stats, err := j.svx, j.svstats, j.err
	j.s.release(j)
	if err != nil {
		return nil, nil, err
	}
	return x, &stats, nil
}

// SolvePassTicket is the one-shot future of a SubmitSolveInto job: the
// solution lands in the buffer the caller handed to Submit, Wait returns
// the stats by value — nothing on this path allocates once the shard is
// warm on the shape.
type SolvePassTicket struct{ j *job }

// Wait blocks until the solve finishes and returns its stats; the caller's
// dst holds the solution. On error dst is untouched. See MatVecTicket.Wait
// for the redemption rules.
func (t SolvePassTicket) Wait() (solve.SolveStats, error) {
	j := t.j
	<-j.done
	stats, err := j.svstats, j.err
	j.s.release(j)
	return stats, err
}

// SubmitSolve enqueues one full direct solve A·x = d (BlockLU plus both
// triangular phases, paper §4's complete pipeline) for array size w on the
// selected engine and returns its ticket. Solves route by shape affinity —
// same (n, w, engine), same shard — so a repeating stream of solves replays
// the shard workspace's compiled plans. A must be square with nonsingular
// leading minors; a zero pivot resolves the ticket with an errors.As-
// matchable *solve.SingularError carrying the pivot index, and the shard
// keeps serving. Inputs must stay untouched until the ticket is redeemed.
func (s *Scheduler) SubmitSolve(a *matrix.Dense, d matrix.Vector, w int, eng core.Engine) (SolveTicket, error) {
	return s.SubmitSolveQoS(a, d, w, eng, QoS{})
}

// SubmitSolveQoS is SubmitSolve with a deadline and priority class
// attached; see QoS for the admission semantics.
func (s *Scheduler) SubmitSolveQoS(a *matrix.Dense, d matrix.Vector, w int, eng core.Engine, q QoS) (SolveTicket, error) {
	return s.SubmitSolveOpts(a, d, w, solve.Options{Engine: eng}, q)
}

// SubmitSolveOpts is SubmitSolve with the full solver options — engine,
// pivot policy, iterative refinement — plus a QoS class: the stream face
// of solve.Options. Pivoted and refined solves route, pool and admit
// exactly like plain ones (the options ride in the pooled job); a
// refinement that fails to converge resolves the ticket with the typed
// *solve.IllConditionedError carrying its ConditionReport, never an
// unconverged solution. opts.Executor must be nil — a stream job cannot
// block on an executor backed by its own scheduler.
func (s *Scheduler) SubmitSolveOpts(a *matrix.Dense, d matrix.Vector, w int, opts solve.Options, q QoS) (SolveTicket, error) {
	if err := validateSolveOpts(a, d, w, opts); err != nil {
		return SolveTicket{}, err
	}
	j := s.get(q)
	j.kind, j.w, j.eng = solveFull, w, opts.Engine
	j.pivot, j.refine = opts.Pivot, opts.Refine
	j.a, j.b = a, d
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), solveFull, w, a.Rows(), a.Cols(), int(opts.Engine))); err != nil {
		return SolveTicket{}, err
	}
	return SolveTicket{j}, nil
}

// SubmitSolveInto enqueues one full direct solve A·x = d writing the
// solution into dst (len = n, which must not alias d) — the
// zero-allocation solve stream path: once the affinity shard is warm on
// the shape, submit, execution and redemption allocate nothing. Inputs and
// dst must stay untouched until the ticket is redeemed; on error dst is
// untouched.
func (s *Scheduler) SubmitSolveInto(dst matrix.Vector, a *matrix.Dense, d matrix.Vector, w int, eng core.Engine) (SolvePassTicket, error) {
	return s.SubmitSolveIntoQoS(dst, a, d, w, eng, QoS{})
}

// SubmitSolveIntoQoS is SubmitSolveInto with a deadline and priority class
// attached; see QoS for the admission semantics. The warm-shard
// zero-allocation guarantee holds under QoS too: deadlines ride in the
// pooled job.
func (s *Scheduler) SubmitSolveIntoQoS(dst matrix.Vector, a *matrix.Dense, d matrix.Vector, w int, eng core.Engine, q QoS) (SolvePassTicket, error) {
	return s.SubmitSolveIntoOpts(dst, a, d, w, solve.Options{Engine: eng}, q)
}

// SubmitSolveIntoOpts is SubmitSolveInto with the full solver options —
// engine, pivot policy, iterative refinement — plus a QoS class. The
// warm-shard zero-allocation guarantee holds with pivoting and refinement
// enabled (both ride in the pooled job and the shard workspace's reused
// buffers). One consequence: the returned stats report the pivoting work
// as LU.RowSwaps but carry a nil LU.Perm — the permutation slice is owned
// by the pooled shard workspace and handing it out would alias the next
// solve; use SubmitSolveOpts when the permutation itself is needed.
// opts.Executor must be nil, as on SubmitSolveOpts.
func (s *Scheduler) SubmitSolveIntoOpts(dst matrix.Vector, a *matrix.Dense, d matrix.Vector, w int, opts solve.Options, q QoS) (SolvePassTicket, error) {
	if err := validateSolveOpts(a, d, w, opts); err != nil {
		return SolvePassTicket{}, err
	}
	if len(dst) != a.Rows() {
		return SolvePassTicket{}, fmt.Errorf("stream: dst len %d, want %d", len(dst), a.Rows())
	}
	j := s.get(q)
	j.kind, j.w, j.eng = solvePass, w, opts.Engine
	j.pivot, j.refine = opts.Pivot, opts.Refine
	j.dst, j.a, j.b = dst, a, d
	if err := s.enqueue(j, shardOf(s.fleet.Shards(), solvePass, w, a.Rows(), a.Cols(), int(opts.Engine))); err != nil {
		return SolvePassTicket{}, err
	}
	return SolvePassTicket{j}, nil
}
