package stream

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// batchVectors builds k deterministic right-hand-side pairs for a
// transformation, with nil b entries sprinkled in.
func batchVectors(tr *sparse.MatVec, k int) (xs, bs []matrix.Vector) {
	xs = make([]matrix.Vector, k)
	bs = make([]matrix.Vector, k)
	for v := range xs {
		xs[v] = make(matrix.Vector, tr.M)
		for i := range xs[v] {
			xs[v][i] = float64((v+2*i)%7 - 3)
		}
		if v%3 != 2 {
			bs[v] = make(matrix.Vector, tr.N)
			for i := range bs[v] {
				bs[v][i] = float64((3*v+i)%5 - 2)
			}
		}
	}
	return xs, bs
}

// TestSparseBatchMatchesSerial pins the batched tickets' determinism
// contract across engines × shard counts × admission policies: every
// Result of a SubmitSparseBatch ticket, and every dst of a
// SubmitSparseBatchInto ticket, is DeepEqual to the corresponding
// single-vector serial call — one ticket per batch either way.
func TestSparseBatchMatchesSerial(t *testing.T) {
	w := 3
	tr := sparse.NewMatVec(sparseStencil(5, w), w)
	const k = 4
	xs, bs := batchVectors(tr, k)
	for _, eng := range []core.Engine{core.EngineOracle, core.EngineCompiled, core.EngineAuto} {
		serial := make([]*sparse.Result, k)
		for v := range xs {
			res, err := tr.SolveEngine(xs[v], bs[v], eng)
			if err != nil {
				t.Fatal(err)
			}
			serial[v] = res
		}
		for _, shards := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			for _, pol := range []Policy{Block, Shed} {
				s := New(Config{Shards: shards, Policy: pol})
				tk, err := s.SubmitSparseBatch(tr, xs, bs, eng)
				if err != nil {
					t.Fatalf("eng=%v shards=%d policy=%v: %v", eng, shards, pol, err)
				}
				got, err := tk.Wait()
				if err != nil {
					t.Fatalf("eng=%v shards=%d policy=%v: %v", eng, shards, pol, err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("eng=%v shards=%d policy=%v: batched ticket diverges from serial solves", eng, shards, pol)
				}
				dsts := make([]matrix.Vector, k)
				for v := range dsts {
					dsts[v] = make(matrix.Vector, tr.N)
				}
				ptk, err := s.SubmitSparseBatchInto(dsts, tr, xs, bs, eng)
				if err != nil {
					t.Fatal(err)
				}
				steps, err := ptk.Wait()
				if err != nil {
					t.Fatal(err)
				}
				for v := range dsts {
					if steps != serial[v].T || !dsts[v].Equal(serial[v].Y, 0) {
						t.Fatalf("eng=%v shards=%d policy=%v: Into batch vector %d diverges (steps=%d want %d)",
							eng, shards, pol, v, steps, serial[v].T)
					}
				}
				s.Close()
			}
		}
	}
}

// TestSparseBatchValidation: malformed batches fail at submit with typed
// errors (nothing enqueued), and a malformed per-vector operand inside an
// accepted batch resolves the one batch ticket with a validation error —
// never a panic through the fleet.
func TestSparseBatchValidation(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	w := 2
	tr := sparse.NewMatVec(sparseStencil(3, w), w)
	xs, bs := batchVectors(tr, 2)
	if _, err := s.SubmitSparseBatch(tr, nil, nil, core.EngineAuto); err == nil {
		t.Error("empty batch should fail at submit")
	}
	if _, err := s.SubmitSparseBatch(tr, xs, bs[:1], core.EngineAuto); err == nil {
		t.Error("mismatched x/b batch lengths should fail at submit")
	}
	dsts := []matrix.Vector{make(matrix.Vector, tr.N), make(matrix.Vector, tr.N)}
	if _, err := s.SubmitSparseBatchInto(dsts[:1], tr, xs, bs, core.EngineAuto); err == nil {
		t.Error("mismatched dst batch length should fail at submit")
	}
	if _, err := s.SubmitSparseBatchInto([]matrix.Vector{dsts[0], dsts[1][:1]}, tr, xs, bs, core.EngineAuto); err == nil {
		t.Error("short dst should fail at submit")
	}
	// A short x inside the batch passes submit (per-vector operands are the
	// job's to validate) and must come back as an error on the ticket.
	badXs := []matrix.Vector{xs[0], xs[1][:1]}
	tk, err := s.SubmitSparseBatch(tr, badXs, bs, core.EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Error("short x inside the batch should resolve the ticket with an error")
	}
	stats := s.Stats()
	if stats.Panics != 0 {
		t.Errorf("validation failures recorded %d panics, want 0", stats.Panics)
	}
}

// TestSparseBatchQoS: one deadline covers the whole batch — an expired
// batch resolves its single ticket with the typed expiry error and writes
// nothing.
func TestSparseBatchQoS(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	w := 2
	tr := sparse.NewMatVec(sparseStencil(3, w), w)
	xs, bs := batchVectors(tr, 3)
	if _, err := s.SubmitSparseBatchQoS(tr, xs, bs, core.EngineAuto, QoS{Deadline: time.Now().Add(-time.Millisecond)}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired batch admission returned %v, want ErrDeadlineExceeded", err)
	}
	dsts := make([]matrix.Vector, 3)
	for v := range dsts {
		dsts[v] = make(matrix.Vector, tr.N)
	}
	if _, err := s.SubmitSparseBatchIntoQoS(dsts, tr, xs, bs, core.EngineAuto, QoS{Deadline: time.Now().Add(-time.Millisecond)}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired Into batch admission returned %v, want ErrDeadlineExceeded", err)
	}
	for v := range dsts {
		for _, y := range dsts[v] {
			if y != 0 {
				t.Fatal("expired batch touched a caller buffer")
			}
		}
	}
	// A live deadline admits and completes normally.
	tk, err := s.SubmitSparseBatchQoS(tr, xs, bs, core.EngineAuto, QoS{Deadline: time.Now().Add(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk.Wait(); err != nil || len(res) != 3 {
		t.Fatalf("live batch: res=%d err=%v", len(res), err)
	}
}

// TestSparseBatchZeroAlloc pins the batch acceptance criterion: once the
// pattern-affinity shard is warm, a compiled batched Into job — submit,
// execute, redeem — allocates nothing even though it carries k vectors.
func TestSparseBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	s := New(Config{Shards: 2})
	defer s.Close()
	w := 4
	tr := sparse.NewMatVec(sparseStencil(6, w), w)
	const k = 4
	xs, bs := batchVectors(tr, k)
	dsts := make([]matrix.Vector, k)
	for v := range dsts {
		dsts[v] = make(matrix.Vector, tr.N)
	}
	roundTrip := func() {
		tk, err := s.SubmitSparseBatchInto(dsts, tr, xs, bs, core.EngineCompiled)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every shard on the pattern (stealing can land early jobs
	// anywhere) before the measured steady state.
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs != 0 {
		t.Errorf("steady-state sparse batch job allocates %v objects/op, want 0", allocs)
	}
	for v := range dsts {
		want, err := tr.SolveEngine(xs[v], bs[v], core.EngineCompiled)
		if err != nil {
			t.Fatal(err)
		}
		if !dsts[v].Equal(want.Y, 0) {
			t.Fatalf("warm batch vector %d wrong", v)
		}
	}
}
