// Package linear implements a cycle-accurate structural simulator of
// H.T. Kung's linear contraflow systolic array for band matrix–vector
// multiplication (the "Type 1" array of Mead & Conway §8.3, used by the
// paper for DBT-by-rows problems), extended with the paper's feedback path:
// the ȳ output of PE 0 re-enters PE w−1 through a chain of w registers so
// partial results never leave the array system.
//
// Geometry and timing (one clock tick = one paper step):
//
//   - PEs 0..w−1 in a row. The x̄ stream enters PE 0 and moves right one PE
//     per cycle; the ȳ stream enters PE w−1 and moves left one PE per cycle
//     (contraflow). Band coefficients enter from above: diagonal d = j−i of
//     the upper band is wired to PE w−1−d.
//   - x̄_j occupies PE 0 at cycle 2j; ȳ_i enters PE w−1 at cycle 2i+w−1;
//     they meet exactly once per band coefficient, Ā[i][j] being consumed at
//     PE w−1−(j−i) at cycle i+j+w−1; ȳ_i performs its last accumulation at
//     PE 0 at cycle 2i+2w−2 and is emitted at cycle 2i+2w−1.
//   - Successive elements of each stream are spaced two cycles apart, so a
//     PE works every other cycle (η ≤ ½); a second problem offset by one
//     cycle fills the idle slots (the paper's overlapping, η → 1).
//
// The run is structural: per cycle the engine injects boundary values,
// lets every PE with a full complement of operands execute one MAC, emits
// and retires boundary values, and shifts all registers.
package linear

import (
	"fmt"

	"repro/internal/systolic"
)

// YInit describes the initialization of one ȳ row: either an external value
// (an element of b̄) or the feedback of an earlier row's output.
type YInit struct {
	Feedback bool
	// Value is the external initialization when !Feedback.
	Value float64
	// SrcRow is the producing band row when Feedback.
	SrcRow int
}

// Program is one band matrix–vector problem ȳ = Ā·x̄ + b̄ scheduled on the
// array. Rows is the band row count, X the full x̄ stream (len = band cols),
// BandAt the coefficient reader, and YInit the per-row initialization.
// Offset shifts every injection by a fixed number of cycles (used for
// overlapping two problems). BandAt and YInit must be pure functions of
// their indices: the engine may evaluate them more than once per element.
type Program struct {
	Rows   int
	X      []float64
	BandAt func(i, j int) float64
	YInit  func(i int) YInit
	Offset int
}

// lastComputeCycle returns the cycle of the final MAC of the program.
func (p *Program) lastComputeCycle(w int) int {
	return p.Offset + 2*(p.Rows-1) + 2*w - 2
}

// Result holds the outcome of a run.
type Result struct {
	// Y[prog][i] is the emitted value for band row i of each program.
	Y [][]float64
	// EmitCycle[prog][i] is the cycle at which that value left PE 0.
	EmitCycle [][]int
	// T is the total step count: last compute cycle + 1 (cycle 0 is the
	// first injection).
	T int
	// Activity is the per-PE MAC accounting.
	Activity *systolic.Activity
	// Feedback lists every realized feedback edge with measured delay.
	Feedback []systolic.FeedbackObservation
	// Trace is the boundary trace when requested, else nil.
	Trace *systolic.Trace
	// GroupableConflicts counts cycles in which two logical PEs of the same
	// physical pair (2q, 2q+1) fired together. The paper's "grouping every
	// 2 PEs in 1" (§2) is sound exactly when this is zero — true for any
	// single program, false once two offset problems share the array.
	GroupableConflicts int
}

// GroupedUtilization returns MACs/(⌈w/2⌉·T): the PE utilization when every
// two adjacent PEs share one physical unit (the paper's grouping option,
// which reaches 100% because adjacent PEs fire on opposite cycle
// parities). It is only meaningful when GroupableConflicts is zero.
func (r *Result) GroupedUtilization() float64 {
	if r.Activity.Cycles == 0 {
		return 0
	}
	physical := (len(r.Activity.MACs) + 1) / 2
	return float64(r.Activity.Total()) / (float64(physical) * float64(r.Activity.Cycles))
}

// Array is the simulator for a fixed array size w.
type Array struct {
	W int
	// RecordTrace enables boundary event recording (Fig. 3).
	RecordTrace bool
}

// New returns an array simulator with w PEs.
func New(w int) *Array {
	if w < 1 {
		panic(fmt.Sprintf("linear: invalid array size %d", w))
	}
	return &Array{W: w}
}

type item struct {
	live bool
	prog int
	idx  int
	val  float64
}

// Run executes one or more programs on the array simultaneously and returns
// the merged result. Programs must not collide on injection slots; the
// engine panics on any structural conflict (this is what makes the overlap
// mode a checked claim rather than an assumption).
func (ar *Array) Run(progs ...*Program) *Result {
	if len(progs) == 0 {
		panic("linear: no programs")
	}
	w := ar.W
	res := &Result{
		Y:         make([][]float64, len(progs)),
		EmitCycle: make([][]int, len(progs)),
		Activity:  systolic.NewActivity(w),
	}
	if ar.RecordTrace {
		res.Trace = &systolic.Trace{}
	}
	maxT := 0
	for pi, p := range progs {
		if p.Rows < 1 {
			panic(fmt.Sprintf("linear: program %d has no rows", pi))
		}
		if len(p.X) < p.Rows+w-1 {
			panic(fmt.Sprintf("linear: program %d x̄ stream too short: %d < %d", pi, len(p.X), p.Rows+w-1))
		}
		res.Y[pi] = make([]float64, p.Rows)
		res.EmitCycle[pi] = make([]int, p.Rows)
		for i := range res.EmitCycle[pi] {
			res.EmitCycle[pi][i] = -1
		}
		if t := p.lastComputeCycle(w); t > maxT {
			maxT = t
		}
	}
	// Pre-size the feedback log: YInit is a pure function of the row, so the
	// edge count is known before the run.
	nfb := 0
	for _, p := range progs {
		for i := 0; i < p.Rows; i++ {
			if p.YInit(i).Feedback {
				nfb++
			}
		}
	}
	res.Feedback = make([]systolic.FeedbackObservation, 0, nfb)

	xregs := make([]item, w)
	yregs := make([]item, w)
	aIn := make([]item, w)
	fired := make([]bool, w)

	for t := 0; t <= maxT; t++ {
		// Phase 1: boundary injection for cycle t.
		for k := range aIn {
			aIn[k] = item{}
		}
		for pi, p := range progs {
			lt := t - p.Offset
			if lt < 0 {
				continue
			}
			// x̄_j enters PE 0 at local cycle 2j.
			if lt%2 == 0 {
				if j := lt / 2; j < len(p.X) {
					if xregs[0].live {
						panic(fmt.Sprintf("linear: x injection collision at cycle %d", t))
					}
					xregs[0] = item{live: true, prog: pi, idx: j, val: p.X[j]}
					res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortX, Prog: pi, Index: j, Value: p.X[j]})
				}
			}
			// ȳ_i enters PE w−1 at local cycle 2i+w−1.
			if (lt-(w-1))%2 == 0 {
				if i := (lt - (w - 1)) / 2; i >= 0 && i < p.Rows {
					if yregs[w-1].live {
						panic(fmt.Sprintf("linear: y injection collision at cycle %d", t))
					}
					init := p.YInit(i)
					v := init.Value
					if init.Feedback {
						src := init.SrcRow
						ec := res.EmitCycle[pi][src]
						if ec < 0 {
							panic(fmt.Sprintf("linear: acausal feedback: row %d needs row %d at cycle %d before it was emitted", i, src, t))
						}
						v = res.Y[pi][src]
						res.Feedback = append(res.Feedback, systolic.FeedbackObservation{
							SrcIndex: src, DstIndex: i, EmitCycle: ec, InjectCycle: t,
						})
					}
					yregs[w-1] = item{live: true, prog: pi, idx: i, val: v}
					res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortYIn, Prog: pi, Index: i, Value: v})
				}
			}
			// Ā[i][j] enters PE w−1−d at local cycle i+j+w−1 = 2i+d+w−1.
			for d := 0; d < w; d++ {
				if (lt-d-(w-1))%2 != 0 {
					continue
				}
				i := (lt - d - (w - 1)) / 2
				if i < 0 || i >= p.Rows {
					continue
				}
				k := w - 1 - d
				if aIn[k].live {
					panic(fmt.Sprintf("linear: a injection collision at PE %d cycle %d", k, t))
				}
				v := p.BandAt(i, i+d)
				aIn[k] = item{live: true, prog: pi, idx: i, val: v}
				res.Trace.Record(systolic.Event{Cycle: t, Port: systolic.PortA, Prog: pi, Index: i*w + d, Value: v})
			}
		}

		// Phase 2: compute. A PE fires when x, y and a are all present; the
		// engine cross-checks that the three operands belong to the same
		// program and meet at the PE the timing model predicts.
		for k := range fired {
			fired[k] = false
		}
		for k := 0; k < w; k++ {
			if !xregs[k].live || !yregs[k].live || !aIn[k].live {
				continue
			}
			fired[k] = true
			if xregs[k].prog != yregs[k].prog || xregs[k].prog != aIn[k].prog {
				panic(fmt.Sprintf("linear: program mix at PE %d cycle %d", k, t))
			}
			i, j := yregs[k].idx, xregs[k].idx
			if j-i != w-1-k {
				panic(fmt.Sprintf("linear: misaligned meeting at PE %d cycle %d: row %d col %d", k, t, i, j))
			}
			yregs[k].val += aIn[k].val * xregs[k].val
			res.Activity.MACs[k]++
		}
		for q := 0; q+1 < w; q += 2 {
			if fired[q] && fired[q+1] {
				res.GroupableConflicts++
			}
		}

		// Phase 3: emit at the boundaries, then shift.
		if yregs[0].live {
			p := yregs[0]
			res.Y[p.prog][p.idx] = p.val
			res.EmitCycle[p.prog][p.idx] = t + 1 // available after this cycle
			res.Trace.Record(systolic.Event{Cycle: t + 1, Port: systolic.PortYOut, Prog: p.prog, Index: p.idx, Value: p.val})
		}
		for k := 0; k+1 < w; k++ {
			yregs[k] = yregs[k+1]
		}
		yregs[w-1] = item{}
		for k := w - 1; k >= 1; k-- {
			xregs[k] = xregs[k-1]
		}
		xregs[0] = item{}
	}

	res.T = maxT + 1
	res.Activity.Cycles = res.T
	return res
}
