package linear

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestGroupingIsConflictFree: for any single program, adjacent PEs never
// fire in the same cycle (opposite parities), so the paper's "grouping
// every 2 PEs in 1" is structurally sound and grouped utilization doubles.
func TestGroupingIsConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, w := range []int{2, 3, 4, 6, 7} {
		rows := 4 * w
		b := randBand(rng, rows, w)
		x := matrix.RandomVector(rng, b.Cols(), 4)
		res := New(w).Run(bandProgram(b, x, nil, 0))
		if res.GroupableConflicts != 0 {
			t.Errorf("w=%d: %d grouping conflicts, want 0", w, res.GroupableConflicts)
		}
		plain := res.Activity.Utilization()
		grouped := res.GroupedUtilization()
		wantRatio := float64(w) / float64((w+1)/2)
		if got := grouped / plain; got < wantRatio-1e-9 || got > wantRatio+1e-9 {
			t.Errorf("w=%d: grouped/plain = %.4f, want %.4f", w, got, wantRatio)
		}
	}
}

// TestGroupedUtilizationApproachesOne: with even w and a long problem,
// grouped utilization approaches 1 (the paper's "raised 100%" claim).
func TestGroupedUtilizationApproachesOne(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	w := 4
	rows := 64 * w
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	res := New(w).Run(bandProgram(b, x, nil, 0))
	if u := res.GroupedUtilization(); u < 0.95 {
		t.Errorf("grouped utilization %.4f, want near 1", u)
	}
}

// TestGroupingConflictsUnderOverlap: once two offset problems share the
// array every slot is busy, so grouping must report conflicts — the two
// optimizations are mutually exclusive, as the paper's "or" implies.
func TestGroupingConflictsUnderOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	w, rows := 4, 12
	b1, b2 := randBand(rng, rows, w), randBand(rng, rows, w)
	x1 := matrix.RandomVector(rng, b1.Cols(), 4)
	x2 := matrix.RandomVector(rng, b2.Cols(), 4)
	res := New(w).Run(bandProgram(b1, x1, nil, 0), bandProgram(b2, x2, nil, 1))
	if res.GroupableConflicts == 0 {
		t.Error("expected grouping conflicts under overlap")
	}
}
