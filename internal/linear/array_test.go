package linear

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/systolic"
)

// bandProgram wraps a plain band matrix (no feedback) as a Program.
func bandProgram(b *matrix.Band, x matrix.Vector, yinit matrix.Vector, offset int) *Program {
	return &Program{
		Rows:   b.Rows(),
		X:      x,
		Offset: offset,
		BandAt: func(i, j int) float64 { return b.At(i, j) },
		YInit: func(i int) YInit {
			if yinit == nil {
				return YInit{}
			}
			return YInit{Value: yinit[i]}
		},
	}
}

func randBand(rng *rand.Rand, rows, w int) *matrix.Band {
	b := matrix.NewBand(rows, rows+w-1, 0, w-1)
	for i := 0; i < rows; i++ {
		for d := 0; d < w; d++ {
			b.Set(i, i+d, float64(rng.Intn(9)-4))
		}
	}
	return b
}

// TestBandMatVecExact: the array computes exactly the reference band
// product for a variety of sizes.
func TestBandMatVecExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{1, 2, 3, 5, 8} {
		for _, rows := range []int{1, 2, w, 3 * w, 17} {
			b := randBand(rng, rows, w)
			x := matrix.RandomVector(rng, b.Cols(), 4)
			c := matrix.RandomVector(rng, rows, 4)
			res := New(w).Run(bandProgram(b, x, c, 0))
			want := b.MulVec(x, c)
			if !matrix.Vector(res.Y[0]).Equal(want, 0) {
				t.Errorf("w=%d rows=%d: array result wrong", w, rows)
			}
		}
	}
}

// TestEmitCycleMatchesModel: ȳ_i leaves PE 0 at cycle 2i+2w−1 (available).
func TestEmitCycleMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w, rows := 4, 12
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	res := New(w).Run(bandProgram(b, x, nil, 0))
	for i := 0; i < rows; i++ {
		if got, want := res.EmitCycle[0][i], 2*i+2*w-1; got != want {
			t.Errorf("row %d emitted at %d, want %d", i, got, want)
		}
	}
}

// TestStepCountBare: a bare band problem of R rows spans 2R+2w−3 cycles.
func TestStepCountBare(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []int{1, 2, 3, 6} {
		for _, rows := range []int{1, 5, 3 * w} {
			b := randBand(rng, rows, w)
			x := matrix.RandomVector(rng, b.Cols(), 4)
			res := New(w).Run(bandProgram(b, x, nil, 0))
			if got, want := res.T, 2*rows+2*w-3; got != want {
				t.Errorf("w=%d rows=%d: T=%d, want %d", w, rows, got, want)
			}
		}
	}
}

// TestMACCount: every band position is one MAC; nothing else fires.
func TestMACCount(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	w, rows := 3, 9
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	res := New(w).Run(bandProgram(b, x, nil, 0))
	if got, want := res.Activity.Total(), rows*w; got != want {
		t.Errorf("MACs=%d, want %d", got, want)
	}
	// Diagonal d is wired to PE w−1−d: each PE sees exactly rows MACs.
	for k, m := range res.Activity.MACs {
		if m != rows {
			t.Errorf("PE %d executed %d MACs, want %d", k, m, rows)
		}
	}
}

// TestAdjacentPEParity: PEs k and k+1 are never active in the same cycle,
// which is what makes the paper's "grouping every 2 PEs in 1" sound. We
// verify via the timing model: PE k fires only on cycles with parity
// (k+w−1) mod 2, so adjacent PEs alternate.
func TestAdjacentPEParity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	w, rows := 5, 10
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	arr := New(w)
	arr.RecordTrace = true
	res := arr.Run(bandProgram(b, x, nil, 0))
	// Coefficient injections happen exactly at the PE's firing cycles.
	for _, e := range res.Trace.ByPort(systolic.PortA) {
		i, d := e.Index/w, e.Index%w
		k := w - 1 - d
		if (e.Cycle-(k+w-1))%2 != 0 {
			t.Errorf("PE %d fired at cycle %d: wrong parity", k, e.Cycle)
		}
		if e.Cycle != 2*i+d+w-1 {
			t.Errorf("a[%d][%d] consumed at %d, want %d", i, i+d, e.Cycle, 2*i+d+w-1)
		}
	}
}

// TestFeedbackDelayIsW: a self-feedback program (row i initialized with row
// i−w's output) has every measured feedback delay equal to w.
func TestFeedbackDelayIsW(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, w := range []int{1, 2, 3, 5} {
		rows := 4 * w
		b := randBand(rng, rows, w)
		x := matrix.RandomVector(rng, b.Cols(), 4)
		prog := bandProgram(b, x, nil, 0)
		prog.YInit = func(i int) YInit {
			if i >= w {
				return YInit{Feedback: true, SrcRow: i - w}
			}
			return YInit{}
		}
		res := New(w).Run(prog)
		if len(res.Feedback) != rows-w {
			t.Fatalf("w=%d: %d feedback edges, want %d", w, len(res.Feedback), rows-w)
		}
		for _, f := range res.Feedback {
			if f.Delay() != w {
				t.Errorf("w=%d: feedback %d→%d delay %d, want %d", w, f.SrcIndex, f.DstIndex, f.Delay(), w)
			}
		}
	}
}

// TestOverlapTwoProblems: two independent problems offset by one cycle both
// compute correctly, and the total span is one cycle more than a single run.
func TestOverlapTwoProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w, rows := 3, 9
	b1, b2 := randBand(rng, rows, w), randBand(rng, rows, w)
	x1 := matrix.RandomVector(rng, b1.Cols(), 4)
	x2 := matrix.RandomVector(rng, b2.Cols(), 4)
	res := New(w).Run(bandProgram(b1, x1, nil, 0), bandProgram(b2, x2, nil, 1))
	if !matrix.Vector(res.Y[0]).Equal(b1.MulVec(x1, nil), 0) {
		t.Error("program 0 wrong under overlap")
	}
	if !matrix.Vector(res.Y[1]).Equal(b2.MulVec(x2, nil), 0) {
		t.Error("program 1 wrong under overlap")
	}
	if got, want := res.T, 2*rows+2*w-3+1; got != want {
		t.Errorf("overlapped T=%d, want %d", got, want)
	}
	// Full utilization: 2·rows·w MACs over w PEs.
	if got, want := res.Activity.Total(), 2*rows*w; got != want {
		t.Errorf("MACs=%d, want %d", got, want)
	}
}

// TestOverlapCollisionDetected: same-offset duplicate programs must collide.
func TestOverlapCollisionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	w, rows := 3, 6
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	defer func() {
		if recover() == nil {
			t.Error("expected collision panic")
		}
	}()
	New(w).Run(bandProgram(b, x, nil, 0), bandProgram(b, x, nil, 0))
}

// TestAcausalFeedbackDetected: feedback from a row that has not been
// emitted yet must panic rather than silently inject a stale value.
func TestAcausalFeedbackDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	w, rows := 3, 6
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	prog := bandProgram(b, x, nil, 0)
	prog.YInit = func(i int) YInit {
		if i == 1 {
			return YInit{Feedback: true, SrcRow: 5} // row 5 emits long after row 1 starts
		}
		return YInit{}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected acausality panic")
		}
	}()
	New(w).Run(prog)
}

// TestTraceXStream: x̄_j enters PE 0 at cycle 2j exactly.
func TestTraceXStream(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	w, rows := 3, 6
	b := randBand(rng, rows, w)
	x := matrix.RandomVector(rng, b.Cols(), 4)
	arr := New(w)
	arr.RecordTrace = true
	res := arr.Run(bandProgram(b, x, nil, 0))
	events := res.Trace.ByPort(systolic.PortX)
	for _, e := range events {
		if e.Cycle != 2*e.Index {
			t.Errorf("x̄_%d entered at cycle %d, want %d", e.Index, e.Cycle, 2*e.Index)
		}
	}
}

func TestRunValidation(t *testing.T) {
	arr := New(2)
	for _, f := range []func(){
		func() { arr.Run() },
		func() { arr.Run(&Program{Rows: 0, X: []float64{1, 2}}) },
		func() { arr.Run(&Program{Rows: 5, X: []float64{1}}) },
		func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
