package solve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// TestWorkspaceZeroAlloc pins the compiled-path allocation diet: once a
// workspace is warm (plans compiled, buffers grown), repeated solves on it
// must allocate nothing — the property BenchmarkSolverEngines' compiled
// rows report as 0 allocs/op.
func TestWorkspaceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	rng := rand.New(rand.NewSource(405))
	w, n := 4, 24
	a, _ := diagonallyDominant(rng, n)
	d := a.MulVec(matrix.RandomVector(rng, n, 3), nil)
	ws := NewWorkspace(w)
	opts := Options{Engine: core.EngineCompiled}
	// Warm: compile every plan shape and grow every buffer.
	if _, _, err := ws.Solve(a, d, opts); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, _, _, err := ws.BlockLU(a, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("BlockLU steady state allocates %v objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := ws.Solve(a, d, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Solve steady state allocates %v objects/op, want 0", allocs)
	}
}
