package solve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
)

// LUStats reports the array work of a factorization or inversion.
type LUStats struct {
	// ArraySteps is the total simulated systolic step count.
	ArraySteps int
	// ArrayPasses counts hexagonal array invocations.
	ArrayPasses int
	// HostOps counts host-side scalar operations (the w×w diagonal-block
	// factorizations/substitutions — the report-/8/ substitution; all
	// O(n³) work runs on the array).
	HostOps int
	// RowSwaps counts the row exchanges partial pivoting performed
	// (always 0 under PivotNone).
	RowSwaps int
	// Perm is the row permutation of the factorization when pivoting ran:
	// Perm[i] is the original row of A standing at row i of P·A = L·U.
	// It is nil under PivotNone, so unpivoted stats are unchanged. The
	// slice is owned like the factors (workspace-owned on workspace
	// calls); copy it to retain it across calls.
	Perm []int `json:"Perm,omitempty"`
}

// BlockLU factors a square matrix, block size w (A = L·U under the
// default opts.Pivot == PivotNone; P·A = L·U with host-side row exchanges
// recorded in stats under PivotPartial):
// a right-looking block algorithm whose trailing updates
// A₂₂ ← A₂₂ − L₂₁·U₁₂ run as hexagonal-array passes, one per w-wide column
// tile (C = (−L₂₁)·U₁₂ + E with E = A₂₂ — the array's additive input doing
// the subtraction). The tile passes of one elimination step are
// independent; with opts.Executor they fan out across a pool of simulated
// arrays, bit-identical to the serial order. L is unit lower triangular, U
// upper triangular. Without pivoting A must have nonsingular leading
// minors (e.g. diagonally dominant); with PivotPartial any nonsingular A
// factors.
//
// The paper's conclusions (§4) list L-U decomposition among the problems
// the methodology solves; the w×w diagonal-block factorizations and panel
// substitutions stay on the host (see DESIGN.md §4). The implementation
// lives on Workspace.BlockLU — use a Workspace directly for repeated
// steady-state solves.
func BlockLU(a *matrix.Dense, w int, opts Options) (l, u *matrix.Dense, stats *LUStats, err error) {
	return NewWorkspaceExecutor(w, opts.Executor).BlockLU(a, opts)
}

// LowerTriangularInverse inverts a lower triangular matrix by blocks:
// X_kk = L_kk⁻¹ on the host (w×w), and each off-diagonal block
// X_ik = −L_ii⁻¹·(Σ_j L_ij·X_jk) with the inner products run as
// hexagonal-array passes. Within one block row bi the per-target-column
// passes (bk = bi−1 … 0) are independent — each reads only blocks written
// in earlier block rows (plus the diagonal inverse) and writes its own
// X[bi, bk] — so with opts.Executor they fan out across the pool of
// simulated arrays with a barrier per block row, bit-identical to the
// serial order (per-pass steps land in slot-addressed entries reduced in
// submission order).
func LowerTriangularInverse(lo *matrix.Dense, w int, opts Options) (*matrix.Dense, *LUStats, error) {
	n := lo.Rows()
	if lo.Cols() != n {
		return nil, nil, fmt.Errorf("solve: inverse needs a square matrix, got %d×%d", n, lo.Cols())
	}
	stats := &LUStats{}
	x := matrix.NewDense(n, n)
	nb := (n + w - 1) / w
	// Host: invert the diagonal blocks by forward substitution.
	for b := 0; b < nb; b++ {
		lo0, hi0 := blockBounds(b, w, n)
		for c := lo0; c < hi0; c++ {
			if lo.At(c, c) == 0 {
				return nil, nil, &SingularError{Op: "solve.LowerTriangularInverse", Index: c}
			}
			x.Set(c, c, 1/lo.At(c, c))
			stats.HostOps++
			for i := c + 1; i < hi0; i++ {
				s := 0.0
				for j := c; j < i; j++ {
					s += lo.At(i, j) * x.At(j, c)
					stats.HostOps += 2
				}
				x.Set(i, c, -s/lo.At(i, i))
				stats.HostOps++
			}
		}
	}
	// Array: X_ik = −(L_ii⁻¹)·(Σ_{k≤j<i} L_ij X_jk), two passes per target
	// column — the independent fan-out set of block row bi.
	ar := core.NewArena()
	var passSteps []int
	var passErrs []error
	for bi := 1; bi < nb; bi++ {
		count := bi
		passSteps = matrix.ReuseSlice[int](passSteps, count)
		passErrs = matrix.ReuseSlice[error](passErrs, count)
		for bk := bi - 1; bk >= 0; bk-- {
			slot := bi - 1 - bk
			if opts.Executor == nil {
				ar.Reset()
				inverseColumn(ar, lo, x, w, bi, bk, opts.Engine, &passSteps[slot], &passErrs[slot])
			} else {
				submitInverseColumn(opts.Executor, lo, x, w, bi, bk, opts.Engine, &passSteps[slot], &passErrs[slot])
			}
		}
		if opts.Executor != nil {
			opts.Executor.Barrier()
		}
		for _, err := range passErrs[:count] {
			if err != nil {
				return nil, nil, err
			}
		}
		for _, s := range passSteps[:count] {
			stats.ArraySteps += s
		}
		stats.ArrayPasses += 2 * count
	}
	return x, stats, nil
}

// blockBounds returns block b's row range [lo, hi) in a width-w blocking
// of dimension n.
func blockBounds(b, w, n int) (int, int) {
	hi := (b + 1) * w
	if hi > n {
		hi = n
	}
	return b * w, hi
}

// submitInverseColumn enqueues one target-column task on the executor. It
// lives outside the fan-out loop so the closure's captures never force the
// loop's locals onto the heap on the serial path.
func submitInverseColumn(exec *core.Executor, lo, x *matrix.Dense, w, bi, bk int, eng core.Engine, steps *int, errSlot *error) {
	exec.Submit(func(_ int, ar *core.Arena) {
		inverseColumn(ar, lo, x, w, bi, bk, eng, steps, errSlot)
	})
}

// inverseColumn is one fan-out task of block row bi: the summed product
// S = L[bi, bk..bi)·X[bk..bi, bk] as one hexagonal-array pass, then
// X[bi, bk] = (−L_ii⁻¹)·S as a second, all on the task's arena.
func inverseColumn(ar *core.Arena, lo, x *matrix.Dense, w, bi, bk int, eng core.Engine, steps *int, errSlot *error) {
	n := lo.Rows()
	li0, li1 := blockBounds(bi, w, n)
	lk0, lk1 := blockBounds(bk, w, n)
	lPanel := matrix.SliceInto(ar.Dense(li1-li0, li0-lk0), lo, li0, li1, lk0, li0)
	xPanel := matrix.SliceInto(ar.Dense(li0-lk0, lk1-lk0), x, lk0, li0, lk0, lk1)
	sum := ar.Dense(li1-li0, lk1-lk0)
	t1, err := ar.MatMulPass(sum, lPanel, xPanel, nil, w, eng)
	if err != nil {
		*errSlot = err
		return
	}
	neg := ar.Dense(li1-li0, li1-li0)
	for i := 0; i < li1-li0; i++ {
		for j := 0; j < li1-li0; j++ {
			neg.Set(i, j, -x.At(li0+i, li0+j))
		}
	}
	dst := ar.Dense(li1-li0, lk1-lk0)
	t2, err := ar.MatMulPass(dst, neg, sum, nil, w, eng)
	if err != nil {
		*errSlot = err
		return
	}
	*steps = t1 + t2
	x.SetRect(li0, lk0, dst)
}

// Inverse inverts a dense matrix as U⁻¹·L⁻¹ from its block LU
// factorization: both triangular inverses use LowerTriangularInverse (U via
// transposition) and the final product is one more array pass. This closes
// the §4 list ("inverses of triangular and dense matrices").
func Inverse(a *matrix.Dense, w int, opts Options) (*matrix.Dense, *LUStats, error) {
	l, u, st, err := BlockLU(a, w, opts)
	if err != nil {
		return nil, nil, err
	}
	linv, st2, err := LowerTriangularInverse(l, w, opts)
	if err != nil {
		return nil, nil, err
	}
	uinvT, st3, err := LowerTriangularInverse(u.Transpose(), w, opts)
	if err != nil {
		return nil, nil, err
	}
	solver := core.NewMatMulSolver(w)
	res, err := solver.Solve(uinvT.Transpose(), linv, core.MatMulOptions{Engine: opts.Engine})
	if err != nil {
		return nil, nil, err
	}
	stats := &LUStats{
		ArraySteps:  st.ArraySteps + st2.ArraySteps + st3.ArraySteps + res.Stats.T,
		ArrayPasses: st.ArrayPasses + st2.ArrayPasses + st3.ArrayPasses + 1,
		HostOps:     st.HostOps + st2.HostOps + st3.HostOps,
	}
	return res.C, stats, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
