package solve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
)

// LUStats reports the array work of a factorization or inversion.
type LUStats struct {
	// ArraySteps is the total simulated systolic step count.
	ArraySteps int
	// ArrayPasses counts hexagonal array invocations.
	ArrayPasses int
	// HostOps counts host-side scalar operations (the w×w diagonal-block
	// factorizations/substitutions — the report-/8/ substitution; all
	// O(n³) work runs on the array).
	HostOps int
}

// BlockLU factors a square matrix A = L·U without pivoting, block size w:
// a right-looking block algorithm whose trailing updates
// A₂₂ ← A₂₂ − L₂₁·U₁₂ run as hexagonal-array passes, one per w-wide column
// tile (C = (−L₂₁)·U₁₂ + E with E = A₂₂ — the array's additive input doing
// the subtraction). The tile passes of one elimination step are
// independent; with opts.Executor they fan out across a pool of simulated
// arrays, bit-identical to the serial order. L is unit lower triangular, U
// upper triangular. A must have nonsingular leading minors (e.g.
// diagonally dominant).
//
// The paper's conclusions (§4) list L-U decomposition among the problems
// the methodology solves; the w×w diagonal-block factorizations and panel
// substitutions stay on the host (see DESIGN.md §4). The implementation
// lives on Workspace.BlockLU — use a Workspace directly for repeated
// steady-state solves.
func BlockLU(a *matrix.Dense, w int, opts Options) (l, u *matrix.Dense, stats *LUStats, err error) {
	return NewWorkspaceExecutor(w, opts.Executor).BlockLU(a, opts)
}

// LowerTriangularInverse inverts a lower triangular matrix by blocks:
// X_kk = L_kk⁻¹ on the host (w×w), and each off-diagonal block
// X_ik = −L_ii⁻¹·(Σ_j L_ij·X_jk) with the inner products run as
// hexagonal-array passes (C = L_panel·X_panel + E accumulations).
func LowerTriangularInverse(lo *matrix.Dense, w int, opts Options) (*matrix.Dense, *LUStats, error) {
	n := lo.Rows()
	if lo.Cols() != n {
		return nil, nil, fmt.Errorf("solve: inverse needs a square matrix, got %d×%d", n, lo.Cols())
	}
	stats := &LUStats{}
	solver := core.NewMatMulSolver(w)
	x := matrix.NewDense(n, n)
	nb := (n + w - 1) / w
	bounds := func(b int) (int, int) {
		hi := (b + 1) * w
		if hi > n {
			hi = n
		}
		return b * w, hi
	}
	// Host: invert the diagonal blocks by forward substitution.
	for b := 0; b < nb; b++ {
		lo0, hi0 := bounds(b)
		for c := lo0; c < hi0; c++ {
			if lo.At(c, c) == 0 {
				return nil, nil, fmt.Errorf("solve: singular diagonal at %d", c)
			}
			x.Set(c, c, 1/lo.At(c, c))
			stats.HostOps++
			for i := c + 1; i < hi0; i++ {
				s := 0.0
				for j := c; j < i; j++ {
					s += lo.At(i, j) * x.At(j, c)
					stats.HostOps += 2
				}
				x.Set(i, c, -s/lo.At(i, i))
				stats.HostOps++
			}
		}
	}
	// Array: X_ik = −(L_ii⁻¹)·(Σ_{k≤j<i} L_ij X_jk), one pass per block row
	// i per target column k, accumulating through the E input.
	for bi := 1; bi < nb; bi++ {
		li0, li1 := bounds(bi)
		for bk := bi - 1; bk >= 0; bk-- {
			lk0, lk1 := bounds(bk)
			// S = Σ_j L[bi, j]·X[j, bk] over k ≤ j < i via one array pass:
			// the row panel L[bi, bk..bi) times the column panel X[bk..bi, bk].
			res, err := solver.Solve(lo.Slice(li0, li1, lk0, li0), x.Slice(lk0, li0, lk0, lk1),
				core.MatMulOptions{Engine: opts.Engine})
			if err != nil {
				return nil, nil, err
			}
			stats.ArraySteps += res.Stats.T
			stats.ArrayPasses++
			// X[bi, bk] = −L_ii⁻¹·S: the diagonal inverse block is already
			// in x[bi, bi]; one more array pass multiplies it in.
			diagInv := x.Slice(li0, li1, li0, li1)
			neg := matrix.NewDense(li1-li0, li1-li0)
			for i := 0; i < li1-li0; i++ {
				for j := 0; j < li1-li0; j++ {
					neg.Set(i, j, -diagInv.At(i, j))
				}
			}
			res2, err := solver.Solve(neg, res.C, core.MatMulOptions{Engine: opts.Engine})
			if err != nil {
				return nil, nil, err
			}
			stats.ArraySteps += res2.Stats.T
			stats.ArrayPasses++
			for i := li0; i < li1; i++ {
				for j := lk0; j < lk1; j++ {
					x.Set(i, j, res2.C.At(i-li0, j-lk0))
				}
			}
		}
	}
	return x, stats, nil
}

// Inverse inverts a dense matrix as U⁻¹·L⁻¹ from its block LU
// factorization: both triangular inverses use LowerTriangularInverse (U via
// transposition) and the final product is one more array pass. This closes
// the §4 list ("inverses of triangular and dense matrices").
func Inverse(a *matrix.Dense, w int, opts Options) (*matrix.Dense, *LUStats, error) {
	l, u, st, err := BlockLU(a, w, opts)
	if err != nil {
		return nil, nil, err
	}
	linv, st2, err := LowerTriangularInverse(l, w, opts)
	if err != nil {
		return nil, nil, err
	}
	uinvT, st3, err := LowerTriangularInverse(u.Transpose(), w, opts)
	if err != nil {
		return nil, nil, err
	}
	solver := core.NewMatMulSolver(w)
	res, err := solver.Solve(uinvT.Transpose(), linv, core.MatMulOptions{Engine: opts.Engine})
	if err != nil {
		return nil, nil, err
	}
	stats := &LUStats{
		ArraySteps:  st.ArraySteps + st2.ArraySteps + st3.ArraySteps + res.Stats.T,
		ArrayPasses: st.ArrayPasses + st2.ArrayPasses + st3.ArrayPasses + 1,
		HostOps:     st.HostOps + st2.HostOps + st3.HostOps,
	}
	return res.C, stats, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
