package solve

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Every solver in this package issues its array passes through core, so
// forcing the two engines must produce bit-identical factors, solutions
// and statistics. These tests sweep the solver workloads — LU, full solve,
// block-partitioned solve, iterative sweeps — through both engines.

func engines() []core.Engine { return []core.Engine{core.EngineOracle, core.EngineCompiled} }

// TestBlockLUEngineEquiv: L, U and stats must be bit-identical across
// engines (ArraySteps included — the compiled plan reports the oracle's T).
func TestBlockLUEngineEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, w := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, w, 2*w + 1, 3 * w} {
			a, _ := diagonallyDominant(rng, n)
			l0, u0, st0, err := BlockLU(a, w, Options{Engine: core.EngineOracle})
			if err != nil {
				t.Fatalf("oracle BlockLU (w=%d n=%d): %v", w, n, err)
			}
			l1, u1, st1, err := BlockLU(a, w, Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatalf("compiled BlockLU (w=%d n=%d): %v", w, n, err)
			}
			if !l0.Equal(l1, 0) || !u0.Equal(u1, 0) {
				t.Fatalf("w=%d n=%d: engines disagree on factors", w, n)
			}
			if !reflect.DeepEqual(st0, st1) {
				t.Fatalf("w=%d n=%d: stats differ\ncompiled %+v\noracle   %+v", w, n, st1, st0)
			}
		}
	}
}

// TestSolveDirect: the full direct solve (LU + two in-array triangular
// solves) is exact-to-tolerance and engine-independent bit for bit.
func TestSolveDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for _, w := range []int{2, 3, 4} {
		for _, n := range []int{1, w, 2*w + 1, 14} {
			a, _ := diagonallyDominant(rng, n)
			want := matrix.RandomVector(rng, n, 4)
			d := a.MulVec(want, nil)
			var results []matrix.Vector
			var stats []*SolveStats
			for _, eng := range engines() {
				x, st, err := Solve(a, d, w, Options{Engine: eng})
				if err != nil {
					t.Fatalf("%v Solve (w=%d n=%d): %v", eng, w, n, err)
				}
				if !x.Equal(want, 1e-7) {
					t.Errorf("%v w=%d n=%d: wrong solution (off %g)", eng, w, n, x.MaxAbsDiff(want))
				}
				if st.TriPasses == 0 {
					t.Errorf("%v w=%d n=%d: no triangular array passes recorded", eng, w, n)
				}
				results = append(results, x)
				stats = append(stats, st)
			}
			if !results[0].Equal(results[1], 0) {
				t.Fatalf("w=%d n=%d: engines disagree on x", w, n)
			}
			if !reflect.DeepEqual(stats[0], stats[1]) {
				t.Fatalf("w=%d n=%d: stats differ\noracle   %+v\ncompiled %+v", w, n, stats[0], stats[1])
			}
		}
	}
}

// TestBlockPartitionedSolve: the identity-padded block embedding solves
// ragged shapes exactly and matches Solve bit for bit on block multiples.
func TestBlockPartitionedSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, w := range []int{2, 3, 4} {
		for _, n := range []int{1, w - 1, w, w + 1, 2*w + 1, 3 * w} {
			if n < 1 {
				continue
			}
			a, _ := diagonallyDominant(rng, n)
			want := matrix.RandomVector(rng, n, 4)
			d := a.MulVec(want, nil)
			x, stats, err := BlockPartitionedSolve(a, d, w, Options{})
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", w, n, err)
			}
			if !x.Equal(want, 1e-7) {
				t.Errorf("w=%d n=%d: wrong solution (off %g)", w, n, x.MaxAbsDiff(want))
			}
			if stats.Residual > 1e-7 {
				t.Errorf("w=%d n=%d: residual %g", w, n, stats.Residual)
			}
			if n%w == 0 {
				direct, _, err := Solve(a, d, w, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !x.Equal(direct, 0) {
					t.Errorf("w=%d n=%d: block-partitioned differs from direct on an aligned shape", w, n)
				}
			}
		}
	}
	if _, _, err := BlockPartitionedSolve(matrix.NewDense(2, 3), make(matrix.Vector, 2), 2, Options{}); err == nil {
		t.Error("expected non-square error")
	}
	if _, _, err := BlockPartitionedSolve(matrix.NewDense(2, 2), make(matrix.Vector, 3), 2, Options{}); err == nil {
		t.Error("expected rhs length error")
	}
}

// TestIterativeEngineEquiv: Jacobi and Gauss–Seidel sweeps are bit-identical
// across engines (same iterates, same sweep counts, same residuals).
func TestIterativeEngineEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	a, d := diagonallyDominant(rng, 11)
	for _, method := range []struct {
		name string
		run  func(eng core.Engine) (matrix.Vector, *IterStats, error)
	}{
		{"jacobi", func(eng core.Engine) (matrix.Vector, *IterStats, error) {
			return Jacobi(a, d, 3, 300, 1e-10, Options{Engine: eng})
		}},
		{"gauss-seidel", func(eng core.Engine) (matrix.Vector, *IterStats, error) {
			return GaussSeidel(a, d, 3, 300, 1e-10, Options{Engine: eng})
		}},
	} {
		x0, st0, err := method.run(core.EngineOracle)
		if err != nil {
			t.Fatalf("%s oracle: %v", method.name, err)
		}
		x1, st1, err := method.run(core.EngineCompiled)
		if err != nil {
			t.Fatalf("%s compiled: %v", method.name, err)
		}
		if !x0.Equal(x1, 0) || !reflect.DeepEqual(st0, st1) {
			t.Fatalf("%s: engines disagree (sweeps %d vs %d, residual %g vs %g)",
				method.name, st0.Sweeps, st1.Sweeps, st0.Residual, st1.Residual)
		}
	}
}

// TestSolveBatchMatchesSerial: the batch API returns exactly what serial
// Solve calls return, across worker counts.
func TestSolveBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	w := 3
	var problems []Problem
	for i := 0; i < 10; i++ {
		n := 1 + rng.Intn(12)
		a, _ := diagonallyDominant(rng, n)
		problems = append(problems, Problem{A: a, D: matrix.RandomVector(rng, n, 5)})
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := SolveBatch(problems, w, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, p := range problems {
			want, stats, err := Solve(p.A, p.D, w, p.Opts)
			if err != nil {
				t.Fatal(err)
			}
			if !got[i].X.Equal(want, 0) {
				t.Fatalf("workers=%d problem %d: batch X differs from serial", workers, i)
			}
			if !reflect.DeepEqual(got[i].Stats, stats) {
				t.Fatalf("workers=%d problem %d: batch stats differ", workers, i)
			}
		}
	}
	// Error propagation: a singular problem fails with its index while
	// siblings still return.
	bad := Problem{A: matrix.NewDense(2, 2), D: make(matrix.Vector, 2)}
	res, err := SolveBatch([]Problem{problems[0], bad}, w, 2)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	var serr *SingularError
	if !errors.As(err, &serr) || serr.Index != 0 {
		t.Fatalf("err = %#v, want a *SingularError at pivot 0", err)
	}
	if res[0] == nil || res[1] != nil {
		t.Fatalf("batch error handling: res[0]=%v res[1]=%v", res[0], res[1])
	}
}
