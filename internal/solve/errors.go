package solve

import "repro/internal/trisolve"

// ErrSingular is the sentinel matched by errors.Is for every
// singular-pivot failure of the direct solvers — BlockLU's zero pivots,
// the triangular inverses' zero diagonals, LowerTriangularSolve's
// diagonal check and the trisolve phases of a full Solve. It aliases
// trisolve's sentinel so one errors.Is covers both layers of a direct
// solve, wherever the pivot was detected and however many runtime layers
// (executor fan-out, batch joins, stream tickets) wrapped it.
var ErrSingular = trisolve.ErrSingular

// SingularError is the typed singular-pivot error carrying the failing
// operation and pivot index; use errors.As to extract it from any solver
// error chain. See trisolve.SingularError for the field semantics.
type SingularError = trisolve.SingularError
