package solve

import "repro/internal/trisolve"

// ErrSingular is the sentinel matched by errors.Is for every
// singular-pivot failure of the direct solvers — BlockLU's zero pivots,
// the triangular inverses' zero diagonals, LowerTriangularSolve's
// diagonal check and the trisolve phases of a full Solve. It aliases
// trisolve's sentinel so one errors.Is covers both layers of a direct
// solve, wherever the pivot was detected and however many runtime layers
// (executor fan-out, batch joins, stream tickets) wrapped it.
var ErrSingular = trisolve.ErrSingular

// SingularError is the typed singular-pivot error carrying the failing
// operation and pivot index; use errors.As to extract it from any solver
// error chain. See trisolve.SingularError for the field semantics.
type SingularError = trisolve.SingularError

// ErrIllConditioned is the sentinel matched by errors.Is when iterative
// refinement (Options.Refine) exhausts its budget without reaching the
// requested tolerance. It aliases trisolve's sentinel so the whole
// direct-solver failure taxonomy unwraps from one package, however many
// runtime layers wrapped the error.
var ErrIllConditioned = trisolve.ErrIllConditioned

// IllConditionedError is the typed refinement failure carrying the
// ConditionReport at the point of giving up; use errors.As to extract it
// from any solver error chain. See trisolve.IllConditionedError for the
// field semantics.
type IllConditionedError = trisolve.IllConditionedError

// ConditionReport is the structured outcome of an iterative-refinement
// run (iterations, final residual norm, convergence); it appears in
// SolveStats.Refine on success and inside IllConditionedError on failure.
// See trisolve.ConditionReport for the field semantics.
type ConditionReport = trisolve.ConditionReport
