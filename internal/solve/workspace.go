package solve

import (
	"fmt"
	"math"

	"repro/internal/blockpart"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/trisolve"
)

// Workspace is the steady-state entry point of the blocked direct solvers:
// it owns every long-lived buffer of a solve (working copy, factors,
// panels, solution vectors, stats) plus a serial pass arena, and
// optionally fans the independent passes of each elimination step out
// across a core.Executor. Repeated solves on one workspace reuse all of it,
// so the compiled path allocates nothing in the steady state
// (BenchmarkSolverEngines' compiled rows run at 0 allocs/op).
//
// Ownership: a workspace belongs to one goroutine; the matrices, vector
// and stats a call returns are workspace-owned and valid until the next
// call on the same workspace (the one-shot package functions hand a fresh
// workspace's buffers to the caller, which is why they may return them).
//
// Parallel decomposition: BlockLU runs each elimination step as the host
// panel factorization followed by one hexagonal-array pass per w-wide
// column tile of the trailing update — always the same pass set, fanned
// across the executor's arrays when one is attached and run inline
// otherwise, with a barrier per step. Per-pass statistics land in
// index-addressed slots and are reduced in submission order, so results
// and stats are bit-identical at every worker count and on both engines.
type Workspace struct {
	w    int
	exec *core.Executor
	ar   *core.Arena
	tri  *trisolve.Workspace

	work, l, u *matrix.Dense
	negL       *matrix.Dense
	passSteps  []int
	passErrs   []error
	lu         LUStats
	stats      SolveStats
	fwX, x     matrix.Vector
	padded     *matrix.Dense
	dp, xout   matrix.Vector

	perm            []int
	dperm           matrix.Vector
	resid, rp, corr matrix.Vector
}

// NewWorkspace returns a serial workspace for array size w: every pass
// runs inline on the caller's goroutine.
func NewWorkspace(w int) *Workspace { return NewWorkspaceExecutor(w, nil) }

// NewWorkspaceExecutor returns a workspace whose independent passes fan
// out across exec's simulated arrays (nil exec = serial). The executor is
// shared, not owned: Close it separately.
func NewWorkspaceExecutor(w int, exec *core.Executor) *Workspace {
	if w < 1 {
		panic(fmt.Sprintf("solve: invalid array size %d", w))
	}
	return &Workspace{
		w: w, exec: exec,
		ar:  core.NewArena(),
		tri: trisolve.NewWorkspaceExecutor(w, exec),
	}
}

// NewWorkspaceArena returns a serial workspace (its trisolve substrate
// included) that replays compiled plans and draws pass scratch through the
// caller's arena instead of private ones, so repeated solves reuse the
// arena's PlanMemo — the constructor behind the stream scheduler's solve
// tickets, where each shard's arena keeps one warm workspace per array
// size. The arena is shared, not owned; the workspace inherits its
// goroutine-ownership contract and Resets it freely between passes, so
// nothing else drawn from the arena may be live across a workspace call.
// The pass decomposition is identical to NewWorkspace's, so results and
// stats stay bit-identical to the serial one-shot path.
func NewWorkspaceArena(w int, ar *core.Arena) *Workspace {
	if w < 1 {
		panic(fmt.Sprintf("solve: invalid array size %d", w))
	}
	return &Workspace{w: w, ar: ar, tri: trisolve.NewWorkspaceArena(w, ar)}
}

// BlockLU factors A (opts.Pivot == PivotNone: A = L·U, requiring
// nonsingular leading minors; PivotPartial: P·A = L·U with host-side row
// exchanges recorded in stats.Perm) exactly as the package-level BlockLU
// (which delegates here), with the trailing update of each elimination
// step decomposed into per-column-tile array passes that fan out across
// the executor. Pivoting only changes the host panel phase between array
// passes — the pass decomposition is identical, so results and stats stay
// bit-identical across engines and worker counts under either policy. The
// returned factors and stats are workspace-owned.
func (ws *Workspace) BlockLU(a *matrix.Dense, opts Options) (l, u *matrix.Dense, stats *LUStats, err error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, nil, fmt.Errorf("solve: BlockLU needs a square matrix, got %d×%d", n, a.Cols())
	}
	w := ws.w
	ws.work = matrix.CloneInto(ws.work, a)
	ws.l = matrix.ReuseZero(ws.l, n, n)
	ws.u = matrix.ReuseZero(ws.u, n, n)
	ws.lu = LUStats{}
	work, lf, uf := ws.work, ws.l, ws.u
	stats = &ws.lu
	pivoted := opts.Pivot == PivotPartial
	if pivoted {
		ws.perm = matrix.ReuseSlice[int](ws.perm, n)
		for i := range ws.perm {
			ws.perm[i] = i
		}
		stats.Perm = ws.perm
	}

	for k0 := 0; k0 < n; k0 += w {
		k1 := k0 + w
		if k1 > n {
			k1 = n
		}
		if pivoted {
			// Host: pivoted panel — diagonal block and L₂₁ in one
			// in-place elimination with row exchanges between the
			// array passes.
			if err := ws.pivotPanel(k0, k1); err != nil {
				return nil, nil, nil, err
			}
		} else {
			// Host: factor the diagonal block (Doolittle, unit L).
			for i := k0; i < k1; i++ {
				for j := k0; j < k1; j++ {
					s := work.At(i, j)
					for t := k0; t < min(i, j); t++ {
						s -= lf.At(i, t) * uf.At(t, j)
						stats.HostOps += 2
					}
					if j >= i {
						uf.Set(i, j, s)
					} else {
						if uf.At(j, j) == 0 {
							return nil, nil, nil, &SingularError{Op: "solve.BlockLU", Index: j}
						}
						lf.Set(i, j, s/uf.At(j, j))
						stats.HostOps++
					}
				}
				lf.Set(i, i, 1)
			}
			// Host: L₂₁ = A₂₁·U₁₁⁻¹ (back substitution per row).
			for i := k1; i < n; i++ {
				for j := k0; j < k1; j++ {
					s := work.At(i, j)
					for t := k0; t < j; t++ {
						s -= lf.At(i, t) * uf.At(t, j)
						stats.HostOps += 2
					}
					if uf.At(j, j) == 0 {
						return nil, nil, nil, &SingularError{Op: "solve.BlockLU", Index: j}
					}
					lf.Set(i, j, s/uf.At(j, j))
					stats.HostOps++
				}
			}
		}
		if k1 == n {
			break
		}
		// Host: U₁₂ = L₁₁⁻¹·A₁₂ (forward substitution per column).
		for j := k1; j < n; j++ {
			for i := k0; i < k1; i++ {
				s := work.At(i, j)
				for t := k0; t < i; t++ {
					s -= lf.At(i, t) * uf.At(t, j)
					stats.HostOps += 2
				}
				uf.Set(i, j, s)
			}
		}
		// Array: trailing update A₂₂ ← (−L₂₁)·U₁₂ + A₂₂, one pass per
		// w-wide column tile — the independent panel updates of this
		// elimination step. The pass set never depends on the worker count.
		ws.negL = matrix.Reuse(ws.negL, n-k1, k1-k0)
		for i := k1; i < n; i++ {
			for j := k0; j < k1; j++ {
				ws.negL.Set(i-k1, j-k0, -lf.At(i, j))
			}
		}
		count := (n - k1 + w - 1) / w
		ws.passSteps = matrix.ReuseSlice[int](ws.passSteps, count)
		ws.passErrs = matrix.ReuseSlice[error](ws.passErrs, count)
		slot := 0
		for j0 := k1; j0 < n; j0 += w {
			j1 := j0 + w
			if j1 > n {
				j1 = n
			}
			if ws.exec == nil {
				ws.ar.Reset()
				ws.trailingTile(ws.ar, k0, k1, j0, j1, slot, opts.Engine)
			} else {
				ws.submitTile(k0, k1, j0, j1, slot, opts.Engine)
			}
			slot++
		}
		if ws.exec != nil {
			ws.exec.Barrier()
		}
		for _, err := range ws.passErrs[:count] {
			if err != nil {
				return nil, nil, nil, err
			}
		}
		for _, s := range ws.passSteps[:count] {
			stats.ArraySteps += s
		}
		stats.ArrayPasses += count
	}
	return lf, uf, stats, nil
}

// pivotPanel is the PivotPartial host phase of one elimination step: the
// panel work[k0:n, k0:k1) is eliminated in place, column by column, each
// column first swapping the largest-magnitude candidate pivot row to the
// diagonal (a full-row exchange of the working copy plus the multipliers
// already stored in L, with the swap recorded in perm). It produces
// exactly what the unpivoted diagonal+L₂₁ phase produces — U's panel rows,
// unit-L's panel columns — so the U₁₂ substitution and the trailing-update
// array passes that follow are shared between the policies untouched.
// Exact singularity (a whole candidate column of zeros) returns
// *SingularError with the global column index, same as the unpivoted
// zero-pivot path.
func (ws *Workspace) pivotPanel(k0, k1 int) error {
	work, lf, uf := ws.work, ws.l, ws.u
	n := work.Rows()
	stats := &ws.lu
	for j := k0; j < k1; j++ {
		p, best := j, math.Abs(work.At(j, j))
		for i := j + 1; i < n; i++ {
			if v := math.Abs(work.At(i, j)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return &SingularError{Op: "solve.BlockLU", Index: j}
		}
		if p != j {
			rp, rj := work.RawRow(p), work.RawRow(j)
			for t := range rp {
				rp[t], rj[t] = rj[t], rp[t]
			}
			lp, lj := lf.RawRow(p), lf.RawRow(j)
			for t := 0; t < j; t++ {
				lp[t], lj[t] = lj[t], lp[t]
			}
			ws.perm[p], ws.perm[j] = ws.perm[j], ws.perm[p]
			stats.RowSwaps++
		}
		piv := work.At(j, j)
		for t := j; t < k1; t++ {
			uf.Set(j, t, work.At(j, t))
		}
		lf.Set(j, j, 1)
		for i := j + 1; i < n; i++ {
			m := work.At(i, j) / piv
			stats.HostOps++
			lf.Set(i, j, m)
			for t := j + 1; t < k1; t++ {
				work.Set(i, t, work.At(i, t)-m*work.At(j, t))
				stats.HostOps += 2
			}
		}
	}
	return nil
}

// submitTile enqueues one trailing tile on the executor. It lives outside
// the elimination loop so the task closure's captures never force the
// loop's locals onto the heap on the serial path.
func (ws *Workspace) submitTile(k0, k1, j0, j1, slot int, eng core.Engine) {
	ws.exec.Submit(func(_ int, ar *core.Arena) {
		ws.trailingTile(ar, k0, k1, j0, j1, slot, eng)
	})
}

// trailingTile is one fan-out task of a BlockLU elimination step:
// work[k1:n, j0:j1] ← (−L₂₁)·U₁₂[:, j0:j1] + work[k1:n, j0:j1] as a single
// hexagonal-array pass on the task's arena.
func (ws *Workspace) trailingTile(ar *core.Arena, k0, k1, j0, j1, slot int, eng core.Engine) {
	n := ws.work.Rows()
	bPanel := matrix.SliceInto(ar.Dense(k1-k0, j1-j0), ws.u, k0, k1, j0, j1)
	ePanel := matrix.SliceInto(ar.Dense(n-k1, j1-j0), ws.work, k1, n, j0, j1)
	dst := ar.Dense(n-k1, j1-j0)
	steps, err := ar.MatMulPass(dst, ws.negL, bPanel, ePanel, ws.w, eng)
	if err != nil {
		ws.passErrs[slot] = err
		return
	}
	ws.passSteps[slot] = steps
	ws.work.SetRect(k1, j0, dst)
}

// Solve solves A·x = d directly exactly as the package-level Solve (which
// delegates here): parallel block LU, then the two triangular phases on
// the workspace's trisolve substrate. The returned vector and stats are
// workspace-owned.
func (ws *Workspace) Solve(a *matrix.Dense, d matrix.Vector, opts Options) (matrix.Vector, *SolveStats, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("solve: Solve needs a square matrix, got %d×%d", n, a.Cols())
	}
	if len(d) != n {
		return nil, nil, fmt.Errorf("solve: len(d)=%d, want %d", len(d), n)
	}
	lf, uf, luStats, err := ws.BlockLU(a, opts)
	if err != nil {
		return nil, nil, err
	}
	// Under pivoting the factorization is P·A = L·U, so the forward phase
	// consumes P·d — one host-side gather through the recorded permutation.
	rhs := d
	if len(luStats.Perm) != 0 {
		ws.dperm = matrix.ReuseVec(ws.dperm, n)
		for i, pi := range luStats.Perm {
			ws.dperm[i] = d[pi]
		}
		rhs = ws.dperm
	}
	ws.fwX = matrix.ReuseVec(ws.fwX, n)
	fw, err := ws.tri.SolveLowerInto(ws.fwX, lf, rhs, opts.Engine)
	if err != nil {
		return nil, nil, err
	}
	ws.x = matrix.ReuseVec(ws.x, n)
	bw, err := ws.tri.SolveUpperInto(ws.x, uf, ws.fwX, opts.Engine)
	if err != nil {
		return nil, nil, err
	}
	ws.stats = SolveStats{
		LU:           *luStats,
		TriSteps:     fw.TriSteps + bw.TriSteps,
		TriPasses:    fw.TriPasses + bw.TriPasses,
		MatVecSteps:  fw.MatVecSteps + bw.MatVecSteps,
		MatVecPasses: fw.MatVecPasses + bw.MatVecPasses,
		Residual:     residual(a, ws.x, d),
	}
	if opts.Refine.MaxIters > 0 {
		if err := ws.refine(a, d, opts); err != nil {
			return nil, nil, err
		}
	}
	return ws.x, &ws.stats, nil
}

// BlockPartitionedSolve solves A·x = d through the identity-padded block
// embedding exactly as the package-level BlockPartitionedSolve (which
// delegates here). The returned vector and stats are workspace-owned.
func (ws *Workspace) BlockPartitionedSolve(a *matrix.Dense, d matrix.Vector, opts Options) (matrix.Vector, *SolveStats, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("solve: BlockPartitionedSolve needs a square matrix, got %d×%d", n, a.Cols())
	}
	if len(d) != n {
		return nil, nil, fmt.Errorf("solve: len(d)=%d, want %d", len(d), n)
	}
	// The Grid.PaddedIdentity embedding without the grid: zero-pad to the
	// block multiple and put ones on the padding diagonal.
	pn := blockpart.Ceil(n, ws.w) * ws.w
	ws.padded = matrix.PadInto(ws.padded, a, pn, pn)
	for i := n; i < pn; i++ {
		ws.padded.Set(i, i, 1)
	}
	ws.dp = matrix.ReuseVec(ws.dp, pn)
	copy(ws.dp, d)
	clear(ws.dp[n:])
	xp, stats, err := ws.Solve(ws.padded, ws.dp, opts)
	if err != nil {
		return nil, nil, err
	}
	ws.xout = matrix.ReuseVec(ws.xout, n)
	copy(ws.xout, xp[:n])
	stats.Residual = residual(a, ws.xout, d)
	return ws.xout, stats, nil
}
