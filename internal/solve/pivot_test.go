package solve

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// permutedDominant builds a well-conditioned system that *needs* pivoting:
// a strictly diagonally dominant matrix with its rows scrambled by a
// random permutation, so leading minors vanish (or nearly so) while the
// matrix itself stays nonsingular and well-scaled.
func permutedDominant(rng *rand.Rand, n int) (*matrix.Dense, matrix.Vector) {
	base, d := diagonallyDominant(rng, n)
	p := rng.Perm(n)
	a := matrix.NewDense(n, n)
	dd := make(matrix.Vector, n)
	for i, pi := range p {
		for j := 0; j < n; j++ {
			a.Set(i, j, base.At(pi, j))
		}
		dd[i] = d[pi]
	}
	return a, dd
}

// TestPivotedSolveZeroLeadingMinor: the canonical pivoting motivation — a
// nonsingular system whose unpivoted factorization dies on a zero leading
// minor solves cleanly under PivotPartial, with the permutation and swap
// count reported in stats.
func TestPivotedSolveZeroLeadingMinor(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{0, 2, 1, 3},
		{4, 1, 0, 1},
		{1, 5, 2, 0},
		{2, 0, 1, 6},
	})
	d := matrix.Vector{1, 2, 3, 4}
	if _, _, err := Solve(a.Clone(), d, 2, Options{}); !errors.Is(err, ErrSingular) {
		t.Fatalf("unpivoted err = %v, want ErrSingular", err)
	}
	x, stats, err := Solve(a, d, 2, Options{Pivot: PivotPartial})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Residual > 1e-12 {
		t.Errorf("residual %g, want ~0", stats.Residual)
	}
	if stats.LU.RowSwaps == 0 || len(stats.LU.Perm) != 4 {
		t.Errorf("stats report no pivoting work: %+v", stats.LU)
	}
	want := matrix.Vector{0.8, -1, 3.6, -0.2000000000000001}
	if !x.Equal(want, 1e-12) {
		t.Errorf("x = %v, want %v", x, want)
	}
}

// TestPivotedSolveEngineEquivalence: under PivotPartial the pass
// decomposition is unchanged, so oracle/compiled and serial/parallel runs
// stay DeepEqual in results and stats — the same equivalence contract the
// unpivoted path has always had.
func TestPivotedSolveEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for _, n := range []int{3, 6, 10, 13} {
		for _, w := range []int{2, 3} {
			a, d := permutedDominant(rng, n)
			opts := Options{Pivot: PivotPartial, Engine: core.EngineCompiled}
			xc, sc, err := Solve(a, d, w, opts)
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			opts.Engine = core.EngineOracle
			xo, so, err := Solve(a, d, w, opts)
			if err != nil {
				t.Fatalf("n=%d w=%d oracle: %v", n, w, err)
			}
			if !reflect.DeepEqual(xc, xo) || !reflect.DeepEqual(sc, so) {
				t.Errorf("n=%d w=%d: engines diverge under pivoting", n, w)
			}
			ex := core.NewExecutor(3)
			xp, sp, err := Solve(a, d, w, Options{Pivot: PivotPartial, Executor: ex})
			ex.Close()
			if err != nil {
				t.Fatalf("n=%d w=%d parallel: %v", n, w, err)
			}
			if !reflect.DeepEqual(xc, xp) || !reflect.DeepEqual(sc, sp) {
				t.Errorf("n=%d w=%d: parallel diverges from serial under pivoting", n, w)
			}
		}
	}
}

// TestPivotedBlockLUReconstruction: the recorded permutation really is the
// factorization's row permutation — applying Perm to A reproduces L·U to
// rounding.
func TestPivotedBlockLUReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(812))
	for _, n := range []int{1, 4, 7, 12} {
		for _, w := range []int{2, 3} {
			a, _ := permutedDominant(rng, n)
			l, u, stats, err := BlockLU(a, w, Options{Pivot: PivotPartial})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			pa := matrix.NewDense(n, n)
			for i, pi := range stats.Perm {
				for j := 0; j < n; j++ {
					pa.Set(i, j, a.At(pi, j))
				}
			}
			if lu := l.Mul(u); !lu.Equal(pa, 1e-9) {
				t.Errorf("n=%d w=%d: P·A ≠ L·U (off by %g)", n, w, lu.MaxAbsDiff(pa))
			}
		}
	}
}

// TestPivotNoneStatsUnchanged: the default policy reports no permutation —
// unpivoted stats are byte-compatible with what they were before pivoting
// existed (nil Perm, zero RowSwaps).
func TestPivotNoneStatsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(813))
	a, _ := diagonallyDominant(rng, 8)
	_, _, stats, err := BlockLU(a, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Perm != nil || stats.RowSwaps != 0 {
		t.Errorf("PivotNone stats carry pivoting fields: %+v", stats)
	}
}

// TestPivotedSingular: an exactly singular matrix (a zero column survives
// elimination exactly — 0 − m·0 = 0) still fails with the typed
// *SingularError even under pivoting, carrying the column where every
// candidate pivot vanished.
func TestPivotedSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 0, 2},
		{3, 0, 1},
		{2, 0, 5},
	})
	_, _, _, err := BlockLU(a, 2, Options{Pivot: PivotPartial})
	var serr *SingularError
	if !errors.As(err, &serr) || serr.Index != 1 {
		t.Fatalf("err = %v, want *SingularError at column 1", err)
	}
	if !errors.Is(err, ErrSingular) {
		t.Error("pivoted singular error does not match ErrSingular")
	}
}

// TestRefineConvergesAndReports: refinement on a well-conditioned system
// converges within the budget and reports the trajectory; the refined
// residual is at or below the direct solve's.
func TestRefineConvergesAndReports(t *testing.T) {
	rng := rand.New(rand.NewSource(814))
	for _, n := range []int{4, 9, 14} {
		a, d := permutedDominant(rng, n)
		xd, sd, err := Solve(a, d, 3, Options{Pivot: PivotPartial})
		if err != nil {
			t.Fatalf("n=%d direct: %v", n, err)
		}
		direct := sd.Residual
		_ = xd
		x, stats, err := Solve(a, d, 3, Options{Pivot: PivotPartial, Refine: RefineOptions{MaxIters: 5}})
		if err != nil {
			t.Fatalf("n=%d refined: %v", n, err)
		}
		if !stats.Refine.Converged {
			t.Fatalf("n=%d: refinement did not converge: %+v", n, stats.Refine)
		}
		if stats.Refine.ResidualNorm > 1e-10 {
			t.Errorf("n=%d: converged report norm %g, want tiny", n, stats.Refine.ResidualNorm)
		}
		if stats.Residual > direct+1e-14 {
			t.Errorf("n=%d: refinement worsened the residual: %g → %g", n, direct, stats.Residual)
		}
		if got := residualHost(a, x, d); got != stats.Residual {
			t.Errorf("n=%d: reported residual %g, recomputed %g", n, stats.Residual, got)
		}
	}
}

// residualHost recomputes ‖A·x − d‖∞ independently of the solver.
func residualHost(a *matrix.Dense, x, d matrix.Vector) float64 {
	return residual(a, x, d)
}

// TestRefineIllConditionedTyped: an unreachable tolerance exhausts the
// budget and yields the typed *IllConditionedError carrying the report —
// never an unconverged solution.
func TestRefineIllConditionedTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(815))
	a, d := diagonallyDominant(rng, 6)
	x, _, err := Solve(a, d, 3, Options{Refine: RefineOptions{MaxIters: 3, Tol: 1e-300}})
	if x != nil {
		t.Error("ill-conditioned solve returned a solution alongside the error")
	}
	var ice *IllConditionedError
	if !errors.As(err, &ice) {
		t.Fatalf("err = %v, want *IllConditionedError", err)
	}
	if !errors.Is(err, ErrIllConditioned) {
		t.Error("error does not match ErrIllConditioned")
	}
	if ice.Report.Converged || ice.Report.Iters != 3 || ice.Report.ResidualNorm <= 0 {
		t.Errorf("report %+v, want 3 unconverged iters with a positive norm", ice.Report)
	}
}

// TestRefineEngineEquivalence: the residual matvec is bit-identical to the
// host ordering on both engines, so refined solves stay DeepEqual across
// engines — iteration counts, norms and all.
func TestRefineEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(816))
	a, d := permutedDominant(rng, 9)
	opts := Options{Pivot: PivotPartial, Refine: RefineOptions{MaxIters: 4}, Engine: core.EngineCompiled}
	xc, sc, err := Solve(a, d, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = core.EngineOracle
	xo, so, err := Solve(a, d, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(xc, xo) || !reflect.DeepEqual(sc, so) {
		t.Errorf("refined solves diverge across engines:\n%+v\n%+v", sc, so)
	}
}

// TestPivotedBlockPartitionedSolve: the identity-padded embedding keeps
// its padding rows out of the pivot search, so block-partitioned solves
// pivot and refine transparently.
func TestPivotedBlockPartitionedSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(817))
	for _, n := range []int{5, 7, 11} {
		a, d := permutedDominant(rng, n)
		ws := NewWorkspace(4)
		x, stats, err := ws.BlockPartitionedSolve(a, d, Options{Pivot: PivotPartial, Refine: RefineOptions{MaxIters: 4}})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(x) != n {
			t.Fatalf("n=%d: len(x)=%d", n, len(x))
		}
		if stats.Residual > 1e-10 {
			t.Errorf("n=%d: residual %g", n, stats.Residual)
		}
		if !stats.Refine.Converged {
			t.Errorf("n=%d: padded refinement did not converge: %+v", n, stats.Refine)
		}
	}
}

// TestPivotedWorkspaceZeroAlloc: the warm compiled path stays at 0
// allocs/op with pivoting and refinement enabled — the permutation and
// refinement buffers are workspace-owned and reused like every other.
func TestPivotedWorkspaceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	rng := rand.New(rand.NewSource(818))
	w, n := 4, 24
	a, d := permutedDominant(rng, n)
	ws := NewWorkspace(w)
	opts := Options{Engine: core.EngineCompiled, Pivot: PivotPartial, Refine: RefineOptions{MaxIters: 4}}
	if _, _, err := ws.Solve(a, d, opts); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := ws.Solve(a, d, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("pivoted+refined steady state allocates %v objects/op, want 0", allocs)
	}
}
