package solve

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// diagonallyDominant builds a strictly diagonally dominant n×n system.
func diagonallyDominant(rng *rand.Rand, n int) (*matrix.Dense, matrix.Vector) {
	a := matrix.RandomDense(rng, n, n, 3)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(a.At(i, j))
			}
		}
		a.Set(i, i, rowSum+1+float64(rng.Intn(3)))
	}
	d := matrix.RandomVector(rng, n, 5)
	return a, d
}

func TestJacobiConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{3, 7, 12} {
		a, d := diagonallyDominant(rng, n)
		x, stats, err := Jacobi(a, d, 3, 500, 1e-10, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v (residual %g after %d sweeps)", n, err, stats.Residual, stats.Sweeps)
		}
		if got := a.MulVec(x, nil); !got.Equal(d, 1e-8) {
			t.Errorf("n=%d: residual too large", n)
		}
		if stats.ArraySteps == 0 {
			t.Errorf("n=%d: no array work recorded", n)
		}
	}
}

func TestGaussSeidelConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, n := range []int{3, 8, 13} {
		a, d := diagonallyDominant(rng, n)
		x, stats, err := GaussSeidel(a, d, 3, 500, 1e-10, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := a.MulVec(x, nil); !got.Equal(d, 1e-8) {
			t.Errorf("n=%d: residual too large", n)
		}
		if stats.Sweeps == 0 || stats.ArraySteps == 0 {
			t.Errorf("n=%d: stats not recorded: %+v", n, stats)
		}
	}
}

// TestGaussSeidelFasterThanJacobi: on the same system, Gauss–Seidel needs
// no more sweeps than Jacobi (classical result; here a sanity check that
// the block updates really use fresh values).
func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a, d := diagonallyDominant(rng, 12)
	_, js, err := Jacobi(a, d, 3, 1000, 1e-10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, gs, err := GaussSeidel(a, d, 3, 1000, 1e-10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Sweeps > js.Sweeps {
		t.Errorf("Gauss-Seidel %d sweeps vs Jacobi %d", gs.Sweeps, js.Sweeps)
	}
}

func TestJacobiNoConvergence(t *testing.T) {
	// A non-dominant rotation-like system that Jacobi cannot solve in 3 sweeps.
	a := matrix.FromRows([][]float64{{1, 2}, {3, 1}})
	d := matrix.Vector{1, 1}
	_, _, err := Jacobi(a, d, 2, 3, 1e-12, Options{})
	if err == nil {
		t.Error("expected ErrNoConvergence")
	}
}

func TestLowerTriangularSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, n := range []int{1, 4, 9, 14} {
		l := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, float64(rng.Intn(9)-4))
			}
			l.Set(i, i, float64(1+rng.Intn(4)))
		}
		want := matrix.RandomVector(rng, n, 4)
		d := l.MulVec(want, nil)
		y, stats, err := LowerTriangularSolve(l, d, 3, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !y.Equal(want, 1e-9) {
			t.Errorf("n=%d: wrong solution (off by %g)", n, y.MaxAbsDiff(want))
		}
		if n > 3 && stats.ArraySteps == 0 {
			t.Errorf("n=%d: off-diagonal work did not use the array", n)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	a := matrix.NewDense(2, 3)
	if _, _, err := Jacobi(a, make(matrix.Vector, 2), 2, 5, 1e-6, Options{}); err == nil {
		t.Error("expected non-square error")
	}
	sq := matrix.FromRows([][]float64{{0, 1}, {1, 1}})
	if _, _, err := Jacobi(sq, make(matrix.Vector, 2), 2, 5, 1e-6, Options{}); err == nil {
		t.Error("expected zero-diagonal error")
	}
	if _, _, err := GaussSeidel(a, make(matrix.Vector, 2), 2, 5, 1e-6, Options{}); err == nil {
		t.Error("expected non-square error")
	}
	notL := matrix.FromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := LowerTriangularSolve(notL, make(matrix.Vector, 2), 2, Options{}); err == nil {
		t.Error("expected not-lower-triangular error")
	}
	sing := matrix.FromRows([][]float64{{1, 0}, {1, 0}})
	_, _, err := LowerTriangularSolve(sing, make(matrix.Vector, 2), 2, Options{})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	var serr *SingularError
	if !errors.As(err, &serr) || serr.Index != 1 {
		t.Errorf("err = %#v, want a *SingularError at pivot 1", err)
	}
}
