package solve

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// The intra-solve parallel contract: the blocked solvers decompose every
// elimination step into the same pass set with and without an executor, so
// results AND statistics must be bit-identical at every worker count, on
// both engines, serial or fanned out. These tests enforce exactly that.

// TestParallelBlockLUEquiv: parallel BlockLU ≡ serial compiled ≡ serial
// oracle, factors and stats DeepEqual, across worker counts and shapes.
func TestParallelBlockLUEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, w := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, w, 2*w + 1, 3 * w, 17} {
			a, _ := diagonallyDominant(rng, n)
			l0, u0, st0, err := BlockLU(a, w, Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatalf("serial compiled BlockLU (w=%d n=%d): %v", w, n, err)
			}
			lo, uo, sto, err := BlockLU(a, w, Options{Engine: core.EngineOracle})
			if err != nil {
				t.Fatalf("serial oracle BlockLU (w=%d n=%d): %v", w, n, err)
			}
			if !l0.Equal(lo, 0) || !u0.Equal(uo, 0) || !reflect.DeepEqual(st0, sto) {
				t.Fatalf("w=%d n=%d: engines disagree serially", w, n)
			}
			for _, workers := range []int{1, 2, 4} {
				ex := core.NewExecutor(workers)
				for _, eng := range []core.Engine{core.EngineCompiled, core.EngineOracle} {
					l1, u1, st1, err := BlockLU(a, w, Options{Engine: eng, Executor: ex})
					if err != nil {
						t.Fatalf("parallel %v BlockLU (w=%d n=%d workers=%d): %v", eng, w, n, workers, err)
					}
					if !l0.Equal(l1, 0) || !u0.Equal(u1, 0) || !reflect.DeepEqual(st0, st1) {
						t.Fatalf("w=%d n=%d workers=%d %v: parallel BlockLU differs from serial\nserial   %+v\nparallel %+v",
							w, n, workers, eng, st0, st1)
					}
				}
				ex.Close()
			}
		}
	}
}

// TestParallelSolveEquiv: parallel full Solve and BlockPartitionedSolve ≡
// their serial runs, solution and stats DeepEqual, across worker counts.
func TestParallelSolveEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for _, w := range []int{2, 3, 4} {
		for _, n := range []int{1, w, 2*w + 1, 14} {
			a, _ := diagonallyDominant(rng, n)
			want := matrix.RandomVector(rng, n, 4)
			d := a.MulVec(want, nil)
			x0, st0, err := Solve(a, d, w, Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatal(err)
			}
			if !x0.Equal(want, 1e-7) {
				t.Fatalf("w=%d n=%d: wrong serial solution", w, n)
			}
			xb0, stb0, err := BlockPartitionedSolve(a, d, w, Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				ex := core.NewExecutor(workers)
				x1, st1, err := Solve(a, d, w, Options{Engine: core.EngineCompiled, Executor: ex})
				if err != nil {
					t.Fatal(err)
				}
				if !x0.Equal(x1, 0) || !reflect.DeepEqual(st0, st1) {
					t.Fatalf("w=%d n=%d workers=%d: parallel Solve differs\nserial   %+v\nparallel %+v",
						w, n, workers, st0, st1)
				}
				xb1, stb1, err := BlockPartitionedSolve(a, d, w, Options{Engine: core.EngineCompiled, Executor: ex})
				if err != nil {
					t.Fatal(err)
				}
				if !xb0.Equal(xb1, 0) || !reflect.DeepEqual(stb0, stb1) {
					t.Fatalf("w=%d n=%d workers=%d: parallel BlockPartitionedSolve differs", w, n, workers)
				}
				ex.Close()
			}
		}
	}
}

// TestParallelInverseEquiv: the per-target block-column fan-out of
// LowerTriangularInverse (and the full Inverse on top of it) returns the
// same inverse and stats as the serial order — DeepEqual across worker
// counts and engines (the ROADMAP "parallel inverse" item).
func TestParallelInverseEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	for _, w := range []int{2, 3, 4} {
		for _, n := range []int{1, w, 2*w + 1, 13} {
			l := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					l.Set(i, j, float64(rng.Intn(5)-2))
				}
				l.Set(i, i, float64(1+rng.Intn(3)))
			}
			x0, st0, err := LowerTriangularInverse(l, w, Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatalf("serial inverse (w=%d n=%d): %v", w, n, err)
			}
			eye := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				eye.Set(i, i, 1)
			}
			if !l.Mul(x0).Equal(eye, 1e-8) {
				t.Fatalf("w=%d n=%d: L·X ≠ I", w, n)
			}
			a, _ := diagonallyDominant(rng, n)
			ai0, ast0, err := Inverse(a, w, Options{Engine: core.EngineCompiled})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4} {
				ex := core.NewExecutor(workers)
				for _, eng := range []core.Engine{core.EngineCompiled, core.EngineOracle} {
					x1, st1, err := LowerTriangularInverse(l, w, Options{Engine: eng, Executor: ex})
					if err != nil {
						t.Fatalf("parallel %v inverse (w=%d n=%d workers=%d): %v", eng, w, n, workers, err)
					}
					if !x0.Equal(x1, 0) || !reflect.DeepEqual(st0, st1) {
						t.Fatalf("w=%d n=%d workers=%d %v: parallel inverse differs\nserial   %+v\nparallel %+v",
							w, n, workers, eng, st0, st1)
					}
				}
				ai1, ast1, err := Inverse(a, w, Options{Engine: core.EngineCompiled, Executor: ex})
				if err != nil {
					t.Fatal(err)
				}
				if !ai0.Equal(ai1, 0) || !reflect.DeepEqual(ast0, ast1) {
					t.Fatalf("w=%d n=%d workers=%d: parallel Inverse differs from serial", w, n, workers)
				}
				ex.Close()
			}
		}
	}
}

// TestWorkspaceReuse: repeated solves on one workspace — different
// problems, different shapes — must match fresh-workspace solves exactly
// (no state leaking between calls).
func TestWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	w := 3
	ws := NewWorkspace(w)
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(14)
		a, _ := diagonallyDominant(rng, n)
		d := a.MulVec(matrix.RandomVector(rng, n, 4), nil)
		x, st, err := ws.Solve(a, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		xf, stf, err := Solve(a, d, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !x.Equal(xf, 0) || !reflect.DeepEqual(st, stf) {
			t.Fatalf("trial %d (n=%d): reused workspace differs from fresh", trial, n)
		}
	}
}

// TestParallelErrorPropagation: a zero pivot must surface as the same
// error with an executor attached, and the executor must stay usable.
func TestParallelErrorPropagation(t *testing.T) {
	ex := core.NewExecutor(2)
	defer ex.Close()
	singular := matrix.NewDense(4, 4) // all zeros: pivot fails immediately
	_, _, _, err := BlockLU(singular, 2, Options{Executor: ex})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	var serr *SingularError
	if !errors.As(err, &serr) || serr.Index != 0 {
		t.Fatalf("err = %#v, want a *SingularError at pivot 0", err)
	}
	// The executor survives and still runs healthy work.
	rng := rand.New(rand.NewSource(404))
	a, _ := diagonallyDominant(rng, 6)
	if _, _, _, err := BlockLU(a, 2, Options{Executor: ex}); err != nil {
		t.Fatal(err)
	}
}
