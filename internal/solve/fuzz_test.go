package solve

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// FuzzPivotedSolve is the fuzz armor of partial pivoting: random
// well-conditioned (diagonally dominant) systems with their rows scrambled
// by a fuzzed permutation — so the factorization must pivot to survive —
// solved under PivotPartial on both engines and on the block-partitioned
// embedding. The solves must be bit-identical to each other, results AND
// stats; the recorded permutation must reconstruct P·A = L·U on the host;
// and the recovered solution must sit near the unscrambled reference. The
// committed corpus under testdata/fuzz seeds the shapes the unit tests
// care about; CI runs a short -fuzz smoke on top of the seed replay.
func FuzzPivotedSolve(f *testing.F) {
	f.Add(4, 2, []byte{1, 0, 3, 2}, int64(1))             // adjacent swaps
	f.Add(6, 3, []byte{5, 4, 3, 2, 1, 0}, int64(2))       // full reversal
	f.Add(3, 2, []byte{0, 1, 2}, int64(3))                // identity permutation
	f.Add(9, 4, []byte{8, 0, 4, 2, 6, 1, 7, 3}, int64(4)) // ragged bytes vs n
	f.Add(1, 2, []byte{0}, int64(5))                      // degenerate 1×1
	f.Fuzz(func(t *testing.T, n, w int, permBytes []byte, seed int64) {
		n = 1 + fuzzAbs(n)%12
		w = 2 + fuzzAbs(w)%3
		rng := rand.New(rand.NewSource(seed))
		// A strictly diagonally dominant base system: well-conditioned, so
		// only the fuzzed row scramble can make the factorization hard.
		base := matrix.RandomDense(rng, n, n, 3)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					rowSum += math.Abs(base.At(i, j))
				}
			}
			base.Set(i, i, rowSum+1+float64(rng.Intn(3)))
		}
		xref := matrix.RandomVector(rng, n, 3)
		dbase := base.MulVec(xref, nil)
		// Fisher–Yates seeded by the fuzzed bytes: every byte string maps to
		// a valid permutation, and the interesting ones survive minimization.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			var b byte
			if len(permBytes) > 0 {
				b = permBytes[i%len(permBytes)]
			}
			j := int(b) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		a := matrix.NewDense(n, n)
		d := make(matrix.Vector, n)
		for i, pi := range perm {
			for j := 0; j < n; j++ {
				a.Set(i, j, base.At(pi, j))
			}
			d[i] = dbase[pi]
		}

		opts := Options{Engine: core.EngineCompiled, Pivot: PivotPartial}
		x, stats, err := Solve(a, d, w, opts)
		if err != nil {
			t.Fatalf("pivoted solve (n=%d w=%d perm=%v): %v", n, w, perm, err)
		}
		if !x.Equal(xref, 1e-8) {
			t.Fatalf("pivoted solve wrong (n=%d w=%d perm=%v): off %g", n, w, perm, x.MaxAbsDiff(xref))
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("garbage x[%d]=%g escaped (n=%d w=%d perm=%v)", i, v, n, w, perm)
			}
		}

		oracleOpts := opts
		oracleOpts.Engine = core.EngineOracle
		ox, ostats, err := Solve(a, d, w, oracleOpts)
		if err != nil {
			t.Fatalf("oracle pivoted solve: %v", err)
		}
		if !reflect.DeepEqual(x, ox) || !reflect.DeepEqual(stats, ostats) {
			t.Fatalf("engines disagree on the pivoted solve (n=%d w=%d perm=%v):\ncompiled %+v\noracle   %+v",
				n, w, perm, stats, ostats)
		}

		// Host reconstruction: the recorded permutation must satisfy
		// P·A = L·U to factorization accuracy.
		lf, uf, lst, err := BlockLU(a, w, opts)
		if err != nil {
			t.Fatalf("pivoted BlockLU: %v", err)
		}
		if len(lst.Perm) != n {
			t.Fatalf("factorization recorded a %d-entry permutation, want %d", len(lst.Perm), n)
		}
		pa := matrix.NewDense(n, n)
		for i, pi := range lst.Perm {
			for j := 0; j < n; j++ {
				pa.Set(i, j, a.At(pi, j))
			}
		}
		if !lf.Mul(uf).Equal(pa, 1e-8) {
			t.Fatalf("P·A ≠ L·U (n=%d w=%d perm=%v recorded=%v)", n, w, perm, lst.Perm)
		}

		// The block-partitioned embedding pads to a multiple of w; padding
		// rows must never enter the pivot search.
		bx, _, err := BlockPartitionedSolve(a, d, w, opts)
		if err != nil {
			t.Fatalf("pivoted BlockPartitionedSolve: %v", err)
		}
		if !bx.Equal(xref, 1e-8) {
			t.Fatalf("block-partitioned pivoted solve wrong (n=%d w=%d perm=%v): off %g",
				n, w, perm, bx.MaxAbsDiff(xref))
		}
	})
}

// fuzzAbs keeps fuzzed shape parameters in range without biasing the
// modulo.
func fuzzAbs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
