// Package solve implements the applications the paper's conclusions list as
// further uses of the methodology (§4, detailed in the authors' report
// /8/, which is not publicly available): iterative linear system solution
// (Jacobi and block Gauss–Seidel sweeps whose matrix–vector work runs
// through the DBT linear array) and triangular system solution by block
// forward substitution with the off-diagonal work on the array.
//
// Everything O(n²) per sweep goes through the fixed-size systolic array via
// DBT; only the O(n·w) diagonal-block substitutions of the triangular
// solver remain on the host (the substitution for report /8/'s in-array
// scheme, documented in DESIGN.md §4).
package solve

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
)

// ErrNoConvergence is returned when an iterative method exhausts its sweep
// budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("solve: iteration did not converge")

// Options configure a solver run. The zero value is ready to use.
type Options struct {
	// Engine selects the execution engine for every array pass the solver
	// issues (core.EngineAuto: the compiled fast path). Both engines return
	// bit-identical results, so Engine only changes simulation cost.
	Engine core.Engine
	// Executor, when non-nil, fans the independent array passes of each
	// elimination step (BlockLU trailing-update tiles, triangular-phase
	// panel updates) out across its pool of simulated arrays, with a
	// barrier per step. The pass decomposition is identical with and
	// without an executor, so results and statistics are bit-identical at
	// every worker count; nil means serial on the caller's goroutine. The
	// executor is shared, not owned: Close it separately.
	Executor *core.Executor
	// Pivot selects the row-pivoting policy of the underlying BlockLU
	// (PivotNone: the historical no-pivoting default). PivotPartial runs
	// host-side row permutations between the array passes, widening the
	// solvable class to every nonsingular matrix; the pass decomposition
	// is unchanged, so engine/worker equivalence is unaffected.
	Pivot PivotPolicy
	// Refine opts the direct solvers into iterative refinement
	// (residual-correction cycles on the retained factors); the zero
	// value disables it. See RefineOptions.
	Refine RefineOptions
}

// IterStats reports an iterative solve.
type IterStats struct {
	// Sweeps is the number of iterations executed.
	Sweeps int
	// Residual is the final ‖A·x − d‖∞.
	Residual float64
	// ArraySteps is the total simulated systolic step count across sweeps.
	ArraySteps int
}

// Jacobi solves A·x = d by Jacobi iteration, x ← D⁻¹(d − (A−D)x), with the
// whole off-diagonal matrix–vector product computed on a w-PE DBT array
// each sweep. A must be square with a nonzero diagonal; convergence is
// guaranteed for strictly diagonally dominant A.
func Jacobi(a *matrix.Dense, d matrix.Vector, w, maxSweeps int, tol float64, opts Options) (matrix.Vector, *IterStats, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("solve: Jacobi needs a square matrix, got %d×%d", n, a.Cols())
	}
	if len(d) != n {
		return nil, nil, fmt.Errorf("solve: len(d)=%d, want %d", len(d), n)
	}
	// R = A with zero diagonal; diag holds A's diagonal.
	r := a.Clone()
	diag := make(matrix.Vector, n)
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
		if diag[i] == 0 {
			return nil, nil, fmt.Errorf("solve: zero diagonal at %d", i)
		}
		r.Set(i, i, 0)
	}
	solver := core.NewMatVecSolver(w)
	x := matrix.NewVector(n)
	stats := &IterStats{}
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		res, err := solver.Solve(r, x, nil, core.MatVecOptions{Engine: opts.Engine})
		if err != nil {
			return nil, nil, err
		}
		stats.ArraySteps += res.Stats.T
		for i := 0; i < n; i++ {
			x[i] = (d[i] - res.Y[i]) / diag[i]
		}
		stats.Sweeps = sweep
		stats.Residual = residual(a, x, d)
		if stats.Residual <= tol {
			return x, stats, nil
		}
	}
	return x, stats, ErrNoConvergence
}

// GaussSeidel solves A·x = d by block Gauss–Seidel sweeps with blocks of
// width w: within a sweep, row band r uses the already-updated bands
// r′ < r. The off-diagonal dot products of each row band run through the
// DBT array; the diagonal update divides by A's scalar diagonal.
func GaussSeidel(a *matrix.Dense, d matrix.Vector, w, maxSweeps int, tol float64, opts Options) (matrix.Vector, *IterStats, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("solve: GaussSeidel needs a square matrix, got %d×%d", n, a.Cols())
	}
	if len(d) != n {
		return nil, nil, fmt.Errorf("solve: len(d)=%d, want %d", len(d), n)
	}
	for i := 0; i < n; i++ {
		if a.At(i, i) == 0 {
			return nil, nil, fmt.Errorf("solve: zero diagonal at %d", i)
		}
	}
	solver := core.NewMatVecSolver(w)
	x := matrix.NewVector(n)
	stats := &IterStats{}
	nb := (n + w - 1) / w
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		for rb := 0; rb < nb; rb++ {
			lo, hi := rb*w, (rb+1)*w
			if hi > n {
				hi = n
			}
			// Row band slice of A with its diagonal block's diagonal zeroed,
			// times the current x (mixing updated and old bands).
			band := a.Slice(lo, hi, 0, n)
			for i := lo; i < hi; i++ {
				band.Set(i-lo, i, 0)
			}
			res, err := solver.Solve(band, x, nil, core.MatVecOptions{Engine: opts.Engine})
			if err != nil {
				return nil, nil, err
			}
			stats.ArraySteps += res.Stats.T
			for i := lo; i < hi; i++ {
				x[i] = (d[i] - res.Y[i-lo]) / a.At(i, i)
			}
		}
		stats.Sweeps = sweep
		stats.Residual = residual(a, x, d)
		if stats.Residual <= tol {
			return x, stats, nil
		}
	}
	return x, stats, ErrNoConvergence
}

// LowerTriangularSolve solves L·y = d for lower-triangular L by block
// forward substitution with block width w: the off-diagonal products
// L[r, <r]·y run through the DBT array; each w×w diagonal block is solved
// by host substitution (the report-/8/ substitution).
func LowerTriangularSolve(l *matrix.Dense, d matrix.Vector, w int, opts Options) (matrix.Vector, *IterStats, error) {
	n := l.Rows()
	if l.Cols() != n {
		return nil, nil, fmt.Errorf("solve: triangular solve needs a square matrix, got %d×%d", n, l.Cols())
	}
	if len(d) != n {
		return nil, nil, fmt.Errorf("solve: len(d)=%d, want %d", len(d), n)
	}
	for i := 0; i < n; i++ {
		if l.At(i, i) == 0 {
			return nil, nil, &SingularError{Op: "solve.LowerTriangularSolve", Index: i}
		}
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				return nil, nil, fmt.Errorf("solve: L[%d][%d] ≠ 0: not lower triangular", i, j)
			}
		}
	}
	solver := core.NewMatVecSolver(w)
	y := matrix.NewVector(n)
	stats := &IterStats{}
	nb := (n + w - 1) / w
	for rb := 0; rb < nb; rb++ {
		lo, hi := rb*w, (rb+1)*w
		if hi > n {
			hi = n
		}
		rhs := make(matrix.Vector, hi-lo)
		copy(rhs, d[lo:hi])
		if lo > 0 {
			// s = L[lo:hi, 0:lo]·y[0:lo] on the array.
			res, err := solver.Solve(l.Slice(lo, hi, 0, lo), y[:lo], nil, core.MatVecOptions{Engine: opts.Engine})
			if err != nil {
				return nil, nil, err
			}
			stats.ArraySteps += res.Stats.T
			for i := range rhs {
				rhs[i] -= res.Y[i]
			}
		}
		// Diagonal block substitution on the host.
		for i := lo; i < hi; i++ {
			s := rhs[i-lo]
			for j := lo; j < i; j++ {
				s -= l.At(i, j) * y[j]
			}
			y[i] = s / l.At(i, i)
		}
	}
	stats.Residual = residual(l, y, d)
	return y, stats, nil
}

// residual returns ‖A·x − d‖∞ without allocating: each row's dot product
// accumulates in the same order as matrix.Dense.MulVec, so the value is
// bit-identical to the allocating formulation it replaced.
func residual(a *matrix.Dense, x, d matrix.Vector) float64 {
	r := 0.0
	for i := 0; i < a.Rows(); i++ {
		s := 0.0
		for j, v := range a.RawRow(i) {
			s += v * x[j]
		}
		if v := math.Abs(s - d[i]); v > r {
			r = v
		}
	}
	return r
}
