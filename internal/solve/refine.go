package solve

import (
	"math"

	"repro/internal/matrix"
)

// Iterative refinement: residual-correction cycles on the retained block-LU
// factors. The residual A·x runs as one compiled matvec pass per cycle
// (both engines return bit-identical values, so the reported norms are
// engine-invariant); the correction solve reuses the factor matrices and
// the trisolve substrate already living in the workspace, so a warm
// workspace refines at 0 allocs/op.

// refineEps is the double-precision unit roundoff used by the scaled
// default tolerance.
const refineEps = 0x1p-52

// refine runs Options.Refine's correction cycles on the solution ws.x of
// the base solve, updating ws.stats (Refine report, Residual, and the
// Tri/MatVec pass accounting of the extra work) in place. Non-convergence
// within the budget returns *IllConditionedError carrying the report; the
// unconverged solution is withheld by the caller.
func (ws *Workspace) refine(a *matrix.Dense, d matrix.Vector, opts Options) error {
	n := a.Rows()
	st := &ws.stats
	for iter := 0; ; iter++ {
		// r = d − A·x with A·x as one array matvec pass.
		ws.resid = matrix.ReuseVec(ws.resid, n)
		ws.ar.Reset()
		steps, err := ws.ar.MatVecPass(ws.resid, a, ws.x, nil, ws.w, opts.Engine)
		if err != nil {
			return err
		}
		st.MatVecSteps += steps
		st.MatVecPasses++
		norm := 0.0
		for i := range ws.resid {
			ws.resid[i] = d[i] - ws.resid[i]
			if v := math.Abs(ws.resid[i]); v > norm {
				norm = v
			}
		}
		tol := opts.Refine.Tol
		if tol <= 0 {
			tol = refineTol(a, ws.x, d)
		}
		if norm <= tol {
			// The report carries the array-measured norm the convergence
			// decision used; Residual stays the host-recomputed value every
			// solve reports (the two can differ in the last bits — the
			// array's band summation order is not the host row-dot order).
			st.Refine = ConditionReport{Iters: iter, ResidualNorm: norm, Converged: true}
			st.Residual = residual(a, ws.x, d)
			return nil
		}
		if iter >= opts.Refine.MaxIters {
			rep := ConditionReport{Iters: iter, ResidualNorm: norm, Converged: false}
			st.Refine = rep
			return &IllConditionedError{Op: "solve.Solve", Report: rep}
		}
		// Correction: L·U·δ = P·r on the retained factors, then x += δ.
		rhs := ws.resid
		if len(ws.lu.Perm) != 0 {
			ws.rp = matrix.ReuseVec(ws.rp, n)
			for i, pi := range ws.lu.Perm {
				ws.rp[i] = ws.resid[pi]
			}
			rhs = ws.rp
		}
		ws.fwX = matrix.ReuseVec(ws.fwX, n)
		fw, err := ws.tri.SolveLowerInto(ws.fwX, ws.l, rhs, opts.Engine)
		if err != nil {
			return err
		}
		ws.corr = matrix.ReuseVec(ws.corr, n)
		bw, err := ws.tri.SolveUpperInto(ws.corr, ws.u, ws.fwX, opts.Engine)
		if err != nil {
			return err
		}
		st.TriSteps += fw.TriSteps + bw.TriSteps
		st.TriPasses += fw.TriPasses + bw.TriPasses
		st.MatVecSteps += fw.MatVecSteps + bw.MatVecSteps
		st.MatVecPasses += fw.MatVecPasses + bw.MatVecPasses
		for i := range ws.x {
			ws.x[i] += ws.corr[i]
		}
	}
}

// refineTol is the scaled default tolerance, 64·ε·(‖A‖∞·‖x‖∞ + ‖d‖∞):
// the smallest residual a backward-stable solve can promise at this
// scale, with a small safety factor so well-conditioned systems converge
// in zero or one cycle.
func refineTol(a *matrix.Dense, x, d matrix.Vector) float64 {
	normA := 0.0
	for i := 0; i < a.Rows(); i++ {
		s := 0.0
		for _, v := range a.RawRow(i) {
			s += math.Abs(v)
		}
		if s > normA {
			normA = s
		}
	}
	normX, normD := 0.0, 0.0
	for _, v := range x {
		if v := math.Abs(v); v > normX {
			normX = v
		}
	}
	for _, v := range d {
		if v := math.Abs(v); v > normD {
			normD = v
		}
	}
	return 64 * refineEps * (normA*normX + normD)
}
