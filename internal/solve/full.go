package solve

import (
	"repro/internal/core"
	"repro/internal/matrix"
)

// The full direct solve: A·x = d factored as L·U on the hexagonal array,
// then both triangular systems solved with the dedicated triangular-solver
// array (diagonal blocks) and the matvec array (off-diagonal panels) — the
// complete solver pipeline of the paper's §4 list, every O(n³) and O(n²)
// piece inside a fixed-size systolic array.

// SolveStats reports the array work of a full direct solve.
type SolveStats struct {
	// LU is the factorization's accounting.
	LU LUStats
	// TriSteps/TriPasses and MatVecSteps/MatVecPasses aggregate both
	// triangular phases (forward with L, backward with U).
	TriSteps, TriPasses       int
	MatVecSteps, MatVecPasses int
	// Residual is ‖A·x − d‖∞ of the returned solution.
	Residual float64
	// Refine reports the iterative-refinement trajectory when
	// Options.Refine enabled it (zero value otherwise). A solve that
	// returns successfully with refinement enabled always has
	// Refine.Converged true — non-convergence is a typed error, not a
	// stats flag.
	Refine ConditionReport
}

// Solve solves A·x = d directly: block LU factorization with trailing
// updates on the hexagonal array (tile passes fanned across opts.Executor
// when one is attached), then the two triangular systems on the
// triangular-solver and matvec arrays (right-looking, with the same
// per-step fan-out). A must be square; without pivoting it also needs
// nonsingular leading minors (e.g. diagonal dominance), while
// opts.Pivot == PivotPartial accepts any nonsingular A. opts.Refine adds
// residual-correction cycles on the retained factors, failing with
// *IllConditionedError instead of returning an unconverged solution; w is
// the array size. The implementation lives on Workspace.Solve — use a
// Workspace directly for repeated steady-state solves.
func Solve(a *matrix.Dense, d matrix.Vector, w int, opts Options) (matrix.Vector, *SolveStats, error) {
	return NewWorkspaceExecutor(w, opts.Executor).Solve(a, d, opts)
}

// Problem is one independent A·x = d problem of a batch.
type Problem struct {
	A *matrix.Dense
	D matrix.Vector
	// Opts configure this problem's run (engine selection).
	Opts Options
}

// Result is the outcome of one batched solve.
type Result struct {
	X     matrix.Vector
	Stats *SolveStats
}

// SolveBatch solves every problem concurrently on the core worker pool
// (workers < 1 means one worker) and returns results aligned with the
// input. On error the failing entries are nil and the first error
// (annotated with its index) is returned alongside the successful results.
// Workloads repeat shapes, so workers share the compiled plan cache exactly
// as the matvec/matmul batch APIs do.
func SolveBatch(problems []Problem, w, workers int) ([]*Result, error) {
	return core.Batch(problems, workers, func(p Problem) (*Result, error) {
		x, stats, err := Solve(p.A, p.D, w, p.Opts)
		if err != nil {
			return nil, err
		}
		return &Result{X: x, Stats: stats}, nil
	})
}
