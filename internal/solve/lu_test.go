package solve

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestBlockLUFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, n := range []int{1, 3, 6, 10, 13} {
		for _, w := range []int{2, 3, 4} {
			a, _ := diagonallyDominant(rng, n)
			l, u, stats, err := BlockLU(a, w, Options{})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			if !l.Mul(u).Equal(a, 1e-8) {
				t.Errorf("n=%d w=%d: L·U ≠ A (off by %g)", n, w, l.Mul(u).MaxAbsDiff(a))
			}
			// Shape: unit lower / upper triangular.
			for i := 0; i < n; i++ {
				if l.At(i, i) != 1 {
					t.Errorf("L[%d][%d]=%g, want 1", i, i, l.At(i, i))
				}
				for j := i + 1; j < n; j++ {
					if l.At(i, j) != 0 {
						t.Errorf("L[%d][%d]=%g above diagonal", i, j, l.At(i, j))
					}
				}
				for j := 0; j < i; j++ {
					if u.At(i, j) != 0 {
						t.Errorf("U[%d][%d]=%g below diagonal", i, j, u.At(i, j))
					}
				}
			}
			if n > w && stats.ArrayPasses == 0 {
				t.Errorf("n=%d w=%d: trailing updates did not use the array", n, w)
			}
		}
	}
}

func TestBlockLUZeroPivot(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	if _, _, _, err := BlockLU(a, 2, Options{}); err == nil {
		t.Error("expected zero-pivot error")
	}
	if _, _, _, err := BlockLU(matrix.NewDense(2, 3), 2, Options{}); err == nil {
		t.Error("expected non-square error")
	}
}

func TestLowerTriangularInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for _, n := range []int{1, 4, 7, 12} {
		for _, w := range []int{2, 3} {
			lo := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					lo.Set(i, j, float64(rng.Intn(5)-2))
				}
				lo.Set(i, i, float64(1+rng.Intn(3)))
			}
			inv, stats, err := LowerTriangularInverse(lo, w, Options{})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			prod := lo.Mul(inv)
			id := identity(n)
			if !prod.Equal(id, 1e-9) {
				t.Errorf("n=%d w=%d: L·L⁻¹ ≠ I (off by %g)", n, w, prod.MaxAbsDiff(id))
			}
			if n > w && stats.ArrayPasses == 0 {
				t.Errorf("n=%d w=%d: inversion did not use the array", n, w)
			}
		}
	}
}

func TestLowerTriangularInverseSingular(t *testing.T) {
	lo := matrix.NewDense(2, 2)
	lo.Set(1, 0, 1) // zero diagonal
	_, _, err := LowerTriangularInverse(lo, 2, Options{})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	var serr *SingularError
	if !errors.As(err, &serr) || serr.Index != 0 {
		t.Errorf("err = %#v, want a *SingularError at pivot 0", err)
	}
}

func TestDenseInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 4, 9} {
		a, _ := diagonallyDominant(rng, n)
		inv, stats, err := Inverse(a, 3, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !a.Mul(inv).Equal(identity(n), 1e-7) {
			t.Errorf("n=%d: A·A⁻¹ ≠ I (off by %g)", n, a.Mul(inv).MaxAbsDiff(identity(n)))
		}
		if !inv.Mul(a).Equal(identity(n), 1e-7) {
			t.Errorf("n=%d: A⁻¹·A ≠ I", n)
		}
		if n > 3 && stats.ArraySteps == 0 {
			t.Errorf("n=%d: no array work", n)
		}
	}
}

// TestLUArrayDominance: for larger matrices, the host op count grows like
// n·w² per block column (O(n²w) total) while the array handles the O(n³)
// trailing volume — host ops per total multiply work must shrink as n grows.
func TestLUArrayDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	w := 3
	ratio := func(n int) float64 {
		a, _ := diagonallyDominant(rng, n)
		_, _, stats, err := BlockLU(a, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(stats.HostOps) / float64(n*n*n)
	}
	small, large := ratio(6), ratio(24)
	if large >= small {
		t.Errorf("host-op share did not shrink: n=6 → %.4f, n=24 → %.4f", small, large)
	}
}

func identity(n int) *matrix.Dense {
	id := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	return id
}

// Guard against accidental float drift in the well-conditioned test
// systems: the diagonally dominant generators must produce condition
// numbers small enough that 1e-7 tolerances are meaningful.
func TestDominantSystemsAreWellScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a, _ := diagonallyDominant(rng, 10)
	maxAbs := 0.0
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if v := math.Abs(a.At(i, j)); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs > 100 {
		t.Errorf("test generator produces badly scaled entries (max %g)", maxAbs)
	}
}
