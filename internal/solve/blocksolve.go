package solve

import (
	"repro/internal/matrix"
)

// BlockPartitionedSolve solves A·x = d through the paper's block
// partitioning (internal/blockpart): A is partitioned into the w×w block
// grid of Fig. 1a and identity-padded to the exact n̄w × n̄w block multiple
// (Grid.PaddedIdentity — zero padding would make the system singular),
// the padded system runs the full array pipeline (block LU + triangular
// solves, see Solve), and the first n solution components are returned.
//
// On block-aligned shapes this is exactly Solve; off the boundaries it is
// the block-partitioned embedding that keeps every array pass at full
// block granularity, at the cost of (n̄w − n) trivial padding rows. The
// extra padding rows factor as 1×identity pivots, so the returned x is
// bit-identical to Solve's on the original rows whenever n is already a
// block multiple, and agrees to factorization order otherwise.
func BlockPartitionedSolve(a *matrix.Dense, d matrix.Vector, w int, opts Options) (matrix.Vector, *SolveStats, error) {
	return NewWorkspaceExecutor(w, opts.Executor).BlockPartitionedSolve(a, d, opts)
}
