package solve

// Partial pivoting and iterative refinement: the two robustness layers
// that widen BlockLU's solvable class beyond nonsingular leading minors.
// Pivoting runs entirely as host-side row permutations between the
// existing array passes (DESIGN §11) — the factor pass decomposition is
// untouched, so serial/parallel/oracle/compiled equivalence carries over
// verbatim. Refinement rides the already-compiled residual matvec and the
// retained triangular factors, so a warm workspace refines at 0 allocs/op.

// PivotPolicy selects the row-pivoting strategy of BlockLU and every
// solver built on it.
type PivotPolicy int

const (
	// PivotNone factors A = L·U with no row exchanges — the historical
	// default, requiring nonsingular leading minors (e.g. diagonal
	// dominance). Zero value, so existing Options behave unchanged.
	PivotNone PivotPolicy = iota
	// PivotPartial factors P·A = L·U with partial (row) pivoting: each
	// elimination column picks the largest-magnitude candidate pivot and
	// swaps its row to the diagonal on the host, between array passes.
	// Any nonsingular A factors; exact singularity still returns
	// *SingularError.
	PivotPartial
)

// String names the policy for logs and bench labels.
func (p PivotPolicy) String() string {
	switch p {
	case PivotNone:
		return "none"
	case PivotPartial:
		return "partial"
	default:
		return "unknown"
	}
}

// RefineOptions opt a solve into iterative refinement: after the direct
// solve, residual-correction cycles x ← x + (LU)⁻¹·P·(d − A·x) run until
// the residual norm meets the tolerance or the budget is exhausted. The
// residual is one compiled matvec pass; the correction reuses the
// retained factors in the pooled workspace. The zero value disables
// refinement.
type RefineOptions struct {
	// MaxIters is the correction-cycle budget; 0 disables refinement.
	// If the budget runs out above tolerance the solve returns
	// *IllConditionedError instead of the unconverged solution.
	MaxIters int
	// Tol is the target ‖A·x − d‖∞. Tol <= 0 selects a scaled default,
	// 64·ε·(‖A‖∞·‖x‖∞ + ‖d‖∞), recomputed each cycle — roughly "as good
	// as the conditioning allows" without hand-tuning per system.
	Tol float64
}
