package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// TestMatMulSolverCorrect: end-to-end C = A·B + E through DBT + the
// hexagonal array with spiral feedback, exact for every shape.
func TestMatMulSolverCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, w := range []int{1, 2, 3} {
		s := NewMatMulSolver(w)
		for _, shape := range [][3]int{
			{1, 1, 1}, {w, w, w}, {2 * w, w, 3 * w}, {2*w - 1, w + 1, 2*w + 1},
			{3 * w, 2 * w, w}, {1, 3 * w, 1},
		} {
			n, p, m := shape[0], shape[1], shape[2]
			a := matrix.RandomDense(rng, n, p, 3)
			b := matrix.RandomDense(rng, p, m, 3)
			e := matrix.RandomDense(rng, n, m, 3)
			res, err := s.Solve(a, b, MatMulOptions{E: e})
			if err != nil {
				t.Fatalf("w=%d %v: %v", w, shape, err)
			}
			want := a.Mul(b).AddM(e)
			if !res.C.Equal(want, 0) {
				t.Errorf("w=%d n=%d p=%d m=%d: wrong by %g", w, n, p, m, res.C.MaxAbsDiff(want))
			}
		}
	}
}

// TestMatMulCycleFormula (E5): measured T equals 3w·p̄n̄m̄ + 4w − 5 exactly.
func TestMatMulCycleFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, w := range []int{1, 2, 3, 4} {
		s := NewMatMulSolver(w)
		for _, shape := range [][3]int{{1, 1, 1}, {2, 1, 1}, {1, 2, 3}, {2, 2, 2}, {3, 2, 1}} {
			nb, pb, mb := shape[0], shape[1], shape[2]
			a := matrix.RandomDense(rng, nb*w, pb*w, 3)
			b := matrix.RandomDense(rng, pb*w, mb*w, 3)
			res, err := s.Solve(a, b, MatMulOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.T != res.Stats.PredictedT {
				t.Errorf("w=%d n̄=%d p̄=%d m̄=%d: T=%d, paper %d", w, nb, pb, mb, res.Stats.T, res.Stats.PredictedT)
			}
			if want := 3*w*pb*nb*mb + 4*w - 5; res.Stats.PredictedT != want {
				t.Errorf("formula drift: %d vs %d", res.Stats.PredictedT, want)
			}
		}
	}
}

// TestHexUtilization (E6): η = p̄n̄m̄w³/(w²T) matches the paper's closed
// form exactly and approaches ⅓ from below as p̄n̄m̄ grows.
func TestHexUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := 3
	s := NewMatMulSolver(w)
	prev := 0.0
	for _, pnm := range []int{1, 2, 4, 8} {
		a := matrix.RandomDense(rng, pnm*w, w, 2)
		b := matrix.RandomDense(rng, w, w, 2)
		res, err := s.Solve(a, b, MatMulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Stats.Utilization-res.Stats.PredictedUtilization) > 1e-12 {
			t.Errorf("p̄n̄m̄=%d: η=%.6f, paper %.6f", pnm, res.Stats.Utilization, res.Stats.PredictedUtilization)
		}
		if res.Stats.Utilization <= prev {
			t.Errorf("η not increasing at p̄n̄m̄=%d", pnm)
		}
		prev = res.Stats.Utilization
	}
	if prev >= 1.0/3 {
		t.Errorf("η=%.4f must stay below the ⅓ asymptote", prev)
	}
	if prev < 0.3 {
		t.Errorf("η=%.4f should be close to ⅓ at p̄n̄m̄=8", prev)
	}
}

// TestMatMulFeedbackDelays (E7): regular feedback delays are exactly w
// (sub-diagonals) and 2w (main diagonal); irregular delays match the two
// derived families 3w(p̄(n̄−1)+1) − 2w and 3w·n̄p̄(m̄−1) + w.
func TestMatMulFeedbackDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, cse := range []struct{ nb, pb, mb, w int }{
		{2, 2, 3, 3}, {3, 1, 2, 2}, {1, 2, 2, 4}, {2, 3, 1, 3},
	} {
		w := cse.w
		s := NewMatMulSolver(w)
		a := matrix.RandomDense(rng, cse.nb*w, cse.pb*w, 2)
		b := matrix.RandomDense(rng, cse.pb*w, cse.mb*w, 2)
		res, err := s.Solve(a, b, MatMulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, bin := range res.Stats.RegularDelays {
			if bin.Delay != w && bin.Delay != 2*w {
				t.Errorf("%+v: regular delay %d, want %d or %d", cse, bin.Delay, w, 2*w)
			}
		}
		// Main-diagonal (auto-fed) edges exist only when a D chain spans
		// more than one row block, i.e. p̄ > 1.
		if w > 1 && cse.pb > 1 {
			if schedule.BinCount(res.Stats.RegularDelays, 2*w) == 0 {
				t.Errorf("%+v: no main-diagonal 2w delays observed", cse)
			}
		}
		wantU := 3*w*(cse.pb*(cse.nb-1)+1) - 2*w  // U/L region-crossing family
		wantL := 3*w*cse.nb*cse.pb*(cse.mb-1) + w // final L_{n̄−1,0} family
		for _, bin := range res.Stats.IrregularDelays {
			if bin.Delay != wantU && bin.Delay != wantL {
				t.Errorf("%+v: irregular delay %d, want %d or %d", cse, bin.Delay, wantU, wantL)
			}
		}
		if cse.nb > 1 || cse.mb > 1 {
			if len(res.Stats.IrregularDelays) == 0 {
				t.Errorf("%+v: expected irregular feedback edges", cse)
			}
		}
	}
}

// TestMatMulRegisterDemand (E8): the register chains implied by the
// measured regular delays match the paper's 2w (main diagonal) and w
// (sub-diagonal pairs) memory elements.
func TestMatMulRegisterDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	w := 4
	s := NewMatMulSolver(w)
	a := matrix.RandomDense(rng, 2*w, 2*w, 2)
	b := matrix.RandomDense(rng, 2*w, 2*w, 2)
	res, err := s.Solve(a, b, MatMulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mainDiag, perSub, _ := analysis.MatMulRegisterDemand(w)
	maxReg := 0
	for _, bin := range res.Stats.RegularDelays {
		if bin.Delay > maxReg {
			maxReg = bin.Delay
		}
	}
	if maxReg != mainDiag {
		t.Errorf("max regular delay %d, paper main-diagonal demand %d", maxReg, mainDiag)
	}
	if schedule.BinCount(res.Stats.RegularDelays, perSub) == 0 {
		t.Errorf("no delay-%d sub-diagonal edges observed", perSub)
	}
}

// TestMatMulIdentity: A·I = A through the whole pipeline.
func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	w := 3
	s := NewMatMulSolver(w)
	a := matrix.RandomDense(rng, 5, 7, 4)
	id := matrix.NewDense(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	res, err := s.Solve(a, id, MatMulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.Equal(a, 0) {
		t.Errorf("A·I ≠ A, off by %g", res.C.MaxAbsDiff(a))
	}
}

func TestMatMulValidation(t *testing.T) {
	s := NewMatMulSolver(2)
	a := matrix.NewDense(2, 3)
	b := matrix.NewDense(4, 2)
	if _, err := s.Solve(a, b, MatMulOptions{}); err == nil {
		t.Error("expected inner-dimension error")
	}
	b2 := matrix.NewDense(3, 2)
	if _, err := s.Solve(a, b2, MatMulOptions{E: matrix.NewDense(1, 1)}); err == nil {
		t.Error("expected E shape error")
	}
}
