package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/matrix"
)

// panicPass is a PanicCarrier pass that records the recovered error.
type panicPass struct {
	ran  atomic.Bool
	got  atomic.Pointer[PanicError]
	done chan struct{}
}

func (p *panicPass) RunPass(int, *Arena) {
	p.ran.Store(true)
	panic("boom: poisoned pass")
}

func (p *panicPass) JobPanicked(err *PanicError) {
	p.got.Store(err)
	close(p.done)
}

// TestFleetRecoversPanic: a panicking pass is recovered into a structured
// *PanicError delivered to the PanicCarrier, the panic counter increments,
// and the shard keeps serving subsequent passes.
func TestFleetRecoversPanic(t *testing.T) {
	f := NewFleet(2, 4)
	defer f.Close()

	p := &panicPass{done: make(chan struct{})}
	if err := f.SubmitTo(0, p); err != nil {
		t.Fatalf("SubmitTo: %v", err)
	}
	<-p.done
	perr := p.got.Load()
	if perr == nil {
		t.Fatal("PanicCarrier never received the recovered error")
	}
	if !errors.Is(perr, ErrPanicked) {
		t.Errorf("errors.Is(perr, ErrPanicked) = false for %v", perr)
	}
	if !strings.Contains(perr.Error(), "poisoned pass") {
		t.Errorf("panic value missing from error: %q", perr.Error())
	}
	if len(perr.Stack) == 0 {
		t.Error("recovered PanicError has no stack trace")
	}
	if got := f.Panics(); got != 1 {
		t.Errorf("Panics() = %d, want 1", got)
	}

	// The shard that recovered the panic still serves work.
	var ran atomic.Int32
	for i := 0; i < 8; i++ {
		if err := f.SubmitTo(i%f.Shards(), PassFunc(func(int, *Arena) { ran.Add(1) })); err != nil {
			t.Fatalf("SubmitTo after panic: %v", err)
		}
	}
	f.Flush()
	if got := ran.Load(); got != 8 {
		t.Errorf("after a panic, %d of 8 passes ran", got)
	}
}

// TestFleetPanicWithoutCarrier: a pass that is not a PanicCarrier is still
// recovered (the shard survives, the counter records it) — the panic is
// contained even when nobody is listening.
func TestFleetPanicWithoutCarrier(t *testing.T) {
	f := NewFleet(1, 4)
	defer f.Close()
	if err := f.SubmitTo(0, PassFunc(func(int, *Arena) { panic("nobody listening") })); err != nil {
		t.Fatalf("SubmitTo: %v", err)
	}
	f.Flush()
	if got := f.Panics(); got != 1 {
		t.Errorf("Panics() = %d, want 1", got)
	}
	var ran atomic.Bool
	if err := f.SubmitTo(0, PassFunc(func(int, *Arena) { ran.Store(true) })); err != nil {
		t.Fatalf("SubmitTo after panic: %v", err)
	}
	f.Flush()
	if !ran.Load() {
		t.Error("shard dead after a carrier-less panic")
	}
}

// TestExecutorBarrierRepanics: a panic inside an executor task is parked
// and re-raised as a *PanicError at the next Barrier on the submitter's
// goroutine, and the executor stays usable afterwards.
func TestExecutorBarrierRepanics(t *testing.T) {
	ex := NewExecutor(2)
	defer ex.Close()

	var siblings atomic.Int32
	ex.Submit(func(int, *Arena) { panic("task exploded") })
	for i := 0; i < 4; i++ {
		ex.Submit(func(int, *Arena) { siblings.Add(1) })
	}

	var recovered *PanicError
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("Barrier did not re-panic")
			}
			var ok bool
			if recovered, ok = v.(*PanicError); !ok {
				t.Fatalf("Barrier re-panicked with %T, want *PanicError", v)
			}
		}()
		ex.Barrier()
	}()
	if !errors.Is(recovered, ErrPanicked) {
		t.Errorf("errors.Is(recovered, ErrPanicked) = false")
	}
	if len(recovered.Stack) == 0 {
		t.Error("re-raised PanicError has no stack")
	}
	if got := siblings.Load(); got != 4 {
		t.Errorf("%d of 4 sibling tasks ran alongside the panic", got)
	}

	// The executor still works after the poisoned step.
	var after atomic.Int32
	for i := 0; i < 6; i++ {
		ex.Submit(func(int, *Arena) { after.Add(1) })
	}
	ex.Barrier()
	if got := after.Load(); got != 6 {
		t.Errorf("after a re-panic, %d of 6 tasks ran", got)
	}
}

// TestBatchOnPanicIsolation: a panicking batch item yields a *PanicError at
// its own index while every sibling item still solves correctly.
func TestBatchOnPanicIsolation(t *testing.T) {
	f := NewFleet(2, 4)
	defer f.Close()

	items := []int{0, 1, 2, 3, 4, 5}
	res, err := BatchOn(f, items, func(i int) (float64, error) {
		if i == 3 {
			panic("item 3 is poisoned")
		}
		return float64(i) * 2, nil
	})
	if err == nil {
		t.Fatal("BatchOn returned nil error despite a panicking item")
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("joined error %v does not carry a *PanicError", err)
	}
	if !errors.Is(err, ErrPanicked) {
		t.Error("errors.Is(err, ErrPanicked) = false")
	}
	for i, r := range res {
		want := float64(i) * 2
		if i == 3 {
			want = 0 // failed slot stays zero
		}
		if r != want {
			t.Errorf("res[%d] = %v, want %v", i, r, want)
		}
	}
}

// TestExecutorBarrierRepanicsRealPass: the panic containment composes with
// real array passes — siblings that multiply matrices still produce
// correct results in the poisoned step.
func TestExecutorBarrierRepanicsRealPass(t *testing.T) {
	ex := NewExecutor(2)
	defer ex.Close()

	rng := rand.New(rand.NewSource(61))
	a := matrix.RandomDense(rng, 6, 6, 3)
	b := matrix.RandomDense(rng, 6, 6, 3)
	want, err := NewMatMulSolver(3).Solve(a, b, MatMulOptions{})
	if err != nil {
		t.Fatal(err)
	}

	got := matrix.NewDense(6, 6)
	ex.Submit(func(_ int, ar *Arena) {
		if _, err := ar.MatMulPass(got, a, b, nil, 3, EngineCompiled); err != nil {
			t.Errorf("sibling pass failed: %v", err)
		}
	})
	ex.Submit(func(int, *Arena) { panic("mid-step failure") })

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Barrier did not re-panic")
			}
		}()
		ex.Barrier()
	}()
	if !reflect.DeepEqual(got, want.C) {
		t.Error("sibling pass result corrupted by a panicking neighbor")
	}
}
