package core

import (
	"fmt"

	"repro/internal/dbt"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

// Arena is the per-array scratch state of the pass executor: reusable
// float/matrix buffers, privately retained DBT transforms, and a plan memo,
// all owned by a single goroutine. Passes replayed on one arena reuse the
// same storage, so the steady state of the compiled pass path allocates
// nothing.
//
// Ownership rules (see DESIGN.md §5):
//
//   - An arena belongs to one goroutine at a time. The Executor gives each
//     simulated array its own arena; serial workspaces own one directly.
//     Two passes may share an arena only sequentially — never concurrently.
//   - Reset marks the start of a unit of work (the executor resets the
//     arena before every task it runs). Everything drawn from the arena
//     after a Reset is valid until the next Reset; nothing drawn from an
//     arena may outlive that window or escape to another goroutine.
//   - Buffers come back with arbitrary contents; callers overwrite before
//     reading.
type Arena struct {
	memo *schedule.PlanMemo
	mvT  *dbt.MatVec
	mmT  *dbt.MatMul
	kept map[uint64]interface{}

	floats   [][]float64
	fcursor  int
	matrices []*matrix.Dense
	mcursor  int
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{memo: schedule.NewPlanMemo(), mvT: &dbt.MatVec{}, mmT: &dbt.MatMul{}}
}

// Reset recycles every buffer drawn since the previous Reset. Plans,
// transforms and slab capacities are retained — that is the point.
func (ar *Arena) Reset() {
	ar.fcursor = 0
	ar.mcursor = 0
}

// Floats returns a length-n scratch slice with arbitrary contents, reused
// across Resets.
func (ar *Arena) Floats(n int) []float64 {
	if ar.fcursor == len(ar.floats) {
		ar.floats = append(ar.floats, make([]float64, n))
	}
	s := ar.floats[ar.fcursor]
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	ar.floats[ar.fcursor] = s
	ar.fcursor++
	return s
}

// Dense returns a rows×cols scratch matrix with arbitrary contents, reused
// across Resets.
func (ar *Arena) Dense(rows, cols int) *matrix.Dense {
	if ar.mcursor == len(ar.matrices) {
		ar.matrices = append(ar.matrices, nil)
	}
	m := matrix.Reuse(ar.matrices[ar.mcursor], rows, cols)
	ar.matrices[ar.mcursor] = m
	ar.mcursor++
	return m
}

// Plans returns the arena's plan memo, for solver packages that replay
// compiled plans directly on this arena's goroutine — the triangular
// phases of internal/solve, and the pattern-keyed sparse passes
// (sparse.MatVec.PassInto), which key the memo by (shape, pattern digest)
// with full pattern verification on every hit.
func (ar *Arena) Plans() *schedule.PlanMemo { return ar.memo }

// Kept returns the long-lived value cached under key by Keep, or nil when
// none is. Kept values survive Reset exactly like plans and transforms do:
// they are the arena's workspace pool, letting higher layers that core
// cannot import (the stream scheduler's solve tickets keep a warm
// solve.Workspace per array size this way) attach per-shard steady state
// to the shard's arena. The uint64 key space is the caller's to partition;
// the hit path is a plain map lookup — no boxing, no allocation.
func (ar *Arena) Kept(key uint64) interface{} { return ar.kept[key] }

// Keep caches value under key for Kept, retained across Resets for the
// arena's lifetime. Kept values follow the arena ownership contract: they
// belong to the arena's goroutine and must never escape to another.
func (ar *Arena) Keep(key uint64, value interface{}) {
	if ar.kept == nil {
		ar.kept = make(map[uint64]interface{})
	}
	ar.kept[key] = value
}

// MatVecPass computes dst = A·x + b (b may be nil) as one linear-array pass
// on the selected engine and returns the pass's measured step count T. dst
// must have length A.Rows() and must not alias x or b. On the compiled
// engine the pass draws every buffer from the arena and allocates nothing
// in the steady state; the oracle engine runs the structural simulator
// (allocating freely) and copies the result, so both engines return
// bit-identical values.
func (ar *Arena) MatVecPass(dst matrix.Vector, a *matrix.Dense, x, b matrix.Vector, w int, eng Engine) (int, error) {
	if len(dst) != a.Rows() {
		panic(fmt.Sprintf("core: MatVecPass dst len %d, want %d", len(dst), a.Rows()))
	}
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	if !useCompiled {
		res, err := NewMatVecSolver(w).Solve(a, x, b, MatVecOptions{Engine: EngineOracle})
		if err != nil {
			return 0, err
		}
		copy(dst, res.Y)
		return res.Stats.T, nil
	}
	t := ar.mvT
	t.Reset(a, w)
	sch, err := ar.memo.MatVecFor(t, false)
	if err != nil {
		return 0, err
	}
	if len(x) != a.Cols() {
		return 0, fmt.Errorf("core: len(x)=%d, want %d", len(x), a.Cols())
	}
	if b != nil && len(b) != a.Rows() {
		return 0, fmt.Errorf("core: len(b)=%d, want %d", len(b), a.Rows())
	}
	bp := ar.Floats(sch.BLen)
	clear(bp)
	copy(bp, b)
	ybuf := ar.Floats(sch.Rows)
	if sch.GridReplay() {
		// Grid-direct replay: no x̄ expansion, no band packing — the run
		// descriptors index the padded grid and padded x directly.
		xp := ar.Floats(t.MBar * w)
		clear(xp)
		copy(xp, x)
		sch.ExecGrid(t.Grid.Padded().Raw(), xp, bp, ybuf)
	} else {
		xbar := t.TransformXInto(ar.Floats(t.BandCols()), x)
		band := ar.Floats(sch.Rows * w)
		t.PackBand(band)
		sch.Exec(band, xbar, bp, ybuf)
	}
	t.RecoverYFlat(dst, ybuf)
	return sch.T, nil
}

// MatMulPass computes dst = A·B + E (e may be nil) as one hexagonal-array
// pass on the selected engine and returns the pass's measured step count T.
// dst must be A.Rows()×B.Cols() and must not alias a, b or e. Allocation
// behavior matches MatVecPass: zero steady-state allocations on the
// compiled engine, bit-identical results on both.
func (ar *Arena) MatMulPass(dst, a, b, e *matrix.Dense, w int, eng Engine) (int, error) {
	if dst.Rows() != a.Rows() || dst.Cols() != b.Cols() {
		panic(fmt.Sprintf("core: MatMulPass dst %d×%d, want %d×%d", dst.Rows(), dst.Cols(), a.Rows(), b.Cols()))
	}
	useCompiled, err := eng.Resolve(false)
	if err != nil {
		return 0, err
	}
	if !useCompiled {
		res, err := NewMatMulSolver(w).Solve(a, b, MatMulOptions{E: e, Engine: EngineOracle})
		if err != nil {
			return 0, err
		}
		dst.SetRect(0, 0, res.C)
		return res.Stats.T, nil
	}
	if a.Cols() != b.Rows() {
		return 0, fmt.Errorf("core: A is %d×%d but B is %d×%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	if e != nil && (e.Rows() != a.Rows() || e.Cols() != b.Cols()) {
		return 0, fmt.Errorf("core: E is %d×%d, want %d×%d", e.Rows(), e.Cols(), a.Rows(), b.Cols())
	}
	t := ar.mmT
	t.Reset(a, b, w)
	sch := ar.memo.MatMulFor(t)
	aPack := ar.Floats(sch.Dim * w)
	bPack := ar.Floats(sch.Dim * w)
	t.PackAHat(aPack)
	t.PackBHat(bPack)
	ext := ar.Floats(len(sch.ExtInits))
	if e == nil {
		clear(ext)
	} else {
		for i, ei := range sch.ExtInits {
			ext[i] = t.EPieceAt(e, ei.R, ei.S, ei.P, ei.A, ei.B)
		}
	}
	oband := ar.Floats(sch.OLen())
	sch.Exec(aPack, bPack, ext, oband)
	extractMatMul(t, dst, func(rho, gamma int) float64 { return sch.OAt(oband, rho, gamma) })
	return sch.T, nil
}
