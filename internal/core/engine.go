package core

import "fmt"

// Engine selects the execution engine of a solve.
//
// The repository keeps two engines that must agree bit-for-bit:
//
//   - The structural engine (internal/linear, internal/hex) advances a
//     global clock, shifts every register each cycle and checks operand
//     liveness and wavefront alignment structurally. It is the verification
//     oracle and the only engine that can record boundary traces.
//   - The compiled engine (internal/schedule) precomputes the complete
//     event schedule per shape, caches it, and replays it in O(MACs) with
//     zero allocations in the hot loop. The sparse matvec's schedule
//     depends on the retained-block pattern as well, so its plans are
//     keyed by (shape, pattern digest) and verified against the full
//     pattern on every cache hit.
//
// Both produce identical results and measured statistics (T, utilization,
// MAC counts, feedback delays); the cross-engine equivalence tests enforce
// this on randomized shapes.
type Engine int

const (
	// EngineAuto uses the compiled engine unless a boundary trace is
	// requested (traces are only observable structurally).
	EngineAuto Engine = iota
	// EngineCompiled forces the compiled-schedule engine; combining it with
	// Trace is an error.
	EngineCompiled
	// EngineOracle forces the cycle-accurate structural simulator.
	EngineOracle
)

// String names the engine for logs and error messages.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineCompiled:
		return "compiled"
	case EngineOracle:
		return "oracle"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Resolve picks the engine for a run, given whether a boundary trace was
// requested: it reports whether the compiled engine should be used, and
// errors when the request is unsatisfiable (EngineCompiled with a trace, or
// an unknown engine value). The solver packages built on core (trisolve,
// solve) use it to honor the same Engine contract.
func (e Engine) Resolve(trace bool) (useCompiled bool, err error) {
	switch e {
	case EngineAuto:
		return !trace, nil
	case EngineCompiled:
		if trace {
			return false, fmt.Errorf("core: boundary traces require the structural engine (EngineOracle or EngineAuto)")
		}
		return true, nil
	case EngineOracle:
		return false, nil
	default:
		return false, fmt.Errorf("core: unknown engine %d", int(e))
	}
}
