package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/matrix"
)

// TestExecutorRunsEveryTask: every submitted task runs exactly once before
// Barrier returns, across several steps, and worker indices stay in range.
func TestExecutorRunsEveryTask(t *testing.T) {
	ex := NewExecutor(3)
	defer ex.Close()
	if ex.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", ex.Workers())
	}
	for step := 0; step < 5; step++ {
		const tasks = 17
		var ran [tasks]atomic.Int32
		for i := 0; i < tasks; i++ {
			i := i
			ex.Submit(func(worker int, ar *Arena) {
				if worker < 0 || worker >= 3 {
					t.Errorf("worker index %d out of range", worker)
				}
				if ar == nil {
					t.Error("nil arena")
				}
				ran[i].Add(1)
			})
		}
		ex.Barrier()
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("step %d task %d ran %d times", step, i, got)
			}
		}
	}
}

// TestExecutorArenaIsolation: each array keeps its own arena across tasks
// (same pointer per worker, different pointers across workers).
func TestExecutorArenaIsolation(t *testing.T) {
	const workers = 4
	ex := NewExecutor(workers)
	defer ex.Close()
	var seen [workers]atomic.Pointer[Arena]
	for i := 0; i < 64; i++ {
		ex.Submit(func(worker int, ar *Arena) {
			if old := seen[worker].Swap(ar); old != nil && old != ar {
				t.Errorf("worker %d switched arenas", worker)
			}
		})
	}
	ex.Barrier()
	ptrs := map[*Arena]bool{}
	for w := range seen {
		if p := seen[w].Load(); p != nil {
			if ptrs[p] {
				t.Fatal("two workers share one arena")
			}
			ptrs[p] = true
		}
	}
}

// TestExecutorDefaultWorkers: workers < 1 sizes the pool to GOMAXPROCS.
func TestExecutorDefaultWorkers(t *testing.T) {
	ex := NewExecutor(0)
	defer ex.Close()
	if ex.Workers() < 1 {
		t.Fatalf("Workers() = %d", ex.Workers())
	}
}

// TestArenaPassesMatchSolvers: the arena pass API must be bit-identical to
// the public solvers on both engines — values and step counts — and the
// two engines must agree with each other, shape by shape.
func TestArenaPassesMatchSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ar := NewArena()
	for trial := 0; trial < 40; trial++ {
		w := 1 + rng.Intn(4)
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		a := matrix.RandomDense(rng, n, m, 5)
		x := matrix.RandomVector(rng, m, 5)
		b := matrix.RandomVector(rng, n, 5)
		if rng.Intn(3) == 0 {
			b = nil
		}
		ref, err := NewMatVecSolver(w).Solve(a, x, b, MatVecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var prev matrix.Vector
		for _, eng := range []Engine{EngineCompiled, EngineOracle} {
			ar.Reset()
			dst := make(matrix.Vector, n)
			steps, err := ar.MatVecPass(dst, a, x, b, w, eng)
			if err != nil {
				t.Fatal(err)
			}
			if !dst.Equal(ref.Y, 0) {
				t.Fatalf("%v MatVecPass differs from Solve (w=%d n=%d m=%d)", eng, w, n, m)
			}
			if steps != ref.Stats.T {
				t.Fatalf("%v MatVecPass T=%d, Solve T=%d", eng, steps, ref.Stats.T)
			}
			if prev != nil && !dst.Equal(prev, 0) {
				t.Fatal("engines disagree in MatVecPass")
			}
			prev = dst
		}

		p := 1 + rng.Intn(2*w)
		am := matrix.RandomDense(rng, n, p, 4)
		bm := matrix.RandomDense(rng, p, m, 4)
		var e *matrix.Dense
		if rng.Intn(2) == 0 {
			e = matrix.RandomDense(rng, n, m, 4)
		}
		mref, err := NewMatMulSolver(w).Solve(am, bm, MatMulOptions{E: e})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{EngineCompiled, EngineOracle} {
			ar.Reset()
			dst := matrix.NewDense(n, m)
			steps, err := ar.MatMulPass(dst, am, bm, e, w, eng)
			if err != nil {
				t.Fatal(err)
			}
			if !dst.Equal(mref.C, 0) {
				t.Fatalf("%v MatMulPass differs from Solve (w=%d n=%d p=%d m=%d)", eng, w, n, p, m)
			}
			if steps != mref.Stats.T {
				t.Fatalf("%v MatMulPass T=%d, Solve T=%d", eng, steps, mref.Stats.T)
			}
		}
	}
}

// TestArenaScratchReuse: Floats and Dense hand out distinct buffers within
// one Reset window and recycle them across windows.
func TestArenaScratchReuse(t *testing.T) {
	ar := NewArena()
	a := ar.Floats(8)
	b := ar.Floats(4)
	if &a[0] == &b[0] {
		t.Fatal("Floats returned overlapping buffers in one window")
	}
	m1 := ar.Dense(2, 3)
	m2 := ar.Dense(2, 3)
	if m1 == m2 {
		t.Fatal("Dense returned the same matrix twice in one window")
	}
	ar.Reset()
	if a2 := ar.Floats(6); &a2[0] != &a[0] {
		t.Fatal("Floats did not recycle the first slot after Reset")
	}
	if m := ar.Dense(3, 2); m != m1 {
		t.Fatal("Dense did not recycle the first slot after Reset")
	}
}

// TestExecutorParallelPasses: independent passes fanned across the
// executor produce exactly the serial results — the substrate guarantee
// the blocked solvers build on.
func TestExecutorParallelPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const w, count = 3, 24
	as := make([]*matrix.Dense, count)
	xs := make([]matrix.Vector, count)
	want := make([]matrix.Vector, count)
	s := NewMatVecSolver(w)
	for i := range as {
		n, m := 1+rng.Intn(9), 1+rng.Intn(9)
		as[i] = matrix.RandomDense(rng, n, m, 5)
		xs[i] = matrix.RandomVector(rng, m, 5)
		res, err := s.Solve(as[i], xs[i], nil, MatVecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Y
	}
	for _, workers := range []int{1, 2, 5} {
		ex := NewExecutor(workers)
		got := make([]matrix.Vector, count)
		errs := make([]error, count)
		for i := range as {
			i := i
			got[i] = make(matrix.Vector, as[i].Rows())
			ex.Submit(func(_ int, ar *Arena) {
				_, errs[i] = ar.MatVecPass(got[i], as[i], xs[i], nil, w, EngineCompiled)
			})
		}
		ex.Barrier()
		for i := range got {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if !got[i].Equal(want[i], 0) {
				t.Fatalf("workers=%d pass %d differs from serial", workers, i)
			}
		}
		ex.Close()
	}
}

// TestExecutorSubmitAfterBarrier: the executor is reusable across step
// barriers (submit → barrier → submit → barrier), the pattern the blocked
// solvers drive it with.
func TestExecutorSubmitAfterBarrier(t *testing.T) {
	ex := NewExecutor(2)
	defer ex.Close()
	var total atomic.Int64
	for step := 1; step <= 4; step++ {
		for i := 0; i < step; i++ {
			ex.Submit(func(int, *Arena) { total.Add(1) })
		}
		ex.Barrier()
		if want := int64(step * (step + 1) / 2); total.Load() != want {
			t.Fatalf("after step %d: %d tasks ran, want %d", step, total.Load(), want)
		}
	}
}

func ExampleExecutor() {
	ex := NewExecutor(2)
	defer ex.Close()
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	x := matrix.Vector{1, 1}
	ys := make([]matrix.Vector, 2)
	for i := range ys {
		i := i
		ys[i] = make(matrix.Vector, 2)
		ex.Submit(func(_ int, ar *Arena) {
			ar.MatVecPass(ys[i], a, x, nil, 2, EngineAuto)
		})
	}
	ex.Barrier()
	fmt.Println(ys[0], ys[1])
	// Output: [3 7] [3 7]
}
