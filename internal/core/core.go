// Package core is the public API of the reproduction: size-independent
// dense matrix problems executed on fixed-size systolic arrays via the
// paper's DBT transformations.
//
// A MatVecSolver owns a linear contraflow array of w PEs and computes
// y = A·x + b for dense A of any shape; a MatMulSolver owns a w×w hexagonal
// array with spiral feedback and computes C = A·B + E. Both return the
// numeric result together with measured run statistics (step count T, PE
// utilization η, feedback delays) that the benchmark harness compares with
// the paper's closed forms.
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dbt"
	"repro/internal/linear"
	"repro/internal/matrix"
	"repro/internal/schedule"
	"repro/internal/systolic"
)

// MatVecOptions configure a matrix–vector run.
type MatVecOptions struct {
	// Overlap splits the transformed problem into two sub-problems at a row
	// band boundary and interleaves them one cycle apart (paper §2,
	// "partitioning the transformed problem into two disjoint sub-problems",
	// the dotted line of Fig. 2b). Requires n̄ ≥ 2.
	Overlap bool
	// LowerBand uses the lower-band form of the transformation (paper §2:
	// "A lower band transformed matrix could be considered in a similar
	// way", Āij = 0 for i < j), realized by mirroring the problem: the
	// reversed-row/reversed-column matrix runs through DBT-by-rows and the
	// result is un-mirrored. T, utilization and feedback behaviour are
	// identical to the upper-band form.
	LowerBand bool
	// ByColumns uses the column-major DBT variant (§4's "other related
	// types of transformations"): simpler x̄ generation (each x block
	// streamed n̄ times consecutively) at the cost of a feedback delay of
	// (2n̄−1)·w instead of the constant w. Incompatible with Overlap (the
	// column-major chains span the whole band).
	ByColumns bool
	// Trace records the boundary data flow (Fig. 3). Requires the
	// structural engine.
	Trace bool
	// Engine selects the execution engine (default EngineAuto: compiled
	// fast path unless Trace is set).
	Engine Engine
}

// MatVecStats reports measured quantities of a run.
type MatVecStats struct {
	// W is the array size, NBar and MBar the block grid.
	W, NBar, MBar int
	// T is the measured step count; PredictedT the paper's formula.
	T, PredictedT int
	// Utilization is measured η = MACs/(w·T); PredictedUtilization the
	// paper's closed form.
	Utilization, PredictedUtilization float64
	// MACs is the total multiply–accumulate count (n̄m̄w²).
	MACs int
	// FeedbackDelays lists the measured delay of every feedback edge; the
	// paper requires all of them to equal w.
	FeedbackDelays []int
	// GroupedUtilization is η with every two adjacent PEs sharing one
	// physical unit (paper §2, "grouping every 2 PEs in 1"); valid when
	// GroupableConflicts is zero (always true without Overlap).
	GroupedUtilization float64
	// GroupableConflicts counts cycles where grouping would have collided.
	GroupableConflicts int
	// Trace is the boundary trace when requested.
	Trace *systolic.Trace
}

// MatVecResult is the outcome of MatVecSolver.Solve.
type MatVecResult struct {
	Y     matrix.Vector
	Stats MatVecStats
}

// MatVecSolver computes y = A·x + b on a fixed linear array of w PEs.
type MatVecSolver struct {
	w int
}

// NewMatVecSolver returns a solver for a linear array with w PEs.
func NewMatVecSolver(w int) *MatVecSolver {
	if w < 1 {
		panic(fmt.Sprintf("core: invalid array size %d", w))
	}
	return &MatVecSolver{w: w}
}

// W returns the array size.
func (s *MatVecSolver) W() int { return s.w }

// Solve computes y = A·x + b (b may be nil) by transforming the problem with
// DBT-by-rows and running it on the simulated array.
func (s *MatVecSolver) Solve(a *matrix.Dense, x, b matrix.Vector, opts MatVecOptions) (*MatVecResult, error) {
	if len(x) != a.Cols() {
		return nil, fmt.Errorf("core: len(x)=%d, want %d", len(x), a.Cols())
	}
	if b != nil && len(b) != a.Rows() {
		return nil, fmt.Errorf("core: len(b)=%d, want %d", len(b), a.Rows())
	}
	if opts.LowerBand {
		// Mirror the problem, solve it as an upper band, un-mirror y.
		opts.LowerBand = false
		res, err := s.Solve(reverseM(a), reverseV(x), reverseV(b), opts)
		if err != nil {
			return nil, err
		}
		res.Y = reverseV(res.Y)
		return res, nil
	}
	useCompiled, err := opts.Engine.Resolve(opts.Trace)
	if err != nil {
		return nil, err
	}
	var t dbt.Transform
	if opts.ByColumns {
		if opts.Overlap {
			return nil, fmt.Errorf("core: ByColumns chains span the whole band and cannot be split for overlap")
		}
		t = dbt.NewMatVecByColumns(a, s.w)
	} else if useCompiled {
		// The transform is only needed while the compiled pass packs and
		// recovers, so it comes from the schedule pool and goes straight back.
		pooled := schedule.GetMatVec(a, s.w)
		defer schedule.PutMatVec(pooled)
		t = pooled
	} else {
		t = dbt.NewMatVec(a, s.w)
	}
	_, nbar, mbar := t.Shape()
	if opts.Overlap && nbar < 2 {
		return nil, fmt.Errorf("core: overlap needs n̄ ≥ 2, have %d (use two independent problems instead)", nbar)
	}
	if useCompiled {
		// Validation is structural (shape-only); the schedule compiler runs
		// it once per shape and the cache remembers the clean bill.
		return s.solveCompiled(t, x, b, opts, nbar, mbar)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	arr := linear.New(s.w)
	arr.RecordTrace = opts.Trace

	var progs []*linear.Program
	ranges := [][2]int{{0, t.Blocks()}}
	if opts.Overlap {
		h := schedule.OverlapSplit(nbar, mbar) // split at a row band boundary
		ranges = [][2]int{{0, h}, {h, t.Blocks()}}
	}
	xbar := t.TransformX(x)
	var bp matrix.Vector
	if b == nil {
		bp = matrix.NewVector(nbar * s.w)
	} else {
		bp = b.Pad(nbar * s.w)
	}
	for pi, r := range ranges {
		progs = append(progs, programForBlocks(t, xbar, bp, r[0], r[1], pi))
	}
	res := arr.Run(progs...)

	// Reassemble ȳ blocks in global order and recover y.
	ybars := make([]matrix.Vector, t.Blocks())
	for pi, r := range ranges {
		for k := r[0]; k < r[1]; k++ {
			blk := make(matrix.Vector, s.w)
			copy(blk, res.Y[pi][(k-r[0])*s.w:(k-r[0]+1)*s.w])
			ybars[k] = blk
		}
	}
	y := t.RecoverY(ybars)

	stats := MatVecStats{
		W: s.w, NBar: nbar, MBar: mbar,
		T:                  res.T,
		Utilization:        res.Activity.Utilization(),
		MACs:               res.Activity.Total(),
		GroupedUtilization: res.GroupedUtilization(),
		GroupableConflicts: res.GroupableConflicts,
		Trace:              res.Trace,
	}
	fillPredicted(&stats, s.w, nbar, mbar, opts.Overlap)
	for _, f := range res.Feedback {
		stats.FeedbackDelays = append(stats.FeedbackDelays, f.Delay())
	}
	return &MatVecResult{Y: y, Stats: stats}, nil
}

// solveCompiled executes the transformed problem on the compiled-schedule
// engine: shape-cached schedule, packed band coefficients, O(MACs)
// execution with pooled scratch. Results and statistics are bit-identical
// to the structural path.
func (s *MatVecSolver) solveCompiled(t dbt.Transform, x, b matrix.Vector, opts MatVecOptions, nbar, mbar int) (*MatVecResult, error) {
	sch, err := schedule.MatVecFor(t, opts.Overlap)
	if err != nil {
		return nil, err
	}
	// Scratch (padded x or x̄, padded b̄, band) lives in pooled buffers; only
	// the returned y is a fresh allocation on this path.
	bpBuf := schedule.GetFloats(sch.BLen)
	defer schedule.PutFloats(bpBuf)
	bp := matrix.Vector(*bpBuf)
	copy(bp, b)
	ybuf := schedule.GetFloatsUninit(sch.Rows)
	defer schedule.PutFloats(ybuf)

	var aflat []float64
	mv, isByRows := t.(*dbt.MatVec)
	if isByRows {
		aflat = mv.Grid.Padded().Raw()
	} else if mvc, ok := t.(*dbt.MatVecByColumns); ok {
		aflat = mvc.Grid.Padded().Raw()
	}
	if aflat != nil && sch.GridReplay() {
		// Grid-direct replay: the run descriptors index the padded grid and
		// padded x, so neither x̄ expansion nor band packing happens at all.
		xpBuf := schedule.GetFloats(mbar * s.w)
		defer schedule.PutFloats(xpBuf)
		copy(*xpBuf, x)
		sch.ExecGrid(aflat, *xpBuf, bp, *ybuf)
	} else {
		var xbar matrix.Vector
		if isByRows {
			xbarBuf := schedule.GetFloatsUninit(t.BandCols())
			defer schedule.PutFloats(xbarBuf)
			xbar = mv.TransformXInto(*xbarBuf, x)
		} else {
			xbar = t.TransformX(x)
		}
		band := schedule.GetFloatsUninit(sch.Rows * s.w)
		defer schedule.PutFloats(band)
		t.PackBand(*band)
		sch.Exec(*band, xbar, bp, *ybuf)
	}

	// Recover y (copying, so the pooled buffers can be released).
	var y matrix.Vector
	if isByRows {
		y = mv.RecoverYFlat(make(matrix.Vector, mv.N), *ybuf)
	} else {
		ybars := make([]matrix.Vector, t.Blocks())
		for k := range ybars {
			ybars[k] = matrix.Vector((*ybuf)[k*s.w : (k+1)*s.w])
		}
		y = t.RecoverY(ybars)
	}

	stats := MatVecStats{
		W: s.w, NBar: nbar, MBar: mbar,
		T:                  sch.T,
		Utilization:        sch.Utilization(),
		MACs:               sch.MACs,
		GroupedUtilization: sch.GroupedUtilization(),
		GroupableConflicts: sch.GroupableConflicts,
	}
	fillPredicted(&stats, s.w, nbar, mbar, opts.Overlap)
	if len(sch.FeedbackDelays) > 0 {
		stats.FeedbackDelays = append([]int(nil), sch.FeedbackDelays...)
	}
	return &MatVecResult{Y: y, Stats: stats}, nil
}

// SolveMany runs several independent problems overlapped on the same array,
// each offset by one cycle (the paper's "overlapping the execution of
// several problems"). All problems must share the array size; at most two
// can be interleaved before slots collide.
func (s *MatVecSolver) SolveMany(as []*matrix.Dense, xs []matrix.Vector, bs []matrix.Vector) ([]matrix.Vector, *MatVecStats, error) {
	if len(as) == 0 || len(as) != len(xs) || len(as) > 2 {
		return nil, nil, fmt.Errorf("core: SolveMany takes 1 or 2 aligned problems, got %d", len(as))
	}
	arr := linear.New(s.w)
	var progs []*linear.Program
	var trs []*dbt.MatVec
	for i := range as {
		t := dbt.NewMatVec(as[i], s.w)
		trs = append(trs, t)
		var bp matrix.Vector
		if bs == nil || bs[i] == nil {
			bp = matrix.NewVector(t.NBar * s.w)
		} else {
			bp = bs[i].Pad(t.NBar * s.w)
		}
		progs = append(progs, programForBlocks(t, t.TransformX(xs[i]), bp, 0, t.Blocks(), i))
	}
	res := arr.Run(progs...)
	ys := make([]matrix.Vector, len(as))
	for i, t := range trs {
		ybars := make([]matrix.Vector, t.Blocks())
		for k := 0; k < t.Blocks(); k++ {
			blk := make(matrix.Vector, s.w)
			copy(blk, res.Y[i][k*s.w:(k+1)*s.w])
			ybars[k] = blk
		}
		ys[i] = t.RecoverY(ybars)
	}
	stats := &MatVecStats{
		W: s.w, T: res.T,
		Utilization: res.Activity.Utilization(),
		MACs:        res.Activity.Total(),
	}
	for _, f := range res.Feedback {
		stats.FeedbackDelays = append(stats.FeedbackDelays, f.Delay())
	}
	return ys, stats, nil
}

// fillPredicted sets the paper's closed-form predictions on stats — shared
// by both engines so their reported predictions can never diverge.
func fillPredicted(stats *MatVecStats, w, nbar, mbar int, overlap bool) {
	if overlap {
		stats.PredictedT = analysis.MatVecStepsOverlap(w, nbar, mbar)
		stats.PredictedUtilization = analysis.MatVecUtilizationOverlap(w, nbar, mbar)
	} else {
		stats.PredictedT = analysis.MatVecSteps(w, nbar, mbar)
		stats.PredictedUtilization = analysis.MatVecUtilization(w, nbar, mbar)
	}
}

// reverseM returns a with rows and columns reversed (the mirror J·A·J).
func reverseM(a *matrix.Dense) *matrix.Dense {
	out := matrix.NewDense(a.Rows(), a.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			out.Set(i, j, a.At(a.Rows()-1-i, a.Cols()-1-j))
		}
	}
	return out
}

// reverseV returns v reversed; nil stays nil.
func reverseV(v matrix.Vector) matrix.Vector {
	if v == nil {
		return nil
	}
	out := make(matrix.Vector, len(v))
	for i := range v {
		out[i] = v[len(v)-1-i]
	}
	return out
}

// programForBlocks schedules band row blocks [k0, k1) of the transformed
// problem as one array program with injection offset = the program index.
// k0 must sit at a chain boundary so every feedback stays inside the range.
func programForBlocks(t dbt.Transform, xbar, bPadded matrix.Vector, k0, k1, offset int) *linear.Program {
	w, _, _ := t.Shape()
	if src := t.BSource(k0); src.Kind != dbt.FromB {
		panic(fmt.Sprintf("core: program split at block %d breaks a feedback chain", k0))
	}
	return &linear.Program{
		Rows:   (k1 - k0) * w,
		X:      xbar[k0*w : k1*w+w-1],
		Offset: offset,
		BandAt: func(i, j int) float64 { return t.BandAt(i+k0*w, j+k0*w) },
		YInit: func(i int) linear.YInit {
			k := k0 + i/w
			switch src := t.BSource(k); src.Kind {
			case dbt.FromB:
				return linear.YInit{Value: bPadded[src.Index*w+i%w]}
			default:
				// The producing block is src.Index; its rows sit (k −
				// src.Index) blocks earlier in this program's local space.
				return linear.YInit{Feedback: true, SrcRow: i - (k-src.Index)*w}
			}
		},
	}
}
