package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestMatMulSolveMany: three independent products overlap on one hexagonal
// array; all compute exactly and utilization approaches 1.
func TestMatMulSolveMany(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	w := 3
	s := NewMatMulSolver(w)
	var as, bs []*matrix.Dense
	for i := 0; i < 3; i++ {
		as = append(as, matrix.RandomDense(rng, 2*w, 2*w, 2))
		bs = append(bs, matrix.RandomDense(rng, 2*w, 2*w, 2))
	}
	cs, stats, err := s.SolveMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs {
		want := as[i].Mul(bs[i])
		if !cs[i].Equal(want, 0) {
			t.Errorf("problem %d wrong by %g", i, cs[i].MaxAbsDiff(want))
		}
	}
	// Single-problem utilization for this shape is ≈ 0.30; three-way
	// overlap nearly triples it.
	single, err := s.Solve(as[0], bs[0], MatMulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Utilization < 2.7*single.Stats.Utilization {
		t.Errorf("3-way η=%.3f did not approach 3× single η=%.3f", stats.Utilization, single.Stats.Utilization)
	}
	// Total span: two cycles beyond a single run.
	if stats.T != single.Stats.T+2 {
		t.Errorf("3-way T=%d, want %d", stats.T, single.Stats.T+2)
	}
}

// TestMatMulSolveManyMixedShapes: the overlapped problems may have
// different sizes.
func TestMatMulSolveManyMixedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	w := 2
	s := NewMatMulSolver(w)
	as := []*matrix.Dense{
		matrix.RandomDense(rng, 3, 5, 2),
		matrix.RandomDense(rng, 7, 2, 2),
	}
	bs := []*matrix.Dense{
		matrix.RandomDense(rng, 5, 4, 2),
		matrix.RandomDense(rng, 2, 6, 2),
	}
	cs, _, err := s.SolveMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs {
		if !cs[i].Equal(as[i].Mul(bs[i]), 0) {
			t.Errorf("problem %d wrong", i)
		}
	}
}

func TestMatMulSolveManyValidation(t *testing.T) {
	s := NewMatMulSolver(2)
	if _, _, err := s.SolveMany(nil, nil); err == nil {
		t.Error("expected arity error")
	}
	a := matrix.NewDense(2, 2)
	if _, _, err := s.SolveMany(
		[]*matrix.Dense{a, a, a, a},
		[]*matrix.Dense{a, a, a, a},
	); err == nil {
		t.Error("expected >3 problems error")
	}
	if _, _, err := s.SolveMany(
		[]*matrix.Dense{matrix.NewDense(2, 3)},
		[]*matrix.Dense{matrix.NewDense(4, 2)},
	); err == nil {
		t.Error("expected dimension error")
	}
}
