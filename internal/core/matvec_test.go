package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestMatVecSolverCorrect: end-to-end y = A·x + b through DBT + the array,
// exact for every shape.
func TestMatVecSolverCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, w := range []int{1, 2, 3, 4, 5} {
		s := NewMatVecSolver(w)
		for _, n := range []int{1, w, w + 1, 2 * w, 3*w - 1} {
			for _, m := range []int{1, w, w + 2, 2 * w, 3*w + 1} {
				a := matrix.RandomDense(rng, n, m, 4)
				x := matrix.RandomVector(rng, m, 4)
				b := matrix.RandomVector(rng, n, 4)
				res, err := s.Solve(a, x, b, MatVecOptions{})
				if err != nil {
					t.Fatalf("w=%d n=%d m=%d: %v", w, n, m, err)
				}
				want := a.MulVec(x, b)
				if !res.Y.Equal(want, 0) {
					t.Errorf("w=%d n=%d m=%d: wrong by %g", w, n, m, res.Y.MaxAbsDiff(want))
				}
			}
		}
	}
}

// TestMatVecCycleFormula (E1): measured T equals 2w·n̄m̄ + 2w − 3 exactly.
func TestMatVecCycleFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, w := range []int{1, 2, 3, 5, 8} {
		s := NewMatVecSolver(w)
		for _, nb := range []int{1, 2, 3} {
			for _, mb := range []int{1, 2, 4} {
				a := matrix.RandomDense(rng, nb*w, mb*w, 3)
				x := matrix.RandomVector(rng, mb*w, 3)
				res, err := s.Solve(a, x, nil, MatVecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.T != res.Stats.PredictedT {
					t.Errorf("w=%d n̄=%d m̄=%d: T=%d, paper %d", w, nb, mb, res.Stats.T, res.Stats.PredictedT)
				}
				if want := 2*w*nb*mb + 2*w - 3; res.Stats.PredictedT != want {
					t.Errorf("formula drift: %d vs %d", res.Stats.PredictedT, want)
				}
			}
		}
	}
}

// TestOverlapCycleFormula (E2): with the two-sub-problem overlap the
// measured T equals w·n̄m̄ + 2w − 2 exactly (even n̄).
func TestOverlapCycleFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, w := range []int{2, 3, 5} {
		s := NewMatVecSolver(w)
		for _, nb := range []int{2, 4} {
			for _, mb := range []int{1, 3} {
				a := matrix.RandomDense(rng, nb*w, mb*w, 3)
				x := matrix.RandomVector(rng, mb*w, 3)
				b := matrix.RandomVector(rng, nb*w, 3)
				res, err := s.Solve(a, x, b, MatVecOptions{Overlap: true})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Y.Equal(a.MulVec(x, b), 0) {
					t.Errorf("w=%d n̄=%d m̄=%d: overlap result wrong", w, nb, mb)
				}
				if res.Stats.T != res.Stats.PredictedT {
					t.Errorf("w=%d n̄=%d m̄=%d: T=%d, paper %d", w, nb, mb, res.Stats.T, res.Stats.PredictedT)
				}
				if want := w*nb*mb + 2*w - 2; res.Stats.PredictedT != want {
					t.Errorf("formula drift: %d vs %d", res.Stats.PredictedT, want)
				}
			}
		}
	}
}

// TestOverlapOddRowBands: overlap with odd n̄ still computes correctly (the
// halves are unequal; T is then lastComputeCycle+1 of the longer half).
func TestOverlapOddRowBands(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	w := 3
	s := NewMatVecSolver(w)
	a := matrix.RandomDense(rng, 3*w, 2*w, 3)
	x := matrix.RandomVector(rng, 2*w, 3)
	res, err := s.Solve(a, x, nil, MatVecOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Y.Equal(a.MulVec(x, nil), 0) {
		t.Error("odd-n̄ overlap result wrong")
	}
}

// TestOverlapRejectedForSingleRowBand: n̄ = 1 cannot be split.
func TestOverlapRejectedForSingleRowBand(t *testing.T) {
	s := NewMatVecSolver(3)
	a := matrix.NewDense(3, 9)
	_, err := s.Solve(a, make(matrix.Vector, 9), nil, MatVecOptions{Overlap: true})
	if err == nil {
		t.Error("expected error for n̄=1 overlap")
	}
}

// TestUtilizationMatchesFormula (E3): measured η equals the paper's closed
// form exactly, and approaches ½ as n̄m̄ grows.
func TestUtilizationMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	w := 4
	s := NewMatVecSolver(w)
	prev := 0.0
	for _, nm := range []int{1, 2, 4, 8, 16} {
		a := matrix.RandomDense(rng, nm*w, w, 3)
		x := matrix.RandomVector(rng, w, 3)
		res, err := s.Solve(a, x, nil, MatVecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Stats.Utilization-res.Stats.PredictedUtilization) > 1e-12 {
			t.Errorf("n̄m̄=%d: η=%.6f, paper %.6f", nm, res.Stats.Utilization, res.Stats.PredictedUtilization)
		}
		if res.Stats.Utilization <= prev {
			t.Errorf("η not increasing at n̄m̄=%d", nm)
		}
		prev = res.Stats.Utilization
	}
	if prev >= 0.5 {
		t.Errorf("η=%.4f must stay below the ½ asymptote", prev)
	}
	if prev < 0.45 {
		t.Errorf("η=%.4f should be close to ½ at n̄m̄=16", prev)
	}
}

// TestOverlapUtilization (E4): with overlapping η approaches 1.
func TestOverlapUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	w := 3
	s := NewMatVecSolver(w)
	a := matrix.RandomDense(rng, 16*w, w, 3)
	x := matrix.RandomVector(rng, w, 3)
	res, err := s.Solve(a, x, nil, MatVecOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Stats.Utilization-res.Stats.PredictedUtilization) > 1e-12 {
		t.Errorf("η=%.6f, paper %.6f", res.Stats.Utilization, res.Stats.PredictedUtilization)
	}
	if res.Stats.Utilization < 0.85 {
		t.Errorf("overlapped η=%.4f, want near 1", res.Stats.Utilization)
	}
}

// TestMatVecFeedbackDelays (E7, linear part): every feedback edge has delay
// exactly w, and there are n̄(m̄−1) of them.
func TestMatVecFeedbackDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, w := range []int{2, 3, 5} {
		s := NewMatVecSolver(w)
		nb, mb := 3, 4
		a := matrix.RandomDense(rng, nb*w, mb*w, 3)
		x := matrix.RandomVector(rng, mb*w, 3)
		res, err := s.Solve(a, x, nil, MatVecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(res.Stats.FeedbackDelays), nb*w*(mb-1); got != want {
			t.Errorf("w=%d: %d feedback edges, want %d", w, got, want)
		}
		for _, d := range res.Stats.FeedbackDelays {
			if d != w {
				t.Errorf("w=%d: feedback delay %d, want %d", w, d, w)
			}
		}
	}
}

// TestSolveMany: two independent problems share the array at full rate.
func TestSolveMany(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	w := 3
	s := NewMatVecSolver(w)
	a1 := matrix.RandomDense(rng, 2*w, 2*w, 3)
	a2 := matrix.RandomDense(rng, 2*w, 2*w, 3)
	x1 := matrix.RandomVector(rng, 2*w, 3)
	x2 := matrix.RandomVector(rng, 2*w, 3)
	ys, stats, err := s.SolveMany(
		[]*matrix.Dense{a1, a2},
		[]matrix.Vector{x1, x2},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if !ys[0].Equal(a1.MulVec(x1, nil), 0) || !ys[1].Equal(a2.MulVec(x2, nil), 0) {
		t.Error("SolveMany results wrong")
	}
	// Both problems in barely more time than one: T = 2w·n̄m̄+2w−3 + 1.
	if want := 2*w*4 + 2*w - 3 + 1; stats.T != want {
		t.Errorf("T=%d, want %d", stats.T, want)
	}
}

func TestSolverValidation(t *testing.T) {
	s := NewMatVecSolver(3)
	a := matrix.NewDense(4, 4)
	if _, err := s.Solve(a, make(matrix.Vector, 3), nil, MatVecOptions{}); err == nil {
		t.Error("expected x length error")
	}
	if _, err := s.Solve(a, make(matrix.Vector, 4), make(matrix.Vector, 3), MatVecOptions{}); err == nil {
		t.Error("expected b length error")
	}
	if _, _, err := s.SolveMany(nil, nil, nil); err == nil {
		t.Error("expected SolveMany arity error")
	}
}
