package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestLowerBandVariant: the lower-band form (§2) computes the same y with
// the same step count and utilization as the upper-band form.
func TestLowerBandVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, w := range []int{2, 3, 5} {
		s := NewMatVecSolver(w)
		for _, shape := range [][2]int{{1, 1}, {2 * w, 3 * w}, {7, 11}} {
			a := matrix.RandomDense(rng, shape[0], shape[1], 4)
			x := matrix.RandomVector(rng, shape[1], 4)
			b := matrix.RandomVector(rng, shape[0], 4)
			up, err := s.Solve(a, x, b, MatVecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			lo, err := s.Solve(a, x, b, MatVecOptions{LowerBand: true})
			if err != nil {
				t.Fatal(err)
			}
			if !lo.Y.Equal(up.Y, 0) {
				t.Errorf("w=%d %v: lower-band result differs", w, shape)
			}
			if lo.Stats.T != up.Stats.T {
				t.Errorf("w=%d %v: lower T=%d vs upper %d", w, shape, lo.Stats.T, up.Stats.T)
			}
			if math.Abs(lo.Stats.Utilization-up.Stats.Utilization) > 1e-12 {
				t.Errorf("w=%d %v: utilization differs", w, shape)
			}
		}
	}
}

// TestLowerBandWithOverlap: the variants compose.
func TestLowerBandWithOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	w := 3
	s := NewMatVecSolver(w)
	a := matrix.RandomDense(rng, 4*w, 2*w, 3)
	x := matrix.RandomVector(rng, 2*w, 3)
	res, err := s.Solve(a, x, nil, MatVecOptions{LowerBand: true, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Y.Equal(a.MulVec(x, nil), 0) {
		t.Error("lower-band + overlap wrong")
	}
}

// TestGroupingStats (paper §2, "grouping every 2 PEs in 1"): without
// overlap grouping is conflict-free and grouped η approaches 1 for even w.
func TestGroupingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	w := 4
	s := NewMatVecSolver(w)
	a := matrix.RandomDense(rng, 16*w, w, 3)
	x := matrix.RandomVector(rng, w, 3)
	res, err := s.Solve(a, x, nil, MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GroupableConflicts != 0 {
		t.Errorf("grouping conflicts = %d, want 0", res.Stats.GroupableConflicts)
	}
	if res.Stats.GroupedUtilization < 0.9 {
		t.Errorf("grouped η = %.4f, want near 1", res.Stats.GroupedUtilization)
	}
	if got, want := res.Stats.GroupedUtilization, 2*res.Stats.Utilization; math.Abs(got-want) > 1e-12 {
		t.Errorf("grouped η = %.4f, want exactly 2η = %.4f for even w", got, want)
	}
	// Under overlap the slots fill up and grouping must report conflicts.
	over, err := s.Solve(a, x, nil, MatVecOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if over.Stats.GroupableConflicts == 0 {
		t.Error("expected grouping conflicts under overlap")
	}
}
