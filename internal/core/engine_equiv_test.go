package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/matrix"
)

// The compiled-schedule engine must be indistinguishable from the
// cycle-accurate structural oracle: identical results bit for bit AND
// identical measured statistics (step count, utilization, MAC counts,
// feedback delays, grouping conflicts). These tests sweep shapes and option
// combinations through both engines and compare everything.

// matvecOptionCombos enumerates every valid MatVecOptions combination for a
// shape (ByColumns excludes Overlap; Overlap needs n̄ ≥ 2).
func matvecOptionCombos(nbar int) []MatVecOptions {
	var out []MatVecOptions
	for _, lower := range []bool{false, true} {
		for _, byCols := range []bool{false, true} {
			for _, overlap := range []bool{false, true} {
				if overlap && (byCols || nbar < 2) {
					continue
				}
				out = append(out, MatVecOptions{Overlap: overlap, LowerBand: lower, ByColumns: byCols})
			}
		}
	}
	return out
}

func checkMatVecEquiv(t *testing.T, w, n, m int, a *matrix.Dense, x, b matrix.Vector, opts MatVecOptions) {
	t.Helper()
	s := NewMatVecSolver(w)
	oracleOpts, compiledOpts := opts, opts
	oracleOpts.Engine = EngineOracle
	compiledOpts.Engine = EngineCompiled
	want, err := s.Solve(a, x, b, oracleOpts)
	if err != nil {
		t.Fatalf("oracle solve (w=%d n=%d m=%d %+v): %v", w, n, m, opts, err)
	}
	got, err := s.Solve(a, x, b, compiledOpts)
	if err != nil {
		t.Fatalf("compiled solve (w=%d n=%d m=%d %+v): %v", w, n, m, opts, err)
	}
	ctx := fmt.Sprintf("w=%d n=%d m=%d opts=%+v", w, n, m, opts)
	if !reflect.DeepEqual(got.Y, want.Y) {
		t.Fatalf("%s: Y differs\ncompiled %v\noracle   %v", ctx, got.Y, want.Y)
	}
	// Traces aside (the compiled engine never records one), the full stats
	// must match field by field.
	ws, gs := want.Stats, got.Stats
	ws.Trace, gs.Trace = nil, nil
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats differ\ncompiled %+v\noracle   %+v", ctx, gs, ws)
	}
}

// TestEngineEquivMatVecSweep sweeps w ∈ {1..8}, n̄, m̄ ∈ {1..6} (with ragged
// shapes off the block boundaries) across every option combination.
func TestEngineEquivMatVecSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for w := 1; w <= 8; w++ {
		for nbar := 1; nbar <= 6; nbar++ {
			for mbar := 1; mbar <= 6; mbar++ {
				if testing.Short() && (nbar > 3 || mbar > 3) {
					continue
				}
				// Exact block-multiple shape and a ragged one.
				shapes := [][2]int{{nbar * w, mbar * w}}
				if w > 1 {
					shapes = append(shapes, [2]int{(nbar-1)*w + 1 + rng.Intn(w-1), (mbar-1)*w + 1 + rng.Intn(w-1)})
				}
				for _, nm := range shapes {
					n, m := nm[0], nm[1]
					a := matrix.RandomDense(rng, n, m, 5)
					x := matrix.RandomVector(rng, m, 5)
					b := matrix.RandomVector(rng, n, 5)
					if rng.Intn(4) == 0 {
						b = nil
					}
					for _, opts := range matvecOptionCombos(nbar) {
						checkMatVecEquiv(t, w, n, m, a, x, b, opts)
					}
				}
			}
		}
	}
}

func checkMatMulEquiv(t *testing.T, w, n, p, m int, a, b, e *matrix.Dense) {
	t.Helper()
	s := NewMatMulSolver(w)
	want, err := s.Solve(a, b, MatMulOptions{E: e, Engine: EngineOracle})
	if err != nil {
		t.Fatalf("oracle solve (w=%d %d×%d·%d×%d): %v", w, n, p, p, m, err)
	}
	got, err := s.Solve(a, b, MatMulOptions{E: e, Engine: EngineCompiled})
	if err != nil {
		t.Fatalf("compiled solve (w=%d %d×%d·%d×%d): %v", w, n, p, p, m, err)
	}
	ctx := fmt.Sprintf("w=%d n=%d p=%d m=%d e=%v", w, n, p, m, e != nil)
	if !got.C.Equal(want.C, 0) {
		t.Fatalf("%s: C differs by %g", ctx, got.C.MaxAbsDiff(want.C))
	}
	ws, gs := want.Stats, got.Stats
	ws.Trace, gs.Trace = nil, nil
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats differ\ncompiled %+v\noracle   %+v", ctx, gs, ws)
	}
}

// TestEngineEquivMatMulSweep covers w ∈ {1..4} exhaustively on small block
// grids plus randomized larger draws up to w = 8, n̄/p̄/m̄ ≤ 6, with and
// without the E term and with ragged shapes.
func TestEngineEquivMatMulSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for w := 1; w <= 4; w++ {
		for nbar := 1; nbar <= 3; nbar++ {
			for pbar := 1; pbar <= 3; pbar++ {
				for mbar := 1; mbar <= 3; mbar++ {
					if testing.Short() && nbar*pbar*mbar > 8 {
						continue
					}
					n, p, m := nbar*w, pbar*w, mbar*w
					if w > 1 && rng.Intn(2) == 0 { // ragged
						n, p, m = n-rng.Intn(w-1), p-rng.Intn(w-1), m-rng.Intn(w-1)
					}
					a := matrix.RandomDense(rng, n, p, 4)
					b := matrix.RandomDense(rng, p, m, 4)
					var e *matrix.Dense
					if rng.Intn(2) == 0 {
						e = matrix.RandomDense(rng, n, m, 4)
					}
					checkMatMulEquiv(t, w, n, p, m, a, b, e)
				}
			}
		}
	}
}

// TestEngineEquivMatMulRandomLarge draws random larger shapes (w up to 8,
// bars up to 6) to catch anything the exhaustive small sweep misses.
func TestEngineEquivMatMulRandomLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large randomized sweep")
	}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 12; i++ {
		w := 5 + rng.Intn(4)
		nbar, pbar, mbar := 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3)
		n, p, m := nbar*w-rng.Intn(w), pbar*w-rng.Intn(w), mbar*w-rng.Intn(w)
		a := matrix.RandomDense(rng, n, p, 4)
		b := matrix.RandomDense(rng, p, m, 4)
		var e *matrix.Dense
		if rng.Intn(2) == 0 {
			e = matrix.RandomDense(rng, n, m, 4)
		}
		checkMatMulEquiv(t, w, n, p, m, a, b, e)
	}
	// A couple of deeper matvec shapes beyond the 6×6 grid.
	for i := 0; i < 8; i++ {
		w := 1 + rng.Intn(8)
		nbar, mbar := 1+rng.Intn(10), 1+rng.Intn(10)
		n, m := nbar*w-rng.Intn(w), mbar*w-rng.Intn(w)
		a := matrix.RandomDense(rng, n, m, 5)
		x := matrix.RandomVector(rng, m, 5)
		for _, opts := range matvecOptionCombos(nbar) {
			checkMatVecEquiv(t, w, n, m, a, x, nil, opts)
		}
	}
}

// TestBatchMatchesSerial checks that SolveBatch returns, for every problem,
// exactly what a serial Solve returns — including across worker counts.
func TestBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	w := 4
	s := NewMatVecSolver(w)
	var problems []MatVecProblem
	for i := 0; i < 24; i++ {
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		problems = append(problems, MatVecProblem{
			A: matrix.RandomDense(rng, n, m, 5),
			X: matrix.RandomVector(rng, m, 5),
			B: matrix.RandomVector(rng, n, 5),
		})
	}
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := s.SolveBatchWorkers(problems, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, p := range problems {
			want, err := s.Solve(p.A, p.X, p.B, p.Opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[i].Y, want.Y) {
				t.Fatalf("workers=%d problem %d: batch Y differs", workers, i)
			}
		}
	}

	ms := NewMatMulSolver(3)
	var mm []MatMulProblem
	for i := 0; i < 12; i++ {
		n, p, m := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		mm = append(mm, MatMulProblem{
			A: matrix.RandomDense(rng, n, p, 4),
			B: matrix.RandomDense(rng, p, m, 4),
		})
	}
	got, err := ms.SolveBatch(mm)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mm {
		want, err := ms.Solve(p.A, p.B, p.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].C.Equal(want.C, 0) {
			t.Fatalf("matmul batch problem %d differs", i)
		}
	}
}

// TestBatchError checks error propagation on a partial failure: every
// failing problem comes back nil and is named in the joined error (not just
// the first), while successful siblings still return results.
func TestBatchError(t *testing.T) {
	s := NewMatVecSolver(3)
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	ok := MatVecProblem{A: a, X: matrix.Vector{1, 1}}
	bad := MatVecProblem{A: a, X: matrix.Vector{1, 1, 1}} // len(x) ≠ cols
	res, err := s.SolveBatch([]MatVecProblem{ok, bad, ok, bad, bad})
	if err == nil {
		t.Fatal("want an error for the failing problems")
	}
	for _, i := range []int{1, 3, 4} {
		if res[i] != nil {
			t.Errorf("failing problem %d should be nil", i)
		}
		if want := fmt.Sprintf("batch problem %d", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q: %v", want, err)
		}
	}
	if res[0] == nil || res[2] == nil {
		t.Fatal("successful problems should survive failing siblings")
	}
}

// TestEngineTraceRules: traces require the structural engine.
func TestEngineTraceRules(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	x := matrix.Vector{1, 1}
	s := NewMatVecSolver(2)
	if _, err := s.Solve(a, x, nil, MatVecOptions{Trace: true, Engine: EngineCompiled}); err == nil {
		t.Fatal("compiled engine with trace should error")
	}
	res, err := s.Solve(a, x, nil, MatVecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace == nil {
		t.Fatal("auto engine with trace should fall back to the oracle and record")
	}
	ms := NewMatMulSolver(2)
	if _, err := ms.Solve(a, a, MatMulOptions{Trace: true, Engine: EngineCompiled}); err == nil {
		t.Fatal("compiled engine with trace should error")
	}
	mres, err := ms.Solve(a, a, MatMulOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Stats.Trace == nil {
		t.Fatal("auto engine with trace should fall back to the oracle and record")
	}
}
