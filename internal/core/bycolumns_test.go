package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestByColumnsVariant (E11): the column-major variant computes the same
// result with the same step count, but its measured feedback delay is
// (2n̄−1)·w — the §4 trade-off — versus the by-rows constant w.
func TestByColumnsVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, w := range []int{2, 3, 4} {
		for _, shape := range [][2]int{{2, 3}, {3, 2}, {4, 4}} {
			nb, mb := shape[0], shape[1]
			s := NewMatVecSolver(w)
			a := matrix.RandomDense(rng, nb*w, mb*w, 3)
			x := matrix.RandomVector(rng, mb*w, 3)
			b := matrix.RandomVector(rng, nb*w, 3)

			rows, err := s.Solve(a, x, b, MatVecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cols, err := s.Solve(a, x, b, MatVecOptions{ByColumns: true})
			if err != nil {
				t.Fatal(err)
			}
			if !cols.Y.Equal(rows.Y, 0) {
				t.Errorf("w=%d n̄=%d m̄=%d: by-columns result differs", w, nb, mb)
			}
			if cols.Stats.T != rows.Stats.T {
				t.Errorf("w=%d n̄=%d m̄=%d: T %d vs %d", w, nb, mb, cols.Stats.T, rows.Stats.T)
			}
			for _, d := range rows.Stats.FeedbackDelays {
				if d != w {
					t.Errorf("by-rows delay %d, want %d", d, w)
				}
			}
			for _, d := range cols.Stats.FeedbackDelays {
				if want := (2*nb - 1) * w; d != want {
					t.Errorf("w=%d n̄=%d: by-columns delay %d, want %d", w, nb, d, want)
				}
			}
			if got, want := len(cols.Stats.FeedbackDelays), nb*w*(mb-1); got != want {
				t.Errorf("by-columns: %d feedback edges, want %d", got, want)
			}
		}
	}
}

// TestByColumnsRagged: padding shapes work too.
func TestByColumnsRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	s := NewMatVecSolver(3)
	a := matrix.RandomDense(rng, 7, 10, 3)
	x := matrix.RandomVector(rng, 10, 3)
	res, err := s.Solve(a, x, nil, MatVecOptions{ByColumns: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Y.Equal(a.MulVec(x, nil), 0) {
		t.Error("ragged by-columns wrong")
	}
}

// TestByColumnsRejectsOverlap: the chains span the band; splitting is an error.
func TestByColumnsRejectsOverlap(t *testing.T) {
	s := NewMatVecSolver(3)
	a := matrix.NewDense(6, 6)
	_, err := s.Solve(a, make(matrix.Vector, 6), nil, MatVecOptions{ByColumns: true, Overlap: true})
	if err == nil {
		t.Error("expected ByColumns+Overlap error")
	}
}
