package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// The batch API runs many independent problems across a worker pool. Every
// simulated array is a fixed piece of hardware serving one problem stream,
// but a production service simulates *fleets* of them: the pool dispatches
// each problem to a worker (one simulated array each), sized to
// GOMAXPROCS by default. Combined with the shape-keyed schedule cache —
// workloads repeat shapes, so workers share compiled schedules — batch
// throughput scales near-linearly with cores.

// MatVecProblem is one independent y = A·x + b problem of a batch.
type MatVecProblem struct {
	A *matrix.Dense
	X matrix.Vector
	// B may be nil (zero).
	B matrix.Vector
	// Opts configure this problem's run (engine, variant, overlap…).
	Opts MatVecOptions
}

// MatMulProblem is one independent C = A·B [+ E] problem of a batch.
type MatMulProblem struct {
	A, B *matrix.Dense
	// Opts configure this problem's run (E term, engine…).
	Opts MatMulOptions
}

// SolveBatch solves every problem concurrently on a worker pool sized to
// GOMAXPROCS and returns results aligned with the input slice. On error the
// failing entries are nil and the first error (annotated with its index) is
// returned alongside the successful results.
func (s *MatVecSolver) SolveBatch(problems []MatVecProblem) ([]*MatVecResult, error) {
	return s.SolveBatchWorkers(problems, runtime.GOMAXPROCS(0))
}

// SolveBatchWorkers is SolveBatch with an explicit worker count (values < 1
// mean one worker). Useful for throughput scaling measurements.
func (s *MatVecSolver) SolveBatchWorkers(problems []MatVecProblem, workers int) ([]*MatVecResult, error) {
	return Batch(problems, workers, func(p MatVecProblem) (*MatVecResult, error) {
		return s.Solve(p.A, p.X, p.B, p.Opts)
	})
}

// SolveBatch solves every problem concurrently on a worker pool sized to
// GOMAXPROCS and returns results aligned with the input slice. On error the
// failing entries are nil and the first error (annotated with its index) is
// returned alongside the successful results.
func (s *MatMulSolver) SolveBatch(problems []MatMulProblem) ([]*MatMulResult, error) {
	return s.SolveBatchWorkers(problems, runtime.GOMAXPROCS(0))
}

// SolveBatchWorkers is SolveBatch with an explicit worker count (values < 1
// mean one worker).
func (s *MatMulSolver) SolveBatchWorkers(problems []MatMulProblem, workers int) ([]*MatMulResult, error) {
	return Batch(problems, workers, func(p MatMulProblem) (*MatMulResult, error) {
		return s.Solve(p.A, p.B, p.Opts)
	})
}

// WorkerLadder returns the ascending, deduplicated worker counts
// {1, 2, 4, max} capped at max — the ladder the throughput harnesses
// (sweep E12, BenchmarkSolveBatch) measure scaling over.
func WorkerLadder(max int) []int {
	var counts []int
	for _, workers := range []int{1, 2, 4, max} {
		if workers <= max && (len(counts) == 0 || workers > counts[len(counts)-1]) {
			counts = append(counts, workers)
		}
	}
	return counts
}

// PassWorkerLadder returns the ascending, deduplicated worker counts
// {1, 2, numCPU} — the array counts the intra-solve parallel harnesses
// (BenchmarkIntraSolveParallel, sweep E14, benchjson's *-par rows) measure.
// Unlike WorkerLadder it keeps the 2-worker rung even on a single-core
// host: the oversubscribed row measures executor queue overhead. The 1-
// and 2-worker rungs have host-independent bench-row names; benchjson
// labels the top rung "workers=max" so cmd/benchdiff can match rows
// across hosts with different core counts.
func PassWorkerLadder(numCPU int) []int {
	counts := []int{1, 2}
	if numCPU > 2 {
		counts = append(counts, numCPU)
	}
	return counts
}

// Batch fans items out to a pool of workers pulling from a shared atomic
// cursor (work-stealing by index, no channels on the hot path). Results
// come back aligned with items; on error the failing entries are zero and
// the first error (annotated with its index) is returned alongside the
// successful results. It is the worker-pool substrate behind every
// SolveBatch in the repository — the solver packages built on core
// (trisolve, solve) reuse it for their own batch APIs.
func Batch[P, R any](items []P, workers int, solve func(P) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = solve(items[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			var zero R
			results[i] = zero
			return results, fmt.Errorf("core: batch problem %d: %w", i, err)
		}
	}
	return results, nil
}
