package core

import (
	"runtime"

	"repro/internal/matrix"
)

// The batch API runs many independent problems across a worker fleet. Every
// simulated array is a fixed piece of hardware serving one problem stream,
// but a production service simulates *fleets* of them: the batch dispatches
// each problem to a shard (one simulated array each), sized to
// GOMAXPROCS by default. Combined with the shape-keyed schedule cache —
// workloads repeat shapes, so workers share compiled schedules — batch
// throughput scales near-linearly with cores. SolveBatch is the one-shot
// compatibility surface; a continuous problem stream belongs on the
// persistent stream scheduler (internal/stream), which owns the same Fleet
// substrate these adapters run on.

// MatVecProblem is one independent y = A·x + b problem of a batch.
type MatVecProblem struct {
	A *matrix.Dense
	X matrix.Vector
	// B may be nil (zero).
	B matrix.Vector
	// Opts configure this problem's run (engine, variant, overlap…).
	Opts MatVecOptions
}

// MatMulProblem is one independent C = A·B [+ E] problem of a batch.
type MatMulProblem struct {
	A, B *matrix.Dense
	// Opts configure this problem's run (E term, engine…).
	Opts MatMulOptions
}

// SolveBatch solves every problem concurrently on a worker fleet sized to
// GOMAXPROCS and returns results aligned with the input slice. On error the
// failing entries are nil and a joined error covering every failing index
// is returned alongside the successful results.
func (s *MatVecSolver) SolveBatch(problems []MatVecProblem) ([]*MatVecResult, error) {
	return s.SolveBatchWorkers(problems, runtime.GOMAXPROCS(0))
}

// SolveBatchWorkers is SolveBatch with an explicit worker count (values < 1
// mean one worker). Useful for throughput scaling measurements.
func (s *MatVecSolver) SolveBatchWorkers(problems []MatVecProblem, workers int) ([]*MatVecResult, error) {
	return Batch(problems, workers, func(p MatVecProblem) (*MatVecResult, error) {
		return s.Solve(p.A, p.X, p.B, p.Opts)
	})
}

// SolveBatch solves every problem concurrently on a worker fleet sized to
// GOMAXPROCS and returns results aligned with the input slice. On error the
// failing entries are nil and a joined error covering every failing index
// is returned alongside the successful results.
func (s *MatMulSolver) SolveBatch(problems []MatMulProblem) ([]*MatMulResult, error) {
	return s.SolveBatchWorkers(problems, runtime.GOMAXPROCS(0))
}

// SolveBatchWorkers is SolveBatch with an explicit worker count (values < 1
// mean one worker).
func (s *MatMulSolver) SolveBatchWorkers(problems []MatMulProblem, workers int) ([]*MatMulResult, error) {
	return Batch(problems, workers, func(p MatMulProblem) (*MatMulResult, error) {
		return s.Solve(p.A, p.B, p.Opts)
	})
}

// WorkerLadder returns the ascending, deduplicated worker counts
// {1, 2, 4, max} capped at max — the ladder the throughput harnesses
// (sweep E12, BenchmarkSolveBatch) measure scaling over.
func WorkerLadder(max int) []int {
	var counts []int
	for _, workers := range []int{1, 2, 4, max} {
		if workers <= max && (len(counts) == 0 || workers > counts[len(counts)-1]) {
			counts = append(counts, workers)
		}
	}
	return counts
}

// PassWorkerLadder returns the ascending, deduplicated worker counts
// {1, 2, numCPU} — the array counts the intra-solve parallel harnesses
// (BenchmarkIntraSolveParallel, sweep E14, benchjson's *-par rows) measure.
// Unlike WorkerLadder it keeps the 2-worker rung even on a single-core
// host: the oversubscribed row measures executor queue overhead. The 1-
// and 2-worker rungs have host-independent bench-row names; benchjson
// labels the top rung "workers=max" so cmd/benchdiff can match rows
// across hosts with different core counts.
func PassWorkerLadder(numCPU int) []int {
	counts := []int{1, 2}
	if numCPU > 2 {
		counts = append(counts, numCPU)
	}
	return counts
}

// Batch fans items across a transient Fleet, one pass per item, and waits
// for all of them — a one-shot compatibility adapter over the same sharded
// runtime that backs the stream scheduler and the pass executor (there is
// no second pool implementation). Results come back aligned with items; on
// error the failing entries are zero and a single joined error covering
// EVERY failing index (each annotated "batch problem i") is returned
// alongside the successful results. The solver packages built on core
// (trisolve, solve) reuse it for their own batch APIs; use BatchOn to run
// a batch on a persistent fleet instead.
func Batch[P, R any](items []P, workers int, solve func(P) (R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	// Round-robin routing puts at most ceil(len/workers) items on a shard,
	// so bounding each queue to that never blocks a submission.
	f := NewFleet(workers, (len(items)+workers-1)/workers)
	defer f.Close()
	return BatchOn(f, items, solve)
}
