package core

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Fleet is the single worker-pool substrate of the repository: a persistent
// set of simulated-array shards, each a goroutine with a bounded work queue
// and a private scratch Arena. Every parallel runtime is a view over a
// fleet — the stream scheduler (internal/stream) routes whole problems onto
// one by shape affinity, Executor fans intra-solve passes across one, and
// Batch runs one-shot problem slices on a transient one — so a single fleet
// can serve inter-problem and intra-solve work at once without
// oversubscribing the host.
//
// Scheduling: SubmitTo enqueues a pass on a specific shard (the routing
// policy — affinity, round-robin — belongs to the caller). A shard drains
// its own queue first and steals from sibling queues when idle, so a poorly
// routed or bursty queue never strands work while other shards sit idle.
// Stolen passes run on the stealing shard's arena; every pass is
// arena-agnostic by the Arena ownership contract, so stealing affects only
// locality, never results.
//
// Determinism: the fleet gives no ordering guarantee between passes.
// Callers that need bit-identical results across shard counts must follow
// the Executor discipline: independent passes, disjoint output regions,
// statistics in index-addressed slots reduced in submission order.
type Fleet struct {
	queues []chan Pass
	wake   chan struct{}
	done   sync.WaitGroup // shard goroutines, for Close
	tasks  sync.WaitGroup // in-flight passes, for Flush
	closed atomic.Bool
	panics atomic.Uint64 // recovered pass panics, for Panics
}

// Pass is one unit of fleet work: it runs on some shard's goroutine with
// that shard's private arena (reset just before the run).
type Pass interface {
	RunPass(worker int, ar *Arena)
}

// PassFunc adapts a plain function to the Pass interface.
type PassFunc func(worker int, ar *Arena)

// RunPass calls the function.
func (f PassFunc) RunPass(worker int, ar *Arena) { f(worker, ar) }

// ErrClosed is returned by submissions to a fleet (or a scheduler built on
// one) after Close.
var ErrClosed = errors.New("core: runtime is closed")

// ErrPanicked is the sentinel matched by errors.Is for any job panic a
// fleet shard recovered; the concrete error is always a *PanicError.
var ErrPanicked = errors.New("core: job panicked")

// PanicError is the structured error a recovered job panic resolves to:
// the value passed to panic plus the panicking goroutine's stack captured
// at recovery. A shard that recovers a panic keeps serving — one poisoned
// job can never take a worker down — and the panic travels to whoever
// waits on the job (a stream ticket, a batch error slot, an executor
// barrier) instead of crashing the process. errors.Is matches
// ErrPanicked; errors.As extracts the value and stack.
type PanicError struct {
	// Value is the value the job passed to panic (or the runtime error
	// that raised it).
	Value interface{}
	// Stack is the panicking goroutine's stack at the recovery point.
	Stack []byte
}

// Error formats the recovered panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("core: job panicked: %v", e.Value) }

// Unwrap lets errors.Is(err, ErrPanicked) match every recovered panic.
func (e *PanicError) Unwrap() error { return ErrPanicked }

// PanicCarrier is implemented by passes that can absorb a panic raised
// while they ran: the fleet recovers the panic, wraps it in a PanicError
// and hands it to the pass, which must resolve its own completion signal
// (ticket, barrier slot) with the structured error — and must not panic
// itself. Passes that do not implement it still cannot kill a shard; the
// fleet counts the recovered panic (Panics) and drops it.
type PanicCarrier interface {
	Pass
	// JobPanicked is called on the shard goroutine, after the pass's
	// stack has unwound, with the recovered panic.
	JobPanicked(*PanicError)
}

// DefaultQueueBound is the per-shard queue capacity when a caller does not
// set one.
const DefaultQueueBound = 64

// NewFleet starts a fleet of the given number of shards (values < 1 mean
// GOMAXPROCS), each with a work queue bounded to queueBound passes (values
// < 1 mean DefaultQueueBound). Close it when done.
func NewFleet(shards, queueBound int) *Fleet {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	if queueBound < 1 {
		queueBound = DefaultQueueBound
	}
	f := &Fleet{
		queues: make([]chan Pass, shards),
		wake:   make(chan struct{}, shards),
	}
	// Populate every queue before the first worker starts: the steal loop
	// reads sibling queue slots.
	for i := range f.queues {
		f.queues[i] = make(chan Pass, queueBound)
	}
	for i := range f.queues {
		f.done.Add(1)
		go f.worker(i)
	}
	return f
}

// Shards returns the number of shards.
func (f *Fleet) Shards() int { return len(f.queues) }

// QueueLen reports how many passes sit queued (not yet started) on a
// shard — the depth latency-aware admission multiplies by the shard's
// measured service time to predict queueing delay.
func (f *Fleet) QueueLen(shard int) int { return len(f.queues[shard]) }

// Panics returns the number of pass panics the fleet has recovered since
// it started. Every recovery leaves the shard serving.
func (f *Fleet) Panics() uint64 { return f.panics.Load() }

// SubmitTo enqueues one pass on the given shard, blocking while that
// shard's queue is full (the shard itself — or a stealing sibling — always
// drains it, so the wait is bounded by queue service time). It returns
// ErrClosed after Close. Submissions must not race with Flush or Close on
// the same fleet.
func (f *Fleet) SubmitTo(shard int, p Pass) error {
	if f.closed.Load() {
		return ErrClosed
	}
	f.tasks.Add(1)
	f.queues[shard] <- p
	f.signal()
	return nil
}

// TrySubmitTo is SubmitTo without blocking: it reports false when the
// shard's queue is full, leaving the pass unqueued. Admission policies
// (internal/stream's load shedding) are built on it.
func (f *Fleet) TrySubmitTo(shard int, p Pass) (bool, error) {
	if f.closed.Load() {
		return false, ErrClosed
	}
	f.tasks.Add(1)
	select {
	case f.queues[shard] <- p:
		f.signal()
		return true, nil
	default:
		f.tasks.Done()
		return false, nil
	}
}

// signal nudges one idle shard to run a steal pass. Best-effort: when the
// buffer is full enough wakeups are already pending, and every shard drains
// its own queue regardless.
func (f *Fleet) signal() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// Flush blocks until every pass submitted so far has finished. The caller
// must ensure no concurrent submissions are in flight (same contract as
// Executor.Barrier).
func (f *Fleet) Flush() { f.tasks.Wait() }

// Close flushes, stops the shards and releases them. The fleet must not be
// used afterwards; Close is idempotent.
func (f *Fleet) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.tasks.Wait()
	for _, q := range f.queues {
		close(q)
	}
	f.done.Wait()
}

// worker is one shard: drain the own queue, steal when idle, sleep on the
// own queue and the wake signal otherwise.
func (f *Fleet) worker(i int) {
	defer f.done.Done()
	ar := NewArena()
	own := f.queues[i]
	for {
		select {
		case p, ok := <-own:
			if !ok {
				return
			}
			f.run(p, i, ar)
			continue
		default:
		}
		if f.steal(i, ar) {
			continue
		}
		select {
		case p, ok := <-own:
			if !ok {
				return
			}
			f.run(p, i, ar)
		case <-f.wake:
			// Re-scan: the steal pass at the top of the loop finds the
			// queued work (or a sibling already took it).
		}
	}
}

// steal runs one pass from a sibling queue if any is ready.
func (f *Fleet) steal(self int, ar *Arena) bool {
	for d := 1; d < len(f.queues); d++ {
		select {
		case p, ok := <-f.queues[(self+d)%len(f.queues)]:
			if !ok {
				continue
			}
			f.run(p, self, ar)
			return true
		default:
		}
	}
	return false
}

// run executes one pass on this shard's arena and retires it. A panic
// raised by the pass is recovered here — the shard goroutine survives and
// keeps draining its queue — counted, and handed to the pass when it is a
// PanicCarrier so the waiter sees a structured *PanicError instead of a
// dead runtime.
func (f *Fleet) run(p Pass, worker int, ar *Arena) {
	defer func() {
		if v := recover(); v != nil {
			f.panics.Add(1)
			if c, ok := p.(PanicCarrier); ok {
				c.JobPanicked(&PanicError{Value: v, Stack: debug.Stack()})
			}
		}
		f.tasks.Done()
	}()
	ar.Reset()
	p.RunPass(worker, ar)
}

// BatchOn fans items across an existing fleet (one pass per item, routed
// round-robin) and waits for all of them; see Batch for the result and
// error contract. It lets a batch share a persistent fleet — the stream
// scheduler's, typically — instead of paying for a transient pool. A
// panicking solve is recovered into that item's error slot as a
// *PanicError; siblings and the fleet keep running.
func BatchOn[P, R any](f *Fleet, items []P, solve func(P) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i := range items {
		i := i
		wg.Add(1)
		err := f.SubmitTo(i%f.Shards(), PassFunc(func(int, *Arena) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					errs[i] = &PanicError{Value: v, Stack: debug.Stack()}
				}
			}()
			results[i], errs[i] = solve(items[i])
		}))
		if err != nil {
			wg.Done()
			errs[i] = err
		}
	}
	wg.Wait()
	return results, joinBatchErrors(results, errs)
}

// joinBatchErrors zeroes failed slots and joins every failing index into
// one error (nil when the batch is clean).
func joinBatchErrors[R any](results []R, errs []error) error {
	var joined []error
	for i, err := range errs {
		if err != nil {
			var zero R
			results[i] = zero
			joined = append(joined, fmt.Errorf("core: batch problem %d: %w", i, err))
		}
	}
	return errors.Join(joined...)
}
