package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/matrix"
)

// A 2-PE linear array computes a 4×6 dense matrix–vector product exactly,
// in the paper's 2w·n̄m̄+2w−3 steps.
func ExampleMatVecSolver_Solve() {
	a := matrix.FromRows([][]float64{
		{1, 2, 3, 4, 5, 6},
		{2, 0, 1, 0, 1, 0},
		{0, 1, 0, 1, 0, 1},
		{1, 1, 1, 1, 1, 1},
	})
	x := matrix.Vector{1, 1, 1, 1, 1, 1}
	b := matrix.Vector{10, 20, 30, 40}

	s := core.NewMatVecSolver(2)
	res, err := s.Solve(a, x, b, core.MatVecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("y =", res.Y)
	fmt.Println("steps =", res.Stats.T, "(paper:", res.Stats.PredictedT, ")")
	// Output:
	// y = [31 24 33 46]
	// steps = 25 (paper: 25 )
}

// A 2×2 hexagonal array computes C = A·B + E for shapes unrelated to the
// array size, with the spiral feedback keeping all partial sums inside.
func ExampleMatMulSolver_Solve() {
	a := matrix.FromRows([][]float64{
		{1, 2},
		{3, 4},
		{5, 6},
	})
	b := matrix.FromRows([][]float64{
		{1, 0, 2},
		{0, 1, 2},
	})
	e := matrix.NewDense(3, 3)
	e.Set(0, 0, 100)

	s := core.NewMatMulSolver(2)
	res, err := s.Solve(a, b, core.MatMulOptions{E: e})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fmt.Println(res.C.At(i, 0), res.C.At(i, 1), res.C.At(i, 2))
	}
	// Output:
	// 101 2 6
	// 3 4 14
	// 5 6 22
}
