package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dbt"
	"repro/internal/hex"
	"repro/internal/matrix"
	"repro/internal/schedule"
	"repro/internal/systolic"
)

// MatMulOptions configure a matrix–matrix run.
type MatMulOptions struct {
	// E is the additive term of C = A·B + E; nil means zero.
	E *matrix.Dense
	// Trace records the c-stream boundary events. Requires the structural
	// engine.
	Trace bool
	// Engine selects the execution engine (default EngineAuto: compiled
	// fast path unless Trace is set).
	Engine Engine
}

// MatMulStats reports measured quantities of a hexagonal array run.
type MatMulStats struct {
	// W is the array size; NBar, PBar, MBar the block grid.
	W, NBar, PBar, MBar int
	// T is the measured step count; PredictedT the paper's
	// 3w·p̄n̄m̄ + 4w − 5.
	T, PredictedT int
	// Utilization is the paper's η = p̄n̄m̄w³/(w²·T) (useful MACs over
	// array-steps); PredictedUtilization its closed form. MeasuredMACs
	// additionally counts the boundary/tail operations the band framing
	// adds.
	Utilization, PredictedUtilization float64
	MeasuredMACs                      int
	// RegularDelays histograms the measured regular feedback delays as
	// sorted (delay, count) bins: the paper predicts w for the sub-diagonal
	// pairs and 2w for the auto-fed main diagonal.
	RegularDelays []schedule.DelayBin
	// IrregularDelays histograms the region-crossing feedback delays.
	IrregularDelays []schedule.DelayBin
	// Trace is the boundary trace when requested.
	Trace *systolic.Trace
}

// MatMulResult is the outcome of MatMulSolver.Solve.
type MatMulResult struct {
	C     *matrix.Dense
	Stats MatMulStats
}

// MatMulSolver computes C = A·B + E on a fixed w×w hexagonal array with
// spiral feedback.
type MatMulSolver struct {
	w int
}

// NewMatMulSolver returns a solver for a w×w hexagonal array.
func NewMatMulSolver(w int) *MatMulSolver {
	if w < 1 {
		panic(fmt.Sprintf("core: invalid array size %d", w))
	}
	return &MatMulSolver{w: w}
}

// W returns the array size.
func (s *MatMulSolver) W() int { return s.w }

// Solve computes C = A·B + E by transforming the operands with DBT and
// running one pass of the hexagonal array with spiral feedback.
func (s *MatMulSolver) Solve(a, b *matrix.Dense, opts MatMulOptions) (*MatMulResult, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("core: A is %d×%d but B is %d×%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	if opts.E != nil && (opts.E.Rows() != a.Rows() || opts.E.Cols() != b.Cols()) {
		return nil, fmt.Errorf("core: E is %d×%d, want %d×%d", opts.E.Rows(), opts.E.Cols(), a.Rows(), b.Cols())
	}
	useCompiled, err := opts.Engine.Resolve(opts.Trace)
	if err != nil {
		return nil, err
	}
	if useCompiled {
		// The transform is only needed while packing and extracting, so it
		// comes from the schedule pool and goes straight back.
		t := schedule.GetMatMul(a, b, s.w)
		defer schedule.PutMatMul(t)
		return s.solveCompiled(t, a, b, opts)
	}
	t := dbt.NewMatMul(a, b, s.w)
	arr := hex.New(s.w)
	arr.RecordTrace = opts.Trace
	res := arr.Run(s.program(t, opts.E))

	// Extract C from the recorded output band via the appendix index maps.
	cFinal := matrix.NewDense(a.Rows(), b.Cols())
	extractMatMul(t, cFinal, res.Progs[0].At)

	regular, irregular := systolic.DelayHistogram(res.Feedback())
	stats := MatMulStats{
		W: s.w, NBar: t.NBar, PBar: t.PBar, MBar: t.MBar,
		T:                    res.T,
		PredictedT:           analysis.MatMulSteps(s.w, t.PBar, t.NBar, t.MBar),
		Utilization:          float64(analysis.MatMulOps(s.w, t.PBar, t.NBar, t.MBar)) / (float64(s.w*s.w) * float64(res.T)),
		PredictedUtilization: analysis.MatMulUtilization(s.w, t.PBar, t.NBar, t.MBar),
		MeasuredMACs:         res.Activity.Total(),
		RegularDelays:        schedule.BinsFromHistogram(regular),
		IrregularDelays:      schedule.BinsFromHistogram(irregular),
		Trace:                res.Trace,
	}
	return &MatMulResult{C: cFinal, Stats: stats}, nil
}

// solveCompiled executes the transformed problem on the compiled-schedule
// engine: shape-cached schedule, packed Â/B̂ bands, O(MACs) execution with
// pooled scratch. Results and statistics are bit-identical to the
// structural path.
func (s *MatMulSolver) solveCompiled(t *dbt.MatMul, a, b *matrix.Dense, opts MatMulOptions) (*MatMulResult, error) {
	sch := schedule.MatMulFor(t)
	aPack := schedule.GetFloatsUninit(sch.Dim * s.w)
	defer schedule.PutFloats(aPack)
	bPack := schedule.GetFloatsUninit(sch.Dim * s.w)
	defer schedule.PutFloats(bPack)
	t.PackAHat(*aPack)
	t.PackBHat(*bPack)
	ext := schedule.GetFloats(len(sch.ExtInits))
	defer schedule.PutFloats(ext)
	if opts.E != nil {
		for i, ei := range sch.ExtInits {
			(*ext)[i] = t.EPieceAt(opts.E, ei.R, ei.S, ei.P, ei.A, ei.B)
		}
	}
	oband := schedule.GetFloatsUninit(sch.OLen())
	defer schedule.PutFloats(oband)
	sch.Exec(*aPack, *bPack, *ext, *oband)

	cFinal := matrix.NewDense(a.Rows(), b.Cols())
	extractMatMul(t, cFinal, func(rho, gamma int) float64 {
		return sch.OAt(*oband, rho, gamma)
	})

	regular, irregular := sch.CopyDelays()
	stats := MatMulStats{
		W: s.w, NBar: t.NBar, PBar: t.PBar, MBar: t.MBar,
		T:                    sch.T,
		PredictedT:           analysis.MatMulSteps(s.w, t.PBar, t.NBar, t.MBar),
		Utilization:          float64(analysis.MatMulOps(s.w, t.PBar, t.NBar, t.MBar)) / (float64(s.w*s.w) * float64(sch.T)),
		PredictedUtilization: analysis.MatMulUtilization(s.w, t.PBar, t.NBar, t.MBar),
		MeasuredMACs:         sch.MACs,
		RegularDelays:        regular,
		IrregularDelays:      irregular,
	}
	return &MatMulResult{C: cFinal, Stats: stats}, nil
}

// SolveMany runs up to three independent C_i = A_i·B_i problems overlapped
// on the same array, offset one cycle apart. Because the hexagonal array's
// streams are spaced three cycles, three problems interleave with zero
// structural conflicts and PE utilization approaches 1 — the hexagonal
// analog of the paper's "overlapping the execution of several problems"
// (documented as an extension in DESIGN.md).
func (s *MatMulSolver) SolveMany(as, bs []*matrix.Dense) ([]*matrix.Dense, *MatMulStats, error) {
	if len(as) == 0 || len(as) != len(bs) || len(as) > 3 {
		return nil, nil, fmt.Errorf("core: SolveMany takes 1 to 3 aligned problems, got %d", len(as))
	}
	arr := hex.New(s.w)
	var progs []*hex.Program
	var ts []*dbt.MatMul
	for i := range as {
		if as[i].Cols() != bs[i].Rows() {
			return nil, nil, fmt.Errorf("core: problem %d: A is %d×%d but B is %d×%d",
				i, as[i].Rows(), as[i].Cols(), bs[i].Rows(), bs[i].Cols())
		}
		t := dbt.NewMatMul(as[i], bs[i], s.w)
		ts = append(ts, t)
		p := s.program(t, nil)
		p.Offset = i
		progs = append(progs, p)
	}
	res := arr.Run(progs...)
	cs := make([]*matrix.Dense, len(as))
	for i, t := range ts {
		cs[i] = matrix.NewDense(as[i].Rows(), bs[i].Cols())
		extractMatMul(t, cs[i], res.Progs[i].At)
	}
	stats := &MatMulStats{
		W: s.w,
		T: res.T,
		// Useful ops across all problems over the shared array-steps.
		Utilization:  sumOps(s.w, ts) / (float64(s.w*s.w) * float64(res.T)),
		MeasuredMACs: res.Activity.Total(),
	}
	return cs, stats, nil
}

func sumOps(w int, ts []*dbt.MatMul) float64 {
	total := 0
	for _, t := range ts {
		total += analysis.MatMulOps(w, t.PBar, t.NBar, t.MBar)
	}
	return float64(total)
}

// program builds the hex program for one transformed problem.
func (s *MatMulSolver) program(t *dbt.MatMul, e *matrix.Dense) *hex.Program {
	return &hex.Program{
		Dim: t.Dim(),
		AAt: t.AHatAt,
		BAt: t.BHatAt,
		CInitFor: func(rho, gamma int) hex.CInit {
			k, piece, la, lb := t.PieceAt(rho, gamma)
			init := t.InitFor(k, piece)
			switch init.Kind {
			case dbt.InitE:
				return hex.CInit{Value: t.EPieceAt(e, init.R, init.S, dbt.EPieceForInit(piece), la, lb)}
			case dbt.InitFeedback:
				return hex.CInit{
					Feedback:  true,
					SrcRow:    init.Row*s.w + la,
					SrcCol:    init.Row*s.w + t.PieceColOffset(init.Piece) + lb,
					Irregular: init.Irregular,
				}
			default:
				return hex.CInit{}
			}
		},
	}
}

// cPieces are the three band pieces that partition a C block.
var cPieces = [3]dbt.Piece{dbt.PieceD, dbt.PieceUMid, dbt.PieceLMid}

// extractMatMul assembles C into dst — any shape up to the padded
// n̄w × m̄w grid; every real C element is covered by an in-band position,
// so dst is fully overwritten and needs no pre-zeroing — from an output
// band reader (the structural engine's ProgResult.At or the compiled
// engine's band buffer). It allocates nothing: the source piece of a C
// piece always shares its triangular membership (CSource maps D→D,
// strict-upper→strict-upper, strict-lower→strict-lower), so one membership
// test per position replaces the position enumeration.
func extractMatMul(t *dbt.MatMul, dst *matrix.Dense, at func(rho, gamma int) float64) {
	w := t.W
	dim := t.Dim()
	for r := 0; r < t.NBar; r++ {
		for iB := 0; iB < t.MBar; iB++ {
			for _, p := range cPieces {
				row, src := t.CSource(r, iB, p)
				off := t.PieceColOffset(src)
				for la := 0; la < w; la++ {
					i := r*w + la
					if i >= dst.Rows() || row*w+la >= dim {
						continue
					}
					for lb := 0; lb < w; lb++ {
						if !pieceMember(p, la, lb) {
							continue
						}
						j := iB*w + lb
						col := row*w + off + lb
						if j >= dst.Cols() || col < 0 || col >= dim {
							continue
						}
						dst.Set(i, j, at(row*w+la, col))
					}
				}
			}
		}
	}
}

// pieceMember reports whether local position (a, b) belongs to the triangle
// shape of piece p of a C block.
func pieceMember(p dbt.Piece, a, b int) bool {
	switch p {
	case dbt.PieceD:
		return a == b
	case dbt.PieceUMid:
		return b > a
	case dbt.PieceLMid:
		return b < a
	}
	return false
}
