package core

import (
	"sync"
	"sync/atomic"
)

// Executor is the intra-solve parallel view over a Fleet: the blocked
// solvers (solve.Workspace, trisolve.Workspace) express each elimination
// step as a set of independent array passes, Submit fans them out across
// the fleet's shards round-robin, and Barrier closes the step. An executor
// either owns a private fleet (NewExecutor) or shares one — typically the
// stream scheduler's — so one worker budget serves inter-problem jobs and
// intra-solve passes together (NewExecutorFleet).
//
// Determinism: a pass's result never depends on which shard runs it (plan
// replay is deterministic and every pass writes a disjoint output region),
// and callers accumulate per-pass statistics into index-addressed slots
// that they reduce in submission order after the barrier — so results and
// stats are bit-identical at every worker count, including the serial
// (nil-executor) path.
type Executor struct {
	fleet    *Fleet
	owned    bool
	tasks    sync.WaitGroup // in-flight tasks, for Barrier
	next     atomic.Uint64  // round-robin submission cursor
	panicked atomic.Pointer[PanicError]
}

// NewExecutor starts an executor over a private fleet with the given number
// of simulated arrays (values < 1 mean GOMAXPROCS). Close it when done.
func NewExecutor(workers int) *Executor {
	return &Executor{fleet: NewFleet(workers, 0), owned: true}
}

// NewExecutorFleet returns an executor whose passes run on the given shared
// fleet. The fleet is not owned: Close on the executor only drains the
// executor's own in-flight passes, and the fleet must stay open for the
// executor's whole lifetime.
func NewExecutorFleet(f *Fleet) *Executor {
	return &Executor{fleet: f}
}

// Workers returns the number of simulated arrays (the fleet's shard count).
func (e *Executor) Workers() int { return e.fleet.Shards() }

// execPass is the pooled Pass wrapper that retires a task against its
// executor's barrier — pooled so Submit adds no allocation of its own on
// top of the caller's task closure.
type execPass struct {
	e  *Executor
	fn func(worker int, ar *Arena)
}

// execPassPool recycles wrappers across Submits.
var execPassPool = sync.Pool{New: func() interface{} { return &execPass{} }}

// RunPass runs the task, then recycles the wrapper and retires the
// barrier slot.
func (p *execPass) RunPass(worker int, ar *Arena) {
	p.fn(worker, ar)
	p.retire()
}

// JobPanicked implements PanicCarrier for intra-solve passes: the fleet
// shard that recovered the panic stays alive, the panic is parked on the
// executor, and Barrier re-raises it on the goroutine that submitted the
// step — where the solver's caller can actually see it — instead of
// letting a half-updated factorization masquerade as a result.
func (p *execPass) JobPanicked(err *PanicError) {
	p.e.panicked.CompareAndSwap(nil, err)
	p.retire()
}

// retire recycles the wrapper and retires the barrier slot.
func (p *execPass) retire() {
	e := p.e
	p.e, p.fn = nil, nil
	execPassPool.Put(p)
	e.tasks.Done()
}

// Submit enqueues one pass on the next shard in round-robin order. The
// task receives the shard index and the shard's private arena (reset just
// before the task runs). Tasks must be independent of each other — the
// executor gives no ordering guarantee between tasks submitted before the
// same Barrier — and must record errors and statistics into caller-owned
// indexed slots rather than shared accumulators.
func (e *Executor) Submit(task func(worker int, ar *Arena)) {
	e.tasks.Add(1)
	shard := int(e.next.Add(1)-1) % e.fleet.Shards()
	p := execPassPool.Get().(*execPass)
	p.e, p.fn = e, task
	if err := e.fleet.SubmitTo(shard, p); err != nil {
		// Submitting through a closed fleet is a lifecycle bug (the fleet
		// must outlive its executors), not a recoverable condition.
		p.e, p.fn = nil, nil
		execPassPool.Put(p)
		e.tasks.Done()
		panic(err)
	}
}

// Barrier blocks until every task submitted so far has finished. It is the
// per-step synchronization point of the blocked solvers; the same
// goroutine that Submits must call Barrier (Submit must not race with it).
// If a task panicked since the last Barrier, the recovered *PanicError is
// re-raised here, on the submitting goroutine — the fleet shard that ran
// the task has already recovered and keeps serving.
func (e *Executor) Barrier() {
	e.tasks.Wait()
	if err := e.panicked.Swap(nil); err != nil {
		panic(err)
	}
}

// Close waits for this executor's in-flight tasks and, when the executor
// owns its fleet, stops it. The executor must not be used afterwards.
func (e *Executor) Close() {
	e.tasks.Wait()
	if e.owned {
		e.fleet.Close()
	}
}
