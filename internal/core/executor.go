package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor is the intra-solve parallel substrate: a pool of simulated
// arrays, each a goroutine with its own work queue and scratch Arena. It
// generalizes the whole-problem Batch pool to per-pass granularity — the
// blocked solvers (solve.Workspace, trisolve.Workspace) express each
// elimination step as a set of independent array passes, Submit fans them
// out across the arrays, and Barrier closes the step.
//
// Determinism: a pass's result never depends on which array runs it (plan
// replay is deterministic and every pass writes a disjoint output region),
// and callers accumulate per-pass statistics into index-addressed slots
// that they reduce in submission order after the barrier — so results and
// stats are bit-identical at every worker count, including the serial
// (nil-executor) path.
type Executor struct {
	queues []chan func(worker int, ar *Arena)
	done   sync.WaitGroup // worker goroutines, for Close
	tasks  sync.WaitGroup // in-flight tasks, for Barrier
	next   atomic.Uint64  // round-robin submission cursor
}

// NewExecutor starts an executor with the given number of simulated arrays
// (values < 1 mean GOMAXPROCS). Close it when done.
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{queues: make([]chan func(int, *Arena), workers)}
	for i := range e.queues {
		e.queues[i] = make(chan func(int, *Arena), 64)
		e.done.Add(1)
		go func(worker int) {
			defer e.done.Done()
			ar := NewArena()
			for task := range e.queues[worker] {
				ar.Reset()
				task(worker, ar)
				e.tasks.Done()
			}
		}(i)
	}
	return e
}

// Workers returns the number of simulated arrays.
func (e *Executor) Workers() int { return len(e.queues) }

// Submit enqueues one pass on the next array in round-robin order. The
// task receives the array index and the array's private arena (reset just
// before the task runs). Tasks must be independent of each other — the
// executor gives no ordering guarantee between tasks submitted before the
// same Barrier — and must record errors and statistics into caller-owned
// indexed slots rather than shared accumulators.
func (e *Executor) Submit(task func(worker int, ar *Arena)) {
	e.tasks.Add(1)
	e.queues[int(e.next.Add(1)-1)%len(e.queues)] <- task
}

// Barrier blocks until every task submitted so far has finished. It is the
// per-step synchronization point of the blocked solvers; the same
// goroutine that Submits must call Barrier (Submit must not race with it).
func (e *Executor) Barrier() { e.tasks.Wait() }

// Close waits for in-flight tasks and stops the arrays. The executor must
// not be used afterwards.
func (e *Executor) Close() {
	e.tasks.Wait()
	for _, q := range e.queues {
		close(q)
	}
	e.done.Wait()
}
