package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/systolic"
)

// TestDeterminism: two runs of the same problem are bit-identical in result
// and statistics — the simulators have no hidden nondeterminism.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	a := matrix.RandomDense(rng, 10, 14, 4)
	x := matrix.RandomVector(rng, 14, 4)
	s := NewMatVecSolver(4)
	r1, err := s.Solve(a, x, nil, MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Solve(a, x, nil, MatVecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Y.Equal(r2.Y, 0) || r1.Stats.T != r2.Stats.T || r1.Stats.MACs != r2.Stats.MACs {
		t.Error("matvec runs differ")
	}

	b := matrix.RandomDense(rng, 14, 9, 4)
	m := NewMatMulSolver(3)
	m1, err := m.Solve(a, b, MatMulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.Solve(a, b, MatMulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.C.Equal(m2.C, 0) || m1.Stats.T != m2.Stats.T {
		t.Error("matmul runs differ")
	}
}

// TestMatMulTrace: the hexagonal trace records one c-in and one c-out per
// band position of the transformed problem.
func TestMatMulTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	w := 2
	s := NewMatMulSolver(w)
	a := matrix.RandomDense(rng, w, w, 3)
	b := matrix.RandomDense(rng, w, w, 3)
	res, err := s.Solve(a, b, MatMulOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace == nil {
		t.Fatal("no trace recorded")
	}
	dim := w + w - 1 // p̄n̄m̄ = 1 ⇒ Dim = w + w − 1
	positions := 0
	for i := 0; i < dim; i++ {
		for f := -(w - 1); f <= w-1; f++ {
			if j := i + f; j >= 0 && j < dim {
				positions++
			}
		}
	}
	ins := res.Stats.Trace.ByPort(systolic.PortCIn)
	outs := res.Stats.Trace.ByPort(systolic.PortCOut)
	if len(ins) != positions || len(outs) != positions {
		t.Errorf("%d in / %d out, want %d each", len(ins), len(outs), positions)
	}
}

// TestMatVecMACsExact: the measured MAC count is exactly n̄m̄w² — every
// band position is one useful operation (the "no empty position" claim in
// operational terms).
func TestMatVecMACsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	for _, w := range []int{2, 3, 5} {
		nb, mb := 3, 2
		a := matrix.RandomDense(rng, nb*w, mb*w, 3)
		x := matrix.RandomVector(rng, mb*w, 3)
		res, err := NewMatVecSolver(w).Solve(a, x, nil, MatVecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want := nb * mb * w * w; res.Stats.MACs != want {
			t.Errorf("w=%d: MACs=%d, want %d", w, res.Stats.MACs, want)
		}
	}
}
