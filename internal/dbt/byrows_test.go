package dbt

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestMatVecDimensions(t *testing.T) {
	cases := []struct {
		n, m, w            int
		nbar, mbar         int
		bandRows, bandCols int
	}{
		{6, 9, 3, 2, 3, 18, 20},   // the paper's Fig. 2/3 example
		{3, 3, 3, 1, 1, 3, 5},     // PRT special case n̄=m̄=1
		{1, 1, 4, 1, 1, 4, 7},     // heavy padding
		{7, 5, 3, 3, 2, 18, 20},   // non-multiples
		{10, 10, 5, 2, 2, 20, 24}, // square
	}
	for _, c := range cases {
		a := matrix.NewDense(c.n, c.m)
		tr := NewMatVec(a, c.w)
		if tr.NBar != c.nbar || tr.MBar != c.mbar {
			t.Errorf("n=%d m=%d w=%d: got n̄=%d m̄=%d want %d %d", c.n, c.m, c.w, tr.NBar, tr.MBar, c.nbar, c.mbar)
		}
		if tr.BandRows() != c.bandRows || tr.BandCols() != c.bandCols {
			t.Errorf("n=%d m=%d w=%d: band %d×%d want %d×%d", c.n, c.m, c.w, tr.BandRows(), tr.BandCols(), c.bandRows, c.bandCols)
		}
	}
}

func TestMatVecValidateConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{1, 2, 3, 4, 5} {
		for n := 1; n <= 2*w+1; n += w {
			for m := 1; m <= 2*w+1; m += w {
				tr := NewMatVec(matrix.RandomDense(rng, n, m, 5), w)
				if err := tr.Validate(); err != nil {
					t.Errorf("n=%d m=%d w=%d: %v", n, m, w, err)
				}
			}
		}
	}
}

func TestMatVecIndexRules(t *testing.T) {
	// Spot-check the paper's DBT-by-rows rules for the Fig. 2 example
	// (n̄=2, m̄=3): Ū_k = U_{⌊k/m̄⌋, k mod m̄}, L̄_k = L_{⌊k/m̄⌋, (k mod m̄+1) mod m̄}.
	tr := NewMatVec(matrix.NewDense(6, 9), 3)
	wantU := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	wantL := [][2]int{{0, 1}, {0, 2}, {0, 0}, {1, 1}, {1, 2}, {1, 0}}
	for k := 0; k < tr.Blocks(); k++ {
		if r, s := tr.UpperIndex(k); r != wantU[k][0] || s != wantU[k][1] {
			t.Errorf("Ū_%d = U_{%d,%d}, want U_{%d,%d}", k, r, s, wantU[k][0], wantU[k][1])
		}
		if r, s := tr.LowerIndex(k); r != wantL[k][0] || s != wantL[k][1] {
			t.Errorf("L̄_%d = L_{%d,%d}, want L_{%d,%d}", k, r, s, wantL[k][0], wantL[k][1])
		}
	}
}

func TestMatVecBandIsFull(t *testing.T) {
	// The paper's central claim for efficiency: the transformed band is
	// completely filled ("no empty position") when A is dense. Use an
	// all-ones matrix with dimensions that are exact multiples of w so no
	// padding zeros appear.
	for _, w := range []int{2, 3, 4} {
		a := matrix.NewDense(2*w, 3*w)
		for i := 0; i < a.Rows(); i++ {
			for j := 0; j < a.Cols(); j++ {
				a.Set(i, j, 1)
			}
		}
		tr := NewMatVec(a, w)
		band := tr.Band()
		if got, want := band.NonzeroCount(), band.StoredCount(); got != want {
			t.Errorf("w=%d: band has %d nonzeros of %d stored positions", w, got, want)
		}
	}
}

func TestMatVecBSourceYDest(t *testing.T) {
	tr := NewMatVec(matrix.NewDense(6, 9), 3) // n̄=2, m̄=3
	// b̄: block 0 ← b_0, blocks 1,2 ← feedback, block 3 ← b_1, blocks 4,5 ← feedback.
	wantB := []BSource{
		{FromB, 0}, {FromFeedback, 0}, {FromFeedback, 1},
		{FromB, 1}, {FromFeedback, 3}, {FromFeedback, 4},
	}
	wantY := []YDest{
		{false, 1}, {false, 2}, {true, 0},
		{false, 4}, {false, 5}, {true, 1},
	}
	for k := range wantB {
		if got := tr.BSource(k); got != wantB[k] {
			t.Errorf("BSource(%d) = %+v, want %+v", k, got, wantB[k])
		}
		if got := tr.YDest(k); got != wantY[k] {
			t.Errorf("YDest(%d) = %+v, want %+v", k, got, wantY[k])
		}
	}
}

// TestMatVecRecurrenceCorrect is the core matvec property: the block-level
// recurrence with feedback recovers exactly y = A·x + b for every shape.
func TestMatVecRecurrenceCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range []int{1, 2, 3, 4, 5} {
		for _, n := range []int{1, 2, w - 1, w, w + 1, 2 * w, 3*w - 1} {
			for _, m := range []int{1, 2, w - 1, w, w + 1, 2 * w, 3*w + 1} {
				if n < 1 || m < 1 {
					continue
				}
				a := matrix.RandomDense(rng, n, m, 4)
				x := matrix.RandomVector(rng, m, 4)
				b := matrix.RandomVector(rng, n, 4)
				tr := NewMatVec(a, w)
				got := tr.RecoverY(tr.BlockRecurrence(x, b))
				want := a.MulVec(x, b)
				if !got.Equal(want, 0) {
					t.Errorf("w=%d n=%d m=%d: recurrence diverges by %g", w, n, m, got.MaxAbsDiff(want))
				}
			}
		}
	}
}

func TestMatVecRecurrenceNilB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.RandomDense(rng, 5, 7, 4)
	x := matrix.RandomVector(rng, 7, 4)
	tr := NewMatVec(a, 3)
	got := tr.RecoverY(tr.BlockRecurrence(x, nil))
	want := a.MulVec(x, nil)
	if !got.Equal(want, 0) {
		t.Errorf("nil b: diverges by %g", got.MaxAbsDiff(want))
	}
}

// TestMatVecBandEqualsTransform checks that multiplying the materialized
// band Ā by x̄ block-wise reproduces the recurrence outputs: the band view
// and the recurrence view of the transformation agree.
func TestMatVecBandEqualsTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, w := range []int{2, 3, 4} {
		a := matrix.RandomDense(rng, 2*w+1, 3*w-1, 4)
		x := matrix.RandomVector(rng, a.Cols(), 4)
		b := matrix.RandomVector(rng, a.Rows(), 4)
		tr := NewMatVec(a, w)
		band := tr.Band()
		xbar := tr.TransformX(x)
		ybars := tr.BlockRecurrence(x, b)
		// Row block k of Ā times x̄ must equal ȳ_k minus its initialization.
		for k := 0; k < tr.Blocks(); k++ {
			for aIdx := 0; aIdx < w; aIdx++ {
				i := k*w + aIdx
				s := 0.0
				for j := i; j < i+w && j < tr.BandCols(); j++ {
					s += band.At(i, j) * xbar[j]
				}
				var init float64
				src := tr.BSource(k)
				if src.Kind == FromB {
					bb := b.Pad(tr.NBar * w)
					init = bb[src.Index*w+aIdx]
				} else {
					init = ybars[src.Index][aIdx]
				}
				if got, want := s+init, ybars[k][aIdx]; got != want {
					t.Fatalf("w=%d k=%d a=%d: band row gives %g, recurrence %g", w, k, aIdx, got, want)
				}
			}
		}
	}
}

func TestMatVecTransformXTail(t *testing.T) {
	// The tail x̄_{n̄m̄} must be the first w−1 elements of x_0 (the x block
	// selected by L̄_{n̄m̄−1} under DBT-by-rows).
	w := 4
	a := matrix.NewDense(2*w, 3*w)
	x := make(matrix.Vector, 3*w)
	for i := range x {
		x[i] = float64(i + 1)
	}
	tr := NewMatVec(a, w)
	xbar := tr.TransformX(x)
	if len(xbar) != tr.BandCols() {
		t.Fatalf("len(x̄) = %d, want %d", len(xbar), tr.BandCols())
	}
	tail := xbar[len(xbar)-(w-1):]
	for i := 0; i < w-1; i++ {
		if tail[i] != x[i] {
			t.Errorf("tail[%d] = %g, want %g", i, tail[i], x[i])
		}
	}
	// And x̄_k = x_{k mod m̄} for every block.
	for k := 0; k < tr.Blocks(); k++ {
		for c := 0; c < w; c++ {
			if xbar[k*w+c] != x[(k%tr.MBar)*w+c] {
				t.Errorf("x̄_%d[%d] = %g, want %g", k, c, xbar[k*w+c], x[(k%tr.MBar)*w+c])
			}
		}
	}
}

func TestTransposedIsLowerBand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range []int{2, 3} {
		a := matrix.RandomDense(rng, 2*w, 3*w, 4)
		tr := NewTransposed(a, w)
		band := tr.Band()
		if band.Lo() != -(w-1) || band.Hi() != 0 {
			t.Errorf("w=%d: diagonals [%d,%d], want [%d,0]", w, band.Lo(), band.Hi(), -(w - 1))
		}
		// Consistency with the definition DBT_tr(A) = DBT(Aᵀ)ᵀ.
		inner := NewMatVec(a.Transpose(), w).Band().Dense().Transpose()
		if !band.Dense().Equal(inner, 0) {
			t.Errorf("w=%d: transposed band disagrees with definition", w)
		}
	}
}

func TestMatVecPanicsOnBadInput(t *testing.T) {
	tr := NewMatVec(matrix.NewDense(4, 4), 2)
	mustPanic(t, func() { tr.TransformX(make(matrix.Vector, 3)) })
	mustPanic(t, func() { tr.BlockRecurrence(make(matrix.Vector, 3), nil) })
	mustPanic(t, func() { tr.BSource(99) })
	mustPanic(t, func() { tr.UpperIndex(-1) })
	mustPanic(t, func() { tr.RecoverY(nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}
