package dbt

import (
	"repro/internal/matrix"
)

// Transposed is a DBT-transposed-by-rows transformation (paper §2 end):
//
//	DBT_transposed_by_rows(A) = (DBT_by_rows(Aᵀ))ᵀ
//
// It yields a lower band matrix of bandwidth w. It is the transformation
// applied to each column sub-matrix of the B operand in matrix–matrix
// multiplication (§3).
type Transposed struct {
	// Inner is the DBT-by-rows transformation of Aᵀ.
	Inner *MatVec
}

// NewTransposed builds the DBT-transposed-by-rows transformation of a.
func NewTransposed(a *matrix.Dense, w int) *Transposed {
	return &Transposed{Inner: NewMatVec(a.Transpose(), w)}
}

// BandRows returns the rows of the lower band result (inner band cols).
func (t *Transposed) BandRows() int { return t.Inner.BandCols() }

// BandCols returns the cols of the lower band result (inner band rows).
func (t *Transposed) BandCols() int { return t.Inner.BandRows() }

// BandAt reads element (i, j) of the lower band matrix.
func (t *Transposed) BandAt(i, j int) float64 { return t.Inner.BandAt(j, i) }

// Band materializes the lower band matrix (diagonals −(w−1)..0).
func (t *Transposed) Band() *matrix.Band {
	w := t.Inner.W
	b := matrix.NewBand(t.BandRows(), t.BandCols(), -(w - 1), 0)
	for j := 0; j < t.BandCols(); j++ {
		for d := 0; d < w; d++ {
			i := j + d
			if i < t.BandRows() {
				if v := t.BandAt(i, j); v != 0 {
					b.Set(i, j, v)
				}
			}
		}
	}
	return b
}
