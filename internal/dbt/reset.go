package dbt

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/matrix"
)

// This file holds the allocation-free counterparts of the transform
// constructors and stream helpers, for the compiled engine's transform
// pools and scratch arenas (internal/schedule, internal/core): Reset
// rebuilds a transform in place reusing its grid storage, TransformXInto
// writes x̄ into a caller buffer, and RecoverYFlat extracts y from the flat
// ȳ buffer the compiled replay produces. Each is bit-identical to its
// allocating twin.

// Reset rebuilds t in place as the DBT-by-rows transformation of a with
// array size w, reusing the grid's padded storage when capacity allows. A
// zero-valued MatVec is a valid target.
func (t *MatVec) Reset(a *matrix.Dense, w int) {
	if t.Grid == nil {
		t.Grid = blockpart.Partition(a, w)
	} else {
		t.Grid.Repartition(a, w)
	}
	t.W = w
	t.NBar, t.MBar = t.Grid.BlockRows, t.Grid.BlockCols
	t.N, t.M = a.Rows(), a.Cols()
}

// Reset rebuilds t in place as the matrix–matrix transformation of A (n×p),
// B (p×m) with array size w, reusing the underlying grids' padded storage
// when capacity allows. A zero-valued MatMul is a valid target.
func (t *MatMul) Reset(a, b *matrix.Dense, w int) {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("dbt: MatMul dim mismatch %d×%d · %d×%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	if t.AT == nil {
		t.AT = &MatVec{}
	}
	t.AT.Reset(a, w)
	if t.BGrid == nil {
		t.BGrid = blockpart.Partition(b, w)
	} else {
		t.BGrid.Repartition(b, w)
	}
	t.W = w
	t.NBar, t.PBar, t.MBar = t.AT.NBar, t.AT.MBar, t.BGrid.BlockCols
	t.N, t.P, t.M = a.Rows(), a.Cols(), b.Cols()
}

// TransformXInto writes x̄ into dst (len ≥ BandCols()) and returns the
// filled prefix as a Vector. It produces exactly TransformX's values —
// x̄_k = padded x block (k mod m̄), plus the w−1 tail — without allocating.
func (t *MatVec) TransformXInto(dst []float64, x matrix.Vector) matrix.Vector {
	if len(x) != t.M {
		panic(fmt.Sprintf("dbt: TransformXInto length %d, want %d", len(x), t.M))
	}
	if len(dst) < t.BandCols() {
		panic(fmt.Sprintf("dbt: TransformXInto dst len %d, want ≥ %d", len(dst), t.BandCols()))
	}
	w := t.W
	// writeBlock writes count elements of padded x block s at dst[off:].
	writeBlock := func(off, s, count int) {
		blk := dst[off : off+count]
		lo := s * w
		n := t.M - lo
		if n > count {
			n = count
		}
		if n < 0 {
			n = 0
		}
		copy(blk[:n], x[lo:lo+n])
		clear(blk[n:])
	}
	for k := 0; k < t.Blocks(); k++ {
		writeBlock(k*w, k%t.MBar, w)
	}
	_, s := t.LowerIndex(t.Blocks() - 1)
	writeBlock(t.Blocks()*w, s, w-1)
	return matrix.Vector(dst[:t.BandCols()])
}

// RecoverYFlat extracts the final y (length N) from the flat ȳ buffer of a
// compiled replay (ybar[k·w+a] = ȳ_k[a], len ≥ BandRows()) into dst
// (len = N) and returns dst. It is RecoverY without the per-block slice
// headers.
func (t *MatVec) RecoverYFlat(dst matrix.Vector, ybar []float64) matrix.Vector {
	if len(dst) != t.N {
		panic(fmt.Sprintf("dbt: RecoverYFlat dst len %d, want %d", len(dst), t.N))
	}
	if len(ybar) < t.BandRows() {
		panic(fmt.Sprintf("dbt: RecoverYFlat ybar len %d, want ≥ %d", len(ybar), t.BandRows()))
	}
	w := t.W
	pos := 0
	for k := 0; k < t.Blocks(); k++ {
		if d := t.YDest(k); d.Final {
			n := t.N - pos
			if n > w {
				n = w
			}
			copy(dst[pos:pos+n], ybar[k*w:k*w+n])
			pos += n
		}
	}
	return dst
}
