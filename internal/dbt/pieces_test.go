package dbt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// TestPieceAtRoundTrip: PieceAt inverts PiecePositions for every in-band
// position of every row block (property over random shapes).
func TestPieceAtRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(4)
		nb, pb, mb := 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3)
		tr := NewMatMul(matrix.NewDense(nb*w, pb*w), matrix.NewDense(pb*w, mb*w), w)
		for k := 0; k <= tr.RegularBlocks(); k++ {
			for _, p := range Pieces {
				for _, pos := range tr.PiecePositions(k, p) {
					rho, gamma, a, b := pos[0], pos[1], pos[2], pos[3]
					gk, gp, ga, gb := tr.PieceAt(rho, gamma)
					if gk != k || gp != p || ga != a || gb != b {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPiecePositionsPartitionBand: the five pieces of all row blocks
// partition the product band exactly (no overlap, no gap).
func TestPiecePositionsPartitionBand(t *testing.T) {
	for _, w := range []int{1, 2, 3} {
		tr := NewMatMul(matrix.NewDense(2*w, 2*w), matrix.NewDense(2*w, 2*w), w)
		seen := make(map[[2]int]int)
		for k := 0; k <= tr.RegularBlocks(); k++ {
			for _, p := range Pieces {
				for _, pos := range tr.PiecePositions(k, p) {
					seen[[2]int{pos[0], pos[1]}]++
				}
			}
		}
		want := 0
		for i := 0; i < tr.Dim(); i++ {
			for f := -(w - 1); f <= w-1; f++ {
				if j := i + f; j >= 0 && j < tr.Dim() {
					want++
					if seen[[2]int{i, j}] != 1 {
						t.Fatalf("w=%d: position (%d,%d) covered %d times", w, i, j, seen[[2]int{i, j}])
					}
				}
			}
		}
		if len(seen) != want {
			t.Errorf("w=%d: %d positions covered, want %d", w, len(seen), want)
		}
	}
}

// TestPieceAtRejectsOutOfBand: positions outside the 2w−1 band panic.
func TestPieceAtRejectsOutOfBand(t *testing.T) {
	tr := NewMatMul(matrix.NewDense(4, 4), matrix.NewDense(4, 4), 2)
	mustPanic(t, func() { tr.PieceAt(0, 2) })
	mustPanic(t, func() { tr.PieceAt(3, 0) })
}

// TestHatBandsOutOfRange: the band accessors return 0 outside the band and
// outside the matrix rather than panicking (the simulators probe freely).
func TestHatBandsOutOfRange(t *testing.T) {
	w := 3
	tr := NewMatMul(matrix.NewDense(w, w), matrix.NewDense(w, w), w)
	if tr.AHatAt(0, -1) != 0 || tr.AHatAt(-1, 0) != 0 || tr.AHatAt(0, tr.Dim()) != 0 {
		t.Error("AHatAt out-of-range should be 0")
	}
	if tr.AHatAt(2, 0) != 0 { // below the diagonal: out of upper band
		t.Error("AHatAt below band should be 0")
	}
	if tr.BHatAt(0, 2) != 0 { // above the diagonal: out of lower band
		t.Error("BHatAt above band should be 0")
	}
	if tr.BHatAt(tr.Dim(), 0) != 0 {
		t.Error("BHatAt out-of-range should be 0")
	}
}

// TestEPieceAtShapes: E pieces respect their triangle shapes and tolerate
// nil and padded-region queries.
func TestEPieceAtShapes(t *testing.T) {
	w := 3
	e := matrix.FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	tr := NewMatMul(matrix.NewDense(w, w), matrix.NewDense(w, w), w)
	if tr.EPieceAt(e, 0, 0, PieceD, 1, 1) != 5 {
		t.Error("D piece wrong")
	}
	if tr.EPieceAt(e, 0, 0, PieceD, 0, 1) != 0 {
		t.Error("D piece must be diagonal only")
	}
	if tr.EPieceAt(e, 0, 0, PieceUMid, 0, 2) != 3 || tr.EPieceAt(e, 0, 0, PieceUMid, 2, 0) != 0 {
		t.Error("U piece wrong")
	}
	if tr.EPieceAt(e, 0, 0, PieceLMid, 2, 0) != 7 || tr.EPieceAt(e, 0, 0, PieceLMid, 0, 2) != 0 {
		t.Error("L piece wrong")
	}
	if tr.EPieceAt(nil, 0, 0, PieceD, 1, 1) != 0 {
		t.Error("nil E must read 0")
	}
	mustPanic(t, func() { tr.EPieceAt(e, 0, 0, PieceULeft, 0, 1) })
}
