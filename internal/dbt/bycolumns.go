package dbt

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/matrix"
)

// Transform is the interface shared by the matrix–vector transformation
// variants (DBT-by-rows and DBT-by-columns): everything the linear array
// scheduler needs to run a transformed problem.
type Transform interface {
	// Shape returns the array size and the block grid (w, n̄, m̄).
	Shape() (w, nbar, mbar int)
	// Blocks returns the number of band row blocks (n̄·m̄).
	Blocks() int
	// BandRows and BandCols give the band matrix dimensions.
	BandRows() int
	BandCols() int
	// BandAt reads Ā[i][j].
	BandAt(i, j int) float64
	// TransformX maps the original x to the stream x̄.
	TransformX(x matrix.Vector) matrix.Vector
	// BSource and YDest describe the b̄/ȳ chaining.
	BSource(k int) BSource
	YDest(k int) YDest
	// RecoverY extracts y from the per-block outputs.
	RecoverY(ybars []matrix.Vector) matrix.Vector
	// Validate checks the structural conditions of §2.
	Validate() error
	// PackBand writes Ā into dst (len BandRows()·w) in the packed layout of
	// pack.go, for the compiled-schedule engine.
	PackBand(dst []float64)
}

// Shape implements Transform for the by-rows variant.
func (t *MatVec) Shape() (w, nbar, mbar int) { return t.W, t.NBar, t.MBar }

var _ Transform = (*MatVec)(nil)

// MatVecByColumns is the column-major DBT variant the paper's conclusions
// allude to ("From the proposed transformations, some other related types
// of transformations are easily deduced", §4). Band row block k holds
// Ū_k = U_{r,s} and L̄_k paired within the same original block column:
//
//	r = k mod n̄, s = ⌊k/n̄⌋
//	L̄_k = L_{r,s}                  for r < n̄−1
//	L̄_k = L_{n̄−1,(s+1) mod m̄}     for r = n̄−1
//
// Consequences (measured in the package tests and experiment E11): the x̄
// stream repeats each x block n̄ times *consecutively* — simpler stream
// generation and locality than by-rows — but the accumulation chain of a
// row band now hops n̄ blocks, so the feedback delay is (2n̄−1)·w, growing
// with the problem instead of the by-rows constant w. T and utilization
// are unchanged. This is the §4 trade-off: a simpler data transformation
// paid for in feedback storage.
type MatVecByColumns struct {
	// W, NBar, MBar, N, M as in MatVec.
	W          int
	NBar, MBar int
	N, M       int
	// Grid is the triangular block partition of A.
	Grid *blockpart.Grid
}

var _ Transform = (*MatVecByColumns)(nil)

// NewMatVecByColumns builds the column-major transformation.
func NewMatVecByColumns(a *matrix.Dense, w int) *MatVecByColumns {
	g := blockpart.Partition(a, w)
	return &MatVecByColumns{
		W: w, NBar: g.BlockRows, MBar: g.BlockCols,
		N: a.Rows(), M: a.Cols(), Grid: g,
	}
}

// Shape implements Transform.
func (t *MatVecByColumns) Shape() (w, nbar, mbar int) { return t.W, t.NBar, t.MBar }

// Blocks returns n̄·m̄.
func (t *MatVecByColumns) Blocks() int { return t.NBar * t.MBar }

// BandRows returns n̄·m̄·w.
func (t *MatVecByColumns) BandRows() int { return t.Blocks() * t.W }

// BandCols returns n̄·m̄·w + w − 1.
func (t *MatVecByColumns) BandCols() int { return t.BandRows() + t.W - 1 }

// UpperIndex returns (r, s) with Ū_k = U_{r,s}: r = k mod n̄, s = ⌊k/n̄⌋.
func (t *MatVecByColumns) UpperIndex(k int) (r, s int) {
	t.checkBlock(k)
	return k % t.NBar, k / t.NBar
}

// LowerIndex returns (r, s) with L̄_k = L_{r,s}: the same block column for
// interior rows, the next column (wrapping) for the last block row.
func (t *MatVecByColumns) LowerIndex(k int) (r, s int) {
	t.checkBlock(k)
	r, s = k%t.NBar, k/t.NBar
	if r == t.NBar-1 {
		s = (s + 1) % t.MBar
	}
	return r, s
}

// BandAt reads Ā[i][j] with the same band layout as the by-rows variant.
func (t *MatVecByColumns) BandAt(i, j int) float64 {
	d := j - i
	if d < 0 || d >= t.W {
		return 0
	}
	k := i / t.W
	a := i % t.W
	b := j - k*t.W
	if b < t.W {
		r, s := t.UpperIndex(k)
		return t.Grid.UpperAt(r, s, a, b)
	}
	r, s := t.LowerIndex(k)
	return t.Grid.LowerAt(r, s, a, b-t.W)
}

// TransformX maps x to x̄: x̄_k = x_{⌊k/n̄⌋} — each block streamed n̄ times
// consecutively — plus the usual w−1 tail of x_0.
func (t *MatVecByColumns) TransformX(x matrix.Vector) matrix.Vector {
	if len(x) != t.M {
		panic(fmt.Sprintf("dbt: TransformX length %d, want %d", len(x), t.M))
	}
	xp := x.Pad(t.MBar * t.W)
	out := make(matrix.Vector, 0, t.BandCols())
	for k := 0; k < t.Blocks(); k++ {
		out = append(out, xp.Block(k/t.NBar, t.W)...)
	}
	_, s := t.LowerIndex(t.Blocks() - 1)
	tail := xp.Block(s, t.W)
	return append(out, tail[:t.W-1]...)
}

// BSource: block k starts its chain from b_r in the first block column
// (k < n̄) and otherwise continues the chain of block k − n̄.
func (t *MatVecByColumns) BSource(k int) BSource {
	t.checkBlock(k)
	if k < t.NBar {
		return BSource{Kind: FromB, Index: k}
	}
	return BSource{Kind: FromFeedback, Index: k - t.NBar}
}

// YDest: blocks of the last block column (k ≥ n̄(m̄−1)) emit the final
// y_{k mod n̄}; all others feed block k + n̄.
func (t *MatVecByColumns) YDest(k int) YDest {
	t.checkBlock(k)
	if k >= t.NBar*(t.MBar-1) {
		return YDest{Final: true, Index: k % t.NBar}
	}
	return YDest{Final: false, Index: k + t.NBar}
}

// RecoverY extracts y (length n) from the per-block outputs.
func (t *MatVecByColumns) RecoverY(ybars []matrix.Vector) matrix.Vector {
	if len(ybars) != t.Blocks() {
		panic(fmt.Sprintf("dbt: RecoverY got %d blocks, want %d", len(ybars), t.Blocks()))
	}
	out := make(matrix.Vector, t.NBar*t.W)
	for k := 0; k < t.Blocks(); k++ {
		if d := t.YDest(k); d.Final {
			copy(out[d.Index*t.W:(d.Index+1)*t.W], ybars[k])
		}
	}
	return out[:t.N]
}

// FeedbackDelay returns the register chain length the variant requires:
// (2n̄−1)·w, problem-size dependent (contrast MatVecFeedbackDelay = w for
// by-rows).
func (t *MatVecByColumns) FeedbackDelay() int { return (2*t.NBar - 1) * t.W }

// Validate checks §2's conditions for the column-major pairing: U/L of
// every band block share the original block row, x̄ is continuous, and
// each triangle appears exactly once.
func (t *MatVecByColumns) Validate() error {
	seenU := make(map[[2]int]bool)
	seenL := make(map[[2]int]bool)
	for k := 0; k < t.Blocks(); k++ {
		ru, su := t.UpperIndex(k)
		rl, sl := t.LowerIndex(k)
		if ru != rl {
			return fmt.Errorf("dbt: block %d pairs U row %d with L row %d", k, ru, rl)
		}
		u, l := [2]int{ru, su}, [2]int{rl, sl}
		if seenU[u] || seenL[l] {
			return fmt.Errorf("dbt: block %d duplicates U%v or L%v", k, u, l)
		}
		seenU[u] = true
		seenL[l] = true
		if k+1 < t.Blocks() {
			_, next := t.UpperIndex(k + 1)
			if sl != next {
				return fmt.Errorf("dbt: x̄ discontinuity between blocks %d and %d (%d vs %d)", k, k+1, sl, next)
			}
		}
	}
	if len(seenU) != t.Blocks() || len(seenL) != t.Blocks() {
		return fmt.Errorf("dbt: coverage %d U / %d L, want %d", len(seenU), len(seenL), t.Blocks())
	}
	return nil
}

func (t *MatVecByColumns) checkBlock(k int) {
	if k < 0 || k >= t.Blocks() {
		panic(fmt.Sprintf("dbt: block index %d out of range %d", k, t.Blocks()))
	}
}
