package dbt

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestMatMulDimensions(t *testing.T) {
	// The paper's Fig. 4 example: n̄=2, p̄=2, m̄=3, w=3.
	a := matrix.NewDense(6, 6)
	b := matrix.NewDense(6, 9)
	tr := NewMatMul(a, b, 3)
	if tr.NBar != 2 || tr.PBar != 2 || tr.MBar != 3 {
		t.Fatalf("got n̄=%d p̄=%d m̄=%d", tr.NBar, tr.PBar, tr.MBar)
	}
	if got, want := tr.Dim(), 2*2*3*3+3-1; got != want {
		t.Errorf("Dim = %d, want %d (p̄n̄m̄w + w−1)", got, want)
	}
	if got, want := tr.RegularBlocks(), 12; got != want {
		t.Errorf("RegularBlocks = %d, want %d", got, want)
	}
}

func TestAHatBandIsFullAndUpper(t *testing.T) {
	// With dense A whose dims are exact multiples of w, the Ā band must be
	// completely filled (the size-independence claim) and strictly upper.
	for _, w := range []int{2, 3} {
		a := matrix.NewDense(2*w, 2*w)
		b := matrix.NewDense(2*w, 3*w)
		for i := 0; i < a.Rows(); i++ {
			for j := 0; j < a.Cols(); j++ {
				a.Set(i, j, 1)
			}
		}
		tr := NewMatMul(a, b, w)
		band := tr.AHatBand()
		if band.Lo() != 0 || band.Hi() != w-1 {
			t.Fatalf("w=%d: Ā diagonals [%d,%d]", w, band.Lo(), band.Hi())
		}
		if got, want := band.NonzeroCount(), band.StoredCount(); got != want {
			t.Errorf("w=%d: Ā band %d/%d filled", w, got, want)
		}
	}
}

func TestBHatBandIsFullAndLower(t *testing.T) {
	for _, w := range []int{2, 3} {
		a := matrix.NewDense(2*w, 2*w)
		b := matrix.NewDense(2*w, 3*w)
		for i := 0; i < b.Rows(); i++ {
			for j := 0; j < b.Cols(); j++ {
				b.Set(i, j, 1)
			}
		}
		tr := NewMatMul(a, b, w)
		band := tr.BHatBand()
		if band.Lo() != -(w-1) || band.Hi() != 0 {
			t.Fatalf("w=%d: B̄ diagonals [%d,%d]", w, band.Lo(), band.Hi())
		}
		if got, want := band.NonzeroCount(), band.StoredCount(); got != want {
			t.Errorf("w=%d: B̄ band %d/%d filled", w, got, want)
		}
	}
}

// TestMatMulReferenceCorrect is the core matmul property: the re-derived
// spiral-feedback composition and C extraction recover exactly C = A·B + E
// across an exhaustive sweep of block shapes and array sizes.
func TestMatMulReferenceCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 2, 3} {
		for nb := 1; nb <= 3; nb++ {
			for pb := 1; pb <= 3; pb++ {
				for mb := 1; mb <= 3; mb++ {
					n, p, m := nb*w, pb*w, mb*w
					a := matrix.RandomDense(rng, n, p, 3)
					b := matrix.RandomDense(rng, p, m, 3)
					e := matrix.RandomDense(rng, n, m, 3)
					tr := NewMatMul(a, b, w)
					_, c := tr.ReferenceRun(e)
					want := a.Mul(b).AddM(e)
					if !c.Equal(want, 0) {
						t.Errorf("w=%d n̄=%d p̄=%d m̄=%d: C diverges by %g", w, nb, pb, mb, c.MaxAbsDiff(want))
					}
				}
			}
		}
	}
}

// TestMatMulReferenceRagged covers dimensions that are not multiples of w
// (zero padding) and nil E.
func TestMatMulReferenceRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct{ n, p, m, w int }{
		{1, 1, 1, 3}, {4, 5, 6, 3}, {7, 3, 5, 4}, {5, 5, 5, 2},
		{2, 9, 4, 3}, {10, 1, 10, 4}, {3, 8, 2, 5},
	}
	for _, cse := range cases {
		a := matrix.RandomDense(rng, cse.n, cse.p, 3)
		b := matrix.RandomDense(rng, cse.p, cse.m, 3)
		tr := NewMatMul(a, b, cse.w)
		_, c := tr.ReferenceRun(nil)
		want := a.Mul(b)
		if !c.Equal(want, 0) {
			t.Errorf("%+v: C diverges by %g", cse, c.MaxAbsDiff(want))
		}
	}
}

func TestMatMulLargerShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large shapes in -short mode")
	}
	rng := rand.New(rand.NewSource(9))
	cases := []struct{ n, p, m, w int }{
		{12, 16, 20, 4}, {15, 10, 25, 5}, {8, 24, 8, 4},
	}
	for _, cse := range cases {
		a := matrix.RandomDense(rng, cse.n, cse.p, 3)
		b := matrix.RandomDense(rng, cse.p, cse.m, 3)
		e := matrix.RandomDense(rng, cse.n, cse.m, 3)
		tr := NewMatMul(a, b, cse.w)
		_, c := tr.ReferenceRun(e)
		want := a.Mul(b).AddM(e)
		if !c.Equal(want, 0) {
			t.Errorf("%+v: C diverges by %g", cse, c.MaxAbsDiff(want))
		}
	}
}

// TestInitChainsAreCausal checks that every feedback initialization refers
// to a row block that finishes strictly before the consuming one starts
// needing it (earlier row, or an earlier piece of the same row).
func TestInitChainsAreCausal(t *testing.T) {
	order := map[Piece]int{PieceULeft: 0, PieceLMid: 1, PieceD: 1, PieceUMid: 1, PieceLRight: 2}
	for _, w := range []int{2, 3} {
		tr := NewMatMul(matrix.NewDense(2*w, 2*w), matrix.NewDense(2*w, 3*w), w)
		for k := 0; k <= tr.RegularBlocks(); k++ {
			for _, p := range Pieces {
				init := tr.InitFor(k, p)
				if init.Kind != InitFeedback {
					continue
				}
				if init.Row > k || (init.Row == k && order[init.Piece] >= order[p]) {
					t.Errorf("w=%d: init of (%d,%v) from (%d,%v) is acausal", w, k, p, init.Row, init.Piece)
				}
			}
		}
	}
}

// TestEInjectionExactlyOnce verifies each E piece enters the array exactly
// once (the paper's "single copy" condition carried over to matmul).
func TestEInjectionExactlyOnce(t *testing.T) {
	for _, w := range []int{2, 3} {
		for _, shape := range [][3]int{{1, 1, 1}, {2, 2, 3}, {3, 1, 2}, {1, 3, 2}, {2, 2, 1}} {
			nb, pb, mb := shape[0], shape[1], shape[2]
			tr := NewMatMul(matrix.NewDense(nb*w, pb*w), matrix.NewDense(pb*w, mb*w), w)
			count := map[[3]int]int{} // (r, iB, piece) → injections
			for k := 0; k <= tr.RegularBlocks(); k++ {
				for _, p := range Pieces {
					init := tr.InitFor(k, p)
					if init.Kind == InitE {
						count[[3]int{init.R, init.S, int(EPieceForInit(p))}]++
					}
				}
			}
			for r := 0; r < nb; r++ {
				for iB := 0; iB < mb; iB++ {
					for _, p := range []Piece{PieceD, PieceUMid, PieceLMid} {
						if got := count[[3]int{r, iB, int(p)}]; got != 1 {
							t.Errorf("w=%d %v: E(%d,%d,%v) injected %d times", w, shape, r, iB, p, got)
						}
					}
				}
			}
		}
	}
}

// TestIrregularFeedbackSites verifies the irregular (region-crossing)
// feedbacks appear exactly where §3 says: when blocks U_{0,j} are fed back
// (region starts) and when the L_{n̄−1,j} chains cross regions.
func TestIrregularFeedbackSites(t *testing.T) {
	w := 3
	tr := NewMatMul(matrix.NewDense(2*w, 2*w), matrix.NewDense(2*w, 3*w), w) // n̄=2 p̄=2 m̄=3
	region := tr.PBar * tr.NBar
	for k := 1; k <= tr.RegularBlocks(); k++ {
		init := tr.InitFor(k, PieceULeft)
		wantIrr := k%region == 0
		if (init.Kind == InitFeedback && init.Irregular) != wantIrr {
			t.Errorf("ULeft row %d: irregular=%v, want %v", k, init.Irregular, wantIrr)
		}
	}
	for k := 0; k < tr.RegularBlocks(); k++ {
		init := tr.InitFor(k, PieceLMid)
		r, iB, s := tr.group(k)
		wantIrr := s == 0 && r == tr.NBar-1 && iB > 0
		if (init.Kind == InitFeedback && init.Irregular) != wantIrr {
			t.Errorf("LMid row %d: irregular=%v, want %v", k, init.Kind == InitFeedback && init.Irregular, wantIrr)
		}
	}
	// The longest feedback: right triangle of the last regular row.
	init := tr.InitFor(tr.RegularBlocks()-1, PieceLRight)
	if init.Kind != InitFeedback || !init.Irregular || init.Row != tr.NBar*tr.PBar-1 || init.Piece != PieceLMid {
		t.Errorf("last-row LRight init = %+v", init)
	}
}

func TestCSourceFig4Example(t *testing.T) {
	// n̄=2, p̄=2, m̄=3, w=3: spot-check extraction sites.
	w := 3
	tr := NewMatMul(matrix.NewDense(2*w, 2*w), matrix.NewDense(2*w, 3*w), w)
	// D of C_{r,iB} at last row of its group: g = iB·n̄ + r, row (g+1)p̄−1.
	if row, p := tr.CSource(1, 2, PieceD); row != (2*2+1+1)*2-1 || p != PieceD {
		t.Errorf("D C_{1,2} at (%d,%v)", row, p)
	}
	// U of C_{0,j} at the first row of region j+1 (irregular chain end).
	if row, p := tr.CSource(0, 0, PieceUMid); row != 4 || p != PieceULeft {
		t.Errorf("U C_{0,0} at (%d,%v), want (4,U0)", row, p)
	}
	// U of C_{0,m̄−1} lands on the tail row block.
	if row, p := tr.CSource(0, 2, PieceUMid); row != tr.RegularBlocks() || p != PieceULeft {
		t.Errorf("U C_{0,2} at (%d,%v), want (%d,U0)", row, p, tr.RegularBlocks())
	}
	// L of C_{n̄−1,0} at the right triangle of the last regular row.
	if row, p := tr.CSource(1, 0, PieceLMid); row != tr.RegularBlocks()-1 || p != PieceLRight {
		t.Errorf("L C_{1,0} at (%d,%v)", row, p)
	}
	// L of C_{n̄−1,j>0} at the mid of the last row of region j.
	if row, p := tr.CSource(1, 1, PieceLMid); row != 2*4-1 || p != PieceLMid {
		t.Errorf("L C_{1,1} at (%d,%v), want (7,L0)", row, p)
	}
}

func TestMatMulQuickProperty(t *testing.T) {
	// Randomized property sweep beyond the exhaustive grid: 60 random
	// shapes, exact equality required.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 60; i++ {
		w := 1 + rng.Intn(4)
		n := 1 + rng.Intn(3*w)
		p := 1 + rng.Intn(3*w)
		m := 1 + rng.Intn(3*w)
		a := matrix.RandomDense(rng, n, p, 3)
		b := matrix.RandomDense(rng, p, m, 3)
		e := matrix.RandomDense(rng, n, m, 3)
		tr := NewMatMul(a, b, w)
		_, c := tr.ReferenceRun(e)
		want := a.Mul(b).AddM(e)
		if !c.Equal(want, 0) {
			t.Fatalf("case %d (n=%d p=%d m=%d w=%d): diverges by %g", i, n, p, m, w, c.MaxAbsDiff(want))
		}
	}
}
