package dbt

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/matrix"
)

// This file exports the transformed bands as flat packed arrays for the
// compiled-schedule engine (internal/schedule). The cycle-accurate
// simulators read coefficients one at a time through BandAt/AHatAt/BHatAt
// closures; the compiled engine instead wants every coefficient laid out
// contiguously so its inner loop is a pure stride-1 multiply–accumulate.
//
// Layouts:
//
//   - Upper bands (Ā of matvec, Â of matmul): dst[i*w+d] = band[i][i+d],
//     d ∈ [0, w). Entries past the band's column count are zero.
//   - Lower bands (B̂ of matmul), packed by column so the matmul inner loop
//     over κ is stride-1 in both operands: dst[j*w+d] = band[j+d][j].
//   - Triangular lower bands (L of the solver array), packed by row over
//     descending column index: dst[i*w+d] = band[i][i−d].

// checkPack validates a destination buffer of n rows of w entries.
func checkPack(dst []float64, rows, w int) {
	if len(dst) != rows*w {
		panic(fmt.Sprintf("dbt: pack buffer len %d, want %d×%d=%d", len(dst), rows, w, rows*w))
	}
}

// PackBand writes Ā into dst (len n̄m̄w·w) in upper-band packed layout.
func (t *MatVec) PackBand(dst []float64) {
	packBandBlocks(dst, t.Grid, t.W, t.Blocks(), t.UpperIndex, t.LowerIndex)
}

// PackBand writes Ā into dst (len n̄m̄w·w) in upper-band packed layout.
func (t *MatVecByColumns) PackBand(dst []float64) {
	packBandBlocks(dst, t.Grid, t.W, t.Blocks(), t.UpperIndex, t.LowerIndex)
}

// packBandBlocks packs a DBT matvec band directly from the padded grid,
// block row by block row: band row kw+a holds Ū_k[a][a..w−1] on diagonals
// 0..w−1−a followed by L̄_k[a][0..a−1] on diagonals w−a..w−1 (both triangles
// read straight out of the padded matrix, no per-element dispatch). This is
// exactly what BandAt(i, i+d) returns, element for element.
func packBandBlocks(dst []float64, g *blockpart.Grid, w, blocks int, upper, lower func(k int) (r, s int)) {
	checkPack(dst, blocks*w, w)
	padded := g.Padded()
	for k := 0; k < blocks; k++ {
		ru, su := upper(k)
		rl, sl := lower(k)
		for a := 0; a < w; a++ {
			row := dst[(k*w+a)*w : (k*w+a+1)*w]
			up := padded.RawRow(ru*w + a)[su*w : (su+1)*w]
			copy(row, up[a:])
			if a > 0 {
				lo := padded.RawRow(rl*w + a)[sl*w : (sl+1)*w]
				copy(row[w-a:], lo[:a])
			}
		}
	}
}

// PackAHat writes Â into dst (len Dim·w) in upper-band packed layout.
func (t *MatMul) PackAHat(dst []float64) {
	packUpper(dst, t.Dim(), t.Dim(), t.W, t.AHatAt)
}

// PackBHat writes B̂ into dst (len Dim·w) in lower-band by-column packed
// layout: dst[j*w+d] = B̂[j+d][j].
func (t *MatMul) PackBHat(dst []float64) {
	n := t.Dim()
	checkPack(dst, n, t.W)
	for j := 0; j < n; j++ {
		row := dst[j*t.W : (j+1)*t.W]
		for d := range row {
			if i := j + d; i < n {
				row[d] = t.BHatAt(i, j)
			} else {
				row[d] = 0
			}
		}
	}
}

// PackTriBand writes the lower triangular band l (diagonals −(w−1)..0, the
// solver-array operand shape) into dst (len n·w) in triangular packed
// layout: dst[i*w+d] = l[i][i−d], zero where i−d < 0 or the diagonal is
// outside l's stored band. Row i's slot 0 is the main-diagonal divisor; the
// compiled trisolve plan (schedule.TriSolve) consumes slots w−1..1 in
// descending order, matching the solver array's leftward y movement.
func PackTriBand(l *matrix.Band, w int, dst []float64) {
	n := l.Rows()
	checkPack(dst, n, w)
	if l.Lo() == 1-w && l.Hi() == 0 {
		// l stores exactly the diagonals the pack wants, row-compact in
		// ascending diagonal order — the packed row is the storage row
		// reversed, and out-of-matrix slots are zero by Band's invariant
		// (RawRow), so no per-element band dispatch is needed.
		for i := 0; i < n; i++ {
			src := l.RawRow(i)
			row := dst[i*w : (i+1)*w]
			for d := range row {
				row[d] = src[w-1-d]
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		row := dst[i*w : (i+1)*w]
		for d := range row {
			if j := i - d; j >= 0 {
				row[d] = l.At(i, j)
			} else {
				row[d] = 0
			}
		}
	}
}

// packUpper fills dst[i*w+d] = at(i, i+d) for j = i+d < cols, zero beyond.
func packUpper(dst []float64, rows, cols, w int, at func(i, j int) float64) {
	checkPack(dst, rows, w)
	for i := 0; i < rows; i++ {
		row := dst[i*w : (i+1)*w]
		for d := range row {
			if j := i + d; j < cols {
				row[d] = at(i, j)
			} else {
				row[d] = 0
			}
		}
	}
}
