package dbt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestByColumnsIndexRules(t *testing.T) {
	// n̄=2, m̄=3 at w=3: column-major order with the last block row's L
	// shifted one column.
	tr := NewMatVecByColumns(matrix.NewDense(6, 9), 3)
	wantU := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}}
	wantL := [][2]int{{0, 0}, {1, 1}, {0, 1}, {1, 2}, {0, 2}, {1, 0}}
	for k := 0; k < tr.Blocks(); k++ {
		if r, s := tr.UpperIndex(k); r != wantU[k][0] || s != wantU[k][1] {
			t.Errorf("Ū_%d = U_{%d,%d}, want U_{%d,%d}", k, r, s, wantU[k][0], wantU[k][1])
		}
		if r, s := tr.LowerIndex(k); r != wantL[k][0] || s != wantL[k][1] {
			t.Errorf("L̄_%d = L_{%d,%d}, want L_{%d,%d}", k, r, s, wantL[k][0], wantL[k][1])
		}
	}
}

func TestByColumnsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for _, w := range []int{1, 2, 3, 4} {
		for n := 1; n <= 2*w+1; n += w {
			for m := 1; m <= 2*w+1; m += w {
				tr := NewMatVecByColumns(matrix.RandomDense(rng, n, m, 4), w)
				if err := tr.Validate(); err != nil {
					t.Errorf("n=%d m=%d w=%d: %v", n, m, w, err)
				}
			}
		}
	}
}

// TestByColumnsRecurrence: the block-level recurrence (BandAt + chaining)
// recovers y = A·x + b exactly — verified through the generic Transform
// plumbing rather than a bespoke recurrence.
func TestByColumnsRecurrence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(4)
		n := 1 + rng.Intn(3*w)
		m := 1 + rng.Intn(3*w)
		a := matrix.RandomDense(rng, n, m, 4)
		x := matrix.RandomVector(rng, m, 4)
		b := matrix.RandomVector(rng, n, 4)
		tr := NewMatVecByColumns(a, w)
		ybars := runTransform(tr, x, b)
		return tr.RecoverY(ybars).Equal(a.MulVec(x, b), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// runTransform executes any Transform at block level (the mathematical
// reference for the array).
func runTransform(t Transform, x, b matrix.Vector) []matrix.Vector {
	w, nbar, _ := t.Shape()
	xbar := t.TransformX(x)
	var bp matrix.Vector
	if b == nil {
		bp = matrix.NewVector(nbar * w)
	} else {
		bp = b.Pad(nbar * w)
	}
	ybars := make([]matrix.Vector, t.Blocks())
	for k := 0; k < t.Blocks(); k++ {
		y := make(matrix.Vector, w)
		switch src := t.BSource(k); src.Kind {
		case FromB:
			copy(y, bp[src.Index*w:(src.Index+1)*w])
		case FromFeedback:
			copy(y, ybars[src.Index])
		}
		for a := 0; a < w; a++ {
			i := k*w + a
			for j := i; j < i+w && j < t.BandCols(); j++ {
				y[a] += t.BandAt(i, j) * xbar[j]
			}
		}
		ybars[k] = y
	}
	return ybars
}

// TestByRowsThroughGenericRunner: the by-rows transform behaves identically
// under the generic runner (guards the Transform interface contract).
func TestByRowsThroughGenericRunner(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	a := matrix.RandomDense(rng, 7, 11, 4)
	x := matrix.RandomVector(rng, 11, 4)
	b := matrix.RandomVector(rng, 7, 4)
	tr := NewMatVec(a, 3)
	got := tr.RecoverY(runTransform(tr, x, b))
	if !got.Equal(a.MulVec(x, b), 0) {
		t.Error("generic runner diverges for by-rows")
	}
}

// TestByColumnsXStreamLocality: x̄ streams each block n̄ times in a row —
// the variant's selling point.
func TestByColumnsXStreamLocality(t *testing.T) {
	w := 3
	tr := NewMatVecByColumns(matrix.NewDense(2*w, 3*w), w)
	x := make(matrix.Vector, 3*w)
	for i := range x {
		x[i] = float64(i)
	}
	xbar := tr.TransformX(x)
	for k := 0; k < tr.Blocks(); k++ {
		s := k / tr.NBar
		for c := 0; c < w; c++ {
			if xbar[k*w+c] != x[s*w+c] {
				t.Fatalf("x̄ block %d element %d = %g, want x block %d", k, c, xbar[k*w+c], s)
			}
		}
	}
}

// TestByColumnsChaining: b̄ chains hop n̄ blocks (the longer feedback).
func TestByColumnsChaining(t *testing.T) {
	tr := NewMatVecByColumns(matrix.NewDense(6, 9), 3) // n̄=2, m̄=3
	wantB := []BSource{
		{FromB, 0}, {FromB, 1},
		{FromFeedback, 0}, {FromFeedback, 1},
		{FromFeedback, 2}, {FromFeedback, 3},
	}
	wantY := []YDest{
		{false, 2}, {false, 3},
		{false, 4}, {false, 5},
		{true, 0}, {true, 1},
	}
	for k := range wantB {
		if got := tr.BSource(k); got != wantB[k] {
			t.Errorf("BSource(%d) = %+v, want %+v", k, got, wantB[k])
		}
		if got := tr.YDest(k); got != wantY[k] {
			t.Errorf("YDest(%d) = %+v, want %+v", k, got, wantY[k])
		}
	}
	if got, want := tr.FeedbackDelay(), (2*2-1)*3; got != want {
		t.Errorf("FeedbackDelay = %d, want %d", got, want)
	}
}
