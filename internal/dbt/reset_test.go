package dbt

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestResetMatchesNew: a transform rebuilt in place across a sequence of
// random shapes must be indistinguishable from a freshly constructed one —
// band contents, x̄ stream and recovered y alike.
func TestResetMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reused := &MatVec{}
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Intn(4)
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		a := matrix.RandomDense(rng, n, m, 5)
		reused.Reset(a, w)
		fresh := NewMatVec(a, w)
		if reused.W != fresh.W || reused.NBar != fresh.NBar || reused.MBar != fresh.MBar ||
			reused.N != fresh.N || reused.M != fresh.M {
			t.Fatalf("Reset header mismatch: %+v vs %+v", reused, fresh)
		}
		for i := 0; i < fresh.BandRows(); i++ {
			for d := 0; d < w; d++ {
				if j := i + d; j < fresh.BandCols() {
					if reused.BandAt(i, j) != fresh.BandAt(i, j) {
						t.Fatalf("Reset band mismatch at (%d,%d)", i, j)
					}
				}
			}
		}
		x := matrix.RandomVector(rng, m, 5)
		want := fresh.TransformX(x)
		got := reused.TransformXInto(make([]float64, reused.BandCols()+rng.Intn(3)), x)
		if !got.Equal(want, 0) {
			t.Fatal("TransformXInto mismatch")
		}
	}
}

// TestResetMatMulMatchesNew: same for the matrix–matrix transform.
func TestResetMatMulMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	reused := &MatMul{}
	for trial := 0; trial < 15; trial++ {
		w := 1 + rng.Intn(3)
		n, p, m := 1+rng.Intn(2*w), 1+rng.Intn(2*w), 1+rng.Intn(2*w)
		a := matrix.RandomDense(rng, n, p, 4)
		b := matrix.RandomDense(rng, p, m, 4)
		reused.Reset(a, b, w)
		fresh := NewMatMul(a, b, w)
		if reused.NBar != fresh.NBar || reused.PBar != fresh.PBar || reused.MBar != fresh.MBar ||
			reused.Dim() != fresh.Dim() {
			t.Fatalf("Reset header mismatch: %+v vs %+v", reused, fresh)
		}
		for i := 0; i < fresh.Dim(); i++ {
			for d := 0; d < w; d++ {
				if j := i + d; j < fresh.Dim() {
					if reused.AHatAt(i, j) != fresh.AHatAt(i, j) {
						t.Fatalf("Reset Â mismatch at (%d,%d)", i, j)
					}
				}
				if j := i - d; j >= 0 {
					if reused.BHatAt(i, j) != fresh.BHatAt(i, j) {
						t.Fatalf("Reset B̂ mismatch at (%d,%d)", i, j)
					}
				}
			}
		}
	}
}

// TestRecoverYFlat: recovering y from the flat ȳ buffer must match the
// per-block RecoverY on every shape, ragged tails included.
func TestRecoverYFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Intn(4)
		n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
		tr := NewMatVec(matrix.RandomDense(rng, n, m, 5), w)
		flat := make([]float64, tr.BandRows())
		for i := range flat {
			flat[i] = float64(rng.Intn(19) - 9)
		}
		ybars := make([]matrix.Vector, tr.Blocks())
		for k := range ybars {
			ybars[k] = matrix.Vector(flat[k*w : (k+1)*w]).Clone()
		}
		want := tr.RecoverY(ybars)
		got := tr.RecoverYFlat(make(matrix.Vector, n), flat)
		if !got.Equal(want, 0) {
			t.Fatalf("RecoverYFlat mismatch (w=%d n=%d m=%d)", w, n, m)
		}
	}
}
