// Package dbt implements the paper's primary contribution: the Dense-to-Band
// matrix Transformations by Triangular blocks partitioning (DBT).
//
// DBT-by-rows (paper §2) turns the dense matrix–vector problem
// y = A·x + b, with A of arbitrary size n×m, into a band problem
// ȳ = Ā·x̄ + b̄ whose bandwidth equals the size w of the linear contraflow
// systolic array, with every band position filled by an element of A
// (possibly a padding zero when n or m is not a multiple of w) and with
// partial results fed back into the array after exactly w cycles.
//
// DBT-transposed-by-rows (used for the B operand of matrix–matrix
// multiplication, §3) is DBT_tr(A) = (DBT_by_rows(Aᵀ))ᵀ and yields a lower
// band matrix.
package dbt

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/matrix"
)

// SourceKind says where a b̄ block comes from when feeding the array.
type SourceKind int

const (
	// FromB: the block is a block of the original b vector.
	FromB SourceKind = iota
	// FromFeedback: the block is the array's own output for the previous
	// band row block (the paper's y^R_i partial results).
	FromFeedback
)

// BSource describes the origin of b̄_k (paper §2, rules for b̄).
type BSource struct {
	Kind SourceKind
	// Index is the b block index r when Kind == FromB, or the producing
	// band row block k−1 when Kind == FromFeedback.
	Index int
}

// YDest describes the fate of ȳ_k: a final result block or a partial result
// to be fed back.
type YDest struct {
	Final bool
	// Index is the y block index r when Final, or the consuming band row
	// block k+1 otherwise.
	Index int
}

// MatVec is a DBT-by-rows transformation of a dense matrix–vector problem.
type MatVec struct {
	// W is the array/block/bandwidth size.
	W int
	// NBar = ⌈n/w⌉ and MBar = ⌈m/w⌉ (the paper's n̄ and m̄).
	NBar, MBar int
	// N and M are the original dimensions of A.
	N, M int
	// Grid is the triangular block partition of A.
	Grid *blockpart.Grid
}

// NewMatVec builds the DBT-by-rows transformation for A with array size w.
func NewMatVec(a *matrix.Dense, w int) *MatVec {
	g := blockpart.Partition(a, w)
	return &MatVec{
		W:    w,
		NBar: g.BlockRows,
		MBar: g.BlockCols,
		N:    a.Rows(),
		M:    a.Cols(),
		Grid: g,
	}
}

// Blocks returns n̄·m̄, the number of band row blocks.
func (t *MatVec) Blocks() int { return t.NBar * t.MBar }

// BandRows returns the number of rows of Ā (n̄·m̄·w).
func (t *MatVec) BandRows() int { return t.Blocks() * t.W }

// BandCols returns the number of columns of Ā (n̄·m̄·w + w − 1), matching the
// length of x̄.
func (t *MatVec) BandCols() int { return t.BandRows() + t.W - 1 }

// UpperIndex returns (r, s) with Ū_k = U_{r,s}: r = ⌊k/m̄⌋, s = k mod m̄
// (paper §2, DBT-by-rows rule a).
func (t *MatVec) UpperIndex(k int) (r, s int) {
	t.checkBlock(k)
	return k / t.MBar, k % t.MBar
}

// LowerIndex returns (r, s) with L̄_k = L_{r,s}: r = ⌊k/m̄⌋,
// s = (k mod m̄ + 1) mod m̄ (paper §2, DBT-by-rows rule a).
func (t *MatVec) LowerIndex(k int) (r, s int) {
	t.checkBlock(k)
	return k / t.MBar, (k%t.MBar + 1) % t.MBar
}

// BandAt reads Ā[i][j]. Row block k owns rows kw..kw+w−1; Ū_k occupies the
// diagonal square (columns kw..kw+w−1, upper triangle incl. diagonal) and
// L̄_k the strictly lower triangle of the next square (columns
// (k+1)w..(k+1)w+w−1). Everything else in the band is structurally absent.
func (t *MatVec) BandAt(i, j int) float64 {
	d := j - i
	if d < 0 || d >= t.W {
		return 0
	}
	k := i / t.W
	a := i % t.W
	b := j - k*t.W
	if b < t.W { // diagonal square: Ū_k, needs b ≥ a which holds since d ≥ 0
		r, s := t.UpperIndex(k)
		return t.Grid.UpperAt(r, s, a, b)
	}
	// next square: L̄_k with local column b−w < a
	r, s := t.LowerIndex(k)
	return t.Grid.LowerAt(r, s, a, b-t.W)
}

// Band materializes Ā as an upper band matrix of bandwidth w.
func (t *MatVec) Band() *matrix.Band {
	b := matrix.NewBand(t.BandRows(), t.BandCols(), 0, t.W-1)
	for i := 0; i < t.BandRows(); i++ {
		for d := 0; d < t.W; d++ {
			j := i + d
			if j < t.BandCols() {
				if v := t.BandAt(i, j); v != 0 {
					b.Set(i, j, v)
				}
			}
		}
	}
	return b
}

// TransformX maps x (length m, zero-padded to m̄w) to x̄
// (length n̄m̄w + w−1): x̄_k = x_{k mod m̄} for k < n̄m̄, and the tail
// x̄_{n̄m̄} is x′_s: the first w−1 elements of the x block selected by
// L̄_{n̄m̄−1} (paper §2, rule 2). With DBT-by-rows that block is always x_0.
func (t *MatVec) TransformX(x matrix.Vector) matrix.Vector {
	if len(x) != t.M {
		panic(fmt.Sprintf("dbt: TransformX length %d, want %d", len(x), t.M))
	}
	xp := x.Pad(t.MBar * t.W)
	out := make(matrix.Vector, 0, t.BandCols())
	for k := 0; k < t.Blocks(); k++ {
		out = append(out, xp.Block(k%t.MBar, t.W)...)
	}
	_, s := t.LowerIndex(t.Blocks() - 1)
	tail := xp.Block(s, t.W)
	out = append(out, tail[:t.W-1]...)
	return out
}

// BSource returns the origin of b̄_k: b_{k/m̄} when k mod m̄ = 0, otherwise
// the feedback of ȳ_{k−1} (paper §2, rule b).
func (t *MatVec) BSource(k int) BSource {
	t.checkBlock(k)
	if k%t.MBar == 0 {
		return BSource{Kind: FromB, Index: k / t.MBar}
	}
	return BSource{Kind: FromFeedback, Index: k - 1}
}

// YDest returns the fate of ȳ_k: the final result y_{⌊k/m̄⌋} when
// (k+1) mod m̄ = 0, otherwise a partial result consumed as b̄_{k+1}.
func (t *MatVec) YDest(k int) YDest {
	t.checkBlock(k)
	if (k+1)%t.MBar == 0 {
		return YDest{Final: true, Index: k / t.MBar}
	}
	return YDest{Final: false, Index: k + 1}
}

// BlockRecurrence computes, purely at block level (no systolic timing), all
// ȳ_k for the transformed problem given original x and b. It implements
// ȳ_k = Ū_k·x̄_k + L̄_k·x̄_{k+1} + b̄_k with the b̄ feedback chaining, and is
// the mathematical reference the cycle-accurate array is tested against.
// b may be nil (treated as zero).
func (t *MatVec) BlockRecurrence(x, b matrix.Vector) []matrix.Vector {
	if len(x) != t.M {
		panic(fmt.Sprintf("dbt: BlockRecurrence len(x)=%d, want %d", len(x), t.M))
	}
	if b != nil && len(b) != t.N {
		panic(fmt.Sprintf("dbt: BlockRecurrence len(b)=%d, want %d", len(b), t.N))
	}
	var bp matrix.Vector
	if b == nil {
		bp = matrix.NewVector(t.NBar * t.W)
	} else {
		bp = b.Pad(t.NBar * t.W)
	}
	xbar := t.TransformX(x)
	ybars := make([]matrix.Vector, t.Blocks())
	for k := 0; k < t.Blocks(); k++ {
		y := make(matrix.Vector, t.W)
		src := t.BSource(k)
		switch src.Kind {
		case FromB:
			copy(y, bp.Block(src.Index, t.W))
		case FromFeedback:
			copy(y, ybars[src.Index])
		}
		ru, su := t.UpperIndex(k)
		rl, sl := t.LowerIndex(k)
		for a := 0; a < t.W; a++ {
			for c := a; c < t.W; c++ {
				y[a] += t.Grid.UpperAt(ru, su, a, c) * xbar[k*t.W+c]
			}
			for c := 0; c < a; c++ {
				y[a] += t.Grid.LowerAt(rl, sl, a, c) * xbar[(k+1)*t.W+c]
			}
		}
		ybars[k] = y
	}
	return ybars
}

// RecoverY extracts the final y (length n) from the per-block outputs ȳ_k.
func (t *MatVec) RecoverY(ybars []matrix.Vector) matrix.Vector {
	if len(ybars) != t.Blocks() {
		panic(fmt.Sprintf("dbt: RecoverY got %d blocks, want %d", len(ybars), t.Blocks()))
	}
	out := make(matrix.Vector, 0, t.NBar*t.W)
	for k := 0; k < t.Blocks(); k++ {
		if d := t.YDest(k); d.Final {
			out = append(out, ybars[k]...)
		}
	}
	return out[:t.N]
}

// Validate checks the paper's three structural conditions on the
// transformation (§2): (1) if Ū_k = U_{i,j} then L̄_k = L_{i,p} for some p;
// (2) if L̄_k = U... (sic; read: = L_{i,j}) then Ū_{k+1} = U_{p,j'} keeping
// column continuity of x̄; (3) each U_{i,j} and L_{i,j} appears exactly once.
func (t *MatVec) Validate() error {
	seenU := make(map[[2]int]bool)
	seenL := make(map[[2]int]bool)
	for k := 0; k < t.Blocks(); k++ {
		ru, _ := t.UpperIndex(k)
		rl, _ := t.LowerIndex(k)
		if ru != rl { // condition 1: same original block row
			return fmt.Errorf("dbt: block %d pairs U row %d with L row %d", k, ru, rl)
		}
		u := [2]int{ru, k % t.MBar}
		l := [2]int{rl, (k%t.MBar + 1) % t.MBar}
		if seenU[u] || seenL[l] { // condition 3: single copy
			return fmt.Errorf("dbt: block %d duplicates U%v or L%v", k, u, l)
		}
		seenU[u] = true
		seenL[l] = true
		if k+1 < t.Blocks() {
			// condition 2: x̄ continuity — the x block under L̄_k must be
			// the x block under Ū_{k+1}.
			_, sl := t.LowerIndex(k)
			_, su := t.UpperIndex(k + 1)
			if sl != su {
				return fmt.Errorf("dbt: x̄ discontinuity between blocks %d and %d (%d vs %d)", k, k+1, sl, su)
			}
		}
	}
	if len(seenU) != t.Blocks() || len(seenL) != t.Blocks() {
		return fmt.Errorf("dbt: coverage %d U / %d L, want %d", len(seenU), len(seenL), t.Blocks())
	}
	return nil
}

func (t *MatVec) checkBlock(k int) {
	if k < 0 || k >= t.Blocks() {
		panic(fmt.Sprintf("dbt: block index %d out of range %d", k, t.Blocks()))
	}
}
