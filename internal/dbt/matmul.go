package dbt

import (
	"fmt"

	"repro/internal/blockpart"
	"repro/internal/matrix"
)

// MatMul is the §3 transformation of the dense problem C = A·B + E
// (A: n×p, B: p×m, E,C: n×m) for the w×w hexagonal array with spiral
// feedback.
//
// Ā is the DBT-by-rows band of A juxtaposed m̄ times along the diagonal plus
// a tail triangle U′ (the leading (w−1)×(w−1) triangle of the band, i.e. of
// U_{0,0}); B̄ juxtaposes, for each of the m̄ column blocks B_i of B, n̄
// copies of DBT-transposed-by-rows(B_i), plus a tail triangle L′ (leading
// triangle of the lower band of B_0, i.e. of L⁺_{0,0}). Both are square of
// dimension p̄·n̄·m̄·w + w − 1.
//
// The product band Ō has width 2w−1. Each row block k splits into five
// pieces (Fig. 6): U_{k,0} (left strictly-upper triangle), then the diagonal
// square's L_{k,0} | D_k | U_{k,1}, then L_{k,1} (right strictly-lower
// triangle). The spiral feedback initializes pieces of later row blocks with
// output pieces of earlier ones, so the partial sums Σ_t U^t, Σ_t L^t,
// Σ_t D^t of the paper accumulate inside the array; E pieces enter where a
// fresh accumulation chain starts. The appendix of the paper gives these
// index maps; the scanned text is OCR-damaged, so the maps below are
// re-derived from the block algebra (each derivation step is checked by the
// package tests against C = A·B + E for exhaustive small shapes). The
// derived maps agree with every legible appendix rule and reproduce the
// paper's regular delay w and both irregular delay families (E7).
type MatMul struct {
	// W is the array/bandwidth size.
	W int
	// NBar, PBar, MBar are ⌈n/w⌉, ⌈p/w⌉, ⌈m/w⌉.
	NBar, PBar, MBar int
	// N, P, M are the original problem dimensions.
	N, P, M int
	// AT is the DBT-by-rows transformation of A (n̄ × p̄ grid).
	AT *MatVec
	// BGrid is the block partition of B (p̄ × m̄ grid).
	BGrid *blockpart.Grid
}

// NewMatMul builds the matrix–matrix transformation for A (n×p), B (p×m)
// and array size w.
func NewMatMul(a, b *matrix.Dense, w int) *MatMul {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("dbt: MatMul dim mismatch %d×%d · %d×%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	at := NewMatVec(a, w)
	bg := blockpart.Partition(b, w)
	return &MatMul{
		W:    w,
		NBar: at.NBar, PBar: at.MBar, MBar: bg.BlockCols,
		N: a.Rows(), P: a.Cols(), M: b.Cols(),
		AT:    at,
		BGrid: bg,
	}
}

// RegularBlocks returns p̄·n̄·m̄, the number of full band row blocks; the
// tail block of w−1 rows follows them.
func (t *MatMul) RegularBlocks() int { return t.PBar * t.NBar * t.MBar }

// Dim returns the dimension of the square matrices Ā and B̄:
// p̄·n̄·m̄·w + w − 1.
func (t *MatMul) Dim() int { return t.RegularBlocks()*t.W + t.W - 1 }

// group decomposes a regular row/column block index k < p̄n̄m̄ into the
// original C block coordinates (r = A row block, iB = B column block) and
// the within-group step s ∈ [0, p̄).
func (t *MatMul) group(k int) (r, iB, s int) {
	g := k / t.PBar
	return g % t.NBar, g / t.NBar, k % t.PBar
}

// AHatAt reads Ā[i][j] (upper band, diagonals 0..w−1; out-of-band reads
// return 0).
func (t *MatMul) AHatAt(i, j int) float64 {
	w := t.W
	d := j - i
	if d < 0 || d >= w || i < 0 || j < 0 || i >= t.Dim() || j >= t.Dim() {
		return 0
	}
	iBlk := i / w
	a := i % w
	if iBlk >= t.RegularBlocks() { // tail U′: leading triangle of U_{0,0}
		b := j - iBlk*w
		r, s := t.AT.UpperIndex(0)
		return t.AT.Grid.UpperAt(r, s, a, b)
	}
	pattern := iBlk % (t.NBar * t.PBar)
	b := j - iBlk*w
	if b < w {
		r, s := t.AT.UpperIndex(pattern)
		return t.AT.Grid.UpperAt(r, s, a, b)
	}
	r, s := t.AT.LowerIndex(pattern)
	return t.AT.Grid.LowerAt(r, s, a, b-w)
}

// BHatAt reads B̄[i][j] (lower band, diagonals −(w−1)..0).
func (t *MatMul) BHatAt(i, j int) float64 {
	w := t.W
	d := j - i
	if d > 0 || d <= -w || i < 0 || j < 0 || i >= t.Dim() || j >= t.Dim() {
		return 0
	}
	c := j / w
	b := j % w
	a := i - c*w
	if c >= t.RegularBlocks() { // tail L′: leading triangle of L⁺_{0,0}
		if a >= b {
			return t.BGrid.At(0, 0, a, b)
		}
		return 0
	}
	q := c % t.PBar
	iB := c / (t.NBar * t.PBar)
	if a < w { // diagonal square: lower-including-diagonal of B_{q,iB}
		if a >= b {
			return t.BGrid.At(q, iB, a, b)
		}
		return 0
	}
	// square below: strictly upper triangle of B_{(q+1) mod p̄, iB}
	if a-w < b {
		return t.BGrid.At((q+1)%t.PBar, iB, a-w, b)
	}
	return 0
}

// AHatBand materializes Ā for the hexagonal array.
func (t *MatMul) AHatBand() *matrix.Band {
	n := t.Dim()
	b := matrix.NewBand(n, n, 0, t.W-1)
	for i := 0; i < n; i++ {
		for d := 0; d < t.W; d++ {
			if j := i + d; j < n {
				if v := t.AHatAt(i, j); v != 0 {
					b.Set(i, j, v)
				}
			}
		}
	}
	return b
}

// BHatBand materializes B̄ for the hexagonal array.
func (t *MatMul) BHatBand() *matrix.Band {
	n := t.Dim()
	b := matrix.NewBand(n, n, -(t.W - 1), 0)
	for i := 0; i < n; i++ {
		for d := 0; d < t.W; d++ {
			if j := i - d; j >= 0 {
				if v := t.BHatAt(i, j); v != 0 {
					b.Set(i, j, v)
				}
			}
		}
	}
	return b
}
