package dbt

import (
	"fmt"

	"repro/internal/matrix"
)

// Piece identifies one of the five triangular/diagonal pieces of a row block
// of the 2w−1-wide product band (Fig. 6). Within a row block, pieces appear
// in increasing column (and therefore systolic time) order.
type Piece int

const (
	// PieceULeft is U_{k,0}: the strictly upper triangle lying in the
	// column square to the left of the diagonal square.
	PieceULeft Piece = iota
	// PieceLMid is L_{k,0}: the strictly lower triangle of the diagonal square.
	PieceLMid
	// PieceD is D_k: the main diagonal of the diagonal square.
	PieceD
	// PieceUMid is U_{k,1}: the strictly upper triangle of the diagonal square.
	PieceUMid
	// PieceLRight is L_{k,1}: the strictly lower triangle lying in the
	// column square to the right of the diagonal square.
	PieceLRight
)

// Pieces lists all five pieces in column (time) order.
var Pieces = []Piece{PieceULeft, PieceLMid, PieceD, PieceUMid, PieceLRight}

func (p Piece) String() string {
	switch p {
	case PieceULeft:
		return "U0"
	case PieceLMid:
		return "L0"
	case PieceD:
		return "D"
	case PieceUMid:
		return "U1"
	case PieceLRight:
		return "L1"
	}
	return fmt.Sprintf("Piece(%d)", int(p))
}

// InitKind classifies where a piece's initial (c-stream entry) values come from.
type InitKind int

const (
	// InitZero: the piece takes no initialization (structurally absent or
	// its output is unused, e.g. the tail row's diagonal square).
	InitZero InitKind = iota
	// InitE: the piece is initialized with a triangular piece of an E block
	// (the start of a fresh accumulation chain).
	InitE
	// InitFeedback: the piece is initialized with the array's own output
	// for an earlier row block (the spiral feedback).
	InitFeedback
)

// Init describes the initialization of piece (k, piece) of the input band I.
type Init struct {
	Kind InitKind
	// R, S locate the E block (A row block r, B column block i) when Kind == InitE.
	R, S int
	// Row and Piece locate the feedback source O piece when Kind == InitFeedback.
	Row   int
	Piece Piece
	// Irregular marks the region-crossing feedbacks whose delay exceeds w
	// (paper §3: the U_{0,j} and L_{n̄−1,j} irregularities).
	Irregular bool
}

// InitFor returns the initialization of piece p of row block k
// (0 ≤ k ≤ p̄n̄m̄; k = p̄n̄m̄ is the w−1-row tail). This is the I-matrix
// composition of the paper's appendix, re-derived (see the MatMul doc).
func (t *MatMul) InitFor(k int, p Piece) Init {
	nReg := t.RegularBlocks()
	region := t.PBar * t.NBar // row blocks per B column block
	if k < 0 || k > nReg {
		panic(fmt.Sprintf("dbt: InitFor row block %d out of range [0,%d]", k, nReg))
	}
	if k == nReg {
		// Tail row block: only the left triangle takes part (it carries the
		// final U chain value of C block (0, m̄−1)); everything else unused.
		if p == PieceULeft {
			return Init{Kind: InitFeedback, Row: k - t.PBar*(t.NBar-1) - 1, Piece: PieceUMid, Irregular: t.NBar > 1}
		}
		return Init{Kind: InitZero}
	}
	r, iB, s := t.group(k)
	switch p {
	case PieceD:
		if s == 0 {
			return Init{Kind: InitE, R: r, S: iB}
		}
		return Init{Kind: InitFeedback, Row: k - 1, Piece: PieceD}
	case PieceUMid:
		if k%region == 0 {
			return Init{Kind: InitE, R: 0, S: iB}
		}
		return Init{Kind: InitFeedback, Row: k, Piece: PieceULeft}
	case PieceULeft:
		if k == 0 {
			return Init{Kind: InitZero} // no left square before column 0
		}
		if k%region == 0 {
			// First row of a region: continuation of the U chain of C block
			// (0, iB−1), fed from the mid-U of the last row of that group.
			return Init{Kind: InitFeedback, Row: k - t.PBar*(t.NBar-1) - 1, Piece: PieceUMid, Irregular: t.NBar > 1}
		}
		if s == 0 {
			return Init{Kind: InitE, R: r, S: iB}
		}
		return Init{Kind: InitFeedback, Row: k - 1, Piece: PieceUMid}
	case PieceLMid:
		if s == 0 {
			if r == t.NBar-1 && iB > 0 {
				// L chain of C block (n̄−1, iB): continuation from the right
				// triangle of the last row of region iB−1.
				return Init{Kind: InitFeedback, Row: k - t.PBar*(t.NBar-1) - 1, Piece: PieceLRight, Irregular: true}
			}
			return Init{Kind: InitE, R: r, S: iB}
		}
		return Init{Kind: InitFeedback, Row: k - 1, Piece: PieceLRight}
	case PieceLRight:
		if k == nReg-1 {
			// Last regular row: its right triangle multiplies the tail L′,
			// adding the s=0 term of C block (n̄−1, 0); it is initialized
			// with the accumulated chain of group (n̄−1, 0) — the longest
			// feedback in the system (delay ∝ (m̄−1)).
			return Init{Kind: InitFeedback, Row: t.NBar*t.PBar - 1, Piece: PieceLMid, Irregular: t.MBar > 1}
		}
		if (k+1)%region == 0 {
			// Last row of a region (other than the final one): fresh E for
			// the (n̄−1, iB+1) chain that this right triangle starts.
			return Init{Kind: InitE, R: t.NBar - 1, S: iB + 1}
		}
		return Init{Kind: InitFeedback, Row: k, Piece: PieceLMid}
	}
	panic(fmt.Sprintf("dbt: InitFor unknown piece %v", p))
}

// CSource locates the O piece holding the final value of piece p of C block
// (r, iB). PieceD additionally covers the diagonal; only PieceD, PieceUMid
// (strict upper of C) and PieceLMid (strict lower of C) are valid queries,
// and the returned Piece says where in the band the value sits.
func (t *MatMul) CSource(r, iB int, p Piece) (row int, piece Piece) {
	if r < 0 || r >= t.NBar || iB < 0 || iB >= t.MBar {
		panic(fmt.Sprintf("dbt: CSource block (%d,%d) out of %d×%d", r, iB, t.NBar, t.MBar))
	}
	last := (iB*t.NBar+r+1)*t.PBar - 1 // last row block of group (r, iB)
	region := t.PBar * t.NBar
	switch p {
	case PieceD:
		return last, PieceD
	case PieceUMid: // strict upper part of C_{r,iB}
		if r == 0 {
			return (iB + 1) * region, PieceULeft // first row of next region (or tail)
		}
		return last, PieceUMid
	case PieceLMid: // strict lower part of C_{r,iB}
		if r == t.NBar-1 {
			if iB == 0 {
				return t.RegularBlocks() - 1, PieceLRight
			}
			return (iB+1)*region - 1, PieceLMid
		}
		return last, PieceLRight
	}
	panic(fmt.Sprintf("dbt: CSource unsupported piece %v", p))
}

// PieceColOffset returns the column offset of piece p relative to the row
// block's diagonal square: −w for the left triangle, 0 for the mid pieces,
// +w for the right triangle.
func (t *MatMul) PieceColOffset(p Piece) int {
	off, _ := t.pieceRange(p)
	return off
}

// PieceAt classifies a global band position (ρ, γ) of the product band into
// its row block k, piece, and local coordinates (a, b). It panics when the
// position is outside the 2w−1 band.
func (t *MatMul) PieceAt(rho, gamma int) (k int, p Piece, a, b int) {
	w := t.W
	f := gamma - rho
	if f <= -w || f >= w {
		panic(fmt.Sprintf("dbt: position (%d,%d) outside band", rho, gamma))
	}
	k = rho / w
	a = rho % w
	local := gamma - k*w
	switch {
	case local < 0:
		return k, PieceULeft, a, local + w
	case local < w:
		b = local
		switch {
		case b < a:
			return k, PieceLMid, a, b
		case b == a:
			return k, PieceD, a, b
		default:
			return k, PieceUMid, a, b
		}
	default:
		return k, PieceLRight, a, local - w
	}
}

// pieceRange returns, for piece p of a row block, the column offset of the
// piece relative to the diagonal square and the local predicate selecting
// the piece's positions. Row block k owns rows kw..kw+w−1 (w−1 rows for the
// tail).
func (t *MatMul) pieceRange(p Piece) (colOff int, member func(a, b int) bool) {
	switch p {
	case PieceULeft:
		return -t.W, func(a, b int) bool { return b > a }
	case PieceLMid:
		return 0, func(a, b int) bool { return b < a }
	case PieceD:
		return 0, func(a, b int) bool { return b == a }
	case PieceUMid:
		return 0, func(a, b int) bool { return b > a }
	case PieceLRight:
		return t.W, func(a, b int) bool { return b < a }
	}
	panic("dbt: bad piece")
}

// PiecePositions enumerates the in-matrix global (row, col) positions of
// piece p of row block k, together with their local (a, b) coordinates.
func (t *MatMul) PiecePositions(k int, p Piece) [][4]int {
	off, member := t.pieceRange(p)
	var out [][4]int
	for a := 0; a < t.W; a++ {
		row := k*t.W + a
		if row >= t.Dim() {
			break
		}
		for b := 0; b < t.W; b++ {
			col := k*t.W + off + b
			if col < 0 || col >= t.Dim() || !member(a, b) {
				continue
			}
			out = append(out, [4]int{row, col, a, b})
		}
	}
	return out
}

// EPieceAt reads element (a, b) of the given triangular piece of E block
// (r, iB). e may be nil (zero E). Only the mid pieces partition an E block:
// left/right queries are rejected.
func (t *MatMul) EPieceAt(e *matrix.Dense, r, iB int, p Piece, a, b int) float64 {
	switch p {
	case PieceLMid:
		if b >= a {
			return 0
		}
	case PieceD:
		if b != a {
			return 0
		}
	case PieceUMid:
		if b <= a {
			return 0
		}
	default:
		panic(fmt.Sprintf("dbt: EPieceAt piece %v", p))
	}
	if e == nil {
		return 0
	}
	i, j := r*t.W+a, iB*t.W+b
	if i >= e.Rows() || j >= e.Cols() {
		return 0 // padding
	}
	return e.At(i, j)
}

// EPieceForInit maps an InitE destination piece to the E piece injected
// there: left-triangle inits carry the strict-upper E piece, right-triangle
// inits the strict-lower E piece, and mid inits their own shape.
func EPieceForInit(dst Piece) Piece {
	switch dst {
	case PieceULeft:
		return PieceUMid
	case PieceLRight:
		return PieceLMid
	default:
		return dst
	}
}

// ORecord stores every output piece of a run, indexed by row block.
type ORecord struct {
	W int
	// P[k][piece] is a w×w dense holding the piece values at local (a,b).
	P []map[Piece]*matrix.Dense
}

// At reads piece value (a, b) of row block k.
func (o *ORecord) At(k int, p Piece, a, b int) float64 {
	m := o.P[k][p]
	if m == nil {
		return 0
	}
	return m.At(a, b)
}

// ReferenceRun computes all output pieces Ō and the recovered C = A·B + E at
// block level, with exact feedback chaining but no systolic timing. It is
// the mathematical reference the hexagonal array simulator is tested
// against. e may be nil.
func (t *MatMul) ReferenceRun(e *matrix.Dense) (*ORecord, *matrix.Dense) {
	nReg := t.RegularBlocks()
	rec := &ORecord{W: t.W, P: make([]map[Piece]*matrix.Dense, nReg+1)}
	for k := 0; k <= nReg; k++ {
		rec.P[k] = make(map[Piece]*matrix.Dense)
		for _, p := range Pieces {
			positions := t.PiecePositions(k, p)
			if len(positions) == 0 {
				continue
			}
			out := matrix.NewDense(t.W, t.W)
			init := t.InitFor(k, p)
			for _, pos := range positions {
				row, col, a, b := pos[0], pos[1], pos[2], pos[3]
				v := t.bandProductAt(row, col)
				switch init.Kind {
				case InitE:
					v += t.EPieceAt(e, init.R, init.S, EPieceForInit(p), a, b)
				case InitFeedback:
					v += rec.At(init.Row, init.Piece, a, b)
				}
				out.Set(a, b, v)
			}
			rec.P[k][p] = out
		}
	}
	return rec, t.ExtractC(rec)
}

// bandProductAt computes the pure product (Ā·B̄)[row][col].
func (t *MatMul) bandProductAt(row, col int) float64 {
	lo := row
	if col > lo {
		lo = col
	}
	hi := row
	if col < hi {
		hi = col
	}
	hi += t.W - 1
	if hi >= t.Dim() {
		hi = t.Dim() - 1
	}
	s := 0.0
	for kk := lo; kk <= hi; kk++ {
		s += t.AHatAt(row, kk) * t.BHatAt(kk, col)
	}
	return s
}

// ExtractC assembles the n×m result C from the recorded output pieces.
func (t *MatMul) ExtractC(rec *ORecord) *matrix.Dense {
	c := matrix.NewDense(t.NBar*t.W, t.MBar*t.W)
	for r := 0; r < t.NBar; r++ {
		for iB := 0; iB < t.MBar; iB++ {
			for _, p := range []Piece{PieceD, PieceUMid, PieceLMid} {
				row, src := t.CSource(r, iB, p)
				_, member := t.pieceRange(p)
				for a := 0; a < t.W; a++ {
					for b := 0; b < t.W; b++ {
						if member(a, b) {
							c.Set(r*t.W+a, iB*t.W+b, rec.At(row, src, a, b))
						}
					}
				}
			}
		}
	}
	return c.Slice(0, t.N, 0, t.M)
}
