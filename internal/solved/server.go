// Package solved is the HTTP facade of solve-as-a-service: a thin JSON
// layer over the stream scheduler's solve tickets, turning the runtime's
// typed failure surface into status codes a load balancer or client
// library can act on without parsing bodies.
//
//	POST /solve   {"a": [[...],...], "d": [...], "w": 4, ...}  →  {"x": [...], "stats": {...}}
//	GET  /stats                                                →  queue depths + per-shard EWMA + stream counters
//	GET  /healthz                                              →  {"status":"ok","shards":N} liveness probe
//
// The mapping is exact: deadline failures — shed at admission, expired
// while queued, or a retry loop that ran out of deadline
// (stream.ErrDeadlineExceeded, checked before saturation because a retry
// give-up wraps both sentinels) — return 504, queue saturation
// (stream.ErrSaturated) returns 429 with a Retry-After header, a
// singular system (*solve.SingularError) returns 422 with the pivot index,
// an unconverged refinement (*solve.IllConditionedError) returns 422 with
// the condition report, malformed requests return 400, a closed stream
// returns 503, anything else (a recovered job panic, say) returns 500. The
// handler holds no state of its own beyond the scheduler: every request is
// one ticket, submitted with the request's QoS and redeemed before the
// response is written.
package solved

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
	"repro/internal/stream"
)

// Request is the POST /solve body: the system A·x = d plus optional
// execution knobs. Zero-value knobs take the server's defaults.
type Request struct {
	// A is the square system matrix, row-major.
	A [][]float64 `json:"a"`
	// D is the right-hand side; len(D) must equal len(A).
	D []float64 `json:"d"`
	// W is the simulated array size (0 means the server's default).
	W int `json:"w,omitempty"`
	// Engine selects the execution engine: "auto" (or empty), "compiled",
	// "oracle". Both engines return bit-identical solutions.
	Engine string `json:"engine,omitempty"`
	// TimeoutMS, when > 0, attaches a completion deadline now+TimeoutMS to
	// the ticket; an infeasible or expired deadline returns 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority selects the admission class: "high" (or empty) blocks for
	// queue space, "low" is shed first under pressure.
	Priority string `json:"priority,omitempty"`
	// Pivot selects the factorization's pivot policy: "none" (or empty)
	// requires nonsingular leading minors, "partial" row-pivots and solves
	// any nonsingular system.
	Pivot string `json:"pivot,omitempty"`
	// Refine, when present, runs iterative refinement after the direct
	// solve; a refinement that fails to converge returns 422 with the
	// condition report instead of an unconverged solution.
	Refine *RefineRequest `json:"refine,omitempty"`
}

// RefineRequest is the optional iterative-refinement block of a Request.
type RefineRequest struct {
	// MaxIters caps the refinement cycles (must be > 0 when the block is
	// present).
	MaxIters int `json:"max_iters"`
	// Tol, when > 0, is the absolute ‖A·x−d‖∞ convergence target; 0 takes
	// the solver's scaled machine-precision default.
	Tol float64 `json:"tol,omitempty"`
}

// Response is the 200 body of POST /solve.
type Response struct {
	// X solves A·x = d, bit-identical to the serial one-shot solver.
	X []float64 `json:"x"`
	// Stats is the solve's array-work accounting, residual included.
	Stats solve.SolveStats `json:"stats"`
}

// ErrorResponse is the body of every non-200 /solve response.
type ErrorResponse struct {
	// Error is the underlying typed error's message.
	Error string `json:"error"`
	// PivotIndex is the zero pivot's index on a 422 (singular system)
	// response, absent otherwise.
	PivotIndex *int `json:"pivot_index,omitempty"`
	// Condition is the refinement's condition report on a 422
	// (ill-conditioned system) response, absent otherwise.
	Condition *solve.ConditionReport `json:"condition,omitempty"`
}

// HealthResponse is the 200 body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while the facade is serving.
	Status string `json:"status"`
	// Shards is the scheduler's shard count.
	Shards int `json:"shards"`
}

// StatsResponse is the GET /stats body: the stream's admission/failure
// counters plus each shard's instantaneous queue depth — the signals the
// scheduler's own deadline admission works from, exposed for dashboards
// and load balancers.
type StatsResponse struct {
	// Stream snapshots the scheduler counters (submitted, completed,
	// sheds by priority, expiries, recovered panics).
	Stream stream.Stats `json:"stream"`
	// QueueDepths[i] is shard i's current queued-job count.
	QueueDepths []int `json:"queue_depths"`
	// ServiceEWMAMS[i] is shard i's exponentially-weighted moving average
	// service time in milliseconds — the signal deadline admission shedding
	// works from. 0 until the shard completes its first job.
	ServiceEWMAMS []float64 `json:"service_ewma_ms"`
}

// Config wires a Server. Stream is required; the rest defaults.
type Config struct {
	// Stream is the scheduler the facade submits to. The server does not
	// own it: Close it separately, after the HTTP server drains.
	Stream *stream.Scheduler
	// W is the array size used when a request omits w (values < 1 mean 4).
	W int
	// RetryAfter is the Retry-After hint on 429 responses, rounded up to
	// whole seconds (values <= 0 mean 1s).
	RetryAfter time.Duration
}

// Server is the facade handler; build one with New and mount it directly
// (it implements http.Handler, routing /solve and /stats internally).
type Server struct {
	s          *stream.Scheduler
	w          int
	retryAfter time.Duration
	mux        *http.ServeMux
}

// New builds a Server over cfg.Stream.
func New(cfg Config) *Server {
	if cfg.Stream == nil {
		panic("solved: Config.Stream is required")
	}
	srv := &Server{s: cfg.Stream, w: cfg.W, retryAfter: cfg.RetryAfter}
	if srv.w < 1 {
		srv.w = 4
	}
	if srv.retryAfter <= 0 {
		srv.retryAfter = time.Second
	}
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("/solve", srv.handleSolve)
	srv.mux.HandleFunc("/stats", srv.handleStats)
	srv.mux.HandleFunc("/healthz", srv.handleHealthz)
	return srv
}

// ServeHTTP dispatches to the facade's routes.
func (srv *Server) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	srv.mux.ServeHTTP(rw, req)
}

// handleSolve is POST /solve: decode, validate, submit one solve ticket
// with the request's QoS, redeem it, map the outcome onto the status
// table in the package comment.
func (srv *Server) handleSolve(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("solved: %s not allowed on /solve, POST a system", req.Method))
		return
	}
	var body Request
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: bad request body: %w", err))
		return
	}
	n := len(body.A)
	if n == 0 {
		writeError(rw, http.StatusBadRequest, errors.New("solved: empty system"))
		return
	}
	for i, row := range body.A {
		if len(row) != n {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: row %d has %d entries, want %d (square system)", i, len(row), n))
			return
		}
	}
	if len(body.D) != n {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: len(d)=%d, want %d", len(body.D), n))
		return
	}
	w := body.W
	if w == 0 {
		w = srv.w
	}
	if w < 1 {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: invalid array size %d", body.W))
		return
	}
	var eng core.Engine
	switch body.Engine {
	case "", "auto":
		eng = core.EngineAuto
	case "compiled":
		eng = core.EngineCompiled
	case "oracle":
		eng = core.EngineOracle
	default:
		writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: unknown engine %q", body.Engine))
		return
	}
	var q stream.QoS
	switch body.Priority {
	case "", "high":
		q.Priority = stream.High
	case "low":
		q.Priority = stream.Low
	default:
		writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: unknown priority %q", body.Priority))
		return
	}
	if body.TimeoutMS > 0 {
		q.Deadline = time.Now().Add(time.Duration(body.TimeoutMS) * time.Millisecond)
	}
	opts := solve.Options{Engine: eng}
	switch body.Pivot {
	case "", "none":
		opts.Pivot = solve.PivotNone
	case "partial":
		opts.Pivot = solve.PivotPartial
	default:
		writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: unknown pivot policy %q", body.Pivot))
		return
	}
	if body.Refine != nil {
		if body.Refine.MaxIters < 1 {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: refine.max_iters must be positive, got %d", body.Refine.MaxIters))
			return
		}
		if body.Refine.Tol < 0 {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("solved: refine.tol must be non-negative, got %g", body.Refine.Tol))
			return
		}
		opts.Refine = solve.RefineOptions{MaxIters: body.Refine.MaxIters, Tol: body.Refine.Tol}
	}

	tk, err := srv.s.SubmitSolveOpts(matrix.FromRows(body.A), body.D, w, opts, q)
	var x matrix.Vector
	var stats *solve.SolveStats
	if err == nil {
		x, stats, err = tk.Wait()
	}
	if err != nil {
		srv.writeFailure(rw, err)
		return
	}
	writeJSON(rw, http.StatusOK, Response{X: x, Stats: *stats})
}

// handleStats is GET /stats.
func (srv *Server) handleStats(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		rw.Header().Set("Allow", http.MethodGet)
		writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("solved: %s not allowed on /stats", req.Method))
		return
	}
	depths := make([]int, srv.s.Shards())
	ewma := make([]float64, srv.s.Shards())
	for i := range depths {
		depths[i] = srv.s.QueueDepth(i)
		ewma[i] = float64(srv.s.ServiceEWMA(i)) / float64(time.Millisecond)
	}
	writeJSON(rw, http.StatusOK, StatsResponse{Stream: srv.s.Stats(), QueueDepths: depths, ServiceEWMAMS: ewma})
}

// handleHealthz is GET /healthz: a cheap liveness probe for load
// balancers — it reads one scheduler accessor and never touches a queue.
func (srv *Server) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		rw.Header().Set("Allow", http.MethodGet)
		writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("solved: %s not allowed on /healthz", req.Method))
		return
	}
	writeJSON(rw, http.StatusOK, HealthResponse{Status: "ok", Shards: srv.s.Shards()})
}

// writeFailure maps a submit or ticket error onto the facade's status
// table; see the package comment.
func (srv *Server) writeFailure(rw http.ResponseWriter, err error) {
	var serr *solve.SingularError
	var cerr *solve.IllConditionedError
	switch {
	// Deadline first: SubmitWithRetry's give-up error wraps BOTH sentinels
	// (the last ErrSaturated wrapped with ErrDeadlineExceeded), and a
	// request whose deadline ran out is a timeout, not a retryable 429 —
	// Retry-After would invite a retry the deadline already disallows.
	case errors.Is(err, stream.ErrDeadlineExceeded):
		writeError(rw, http.StatusGatewayTimeout, err)
	case errors.Is(err, stream.ErrSaturated):
		secs := int((srv.retryAfter + time.Second - 1) / time.Second)
		rw.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(rw, http.StatusTooManyRequests, err)
	case errors.As(err, &serr):
		idx := serr.Index
		writeJSON(rw, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), PivotIndex: &idx})
	case errors.As(err, &cerr):
		rep := cerr.Report
		writeJSON(rw, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), Condition: &rep})
	case errors.Is(err, stream.ErrClosed):
		writeError(rw, http.StatusServiceUnavailable, err)
	default:
		writeError(rw, http.StatusInternalServerError, err)
	}
}

// writeError writes a bare ErrorResponse with the given status.
func writeError(rw http.ResponseWriter, status int, err error) {
	writeJSON(rw, status, ErrorResponse{Error: err.Error()})
}

// writeJSON writes v with the given status.
func writeJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}
