package solved

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solve"
	"repro/internal/stream"
)

// newTestServer builds a facade over a fresh scheduler; the cleanup order
// (HTTP server, then stream) matches the ownership contract.
func newTestServer(t *testing.T, cfg stream.Config) (*httptest.Server, *stream.Scheduler) {
	t.Helper()
	s := stream.New(cfg)
	ts := httptest.NewServer(New(Config{Stream: s}))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts, s
}

// postSolve posts one request and decodes the response body into out.
func postSolve(t *testing.T, ts *httptest.Server, req Request, out interface{}) *http.Response {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %d response: %v", resp.StatusCode, err)
		}
	}
	return resp
}

// TestSolveEndpoint200: a well-formed system returns 200 with the solution
// and stats bit-identical to the serial one-shot solve.Solve, on every
// engine selector.
func TestSolveEndpoint200(t *testing.T) {
	ts, _ := newTestServer(t, stream.Config{Shards: 2})
	rng := rand.New(rand.NewSource(17))
	a := matrix.RandomDense(rng, 6, 6, 2)
	for i := 0; i < 6; i++ {
		a.Set(i, i, 20)
	}
	rows := make([][]float64, 6)
	d := make([]float64, 6)
	for i := range rows {
		rows[i] = make([]float64, 6)
		for j := range rows[i] {
			rows[i][j] = a.At(i, j)
		}
		d[i] = float64(i + 1)
	}
	for _, engine := range []string{"", "auto", "compiled", "oracle"} {
		var got Response
		resp := postSolve(t, ts, Request{A: rows, D: d, W: 3, Engine: engine}, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %q: status %d, want 200", engine, resp.StatusCode)
		}
		eng := core.EngineAuto
		if engine == "oracle" {
			eng = core.EngineOracle
		} else if engine == "compiled" {
			eng = core.EngineCompiled
		}
		wantX, wantStats, err := solve.Solve(a, d, 3, solve.Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(matrix.Vector(got.X), wantX) || !reflect.DeepEqual(got.Stats, *wantStats) {
			t.Errorf("engine %q: HTTP solve diverged from serial", engine)
		}
	}
}

// TestSolveEndpoint422Singular: a singular system returns 422 carrying the
// zero pivot's index — the *solve.SingularError surfaced as JSON.
func TestSolveEndpoint422Singular(t *testing.T) {
	ts, _ := newTestServer(t, stream.Config{Shards: 1})
	var got ErrorResponse
	resp := postSolve(t, ts, Request{
		A: [][]float64{{0, 1}, {1, 1}},
		D: []float64{1, 2},
		W: 2,
	}, &got)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if got.PivotIndex == nil || *got.PivotIndex != 0 {
		t.Errorf("response %+v, want pivot_index 0", got)
	}
	if got.Error == "" {
		t.Error("422 response carries no error message")
	}
}

// TestSolveEndpointPivotRefine200: a row-scrambled system that is singular
// under no-pivoting solves to 200 with "pivot":"partial" plus a refine
// block, bit-identical to the serial pivoted+refined solve — permutation,
// row-swap count and condition report survive the JSON round-trip.
func TestSolveEndpointPivotRefine200(t *testing.T) {
	ts, _ := newTestServer(t, stream.Config{Shards: 2})
	rows := [][]float64{
		{0, 2, 1, 0},
		{4, 1, 0, 1},
		{1, 0, 5, 2},
		{0, 1, 2, 6},
	}
	d := []float64{1, 2, 3, 4}
	a := matrix.FromRows(rows)

	// The leading zero makes the unpivoted path fail typed...
	var bad ErrorResponse
	if resp := postSolve(t, ts, Request{A: rows, D: d, W: 2}, &bad); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unpivoted status %d, want 422", resp.StatusCode)
	}

	// ...and the pivoted+refined path solve it exactly like serial.
	req := Request{A: rows, D: d, W: 2, Engine: "compiled", Pivot: "partial", Refine: &RefineRequest{MaxIters: 3}}
	var got Response
	if resp := postSolve(t, ts, req, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("pivoted status %d, want 200", resp.StatusCode)
	}
	opts := solve.Options{
		Engine: core.EngineCompiled,
		Pivot:  solve.PivotPartial,
		Refine: solve.RefineOptions{MaxIters: 3},
	}
	wantX, wantStats, err := solve.Solve(a, d, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(matrix.Vector(got.X), wantX) || !reflect.DeepEqual(got.Stats, *wantStats) {
		t.Errorf("HTTP pivoted solve diverged from serial:\n got %+v\nwant %+v", got.Stats, *wantStats)
	}
	if got.Stats.LU.RowSwaps == 0 || len(got.Stats.LU.Perm) != 4 {
		t.Errorf("stats %+v, want a nontrivial recorded permutation", got.Stats.LU)
	}
	if !got.Stats.Refine.Converged {
		t.Errorf("refine report %+v, want converged", got.Stats.Refine)
	}
}

// TestSolveEndpoint422IllConditioned: a refinement that cannot reach its
// tolerance within budget returns 422 carrying the condition report — the
// *solve.IllConditionedError surfaced as JSON, distinct from the singular
// 422 (which carries pivot_index instead).
func TestSolveEndpoint422IllConditioned(t *testing.T) {
	ts, _ := newTestServer(t, stream.Config{Shards: 1})
	rng := rand.New(rand.NewSource(815))
	a := matrix.RandomDense(rng, 6, 6, 2)
	rows := make([][]float64, 6)
	d := make([]float64, 6)
	for i := range rows {
		a.Set(i, i, 25)
		rows[i] = make([]float64, 6)
		for j := range rows[i] {
			rows[i][j] = a.At(i, j)
		}
		d[i] = float64(i + 1)
	}
	var got ErrorResponse
	resp := postSolve(t, ts, Request{
		A: rows, D: d, W: 2,
		Pivot:  "partial",
		Refine: &RefineRequest{MaxIters: 2, Tol: 1e-300},
	}, &got)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if got.Condition == nil {
		t.Fatalf("response %+v carries no condition report", got)
	}
	if got.Condition.Converged || got.Condition.Iters != 2 || got.Condition.ResidualNorm <= 0 {
		t.Errorf("condition report %+v, want 2 unconverged iterations with a positive residual", *got.Condition)
	}
	if got.PivotIndex != nil {
		t.Error("ill-conditioned 422 carries a pivot_index; that field is the singular 422's")
	}
	if got.Error == "" {
		t.Error("422 response carries no error message")
	}
}

// TestSolveEndpoint429Saturated: saturation (forced by an always-shedding
// injector) returns 429 with a Retry-After header.
func TestSolveEndpoint429Saturated(t *testing.T) {
	ts, _ := newTestServer(t, stream.Config{
		Shards:   1,
		Policy:   stream.Shed,
		Injector: &stream.Injector{ShedEvery: 1},
	})
	var got ErrorResponse
	resp := postSolve(t, ts, Request{A: [][]float64{{2}}, D: []float64{1}, W: 1}, &got)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want a positive whole-second hint", resp.Header.Get("Retry-After"))
	}
	if got.Error == "" {
		t.Error("429 response carries no error message")
	}
}

// TestSolveEndpoint504Deadline: an unmeetable deadline returns 504. The
// single shard is stalled to ~10ms per job and warmed once so its EWMA
// carries the stall; a 1ms budget is then predictably infeasible and
// admission sheds it with the typed deadline error.
func TestSolveEndpoint504Deadline(t *testing.T) {
	ts, _ := newTestServer(t, stream.Config{
		Shards:   1,
		Injector: &stream.Injector{StallShard: 0, StallDelay: 10 * time.Millisecond},
	})
	if resp := postSolve(t, ts, Request{A: [][]float64{{2}}, D: []float64{1}, W: 1}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}
	var got ErrorResponse
	resp := postSolve(t, ts, Request{A: [][]float64{{2}}, D: []float64{1}, W: 1, TimeoutMS: 1}, &got)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got.Error == "" {
		t.Error("504 response carries no error message")
	}
}

// TestWriteFailurePrecedence is the regression for the 429/504 ordering:
// SubmitWithRetry's give-up error wraps BOTH stream sentinels (the last
// ErrSaturated wrapped with ErrDeadlineExceeded) and must map to 504 — the
// deadline is spent, so a Retry-After hint would invite a doomed retry —
// while a plain saturation still maps to 429 with Retry-After.
func TestWriteFailurePrecedence(t *testing.T) {
	s := stream.New(stream.Config{Shards: 1})
	defer s.Close()
	srv := New(Config{Stream: s})
	// Manufacture the exact double-wrapped shape SubmitWithRetry returns
	// when its deadline runs out against a saturated scheduler.
	gaveUp := stream.SubmitWithRetry(stream.Retry{Base: 10 * time.Millisecond}, time.Now().Add(time.Millisecond), func() error {
		return stream.ErrSaturated
	})
	if !errors.Is(gaveUp, stream.ErrDeadlineExceeded) || !errors.Is(gaveUp, stream.ErrSaturated) {
		t.Fatalf("retry give-up %v must wrap both sentinels", gaveUp)
	}
	rec := httptest.NewRecorder()
	srv.writeFailure(rec, gaveUp)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("double-wrapped give-up mapped to %d, want 504", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Error("504 must not carry a Retry-After hint")
	}
	rec = httptest.NewRecorder()
	srv.writeFailure(rec, stream.ErrSaturated)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("plain saturation mapped to %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 lost its Retry-After hint")
	}
	rec = httptest.NewRecorder()
	srv.writeFailure(rec, &stream.DeadlineError{Expired: true})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("plain deadline expiry mapped to %d, want 504", rec.Code)
	}
}

// TestSolveEndpoint400: malformed bodies — bad JSON, unknown fields,
// ragged or empty systems, mismatched d, bad engine/priority/w — all
// return 400 before any ticket is drawn.
func TestSolveEndpoint400(t *testing.T) {
	ts, s := newTestServer(t, stream.Config{Shards: 1})
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	cases := []Request{
		{A: nil, D: nil}, // empty system
		{A: [][]float64{{1, 2}, {3}}, D: []float64{1, 2}},                                        // ragged
		{A: [][]float64{{1, 2}}, D: []float64{1}},                                                // not square
		{A: [][]float64{{2}}, D: []float64{1, 2}},                                                // len(d) mismatch
		{A: [][]float64{{2}}, D: []float64{1}, W: -1},                                            // bad w
		{A: [][]float64{{2}}, D: []float64{1}, Engine: "quantum"},                                // bad engine
		{A: [][]float64{{2}}, D: []float64{1}, Priority: "urgent"},                               // bad priority
		{A: [][]float64{{2}}, D: []float64{1}, Pivot: "complete"},                                // bad pivot policy
		{A: [][]float64{{2}}, D: []float64{1}, Refine: &RefineRequest{MaxIters: 0}},              // empty refine budget
		{A: [][]float64{{2}}, D: []float64{1}, Refine: &RefineRequest{MaxIters: 2, Tol: -1e-12}}, // negative tolerance
	}
	for i, c := range cases {
		var got ErrorResponse
		if resp := postSolve(t, ts, c, &got); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		} else if got.Error == "" {
			t.Errorf("case %d: 400 response carries no error message", i)
		}
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Errorf("malformed requests reached the scheduler: %+v", st)
	}
}

// TestSolveEndpoint405And503: wrong methods return 405 with an Allow
// header; a closed stream returns 503.
func TestSolveEndpoint405And503(t *testing.T) {
	ts, s := newTestServer(t, stream.Config{Shards: 1})
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /solve: status %d Allow %q, want 405 with Allow: POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp, err = http.Post(ts.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: status %d, want 405", resp.StatusCode)
	}

	s.Close()
	var got ErrorResponse
	if resp := postSolve(t, ts, Request{A: [][]float64{{2}}, D: []float64{1}, W: 1}, &got); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed stream: status %d, want 503", resp.StatusCode)
	}
}

// TestStatsEndpoint: /stats reports the shard count's worth of queue
// depths and counters consistent with the served traffic.
func TestStatsEndpoint(t *testing.T) {
	ts, s := newTestServer(t, stream.Config{Shards: 3})
	for i := 0; i < 4; i++ {
		if resp := postSolve(t, ts, Request{A: [][]float64{{2}}, D: []float64{1}, W: 1}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	var got StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.QueueDepths) != s.Shards() {
		t.Errorf("queue_depths has %d entries, want %d", len(got.QueueDepths), s.Shards())
	}
	if got.Stream.Submitted != 4 || got.Stream.Completed != 4 {
		t.Errorf("stream counters %+v, want 4 submitted and completed", got.Stream)
	}
	if got.Stream.Expired != 0 || got.Stream.Panics != 0 {
		t.Errorf("stream counters %+v, want 0 expired and panics on clean traffic", got.Stream)
	}
	if len(got.ServiceEWMAMS) != s.Shards() {
		t.Fatalf("service_ewma_ms has %d entries, want %d", len(got.ServiceEWMAMS), s.Shards())
	}
	warm := 0
	for i, ms := range got.ServiceEWMAMS {
		if ms < 0 {
			t.Errorf("shard %d EWMA %g ms is negative", i, ms)
		}
		if ms > 0 {
			warm++
		}
	}
	if warm == 0 {
		t.Error("no shard reports a warm service EWMA after 4 solves")
	}
}

// TestHealthzEndpoint: GET /healthz is a cheap 200 liveness probe
// reporting the shard count; other methods get 405.
func TestHealthzEndpoint(t *testing.T) {
	ts, s := newTestServer(t, stream.Config{Shards: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
	var got HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || got.Shards != s.Shards() {
		t.Errorf("health %+v, want ok with %d shards", got, s.Shards())
	}
	presp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed || presp.Header.Get("Allow") != http.MethodGet {
		t.Fatalf("POST /healthz: status %d Allow %q, want 405 with Allow: GET", presp.StatusCode, presp.Header.Get("Allow"))
	}
}

// TestSolveEndpointPriorityLow: a low-priority request sheds (429) at the
// first full queue instead of blocking — the facade forwards the admission
// class, it does not flatten it.
func TestSolveEndpointPriorityLow(t *testing.T) {
	ts, s := newTestServer(t, stream.Config{
		Shards:   1,
		Injector: &stream.Injector{ShedEvery: 1},
	})
	var got ErrorResponse
	resp := postSolve(t, ts, Request{A: [][]float64{{2}}, D: []float64{1}, W: 1, Priority: "low"}, &got)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if st := s.Stats(); st.ShedLow != 1 || st.ShedHigh != 0 {
		t.Errorf("stats %+v, want the shed accounted to the Low class", st)
	}
}
