package schedule

import (
	"fmt"

	"repro/internal/systolic"
)

// TriSolve is a compiled schedule for the w-PE band triangular solver array
// (Kung & Leiserson's linear-system array, internal/trisolve): the full
// event plan of one L·x = b band solve of dimension n.
//
// Unlike the matrix-product plans there is no feedback topology to tabulate
// — the array's recurrence is self-feeding (every divider output re-enters
// the x stream at a fixed offset) — so the plan is purely the analytic
// cycle accounting plus the accumulation order: row i's partial sum
// collects L[i][i−d]·x_{i−d} for d *descending* from w−1 to 1 (the y item
// meets the farthest diagonal first as it moves left from PE w−1 to the
// divider at PE 0), then divides by L[i][i]. Each row is one reversed run
// with a compile-known clamped span — min(i, w−1) terms — so the replay
// kernels (kernel.go) carry no per-term boundary branch. Exec replays
// exactly the array's order, so results are bit-identical to the
// structural oracle.
type TriSolve struct {
	// W is the array size, N the system dimension.
	W, N int
	// Rows is N (kept for symmetry with the other plans' buffer sizing).
	Rows int
	// T is the step count the array would measure (2n + w − 2); MACs the
	// multiply–accumulate count of PEs 1..w−1; Divisions the division count
	// of PE 0 (= n).
	T, MACs, Divisions int

	// kern selects the replay kernel family for W (kernel.go).
	kern kern
}

// compileTriSolve builds the schedule for an n-dimensional band solve on w
// PEs. The whole plan is analytic: PE d fires once per row i ≥ d, the
// divider once per row, and the last x is available at cycle 2n + w − 2.
func compileTriSolve(n, w int) *TriSolve {
	if w < 1 || n < 0 {
		panic(fmt.Sprintf("schedule: invalid trisolve shape n=%d w=%d", n, w))
	}
	s := &TriSolve{W: w, N: n, Rows: n, Divisions: n, kern: kernelFor(w)}
	if n == 0 {
		return s
	}
	s.T = 2*n + w - 2
	for d := 1; d < w; d++ {
		if n > d {
			s.MACs += n - d
		}
	}
	return s
}

// Exec runs the compiled schedule over one problem's data. lband is the
// packed lower band (dbt.PackTriBand layout: lband[i*w+d] = L[i][i−d], zero
// outside the matrix or the stored band), b the right-hand side (len ≥ N)
// and x the output buffer (len ≥ N). Exec performs no allocation; each row
// is one reversed run clamped to min(i, w−1) terms, accumulated in the
// array's cycle order (descending diagonal) from the same zero
// initialization, so every float64 rounding step matches the structural
// simulator. Like the oracle, it panics on a zero diagonal.
func (s *TriSolve) Exec(lband, b, x []float64) {
	w := s.W
	if len(lband) < s.N*w || len(b) < s.N || len(x) < s.N {
		panic(fmt.Sprintf("schedule: Exec buffer sizes lband=%d b=%d x=%d for n=%d w=%d",
			len(lband), len(b), len(x), s.N, w))
	}
	// Head rows i < w−1: only diagonals d ≤ i land inside the matrix, so the
	// run clamps to i terms — the boundary the per-term branch used to test.
	head := w - 1
	if head > s.N {
		head = s.N
	}
	for i := 0; i < head; i++ {
		row := lband[i*w : (i+1)*w]
		v := dotRunRev(0, row[1:i+1], x[:i])
		diag := row[0]
		if diag == 0 {
			panic(fmt.Sprintf("trisolve: zero diagonal at row %d", i))
		}
		x[i] = (b[i] - v) / diag
	}
	// Full rows carry exactly w−1 terms: a constant-length reversed run the
	// width specializations unroll.
	for i := head; i < s.N; i++ {
		row := lband[i*w : (i+1)*w]
		var v float64
		switch s.kern {
		case kernW8:
			v = dotRunRev7(0, row[1:], x[i-7:])
		case kernW4:
			v = dotRunRev3(0, row[1:], x[i-3:])
		default:
			v = dotRunRev(0, row[1:w], x[i-w+1:i])
		}
		diag := row[0]
		if diag == 0 {
			panic(fmt.Sprintf("trisolve: zero diagonal at row %d", i))
		}
		x[i] = (b[i] - v) / diag
	}
}

// Bytes returns the resident size of the compiled descriptors — zero beyond
// the fixed struct: the trisolve plan is fully analytic.
func (s *TriSolve) Bytes() int { return 0 }

// Activity returns the per-PE operation counts the array would measure: PE
// d ≥ 1 one MAC per row i ≥ d, PE 0 one division per row, Cycles = T.
func (s *TriSolve) Activity() *systolic.Activity {
	a := systolic.NewActivity(s.W)
	if s.N == 0 {
		return a
	}
	a.MACs[0] = s.N
	for d := 1; d < s.W; d++ {
		if s.N > d {
			a.MACs[d] = s.N - d
		}
	}
	a.Cycles = s.T
	return a
}

// Utilization returns (MACs + Divisions)/(w·T), the PE duty the array would
// measure (approaches ½ as n grows).
func (s *TriSolve) Utilization() float64 {
	if s.T == 0 {
		return 0
	}
	return float64(s.MACs+s.Divisions) / (float64(s.W) * float64(s.T))
}
