package schedule

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

// These tests pin the contract that makes a data-keyed plan cache safe: the
// digest half of the sparse key is lossy, so every hit must verify the full
// retained-block pattern, and colliding patterns must both compute correct
// results (by recompiling) rather than replaying each other's schedule.

// sparseRef computes the reference y = A·x + b for a block pattern over a
// padded matrix, with the same zero-block semantics as the sparse path.
func sparseRef(a *matrix.Dense, retained [][]int, x, b []float64, w int) []float64 {
	nbar := len(retained)
	y := make([]float64, nbar*w)
	copy(y, b)
	for r, cols := range retained {
		for _, s := range cols {
			for i := 0; i < w; i++ {
				for j := 0; j < w; j++ {
					y[r*w+i] += a.At(r*w+i, s*w+j) * x[s*w+j]
				}
			}
		}
	}
	return y
}

// execSparse replays a plan over one problem and returns y.
func execSparse(t *testing.T, s *SparseMatVec, a *matrix.Dense, x, b []float64) []float64 {
	t.Helper()
	y := make([]float64, s.NBar*s.W)
	ybar := make([]float64, s.MaxBandRows)
	s.Exec(a.Raw(), x, b, y, ybar)
	return y
}

// TestSparsePlanCollision forces two distinct patterns onto one digest
// bucket (by swapping the digest function for a constant) and requires both
// to return correct results: the first pattern wins the cache slot, the
// second is detected by the full-pattern equality check and recompiled.
func TestSparsePlanCollision(t *testing.T) {
	saved := patternDigest
	patternDigest = func([][]int) uint64 { return 7 }
	defer func() { patternDigest = saved }()

	rng := rand.New(rand.NewSource(3))
	const w, nbar, mbar = 2, 2, 3
	a := matrix.RandomDense(rng, nbar*w, mbar*w, 5)
	x := make([]float64, mbar*w)
	b := make([]float64, nbar*w)
	for i := range x {
		x[i] = float64(rng.Intn(9) - 4)
	}
	for i := range b {
		b[i] = float64(rng.Intn(9) - 4)
	}

	p1 := [][]int{{0, 2}, {1}}
	p2 := [][]int{{1}, {0, 2}}
	s1, err := SparseMatVecFor(w, nbar, mbar, p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SparseMatVecFor(w, nbar, mbar, p2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("colliding patterns must not share a plan")
	}
	if !s1.MatchesPattern(p1) || !s2.MatchesPattern(p2) {
		t.Fatal("plans compiled for the wrong pattern under collision")
	}
	for _, c := range []struct {
		s   *SparseMatVec
		pat [][]int
	}{{s1, p1}, {s2, p2}} {
		got := execSparse(t, c.s, a, x, b)
		want := sparseRef(a, c.pat, x, b, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("collision corrupted results for pattern %v: got %v want %v", c.pat, got, want)
			}
		}
	}

	// The memo must apply the same policy: its bucket holds one pattern at a
	// time, and a colliding lookup re-verifies and recompiles.
	pm := NewPlanMemo()
	m1, err := pm.SparseMatVecFor(w, nbar, mbar, p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pm.SparseMatVecFor(w, nbar, mbar, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.MatchesPattern(p1) || !m2.MatchesPattern(p2) {
		t.Fatal("memo served a colliding pattern's plan")
	}
	again, err := pm.SparseMatVecFor(w, nbar, mbar, p2)
	if err != nil {
		t.Fatal(err)
	}
	if again != m2 {
		t.Fatal("memo failed to hit on the latest pattern in the bucket")
	}
}

// TestSparsePlanMemoSharesPlans: without collisions the memo returns the
// same immutable plan instance as the global cache and hits its private map
// on repeats.
func TestSparsePlanMemoSharesPlans(t *testing.T) {
	pm := NewPlanMemo()
	pat := [][]int{{0, 1}, {}, {2}}
	first, err := pm.SparseMatVecFor(3, 3, 3, pat)
	if err != nil {
		t.Fatal(err)
	}
	global, err := SparseMatVecFor(3, 3, 3, pat)
	if err != nil {
		t.Fatal(err)
	}
	if first != global {
		t.Error("memo and global cache disagree on the plan instance")
	}
	again, err := pm.SparseMatVecFor(3, 3, 3, pat)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("memo failed to hit on a repeated pattern")
	}
}

// TestSparsePlanValidation: malformed hand-built patterns are rejected with
// errors, never cached, and never panic.
func TestSparsePlanValidation(t *testing.T) {
	cases := []struct {
		name          string
		w, nbar, mbar int
		pat           [][]int
	}{
		{"band count mismatch", 2, 3, 2, [][]int{{0}}},
		{"column out of range", 2, 1, 2, [][]int{{2}}},
		{"negative column", 2, 1, 2, [][]int{{-1}}},
		{"not increasing", 2, 1, 3, [][]int{{1, 0}}},
		{"duplicate column", 2, 1, 3, [][]int{{1, 1}}},
		{"bad shape", 0, 1, 1, [][]int{{0}}},
	}
	for _, c := range cases {
		if _, err := SparseMatVecFor(c.w, c.nbar, c.mbar, c.pat); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestSparsePlanStepFormula: the compiled T telescopes from the per-band
// step counts exactly as the package doc's formula says, including the
// empty-schedule case.
func TestSparsePlanStepFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		w := 1 + rng.Intn(4)
		nbar := 1 + rng.Intn(5)
		mbar := 1 + rng.Intn(5)
		pat := make([][]int, nbar)
		for r := range pat {
			for s := 0; s < mbar; s++ {
				if rng.Intn(2) == 0 {
					pat[r] = append(pat[r], s)
				}
			}
		}
		s, err := SparseMatVecFor(w, nbar, mbar, pat)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for r := 0; r < nbar; r++ {
			total += s.BandSteps(r)
		}
		want := 0
		if active := s.ActiveBands(); active > 0 {
			want = total + (active-1)*(2*w-2) + 2*w - 3
		}
		if s.T != want {
			t.Fatalf("w=%d pattern %v: T=%d, per-band formula gives %d", w, pat, s.T, want)
		}
		if s.Q == 0 && (s.T != 0 || s.MACs != 0 || s.Utilization() != 0) {
			t.Fatalf("empty schedule costs cycles: %+v", s)
		}
	}
}

// TestSparseOverlapStepFormula pins the overlapped schedule's step count
// against an independent pairwise walk of the active-band spans: pairs sit
// at offsets (o, o+1), advance by the larger span, and the schedule ends one
// cycle after the last MAC. TOverlap never exceeds T, matches it whenever
// there is at most one active band (nothing to pair), and is zero for the
// empty schedule.
func TestSparseOverlapStepFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 80; trial++ {
		w := 1 + rng.Intn(4)
		nbar := 1 + rng.Intn(6)
		mbar := 1 + rng.Intn(5)
		pat := make([][]int, nbar)
		for r := range pat {
			for s := 0; s < mbar; s++ {
				if rng.Intn(2) == 0 {
					pat[r] = append(pat[r], s)
				}
			}
		}
		s, err := SparseMatVecFor(w, nbar, mbar, pat)
		if err != nil {
			t.Fatal(err)
		}
		var spans []int
		for _, cols := range pat {
			if len(cols) > 0 {
				spans = append(spans, 2*w*len(cols)+2*w-2)
			}
		}
		offset, want := 0, 0
		for p := 0; p < len(spans); p += 2 {
			end := offset + spans[p] - 1
			adv := spans[p]
			if p+1 < len(spans) {
				if e := offset + 1 + spans[p+1] - 1; e > end {
					end = e
				}
				if spans[p+1] > adv {
					adv = spans[p+1]
				}
			}
			if end > want {
				want = end
			}
			offset += adv
		}
		if s.TOverlap != want {
			t.Fatalf("w=%d pattern %v: TOverlap=%d, pairwise walk gives %d", w, pat, s.TOverlap, want)
		}
		if s.TOverlap > s.T {
			t.Fatalf("w=%d pattern %v: TOverlap=%d exceeds T=%d", w, pat, s.TOverlap, s.T)
		}
		if s.ActiveBands() <= 1 && s.TOverlap != s.T {
			t.Fatalf("w=%d pattern %v: single program must not change span: TOverlap=%d T=%d", w, pat, s.TOverlap, s.T)
		}
		if s.Q == 0 && (s.TOverlap != 0 || s.OverlapUtilization() != 0) {
			t.Fatalf("empty schedule has an overlap span: %+v", s)
		}
		if s.Q > 0 && s.OverlapUtilization() != float64(s.MACs)/(float64(w)*float64(s.TOverlap)) {
			t.Fatalf("OverlapUtilization disagrees with its formula")
		}
	}
}

// TestSparseExecManyBitIdentity: batched replay over k vectors returns
// bit-identical results to k sequential Exec calls, for every kernel width
// class and including empty bands and k=1.
func TestSparseExecManyBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Intn(8)
		nbar := 1 + rng.Intn(5)
		mbar := 1 + rng.Intn(5)
		k := 1 + rng.Intn(6)
		pat := make([][]int, nbar)
		for r := range pat {
			for s := 0; s < mbar; s++ {
				if rng.Intn(3) > 0 {
					pat[r] = append(pat[r], s)
				}
			}
		}
		s, err := SparseMatVecFor(w, nbar, mbar, pat)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.RandomDense(rng, nbar*w, mbar*w, 5)
		xs, ys := mbar*w, nbar*w
		xp := make([]float64, k*xs)
		bp := make([]float64, k*ys)
		for i := range xp {
			xp[i] = rng.NormFloat64()
		}
		for i := range bp {
			bp[i] = rng.NormFloat64()
		}
		got := make([]float64, k*ys)
		ybar := make([]float64, k*s.MaxBandRows)
		if s.MaxBandRows == 0 {
			ybar = make([]float64, k) // ExecMany length check wants ≥ k·MaxBandRows
		}
		s.ExecMany(a.Raw(), xp, bp, got, ybar, k)
		one := make([]float64, ys)
		oneBar := make([]float64, s.MaxBandRows)
		for v := 0; v < k; v++ {
			s.Exec(a.Raw(), xp[v*xs:(v+1)*xs], bp[v*ys:(v+1)*ys], one, oneBar)
			for i := range one {
				if got[v*ys+i] != one[i] {
					t.Fatalf("w=%d k=%d pattern %v: vector %d diverges at %d: batched %v serial %v",
						w, k, pat, v, i, got[v*ys+i], one[i])
				}
			}
		}
	}
}

// TestSparsePlanEvictionWhileInUse pushes the bounded sparse cache past its
// cap (forcing the drop-and-rebuild rotation) while other goroutines keep
// replaying a plan resolved before the rotation — the same immutability
// guarantee concurrent_test.go pins for the shape-keyed caches.
func TestSparsePlanEvictionWhileInUse(t *testing.T) {
	if testing.Short() {
		t.Skip("fills the plan cache past its bound")
	}
	rng := rand.New(rand.NewSource(11))
	const w, nbar, mbar = 2, 3, 3
	pat := [][]int{{0, 1}, {}, {1, 2}}
	held, err := SparseMatVecFor(w, nbar, mbar, pat)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomDense(rng, nbar*w, mbar*w, 5)
	x := make([]float64, mbar*w)
	b := make([]float64, nbar*w)
	for i := range x {
		x[i] = float64(rng.Intn(9) - 4)
	}
	want := sparseRef(a, pat, x, b, w)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := execSparse(t, held, a, x, b)
				for i := range want {
					if got[i] != want[i] {
						t.Error("held plan replayed wrong during cache rotation")
						return
					}
				}
				re, err := SparseMatVecFor(w, nbar, mbar, pat)
				if err != nil || re.T != held.T || re.Q != held.Q {
					t.Error("re-resolved plan disagrees with the held one")
					return
				}
			}
		}()
	}
	// Rotate the cache at least twice over with distinct single-block
	// patterns (the key varies by m̄, so every compile is tiny).
	for n := 1; n < 2*maxCached+10; n++ {
		if _, err := SparseMatVecFor(w, 1, n, [][]int{{n - 1}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	got := execSparse(t, held, a, x, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("held plan changed behavior after eviction")
		}
	}
}
