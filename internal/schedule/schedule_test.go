package schedule

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// mustMatVecFor compiles a schedule for a transform that is known valid.
func mustMatVecFor(t *testing.T, tr dbt.Transform, overlap bool) *MatVec {
	t.Helper()
	s, err := MatVecFor(tr, overlap)
	if err != nil {
		t.Fatalf("MatVecFor: %v", err)
	}
	return s
}

// TestCacheReusesShapes: same shape → same cached schedule object; distinct
// shape, variant or overlap → distinct schedules.
func TestCacheReusesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a1 := matrix.RandomDense(rng, 6, 9, 3)
	a2 := matrix.RandomDense(rng, 6, 9, 5) // same shape, different data
	a3 := matrix.RandomDense(rng, 9, 9, 3) // different shape
	s1 := mustMatVecFor(t, dbt.NewMatVec(a1, 3), false)
	s2 := mustMatVecFor(t, dbt.NewMatVec(a2, 3), false)
	s3 := mustMatVecFor(t, dbt.NewMatVec(a3, 3), false)
	if s1 != s2 {
		t.Fatal("same shape should share one compiled schedule")
	}
	if s1 == s3 {
		t.Fatal("different shapes must not share a schedule")
	}
	if mustMatVecFor(t, dbt.NewMatVec(a1, 3), true) == s1 {
		t.Fatal("overlap schedules must be distinct")
	}
	if mustMatVecFor(t, dbt.NewMatVecByColumns(a1, 3), false) == s1 {
		t.Fatal("by-columns schedules must be distinct")
	}

	b1 := matrix.RandomDense(rng, 9, 6, 3)
	m1 := MatMulFor(dbt.NewMatMul(a1, b1, 3))
	m2 := MatMulFor(dbt.NewMatMul(a2, b1, 3))
	if m1 != m2 {
		t.Fatal("same matmul shape should share one compiled schedule")
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run under
// -race this checks the compile-once path and the reset are safe.
func TestCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var as []*matrix.Dense
	for i := 0; i < 8; i++ {
		as = append(as, matrix.RandomDense(rng, 2+rng.Intn(8), 2+rng.Intn(8), 3))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := as[(g+i)%len(as)]
				w := 1 + (g+i)%4
				sch, err := MatVecFor(dbt.NewMatVec(a, w), false)
				if err != nil {
					t.Errorf("MatVecFor: %v", err)
					return
				}
				if sch.W != w {
					t.Errorf("schedule w=%d, want %d", sch.W, w)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMatVecExecAgainstBlockRecurrence checks the compiled execution against
// the package-independent mathematical reference.
func TestMatVecExecAgainstBlockRecurrence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(4*w)
			m := 1 + rng.Intn(4*w)
			a := matrix.RandomDense(rng, n, m, 5)
			x := matrix.RandomVector(rng, m, 5)
			b := matrix.RandomVector(rng, n, 5)
			tr := dbt.NewMatVec(a, w)
			sch := mustMatVecFor(t, tr, false)
			band := make([]float64, sch.Rows*w)
			tr.PackBand(band)
			y := make([]float64, sch.Rows)
			sch.Exec(band, tr.TransformX(x), b.Pad(sch.BLen), y)
			want := tr.BlockRecurrence(x, b)
			for k, blk := range want {
				for i, v := range blk {
					if y[k*w+i] != v {
						t.Fatalf("w=%d n=%d m=%d: ȳ_%d[%d] = %g, want %g", w, n, m, k, i, y[k*w+i], v)
					}
				}
			}
		}
	}
}

// TestMatMulExecAgainstReferenceRun checks the compiled matmul execution
// against dbt's block-level reference (including E and feedback chaining).
func TestMatMulExecAgainstReferenceRun(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, w := range []int{1, 2, 3} {
		for trial := 0; trial < 8; trial++ {
			n := 1 + rng.Intn(3*w)
			p := 1 + rng.Intn(3*w)
			m := 1 + rng.Intn(3*w)
			a := matrix.RandomDense(rng, n, p, 4)
			b := matrix.RandomDense(rng, p, m, 4)
			var e *matrix.Dense
			if trial%2 == 0 {
				e = matrix.RandomDense(rng, n, m, 4)
			}
			tr := dbt.NewMatMul(a, b, w)
			sch := MatMulFor(tr)
			aPack := make([]float64, sch.Dim*w)
			bPack := make([]float64, sch.Dim*w)
			tr.PackAHat(aPack)
			tr.PackBHat(bPack)
			ext := make([]float64, len(sch.ExtInits))
			for i, ei := range sch.ExtInits {
				ext[i] = tr.EPieceAt(e, ei.R, ei.S, ei.P, ei.A, ei.B)
			}
			o := make([]float64, sch.OLen())
			sch.Exec(aPack, bPack, ext, o)
			rec, _ := tr.ReferenceRun(e)
			for rho := 0; rho < sch.Dim; rho++ {
				for f := -(w - 1); f <= w-1; f++ {
					gamma := rho + f
					if gamma < 0 || gamma >= sch.Dim {
						continue
					}
					k, piece, la, lb := tr.PieceAt(rho, gamma)
					if got, want := sch.OAt(o, rho, gamma), rec.At(k, piece, la, lb); got != want {
						t.Fatalf("w=%d %d×%d·%d×%d (E=%v): O[%d][%d] = %g, reference %g",
							w, n, p, p, m, e != nil, rho, gamma, got, want)
					}
				}
			}
		}
	}
}

// TestPackedBandsMatchReaders: the packed exporters must agree element for
// element with the closure readers they replace.
func TestPackedBandsMatchReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range []int{1, 2, 4} {
		a := matrix.RandomDense(rng, 3*w+1, 2*w+1, 5)
		for _, tr := range []dbt.Transform{dbt.NewMatVec(a, w), dbt.NewMatVecByColumns(a, w)} {
			band := make([]float64, tr.BandRows()*w)
			tr.PackBand(band)
			for i := 0; i < tr.BandRows(); i++ {
				for d := 0; d < w; d++ {
					want := 0.0
					if j := i + d; j < tr.BandCols() {
						want = tr.BandAt(i, j)
					}
					if band[i*w+d] != want {
						t.Fatalf("w=%d row %d diag %d: packed %g, reader %g", w, i, d, band[i*w+d], want)
					}
				}
			}
		}
		b := matrix.RandomDense(rng, 2*w+1, 3*w+1, 5)
		mm := dbt.NewMatMul(a, b, w)
		aPack := make([]float64, mm.Dim()*w)
		bPack := make([]float64, mm.Dim()*w)
		mm.PackAHat(aPack)
		mm.PackBHat(bPack)
		for i := 0; i < mm.Dim(); i++ {
			for d := 0; d < w; d++ {
				if j := i + d; j < mm.Dim() {
					if aPack[i*w+d] != mm.AHatAt(i, j) {
						t.Fatalf("Â w=%d (%d,%d): packed %g, reader %g", w, i, j, aPack[i*w+d], mm.AHatAt(i, j))
					}
					if bPack[i*w+d] != mm.BHatAt(j, i) {
						t.Fatalf("B̂ w=%d (%d,%d): packed %g, reader %g", w, j, i, bPack[i*w+d], mm.BHatAt(j, i))
					}
				}
			}
		}
	}
}

// brokenTransform wraps a valid transform with a failing Validate — the
// shape an external Transform implementation with a pairing bug would take.
type brokenTransform struct{ dbt.Transform }

func (brokenTransform) Validate() error { return errBroken }

var errBroken = fmt.Errorf("broken pairing")

// TestInvalidTransformErrors: a transform failing §2 validation must come
// back as an error from the compiled path (matching the structural path),
// not a panic.
func TestInvalidTransformErrors(t *testing.T) {
	a := matrix.RandomDense(rand.New(rand.NewSource(6)), 6, 6, 3)
	if _, err := MatVecFor(brokenTransform{dbt.NewMatVec(a, 3)}, false); err != errBroken {
		t.Fatalf("want errBroken, got %v", err)
	}
}

// TestOverlapSplitBoundary: the split must sit at a row band boundary so no
// feedback chain crosses programs.
func TestOverlapSplitBoundary(t *testing.T) {
	for nbar := 2; nbar <= 7; nbar++ {
		for mbar := 1; mbar <= 7; mbar++ {
			h := OverlapSplit(nbar, mbar)
			if h%mbar != 0 {
				t.Fatalf("split %d not at a chain boundary for n̄=%d m̄=%d", h, nbar, mbar)
			}
			if h <= 0 || h >= nbar*mbar {
				t.Fatalf("split %d outside (0,%d)", h, nbar*mbar)
			}
		}
	}
}

// TestTriSolvePlan: the compiled trisolve plan's analytic accounting (T,
// MACs, per-PE activity) and cache identity.
func TestTriSolvePlan(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{0, 1, 2, w, 2*w + 1, 17} {
			s := TriSolveFor(n, w)
			if s.W != w || s.N != n {
				t.Fatalf("shape (%d,%d) compiled as (%d,%d)", n, w, s.N, s.W)
			}
			if n == 0 {
				if s.T != 0 || s.MACs != 0 || s.Divisions != 0 {
					t.Fatalf("n=0: non-empty plan %+v", s)
				}
				continue
			}
			if want := 2*n + w - 2; s.T != want {
				t.Fatalf("n=%d w=%d: T=%d, want %d", n, w, s.T, want)
			}
			if s.Divisions != n {
				t.Fatalf("n=%d w=%d: divisions %d", n, w, s.Divisions)
			}
			act := s.Activity()
			if act.MACs[0] != n || act.Cycles != s.T {
				t.Fatalf("n=%d w=%d: activity %+v", n, w, act)
			}
			total := 0
			for d := 1; d < w; d++ {
				want := n - d
				if want < 0 {
					want = 0
				}
				if act.MACs[d] != want {
					t.Fatalf("n=%d w=%d PE %d: %d MACs, want %d", n, w, d, act.MACs[d], want)
				}
				total += act.MACs[d]
			}
			if s.MACs != total {
				t.Fatalf("n=%d w=%d: MACs %d vs per-PE sum %d", n, w, s.MACs, total)
			}
			if s.Utilization() <= 0 || s.Utilization() > 1 {
				t.Fatalf("n=%d w=%d: utilization %g out of range", n, w, s.Utilization())
			}
			if TriSolveFor(n, w) != s {
				t.Fatalf("n=%d w=%d: same shape should share one compiled plan", n, w)
			}
		}
	}
}

// TestTriSolveExecAgainstSubstitution checks the compiled execution against
// plain forward substitution (exact: small-integer data).
func TestTriSolveExecAgainstSubstitution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 8; trial++ {
			n := 1 + rng.Intn(4*w)
			l := matrix.NewBand(n, n, -(w - 1), 0)
			for i := 0; i < n; i++ {
				for d := 1; d < w; d++ {
					if j := i - d; j >= 0 {
						l.Set(i, j, float64(rng.Intn(5)-2))
					}
				}
				l.Set(i, i, float64(1+rng.Intn(3)))
			}
			b := matrix.RandomVector(rng, n, 5)
			s := TriSolveFor(n, w)
			lband := make([]float64, n*w)
			dbt.PackTriBand(l, w, lband)
			x := make([]float64, n)
			s.Exec(lband, b, x)
			for i := 0; i < n; i++ {
				v := 0.0
				for d := w - 1; d >= 1; d-- {
					if j := i - d; j >= 0 {
						v += l.At(i, j) * x[j]
					}
				}
				if want := (b[i] - v) / l.At(i, i); x[i] != want {
					t.Fatalf("w=%d n=%d: x[%d] = %g, want %g", w, n, i, x[i], want)
				}
			}
		}
	}
}

// TestUnsupportedWorkloadError: Unsupported errors must match
// ErrUnsupported via errors.Is and carry the workload name.
func TestUnsupportedWorkloadError(t *testing.T) {
	err := Unsupported(WorkloadSparseMatVec, "pattern-dependent schedule")
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("errors.Is(ErrUnsupported) = false for %v", err)
	}
	if !strings.Contains(err.Error(), string(WorkloadSparseMatVec)) {
		t.Fatalf("error %q does not name the workload", err)
	}
}

// TestScratchPool: pooled buffers come back zeroed at the requested length.
func TestScratchPool(t *testing.T) {
	p := GetFloats(10)
	for i := range *p {
		(*p)[i] = float64(i + 1)
	}
	PutFloats(p)
	q := GetFloats(1000)
	if len(*q) != 1000 {
		t.Fatalf("len %d, want 1000", len(*q))
	}
	for i, v := range *q {
		if v != 0 {
			t.Fatalf("scratch not zeroed at %d: %g", i, v)
		}
	}
	PutFloats(q)
}
