package schedule

import "os"

// This file holds the shared replay kernels every compiled plan dispatches
// into (DESIGN §12). The plan compilers emit each row's gather as contiguous
// *runs* over the operand buffers — at most two per sparse band row (the
// Ū→L̄ wrap is the only break), exactly one per dense matvec row, a clamped
// span per trisolve row — so the hot loop is straight slice arithmetic
// instead of a per-MAC index gather. Two idioms keep the bounds checker out
// of the inner loops:
//
//   - re-slice every operand to its exact extent up front (`x = x[:len(a)]`,
//     `xs = xs[:15]`): after that, constant indices and `range`-bounded
//     accesses are provably in range;
//   - in the unrolled width specializations, give each row a compile-time
//     constant trip count so the loop body is branch-free straight-line code
//     with one scalar accumulator per row (arrays spill; variable trip
//     counts defeat the branch predictor and run *slower* than the gather
//     they replace).
//
// Accumulation order is load-bearing: per result element the terms must be
// added in exactly the array's cycle order (increasing diagonal for the
// linear array, descending diagonal for the triangular solver) or the
// float64 rounding trail diverges from the structural oracle. The kernels
// therefore never reassociate within a row — every `v += term` is a separate
// statement — but they freely interleave *independent* rows (the quad
// layouts below) because rows only depend on outputs at feedback distance
// ≥ w, which block boundaries respect.
//
// To add a width specialization: write the unrolled kernels (band and grid
// flavors), add a kern constant, extend kernelFor, and extend the pinning
// test in kernel_test.go that proves the new kernels bit-identical to the
// generic ones on randomized data.

// Run is one contiguous-run descriptor of a compiled gather: Len
// coefficients starting at ABase in the flat operand matrix, paired with Len
// stream elements starting at XBase. Plans store runs implicitly (per-block
// column bases); RowRuns-style accessors materialize them for tests and
// tooling.
type Run struct {
	ABase, XBase int32
	Len          int32
}

// kern selects a replay kernel family at plan-compile time.
type kern uint8

const (
	kernGeneric kern = iota // any width: run-sliced loops
	kernW4                  // unrolled straight-line kernels for w = 4
	kernW8                  // unrolled straight-line kernels for w = 8
)

// genericKernelsOnly pins every plan to the generic kernels (CI's
// kernel-generic job sets it so the fallback path cannot rot). Read once at
// process start: plans are cached globally, so flipping it mid-process would
// race with cached plans compiled under the other setting.
var genericKernelsOnly = os.Getenv("REPRO_GENERIC_KERNELS") != ""

// kernelFor picks the kernel family for an array width.
func kernelFor(w int) kern {
	if genericKernelsOnly {
		return kernGeneric
	}
	switch w {
	case 4:
		return kernW4
	case 8:
		return kernW8
	}
	return kernGeneric
}

// dotRun accumulates v += a[d]·x[d] for d increasing — the generic forward
// run kernel. The re-slice of x lets the compiler drop both bounds checks.
func dotRun(v float64, a, x []float64) float64 {
	x = x[:len(a)]
	for d, c := range a {
		v += c * x[d]
	}
	return v
}

// dotRunRev accumulates v += a[n−1−t]·x[t] for t increasing — the terms of
// a reversed run, i.e. descending-diagonal order over a coefficient span
// stored diagonal-ascending (the trisolve band layout).
func dotRunRev(v float64, a, x []float64) float64 {
	x = x[:len(a)]
	for t := range x {
		v += a[len(a)-1-t] * x[t]
	}
	return v
}

// dotRunRev3 is dotRunRev unrolled for a 3-term span (w = 4 trisolve rows).
func dotRunRev3(v float64, a, x []float64) float64 {
	a = a[:3]
	x = x[:3]
	v += a[2] * x[0]
	v += a[1] * x[1]
	v += a[0] * x[2]
	return v
}

// dotRunRev7 is dotRunRev unrolled for a 7-term span (w = 8 trisolve rows).
func dotRunRev7(v float64, a, x []float64) float64 {
	a = a[:7]
	x = x[:7]
	v += a[6] * x[0]
	v += a[5] * x[1]
	v += a[4] * x[2]
	v += a[3] * x[3]
	v += a[2] * x[4]
	v += a[1] * x[5]
	v += a[0] * x[6]
	return v
}

// bandBlockGeneric replays one w-row block of a packed band: row a starts
// from ini[a] and adds band[a·w+d]·xs[a+d] for d increasing.
func bandBlockGeneric(out, ini, band, xs []float64, w int) {
	for a := 0; a < w; a++ {
		out[a] = dotRun(ini[a], band[a*w:a*w+w], xs[a:])
	}
}

// bandBlock4 is bandBlockGeneric unrolled for w = 4: one quad of rows with
// scalar accumulators, constant trip counts, diagonal-major interleave.
func bandBlock4(out, ini, band, xs []float64) {
	band = band[:16]
	xs = xs[:7]
	ini = ini[:4]
	a0 := band[0:4:4]
	a1 := band[4:8:8]
	a2 := band[8:12:12]
	a3 := band[12:16:16]
	x0 := xs[0:4:4]
	x1 := xs[1:5:5]
	x2 := xs[2:6:6]
	x3 := xs[3:7:7]
	v0, v1, v2, v3 := ini[0], ini[1], ini[2], ini[3]
	for d := 0; d < 4; d++ {
		v0 += a0[d] * x0[d]
		v1 += a1[d] * x1[d]
		v2 += a2[d] * x2[d]
		v3 += a3[d] * x3[d]
	}
	out = out[:4]
	out[0] = v0
	out[1] = v1
	out[2] = v2
	out[3] = v3
}

// bandBlock8 is bandBlockGeneric unrolled for w = 8: two quads of rows with
// scalar accumulators (eight would spill), constant trip counts.
func bandBlock8(out, ini, band, xs []float64) {
	band = band[:64]
	xs = xs[:15]
	ini = ini[:8]
	out = out[:8]
	{
		a0 := band[0:8:8]
		a1 := band[8:16:16]
		a2 := band[16:24:24]
		a3 := band[24:32:32]
		x0 := xs[0:8:8]
		x1 := xs[1:9:9]
		x2 := xs[2:10:10]
		x3 := xs[3:11:11]
		v0, v1, v2, v3 := ini[0], ini[1], ini[2], ini[3]
		for d := 0; d < 8; d++ {
			v0 += a0[d] * x0[d]
			v1 += a1[d] * x1[d]
			v2 += a2[d] * x2[d]
			v3 += a3[d] * x3[d]
		}
		out[0] = v0
		out[1] = v1
		out[2] = v2
		out[3] = v3
	}
	{
		a4 := band[32:40:40]
		a5 := band[40:48:48]
		a6 := band[48:56:56]
		a7 := band[56:64:64]
		x4 := xs[4:12:12]
		x5 := xs[5:13:13]
		x6 := xs[6:14:14]
		x7 := xs[7:15:15]
		v4, v5, v6, v7 := ini[4], ini[5], ini[6], ini[7]
		for d := 0; d < 8; d++ {
			v4 += a4[d] * x4[d]
			v5 += a5[d] * x5[d]
			v6 += a6[d] * x6[d]
			v7 += a7[d] * x7[d]
		}
		out[4] = v4
		out[5] = v5
		out[6] = v6
		out[7] = v7
	}
}

// gridBlockGeneric replays one w-row block straight off the padded grid:
// row a starts from ini[a], adds its Ū run u[a·s+c]·xu[c] for c = a..w−1
// (diagonals 0..w−1−a), then its L̄ run lo[a·s+c]·xl[c] for c = 0..a−1
// (diagonals w−a..w−1). s is the padded row stride. Row 0 has no L̄ run —
// the empty-run case the compiler never materializes.
func gridBlockGeneric(out, ini, u, lo, xu, xl []float64, s, w int) {
	for a := 0; a < w; a++ {
		v := dotRun(ini[a], u[a*s+a:a*s+w], xu[a:])
		out[a] = dotRun(v, lo[a*s:a*s+a], xl)
	}
}

// gridBlock4 is gridBlockGeneric unrolled for w = 4, diagonal-major: at
// diagonal d, row a reads u[a·s+a+d]·xu[a+d] while a+d < 4 and wraps to
// lo[a·s+a+d−4]·xl[a+d−4] after. Each row's terms stay in increasing-d
// order; the four independent accumulator chains interleave for ILP.
func gridBlock4(out, ini, u, lo, xu, xl []float64, s int) {
	xu = xu[:4:4]
	xl = xl[:4:4]
	ini = ini[:4]
	v0, v1, v2, v3 := ini[0], ini[1], ini[2], ini[3]
	// d = 0
	v0 += u[0] * xu[0]
	v1 += u[s+1] * xu[1]
	v2 += u[2*s+2] * xu[2]
	v3 += u[3*s+3] * xu[3]
	// d = 1
	v0 += u[1] * xu[1]
	v1 += u[s+2] * xu[2]
	v2 += u[2*s+3] * xu[3]
	v3 += lo[3*s] * xl[0]
	// d = 2
	v0 += u[2] * xu[2]
	v1 += u[s+3] * xu[3]
	v2 += lo[2*s] * xl[0]
	v3 += lo[3*s+1] * xl[1]
	// d = 3
	v0 += u[3] * xu[3]
	v1 += lo[s] * xl[0]
	v2 += lo[2*s+1] * xl[1]
	v3 += lo[3*s+2] * xl[2]
	out = out[:4]
	out[0] = v0
	out[1] = v1
	out[2] = v2
	out[3] = v3
}

// gridBlock4x2 replays one w = 4 block for two independent right-hand-side
// vectors in a single pass — the batched-replay kernel behind ExecMany. Each
// coefficient is loaded once and feeds both vectors' accumulator chains,
// doubling the independent add chains per load: the single-vector kernel's
// four chains leave the adder latency-bound, eight keep it busy. Per vector
// every row's terms stay in gridBlock4's increasing-diagonal order (the two
// vectors are independent problems; interleaving them never reassociates
// within a row), so each output is bit-identical to two separate calls.
func gridBlock4x2(out0, out1, ini0, ini1, u, lo, xu0, xl0, xu1, xl1 []float64, s int) {
	xu0 = xu0[:4:4]
	xl0 = xl0[:4:4]
	xu1 = xu1[:4:4]
	xl1 = xl1[:4:4]
	ini0 = ini0[:4]
	ini1 = ini1[:4]
	p0, p1, p2, p3 := ini0[0], ini0[1], ini0[2], ini0[3]
	q0, q1, q2, q3 := ini1[0], ini1[1], ini1[2], ini1[3]
	// d = 0
	c := u[0]
	p0 += c * xu0[0]
	q0 += c * xu1[0]
	c = u[s+1]
	p1 += c * xu0[1]
	q1 += c * xu1[1]
	c = u[2*s+2]
	p2 += c * xu0[2]
	q2 += c * xu1[2]
	c = u[3*s+3]
	p3 += c * xu0[3]
	q3 += c * xu1[3]
	// d = 1
	c = u[1]
	p0 += c * xu0[1]
	q0 += c * xu1[1]
	c = u[s+2]
	p1 += c * xu0[2]
	q1 += c * xu1[2]
	c = u[2*s+3]
	p2 += c * xu0[3]
	q2 += c * xu1[3]
	c = lo[3*s]
	p3 += c * xl0[0]
	q3 += c * xl1[0]
	// d = 2
	c = u[2]
	p0 += c * xu0[2]
	q0 += c * xu1[2]
	c = u[s+3]
	p1 += c * xu0[3]
	q1 += c * xu1[3]
	c = lo[2*s]
	p2 += c * xl0[0]
	q2 += c * xl1[0]
	c = lo[3*s+1]
	p3 += c * xl0[1]
	q3 += c * xl1[1]
	// d = 3
	c = u[3]
	p0 += c * xu0[3]
	q0 += c * xu1[3]
	c = lo[s]
	p1 += c * xl0[0]
	q1 += c * xl1[0]
	c = lo[2*s+1]
	p2 += c * xl0[1]
	q2 += c * xl1[1]
	c = lo[3*s+2]
	p3 += c * xl0[2]
	q3 += c * xl1[2]
	out0 = out0[:4]
	out0[0] = p0
	out0[1] = p1
	out0[2] = p2
	out0[3] = p3
	out1 = out1[:4]
	out1[0] = q0
	out1[1] = q1
	out1[2] = q2
	out1[3] = q3
}

// gridBlock8x2 is the two-vector batched kernel for w = 8: two diagonal-major
// quads of rows, each quad carrying both vectors' accumulators (eight live
// chains per quad — the same load-once/feed-both structure as gridBlock4x2).
func gridBlock8x2(out0, out1, ini0, ini1, u, lo, xu0, xl0, xu1, xl1 []float64, s int) {
	xu0 = xu0[:8:8]
	xl0 = xl0[:8:8]
	xu1 = xu1[:8:8]
	xl1 = xl1[:8:8]
	ini0 = ini0[:8]
	ini1 = ini1[:8]
	out0 = out0[:8]
	out1 = out1[:8]
	{
		p0, p1, p2, p3 := ini0[0], ini0[1], ini0[2], ini0[3]
		q0, q1, q2, q3 := ini1[0], ini1[1], ini1[2], ini1[3]
		// d = 0
		c := u[0]
		p0 += c * xu0[0]
		q0 += c * xu1[0]
		c = u[s+1]
		p1 += c * xu0[1]
		q1 += c * xu1[1]
		c = u[2*s+2]
		p2 += c * xu0[2]
		q2 += c * xu1[2]
		c = u[3*s+3]
		p3 += c * xu0[3]
		q3 += c * xu1[3]
		// d = 1
		c = u[1]
		p0 += c * xu0[1]
		q0 += c * xu1[1]
		c = u[s+2]
		p1 += c * xu0[2]
		q1 += c * xu1[2]
		c = u[2*s+3]
		p2 += c * xu0[3]
		q2 += c * xu1[3]
		c = u[3*s+4]
		p3 += c * xu0[4]
		q3 += c * xu1[4]
		// d = 2
		c = u[2]
		p0 += c * xu0[2]
		q0 += c * xu1[2]
		c = u[s+3]
		p1 += c * xu0[3]
		q1 += c * xu1[3]
		c = u[2*s+4]
		p2 += c * xu0[4]
		q2 += c * xu1[4]
		c = u[3*s+5]
		p3 += c * xu0[5]
		q3 += c * xu1[5]
		// d = 3
		c = u[3]
		p0 += c * xu0[3]
		q0 += c * xu1[3]
		c = u[s+4]
		p1 += c * xu0[4]
		q1 += c * xu1[4]
		c = u[2*s+5]
		p2 += c * xu0[5]
		q2 += c * xu1[5]
		c = u[3*s+6]
		p3 += c * xu0[6]
		q3 += c * xu1[6]
		// d = 4
		c = u[4]
		p0 += c * xu0[4]
		q0 += c * xu1[4]
		c = u[s+5]
		p1 += c * xu0[5]
		q1 += c * xu1[5]
		c = u[2*s+6]
		p2 += c * xu0[6]
		q2 += c * xu1[6]
		c = u[3*s+7]
		p3 += c * xu0[7]
		q3 += c * xu1[7]
		// d = 5
		c = u[5]
		p0 += c * xu0[5]
		q0 += c * xu1[5]
		c = u[s+6]
		p1 += c * xu0[6]
		q1 += c * xu1[6]
		c = u[2*s+7]
		p2 += c * xu0[7]
		q2 += c * xu1[7]
		c = lo[3*s]
		p3 += c * xl0[0]
		q3 += c * xl1[0]
		// d = 6
		c = u[6]
		p0 += c * xu0[6]
		q0 += c * xu1[6]
		c = u[s+7]
		p1 += c * xu0[7]
		q1 += c * xu1[7]
		c = lo[2*s]
		p2 += c * xl0[0]
		q2 += c * xl1[0]
		c = lo[3*s+1]
		p3 += c * xl0[1]
		q3 += c * xl1[1]
		// d = 7
		c = u[7]
		p0 += c * xu0[7]
		q0 += c * xu1[7]
		c = lo[s]
		p1 += c * xl0[0]
		q1 += c * xl1[0]
		c = lo[2*s+1]
		p2 += c * xl0[1]
		q2 += c * xl1[1]
		c = lo[3*s+2]
		p3 += c * xl0[2]
		q3 += c * xl1[2]
		out0[0] = p0
		out0[1] = p1
		out0[2] = p2
		out0[3] = p3
		out1[0] = q0
		out1[1] = q1
		out1[2] = q2
		out1[3] = q3
	}
	{
		p4, p5, p6, p7 := ini0[4], ini0[5], ini0[6], ini0[7]
		q4, q5, q6, q7 := ini1[4], ini1[5], ini1[6], ini1[7]
		// d = 0
		c := u[4*s+4]
		p4 += c * xu0[4]
		q4 += c * xu1[4]
		c = u[5*s+5]
		p5 += c * xu0[5]
		q5 += c * xu1[5]
		c = u[6*s+6]
		p6 += c * xu0[6]
		q6 += c * xu1[6]
		c = u[7*s+7]
		p7 += c * xu0[7]
		q7 += c * xu1[7]
		// d = 1
		c = u[4*s+5]
		p4 += c * xu0[5]
		q4 += c * xu1[5]
		c = u[5*s+6]
		p5 += c * xu0[6]
		q5 += c * xu1[6]
		c = u[6*s+7]
		p6 += c * xu0[7]
		q6 += c * xu1[7]
		c = lo[7*s]
		p7 += c * xl0[0]
		q7 += c * xl1[0]
		// d = 2
		c = u[4*s+6]
		p4 += c * xu0[6]
		q4 += c * xu1[6]
		c = u[5*s+7]
		p5 += c * xu0[7]
		q5 += c * xu1[7]
		c = lo[6*s]
		p6 += c * xl0[0]
		q6 += c * xl1[0]
		c = lo[7*s+1]
		p7 += c * xl0[1]
		q7 += c * xl1[1]
		// d = 3
		c = u[4*s+7]
		p4 += c * xu0[7]
		q4 += c * xu1[7]
		c = lo[5*s]
		p5 += c * xl0[0]
		q5 += c * xl1[0]
		c = lo[6*s+1]
		p6 += c * xl0[1]
		q6 += c * xl1[1]
		c = lo[7*s+2]
		p7 += c * xl0[2]
		q7 += c * xl1[2]
		// d = 4
		c = lo[4*s]
		p4 += c * xl0[0]
		q4 += c * xl1[0]
		c = lo[5*s+1]
		p5 += c * xl0[1]
		q5 += c * xl1[1]
		c = lo[6*s+2]
		p6 += c * xl0[2]
		q6 += c * xl1[2]
		c = lo[7*s+3]
		p7 += c * xl0[3]
		q7 += c * xl1[3]
		// d = 5
		c = lo[4*s+1]
		p4 += c * xl0[1]
		q4 += c * xl1[1]
		c = lo[5*s+2]
		p5 += c * xl0[2]
		q5 += c * xl1[2]
		c = lo[6*s+3]
		p6 += c * xl0[3]
		q6 += c * xl1[3]
		c = lo[7*s+4]
		p7 += c * xl0[4]
		q7 += c * xl1[4]
		// d = 6
		c = lo[4*s+2]
		p4 += c * xl0[2]
		q4 += c * xl1[2]
		c = lo[5*s+3]
		p5 += c * xl0[3]
		q5 += c * xl1[3]
		c = lo[6*s+4]
		p6 += c * xl0[4]
		q6 += c * xl1[4]
		c = lo[7*s+5]
		p7 += c * xl0[5]
		q7 += c * xl1[5]
		// d = 7
		c = lo[4*s+3]
		p4 += c * xl0[3]
		q4 += c * xl1[3]
		c = lo[5*s+4]
		p5 += c * xl0[4]
		q5 += c * xl1[4]
		c = lo[6*s+5]
		p6 += c * xl0[5]
		q6 += c * xl1[5]
		c = lo[7*s+6]
		p7 += c * xl0[6]
		q7 += c * xl1[6]
		out0[4] = p4
		out0[5] = p5
		out0[6] = p6
		out0[7] = p7
		out1[4] = q4
		out1[5] = q5
		out1[6] = q6
		out1[7] = q7
	}
}

// gridBlock8 is gridBlockGeneric unrolled for w = 8: two diagonal-major
// quads of rows (eight live accumulators would spill).
func gridBlock8(out, ini, u, lo, xu, xl []float64, s int) {
	xu = xu[:8:8]
	xl = xl[:8:8]
	ini = ini[:8]
	out = out[:8]
	{
		v0, v1, v2, v3 := ini[0], ini[1], ini[2], ini[3]
		// d = 0
		v0 += u[0] * xu[0]
		v1 += u[s+1] * xu[1]
		v2 += u[2*s+2] * xu[2]
		v3 += u[3*s+3] * xu[3]
		// d = 1
		v0 += u[1] * xu[1]
		v1 += u[s+2] * xu[2]
		v2 += u[2*s+3] * xu[3]
		v3 += u[3*s+4] * xu[4]
		// d = 2
		v0 += u[2] * xu[2]
		v1 += u[s+3] * xu[3]
		v2 += u[2*s+4] * xu[4]
		v3 += u[3*s+5] * xu[5]
		// d = 3
		v0 += u[3] * xu[3]
		v1 += u[s+4] * xu[4]
		v2 += u[2*s+5] * xu[5]
		v3 += u[3*s+6] * xu[6]
		// d = 4
		v0 += u[4] * xu[4]
		v1 += u[s+5] * xu[5]
		v2 += u[2*s+6] * xu[6]
		v3 += u[3*s+7] * xu[7]
		// d = 5
		v0 += u[5] * xu[5]
		v1 += u[s+6] * xu[6]
		v2 += u[2*s+7] * xu[7]
		v3 += lo[3*s] * xl[0]
		// d = 6
		v0 += u[6] * xu[6]
		v1 += u[s+7] * xu[7]
		v2 += lo[2*s] * xl[0]
		v3 += lo[3*s+1] * xl[1]
		// d = 7
		v0 += u[7] * xu[7]
		v1 += lo[s] * xl[0]
		v2 += lo[2*s+1] * xl[1]
		v3 += lo[3*s+2] * xl[2]
		out[0] = v0
		out[1] = v1
		out[2] = v2
		out[3] = v3
	}
	{
		v4, v5, v6, v7 := ini[4], ini[5], ini[6], ini[7]
		// d = 0
		v4 += u[4*s+4] * xu[4]
		v5 += u[5*s+5] * xu[5]
		v6 += u[6*s+6] * xu[6]
		v7 += u[7*s+7] * xu[7]
		// d = 1
		v4 += u[4*s+5] * xu[5]
		v5 += u[5*s+6] * xu[6]
		v6 += u[6*s+7] * xu[7]
		v7 += lo[7*s] * xl[0]
		// d = 2
		v4 += u[4*s+6] * xu[6]
		v5 += u[5*s+7] * xu[7]
		v6 += lo[6*s] * xl[0]
		v7 += lo[7*s+1] * xl[1]
		// d = 3
		v4 += u[4*s+7] * xu[7]
		v5 += lo[5*s] * xl[0]
		v6 += lo[6*s+1] * xl[1]
		v7 += lo[7*s+2] * xl[2]
		// d = 4
		v4 += lo[4*s] * xl[0]
		v5 += lo[5*s+1] * xl[1]
		v6 += lo[6*s+2] * xl[2]
		v7 += lo[7*s+3] * xl[3]
		// d = 5
		v4 += lo[4*s+1] * xl[1]
		v5 += lo[5*s+2] * xl[2]
		v6 += lo[6*s+3] * xl[3]
		v7 += lo[7*s+4] * xl[4]
		// d = 6
		v4 += lo[4*s+2] * xl[2]
		v5 += lo[5*s+3] * xl[3]
		v6 += lo[6*s+4] * xl[4]
		v7 += lo[7*s+5] * xl[5]
		// d = 7
		v4 += lo[4*s+3] * xl[3]
		v5 += lo[5*s+4] * xl[4]
		v6 += lo[6*s+5] * xl[5]
		v7 += lo[7*s+6] * xl[6]
		out[4] = v4
		out[5] = v5
		out[6] = v6
		out[7] = v7
	}
}
