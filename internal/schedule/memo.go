package schedule

import "repro/internal/dbt"

// PlanMemo is a single-goroutine memo of resolved plans, layered in front
// of the process-wide caches. The global caches are concurrency-safe but
// their sync.Map lookups box the key on every call — a per-call allocation
// the zero-alloc solver path cannot afford. A PlanMemo remembers every
// (shape → plan) pair its owner has resolved in plain Go maps (struct keys,
// no boxing, no allocation on the steady-state hit path), so a scratch
// arena replaying many same-shape passes touches the global caches once per
// shape. Plans are immutable and shared freely, so memoizing them is safe;
// the memo itself must not be shared between goroutines — each executor
// array owns one.
type PlanMemo struct {
	mv  map[matvecKey]*MatVec
	mm  map[matmulKey]*MatMul
	tri map[trisolveKey]*TriSolve
	sp  map[sparseKey]*SparseMatVec
}

// NewPlanMemo returns an empty memo.
func NewPlanMemo() *PlanMemo {
	return &PlanMemo{
		mv:  make(map[matvecKey]*MatVec),
		mm:  make(map[matmulKey]*MatMul),
		tri: make(map[trisolveKey]*TriSolve),
		sp:  make(map[sparseKey]*SparseMatVec),
	}
}

// MatVecFor is MatVecFor through the memo: the owner's previously resolved
// plan when the shape has been seen, the shared cache otherwise.
func (pm *PlanMemo) MatVecFor(t *dbt.MatVec, overlap bool) (*MatVec, error) {
	key := matvecKey{w: t.W, nbar: t.NBar, mbar: t.MBar, variant: 0, overlap: overlap}
	if s, ok := pm.mv[key]; ok {
		return s, nil
	}
	s, err := MatVecFor(t, overlap)
	if err != nil {
		return nil, err
	}
	pm.mv[key] = s
	return s, nil
}

// MatMulFor is MatMulFor through the memo.
func (pm *PlanMemo) MatMulFor(t *dbt.MatMul) *MatMul {
	key := matmulKey{w: t.W, nbar: t.NBar, pbar: t.PBar, mbar: t.MBar}
	if s, ok := pm.mm[key]; ok {
		return s
	}
	s := MatMulFor(t)
	pm.mm[key] = s
	return s
}

// TriSolveFor is TriSolveFor through the memo.
func (pm *PlanMemo) TriSolveFor(n, w int) *TriSolve {
	key := trisolveKey{w: w, n: n}
	if s, ok := pm.tri[key]; ok {
		return s
	}
	s := TriSolveFor(n, w)
	pm.tri[key] = s
	return s
}

// SparseMatVecFor is SparseMatVecFor through the memo. The memo key is the
// same lossy (shape, digest) pair as the global cache's, so a hit is
// verified against the full pattern before it is trusted; a collision falls
// through to the global cache and the latest pattern takes the bucket. The
// steady-state hit path — digest, map load, pattern compare — allocates
// nothing, which is what lets the stream's sparse Into jobs run warm at
// 0 allocs/op.
func (pm *PlanMemo) SparseMatVecFor(w, nbar, mbar int, retained [][]int) (*SparseMatVec, error) {
	key := sparseKey{w: w, nbar: nbar, mbar: mbar, digest: patternDigest(retained)}
	if s, ok := pm.sp[key]; ok && s.MatchesPattern(retained) {
		return s, nil
	}
	s, err := SparseMatVecFor(w, nbar, mbar, retained)
	if err != nil {
		return nil, err
	}
	pm.sp[key] = s
	return s, nil
}
