package schedule

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the workload-agnostic half of the engine: the plan/replay
// contract every compiled workload follows, the shape-keyed plan caches,
// and the error every caller gets when a workload has no compiled plan.
//
// A *plan* is the complete event schedule of one workload at one shape —
// everything the structural simulator would discover cycle by cycle
// (initialization sources, accumulation orders, emit/inject stamps,
// feedback topology, activity counts), precomputed as dense index arrays.
// A plan is immutable after compilation and shared freely across
// goroutines; *replay* (the plan's Exec method) walks those arrays over one
// problem's data in O(work) with zero allocations. Four workloads compile
// today — matvec (linear array), matmul (hexagonal array), trisolve
// (triangular solver array), and the sparse matvec (linear array, one
// program per retained row band) — and cache.go holds one cache per
// workload, all built on the generic planCache below. Three are shape-keyed;
// the sparse matvec's schedule depends on the retained-block pattern (data,
// not shape), so its cache is keyed by (shape, pattern digest) with full
// pattern verification on every hit (see sparse.go).

// Workload names one systolic workload the engine knows about. It appears
// in error messages and identifies the per-workload plan cache.
type Workload string

// The workloads of the repository. Compiled plans exist for all four:
// MatVec, MatMul and TriSolve are shape-keyed, and SparseMatVec — whose
// schedule depends on the block-sparsity pattern, data rather than shape —
// is pattern-keyed (shape plus a collision-checked pattern digest).
const (
	WorkloadMatVec       Workload = "matvec"
	WorkloadMatMul       Workload = "matmul"
	WorkloadTriSolve     Workload = "trisolve"
	WorkloadSparseMatVec Workload = "sparse-matvec"
)

// ErrUnsupported is wrapped by every error returned for a workload that has
// no compiled plan; match it with errors.Is.
var ErrUnsupported = errors.New("no compiled plan for workload")

// Unsupported returns the error for forcing the compiled engine onto a
// workload that has no compiled plan. The reason explains *why* no plan
// exists, so the caller is told the fallback to use rather than silently
// getting one.
func Unsupported(w Workload, reason string) error {
	return fmt.Errorf("schedule: %w %q: %s (use the structural engine)", ErrUnsupported, string(w), reason)
}

// planCache is a process-wide concurrency-safe map from shape key to
// compiled plan. Schedules depend only on problem shape, and the
// sweep/soak/bench harnesses resolve the same shapes thousands of times —
// the steady state is one map load per solve. The cache is bounded:
// distinct shapes are few in practice, but a pathological workload cycling
// through unbounded shapes would otherwise grow it forever, so past
// maxCached entries the map is dropped and rebuilt (a full re-compile is
// cheap relative to the workload that caused it).
type planCache[K comparable, P any] struct {
	m     atomic.Pointer[sync.Map] // K → P
	count atomic.Int64
}

const maxCached = 4096

// newPlanCache returns an empty cache.
func newPlanCache[K comparable, P any]() *planCache[K, P] {
	c := &planCache[K, P]{}
	c.m.Store(&sync.Map{})
	return c
}

// get returns the cached plan for key, compiling and inserting it on a
// miss. Compilation errors are not cached (the next caller retries).
func (c *planCache[K, P]) get(key K, compile func() (P, error)) (P, error) {
	cache := c.m.Load()
	if p, ok := cache.Load(key); ok {
		return p.(P), nil
	}
	p, err := compile()
	if err != nil {
		var zero P
		return zero, err
	}
	if _, loaded := cache.LoadOrStore(key, p); !loaded {
		if c.count.Add(1) > maxCached {
			c.m.Store(&sync.Map{})
			c.count.Store(0)
		}
	}
	return p, nil
}
