package schedule

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/dbt"
)

// Init kinds of a product-band position's accumulator.
const (
	matmulZero     = 0 // starts at 0 (structurally absent init)
	matmulExt      = 1 // initIdx indexes the external init values (E pieces)
	matmulFeedback = 2 // initIdx is the flat output index of the source position
)

// DelayBin is one bucket of a feedback-delay histogram: Count edges with
// exactly Delay cycles between emit and inject. Histograms are canonical
// sorted-by-Delay slices (nil when empty) so the oracle and compiled
// engines compare with a plain DeepEqual and stats copies are a single
// allocation instead of a map rebuild.
type DelayBin struct {
	Delay, Count int
}

// BinsFromHistogram converts a delay→count map (the oracle's
// systolic.DelayHistogram shape) into the canonical sorted bin slice.
func BinsFromHistogram(h map[int]int) []DelayBin {
	if len(h) == 0 {
		return nil
	}
	bins := make([]DelayBin, 0, len(h))
	for d, c := range h {
		bins = append(bins, DelayBin{Delay: d, Count: c})
	}
	// slices.SortFunc, not sort.Slice: the oracle converts histograms per
	// solve, and sort.Slice's reflect-based swapper allocates.
	slices.SortFunc(bins, func(a, b DelayBin) int { return a.Delay - b.Delay })
	return bins
}

// BinCount returns the edge count recorded for delay in a bin slice — 0
// when the delay was never observed.
func BinCount(bins []DelayBin, delay int) int {
	for _, b := range bins {
		if b.Delay == delay {
			return b.Count
		}
	}
	return 0
}

// BinDelays returns the distinct delays of a histogram, already sorted.
func BinDelays(bins []DelayBin) []int {
	out := make([]int, len(bins))
	for i, b := range bins {
		out[i] = b.Delay
	}
	return out
}

// copyBins returns an independent copy of a bin slice (nil stays nil).
func copyBins(bins []DelayBin) []DelayBin {
	if bins == nil {
		return nil
	}
	return append([]DelayBin(nil), bins...)
}

// ExtInit locates the E-block element injected at one position: element
// (A, B) of triangular piece P of E block (R, S), resolved per Solve call
// with dbt.MatMul.EPieceAt. The descriptors are shape-only; the values are
// data.
type ExtInit struct {
	R, S int
	P    dbt.Piece
	A, B int
}

// matmulOp is one compiled result position: an initialization plus a run of
// n stride-1 multiply–accumulates over the packed bands.
type matmulOp struct {
	out      int32 // flat output index ρ·(2w−1) + (γ−ρ) + w−1
	aOff     int32 // packed Â offset of the first term
	bOff     int32 // packed B̂ offset of the first term
	n        int32 // term count
	initKind uint8
	initIdx  int32
}

// MatMul is a compiled schedule for the w×w hexagonal array with spiral
// feedback: the complete accumulation plan of one DBT matrix–matrix problem
// of a given shape.
type MatMul struct {
	// W, NBar, PBar, MBar identify the shape; Dim = p̄n̄m̄w + w − 1 the band
	// matrix dimension; Band = 2w−1 the product band width.
	W, NBar, PBar, MBar int
	Dim, Band           int

	// T is the step count the array would measure; MACs the total PE
	// operation count (the oracle's Activity total).
	T, MACs int

	// regDelays and irrDelays are the feedback-delay histograms, split as
	// the paper does (§3), precomputed sorted at compile time — CopyDelays
	// hands out copies so the cached plan stays immutable.
	regDelays, irrDelays []DelayBin

	// ExtInits lists the E-piece descriptors in initIdx order.
	ExtInits []ExtInit

	ops []matmulOp
}

// compileMatMul builds the schedule for the shape of t. Only shape methods
// of t are consulted (PieceAt, InitFor, PieceColOffset) — never data.
func compileMatMul(t *dbt.MatMul) *MatMul {
	w := t.W
	dim := t.Dim()
	band := 2*w - 1
	s := &MatMul{
		W: w, NBar: t.NBar, PBar: t.PBar, MBar: t.MBar,
		Dim: dim, Band: band,
		T: 3*(dim-1) + w + 1,
	}
	regular := make(map[int]int)
	irregular := make(map[int]int)

	// A c-item for result position (ρ, γ) enters the array at cycle
	// ρ+γ+max(ρ,γ) and accumulates Â[ρ][κ]·B̂[κ][γ] for κ increasing from
	// max(ρ,γ) to min(min(ρ,γ)+w−1, Dim−1) — one term per cycle — before
	// leaving at cycle ρ+γ+min(ρ,γ)+w−1 and becoming available one cycle
	// later. Dependencies (spiral feedback) always point at positions whose
	// availability precedes the consumer's entry, so sorting by entry cycle
	// is a topological order.
	type posOp struct {
		inject int
		op     matmulOp
	}
	ops := make([]posOp, 0, dim*band)
	flat := func(rho, gamma int) int32 { return int32(rho*band + gamma - rho + w - 1) }
	emitOf := func(rho, gamma int) int {
		lo := rho
		if gamma < lo {
			lo = gamma
		}
		return rho + gamma + lo + w
	}
	for rho := 0; rho < dim; rho++ {
		for f := -(w - 1); f <= w-1; f++ {
			gamma := rho + f
			if gamma < 0 || gamma >= dim {
				continue
			}
			k0 := rho
			if gamma > k0 {
				k0 = gamma
			}
			k1 := rho
			if gamma < k1 {
				k1 = gamma
			}
			k1 += w - 1
			if k1 >= dim {
				k1 = dim - 1
			}
			op := matmulOp{
				out:  flat(rho, gamma),
				aOff: int32(rho*w + k0 - rho),
				bOff: int32(gamma*w + k0 - gamma),
				n:    int32(k1 - k0 + 1),
			}
			inject := rho + gamma + k0
			blk, piece, la, lb := t.PieceAt(rho, gamma)
			switch init := t.InitFor(blk, piece); init.Kind {
			case dbt.InitE:
				op.initKind = matmulExt
				op.initIdx = int32(len(s.ExtInits))
				s.ExtInits = append(s.ExtInits, ExtInit{
					R: init.R, S: init.S, P: dbt.EPieceForInit(piece), A: la, B: lb,
				})
			case dbt.InitFeedback:
				srcRho := init.Row*w + la
				srcGamma := init.Row*w + t.PieceColOffset(init.Piece) + lb
				if srcRho < 0 || srcRho >= dim || srcGamma < 0 || srcGamma >= dim {
					panic(fmt.Sprintf("schedule: feedback source (%d,%d) outside band matrix %d", srcRho, srcGamma, dim))
				}
				emit := emitOf(srcRho, srcGamma)
				if emit > inject {
					panic(fmt.Sprintf("schedule: acausal matmul feedback (%d,%d)→(%d,%d): emit %d after inject %d",
						srcRho, srcGamma, rho, gamma, emit, inject))
				}
				op.initKind = matmulFeedback
				op.initIdx = flat(srcRho, srcGamma)
				if init.Irregular {
					irregular[inject-emit]++
				} else {
					regular[inject-emit]++
				}
			}
			s.MACs += int(op.n)
			ops = append(ops, posOp{inject, op})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].inject < ops[j].inject })
	s.ops = make([]matmulOp, len(ops))
	for i, p := range ops {
		s.ops[i] = p.op
	}
	s.regDelays = BinsFromHistogram(regular)
	s.irrDelays = BinsFromHistogram(irregular)
	return s
}

// OLen returns the length of the flat output band buffer: Dim·(2w−1).
func (s *MatMul) OLen() int { return s.Dim * s.Band }

// OAt reads the output band value O[ρ][γ] from a buffer filled by Exec.
// Out-of-band positions read 0 (mirroring hex.ProgResult.At), and so do
// positions outside the band matrix: their flat slots exist in the buffer
// but no op ever writes them, which matters because Exec output buffers
// may come from the pool uninitialized.
func (s *MatMul) OAt(o []float64, rho, gamma int) float64 {
	f := gamma - rho
	if f <= -s.W || f >= s.W || rho < 0 || rho >= s.Dim || gamma < 0 || gamma >= s.Dim {
		return 0
	}
	return o[rho*s.Band+f+s.W-1]
}

// Exec runs the compiled schedule over one problem's data. aPack/bPack are
// the packed bands (dbt.PackAHat/PackBHat layouts, len Dim·w), ext the
// resolved E-piece values aligned with ExtInits (nil allowed when empty),
// and o the output band buffer (len ≥ OLen). Exec performs no allocation;
// each position is one contiguous run of both packed bands accumulated in
// increasing-κ (cycle) order from the same initialization the array would
// inject, so results are bit-identical to the structural simulator.
func (s *MatMul) Exec(aPack, bPack, ext, o []float64) {
	if len(aPack) < s.Dim*s.W || len(bPack) < s.Dim*s.W || len(o) < s.OLen() || len(ext) < len(s.ExtInits) {
		panic(fmt.Sprintf("schedule: Exec buffer sizes a=%d b=%d ext=%d o=%d for dim=%d w=%d ext=%d",
			len(aPack), len(bPack), len(ext), len(o), s.Dim, s.W, len(s.ExtInits)))
	}
	for i := range s.ops {
		op := &s.ops[i]
		var v float64
		switch op.initKind {
		case matmulExt:
			v = ext[op.initIdx]
		case matmulFeedback:
			v = o[op.initIdx]
		}
		as := aPack[op.aOff : op.aOff+op.n]
		bs := bPack[op.bOff : op.bOff+op.n]
		// Re-slice so the range body is provably in bounds for both runs.
		bs = bs[:len(as)]
		for k, a := range as {
			v += a * bs[k]
		}
		o[op.out] = v
	}
}

// Bytes returns the resident size of the compiled descriptors — the memory
// the plan cache pays per shape.
func (s *MatMul) Bytes() int {
	return len(s.ops)*20 + len(s.ExtInits)*40 + (len(s.regDelays)+len(s.irrDelays))*16
}

// Utilization returns MACs/(w²·T) over the measured operation count.
func (s *MatMul) Utilization() float64 {
	if s.T == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.W*s.W) * float64(s.T))
}

// CopyDelays returns independent copies of the precomputed sorted delay
// histograms (callers may mutate their stats; the cached schedule must stay
// immutable). One small slice copy each — the former per-call map rebuild
// was the last allocation on the hex stats path.
func (s *MatMul) CopyDelays() (regular, irregular []DelayBin) {
	return copyBins(s.regDelays), copyBins(s.irrDelays)
}
