package schedule

import (
	"sync"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// Transform pools. Building a DBT transform allocates its padded block grid
// (O(n·m) storage), and the compiled engine builds one per solve — by far
// the largest remaining allocation of the fast path once plans and scratch
// buffers are cached. These pools recycle transform structures across
// solves: Get rebuilds a pooled transform in place (dbt.Reset reuses the
// grid storage), Put returns it. A pooled transform is exclusively owned
// between Get and Put, so concurrent solves never share one; the pools are
// the process-wide complement of the per-arena transforms that
// internal/core's pass arenas retain privately.

var (
	matvecTransformPool = sync.Pool{New: func() interface{} { return &dbt.MatVec{} }}
	matmulTransformPool = sync.Pool{New: func() interface{} { return &dbt.MatMul{} }}
)

// GetMatVec returns a pooled DBT-by-rows transform rebuilt for a and w.
// Pair with PutMatVec once the solve no longer touches the transform.
func GetMatVec(a *matrix.Dense, w int) *dbt.MatVec {
	t := matvecTransformPool.Get().(*dbt.MatVec)
	t.Reset(a, w)
	return t
}

// PutMatVec returns a transform obtained from GetMatVec to the pool. The
// caller must not use t afterwards.
func PutMatVec(t *dbt.MatVec) { matvecTransformPool.Put(t) }

// GetMatMul returns a pooled matrix–matrix transform rebuilt for a, b and
// w. Pair with PutMatMul once the solve no longer touches the transform.
func GetMatMul(a, b *matrix.Dense, w int) *dbt.MatMul {
	t := matmulTransformPool.Get().(*dbt.MatMul)
	t.Reset(a, b, w)
	return t
}

// PutMatMul returns a transform obtained from GetMatMul to the pool. The
// caller must not use t afterwards.
func PutMatMul(t *dbt.MatMul) { matmulTransformPool.Put(t) }
