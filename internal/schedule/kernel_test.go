package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// These tests pin the replay-kernel contract (DESIGN §12): the unrolled
// width specializations must be bit-identical to the generic run kernels on
// full-precision random data (same accumulation order, so every float64
// rounding step matches), and the compiled run descriptors must expand to
// exactly the per-MAC gather sequence they compress away. Data here is
// full-precision (NormFloat64) on purpose — any reassociation or reordering
// inside a kernel shows up as a bitwise mismatch.

func randFloats(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// randDense fills an n×m dense matrix with full-precision values.
func randDense(rng *rand.Rand, n, m int) *matrix.Dense {
	a := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	return a
}

func TestKernelForSelection(t *testing.T) {
	if genericKernelsOnly {
		t.Skip("REPRO_GENERIC_KERNELS set: width specializations disabled")
	}
	if kernelFor(4) != kernW4 {
		t.Error("kernelFor(4) is not the w=4 specialization")
	}
	if kernelFor(8) != kernW8 {
		t.Error("kernelFor(8) is not the w=8 specialization")
	}
	for _, w := range []int{1, 2, 3, 5, 6, 7, 9, 16} {
		if kernelFor(w) != kernGeneric {
			t.Errorf("kernelFor(%d) is not generic", w)
		}
	}
	saved := genericKernelsOnly
	genericKernelsOnly = true
	defer func() { genericKernelsOnly = saved }()
	for _, w := range []int{4, 8} {
		if kernelFor(w) != kernGeneric {
			t.Errorf("kernelFor(%d) must be generic under REPRO_GENERIC_KERNELS", w)
		}
	}
}

// TestBandKernelsPinned: bandBlock4/bandBlock8 bit-identical to
// bandBlockGeneric on random blocks.
func TestBandKernelsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, w := range []int{4, 8} {
		for trial := 0; trial < 50; trial++ {
			band := randFloats(rng, w*w)
			xs := randFloats(rng, 2*w-1)
			ini := randFloats(rng, w)
			want := make([]float64, w)
			got := make([]float64, w)
			bandBlockGeneric(want, ini, band, xs, w)
			switch w {
			case 4:
				bandBlock4(got, ini, band, xs)
			case 8:
				bandBlock8(got, ini, band, xs)
			}
			for a := 0; a < w; a++ {
				if got[a] != want[a] {
					t.Fatalf("w=%d trial %d row %d: unrolled %v ≠ generic %v", w, trial, a, got[a], want[a])
				}
			}
		}
	}
}

// TestGridKernelsPinned: gridBlock4/gridBlock8 bit-identical to
// gridBlockGeneric for several strides.
func TestGridKernelsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, w := range []int{4, 8} {
		for _, stride := range []int{w, w + 3, 3 * w} {
			for trial := 0; trial < 30; trial++ {
				u := randFloats(rng, (w-1)*stride+w)
				lo := randFloats(rng, (w-1)*stride+w)
				xu := randFloats(rng, w)
				xl := randFloats(rng, w)
				ini := randFloats(rng, w)
				want := make([]float64, w)
				got := make([]float64, w)
				gridBlockGeneric(want, ini, u, lo, xu, xl, stride, w)
				switch w {
				case 4:
					gridBlock4(got, ini, u, lo, xu, xl, stride)
				case 8:
					gridBlock8(got, ini, u, lo, xu, xl, stride)
				}
				for a := 0; a < w; a++ {
					if got[a] != want[a] {
						t.Fatalf("w=%d s=%d trial %d row %d: unrolled %v ≠ generic %v", w, stride, trial, a, got[a], want[a])
					}
				}
			}
		}
	}
}

// TestGridKernelsX2Pinned: the two-vector batched kernels are bit-identical,
// per vector, to two separate single-vector calls — the property that lets
// ExecMany pair vectors without disturbing any rounding trail.
func TestGridKernelsX2Pinned(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, w := range []int{4, 8} {
		for _, stride := range []int{w, w + 3, 3 * w} {
			for trial := 0; trial < 30; trial++ {
				u := randFloats(rng, (w-1)*stride+w)
				lo := randFloats(rng, (w-1)*stride+w)
				xu0, xl0 := randFloats(rng, w), randFloats(rng, w)
				xu1, xl1 := randFloats(rng, w), randFloats(rng, w)
				ini0, ini1 := randFloats(rng, w), randFloats(rng, w)
				want0 := make([]float64, w)
				want1 := make([]float64, w)
				got0 := make([]float64, w)
				got1 := make([]float64, w)
				switch w {
				case 4:
					gridBlock4(want0, ini0, u, lo, xu0, xl0, stride)
					gridBlock4(want1, ini1, u, lo, xu1, xl1, stride)
					gridBlock4x2(got0, got1, ini0, ini1, u, lo, xu0, xl0, xu1, xl1, stride)
				case 8:
					gridBlock8(want0, ini0, u, lo, xu0, xl0, stride)
					gridBlock8(want1, ini1, u, lo, xu1, xl1, stride)
					gridBlock8x2(got0, got1, ini0, ini1, u, lo, xu0, xl0, xu1, xl1, stride)
				}
				for a := 0; a < w; a++ {
					if got0[a] != want0[a] || got1[a] != want1[a] {
						t.Fatalf("w=%d s=%d trial %d row %d: x2 kernel diverges from two single calls", w, stride, trial, a)
					}
				}
			}
		}
	}
}

// TestRevKernelsPinned: dotRunRev3/dotRunRev7 bit-identical to dotRunRev.
func TestRevKernelsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 50; trial++ {
		v := rng.NormFloat64()
		a3, x3 := randFloats(rng, 3), randFloats(rng, 3)
		if got, want := dotRunRev3(v, a3, x3), dotRunRev(v, a3, x3); got != want {
			t.Fatalf("dotRunRev3 %v ≠ dotRunRev %v", got, want)
		}
		a7, x7 := randFloats(rng, 7), randFloats(rng, 7)
		if got, want := dotRunRev7(v, a7, x7), dotRunRev(v, a7, x7); got != want {
			t.Fatalf("dotRunRev7 %v ≠ dotRunRev %v", got, want)
		}
	}
}

// TestMatVecPlanKernelsPinned compiles real matvec plans at the specialized
// widths and pins three ways through the same plan to bitwise-equal outputs:
// packed Exec with the unrolled kernel, packed Exec forced generic, and
// grid-direct ExecGrid (which must read exactly the elements the pack would
// have copied, in the same order).
func TestMatVecPlanKernelsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, w := range []int{4, 8} {
		for _, shape := range [][2]int{{w, w}, {2*w + 1, 3*w - 1}, {3 * w, 2 * w}} {
			n, m := shape[0], shape[1]
			a := randDense(rng, n, m)
			x := matrix.Vector(randFloats(rng, m))
			b := matrix.Vector(randFloats(rng, n))
			for _, tr := range []dbt.Transform{dbt.NewMatVec(a, w), dbt.NewMatVecByColumns(a, w)} {
				s, err := compileMatVec(tr, false)
				if err != nil {
					t.Fatal(err)
				}
				band := make([]float64, s.Rows*w)
				tr.PackBand(band)
				xbar := tr.TransformX(x)
				bp := make([]float64, s.BLen)
				copy(bp, b)

				run := func() []float64 {
					y := make([]float64, s.Rows)
					s.Exec(band, xbar, bp, y)
					return y
				}
				want := run()
				saved := s.kern
				s.kern = kernGeneric
				generic := run()
				s.kern = saved
				for i := range want {
					if want[i] != generic[i] {
						t.Fatalf("w=%d %T %v: unrolled Exec ≠ generic Exec at row %d", w, tr, shape, i)
					}
				}

				if !s.GridReplay() {
					t.Fatalf("w=%d %T: dbt-built transform did not compile grid descriptors", w, tr)
				}
				_, _, mbar := tr.Shape()
				xp := make([]float64, mbar*w)
				copy(xp, x)
				grid := make([]float64, s.Rows)
				var aflat []float64
				switch g := tr.(type) {
				case *dbt.MatVec:
					aflat = g.Grid.Padded().Raw()
				case *dbt.MatVecByColumns:
					aflat = g.Grid.Padded().Raw()
				}
				s.ExecGrid(aflat, xp, bp, grid)
				for i := range want {
					if want[i] != grid[i] {
						t.Fatalf("w=%d %T %v: ExecGrid ≠ packed Exec at row %d: %v vs %v", w, tr, shape, i, grid[i], want[i])
					}
				}
				if s.Bytes() <= 0 {
					t.Errorf("w=%d %T: plan Bytes() = %d, want > 0", w, tr, s.Bytes())
				}
			}
		}
	}
}

// TestTriSolvePlanKernelsPinned: the clamped-span trisolve replay is
// bit-identical between the unrolled and generic rev kernels.
func TestTriSolvePlanKernelsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for _, w := range []int{4, 8} {
		for _, n := range []int{1, w - 1, w, 3*w + 2} {
			s := compileTriSolve(n, w)
			lband := randFloats(rng, n*w)
			for i := 0; i < n; i++ {
				lband[i*w] = 1 + rng.Float64() // nonzero diagonal
				for d := i + 1; d < w; d++ {
					lband[i*w+d] = 0 // below the matrix, zero by pack contract
				}
			}
			b := randFloats(rng, n)
			want := make([]float64, n)
			got := make([]float64, n)
			s.Exec(lband, b, want)
			saved := s.kern
			s.kern = kernGeneric
			s.Exec(lband, b, got)
			s.kern = saved
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("w=%d n=%d row %d: generic %v ≠ unrolled %v", w, n, i, got[i], want[i])
				}
			}
		}
	}
}

// randPattern draws a random retained-block pattern: each row band keeps a
// random (possibly empty) strictly-increasing subset of the column blocks.
func randPattern(rng *rand.Rand, nbar, mbar int) [][]int {
	ret := make([][]int, nbar)
	for r := range ret {
		for c := 0; c < mbar; c++ {
			if rng.Intn(2) == 0 {
				ret[r] = append(ret[r], c)
			}
		}
	}
	return ret
}

// oldSparseGather is the retired per-MAC index builder, kept as the test
// reference for the run compaction: for every local row i of row band r it
// emits the flat coefficient index and padded-x index of each of the row's w
// multiply–accumulates, in the array's cycle order (increasing diagonal).
// This is the exact code the pre-compaction compiler materialized as
// asrc/xsrc tables, 8 bytes per MAC.
func oldSparseGather(w, mbar, r int, cols []int) (asrc, xsrc []int32) {
	stride := mbar * w
	qr := len(cols)
	for i := 0; i < qr*w; i++ {
		k, a := i/w, i%w
		arow := (r*w + a) * stride
		for d := 0; d < w; d++ {
			if bb := a + d; bb < w {
				asrc = append(asrc, int32(arow+cols[k]*w+bb))
			} else {
				asrc = append(asrc, int32(arow+cols[(k+1)%qr]*w+(bb-w)))
			}
			j := i + d
			kb := j / w
			if kb >= qr { // x̄ tail: the wrap block's leading elements
				kb = 0
			}
			xsrc = append(xsrc, int32(cols[kb]*w+j%w))
		}
	}
	return
}

// TestSparseRunCompactionRoundTrip: expanding the compiled run descriptors
// term by term reproduces exactly the old per-MAC gather sequence, over
// randomized shapes and patterns. This is the property that licenses the
// ~w² memory compression — the runs are a lossless re-encoding.
func TestSparseRunCompactionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	patterns := 0
	for trial := 0; trial < 200; trial++ {
		w := []int{1, 2, 3, 4, 5, 8}[rng.Intn(6)]
		nbar := 1 + rng.Intn(5)
		mbar := 1 + rng.Intn(5)
		retained := randPattern(rng, nbar, mbar)
		s, err := compileSparseMatVec(w, nbar, mbar, retained)
		if err != nil {
			t.Fatal(err)
		}
		var runs []Run
		for r, cols := range retained {
			if len(cols) == 0 {
				continue
			}
			patterns++
			wantA, wantX := oldSparseGather(w, mbar, r, cols)
			var gotA, gotX []int32
			for l := 0; l < len(cols)*w; l++ {
				runs = s.RowRuns(r, l, runs[:0])
				total := 0
				for _, run := range runs {
					if run.Len <= 0 {
						t.Fatalf("w=%d band %d row %d: empty run %+v", w, r, l, run)
					}
					for k := int32(0); k < run.Len; k++ {
						gotA = append(gotA, run.ABase+k)
						gotX = append(gotX, run.XBase+k)
					}
					total += int(run.Len)
				}
				if total != w {
					t.Fatalf("w=%d band %d row %d: runs cover %d of %d MACs", w, r, l, total, w)
				}
			}
			if len(gotA) != len(wantA) {
				t.Fatalf("w=%d band %d: %d expanded MACs, want %d", w, r, len(gotA), len(wantA))
			}
			for i := range wantA {
				if gotA[i] != wantA[i] || gotX[i] != wantX[i] {
					t.Fatalf("w=%d n̄=%d m̄=%d band %d MAC %d: run expansion (a=%d,x=%d) ≠ reference (a=%d,x=%d) for cols %v",
						w, nbar, mbar, r, i, gotA[i], gotX[i], wantA[i], wantX[i], cols)
				}
			}
		}
	}
	if patterns < 100 {
		t.Fatalf("only %d non-empty bands exercised — generator too sparse", patterns)
	}
}

// replaySparseRuns replays a sparse plan by scalar run expansion — the
// slowest, most literal reading of the descriptors: per row, initialize from
// b̄ or the feedback row w earlier, then accumulate each run term by term.
// Kernel Exec must match it bitwise (per-row term order is identical; the
// kernels only interleave independent rows).
func replaySparseRuns(s *SparseMatVec, aflat, xp, bp []float64) []float64 {
	w := s.W
	y := make([]float64, s.NBar*w)
	var runs []Run
	for r := 0; r < s.NBar; r++ {
		qr := int(s.q[r])
		if qr == 0 {
			copy(y[r*w:(r+1)*w], bp[r*w:(r+1)*w])
			continue
		}
		rows := qr * w
		ybar := make([]float64, rows)
		for l := 0; l < rows; l++ {
			var v float64
			if l < w {
				v = bp[r*w+l]
			} else {
				v = ybar[l-w]
			}
			runs = s.RowRuns(r, l, runs[:0])
			for _, run := range runs {
				for k := int32(0); k < run.Len; k++ {
					v += aflat[run.ABase+k] * xp[run.XBase+k]
				}
			}
			ybar[l] = v
		}
		copy(y[r*w:(r+1)*w], ybar[rows-w:])
	}
	return y
}

// TestSparsePlanKernelsPinned: sparse Exec with the unrolled kernels is
// bit-identical to the forced-generic kernels and to the literal scalar run
// replay, over random patterns at the specialized widths.
func TestSparsePlanKernelsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, w := range []int{4, 8} {
		for trial := 0; trial < 20; trial++ {
			nbar := 1 + rng.Intn(4)
			mbar := 1 + rng.Intn(4)
			retained := randPattern(rng, nbar, mbar)
			s, err := compileSparseMatVec(w, nbar, mbar, retained)
			if err != nil {
				t.Fatal(err)
			}
			a := randDense(rng, nbar*w, mbar*w)
			xp := randFloats(rng, mbar*w)
			bp := randFloats(rng, nbar*w)
			exec := func() []float64 {
				y := make([]float64, nbar*w)
				ybar := make([]float64, s.MaxBandRows)
				if s.MaxBandRows == 0 {
					ybar = make([]float64, 1)
				}
				s.Exec(a.Raw(), xp, bp, y, ybar)
				return y
			}
			want := exec()
			saved := s.kern
			s.kern = kernGeneric
			generic := exec()
			s.kern = saved
			scalar := replaySparseRuns(s, a.Raw(), xp, bp)
			for i := range want {
				if generic[i] != want[i] {
					t.Fatalf("w=%d trial %d row %d: generic ≠ unrolled", w, trial, i)
				}
				if scalar[i] != want[i] {
					t.Fatalf("w=%d trial %d row %d: scalar run replay %v ≠ kernel Exec %v", w, trial, i, scalar[i], want[i])
				}
			}
		}
	}
}

// TestSparseSingleBlockRuns pins the q_r = 1 compaction guarantees: rows
// with a = 0 compact to exactly one run (the Ū→L̄ wrap targets the block
// itself, and an a = 0 row has no L̄ terms), rows with a > 0 keep two runs —
// the wrap is a *rotation* within the block, so the gather is not contiguous
// even though both runs read the same column block — and no run is ever
// empty. Execution over single-block bands stays bit-identical to the
// scalar run replay.
func TestSparseSingleBlockRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	for _, w := range []int{1, 2, 4, 8} {
		for _, cse := range []struct {
			mbar     int
			retained [][]int
		}{
			{1, [][]int{{0}}},
			{4, [][]int{{2}}},
			{3, [][]int{{1}, nil, {2}}},
			{2, [][]int{{0, 1}, {1}}}, // mixed q_r: 2 then 1
		} {
			s, err := compileSparseMatVec(w, len(cse.retained), cse.mbar, cse.retained)
			if err != nil {
				t.Fatal(err)
			}
			var runs []Run
			for r, cols := range cse.retained {
				for l := 0; l < len(cols)*w; l++ {
					runs = s.RowRuns(r, l, runs[:0])
					a := l % w
					if a == 0 && len(runs) != 1 {
						t.Fatalf("w=%d band %d row %d (a=0): %d runs, want single-run compaction", w, r, l, len(runs))
					}
					if a > 0 && len(runs) != 2 {
						t.Fatalf("w=%d band %d row %d (a=%d): %d runs, want 2", w, r, l, a, len(runs))
					}
					for _, run := range runs {
						if run.Len <= 0 {
							t.Fatalf("w=%d band %d row %d: empty run %+v", w, r, l, run)
						}
					}
				}
			}
			nbar := len(cse.retained)
			a := randDense(rng, nbar*w, cse.mbar*w)
			xp := randFloats(rng, cse.mbar*w)
			bp := randFloats(rng, nbar*w)
			y := make([]float64, nbar*w)
			ybar := make([]float64, s.MaxBandRows)
			s.Exec(a.Raw(), xp, bp, y, ybar)
			scalar := replaySparseRuns(s, a.Raw(), xp, bp)
			for i := range y {
				if y[i] != scalar[i] {
					t.Fatalf("w=%d m̄=%d pattern %v row %d: Exec %v ≠ scalar replay %v", w, cse.mbar, cse.retained, i, y[i], scalar[i])
				}
			}
		}
	}
}
