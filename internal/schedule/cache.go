package schedule

import (
	"sync"

	"repro/internal/dbt"
)

// One shape-keyed plan cache per workload (see plan.go for the bounding and
// concurrency story).

type matvecKey struct {
	w, nbar, mbar int
	variant       uint8 // 0 = by-rows, 1 = by-columns
	overlap       bool
}

type matmulKey struct {
	w, nbar, pbar, mbar int
}

type trisolveKey struct {
	w, n int
}

// sparseKey is the pattern-keyed variant: the shape plus a digest of the
// retained-block pattern. Unlike the shape keys it is lossy — two patterns
// can collide on one digest — so every cache and memo hit re-verifies the
// full pattern (SparseMatVec.MatchesPattern) and recompiles on a mismatch.
type sparseKey struct {
	w, nbar, mbar int
	digest        uint64
}

var (
	matvecCache   = newPlanCache[matvecKey, *MatVec]()
	matmulCache   = newPlanCache[matmulKey, *MatMul]()
	trisolveCache = newPlanCache[trisolveKey, *TriSolve]()
	sparseCache   = newPlanCache[sparseKey, *SparseMatVec]()
)

// patternDigest is the digest function behind PatternDigest, a variable so
// the collision tests can force distinct patterns onto one bucket and pin
// the equality check on cache hits.
var patternDigest = defaultPatternDigest

// defaultPatternDigest hashes a retained-block pattern FNV-1a style with a
// per-band length separator, so [[0,1],[]] and [[0],[1]] digest differently.
func defaultPatternDigest(retained [][]int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, cols := range retained {
		mix(uint64(len(cols)) | 1<<63)
		for _, c := range cols {
			mix(uint64(c))
		}
	}
	return h
}

// PatternDigest returns the canonical 64-bit digest of a retained-block
// pattern — the data half of the sparse plan key. Callers routing by
// pattern affinity (the stream scheduler) use it as a stable hash; it is
// never trusted alone for plan identity (see SparseMatVecFor).
func PatternDigest(retained [][]int) uint64 { return patternDigest(retained) }

// SparseMatVecFor returns the compiled sparse matvec schedule for the shape
// (w, n̄, m̄) and retained-block pattern, reusing a cached plan when the
// exact pattern has been seen before. The cache key is (shape, pattern
// digest); a hit is verified against the full canonical pattern, and a
// digest collision compiles a fresh uncached plan — first pattern in wins
// the bucket, colliding patterns pay a recompile, results are never wrong.
func SparseMatVecFor(w, nbar, mbar int, retained [][]int) (*SparseMatVec, error) {
	key := sparseKey{w: w, nbar: nbar, mbar: mbar, digest: patternDigest(retained)}
	s, err := sparseCache.get(key, func() (*SparseMatVec, error) {
		return compileSparseMatVec(w, nbar, mbar, retained)
	})
	if err != nil {
		return nil, err
	}
	if !s.MatchesPattern(retained) {
		return compileSparseMatVec(w, nbar, mbar, retained)
	}
	return s, nil
}

// MatVecFor returns the compiled schedule for the shape of t (with or
// without the overlap split), reusing a cached schedule when the shape has
// been seen before. Unknown Transform implementations are compiled but not
// cached (their BSource topology is not identified by the key). The error
// mirrors the structural path's: §2 validation failure or an unsplittable
// overlap.
func MatVecFor(t dbt.Transform, overlap bool) (*MatVec, error) {
	var variant uint8
	switch t.(type) {
	case *dbt.MatVec:
		variant = 0
	case *dbt.MatVecByColumns:
		variant = 1
	default:
		return compileMatVec(t, overlap)
	}
	w, nbar, mbar := t.Shape()
	key := matvecKey{w: w, nbar: nbar, mbar: mbar, variant: variant, overlap: overlap}
	return matvecCache.get(key, func() (*MatVec, error) { return compileMatVec(t, overlap) })
}

// MatMulFor returns the compiled schedule for the shape of t, reusing a
// cached schedule when possible.
func MatMulFor(t *dbt.MatMul) *MatMul {
	key := matmulKey{w: t.W, nbar: t.NBar, pbar: t.PBar, mbar: t.MBar}
	s, _ := matmulCache.get(key, func() (*MatMul, error) { return compileMatMul(t), nil })
	return s
}

// TriSolveFor returns the compiled schedule of a band triangular solve of
// dimension n on a w-PE solver array, reusing a cached schedule when
// possible.
func TriSolveFor(n, w int) *TriSolve {
	key := trisolveKey{w: w, n: n}
	s, _ := trisolveCache.get(key, func() (*TriSolve, error) { return compileTriSolve(n, w), nil })
	return s
}

// floatPool recycles the per-solve scratch buffers (packed bands, output
// bands) so steady-state solves allocate nothing in the execution engine.
var floatPool = sync.Pool{New: func() interface{} { s := make([]float64, 0, 256); return &s }}

// GetFloats returns a zeroed float64 scratch slice of length n from the
// pool. Pair with PutFloats.
func GetFloats(n int) *[]float64 {
	p := GetFloatsUninit(n)
	clear(*p)
	return p
}

// GetFloatsUninit returns a scratch slice of length n whose contents are
// arbitrary. For buffers that are provably fully written before any read
// (packed bands, Exec outputs) this skips a memset of the same order as
// the compute itself. Pair with PutFloats.
func GetFloatsUninit(n int) *[]float64 {
	p := floatPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// PutFloats returns a scratch slice to the pool.
func PutFloats(p *[]float64) { floatPool.Put(p) }
