package schedule

import (
	"sync"
	"sync/atomic"

	"repro/internal/dbt"
)

// Schedules depend only on problem shape, and the sweep/soak/bench
// harnesses resolve the same shapes thousands of times — so compiled
// schedules are cached process-wide in concurrency-safe maps keyed by
// shape. The cache is bounded: distinct shapes are few in practice, but a
// pathological workload cycling through unbounded shapes would otherwise
// grow it forever, so past maxCached entries the map is dropped and rebuilt
// (a full re-compile is cheap relative to the workload that caused it).
const maxCached = 4096

type matvecKey struct {
	w, nbar, mbar int
	variant       uint8 // 0 = by-rows, 1 = by-columns
	overlap       bool
}

type matmulKey struct {
	w, nbar, pbar, mbar int
}

var (
	matvecCache atomic.Pointer[sync.Map] // matvecKey → *MatVec
	matvecCount atomic.Int64
	matmulCache atomic.Pointer[sync.Map] // matmulKey → *MatMul
	matmulCount atomic.Int64
)

func init() {
	matvecCache.Store(&sync.Map{})
	matmulCache.Store(&sync.Map{})
}

// MatVecFor returns the compiled schedule for the shape of t (with or
// without the overlap split), reusing a cached schedule when the shape has
// been seen before. Unknown Transform implementations are compiled but not
// cached (their BSource topology is not identified by the key). The error
// mirrors the structural path's: §2 validation failure or an unsplittable
// overlap.
func MatVecFor(t dbt.Transform, overlap bool) (*MatVec, error) {
	var variant uint8
	switch t.(type) {
	case *dbt.MatVec:
		variant = 0
	case *dbt.MatVecByColumns:
		variant = 1
	default:
		return compileMatVec(t, overlap)
	}
	w, nbar, mbar := t.Shape()
	key := matvecKey{w: w, nbar: nbar, mbar: mbar, variant: variant, overlap: overlap}
	cache := matvecCache.Load()
	if s, ok := cache.Load(key); ok {
		return s.(*MatVec), nil
	}
	s, err := compileMatVec(t, overlap)
	if err != nil {
		return nil, err
	}
	if _, loaded := cache.LoadOrStore(key, s); !loaded {
		if matvecCount.Add(1) > maxCached {
			matvecCache.Store(&sync.Map{})
			matvecCount.Store(0)
		}
	}
	return s, nil
}

// MatMulFor returns the compiled schedule for the shape of t, reusing a
// cached schedule when possible.
func MatMulFor(t *dbt.MatMul) *MatMul {
	key := matmulKey{w: t.W, nbar: t.NBar, pbar: t.PBar, mbar: t.MBar}
	cache := matmulCache.Load()
	if s, ok := cache.Load(key); ok {
		return s.(*MatMul)
	}
	s := compileMatMul(t)
	if _, loaded := cache.LoadOrStore(key, s); !loaded {
		if matmulCount.Add(1) > maxCached {
			matmulCache.Store(&sync.Map{})
			matmulCount.Store(0)
		}
	}
	return s
}

// floatPool recycles the per-solve scratch buffers (packed bands, output
// bands) so steady-state solves allocate nothing in the execution engine.
var floatPool = sync.Pool{New: func() interface{} { s := make([]float64, 0, 256); return &s }}

// GetFloats returns a zeroed float64 scratch slice of length n from the
// pool. Pair with PutFloats.
func GetFloats(n int) *[]float64 {
	p := GetFloatsUninit(n)
	clear(*p)
	return p
}

// GetFloatsUninit returns a scratch slice of length n whose contents are
// arbitrary. For buffers that are provably fully written before any read
// (packed bands, Exec outputs) this skips a memset of the same order as
// the compute itself. Pair with PutFloats.
func GetFloatsUninit(n int) *[]float64 {
	p := floatPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// PutFloats returns a scratch slice to the pool.
func PutFloats(p *[]float64) { floatPool.Put(p) }
