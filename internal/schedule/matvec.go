// Package schedule is the compiled-schedule execution engine: the fast
// counterpart of the cycle-accurate structural simulators in
// internal/linear, internal/hex and internal/trisolve.
//
// The structural simulators advance a global clock and re-discover, every
// cycle, which boundary values enter, which PEs hold a full operand set and
// which registers shift — O(T·w) (linear, trisolve) or O(T·w²) (hex)
// interpretive work with closure calls per coefficient. But the complete
// event schedule of a systolic workload is a pure function of its *shape*
// ((w, n̄, m̄, options) for matvec, (w, n̄, p̄, m̄) for matmul, (w, n) for
// the triangular solve): which band row meets which stream element, in
// which order a result position accumulates its terms, where every
// feedback edge lands, and every emit/inject cycle are all known before
// any data arrives. This package is organized as a workload-agnostic
// plan/replay layer (see plan.go): it compiles each workload's schedule
// once per shape — dense index arrays, analytic cycle stamps, feedback
// topology — caches it in a generic bounded concurrency-safe map, and
// replays it in O(work) with zero allocations and no liveness checks in
// the hot loop. The sparse matvec, whose schedule depends on the
// retained-block pattern (data rather than shape), compiles too: its plans
// are keyed by (shape, pattern digest) and every cache hit is verified
// against the full pattern so digest collisions recompile instead of
// corrupting results (see sparse.go).
//
// Execution is bit-identical to the structural engines: per result element
// the multiply–accumulates run in exactly the cycle order the array would
// realize (increasing diagonal d for the linear array, increasing κ for
// the hexagonal array, descending diagonal for the triangular solver),
// starting from the same initialization value, so every float64 rounding
// step matches. The structural engines remain the verification oracle;
// internal/core, internal/trisolve and internal/solve cross-check the two
// engines on randomized shapes.
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/dbt"
)

// matvecInit describes where band row i's accumulator starts.
const (
	matvecFromB    = 0 // initIdx indexes the padded b vector
	matvecFeedback = 1 // initIdx is the producing global band row
)

// MatVec is a compiled schedule for the linear contraflow array: the full
// event plan of one DBT matrix–vector problem of a given shape, including
// the paper's two-subproblem overlap mode.
type MatVec struct {
	// W, NBar, MBar identify the shape; Overlap the §2 split mode.
	W, NBar, MBar int
	Overlap       bool

	// Rows is the band row count n̄m̄w; XLen the x̄ stream length
	// (n̄m̄w + w − 1); BLen the padded b length (n̄w).
	Rows, XLen, BLen int

	// T is the step count the array would measure; MACs the total
	// multiply–accumulate count (= Rows·w); GroupableConflicts the number of
	// (cycle, PE pair) collisions under the paper's 2-PEs-in-1 grouping.
	T, MACs            int
	GroupableConflicts int

	// FeedbackDelays lists the delay of every feedback edge in the array's
	// observation (injection cycle) order.
	FeedbackDelays []int

	// initKind/initIdx give each band row's accumulator start: an element of
	// the padded b (matvecFromB) or an earlier row's output (matvecFeedback).
	initKind []uint8
	initIdx  []int32
}

// OverlapSplit returns the block index at which the overlap mode splits the
// transformed problem into two sub-problems (a row band boundary, so every
// feedback chain stays inside one sub-problem).
func OverlapSplit(nbar, mbar int) int { return (nbar + 1) / 2 * mbar }

// compileMatVec builds the schedule for the shape of t. It returns an
// error (matching the structural path's failure mode) when the
// transformation fails §2 validation or cannot be split for overlap —
// impossible for the dbt-built variants, reachable for external Transform
// implementations.
func compileMatVec(t dbt.Transform, overlap bool) (*MatVec, error) {
	// §2's structural conditions are shape-only too: checked once here, and
	// the cache remembers the clean bill for every later same-shape solve.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	w, nbar, mbar := t.Shape()
	blocks := t.Blocks()
	rows := blocks * w
	s := &MatVec{
		W: w, NBar: nbar, MBar: mbar, Overlap: overlap,
		Rows: rows, XLen: t.BandCols(), BLen: nbar * w,
		MACs:     rows * w,
		initKind: make([]uint8, rows),
		initIdx:  make([]int32, rows),
	}

	// Per-row initialization topology (shape-only: BSource never reads data).
	for i := 0; i < rows; i++ {
		k := i / w
		switch src := t.BSource(k); src.Kind {
		case dbt.FromB:
			s.initKind[i] = matvecFromB
			s.initIdx[i] = int32(src.Index*w + i%w)
		default:
			s.initKind[i] = matvecFeedback
			s.initIdx[i] = int32(i - (k-src.Index)*w)
			if s.initIdx[i] < 0 || int(s.initIdx[i]) >= i {
				panic(fmt.Sprintf("schedule: acausal matvec feedback %d → %d", s.initIdx[i], i))
			}
		}
	}

	// Program ranges and offsets exactly as core schedules them: one program
	// over all blocks, or the overlap split with offsets 0 and 1.
	ranges := [][2]int{{0, blocks}}
	if overlap {
		h := OverlapSplit(nbar, mbar)
		ranges = [][2]int{{0, h}, {h, blocks}}
		if src := t.BSource(h); src.Kind != dbt.FromB {
			return nil, fmt.Errorf("schedule: overlap split at block %d breaks a feedback chain", h)
		}
	}

	// Cycle accounting. For a program at offset Δ, local row l:
	//   inject(ȳ_l) = Δ + 2l + w − 1
	//   emit(ȳ_l)   = Δ + 2l + 2w − 1
	//   PE k fires for row l at Δ + 2l + 2w − 2 − k.
	type obs struct{ inject, prog, delay int }
	var observations []obs
	emit := make([]int, rows)
	maxT := 0
	for pi, r := range ranges {
		off := pi
		for k := r[0]; k < r[1]; k++ {
			for a := 0; a < w; a++ {
				i := k*w + a
				l := i - r[0]*w
				emit[i] = off + 2*l + 2*w - 1
				if s.initKind[i] == matvecFeedback {
					inj := off + 2*l + w - 1
					observations = append(observations, obs{inj, pi, inj - emit[s.initIdx[i]]})
				}
			}
		}
		progRows := (r[1] - r[0]) * w
		if t := off + 2*(progRows-1) + 2*w - 2; t > maxT {
			maxT = t
		}
	}
	s.T = maxT + 1
	sort.SliceStable(observations, func(i, j int) bool {
		if observations[i].inject != observations[j].inject {
			return observations[i].inject < observations[j].inject
		}
		return observations[i].prog < observations[j].prog
	})
	s.FeedbackDelays = make([]int, len(observations))
	for i, o := range observations {
		s.FeedbackDelays[i] = o.delay
	}

	// GroupableConflicts: cycles in which both PEs of a physical pair
	// (2q, 2q+1) fire. Within one program adjacent PEs fire on opposite
	// parities, so conflicts only arise between overlapped programs; count
	// them with a boolean firing grid (compile-time only, cached).
	if len(ranges) > 1 {
		fired := make([]bool, (maxT+1)*w)
		for pi, r := range ranges {
			off := pi
			progRows := (r[1] - r[0]) * w
			for l := 0; l < progRows; l++ {
				for k := 0; k < w; k++ {
					fired[(off+2*l+2*w-2-k)*w+k] = true
				}
			}
		}
		for t := 0; t <= maxT; t++ {
			for q := 0; q+1 < w; q += 2 {
				if fired[t*w+q] && fired[t*w+q+1] {
					s.GroupableConflicts++
				}
			}
		}
	}
	return s, nil
}

// Exec runs the compiled schedule over one problem's data. band is the
// packed Ā (len Rows·w, dbt.PackBand layout), xbar the transformed x̄
// (len ≥ XLen), b the padded b̄ (len ≥ BLen), and y the output buffer
// (len ≥ Rows) receiving every band row's ȳ. Exec performs no allocation;
// each row accumulates its w terms in the array's cycle order (increasing
// diagonal), so results are bit-identical to the structural simulator.
func (s *MatVec) Exec(band, xbar, b, y []float64) {
	w := s.W
	if len(band) < s.Rows*w || len(xbar) < s.XLen || len(b) < s.BLen || len(y) < s.Rows {
		panic(fmt.Sprintf("schedule: Exec buffer sizes band=%d xbar=%d b=%d y=%d for rows=%d w=%d",
			len(band), len(xbar), len(b), len(y), s.Rows, w))
	}
	kinds, idxs := s.initKind, s.initIdx
	for i := 0; i < s.Rows; i++ {
		var v float64
		if kinds[i] == matvecFromB {
			v = b[idxs[i]]
		} else {
			v = y[idxs[i]]
		}
		coeffs := band[i*w : (i+1)*w]
		xs := xbar[i : i+w]
		for d, c := range coeffs {
			v += c * xs[d]
		}
		y[i] = v
	}
}

// Utilization returns MACs/(w·T), the PE utilization η the array would
// measure for this shape.
func (s *MatVec) Utilization() float64 {
	if s.T == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.W) * float64(s.T))
}

// GroupedUtilization returns MACs/(⌈w/2⌉·T): η with every two adjacent PEs
// sharing one physical unit (meaningful when GroupableConflicts is zero).
func (s *MatVec) GroupedUtilization() float64 {
	if s.T == 0 {
		return 0
	}
	physical := (s.W + 1) / 2
	return float64(s.MACs) / (float64(physical) * float64(s.T))
}
