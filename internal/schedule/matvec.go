// Package schedule is the compiled-schedule execution engine: the fast
// counterpart of the cycle-accurate structural simulators in
// internal/linear, internal/hex and internal/trisolve.
//
// The structural simulators advance a global clock and re-discover, every
// cycle, which boundary values enter, which PEs hold a full operand set and
// which registers shift — O(T·w) (linear, trisolve) or O(T·w²) (hex)
// interpretive work with closure calls per coefficient. But the complete
// event schedule of a systolic workload is a pure function of its *shape*
// ((w, n̄, m̄, options) for matvec, (w, n̄, p̄, m̄) for matmul, (w, n) for
// the triangular solve): which band row meets which stream element, in
// which order a result position accumulates its terms, where every
// feedback edge lands, and every emit/inject cycle are all known before
// any data arrives. This package is organized as a workload-agnostic
// plan/replay layer (see plan.go): it compiles each workload's schedule
// once per shape — contiguous-run descriptors, analytic cycle stamps,
// feedback topology — caches it in a generic bounded concurrency-safe map,
// and replays it in O(work) with zero allocations and no liveness checks in
// the hot loop. The band layout makes every gather a handful of contiguous
// runs known at compile time, so the replay loops are shared straight-line
// slice kernels (kernel.go) rather than per-MAC index gathers. The sparse
// matvec, whose schedule depends on the retained-block pattern (data rather
// than shape), compiles too: its plans are keyed by (shape, pattern digest)
// and every cache hit is verified against the full pattern so digest
// collisions recompile instead of corrupting results (see sparse.go).
//
// Execution is bit-identical to the structural engines: per result element
// the multiply–accumulates run in exactly the cycle order the array would
// realize (increasing diagonal d for the linear array, increasing κ for
// the hexagonal array, descending diagonal for the triangular solver),
// starting from the same initialization value, so every float64 rounding
// step matches. The structural engines remain the verification oracle;
// internal/core, internal/trisolve and internal/solve cross-check the two
// engines on randomized shapes.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dbt"
)

// matvecInit describes where a block's accumulators start.
const (
	matvecFromB    = 0 // initBase indexes the padded b vector
	matvecFeedback = 1 // initBase indexes the y buffer (an earlier block's rows)
)

// MatVec is a compiled schedule for the linear contraflow array: the full
// event plan of one DBT matrix–vector problem of a given shape, including
// the paper's two-subproblem overlap mode.
type MatVec struct {
	// W, NBar, MBar identify the shape; Overlap the §2 split mode.
	W, NBar, MBar int
	Overlap       bool

	// Rows is the band row count n̄m̄w; XLen the x̄ stream length
	// (n̄m̄w + w − 1); BLen the padded b length (n̄w).
	Rows, XLen, BLen int

	// T is the step count the array would measure; MACs the total
	// multiply–accumulate count (= Rows·w); GroupableConflicts the number of
	// (cycle, PE pair) collisions under the paper's 2-PEs-in-1 grouping.
	T, MACs            int
	GroupableConflicts int

	// FeedbackDelays lists the delay of every feedback edge in the array's
	// observation (injection cycle) order.
	FeedbackDelays []int

	// initKind/initBase give each *block's* accumulator start (uniform
	// across the block's w rows): w elements of the padded b at initBase
	// (matvecFromB) or an earlier block's outputs at initBase in y
	// (matvecFeedback). Row a of the block starts from index initBase+a.
	initKind []uint8
	initBase []int32

	// Grid-replay descriptors (ExecGrid): per block k, the flat offsets of
	// its Ū and L̄ coefficient runs in the padded matrix's backing storage
	// and the padded-x column bases they pair with. Compiled only for the
	// dbt-built transforms, whose PackBand/TransformX are by construction
	// views of the padded grid — nil for external Transform implementations
	// (GridReplay reports which).
	uOff, lOff []int32
	uCol, lCol []int32
	stride     int

	// kern selects the replay kernel family for W (kernel.go).
	kern kern
}

// OverlapSplit returns the block index at which the overlap mode splits the
// transformed problem into two sub-problems (a row band boundary, so every
// feedback chain stays inside one sub-problem).
func OverlapSplit(nbar, mbar int) int { return (nbar + 1) / 2 * mbar }

// gridIndexed is the compile-time face of a transform whose band blocks are
// contiguous runs of a padded block grid: block k's Ū coefficients live in
// block (r, s) of the grid returned by UpperIndex, its L̄ coefficients in
// the block returned by LowerIndex.
type gridIndexed interface {
	UpperIndex(k int) (r, s int)
	LowerIndex(k int) (r, s int)
}

// compileMatVec builds the schedule for the shape of t. It returns an
// error (matching the structural path's failure mode) when the
// transformation fails §2 validation or cannot be split for overlap —
// impossible for the dbt-built variants, reachable for external Transform
// implementations.
func compileMatVec(t dbt.Transform, overlap bool) (*MatVec, error) {
	// §2's structural conditions are shape-only too: checked once here, and
	// the cache remembers the clean bill for every later same-shape solve.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	w, nbar, mbar := t.Shape()
	blocks := t.Blocks()
	rows := blocks * w
	s := &MatVec{
		W: w, NBar: nbar, MBar: mbar, Overlap: overlap,
		Rows: rows, XLen: t.BandCols(), BLen: nbar * w,
		MACs:     rows * w,
		initKind: make([]uint8, blocks),
		initBase: make([]int32, blocks),
		kern:     kernelFor(w),
	}

	// Per-block initialization topology (shape-only: BSource never reads
	// data). A block's w rows start uniformly: from a b block, or from the
	// producing block's w outputs at feedback distance (k−src)·w ≥ w.
	for k := 0; k < blocks; k++ {
		switch src := t.BSource(k); src.Kind {
		case dbt.FromB:
			s.initKind[k] = matvecFromB
			s.initBase[k] = int32(src.Index * w)
		default:
			s.initKind[k] = matvecFeedback
			s.initBase[k] = int32(src.Index * w)
			if src.Index < 0 || src.Index >= k {
				panic(fmt.Sprintf("schedule: acausal matvec feedback block %d → %d", src.Index, k))
			}
		}
	}

	// Run descriptors for grid replay: the dbt-built transforms pack band
	// block k by copying row runs out of padded blocks (ru, su) and
	// (rl, sl), and their x̄ is the padded x re-read block by block (§2
	// condition 2 makes consecutive blocks share the boundary column), so
	// the replay can skip both copies and read the grid directly.
	switch t.(type) {
	case *dbt.MatVec, *dbt.MatVecByColumns:
		gi := t.(gridIndexed)
		stride := mbar * w
		if int64(nbar)*int64(w)*int64(stride) <= math.MaxInt32 {
			s.stride = stride
			s.uOff = make([]int32, blocks)
			s.lOff = make([]int32, blocks)
			s.uCol = make([]int32, blocks)
			s.lCol = make([]int32, blocks)
			for k := 0; k < blocks; k++ {
				ru, su := gi.UpperIndex(k)
				rl, sl := gi.LowerIndex(k)
				s.uOff[k] = int32(ru*w*stride + su*w)
				s.lOff[k] = int32(rl*w*stride + sl*w)
				s.uCol[k] = int32(su * w)
				s.lCol[k] = int32(sl * w)
			}
		}
	}

	// Program ranges and offsets exactly as core schedules them: one program
	// over all blocks, or the overlap split with offsets 0 and 1.
	ranges := [][2]int{{0, blocks}}
	if overlap {
		h := OverlapSplit(nbar, mbar)
		ranges = [][2]int{{0, h}, {h, blocks}}
		if src := t.BSource(h); src.Kind != dbt.FromB {
			return nil, fmt.Errorf("schedule: overlap split at block %d breaks a feedback chain", h)
		}
	}

	// Cycle accounting. For a program at offset Δ, local row l:
	//   inject(ȳ_l) = Δ + 2l + w − 1
	//   emit(ȳ_l)   = Δ + 2l + 2w − 1
	//   PE k fires for row l at Δ + 2l + 2w − 2 − k.
	type obs struct{ inject, prog, delay int }
	var observations []obs
	emit := make([]int, rows)
	maxT := 0
	for pi, r := range ranges {
		off := pi
		for k := r[0]; k < r[1]; k++ {
			for a := 0; a < w; a++ {
				i := k*w + a
				l := i - r[0]*w
				emit[i] = off + 2*l + 2*w - 1
				if s.initKind[k] == matvecFeedback {
					inj := off + 2*l + w - 1
					observations = append(observations, obs{inj, pi, inj - emit[int(s.initBase[k])+a]})
				}
			}
		}
		progRows := (r[1] - r[0]) * w
		if t := off + 2*(progRows-1) + 2*w - 2; t > maxT {
			maxT = t
		}
	}
	s.T = maxT + 1
	sort.SliceStable(observations, func(i, j int) bool {
		if observations[i].inject != observations[j].inject {
			return observations[i].inject < observations[j].inject
		}
		return observations[i].prog < observations[j].prog
	})
	s.FeedbackDelays = make([]int, len(observations))
	for i, o := range observations {
		s.FeedbackDelays[i] = o.delay
	}

	// GroupableConflicts: cycles in which both PEs of a physical pair
	// (2q, 2q+1) fire. Within one program adjacent PEs fire on opposite
	// parities, so conflicts only arise between overlapped programs; count
	// them with a boolean firing grid (compile-time only, cached).
	if len(ranges) > 1 {
		fired := make([]bool, (maxT+1)*w)
		for pi, r := range ranges {
			off := pi
			progRows := (r[1] - r[0]) * w
			for l := 0; l < progRows; l++ {
				for k := 0; k < w; k++ {
					fired[(off+2*l+2*w-2-k)*w+k] = true
				}
			}
		}
		for t := 0; t <= maxT; t++ {
			for q := 0; q+1 < w; q += 2 {
				if fired[t*w+q] && fired[t*w+q+1] {
					s.GroupableConflicts++
				}
			}
		}
	}
	return s, nil
}

// Exec runs the compiled schedule over one problem's data. band is the
// packed Ā (len Rows·w, dbt.PackBand layout), xbar the transformed x̄
// (len ≥ XLen), b the padded b̄ (len ≥ BLen), and y the output buffer
// (len ≥ Rows) receiving every band row's ȳ. Exec performs no allocation;
// each row is one contiguous run of the packed band replayed by the shared
// band kernels in the array's cycle order (increasing diagonal), so results
// are bit-identical to the structural simulator.
func (s *MatVec) Exec(band, xbar, b, y []float64) {
	w := s.W
	if len(band) < s.Rows*w || len(xbar) < s.XLen || len(b) < s.BLen || len(y) < s.Rows {
		panic(fmt.Sprintf("schedule: Exec buffer sizes band=%d xbar=%d b=%d y=%d for rows=%d w=%d",
			len(band), len(xbar), len(b), len(y), s.Rows, w))
	}
	blocks := s.Rows / w
	for k := 0; k < blocks; k++ {
		var ini []float64
		if s.initKind[k] == matvecFromB {
			ini = b[s.initBase[k]:]
		} else {
			ini = y[s.initBase[k]:]
		}
		out := y[k*w:]
		cb := band[k*w*w:]
		xs := xbar[k*w:]
		switch s.kern {
		case kernW8:
			bandBlock8(out, ini, cb, xs)
		case kernW4:
			bandBlock4(out, ini, cb, xs)
		default:
			bandBlockGeneric(out, ini, cb, xs, w)
		}
	}
}

// GridReplay reports whether the plan carries grid-replay descriptors, i.e.
// whether ExecGrid may be used instead of the pack-then-Exec pipeline.
func (s *MatVec) GridReplay() bool { return s.uOff != nil }

// ExecGrid runs the compiled schedule directly over the padded operands,
// skipping both dbt.PackBand and the x̄ transform: aflat is the padded
// matrix's backing storage (row-major n̄w × m̄w — the transform's
// Grid.Padded().Raw()), xp the padded x (len ≥ m̄w), b the padded b̄
// (len ≥ BLen) and y the output buffer (len ≥ Rows). The grid kernels read
// exactly the elements the pack would have copied, in the same order, so
// results are bit-identical to Exec over the packed band. Only valid when
// GridReplay() is true.
func (s *MatVec) ExecGrid(aflat, xp, b, y []float64) {
	w := s.W
	if s.uOff == nil {
		panic("schedule: ExecGrid on a plan without grid descriptors")
	}
	if len(aflat) < s.NBar*w*s.stride || len(xp) < s.stride || len(b) < s.BLen || len(y) < s.Rows {
		panic(fmt.Sprintf("schedule: ExecGrid buffer sizes a=%d xp=%d b=%d y=%d for rows=%d w=%d stride=%d",
			len(aflat), len(xp), len(b), len(y), s.Rows, w, s.stride))
	}
	blocks := s.Rows / w
	for k := 0; k < blocks; k++ {
		var ini []float64
		if s.initKind[k] == matvecFromB {
			ini = b[s.initBase[k]:]
		} else {
			ini = y[s.initBase[k]:]
		}
		out := y[k*w:]
		u := aflat[s.uOff[k]:]
		lo := aflat[s.lOff[k]:]
		xu := xp[s.uCol[k]:]
		xl := xp[s.lCol[k]:]
		switch s.kern {
		case kernW8:
			gridBlock8(out, ini, u, lo, xu, xl, s.stride)
		case kernW4:
			gridBlock4(out, ini, u, lo, xu, xl, s.stride)
		default:
			gridBlockGeneric(out, ini, u, lo, xu, xl, s.stride, w)
		}
	}
}

// Bytes returns the resident size of the compiled descriptors — the memory
// the plan cache pays per shape.
func (s *MatVec) Bytes() int {
	return len(s.initKind) + len(s.initBase)*4 +
		(len(s.uOff)+len(s.lOff)+len(s.uCol)+len(s.lCol))*4 +
		len(s.FeedbackDelays)*8
}

// Utilization returns MACs/(w·T), the PE utilization η the array would
// measure for this shape.
func (s *MatVec) Utilization() float64 {
	if s.T == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.W) * float64(s.T))
}

// GroupedUtilization returns MACs/(⌈w/2⌉·T): η with every two adjacent PEs
// sharing one physical unit (meaningful when GroupableConflicts is zero).
func (s *MatVec) GroupedUtilization() float64 {
	if s.T == 0 {
		return 0
	}
	physical := (s.W + 1) / 2
	return float64(s.MACs) / (float64(physical) * float64(s.T))
}
