package schedule

import "fmt"

// This file compiles the §4 sparse matvec — the one workload whose schedule
// depends on data, not just shape. The schedule of a sparse solve is a pure
// function of (w, n̄, m̄) plus the retained-block *pattern*: which column
// blocks each row band keeps. The pattern is data-derived, so the plan cache
// for this workload is keyed by (shape, pattern digest) and every hit is
// verified against the full canonical pattern — a digest collision recompiles
// instead of replaying the wrong schedule (see SparseMatVecFor).

// SparseMatVec is a compiled schedule for the sparsity-aware DBT matvec
// (paper §4): one replayable program per non-empty row band over that band's
// retained column blocks, scheduled back to back on the same w-PE linear
// array. The U/L pairing telescopes over the retained subset (Ū_k = U_{r,c_k},
// L̄_k = L_{r,c_{(k+1) mod q}}), so every coefficient of the compiled band is
// an element of the padded matrix, and every band row's gather is at most
// two contiguous runs of it: a Ū run of w−a terms and (for rows with a > 0)
// an L̄ run of a terms, breaking only at the Ū→L̄ wrap. The plan stores one
// {Ū column, L̄ column} descriptor per retained block — 8 bytes per w² MACs
// instead of the former 8 bytes per MAC — and Exec replays each block
// through the shared grid kernels (kernel.go) in O(MACs) with no allocation.
type SparseMatVec struct {
	// W, NBar, MBar identify the shape half of the key.
	W, NBar, MBar int

	// Q is the retained-block count; Rows the total band row count Q·w;
	// MACs the multiply–accumulate count Q·w².
	Q, Rows, MACs int

	// T is the step count the array would measure: Σ_r 2w·q_r over the
	// non-empty row bands, plus (active−1)(2w−2) inter-band gaps and the
	// 2w−3 pipeline tail — exactly 0 when Q = 0 (empty bands cost nothing).
	T int

	// MaxBandRows is the largest per-band row count q_r·w — the scratch
	// length Exec needs for the in-flight band outputs.
	MaxBandRows int

	// q[r] is the retained-column count of row band r; retained the
	// canonical pattern copy (hit verification — see MatchesPattern).
	q        []int32
	retained [][]int

	// blocks holds one run descriptor per retained block, band-major (band
	// r owns blocks[boff[r]:boff[r+1]]): the padded-column bases of the
	// block's Ū coefficients (c_k·w) and L̄ coefficients (c_{(k+1) mod q}·w).
	// Together with the fixed band-row stride these expand to the per-row
	// runs (see RowRuns); Exec replays them directly.
	blocks []sparseBlock
	boff   []int32

	// kern selects the replay kernel family for W (kernel.go).
	kern kern
}

// sparseBlock is the compiled run descriptor of one retained block: the
// padded-matrix column bases its Ū and L̄ runs read coefficients and x̄
// elements from.
type sparseBlock struct {
	uCol, lCol int32
}

// compileSparseMatVec builds the schedule for one shape and pattern. It
// errors on a malformed pattern (wrong band count, columns out of range or
// not strictly increasing) — the failure mode of a hand-built pattern;
// patterns derived by sparse.NewMatVec are canonical by construction.
func compileSparseMatVec(w, nbar, mbar int, retained [][]int) (*SparseMatVec, error) {
	if w < 1 || nbar < 1 || mbar < 1 {
		return nil, fmt.Errorf("schedule: invalid sparse matvec shape w=%d n̄=%d m̄=%d", w, nbar, mbar)
	}
	if len(retained) != nbar {
		return nil, fmt.Errorf("schedule: sparse pattern has %d row bands, want n̄=%d", len(retained), nbar)
	}
	s := &SparseMatVec{
		W: w, NBar: nbar, MBar: mbar,
		q:        make([]int32, nbar),
		retained: make([][]int, nbar),
		boff:     make([]int32, nbar+1),
		kern:     kernelFor(w),
	}
	for r, cols := range retained {
		prev := -1
		for _, c := range cols {
			if c <= prev || c >= mbar {
				return nil, fmt.Errorf("schedule: sparse pattern row band %d: columns must be strictly increasing in [0,%d): %v", r, mbar, cols)
			}
			prev = c
		}
		s.q[r] = int32(len(cols))
		s.retained[r] = append([]int(nil), cols...)
		s.Q += len(cols)
	}
	s.Rows = s.Q * w
	s.MACs = s.Rows * w
	s.blocks = make([]sparseBlock, 0, s.Q)

	offset, last := 0, -1
	for r, cols := range s.retained {
		qr := len(cols)
		s.boff[r] = int32(len(s.blocks))
		if qr == 0 {
			continue
		}
		rows := qr * w
		if rows > s.MaxBandRows {
			s.MaxBandRows = rows
		}
		for k, c := range cols {
			// Ū_k holds the upper triangle of block c_k, L̄_k the strictly
			// lower triangle of the cyclic successor — both runs land on real
			// elements of the padded matrix for every 0 ≤ d < w.
			s.blocks = append(s.blocks, sparseBlock{
				uCol: int32(c * w),
				lCol: int32(cols[(k+1)%qr] * w),
			})
		}
		// Back-to-back program offsets, exactly as the structural path
		// schedules them; the last program's final MAC fixes T.
		last = offset + 2*(rows-1) + 2*w - 2
		offset += 2*w*qr + 2*w - 2
	}
	s.boff[nbar] = int32(len(s.blocks))
	if last >= 0 {
		s.T = last + 1
	}
	return s, nil
}

// Exec runs the compiled schedule over one problem's data. aflat is the
// padded matrix's backing storage (row-major n̄w × m̄w), xp the padded x
// (len ≥ m̄w), bp the padded b (len ≥ n̄w, zeros when there is no b), y the
// output buffer (len ≥ n̄w) and ybar scratch for the in-flight band rows
// (len ≥ MaxBandRows). Exec performs no allocation; each band row
// accumulates its w terms in the array's cycle order (increasing diagonal,
// feedback from the row w earlier — one grid-kernel block per retained
// block), so results are bit-identical to the structural simulator. Row
// bands with no retained blocks copy bp — they cost no array cycles.
func (s *SparseMatVec) Exec(aflat, xp, bp, y, ybar []float64) {
	w := s.W
	if len(aflat) < s.NBar*w*s.MBar*w || len(xp) < s.MBar*w || len(bp) < s.NBar*w ||
		len(y) < s.NBar*w || len(ybar) < s.MaxBandRows {
		panic(fmt.Sprintf("schedule: sparse Exec buffer sizes a=%d x=%d b=%d y=%d ybar=%d for w=%d n̄=%d m̄=%d maxrows=%d",
			len(aflat), len(xp), len(bp), len(y), len(ybar), w, s.NBar, s.MBar, s.MaxBandRows))
	}
	stride := s.MBar * w
	for r := 0; r < s.NBar; r++ {
		bs := s.blocks[s.boff[r]:s.boff[r+1]]
		if len(bs) == 0 {
			copy(y[r*w:(r+1)*w], bp[r*w:(r+1)*w])
			continue
		}
		arow := r * w * stride
		ini := bp[r*w : r*w+w]
		for kb := range bs {
			blk := &bs[kb]
			out := ybar[kb*w : (kb+1)*w]
			u := aflat[arow+int(blk.uCol):]
			lo := aflat[arow+int(blk.lCol):]
			xu := xp[blk.uCol:]
			xl := xp[blk.lCol:]
			switch s.kern {
			case kernW8:
				gridBlock8(out, ini, u, lo, xu, xl, stride)
			case kernW4:
				gridBlock4(out, ini, u, lo, xu, xl, stride)
			default:
				gridBlockGeneric(out, ini, u, lo, xu, xl, stride, w)
			}
			ini = out
		}
		// The last block of the chain holds y_r.
		copy(y[r*w:(r+1)*w], ybar[(len(bs)-1)*w:len(bs)*w])
	}
}

// RowRuns appends the contiguous-run descriptors of local band row l of row
// band r to dst and returns it: a Ū run of w−a terms and, for rows with
// a = l mod w > 0, an L̄ run of a terms — never an empty run (a = 0 rows
// compact to a single run, including the q_r = 1 case where the Ū→L̄ wrap
// targets the block itself). ABase indexes the padded matrix's backing
// storage, XBase the padded x; expanding the runs term by term reproduces
// exactly the per-MAC gather sequence the plan compiles away.
func (s *SparseMatVec) RowRuns(r, l int, dst []Run) []Run {
	w := s.W
	stride := s.MBar * w
	blk := s.blocks[int(s.boff[r])+l/w]
	a := l % w
	arow := int32((r*w + a) * stride)
	dst = append(dst, Run{
		ABase: arow + blk.uCol + int32(a),
		XBase: blk.uCol + int32(a),
		Len:   int32(w - a),
	})
	if a > 0 {
		dst = append(dst, Run{
			ABase: arow + blk.lCol,
			XBase: blk.lCol,
			Len:   int32(a),
		})
	}
	return dst
}

// Bytes returns the resident size of the compiled descriptors — the memory
// the plan cache pays per pattern. The run compaction makes this ~8 bytes
// per retained block (plus the canonical pattern copy) instead of the former
// 8 bytes per MAC.
func (s *SparseMatVec) Bytes() int {
	n := len(s.blocks)*8 + len(s.boff)*4 + len(s.q)*4
	for _, cols := range s.retained {
		n += 24 + len(cols)*8
	}
	return n
}

// BandSteps returns the 2w·q_r compute span of row band r's program — 0 for
// an empty band. The telescoped total is the T formula: Σ BandSteps +
// (active−1)(2w−2) + 2w − 3, and exactly 0 when no band is active.
func (s *SparseMatVec) BandSteps(r int) int {
	return 2 * s.W * int(s.q[r])
}

// ActiveBands returns the number of row bands with at least one retained
// block (the n̄₊ of the step-count formula).
func (s *SparseMatVec) ActiveBands() int {
	n := 0
	for _, qr := range s.q {
		if qr > 0 {
			n++
		}
	}
	return n
}

// Utilization returns MACs/(w·T), the PE utilization η the array would
// measure for this pattern (0 when the schedule is empty) — the exact
// float expression of the structural activity accounting.
func (s *SparseMatVec) Utilization() float64 {
	if s.T == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.W) * float64(s.T))
}

// PEMACs fills dst (len ≥ w) with the per-PE MAC counts of the schedule and
// returns dst[:w]. Every band row meets every PE exactly once, so each PE
// performs Rows MACs — the same uniform count the structural activity log
// reports.
func (s *SparseMatVec) PEMACs(dst []int) []int {
	dst = dst[:s.W]
	for k := range dst {
		dst[k] = s.Rows
	}
	return dst
}

// MatchesPattern reports whether the plan was compiled for exactly this
// retained-block pattern. Cache and memo hits verify it before replaying —
// the collision policy that makes the digest key safe.
func (s *SparseMatVec) MatchesPattern(retained [][]int) bool {
	if len(retained) != s.NBar {
		return false
	}
	for r, cols := range retained {
		sc := s.retained[r]
		if len(cols) != len(sc) {
			return false
		}
		for i, c := range cols {
			if sc[i] != c {
				return false
			}
		}
	}
	return true
}
