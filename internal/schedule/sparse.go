package schedule

import "fmt"

// This file compiles the §4 sparse matvec — the one workload whose schedule
// depends on data, not just shape. The schedule of a sparse solve is a pure
// function of (w, n̄, m̄) plus the retained-block *pattern*: which column
// blocks each row band keeps. The pattern is data-derived, so the plan cache
// for this workload is keyed by (shape, pattern digest) and every hit is
// verified against the full canonical pattern — a digest collision recompiles
// instead of replaying the wrong schedule (see SparseMatVecFor).

// SparseMatVec is a compiled schedule for the sparsity-aware DBT matvec
// (paper §4): one replayable program per non-empty row band over that band's
// retained column blocks, scheduled back to back on the same w-PE linear
// array. The U/L pairing telescopes over the retained subset (Ū_k = U_{r,c_k},
// L̄_k = L_{r,c_{(k+1) mod q}}), so every coefficient of the compiled band is
// an element of the padded matrix, and every band row's gather is at most
// two contiguous runs of it: a Ū run of w−a terms and (for rows with a > 0)
// an L̄ run of a terms, breaking only at the Ū→L̄ wrap. The plan stores one
// {Ū column, L̄ column} descriptor per retained block — 8 bytes per w² MACs
// instead of the former 8 bytes per MAC — and Exec replays each block
// through the shared grid kernels (kernel.go) in O(MACs) with no allocation.
type SparseMatVec struct {
	// W, NBar, MBar identify the shape half of the key.
	W, NBar, MBar int

	// Q is the retained-block count; Rows the total band row count Q·w;
	// MACs the multiply–accumulate count Q·w².
	Q, Rows, MACs int

	// T is the step count the array would measure: Σ_r 2w·q_r over the
	// non-empty row bands, plus (active−1)(2w−2) inter-band gaps and the
	// 2w−3 pipeline tail — exactly 0 when Q = 0 (empty bands cost nothing).
	T int

	// TOverlap is the step count of the overlapped schedule form (paper §2
	// applied to the §4 band programs): consecutive active band programs are
	// paired, and the second of each pair is offset one cycle into the first,
	// so its injections land on the first program's idle parity cycles — the
	// two programs share the array with no structural conflict (the linear
	// simulator's collision panics prove it) and each pair advances the
	// schedule by max of the two spans instead of their sum. Results and
	// per-PE MAC counts are identical to the back-to-back form; only the
	// step count (and with it utilization) changes. Equal to T when at most
	// one band is active, exactly 0 when Q = 0.
	TOverlap int

	// MaxBandRows is the largest per-band row count q_r·w — the scratch
	// length Exec needs for the in-flight band outputs.
	MaxBandRows int

	// q[r] is the retained-column count of row band r; retained the
	// canonical pattern copy (hit verification — see MatchesPattern).
	q        []int32
	retained [][]int

	// blocks holds one run descriptor per retained block, band-major (band
	// r owns blocks[boff[r]:boff[r+1]]): the padded-column bases of the
	// block's Ū coefficients (c_k·w) and L̄ coefficients (c_{(k+1) mod q}·w).
	// Together with the fixed band-row stride these expand to the per-row
	// runs (see RowRuns); Exec replays them directly.
	blocks []sparseBlock
	boff   []int32

	// kern selects the replay kernel family for W (kernel.go).
	kern kern
}

// sparseBlock is the compiled run descriptor of one retained block: the
// padded-matrix column bases its Ū and L̄ runs read coefficients and x̄
// elements from.
type sparseBlock struct {
	uCol, lCol int32
}

// compileSparseMatVec builds the schedule for one shape and pattern. It
// errors on a malformed pattern (wrong band count, columns out of range or
// not strictly increasing) — the failure mode of a hand-built pattern;
// patterns derived by sparse.NewMatVec are canonical by construction.
func compileSparseMatVec(w, nbar, mbar int, retained [][]int) (*SparseMatVec, error) {
	if w < 1 || nbar < 1 || mbar < 1 {
		return nil, fmt.Errorf("schedule: invalid sparse matvec shape w=%d n̄=%d m̄=%d", w, nbar, mbar)
	}
	if len(retained) != nbar {
		return nil, fmt.Errorf("schedule: sparse pattern has %d row bands, want n̄=%d", len(retained), nbar)
	}
	s := &SparseMatVec{
		W: w, NBar: nbar, MBar: mbar,
		q:        make([]int32, nbar),
		retained: make([][]int, nbar),
		boff:     make([]int32, nbar+1),
		kern:     kernelFor(w),
	}
	for r, cols := range retained {
		prev := -1
		for _, c := range cols {
			if c <= prev || c >= mbar {
				return nil, fmt.Errorf("schedule: sparse pattern row band %d: columns must be strictly increasing in [0,%d): %v", r, mbar, cols)
			}
			prev = c
		}
		s.q[r] = int32(len(cols))
		s.retained[r] = append([]int(nil), cols...)
		s.Q += len(cols)
	}
	s.Rows = s.Q * w
	s.MACs = s.Rows * w
	s.blocks = make([]sparseBlock, 0, s.Q)

	offset, last := 0, -1
	for r, cols := range s.retained {
		qr := len(cols)
		s.boff[r] = int32(len(s.blocks))
		if qr == 0 {
			continue
		}
		rows := qr * w
		if rows > s.MaxBandRows {
			s.MaxBandRows = rows
		}
		for k, c := range cols {
			// Ū_k holds the upper triangle of block c_k, L̄_k the strictly
			// lower triangle of the cyclic successor — both runs land on real
			// elements of the padded matrix for every 0 ≤ d < w.
			s.blocks = append(s.blocks, sparseBlock{
				uCol: int32(c * w),
				lCol: int32(cols[(k+1)%qr] * w),
			})
		}
		// Back-to-back program offsets, exactly as the structural path
		// schedules them; the last program's final MAC fixes T.
		last = offset + 2*(rows-1) + 2*w - 2
		offset += 2*w*qr + 2*w - 2
	}
	s.boff[nbar] = int32(len(s.blocks))
	if last >= 0 {
		s.T = last + 1
	}

	// Overlapped form: walk the active-band program spans pairwise. The
	// first program of a pair sits at an even offset, the second one cycle
	// later on the opposite injection parity; the pair advances the offset
	// by the larger span (spans are even, so pair starts stay even and the
	// parity split holds for the whole schedule). A program's last MAC is
	// at offset + span − 2, exactly as in the back-to-back form.
	var spans []int
	for _, cols := range s.retained {
		if len(cols) > 0 {
			spans = append(spans, 2*w*len(cols)+2*w-2)
		}
	}
	offset, last = 0, -1
	for p := 0; p < len(spans); p += 2 {
		adv := spans[p]
		last = offset + spans[p] - 2
		if p+1 < len(spans) {
			if lc := offset + 1 + spans[p+1] - 2; lc > last {
				last = lc
			}
			if spans[p+1] > adv {
				adv = spans[p+1]
			}
		}
		offset += adv
	}
	if last >= 0 {
		s.TOverlap = last + 1
	}
	return s, nil
}

// Exec runs the compiled schedule over one problem's data. aflat is the
// padded matrix's backing storage (row-major n̄w × m̄w), xp the padded x
// (len ≥ m̄w), bp the padded b (len ≥ n̄w, zeros when there is no b), y the
// output buffer (len ≥ n̄w) and ybar scratch for the in-flight band rows
// (len ≥ MaxBandRows). Exec performs no allocation; each band row
// accumulates its w terms in the array's cycle order (increasing diagonal,
// feedback from the row w earlier — one grid-kernel block per retained
// block), so results are bit-identical to the structural simulator. Row
// bands with no retained blocks copy bp — they cost no array cycles.
func (s *SparseMatVec) Exec(aflat, xp, bp, y, ybar []float64) {
	w := s.W
	if len(aflat) < s.NBar*w*s.MBar*w || len(xp) < s.MBar*w || len(bp) < s.NBar*w ||
		len(y) < s.NBar*w || len(ybar) < s.MaxBandRows {
		panic(fmt.Sprintf("schedule: sparse Exec buffer sizes a=%d x=%d b=%d y=%d ybar=%d for w=%d n̄=%d m̄=%d maxrows=%d",
			len(aflat), len(xp), len(bp), len(y), len(ybar), w, s.NBar, s.MBar, s.MaxBandRows))
	}
	stride := s.MBar * w
	for r := 0; r < s.NBar; r++ {
		bs := s.blocks[s.boff[r]:s.boff[r+1]]
		if len(bs) == 0 {
			copy(y[r*w:(r+1)*w], bp[r*w:(r+1)*w])
			continue
		}
		arow := r * w * stride
		ini := bp[r*w : r*w+w]
		for kb := range bs {
			blk := &bs[kb]
			out := ybar[kb*w : (kb+1)*w]
			u := aflat[arow+int(blk.uCol):]
			lo := aflat[arow+int(blk.lCol):]
			xu := xp[blk.uCol:]
			xl := xp[blk.lCol:]
			switch s.kern {
			case kernW8:
				gridBlock8(out, ini, u, lo, xu, xl, stride)
			case kernW4:
				gridBlock4(out, ini, u, lo, xu, xl, stride)
			default:
				gridBlockGeneric(out, ini, u, lo, xu, xl, stride, w)
			}
			ini = out
		}
		// The last block of the chain holds y_r.
		copy(y[r*w:(r+1)*w], ybar[(len(bs)-1)*w:len(bs)*w])
	}
}

// ExecMany replays the compiled schedule over k right-hand-side vectors in
// one call — the batched counterpart of Exec. The operand buffers hold the
// k problems strided: xp is k padded x vectors at stride m̄w, bp and y are k
// padded b/output vectors at stride n̄w, and ybar is k in-flight band
// scratch regions at stride MaxBandRows. ExecMany performs no allocation
// and visits the plan band-major with the vectors innermost per retained
// block, so each block's coefficient runs are decoded once and stay hot in
// cache across the whole batch; at the specialized widths vectors run in
// pairs through the x2 grid kernels, each coefficient load feeding two
// independent accumulator chains — the amortization and extra ILP that make
// a batch beat k independent Exec calls. Per result element the w terms
// accumulate in
// exactly Exec's order (vectors are independent problems; interleaving them
// never reassociates within a row), so every vector's output is
// bit-identical to a lone Exec of that vector.
func (s *SparseMatVec) ExecMany(aflat, xp, bp, y, ybar []float64, k int) {
	w := s.W
	xs, ys := s.MBar*w, s.NBar*w
	if k < 1 || len(aflat) < s.NBar*w*s.MBar*w || len(xp) < k*xs || len(bp) < k*ys ||
		len(y) < k*ys || len(ybar) < k*s.MaxBandRows {
		panic(fmt.Sprintf("schedule: sparse ExecMany buffer sizes a=%d x=%d b=%d y=%d ybar=%d for k=%d w=%d n̄=%d m̄=%d maxrows=%d",
			len(aflat), len(xp), len(bp), len(y), len(ybar), k, w, s.NBar, s.MBar, s.MaxBandRows))
	}
	stride := s.MBar * w
	for r := 0; r < s.NBar; r++ {
		bs := s.blocks[s.boff[r]:s.boff[r+1]]
		if len(bs) == 0 {
			for v := 0; v < k; v++ {
				copy(y[v*ys+r*w:v*ys+(r+1)*w], bp[v*ys+r*w:v*ys+(r+1)*w])
			}
			continue
		}
		arow := r * w * stride
		for kb := range bs {
			blk := &bs[kb]
			u := aflat[arow+int(blk.uCol):]
			lo := aflat[arow+int(blk.lCol):]
			operands := func(v int) (out, ini, xu, xl []float64) {
				out = ybar[v*s.MaxBandRows+kb*w : v*s.MaxBandRows+(kb+1)*w]
				if kb == 0 {
					ini = bp[v*ys+r*w : v*ys+r*w+w]
				} else {
					ini = ybar[v*s.MaxBandRows+(kb-1)*w : v*s.MaxBandRows+kb*w]
				}
				xu = xp[v*xs+int(blk.uCol):]
				xl = xp[v*xs+int(blk.lCol):]
				return
			}
			// The specialized widths run vector *pairs* through the x2
			// kernels — one coefficient load feeds both accumulator chains —
			// with a single-vector call mopping up an odd tail.
			v := 0
			switch s.kern {
			case kernW8:
				for ; v+1 < k; v += 2 {
					out0, ini0, xu0, xl0 := operands(v)
					out1, ini1, xu1, xl1 := operands(v + 1)
					gridBlock8x2(out0, out1, ini0, ini1, u, lo, xu0, xl0, xu1, xl1, stride)
				}
				if v < k {
					out, ini, xu, xl := operands(v)
					gridBlock8(out, ini, u, lo, xu, xl, stride)
				}
			case kernW4:
				for ; v+1 < k; v += 2 {
					out0, ini0, xu0, xl0 := operands(v)
					out1, ini1, xu1, xl1 := operands(v + 1)
					gridBlock4x2(out0, out1, ini0, ini1, u, lo, xu0, xl0, xu1, xl1, stride)
				}
				if v < k {
					out, ini, xu, xl := operands(v)
					gridBlock4(out, ini, u, lo, xu, xl, stride)
				}
			default:
				for ; v < k; v++ {
					out, ini, xu, xl := operands(v)
					gridBlockGeneric(out, ini, u, lo, xu, xl, stride, w)
				}
			}
		}
		for v := 0; v < k; v++ {
			copy(y[v*ys+r*w:v*ys+(r+1)*w], ybar[v*s.MaxBandRows+(len(bs)-1)*w:v*s.MaxBandRows+len(bs)*w])
		}
	}
}

// OverlapUtilization returns MACs/(w·TOverlap), the PE utilization of the
// overlapped schedule form (0 when the schedule is empty) — the figure the
// §2 overlapping lifts toward the dense bound.
func (s *SparseMatVec) OverlapUtilization() float64 {
	if s.TOverlap == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.W) * float64(s.TOverlap))
}

// RowRuns appends the contiguous-run descriptors of local band row l of row
// band r to dst and returns it: a Ū run of w−a terms and, for rows with
// a = l mod w > 0, an L̄ run of a terms — never an empty run (a = 0 rows
// compact to a single run, including the q_r = 1 case where the Ū→L̄ wrap
// targets the block itself). ABase indexes the padded matrix's backing
// storage, XBase the padded x; expanding the runs term by term reproduces
// exactly the per-MAC gather sequence the plan compiles away.
func (s *SparseMatVec) RowRuns(r, l int, dst []Run) []Run {
	w := s.W
	stride := s.MBar * w
	blk := s.blocks[int(s.boff[r])+l/w]
	a := l % w
	arow := int32((r*w + a) * stride)
	dst = append(dst, Run{
		ABase: arow + blk.uCol + int32(a),
		XBase: blk.uCol + int32(a),
		Len:   int32(w - a),
	})
	if a > 0 {
		dst = append(dst, Run{
			ABase: arow + blk.lCol,
			XBase: blk.lCol,
			Len:   int32(a),
		})
	}
	return dst
}

// Bytes returns the resident size of the compiled descriptors — the memory
// the plan cache pays per pattern. The run compaction makes this ~8 bytes
// per retained block (plus the canonical pattern copy) instead of the former
// 8 bytes per MAC.
func (s *SparseMatVec) Bytes() int {
	n := len(s.blocks)*8 + len(s.boff)*4 + len(s.q)*4
	for _, cols := range s.retained {
		n += 24 + len(cols)*8
	}
	return n
}

// BandSteps returns the 2w·q_r compute span of row band r's program — 0 for
// an empty band. The telescoped total is the T formula: Σ BandSteps +
// (active−1)(2w−2) + 2w − 3, and exactly 0 when no band is active.
func (s *SparseMatVec) BandSteps(r int) int {
	return 2 * s.W * int(s.q[r])
}

// ActiveBands returns the number of row bands with at least one retained
// block (the n̄₊ of the step-count formula).
func (s *SparseMatVec) ActiveBands() int {
	n := 0
	for _, qr := range s.q {
		if qr > 0 {
			n++
		}
	}
	return n
}

// Utilization returns MACs/(w·T), the PE utilization η the array would
// measure for this pattern (0 when the schedule is empty) — the exact
// float expression of the structural activity accounting.
func (s *SparseMatVec) Utilization() float64 {
	if s.T == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.W) * float64(s.T))
}

// PEMACs fills dst (len ≥ w) with the per-PE MAC counts of the schedule and
// returns dst[:w]. Every band row meets every PE exactly once, so each PE
// performs Rows MACs — the same uniform count the structural activity log
// reports.
func (s *SparseMatVec) PEMACs(dst []int) []int {
	dst = dst[:s.W]
	for k := range dst {
		dst[k] = s.Rows
	}
	return dst
}

// MatchesPattern reports whether the plan was compiled for exactly this
// retained-block pattern. Cache and memo hits verify it before replaying —
// the collision policy that makes the digest key safe.
func (s *SparseMatVec) MatchesPattern(retained [][]int) bool {
	if len(retained) != s.NBar {
		return false
	}
	for r, cols := range retained {
		sc := s.retained[r]
		if len(cols) != len(sc) {
			return false
		}
		for i, c := range cols {
			if sc[i] != c {
				return false
			}
		}
	}
	return true
}
