package schedule

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// These tests pin the plan cache's concurrency contract now that passes
// replay in parallel inside one solve: many goroutines resolving the same
// shape must all get usable (and eventually shared) plans, and a plan held
// by a replaying goroutine must stay valid while the bounded cache rotates
// underneath it. Run with -race (CI does).

// TestPlanCacheConcurrentSameShape: hammer one shape from many goroutines,
// replaying each resolved plan and checking the numeric result every time.
func TestPlanCacheConcurrentSameShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const w, nm = 3, 4
	a := matrix.RandomDense(rng, nm*w, w, 5)
	x := matrix.RandomVector(rng, w, 5)
	want := a.MulVec(x, nil)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := dbt.NewMatVec(a, w)
			band := make([]float64, tr.BandRows()*w)
			tr.PackBand(band)
			xbar := tr.TransformX(x)
			for i := 0; i < 200; i++ {
				sch, err := MatVecFor(tr, false)
				if err != nil {
					t.Error(err)
					return
				}
				y := make([]float64, sch.Rows)
				b := make([]float64, sch.BLen)
				sch.Exec(band, xbar, b, y)
				got := tr.RecoverYFlat(make(matrix.Vector, tr.N), y)
				if !got.Equal(want, 0) {
					t.Error("concurrent replay produced a wrong result")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPlanCacheEvictionWhileInUse: push the bounded cache past its cap
// (forcing the drop-and-rebuild rotation) while other goroutines keep
// replaying plans they resolved before the rotation. Plans are immutable,
// so a rotated-out plan must keep replaying correctly, and re-resolving
// its shape must still work.
func TestPlanCacheEvictionWhileInUse(t *testing.T) {
	if testing.Short() {
		t.Skip("fills the plan cache past its bound")
	}
	const w = 2
	held := TriSolveFor(5, w)
	lband := []float64{2, 0, 1, 3, 1, 1, 2, 1, 1, 2}
	b := []float64{2, 4, 3, 5, 4}
	x := make([]float64, 5)
	held.Exec(lband, b, x)
	want := append([]float64(nil), x...)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				held.Exec(lband, b, x2(len(b)))
				if got := TriSolveFor(5, w); got.T != held.T || got.N != held.N {
					t.Error("re-resolved plan disagrees with the held one")
					return
				}
			}
		}()
	}
	// Rotate the cache at least twice over.
	for n := 10; n < 10+2*maxCached+10; n++ {
		TriSolveFor(n, w)
	}
	close(stop)
	wg.Wait()

	held.Exec(lband, b, x)
	for i := range x {
		if x[i] != want[i] {
			t.Fatal("held plan changed behavior after eviction")
		}
	}
}

// x2 allocates a fresh output buffer (keeps the hammer goroutines honest
// about not sharing output state).
func x2(n int) []float64 { return make([]float64, n) }

// TestPlanMemoSharesPlans: the per-arena memo must return the same plan
// pointer as the global cache, and hit its private map on repeats.
func TestPlanMemoSharesPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pm := NewPlanMemo()
	a := matrix.RandomDense(rng, 6, 4, 3)
	tr := dbt.NewMatVec(a, 2)
	first, err := pm.MatVecFor(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	global, err := MatVecFor(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if first != global {
		t.Error("memo and global cache disagree on the plan instance")
	}
	again, err := pm.MatVecFor(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("memo failed to hit on a repeated shape")
	}
	if pm.TriSolveFor(7, 3) != pm.TriSolveFor(7, 3) {
		t.Error("trisolve memo failed to hit on a repeated shape")
	}
	am := matrix.RandomDense(rng, 4, 4, 3)
	bm := matrix.RandomDense(rng, 4, 4, 3)
	tm := dbt.NewMatMul(am, bm, 2)
	if pm.MatMulFor(tm) != pm.MatMulFor(tm) {
		t.Error("matmul memo failed to hit on a repeated shape")
	}
}

// TestTransformPoolRoundTrip: pooled transforms must be rebuilt correctly
// for every new shape, concurrently.
func TestTransformPoolRoundTrip(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				w := 1 + rng.Intn(4)
				n, m := 1+rng.Intn(3*w), 1+rng.Intn(3*w)
				a := matrix.RandomDense(rng, n, m, 5)
				tr := GetMatVec(a, w)
				fresh := dbt.NewMatVec(a, w)
				for i := 0; i < fresh.BandRows(); i++ {
					for d := 0; d < w; d++ {
						if j := i + d; j < fresh.BandCols() && tr.BandAt(i, j) != fresh.BandAt(i, j) {
							t.Errorf("pooled transform band mismatch at (%d,%d)", i, j)
							PutMatVec(tr)
							return
						}
					}
				}
				PutMatVec(tr)

				p := 1 + rng.Intn(2*w)
				bm := matrix.RandomDense(rng, m, p, 4)
				am := matrix.RandomDense(rng, n, m, 4)
				tm := GetMatMul(am, bm, w)
				freshM := dbt.NewMatMul(am, bm, w)
				if tm.Dim() != freshM.Dim() || tm.NBar != freshM.NBar || tm.PBar != freshM.PBar || tm.MBar != freshM.MBar {
					t.Errorf("pooled matmul transform header mismatch")
				}
				PutMatMul(tm)
			}
		}(int64(100 + g))
	}
	wg.Wait()
}
