package schedule

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dbt"
	"repro/internal/matrix"
)

// BenchmarkReplayKernels is the kernel ladder (EXPERIMENTS E19): every replay
// path at the specialized widths, generic vs unrolled, at a fixed 1024-MAC
// working set so rows are comparable across widths. The "generic" rows are
// what CI's kernel-generic job (REPRO_GENERIC_KERNELS) runs everywhere; the
// "unrolled" rows are the default production kernels; the matvec-grid rows
// additionally skip the pack by replaying the padded grid directly.
func BenchmarkReplayKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	for _, w := range []int{4, 8} {
		kerns := []struct {
			name string
			k    kern
		}{{"generic", kernGeneric}, {"unrolled", kernelFor(w)}}

		// Dense matvec: n̄ = 1024/w² blocks of w rows, m̄ = 1.
		nm := 1024 / (w * w)
		a := randDense(rng, nm*w, w)
		x := randFloats(rng, w)
		tr := dbt.NewMatVec(a, w)
		s, err := compileMatVec(tr, false)
		if err != nil {
			b.Fatal(err)
		}
		band := make([]float64, s.Rows*w)
		tr.PackBand(band)
		xbar := tr.TransformX(matrix.Vector(x))
		bp := make([]float64, s.BLen)
		y := make([]float64, s.Rows)
		xp := make([]float64, w)
		copy(xp, x)
		aflat := tr.Grid.Padded().Raw()
		for _, k := range kerns {
			b.Run(fmt.Sprintf("matvec-exec/w=%d/%s", w, k.name), func(b *testing.B) {
				b.ReportAllocs()
				saved := s.kern
				s.kern = k.k
				defer func() { s.kern = saved }()
				for i := 0; i < b.N; i++ {
					s.Exec(band, xbar, bp, y)
				}
				b.ReportMetric(float64(s.MACs), "MACs")
			})
			b.Run(fmt.Sprintf("matvec-grid/w=%d/%s", w, k.name), func(b *testing.B) {
				b.ReportAllocs()
				saved := s.kern
				s.kern = k.k
				defer func() { s.kern = saved }()
				for i := 0; i < b.N; i++ {
					s.ExecGrid(aflat, xp, bp, y)
				}
				b.ReportMetric(float64(s.MACs), "MACs")
			})
		}

		// Sparse matvec: full pattern with n̄·m̄ = 1024/w² retained blocks.
		mbar := 4
		nbar := 1024 / (w * w) / mbar
		retained := make([][]int, nbar)
		for r := range retained {
			retained[r] = []int{0, 1, 2, 3}
		}
		sp, err := compileSparseMatVec(w, nbar, mbar, retained)
		if err != nil {
			b.Fatal(err)
		}
		sa := randDense(rng, nbar*w, mbar*w)
		sx := randFloats(rng, mbar*w)
		sb := randFloats(rng, nbar*w)
		sy := make([]float64, nbar*w)
		sybar := make([]float64, sp.MaxBandRows)
		for _, k := range kerns {
			b.Run(fmt.Sprintf("sparse-exec/w=%d/%s", w, k.name), func(b *testing.B) {
				b.ReportAllocs()
				saved := sp.kern
				sp.kern = k.k
				defer func() { sp.kern = saved }()
				for i := 0; i < b.N; i++ {
					sp.Exec(sa.Raw(), sx, sb, sy, sybar)
				}
				b.ReportMetric(float64(sp.MACs), "MACs")
			})
		}

		// Band triangular solve: n = 1024/w rows of a w-diagonal band.
		n := 1024 / w
		ts := compileTriSolve(n, w)
		lband := randFloats(rng, n*w)
		for i := 0; i < n; i++ {
			lband[i*w] = 1 + rng.Float64()
			for d := i + 1; d < w; d++ {
				lband[i*w+d] = 0
			}
		}
		tb := randFloats(rng, n)
		tx := make([]float64, n)
		for _, k := range kerns {
			b.Run(fmt.Sprintf("trisolve-exec/w=%d/%s", w, k.name), func(b *testing.B) {
				b.ReportAllocs()
				saved := ts.kern
				ts.kern = k.k
				defer func() { ts.kern = saved }()
				for i := 0; i < b.N; i++ {
					ts.Exec(lband, tb, tx)
				}
				b.ReportMetric(float64(ts.MACs), "MACs")
			})
		}
	}
}

// BenchmarkMatMulCopyDelays measures the hex stats path's delay-histogram
// copy. The compiled bins are immutable sorted slices copied on read — two
// slice allocations per call, where the former map rebuild paid two map
// headers plus a bucket chain per distinct delay.
func BenchmarkMatMulCopyDelays(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(52))
	w := 3
	am := randDense(rng, 3*w, 3*w)
	bm := randDense(rng, 3*w, 3*w)
	sch := MatMulFor(dbt.NewMatMul(am, bm, w))
	for i := 0; i < b.N; i++ {
		reg, irr := sch.CopyDelays()
		if len(reg) == 0 && len(irr) == 0 {
			b.Fatal("no delay bins")
		}
	}
}
