// Package repro reproduces Navarro, Llabería & Valero, "Computing
// Size-Independent Matrix Problems on Systolic Array Processors"
// (ISCA 1986): the DBT dense-to-band transformations that let fixed-size
// contraflow systolic arrays (Kung's linear matrix–vector array and
// hexagonal matrix–matrix array) compute dense problems of any size at
// maximum efficiency, with all partial results fed back inside the array.
//
// The library lives under internal/: matrix and blockpart are the algebra
// substrate, dbt holds the transformations, linear and hex are
// cycle-accurate structural array simulators (the verification oracle),
// schedule the compiled-schedule fast engine (cached event plans executed
// in O(MACs), bit-identical to the oracle — shape-keyed for the dense
// workloads, pattern-keyed for the §4 sparse matvec), analysis the paper's
// closed forms, baseline/sparse/solve the comparison points and §4
// extensions, core the public solver facade with engine selection and the
// SolveBatch worker-pool API, and stream the sharded stream-scheduler
// runtime that keeps a persistent fleet of simulated arrays busy across a
// continuous problem stream (NewStream below is its entry point), routing
// jobs by shape — and, for sparse jobs, sparsity-pattern — affinity. See
// DESIGN.md for the system inventory and two-engine architecture and
// EXPERIMENTS.md for paper-vs-measured results; the benchmarks in
// bench_test.go regenerate every experiment's headline metrics.
package repro

import "repro/internal/stream"

// Stream is the sharded stream-scheduler runtime: a persistent fleet of
// simulated systolic arrays serving an asynchronous problem stream, with
// shape-affinity routing, work stealing and bounded admission. See
// internal/stream for the full model.
type Stream = stream.Scheduler

// StreamConfig sizes a Stream; the zero value means GOMAXPROCS shards,
// the default queue bound and blocking admission.
type StreamConfig = stream.Config

// StreamPolicy selects what a saturated Stream does on Submit:
// StreamBlock applies backpressure, StreamShed fails fast with
// stream.ErrSaturated.
type StreamPolicy = stream.Policy

// StreamBlock and StreamShed are the admission policies of a Stream.
const (
	StreamBlock StreamPolicy = stream.Block
	StreamShed  StreamPolicy = stream.Shed
)

// StreamStats is a point-in-time snapshot of a Stream's admission and
// failure counters: submitted/completed depth, per-priority sheds,
// deadline expiries and recovered panics.
type StreamStats = stream.Stats

// StreamQoS attaches a completion deadline and a priority class to the
// SubmitXxxQoS submission variants; the zero value reproduces the plain
// Submit* behavior (no deadline, High priority).
type StreamQoS = stream.QoS

// StreamInjector induces deterministic, seed-keyed faults (forced sheds,
// delays, panics, a stalled shard) in a Stream for chaos testing; attach
// one through StreamConfig.Injector.
type StreamInjector = stream.Injector

// StreamSolveTicket is the one-shot future of a Stream.SubmitSolve job:
// Wait returns a caller-owned solution vector and stats, exactly what the
// serial one-shot solve.Solve would return.
type StreamSolveTicket = stream.SolveTicket

// StreamSolvePassTicket is the one-shot future of a Stream.SubmitSolveInto
// job: the solution lands in the caller's buffer and Wait returns the
// stats by value — the zero-allocation solve-as-a-service path.
type StreamSolvePassTicket = stream.SolvePassTicket

// StreamSparseBatchTicket is the one-shot future of a
// Stream.SubmitSparseBatch job: k right-hand sides through one
// pattern-keyed plan as a single ticket — one routing and admission
// decision for the whole batch — with Wait returning one Result per
// vector, each exactly what the per-vector serial solve would return.
type StreamSparseBatchTicket = stream.SparseBatchTicket

// NewStream starts a stream scheduler; Close it when done. Typical use:
//
//	s := repro.NewStream(repro.StreamConfig{Shards: 4})
//	defer s.Close()
//	t, err := s.SubmitMatVec(8, core.MatVecProblem{A: a, X: x})
//	...
//	res, err := t.Wait()
func NewStream(cfg StreamConfig) *Stream { return stream.New(cfg) }
