// Package repro reproduces Navarro, Llabería & Valero, "Computing
// Size-Independent Matrix Problems on Systolic Array Processors"
// (ISCA 1986): the DBT dense-to-band transformations that let fixed-size
// contraflow systolic arrays (Kung's linear matrix–vector array and
// hexagonal matrix–matrix array) compute dense problems of any size at
// maximum efficiency, with all partial results fed back inside the array.
//
// The library lives under internal/: matrix and blockpart are the algebra
// substrate, dbt holds the transformations, linear and hex are
// cycle-accurate structural array simulators (the verification oracle),
// schedule the compiled-schedule fast engine (shape-cached event plans
// executed in O(MACs), bit-identical to the oracle), analysis the paper's
// closed forms, baseline/sparse/solve the comparison points and §4
// extensions, and core the public solver facade with engine selection and
// the SolveBatch worker-pool API. See DESIGN.md for the system inventory
// and two-engine architecture and EXPERIMENTS.md for paper-vs-measured
// results; the benchmarks in bench_test.go regenerate every experiment's
// headline metrics.
package repro
