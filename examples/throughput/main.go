// Throughput: a batch of independent problems scheduled on the two fixed
// arrays using every throughput option the paper offers — two matvec jobs
// interleaved on the linear array (§2 "overlapping the execution of
// several problems") and three matmul jobs interleaved on the hexagonal
// array (the 3-cycle stream spacing admits exactly three) — versus running
// the same batch sequentially.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/matrix"
)

func main() {
	const w = 4
	rng := rand.New(rand.NewSource(5))

	// --- Linear array: a queue of 6 matvec jobs, served in pairs. ---
	mv := core.NewMatVecSolver(w)
	type mvJob struct {
		a *matrix.Dense
		x matrix.Vector
	}
	var jobs []mvJob
	for i := 0; i < 6; i++ {
		n := 2*w + rng.Intn(2*w)
		m := 2*w + rng.Intn(2*w)
		jobs = append(jobs, mvJob{matrix.RandomDense(rng, n, m, 4), matrix.RandomVector(rng, m, 4)})
	}
	seqT := 0
	for _, j := range jobs {
		res, err := mv.Solve(j.a, j.x, nil, core.MatVecOptions{})
		if err != nil {
			log.Fatal(err)
		}
		seqT += res.Stats.T
	}
	pairT := 0
	for i := 0; i < len(jobs); i += 2 {
		ys, stats, err := mv.SolveMany(
			[]*matrix.Dense{jobs[i].a, jobs[i+1].a},
			[]matrix.Vector{jobs[i].x, jobs[i+1].x}, nil)
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			if !ys[k].Equal(jobs[i+k].a.MulVec(jobs[i+k].x, nil), 0) {
				log.Fatalf("job %d wrong", i+k)
			}
		}
		pairT += stats.T
	}
	fmt.Printf("linear array (%d PEs), 6 matvec jobs:\n", w)
	fmt.Printf("  sequential: %5d steps\n", seqT)
	fmt.Printf("  paired:     %5d steps  (%.2fx throughput)\n", pairT, float64(seqT)/float64(pairT))

	// --- Hexagonal array: a queue of 6 matmul jobs, served in triples. ---
	mm := core.NewMatMulSolver(w)
	var as, bs []*matrix.Dense
	for i := 0; i < 6; i++ {
		n := w + rng.Intn(w)
		p := w + rng.Intn(w)
		m := w + rng.Intn(w)
		as = append(as, matrix.RandomDense(rng, n, p, 3))
		bs = append(bs, matrix.RandomDense(rng, p, m, 3))
	}
	seqT = 0
	for i := range as {
		res, err := mm.Solve(as[i], bs[i], core.MatMulOptions{})
		if err != nil {
			log.Fatal(err)
		}
		seqT += res.Stats.T
	}
	tripleT := 0
	for i := 0; i < len(as); i += 3 {
		cs, stats, err := mm.SolveMany(as[i:i+3], bs[i:i+3])
		if err != nil {
			log.Fatal(err)
		}
		for k := range cs {
			if !cs[k].Equal(as[i+k].Mul(bs[i+k]), 0) {
				log.Fatalf("matmul job %d wrong", i+k)
			}
		}
		tripleT += stats.T
	}
	fmt.Printf("hexagonal array (%d×%d PEs), 6 matmul jobs:\n", w, w)
	fmt.Printf("  sequential: %5d steps\n", seqT)
	fmt.Printf("  tripled:    %5d steps  (%.2fx throughput)\n", tripleT, float64(seqT)/float64(tripleT))
}
