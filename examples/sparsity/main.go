// Sparsity: the paper's §4 extension — a block-sparse matrix (here the
// arrow-shaped connectivity of a hub-and-spoke network) multiplies a vector
// on a fixed array, with all-zero w×w blocks excluded from the band. Total
// steps drop roughly with block density while the result stays exact.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

func main() {
	const (
		arrayW = 4
		nb     = 10 // block grid: 10×10 blocks of 4×4
	)
	rng := rand.New(rand.NewSource(3))

	// Arrow matrix: dense first block row/column (the hub) + block diagonal
	// (local links). Density = (3·nb − 2)/nb².
	n := nb * arrayW
	a := matrix.NewDense(n, n)
	fill := func(br, bs int) {
		for i := 0; i < arrayW; i++ {
			for j := 0; j < arrayW; j++ {
				a.Set(br*arrayW+i, bs*arrayW+j, float64(rng.Intn(9)-4))
			}
		}
	}
	for b := 0; b < nb; b++ {
		fill(0, b)
		fill(b, 0)
		fill(b, b)
	}
	x := matrix.RandomVector(rng, n, 4)

	tr := sparse.NewMatVec(a, arrayW)
	res, err := tr.Solve(x, nil)
	if err != nil {
		log.Fatal(err)
	}
	denseT := analysis.MatVecSteps(arrayW, nb, nb)
	fmt.Printf("arrow matrix %d×%d on a %d-PE array:\n", n, n, arrayW)
	fmt.Printf("  retained blocks Q = %d of %d (density %.2f)\n", res.Q, nb*nb, tr.Density())
	fmt.Printf("  exact result: %v\n", res.Y.Equal(a.MulVec(x, nil), 0))
	fmt.Printf("  steps: %d sparse vs %d dense DBT — %.2fx faster\n",
		res.T, denseT, float64(denseT)/float64(res.T))
	fmt.Printf("  (predicted sparse schedule: %d steps)\n", tr.PredictedSteps())

	// Per-row-band retained pattern.
	fmt.Println("  retained column blocks per row band:")
	for r, cols := range tr.Retained {
		fmt.Printf("    band %d: %v\n", r, cols)
	}
}
