// Ludecomp: the remaining §4 applications — block LU factorization, dense
// inversion and triangular system solution, all with the O(n³)/O(n²) work
// inside fixed-size systolic arrays. A small circuit-analysis-style linear
// system (diagonally dominant conductance matrix) is factored, solved via
// the triangular-solver array, and inverted, with every trailing update and
// panel product running as array passes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/solve"
	"repro/internal/trisolve"
)

func main() {
	const (
		arrayW = 4
		n      = 18 // unknowns — unrelated to the array size
	)
	rng := rand.New(rand.NewSource(11))

	// A conductance-like system: off-diagonal couplings, dominant diagonal.
	a := matrix.RandomDense(rng, n, n, 3)
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				if a.At(i, j) > 0 {
					row += a.At(i, j)
				} else {
					row -= a.At(i, j)
				}
			}
		}
		a.Set(i, i, row+2)
	}
	want := matrix.RandomVector(rng, n, 4)
	d := a.MulVec(want, nil)

	// 1. Factor A = L·U with trailing updates on the hexagonal array.
	l, u, luStats, err := solve.BlockLU(a, arrayW, solve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BlockLU of %d×%d on a %d×%d hexagonal array:\n", n, n, arrayW, arrayW)
	fmt.Printf("  L·U = A to %.1e; %d array passes, %d array steps, %d host ops (diag blocks only)\n",
		l.Mul(u).MaxAbsDiff(a), luStats.ArrayPasses, luStats.ArraySteps, luStats.HostOps)

	// 2. Solve L·(U·x) = d with both triangular systems on arrays: the
	// dedicated triangular-solver array handles the diagonal blocks, the
	// matvec array the off-diagonal panels.
	ts := trisolve.NewSolver(arrayW)
	fw, err := ts.SolveLower(l, d)
	if err != nil {
		log.Fatal(err)
	}
	bw, err := ts.SolveUpper(u, fw.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangular solves on the %d-PE solver array:\n", arrayW)
	fmt.Printf("  forward:  %d tri passes (%d steps) + %d matvec passes (%d steps)\n",
		fw.TriPasses, fw.TriSteps, fw.MatVecPasses, fw.MatVecSteps)
	fmt.Printf("  backward: %d tri passes (%d steps) + %d matvec passes (%d steps)\n",
		bw.TriPasses, bw.TriSteps, bw.MatVecPasses, bw.MatVecSteps)
	fmt.Printf("  solution error vs truth: %.1e\n", bw.X.MaxAbsDiff(want))

	// 3. Full inverse (U⁻¹·L⁻¹), §4's last list item.
	inv, invStats, err := solve.Inverse(a, arrayW, solve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	id := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	fmt.Printf("dense inverse via the arrays: ‖A·A⁻¹ − I‖∞ = %.1e (%d array passes)\n",
		a.Mul(inv).MaxAbsDiff(id), invStats.ArrayPasses)
}
