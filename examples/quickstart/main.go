// Quickstart: compute y = A·x + b and C = A·B + E for dense matrices of
// arbitrary size on fixed-size simulated systolic arrays, the way the paper
// intends — transform with DBT, run the array, read the result and the
// measured statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/matrix"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A 4-PE linear array computes a 10×13 dense matrix–vector product:
	// the array size is fixed; the problem size is not.
	const w = 4
	a := matrix.RandomDense(rng, 10, 13, 5)
	x := matrix.RandomVector(rng, 13, 5)
	b := matrix.RandomVector(rng, 10, 5)

	mv := core.NewMatVecSolver(w)
	res, err := mv.Solve(a, x, b, core.MatVecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matvec on %d PEs: y[0..3] = %.0f\n", w, res.Y[:4])
	fmt.Printf("  exact: %v, steps %d (= paper formula %d), utilization %.3f\n",
		res.Y.Equal(a.MulVec(x, b), 0), res.Stats.T, res.Stats.PredictedT, res.Stats.Utilization)

	// The same array, overlapped mode: two halves of the transformed
	// problem interleave and utilization approaches 1.
	res2, err := mv.Solve(a, x, b, core.MatVecOptions{Overlap: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  overlapped: steps %d, utilization %.3f\n", res2.Stats.T, res2.Stats.Utilization)

	// A 3×3 hexagonal array computes a 7×5 · 5×8 matrix product plus an
	// additive term, entirely inside the array via spiral feedback.
	am := matrix.RandomDense(rng, 7, 5, 4)
	bm := matrix.RandomDense(rng, 5, 8, 4)
	em := matrix.RandomDense(rng, 7, 8, 4)
	mm := core.NewMatMulSolver(3)
	mres, err := mm.Solve(am, bm, core.MatMulOptions{E: em})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matmul on 3×3 PEs: C[0][0..3] = ")
	for j := 0; j < 4; j++ {
		fmt.Printf("%.0f ", mres.C.At(0, j))
	}
	fmt.Printf("\n  exact: %v, steps %d (= paper formula %d), utilization %.3f\n",
		mres.C.Equal(am.Mul(bm).AddM(em), 0), mres.Stats.T, mres.Stats.PredictedT, mres.Stats.Utilization)
}
