// Imagefilter: signal processing on a fixed systolic array — the
// application domain of Priester et al. (the paper's ref /6/). A dense
// transform matrix (here a separable Gaussian-like blur) is applied to
// every row and column of an image whose dimensions have nothing to do
// with the array size: blurred = F_rows · image · F_colsᵀ, computed as two
// passes of matrix–matrix multiplication on one 4×4 hexagonal array.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
)

// blurMatrix builds an n×n dense filter: row i holds a normalized Gaussian
// centered at i. Dense, not banded — exactly the case where a fixed band
// array needs DBT.
func blurMatrix(n int, sigma float64) *matrix.Dense {
	f := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			v := math.Exp(-float64((i-j)*(i-j)) / (2 * sigma * sigma))
			f.Set(i, j, v)
			sum += v
		}
		for j := 0; j < n; j++ {
			f.Set(i, j, f.At(i, j)/sum)
		}
	}
	return f
}

// testImage renders a bright diagonal bar on a dark background.
func testImage(h, wd int) *matrix.Dense {
	img := matrix.NewDense(h, wd)
	for i := 0; i < h; i++ {
		for j := 0; j < wd; j++ {
			if d := i - j*h/wd; d >= -1 && d <= 1 {
				img.Set(i, j, 9)
			}
		}
	}
	return img
}

func render(img *matrix.Dense, title string) {
	fmt.Println(title)
	shades := []byte(" .:-=+*#%@")
	for i := 0; i < img.Rows(); i++ {
		row := make([]byte, img.Cols())
		for j := 0; j < img.Cols(); j++ {
			v := int(math.Round(img.At(i, j)))
			if v < 0 {
				v = 0
			}
			if v > 9 {
				v = 9
			}
			row[j] = shades[v]
		}
		fmt.Printf("  |%s|\n", row)
	}
}

func main() {
	const arrayW = 4 // the fixed hexagonal array size
	h, wd := 14, 22  // image dimensions — deliberately unrelated to arrayW

	img := testImage(h, wd)
	render(img, "input image:")

	solver := core.NewMatMulSolver(arrayW)
	// Vertical pass: rows of the image mix through F_rows.
	pass1, err := solver.Solve(blurMatrix(h, 1.2), img, core.MatMulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Horizontal pass: columns mix through F_colsᵀ.
	pass2, err := solver.Solve(pass1.C, blurMatrix(wd, 1.2).Transpose(), core.MatMulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	render(pass2.C, "blurred on a 4×4 systolic array (two DBT matmul passes):")

	ref := blurMatrix(h, 1.2).Mul(img).Mul(blurMatrix(wd, 1.2).Transpose())
	fmt.Printf("\nmax deviation from host reference: %.2e\n", pass2.C.MaxAbsDiff(ref))
	fmt.Printf("pass 1: %d×%d·%d×%d in %d steps; pass 2: %d×%d·%d×%d in %d steps — same %d×%d array\n",
		h, h, h, wd, pass1.Stats.T, h, wd, wd, wd, pass2.Stats.T, arrayW, arrayW)
}
