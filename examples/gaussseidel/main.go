// Gaussseidel: the iterative method the paper's conclusions name as a
// further application of the methodology (§4). A 1-D Poisson problem
// −u″ = f is discretized to a linear system and solved by block
// Gauss–Seidel sweeps whose matrix–vector work runs through a fixed 4-PE
// DBT linear array; Jacobi runs as a comparison.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/matrix"
	"repro/internal/solve"
)

func main() {
	const (
		n      = 24 // interior grid points — unrelated to the array size
		arrayW = 4  // fixed linear array
		tol    = 1e-9
	)

	// Discrete Laplacian (tridiagonal, diagonally dominant) and a smooth
	// right-hand side f(x) = sin(πx) scaled by h².
	a := matrix.NewDense(n, n)
	d := matrix.NewVector(n)
	h := 1.0 / float64(n+1)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		if i > 0 {
			a.Set(i, i-1, -1)
		}
		if i < n-1 {
			a.Set(i, i+1, -1)
		}
		xi := float64(i+1) * h
		d[i] = h * h * math.Sin(math.Pi*xi)
	}

	gsX, gsStats, err := solve.GaussSeidel(a, d, arrayW, 10000, tol, solve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	jX, jStats, err := solve.Jacobi(a, d, arrayW, 10000, tol, solve.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("1-D Poisson, %d unknowns, on a %d-PE DBT array:\n", n, arrayW)
	fmt.Printf("  Gauss-Seidel: %4d sweeps, residual %.1e, %8d array steps\n",
		gsStats.Sweeps, gsStats.Residual, gsStats.ArraySteps)
	fmt.Printf("  Jacobi:       %4d sweeps, residual %.1e, %8d array steps\n",
		jStats.Sweeps, jStats.Residual, jStats.ArraySteps)
	fmt.Printf("  solutions agree to %.1e\n", gsX.MaxAbsDiff(jX))

	// The analytic solution of −u″ = sin(πx) is sin(πx)/π²; compare shape.
	worst := 0.0
	for i := 0; i < n; i++ {
		xi := float64(i+1) * h
		exact := math.Sin(math.Pi*xi) / (math.Pi * math.Pi)
		if e := math.Abs(gsX[i] - exact); e > worst {
			worst = e
		}
	}
	fmt.Printf("  max error vs analytic solution: %.2e (O(h²) discretization)\n", worst)

	fmt.Println("\n  u(x) profile (array-computed):")
	for i := 0; i < n; i += 2 {
		bar := int(gsX[i] * 400)
		fmt.Printf("  x=%.2f %s\n", float64(i+1)*h, stars(bar))
	}
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
