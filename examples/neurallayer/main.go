// Neurallayer: batched dense layers of arbitrary shape on one fixed 3×3
// hexagonal array. A two-layer perceptron forward pass is two affine maps
// H = W1·X + B1 and Y = W2·σ(H) + B2 — each computed as a single DBT
// matrix–matrix pass with the bias folded into the array's E input, so no
// arithmetic happens outside the array except the nonlinearity.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/matrix"
)

func main() {
	const (
		arrayW = 3 // fixed hexagonal array
		dIn    = 8 // input features
		dHid   = 10
		dOut   = 4
		batch  = 6
	)
	rng := rand.New(rand.NewSource(7))

	w1 := matrix.RandomDense(rng, dHid, dIn, 2)
	w2 := matrix.RandomDense(rng, dOut, dHid, 2)
	x := matrix.RandomDense(rng, dIn, batch, 2)
	b1 := broadcast(matrix.RandomVector(rng, dHid, 2), batch)
	b2 := broadcast(matrix.RandomVector(rng, dOut, 2), batch)

	solver := core.NewMatMulSolver(arrayW)

	// Layer 1: H = W1·X + B1 in one array pass (bias enters as E).
	l1, err := solver.Solve(w1, x, core.MatMulOptions{E: b1})
	if err != nil {
		log.Fatal(err)
	}
	hAct := apply(l1.C, math.Tanh)

	// Layer 2: Y = W2·tanh(H) + B2.
	l2, err := solver.Solve(w2, hAct, core.MatMulOptions{E: b2})
	if err != nil {
		log.Fatal(err)
	}

	ref := w2.Mul(apply(w1.Mul(x).AddM(b1), math.Tanh)).AddM(b2)
	fmt.Printf("2-layer MLP (%d→%d→%d, batch %d) on a %d×%d array:\n", dIn, dHid, dOut, batch, arrayW, arrayW)
	fmt.Printf("  layer 1: %d steps (n̄=%d p̄=%d m̄=%d), layer 2: %d steps\n",
		l1.Stats.T, l1.Stats.NBar, l1.Stats.PBar, l1.Stats.MBar, l2.Stats.T)
	fmt.Printf("  matches host reference to %.1e\n", l2.C.MaxAbsDiff(ref))
	fmt.Println("  logits per sample:")
	for s := 0; s < batch; s++ {
		fmt.Printf("    sample %d: ", s)
		for o := 0; o < dOut; o++ {
			fmt.Printf("%7.3f ", l2.C.At(o, s))
		}
		fmt.Println()
	}
}

// broadcast tiles a column vector across batch columns.
func broadcast(v matrix.Vector, batch int) *matrix.Dense {
	m := matrix.NewDense(len(v), batch)
	for i, x := range v {
		for j := 0; j < batch; j++ {
			m.Set(i, j, x)
		}
	}
	return m
}

// apply maps f element-wise (the host-side nonlinearity).
func apply(m *matrix.Dense, f func(float64) float64) *matrix.Dense {
	out := matrix.NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			out.Set(i, j, f(m.At(i, j)))
		}
	}
	return out
}
